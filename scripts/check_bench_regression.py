#!/usr/bin/env python3
"""Guard bench throughput against the recorded baselines.

Compares fresh google-benchmark JSON dumps (``--benchmark_out`` with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true``)
against hand-recorded medians in BENCH_*.json baseline files ("after"
column, M items/s).  Fails if any benchmark's median items/s falls more
than ``--tolerance`` below its baseline.

Multiple suites are checked in one invocation by repeating --baseline and
giving one results file per baseline, in the same order:

  check_bench_regression.py --baseline BENCH_kernel.json \
                            --baseline BENCH_pdes.json \
                            BENCH_kernel_ci.json BENCH_pdes_ci.json

With a single (or default) baseline the original one-positional form is
unchanged.

The baseline host notes document run-to-run CV up to ~12% on the shared
1-core CI container, so CI passes an explicit --tolerance sized for that
noise; the default is the 5% budget the telemetry-off hot path must meet
on a quiet machine.  A baseline entry may carry its own "tolerance" to
pin a number tighter (or looser) than the global budget.
"""

import argparse
import json
import re
import sys


def snake(name: str) -> str:
    """BM_EventsPerSec/64 -> events_per_sec/64 (baseline naming)."""
    base, _, arg = name.partition("/")
    base = re.sub(r"^BM_", "", base)
    base = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", base).lower()
    return base + ("/" + arg if arg else "")


def load_medians(bench_json: dict) -> dict:
    """Median items/s per benchmark from google-benchmark JSON output."""
    out = {}
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b["name"]
        name = re.sub(r"_median$", "", name)
        name = re.sub(r"/real_time$", "", name)
        ips = b.get("items_per_second")
        if ips is None:
            continue
        out[snake(name)] = float(ips)
    return out


def check_suite(baseline_path: str, results_path: str, tolerance: float) -> bool:
    """Checks one baseline/results pair; returns True on failure."""
    with open(baseline_path) as f:
        baseline = json.load(f)
    if not str(baseline.get("schema", "")).startswith("daosim-bench-"):
        print(f"error: {baseline_path} is not a daosim-bench baseline",
              file=sys.stderr)
        return True
    with open(results_path) as f:
        medians = load_medians(json.load(f))
    if not medians:
        print(f"error: no items_per_second medians found in {results_path}",
              file=sys.stderr)
        return True

    failed = False
    missing = []
    print(f"[{baseline_path} vs {results_path}]")
    print(f"{'benchmark':<30} {'baseline':>10} {'measured':>10} {'delta':>8}")
    for entry in baseline["benchmarks"]:
        name = entry["name"]
        want = float(entry["after"]) * 1e6  # baseline unit is M items/s
        tol = float(entry.get("tolerance", tolerance))
        got = medians.get(name)
        if got is None:
            # A baseline entry the current bench binary no longer emits is a
            # coverage gap (a filter changed, a bench was renamed), not a
            # throughput regression: warn loudly, keep the gate green.
            print(f"{name:<30} {'':>10} {'MISSING':>10}")
            missing.append(name)
            continue
        delta = got / want - 1.0
        mark = ""
        if delta < -tol:
            mark = "  << REGRESSION"
            failed = True
        print(f"{name:<30} {want / 1e6:>9.2f}M {got / 1e6:>9.2f}M "
              f"{delta:>+7.1%}{mark}")
    if missing:
        print(f"warning: {len(missing)} baseline entr"
              f"{'y' if len(missing) == 1 else 'ies'} missing from "
              f"{results_path} (not failing the gate): {', '.join(missing)}",
              file=sys.stderr)
    print()
    return failed


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", nargs="+",
                    help="google-benchmark JSON output, one per --baseline")
    ap.add_argument("--baseline", action="append", default=None,
                    help="baseline BENCH_*.json (repeatable, paired with the "
                         "results positionals in order; default "
                         "BENCH_kernel.json)")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional regression (default 0.05)")
    args = ap.parse_args()

    baselines = args.baseline if args.baseline else ["BENCH_kernel.json"]
    if len(baselines) != len(args.results):
        print(f"error: {len(baselines)} baseline(s) but {len(args.results)} "
              "results file(s); they pair up in order", file=sys.stderr)
        return 2

    failed = False
    for baseline_path, results_path in zip(baselines, args.results):
        failed |= check_suite(baseline_path, results_path, args.tolerance)

    if failed:
        print("\nFAIL: throughput regressed below the baseline median "
              "tolerance", file=sys.stderr)
        return 1
    print("OK: all benchmarks within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
