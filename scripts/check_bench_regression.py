#!/usr/bin/env python3
"""Guard bench_kernel throughput against the recorded baseline.

Compares a fresh google-benchmark JSON dump (``--benchmark_out`` with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true``)
against the hand-recorded medians in BENCH_kernel.json ("after" column,
M items/s).  Fails if any benchmark's median items/s falls more than
``--tolerance`` below its baseline.

The baseline host note documents run-to-run CV up to ~12% on the shared
1-core CI container, so CI passes an explicit --tolerance sized for that
noise; the default is the 5% budget the telemetry-off hot path must meet
on a quiet machine.

Usage:
  check_bench_regression.py [--tolerance FRAC] [--baseline BENCH_kernel.json]
                            BENCH_kernel_ci.json
"""

import argparse
import json
import re
import sys


def snake(name: str) -> str:
    """BM_EventsPerSec/64 -> events_per_sec/64 (baseline naming)."""
    base, _, arg = name.partition("/")
    base = re.sub(r"^BM_", "", base)
    base = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", base).lower()
    return base + ("/" + arg if arg else "")


def load_medians(bench_json: dict) -> dict:
    """Median items/s per benchmark from google-benchmark JSON output."""
    out = {}
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b["name"]
        name = re.sub(r"_median$", "", name)
        ips = b.get("items_per_second")
        if ips is None:
            continue
        out[snake(name)] = float(ips)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", help="google-benchmark JSON output")
    ap.add_argument("--baseline", default="BENCH_kernel.json")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional regression (default 0.05)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    if not str(baseline.get("schema", "")).startswith("daosim-bench-kernel/"):
        print(f"error: {args.baseline} is not a daosim-bench-kernel baseline",
              file=sys.stderr)
        return 2
    with open(args.results) as f:
        medians = load_medians(json.load(f))
    if not medians:
        print(f"error: no items_per_second medians found in {args.results}",
              file=sys.stderr)
        return 2

    failed = False
    print(f"{'benchmark':<22} {'baseline':>10} {'measured':>10} {'delta':>8}")
    for entry in baseline["benchmarks"]:
        name = entry["name"]
        want = float(entry["after"]) * 1e6  # baseline unit is M items/s
        # A baseline entry may carry its own "tolerance" to pin a number
        # tighter (or looser) than the global budget — used to guard
        # hard-won recoveries like the events_per_sec/64 bypass.
        tol = float(entry.get("tolerance", args.tolerance))
        got = medians.get(name)
        if got is None:
            print(f"{name:<22} {'':>10} {'MISSING':>10}")
            failed = True
            continue
        delta = got / want - 1.0
        mark = ""
        if delta < -tol:
            mark = "  << REGRESSION"
            failed = True
        print(f"{name:<22} {want / 1e6:>9.1f}M {got / 1e6:>9.1f}M "
              f"{delta:>+7.1%}{mark}")

    if failed:
        print("\nFAIL: throughput regressed below the BENCH_kernel.json "
              "median tolerance", file=sys.stderr)
        return 1
    print("\nOK: all benchmarks within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
