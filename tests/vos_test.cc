// Tests for the VOS-like target store: payload semantics, extent-tree
// overlap handling, KV records, enumeration, punch, and space accounting.
#include <gtest/gtest.h>

#include <string>

#include "placement/oid.h"
#include "vos/extent_tree.h"
#include "vos/payload.h"
#include "vos/target_store.h"

namespace daosim::vos {
namespace {

using placement::makeOid;
using placement::ObjClass;

TEST(Payload, RealBytesRoundTrip) {
  auto p = Payload::fromString("hello world");
  EXPECT_EQ(p.size(), 11u);
  EXPECT_TRUE(p.hasBytes());
  EXPECT_EQ(p.toString(), "hello world");
}

TEST(Payload, SliceIsZeroCopyView) {
  auto p = Payload::fromString("hello world");
  auto s = p.slice(6, 5);
  EXPECT_EQ(s.toString(), "world");
  auto clamped = p.slice(8, 100);
  EXPECT_EQ(clamped.toString(), "rld");
  auto beyond = p.slice(100, 5);
  EXPECT_EQ(beyond.size(), 0u);
}

TEST(Payload, SyntheticKeepsSizeAndTag) {
  auto p = Payload::synthetic(1 << 20, 42);
  EXPECT_EQ(p.size(), 1u << 20);
  EXPECT_FALSE(p.hasBytes());
  EXPECT_EQ(p.tag(), 42u);
  auto s = p.slice(100, 200);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_FALSE(s.hasBytes());
}

TEST(Payload, EqualityBytesAndTags) {
  EXPECT_EQ(Payload::fromString("abc"), Payload::fromString("abc"));
  EXPECT_NE(Payload::fromString("abc"), Payload::fromString("abd"));
  EXPECT_EQ(Payload::synthetic(10, 1), Payload::synthetic(10, 1));
  EXPECT_NE(Payload::synthetic(10, 1), Payload::synthetic(10, 2));
  EXPECT_NE(Payload::synthetic(10, 1), Payload::synthetic(11, 1));
}

TEST(Payload, PatternIsDeterministic) {
  auto a = patternPayload(1000, 7);
  auto b = patternPayload(1000, 7);
  auto c = patternPayload(1000, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Payload, StripBytes) {
  auto p = Payload::fromString("data");
  auto s = p.stripBytes();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.hasBytes());
}

TEST(ExtentTree, WriteReadBack) {
  ExtentTree t;
  t.write(0, Payload::fromString("abcdef"));
  auto r = t.read(0, 6);
  EXPECT_EQ(r.data.toString(), "abcdef");
  EXPECT_EQ(r.bytes_found, 6u);
  EXPECT_EQ(t.end(), 6u);
}

TEST(ExtentTree, HolesReadAsZeros) {
  ExtentTree t;
  t.write(4, Payload::fromString("xy"));
  auto r = t.read(0, 8);
  EXPECT_EQ(r.bytes_found, 2u);
  ASSERT_EQ(r.data.size(), 8u);
  auto b = r.data.bytes();
  EXPECT_EQ(static_cast<char>(b[0]), '\0');
  EXPECT_EQ(static_cast<char>(b[4]), 'x');
  EXPECT_EQ(static_cast<char>(b[5]), 'y');
  EXPECT_EQ(static_cast<char>(b[6]), '\0');
}

TEST(ExtentTree, OverwriteMiddleSplitsExtent) {
  ExtentTree t;
  t.write(0, Payload::fromString("aaaaaaaaaa"));  // [0,10)
  t.write(3, Payload::fromString("BBB"));         // [3,6)
  auto r = t.read(0, 10);
  EXPECT_EQ(r.data.toString(), "aaaBBBaaaa");
  EXPECT_EQ(r.bytes_found, 10u);
  EXPECT_EQ(t.extentCount(), 3u);
  EXPECT_EQ(t.bytesStored(), 10u);
}

TEST(ExtentTree, OverwriteHeadAndTail) {
  ExtentTree t;
  t.write(2, Payload::fromString("mmmm"));  // [2,6)
  t.write(0, Payload::fromString("HHH"));   // [0,3) overlaps head
  t.write(5, Payload::fromString("TT"));    // [5,7) overlaps tail
  auto r = t.read(0, 7);
  EXPECT_EQ(r.data.toString(), "HHHmmTT");
  EXPECT_EQ(t.end(), 7u);
  EXPECT_EQ(t.bytesStored(), 7u);
}

TEST(ExtentTree, OverwriteSwallowsContainedExtents) {
  ExtentTree t;
  t.write(0, Payload::fromString("aa"));
  t.write(4, Payload::fromString("bb"));
  t.write(8, Payload::fromString("cc"));
  t.write(0, Payload::fromString("XXXXXXXXXX"));  // [0,10) covers all
  auto r = t.read(0, 10);
  EXPECT_EQ(r.data.toString(), "XXXXXXXXXX");
  EXPECT_EQ(t.extentCount(), 1u);
  EXPECT_EQ(t.bytesStored(), 10u);
}

TEST(ExtentTree, TruncateShrinksAndExtends) {
  ExtentTree t;
  t.write(0, Payload::fromString("abcdefgh"));
  t.truncate(4);
  EXPECT_EQ(t.end(), 4u);
  EXPECT_EQ(t.read(0, 4).data.toString(), "abcd");
  EXPECT_EQ(t.read(4, 4).bytes_found, 0u);
  t.truncate(16);
  EXPECT_EQ(t.end(), 16u);
  EXPECT_EQ(t.read(0, 4).data.toString(), "abcd");
}

TEST(ExtentTree, SyntheticPayloadPropagates) {
  ExtentTree t;
  t.write(0, Payload::synthetic(100, 5));
  auto r = t.read(0, 100);
  EXPECT_EQ(r.bytes_found, 100u);
  EXPECT_FALSE(r.data.hasBytes());
  EXPECT_EQ(r.data.size(), 100u);
}

TEST(ExtentTree, ZeroLengthOps) {
  ExtentTree t;
  t.write(5, Payload{});
  EXPECT_TRUE(t.empty());
  auto r = t.read(0, 0);
  EXPECT_EQ(r.data.size(), 0u);
}

TEST(U64Dkey, RoundTripAndOrdering) {
  EXPECT_EQ(dkeyU64(u64Dkey(0)), 0u);
  EXPECT_EQ(dkeyU64(u64Dkey(123456789)), 123456789u);
  EXPECT_EQ(dkeyU64(u64Dkey(~0ULL)), ~0ULL);
  EXPECT_LT(u64Dkey(1), u64Dkey(2));
  EXPECT_LT(u64Dkey(255), u64Dkey(256));  // big-endian keeps numeric order
}

class TargetStoreTest : public ::testing::Test {
 protected:
  TargetStore store_;
  ContId cont_ = 1;
  placement::ObjectId oid_ = makeOid(ObjClass::S1, 100);
};

TEST_F(TargetStoreTest, KvPutGetRemove) {
  store_.valuePut(cont_, oid_, "key1", "v", Payload::fromString("value1"));
  const Payload* p = store_.valueGet(cont_, oid_, "key1", "v");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->toString(), "value1");

  store_.valuePut(cont_, oid_, "key1", "v", Payload::fromString("value2"));
  EXPECT_EQ(store_.valueGet(cont_, oid_, "key1", "v")->toString(), "value2");
  EXPECT_EQ(store_.bytesStored(), 6u);

  EXPECT_TRUE(store_.valueRemove(cont_, oid_, "key1", "v"));
  EXPECT_EQ(store_.valueGet(cont_, oid_, "key1", "v"), nullptr);
  EXPECT_FALSE(store_.valueRemove(cont_, oid_, "key1", "v"));
  EXPECT_EQ(store_.bytesStored(), 0u);
}

TEST_F(TargetStoreTest, MissingLookupsReturnNull) {
  EXPECT_EQ(store_.valueGet(cont_, oid_, "nope", "v"), nullptr);
  EXPECT_EQ(store_.valueGet(99, oid_, "nope", "v"), nullptr);
  EXPECT_FALSE(store_.objectExists(cont_, oid_));
}

TEST_F(TargetStoreTest, ExtentWriteReadAcrossDkeys) {
  store_.extentWrite(cont_, oid_, u64Dkey(0), "a", 0,
                     Payload::fromString("chunk0"));
  store_.extentWrite(cont_, oid_, u64Dkey(1), "a", 0,
                     Payload::fromString("chunk1"));
  EXPECT_EQ(store_.extentRead(cont_, oid_, u64Dkey(0), "a", 0, 6)
                .data.toString(),
            "chunk0");
  EXPECT_EQ(store_.extentRead(cont_, oid_, u64Dkey(1), "a", 0, 6)
                .data.toString(),
            "chunk1");
  EXPECT_EQ(store_.extentEnd(cont_, oid_, u64Dkey(0), "a"), 6u);
  EXPECT_EQ(store_.extentEnd(cont_, oid_, u64Dkey(2), "a"), 0u);
}

TEST_F(TargetStoreTest, ListKeys) {
  store_.valuePut(cont_, oid_, "b", "v", Payload::fromString("1"));
  store_.valuePut(cont_, oid_, "a", "v", Payload::fromString("2"));
  store_.valuePut(cont_, oid_, "c", "v", Payload::fromString("3"));
  auto keys = store_.listDkeys(cont_, oid_);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));  // sorted
  auto akeys = store_.listAkeys(cont_, oid_, "a");
  EXPECT_EQ(akeys, (std::vector<std::string>{"v"}));
}

TEST_F(TargetStoreTest, PunchObjectReclaimsSpace) {
  store_.valuePut(cont_, oid_, "k", "v", Payload::fromString("xxxx"));
  store_.extentWrite(cont_, oid_, u64Dkey(0), "a", 0,
                     Payload::fromString("yyyy"));
  EXPECT_EQ(store_.bytesStored(), 8u);
  EXPECT_TRUE(store_.punchObject(cont_, oid_));
  EXPECT_EQ(store_.bytesStored(), 0u);
  EXPECT_FALSE(store_.objectExists(cont_, oid_));
  EXPECT_FALSE(store_.punchObject(cont_, oid_));
}

TEST_F(TargetStoreTest, PunchDkey) {
  store_.valuePut(cont_, oid_, "k1", "v", Payload::fromString("aa"));
  store_.valuePut(cont_, oid_, "k2", "v", Payload::fromString("bb"));
  EXPECT_TRUE(store_.punchDkey(cont_, oid_, "k1"));
  EXPECT_EQ(store_.valueGet(cont_, oid_, "k1", "v"), nullptr);
  ASSERT_NE(store_.valueGet(cont_, oid_, "k2", "v"), nullptr);
  EXPECT_EQ(store_.bytesStored(), 2u);
}

TEST_F(TargetStoreTest, DestroyContainer) {
  store_.valuePut(1, oid_, "k", "v", Payload::fromString("aa"));
  store_.valuePut(2, oid_, "k", "v", Payload::fromString("bb"));
  store_.destroyContainer(1);
  EXPECT_EQ(store_.valueGet(1, oid_, "k", "v"), nullptr);
  ASSERT_NE(store_.valueGet(2, oid_, "k", "v"), nullptr);
  EXPECT_EQ(store_.bytesStored(), 2u);
  EXPECT_EQ(store_.containerCount(), 1u);
}

TEST_F(TargetStoreTest, NoRetainModeStripsExtentBytesButKeepsKvRecords) {
  TargetStore lean(/*retain_data=*/false);
  // KV records are metadata: bytes are always retained.
  lean.valuePut(cont_, oid_, "k", "v", Payload::fromString("abcdef"));
  const Payload* p = lean.valueGet(cont_, oid_, "k", "v");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->hasBytes());
  EXPECT_EQ(p->toString(), "abcdef");
  // Extent (bulk) payloads are stripped to size-only.
  lean.extentWrite(cont_, oid_, u64Dkey(0), "a", 0, patternPayload(1024, 1));
  EXPECT_EQ(lean.extentEnd(cont_, oid_, u64Dkey(0), "a"), 1024u);
  EXPECT_EQ(lean.bytesStored(), 1030u);
  auto r = lean.extentRead(cont_, oid_, u64Dkey(0), "a", 0, 1024);
  EXPECT_FALSE(r.data.hasBytes());
  EXPECT_EQ(r.bytes_found, 1024u);
}

TEST_F(TargetStoreTest, AccountingSurvivesOverwrites) {
  store_.extentWrite(cont_, oid_, u64Dkey(0), "a", 0, patternPayload(1000, 1));
  store_.extentWrite(cont_, oid_, u64Dkey(0), "a", 500,
                     patternPayload(1000, 2));
  EXPECT_EQ(store_.bytesStored(), 1500u);
  store_.extentTruncate(cont_, oid_, u64Dkey(0), "a", 200);
  EXPECT_EQ(store_.bytesStored(), 200u);
  EXPECT_EQ(store_.extentEnd(cont_, oid_, u64Dkey(0), "a"), 200u);
}

TEST_F(TargetStoreTest, ObjectCountAcrossContainers) {
  store_.valuePut(1, makeOid(ObjClass::S1, 1), "k", "v", Payload::fromString("x"));
  store_.valuePut(1, makeOid(ObjClass::S1, 2), "k", "v", Payload::fromString("x"));
  store_.valuePut(2, makeOid(ObjClass::S1, 3), "k", "v", Payload::fromString("x"));
  EXPECT_EQ(store_.objectCount(), 3u);
}

}  // namespace
}  // namespace daosim::vos
