// Fault-injection tests: FaultPlan grammar and generator, retry/backoff
// determinism, timeout and retry-budget behaviour, the FaultInjector's
// degraded-path flow, and a seeded property suite asserting that no
// acknowledged write is lost while the redundancy bound holds.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/fault_injector.h"
#include "apps/testbed.h"
#include "daos/array.h"
#include "daos/client.h"
#include "daos/engine.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "net/retry.h"
#include "net/rpc.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultTopology;
using sim::Task;
using sim::Time;
using namespace sim::literals;

// --- plan grammar ---------------------------------------------------------

TEST(FaultPlanParse, ParsesEveryKindWithUnits) {
  const FaultTopology topo{.targets = 16, .engines = 4, .nodes = 8};
  FaultPlan p = FaultPlan::parse(
      "fail@150ms:t3; recover@180ms:t3; exclude@200ms:t2;"
      "slow@40ms:t7,x8; flap@120ms:n5,15ms; stall@80us:e1,10us",
      topo);
  ASSERT_EQ(p.size(), 6u);
  // Sorted by time: stall@80us, slow@40ms, flap@120ms, fail, recover, excl.
  EXPECT_EQ(p.events()[0].kind, FaultKind::kEngineStall);
  EXPECT_EQ(p.events()[0].at, 80_us);
  EXPECT_EQ(p.events()[0].subject, 1);
  EXPECT_EQ(p.events()[0].duration, 10_us);
  EXPECT_EQ(p.events()[1].kind, FaultKind::kTargetSlow);
  EXPECT_EQ(p.events()[1].at, 40_ms);
  EXPECT_EQ(p.events()[1].subject, 7);
  EXPECT_EQ(p.events()[1].factor, 8.0);
  EXPECT_EQ(p.events()[2].kind, FaultKind::kNicFlap);
  EXPECT_EQ(p.events()[2].duration, 15_ms);
  EXPECT_EQ(p.events()[3].kind, FaultKind::kTargetFail);
  EXPECT_EQ(p.events()[4].kind, FaultKind::kTargetRecover);
  EXPECT_EQ(p.events()[5].kind, FaultKind::kTargetExclude);
  EXPECT_EQ(p.events()[5].subject, 2);
}

TEST(FaultPlanParse, DescribeRoundTrips) {
  const FaultTopology topo{.targets = 16, .engines = 4, .nodes = 8};
  FaultPlan p = FaultPlan::parse(
      "slow@40ms:t7,x8;stall@80ms:e1,10ms;flap@120ms:n5,15ms;exclude@200ms:t3",
      topo);
  FaultPlan q = FaultPlan::parse(p.describe(), topo);
  EXPECT_EQ(p.describe(), q.describe());
  ASSERT_EQ(p.size(), q.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.events()[i].at, q.events()[i].at);
    EXPECT_EQ(p.events()[i].kind, q.events()[i].kind);
    EXPECT_EQ(p.events()[i].subject, q.events()[i].subject);
    EXPECT_EQ(p.events()[i].factor, q.events()[i].factor);
    EXPECT_EQ(p.events()[i].duration, q.events()[i].duration);
  }
}

TEST(FaultPlanParse, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("", {}).empty());
  EXPECT_TRUE(FaultPlan::parse("  ", {}).empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ;; ", {}).empty());
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  const FaultTopology topo{.targets = 12, .engines = 3, .nodes = 4};
  EXPECT_THROW(FaultPlan::parse("bogus@1ms:t0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@1ms", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@oops:t0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@1ms:n0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@1ms:t0,x2", topo),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("slow@1ms:t0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("slow@1ms:t0,8", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("slow@1ms:t0,x0.5", topo),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("flap@1ms:n0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("stall@1ms:e0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@0ns:t0", topo), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("random:seed=1,bogus=2", topo),
               std::invalid_argument);
  // Subjects outside the topology are out_of_range (zero fields skip the
  // check, for parse-only use).
  EXPECT_THROW(FaultPlan::parse("fail@1ms:t12", topo), std::out_of_range);
  EXPECT_THROW(FaultPlan::parse("stall@1ms:e3", topo), std::out_of_range);
  EXPECT_THROW(FaultPlan::parse("flap@1ms:n4", topo), std::out_of_range);
  EXPECT_NO_THROW(FaultPlan::parse("fail@1ms:t12", {}));
}

TEST(FaultPlanParse, RandomSpecIsSeedDeterministic) {
  const FaultTopology topo{.targets = 12, .engines = 3, .nodes = 4};
  FaultPlan a = FaultPlan::parse("random:seed=7,events=6,horizon=200ms", topo);
  FaultPlan b = FaultPlan::parse("random:seed=7,events=6,horizon=200ms", topo);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.describe(), b.describe());
  FaultPlan direct = FaultPlan::random(7, topo, 6, 200_ms);
  EXPECT_EQ(a.describe(), direct.describe());
  FaultPlan other = FaultPlan::parse("random:seed=8,events=6,horizon=200ms",
                                     topo);
  EXPECT_NE(a.describe(), other.describe());
}

TEST(FaultPlanRandom, RespectsTopologyAndSingleVictimInvariant) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultTopology topo{.targets = 12, .engines = 3, .nodes = 4};
    FaultPlan p = FaultPlan::random(seed, topo, 8, 200_ms);
    int victim = -1;
    Time prev = 0;
    for (const FaultEvent& e : p.events()) {
      EXPECT_GE(e.at, prev);  // sorted
      prev = e.at;
      switch (e.kind) {
        case FaultKind::kNicFlap:
          EXPECT_LT(e.subject, topo.nodes);
          EXPECT_GT(e.duration, 0u);
          break;
        case FaultKind::kEngineStall:
          EXPECT_LT(e.subject, topo.engines);
          EXPECT_GT(e.duration, 0u);
          break;
        case FaultKind::kTargetSlow:
          EXPECT_LT(e.subject, topo.targets);
          EXPECT_GE(e.factor, 1.0);
          break;
        case FaultKind::kTargetFail:
        case FaultKind::kTargetRecover:
        case FaultKind::kTargetExclude:
          EXPECT_LT(e.subject, topo.targets);
          // Only one target is ever allowed to die across the whole plan.
          if (victim < 0) victim = e.subject;
          EXPECT_EQ(e.subject, victim);
          break;
      }
    }
  }
}

// --- backoff --------------------------------------------------------------

TEST(Backoff, DeterministicForFixedSeed) {
  net::RetryPolicy p;
  p.backoff_base = 500_us;
  p.backoff_cap = 50_ms;
  std::vector<Time> first;
  std::vector<Time> second;
  for (auto* out : {&first, &second}) {
    sim::Rng rng(42);
    for (int attempt = 0; attempt < 10; ++attempt) {
      out->push_back(net::backoffDelay(p, attempt, rng));
    }
  }
  EXPECT_EQ(first, second);
}

TEST(Backoff, HalfJitterWithinDoublingEnvelopeAndCap) {
  net::RetryPolicy p;
  p.backoff_base = 500_us;
  p.backoff_cap = 50_ms;
  sim::Rng rng(7);
  for (int attempt = 0; attempt < 12; ++attempt) {
    Time envelope = p.backoff_base;
    for (int i = 0; i < attempt && envelope < p.backoff_cap; ++i) {
      envelope *= 2;
    }
    if (envelope > p.backoff_cap) envelope = p.backoff_cap;
    for (int draw = 0; draw < 20; ++draw) {
      const Time d = net::backoffDelay(p, attempt, rng);
      EXPECT_GE(d, envelope / 2);
      EXPECT_LE(d, envelope);
    }
    if (attempt >= 7) {  // 500us << 7 = 64ms > cap
      EXPECT_EQ(envelope, p.backoff_cap);
    }
  }
}

TEST(Backoff, TinyBaseSkipsJitter) {
  net::RetryPolicy p;
  p.backoff_base = 1;
  p.backoff_cap = 1;
  sim::Rng rng(1);
  EXPECT_EQ(net::backoffDelay(p, 0, rng), 1u);
  EXPECT_EQ(net::backoffDelay(p, 5, rng), 1u);
}

// --- retry behaviour over the cluster -------------------------------------

namespace retrytest {

sim::Task<void> plainRequest(hw::Cluster* c, hw::NodeId src, hw::NodeId dst) {
  co_await net::request(*c, src, dst, 0);
}

sim::Task<void> policyRequest(hw::Cluster* c, hw::NodeId src, hw::NodeId dst,
                              net::RetryPolicy policy,
                              std::shared_ptr<std::exception_ptr> err) {
  try {
    co_await net::request(*c, src, dst, 0, policy);
  } catch (...) {
    *err = std::current_exception();
  }
}

sim::Task<void> bigSend(hw::Cluster* c, hw::NodeId src, hw::NodeId dst,
                        std::uint64_t bytes) {
  co_await c->send(src, dst, bytes);
}

sim::Task<void> linkRestore(hw::Cluster* c, hw::NodeId node, Time at) {
  co_await c->sim().delay(at);
  c->setLinkDown(node, false);
}

}  // namespace retrytest

TEST(Retry, DisabledPolicyIsScheduleIdenticalToPlainRequest) {
  Time plain_now = 0;
  std::size_t plain_events = 0;
  std::uint64_t plain_msgs = 0;
  {
    sim::Simulation sim;
    hw::Cluster cluster(sim);
    auto c = cluster.addNode(hw::NodeSpec::client());
    auto s = cluster.addNode(hw::NodeSpec::server());
    sim.spawn(retrytest::plainRequest(&cluster, c, s));
    plain_events = sim.run();
    plain_now = sim.now();
    plain_msgs = cluster.messages();
  }
  {
    // A default (disabled) RetryPolicy must produce the exact event
    // schedule of the policy-free overload: same event count, same clock,
    // no RNG draw, no timer.
    sim::Simulation sim;
    hw::Cluster cluster(sim);
    auto c = cluster.addNode(hw::NodeSpec::client());
    auto s = cluster.addNode(hw::NodeSpec::server());
    auto err = std::make_shared<std::exception_ptr>();
    sim.spawn(retrytest::policyRequest(&cluster, c, s, net::RetryPolicy{},
                                       err));
    EXPECT_EQ(sim.run(), plain_events);
    EXPECT_EQ(sim.now(), plain_now);
    EXPECT_EQ(cluster.messages(), plain_msgs);
    EXPECT_EQ(*err, nullptr);
    EXPECT_EQ(cluster.rpcRetries(), 0u);
    EXPECT_EQ(cluster.rpcTimeouts(), 0u);
  }
}

TEST(Retry, ExhaustsBudgetOnPermanentlyDownedLink) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto c = cluster.addNode(hw::NodeSpec::client());
  auto s = cluster.addNode(hw::NodeSpec::server());
  cluster.setLinkDown(s, true);
  net::RetryPolicy policy;
  policy.timeout = 5_ms;
  policy.max_retries = 2;
  policy.backoff_base = 100_us;
  policy.backoff_cap = 1_ms;
  auto err = std::make_shared<std::exception_ptr>();
  sim.spawn(retrytest::policyRequest(&cluster, c, s, policy, err));
  sim.run();
  ASSERT_TRUE(*err);
  try {
    std::rethrow_exception(*err);
  } catch (const net::RetryExhausted& e) {
    EXPECT_EQ(e.attempts(), 3);        // 1 initial + 2 retries
    EXPECT_FALSE(e.timedOut());        // failed fast, not by timer
  } catch (...) {
    FAIL() << "expected net::RetryExhausted";
  }
  EXPECT_EQ(cluster.rpcRetries(), 2u);
  EXPECT_EQ(cluster.sendFailures(), 3u);
  EXPECT_EQ(cluster.rpcTimeouts(), 0u);
}

TEST(Retry, RidesThroughTransientFlap) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto c = cluster.addNode(hw::NodeSpec::client());
  auto s = cluster.addNode(hw::NodeSpec::server());
  cluster.setLinkDown(s, true);
  sim.spawn(retrytest::linkRestore(&cluster, s, 10_ms));
  auto err = std::make_shared<std::exception_ptr>();
  sim.spawn(retrytest::policyRequest(&cluster, c, s,
                                     net::RetryPolicy::chaosDefault(), err));
  sim.run();
  EXPECT_EQ(*err, nullptr) << "chaosDefault should outlast a 10ms flap";
  EXPECT_GT(cluster.rpcRetries(), 0u);
  EXPECT_EQ(cluster.messages(), 1u);  // exactly one attempt went through
  EXPECT_GE(sim.now(), 10_ms);
}

TEST(Retry, TimesOutBehindBackloggedReceiver) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto c = cluster.addNode(hw::NodeSpec::client());
  auto s = cluster.addNode(hw::NodeSpec::server());
  // Occupy the receiver NIC: 100 MiB at 6.25 GiB/s holds rx for ~16ms.
  sim.spawn(retrytest::bigSend(&cluster, c, s, 100 * hw::kMiB));
  net::RetryPolicy policy;
  policy.timeout = 1_ms;
  policy.max_retries = 1;
  policy.backoff_base = 100_us;
  policy.backoff_cap = 200_us;
  auto err = std::make_shared<std::exception_ptr>();
  sim.spawn(retrytest::policyRequest(&cluster, c, s, policy, err));
  sim.run();
  ASSERT_TRUE(*err);
  try {
    std::rethrow_exception(*err);
  } catch (const net::RetryExhausted& e) {
    EXPECT_EQ(e.attempts(), 2);
    EXPECT_TRUE(e.timedOut());
  } catch (...) {
    FAIL() << "expected net::RetryExhausted";
  }
  EXPECT_EQ(cluster.rpcTimeouts(), 2u);
  EXPECT_EQ(cluster.rpcRetries(), 1u);
}

// --- injector: empty plan is a strict no-op -------------------------------

TEST(FaultInjector, EmptyPlanIsStrictNoOp) {
  auto run = [](bool with_injector) {
    apps::DaosTestbed::Options opt;
    opt.server_nodes = 2;
    opt.client_nodes = 1;
    opt.seed = 11;
    opt.with_dfuse = false;
    apps::DaosTestbed tb(opt);
    std::optional<apps::FaultInjector> inj;
    if (with_injector) {
      inj.emplace(tb, FaultPlan{});
      inj->install();
    }
    daos::Client client(tb.daos(), tb.clients()[0], 99);
    struct Probe {
      static Task<void> work(daos::Client* c, daos::Container cont) {
        daos::Array a = co_await daos::Array::create(
            *c, cont, c->nextOid(placement::ObjClass::RP_2G1),
            {.cell_size = 1, .chunk_size = 1 << 20});
        co_await a.write(0, vos::Payload::synthetic(4 * hw::kMiB));
        (void)co_await a.read(0, 4 * hw::kMiB);
      }
    };
    auto h = tb.sim().spawn(Probe::work(&client, tb.container()));
    tb.sim().run();
    if (h.failed()) std::rethrow_exception(h.error());
    if (inj) {
      inj->rethrowIfFailed();
      EXPECT_EQ(inj->stats().events_applied, 0u);
    }
    return tb.sim().now();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjector, EmptyPlanRegistersNoTelemetry) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.with_dfuse = false;
  apps::DaosTestbed tb(opt);
  apps::FaultInjector inj(tb, FaultPlan{});
  obs::Telemetry telemetry;
  inj.registerTelemetry(telemetry);
  EXPECT_EQ(telemetry.find("faults/events_applied"), nullptr);
}

TEST(FaultInjector, RejectsOutOfRangeSubjectsUpFront) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.with_dfuse = false;
  opt.daos.targets_per_engine = 4;
  apps::DaosTestbed tb(opt);
  FaultPlan bad;
  bad.add({.at = 1_ms, .kind = FaultKind::kTargetFail, .subject = 8});
  EXPECT_THROW(apps::FaultInjector(tb, bad), std::out_of_range);
  FaultPlan bad_node;
  bad_node.add({.at = 1_ms,
                .kind = FaultKind::kNicFlap,
                .subject = 3,
                .duration = 1_ms});
  EXPECT_THROW(apps::FaultInjector(tb, bad_node), std::out_of_range);
}

// --- property suite: acked writes survive seeded chaos --------------------

namespace prop {

constexpr std::uint64_t kRecord = 64 * hw::kKiB;
constexpr int kRecords = 24;

/// Independent census of unrecoverable shards: non-redundant objects (the
/// DFS S1 superblock and SX directories the testbed mounts) that had their
/// only copy of a shard on `victim`. Replicated/EC objects never appear
/// here, so any additional reported loss would mean redundant data was
/// dropped.
std::uint64_t expectedLostShards(daos::DaosSystem& sys, int victim) {
  std::set<std::pair<vos::ContId, placement::ObjectId>> objects;
  for (int e = 0; e < sys.engineCount(); ++e) {
    daos::Engine& engine = sys.engine(e);
    for (int t = 0; t < engine.targetCount(); ++t) {
      const int global = e * sys.config().targets_per_engine + t;
      if (global == victim) continue;
      for (auto& co : engine.target(t).store().listObjects()) {
        objects.insert(co);
      }
    }
  }
  std::vector<std::uint8_t> old_alive = sys.aliveMap();
  old_alive[static_cast<std::size_t>(victim)] = 1;
  std::uint64_t lost = 0;
  for (const auto& [cont, oid] : objects) {
    const placement::Layout old_layout = sys.layoutUnder(oid, old_alive);
    const placement::Layout new_layout = sys.layout(oid);
    const auto& spec = old_layout.spec;
    if (spec.erasureCoded() || spec.replicated()) continue;
    for (std::size_t j = 0; j < old_layout.targets.size(); ++j) {
      if (old_layout.targets[j] != new_layout.targets[j]) ++lost;
    }
  }
  return lost;
}

struct State {
  daos::Client* client = nullptr;
  daos::Container cont;
  std::optional<daos::Array> array;  // old (pre-exclusion) layout
  std::vector<std::uint8_t> acked = std::vector<std::uint8_t>(kRecords, 0);
  int degraded_mismatches = 0;
  int rebuilt_mismatches = 0;
};

/// Paced writer: one replicated record every 8ms so plan events interleave
/// with in-flight I/O. A write that throws (device dead mid-plan, retry
/// budget exhausted) is simply not acknowledged.
sim::Task<void> writer(std::shared_ptr<State> st) {
  st->array = co_await daos::Array::create(
      *st->client, st->cont, st->client->nextOid(placement::ObjClass::RP_2G1),
      {.cell_size = 1, .chunk_size = 1 << 20});
  for (int i = 0; i < kRecords; ++i) {
    vos::Payload rec = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    bool ok = true;
    try {
      co_await st->array->write(std::uint64_t(i) * kRecord, rec);
    } catch (const std::exception&) {
      ok = false;
    }
    st->acked[std::size_t(i)] = ok ? 1 : 0;
    co_await st->client->sim().delay(8_ms);
  }
}

/// Verifies every acknowledged record twice: through the writer's original
/// Array (old layout — exercises the degraded/replica-fallback path when
/// the victim stayed dead) and through a fresh open (new layout — normal
/// path after rebuild).
sim::Task<void> verifier(std::shared_ptr<State> st) {
  for (int i = 0; i < kRecords; ++i) {
    if (st->acked[std::size_t(i)] == 0) continue;
    vos::Payload want = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    vos::Payload got =
        co_await st->array->read(std::uint64_t(i) * kRecord, kRecord);
    if (!(got == want)) ++st->degraded_mismatches;
  }
  daos::Array reopened = co_await daos::Array::open(
      *st->client, st->cont, st->array->oid());
  for (int i = 0; i < kRecords; ++i) {
    if (st->acked[std::size_t(i)] == 0) continue;
    vos::Payload want = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    vos::Payload got =
        co_await reopened.read(std::uint64_t(i) * kRecord, kRecord);
    if (!(got == want)) ++st->rebuilt_mismatches;
  }
}

}  // namespace prop

class FaultProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultProperty, AckedWritesSurviveSeededChaos) {
  const std::uint64_t seed = GetParam();
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 3;
  opt.client_nodes = 1;
  opt.seed = seed;
  opt.retain_data = true;  // verify real bytes, not just sizes
  opt.with_dfuse = false;
  opt.daos.targets_per_engine = 4;
  opt.daos.rpc_retry = net::RetryPolicy::chaosDefault();
  apps::DaosTestbed tb(opt);

  const FaultTopology topo{
      .targets = 12,
      .engines = 3,
      .nodes = static_cast<int>(tb.cluster().nodeCount())};
  FaultPlan plan = FaultPlan::random(seed, topo, 6, 200_ms);
  apps::FaultInjector injector(tb, plan);
  injector.install();

  daos::Client client(tb.daos(), tb.clients()[0], 7);
  auto st = std::make_shared<prop::State>();
  st->client = &client;
  st->cont = tb.container();

  auto wh = tb.sim().spawn(prop::writer(st));
  tb.sim().run();  // drains writer, plan driver, flap restores, rebuilds
  if (wh.failed()) std::rethrow_exception(wh.error());
  injector.rethrowIfFailed();

  auto vh = tb.sim().spawn(prop::verifier(st));
  tb.sim().run();
  if (vh.failed()) std::rethrow_exception(vh.error());
  injector.rethrowIfFailed();

  int acked = 0;
  for (std::uint8_t a : st->acked) acked += a;
  EXPECT_GT(acked, 0) << "seed " << seed << ": chaos killed every write";
  EXPECT_EQ(st->degraded_mismatches, 0) << "seed " << seed;
  EXPECT_EQ(st->rebuilt_mismatches, 0) << "seed " << seed;

  const apps::FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.events_applied, plan.size());
  // Every exclusion's background rebuild ran to completion, and its loss
  // accounting is surfaced. The only shards a rebuild may report lost are
  // the non-redundant DFS metadata objects (S1 superblock / SX dirs) that
  // happened to live on the victim — verified against an independent store
  // census. Our RP_2 data and the replicated array metadata must never
  // contribute.
  EXPECT_EQ(stats.rebuilds_completed, stats.rebuilds_started);
  int excluded = -1;
  for (const FaultEvent& e : plan.events()) {
    if (e.kind == FaultKind::kTargetExclude) excluded = e.subject;
  }
  if (excluded >= 0) {
    EXPECT_EQ(stats.rebuilds_started, 1u);
    EXPECT_EQ(stats.objects_lost,
              prop::expectedLostShards(tb.daos(), excluded))
        << "seed " << seed;
  } else {
    EXPECT_EQ(stats.rebuilds_started, 0u);
    EXPECT_EQ(stats.objects_lost, 0u) << "seed " << seed;
  }
  EXPECT_EQ(stats.records_unrecoverable, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace daosim
