// Tests for OID encoding, object classes and placement layouts, including
// distribution-uniformity properties across classes (parameterized).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "placement/layout.h"
#include "placement/objclass.h"
#include "placement/oid.h"

namespace daosim::placement {
namespace {

TEST(ObjClassSpec, ShardingClasses) {
  EXPECT_EQ(classSpec(ObjClass::S1).groups, 1);
  EXPECT_EQ(classSpec(ObjClass::S4).groups, 4);
  EXPECT_EQ(classSpec(ObjClass::SX).groups, -1);
  EXPECT_EQ(classSpec(ObjClass::S1).groupSize(), 1);
  EXPECT_FALSE(classSpec(ObjClass::SX).erasureCoded());
  EXPECT_FALSE(classSpec(ObjClass::SX).replicated());
}

TEST(ObjClassSpec, RedundancyClasses) {
  auto rp = classSpec(ObjClass::RP_2GX);
  EXPECT_TRUE(rp.replicated());
  EXPECT_EQ(rp.groupSize(), 2);
  EXPECT_DOUBLE_EQ(rp.writeAmplification(), 2.0);

  auto ec = classSpec(ObjClass::EC_2P1GX);
  EXPECT_TRUE(ec.erasureCoded());
  EXPECT_EQ(ec.groupSize(), 3);
  EXPECT_DOUBLE_EQ(ec.writeAmplification(), 1.5);

  auto ec42 = classSpec(ObjClass::EC_4P2GX);
  EXPECT_DOUBLE_EQ(ec42.writeAmplification(), 1.5);
}

TEST(Oid, EncodesClassAndPreservesUserBits) {
  auto oid = makeOid(ObjClass::EC_2P1GX, 0xdeadbeefcafeULL, 0x1234);
  EXPECT_EQ(oidClass(oid), ObjClass::EC_2P1GX);
  EXPECT_EQ(oid.lo, 0xdeadbeefcafeULL);
  EXPECT_EQ(oidUserHi(oid), 0x1234u);
}

TEST(Oid, HashDiffersByClassAndId) {
  auto a = makeOid(ObjClass::S1, 1);
  auto b = makeOid(ObjClass::S1, 2);
  auto c = makeOid(ObjClass::SX, 1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_NE(a, b);
}

TEST(Layout, SxUsesEveryTarget) {
  const int targets = 256;
  auto layout = computeLayout(makeOid(ObjClass::SX, 42), targets);
  EXPECT_EQ(layout.groups, targets);
  EXPECT_EQ(layout.group_size, 1);
  std::set<int> used(layout.targets.begin(), layout.targets.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(targets));
}

TEST(Layout, S1UsesExactlyOneTarget) {
  auto layout = computeLayout(makeOid(ObjClass::S1, 7), 64);
  EXPECT_EQ(layout.groups, 1);
  EXPECT_EQ(layout.targets.size(), 1u);
  EXPECT_GE(layout.targets[0], 0);
  EXPECT_LT(layout.targets[0], 64);
}

TEST(Layout, GroupMembersAreDistinct) {
  for (std::uint64_t id = 0; id < 200; ++id) {
    auto layout = computeLayout(makeOid(ObjClass::EC_2P1GX, id), 48);
    for (int g = 0; g < layout.groups; ++g) {
      auto members = layout.groupTargets(g);
      std::set<int> s(members.begin(), members.end());
      EXPECT_EQ(s.size(), members.size()) << "oid " << id << " group " << g;
    }
  }
}

TEST(Layout, NoTargetRepeatsWithinLayout) {
  for (std::uint64_t id = 0; id < 200; ++id) {
    auto layout = computeLayout(makeOid(ObjClass::RP_2GX, id), 32);
    std::set<int> s(layout.targets.begin(), layout.targets.end());
    EXPECT_EQ(s.size(), layout.targets.size()) << "oid " << id;
  }
}

TEST(Layout, DeterministicForSameOid) {
  auto a = computeLayout(makeOid(ObjClass::SX, 99), 128);
  auto b = computeLayout(makeOid(ObjClass::SX, 99), 128);
  EXPECT_EQ(a.targets, b.targets);
}

TEST(Layout, ThrowsWhenClassNeedsMoreTargetsThanPool) {
  EXPECT_THROW(computeLayout(makeOid(ObjClass::EC_2P1G1, 1), 2),
               std::invalid_argument);
  EXPECT_THROW(computeLayout(makeOid(ObjClass::S1, 1), 0),
               std::invalid_argument);
}

TEST(Layout, FixedGroupCountClampedToPool) {
  // S8 on a 4-target pool degrades to 4 groups instead of duplicating.
  auto layout = computeLayout(makeOid(ObjClass::S8, 5), 4);
  EXPECT_EQ(layout.groups, 4);
}

TEST(Layout, DkeyGroupStableAndInRange) {
  auto layout = computeLayout(makeOid(ObjClass::SX, 11), 96);
  for (int i = 0; i < 100; ++i) {
    std::string key = "chunk" + std::to_string(i);
    int g = dkeyGroup(layout, key);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, layout.groups);
    EXPECT_EQ(g, dkeyGroup(layout, key));
  }
}

// Property: placement of many S1 objects is near-uniform over targets.
struct UniformityCase {
  ObjClass oclass;
  int targets;
};

class PlacementUniformity : public ::testing::TestWithParam<UniformityCase> {};

TEST_P(PlacementUniformity, S1StyleObjectsSpreadEvenly) {
  const auto [oclass, targets] = GetParam();
  std::vector<int> load(static_cast<std::size_t>(targets), 0);
  const int objects = 20000;
  for (int i = 0; i < objects; ++i) {
    auto layout =
        computeLayout(makeOid(oclass, static_cast<std::uint64_t>(i)), targets);
    for (int t : layout.targets) load[static_cast<std::size_t>(t)]++;
  }
  const double mean =
      static_cast<double>(objects) *
      static_cast<double>(computeLayout(makeOid(oclass, 0), targets)
                              .targets.size()) /
      targets;
  // Binomial-ish bins: allow 5 standard deviations (plus a floor for small
  // means) so the test is robust across many bins without masking skew.
  const double tolerance = std::max(0.3 * mean, 5.0 * std::sqrt(mean));
  for (int t = 0; t < targets; ++t) {
    EXPECT_NEAR(load[static_cast<std::size_t>(t)], mean, tolerance)
        << "target " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, PlacementUniformity,
    ::testing::Values(UniformityCase{ObjClass::S1, 64},
                      UniformityCase{ObjClass::S1, 256},
                      UniformityCase{ObjClass::S4, 64},
                      UniformityCase{ObjClass::RP_2G1, 32},
                      UniformityCase{ObjClass::EC_2P1G1, 48}));

// Property: dkeys of an SX object spread near-uniformly over groups.
TEST(Layout, DkeyDistributionUniform) {
  auto layout = computeLayout(makeOid(ObjClass::SX, 3), 256);
  std::vector<int> load(static_cast<std::size_t>(layout.groups), 0);
  const int keys = 100000;
  for (int i = 0; i < keys; ++i) {
    load[static_cast<std::size_t>(dkeyGroup(layout, "k" + std::to_string(i)))]++;
  }
  const double mean = static_cast<double>(keys) / layout.groups;
  for (int g = 0; g < layout.groups; ++g) {
    EXPECT_NEAR(load[static_cast<std::size_t>(g)], mean, 0.3 * mean);
  }
}

}  // namespace
}  // namespace daosim::placement
