// obs::Telemetry contract tests: kernel-driven bin boundaries (including
// intervals that do not divide the run, zero-length runs, and intervals
// longer than the run), rate-meter windowing with a partial final bin,
// probe sampling, CSV name escaping + reader round-trip, schema-version
// rejection, the bottleneck analyzer on a synthetic two-station pipeline,
// and byte-identical hub dumps for serial vs parallel sweeps.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/fault_injector.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "daos/array.h"
#include "daos/client.h"
#include "obs/telemetry.h"
#include "obs/telemetry_reader.h"
#include "sim/fault_plan.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using obs::Telemetry;
using sim::Simulation;
using sim::Task;
using sim::Time;
using namespace sim::literals;

Task<void> idleUntil(Simulation* sim, Time t) {
  co_await sim->delay(t - sim->now());
}

// --- sampler bin boundaries ------------------------------------------------

TEST(TelemetrySampler, IntervalNotDividingRunEmitsPartialFinalBin) {
  Simulation sim;
  Telemetry t(10_ms);
  t.gauge("g");
  t.attach(sim);
  sim.spawn(idleUntil(&sim, 25_ms));
  sim.run();
  t.finish();
  const Telemetry::Node* n = t.find("g");
  ASSERT_NE(n, nullptr);
  std::vector<Time> at;
  for (const auto& [ts, v] : n->samples) at.push_back(ts);
  EXPECT_EQ(at, (std::vector<Time>{10_ms, 20_ms, 25_ms}));
}

TEST(TelemetrySampler, ZeroLengthRunHasNoSamples) {
  Simulation sim;
  Telemetry t(10_ms);
  t.gauge("g");
  t.attach(sim);
  t.finish();
  EXPECT_EQ(t.sampleCount(), 0u);
}

TEST(TelemetrySampler, IntervalLongerThanRunYieldsOnePartialSample) {
  Simulation sim;
  Telemetry t(10_ms);
  t.gauge("g");
  t.attach(sim);
  sim.spawn(idleUntil(&sim, 5_ms));
  sim.run();
  t.finish();
  const Telemetry::Node* n = t.find("g");
  ASSERT_EQ(n->samples.size(), 1u);
  EXPECT_EQ(n->samples[0].first, 5_ms);
}

TEST(TelemetrySampler, FinishIsIdempotent) {
  Simulation sim;
  Telemetry t(10_ms);
  t.gauge("g");
  t.attach(sim);
  sim.spawn(idleUntil(&sim, 12_ms));
  sim.run();
  t.finish();
  const std::size_t n = t.sampleCount();
  t.finish();
  t.detach();
  EXPECT_EQ(t.sampleCount(), n);
}

TEST(TelemetrySampler, AttachTimeIsTheSeriesOrigin) {
  // A registry attached mid-run reports timestamps relative to attach, so
  // identical workloads dump identically regardless of deployment time.
  Simulation sim;
  sim.spawn(idleUntil(&sim, 7_ms));
  sim.run();
  Telemetry t(10_ms);
  t.gauge("g");
  t.attach(sim);
  sim.spawn(idleUntil(&sim, 7_ms + 15_ms));
  sim.run();
  t.finish();
  const Telemetry::Node* n = t.find("g");
  ASSERT_EQ(n->samples.size(), 2u);
  EXPECT_EQ(n->samples[0].first, 10_ms);
  EXPECT_EQ(n->samples[1].first, 15_ms);
}

// --- rate windowing --------------------------------------------------------

Task<void> pump(Simulation* sim, Telemetry::Handle h, int ticks) {
  for (int i = 0; i < ticks; ++i) {
    co_await sim->delay(1_ms);
    h.add(1000.0);
  }
}

// 40% duty cycle: 0.4ms of busy time accrued per 1ms step.
Task<void> accrueBusy(Simulation* sim, double* busy_ns) {
  for (int i = 0; i < 20; ++i) {
    co_await sim->delay(1_ms);
    *busy_ns += 0.4e6;
  }
}

TEST(TelemetryRate, PerBinDeltaOverActualBinWidth) {
  Simulation sim;
  Telemetry t(10_ms);
  Telemetry::Handle h = t.rate("bytes");
  t.attach(sim);
  sim.spawn(pump(&sim, h, 25));  // +1000 every 1ms for 25ms
  sim.run();
  t.finish();
  const Telemetry::Node* n = t.find("bytes");
  ASSERT_EQ(n->samples.size(), 3u);
  // Whole 10ms bins: 10 ticks * 1000 / 0.01s.
  EXPECT_DOUBLE_EQ(n->samples[0].second, 1e6);
  EXPECT_DOUBLE_EQ(n->samples[1].second, 1e6);
  // Partial 5ms bin divides by its real width, so the rate is unchanged.
  EXPECT_EQ(n->samples[2].first, 25_ms);
  EXPECT_DOUBLE_EQ(n->samples[2].second, 1e6);
  // Summary keeps the cumulative total, not the rate.
  EXPECT_DOUBLE_EQ(n->value, 25000.0);
}

TEST(TelemetryRate, ProbeBusySecondsSampleAsUtilization) {
  Simulation sim;
  Telemetry t(10_ms);
  double busy_ns = 0;
  t.addProbe("st/busy_frac", Telemetry::Kind::kRate,
             [&busy_ns] { return busy_ns / 1e9; });
  t.attach(sim);
  sim.spawn(accrueBusy(&sim, &busy_ns));
  sim.run();
  t.finish();
  const Telemetry::Node* n = t.find("st/busy_frac");
  ASSERT_EQ(n->samples.size(), 2u);
  EXPECT_NEAR(n->samples[0].second, 0.4, 1e-12);
  EXPECT_NEAR(n->samples[1].second, 0.4, 1e-12);
}

// --- registration ----------------------------------------------------------

TEST(TelemetryTree, KindConflictAndNewlineRejected) {
  Telemetry t;
  t.counter("a/b");
  EXPECT_NO_THROW(t.counter("a/b"));  // same kind dedups to one node
  EXPECT_THROW(t.gauge("a/b"), std::invalid_argument);
  EXPECT_THROW(t.gauge("bad\nname"), std::invalid_argument);
  EXPECT_THROW(t.gauge("bad\rname"), std::invalid_argument);
}

// --- escaping + reader round-trip -------------------------------------------

TEST(TelemetryCsv, CommaAndQuoteNamesRoundTripThroughReader) {
  Simulation sim;
  Telemetry t(10_ms);
  const std::string evil = "evil,\"quoted\"/path";
  t.gauge(evil);
  t.attach(sim);
  sim.spawn(idleUntil(&sim, 12_ms));
  sim.run();
  t.finish();
  std::stringstream ss;
  t.writeCsv(ss);
  const obs::TelemetryDump dump = obs::parseTelemetryCsv(ss);
  EXPECT_EQ(dump.schema, 2);
  ASSERT_EQ(dump.summary.count(evil), 1u);
  EXPECT_EQ(dump.summary.at(evil).first, "gauge");
  ASSERT_EQ(dump.series.count(evil), 1u);
  EXPECT_EQ(dump.series.at(evil).size(), 2u);  // 10ms + partial 12ms
}

TEST(TelemetryCsv, ReaderRejectsOtherSchemas) {
  std::stringstream ss;
  ss << "# daosim-metrics schema=1\nkind,name,field,value\n";
  try {
    obs::parseTelemetryCsv(ss);
    FAIL() << "expected schema mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema 1"), std::string::npos)
        << e.what();
  }
  std::stringstream junk("not,a,dump\n");
  EXPECT_THROW(obs::parseTelemetryCsv(junk), std::runtime_error);
}

// --- station classes + analyzer ---------------------------------------------

TEST(TelemetryAnalyzer, StationClassStripsIndicesAndRunLabels) {
  EXPECT_EQ(obs::stationClass("server/3/target/5/nvme/busy_frac"), "nvme");
  EXPECT_EQ(obs::stationClass("rep/0/server/3/target/5/nvme/busy_frac"),
            "nvme");
  EXPECT_EQ(obs::stationClass("client/7/nic/rx/bytes_per_s"), "nic/rx");
  EXPECT_EQ(obs::stationClass("ior-dfs/c4/n16/rep/2/net/inflight"), "net");
  EXPECT_EQ(obs::stationClass("mds/busy_frac"), "mds");
}

TEST(TelemetryAnalyzer, TwoStationPipelineNamesTheSlowStation) {
  // Synthetic pipeline: 4 NVMe units near saturation, 4 xstreams mostly
  // idle, plus op.* layer counters dominated by device time.
  std::stringstream ss;
  ss << "# daosim-metrics schema=2\nkind,name,field,value\n";
  for (int u = 0; u < 4; ++u) {
    for (int b = 1; b <= 3; ++b) {
      ss << "series,target/" << u << "/nvme/busy_frac," << b * 10000000
         << ",0.9\n";
      ss << "series,target/" << u << "/xs/busy_frac," << b * 10000000
         << ",0.2\n";
    }
  }
  ss << "counter,op.write.device_ns,value,8000000000\n";
  ss << "counter,op.write.net_request_ns,value,1500000000\n";
  ss << "counter,op.write.client_ns,value,500000000\n";
  const obs::Analysis a = obs::analyze(obs::parseTelemetryCsv(ss));
  EXPECT_EQ(a.verdict, "nvme");
  EXPECT_NEAR(a.verdict_util, 0.9, 1e-9);
  ASSERT_EQ(a.classes.size(), 2u);
  EXPECT_FALSE(a.classes[0].straggler);  // perfectly balanced
  ASSERT_FALSE(a.layer_share.empty());
  EXPECT_EQ(a.layer_share[0].first, "device");
  EXPECT_NEAR(a.layer_share[0].second, 0.8, 1e-9);
}

TEST(TelemetryAnalyzer, ImbalancedClassFlagsStraggler) {
  std::stringstream ss;
  ss << "# daosim-metrics schema=2\nkind,name,field,value\n";
  for (int u = 0; u < 4; ++u) {
    const char* util = u == 2 ? "0.9" : "0.1";
    ss << "series,target/" << u << "/nvme/busy_frac,10000000," << util
       << "\n";
  }
  const obs::Analysis a = obs::analyze(obs::parseTelemetryCsv(ss));
  ASSERT_EQ(a.classes.size(), 1u);
  EXPECT_TRUE(a.classes[0].straggler);
  EXPECT_EQ(a.classes[0].hottest_unit, "target/2/nvme");
  EXPECT_NEAR(a.classes[0].imbalance, 0.9 / 0.3, 1e-9);
}

// --- hub determinism ---------------------------------------------------------

Task<void> hubWorkload(Simulation* sim, Telemetry::Handle ops,
                       std::uint64_t seed) {
  for (std::uint64_t i = 0; i < 20 + seed; ++i) {
    co_await sim->delay(1_ms);
    ops.add(1.0 + static_cast<double>(seed));
  }
}

std::string hubDump(int jobs) {
  obs::TelemetryHub hub;
  sim::ParallelRunner pool(jobs);
  pool.map(4, [&hub](std::size_t rep) {
    Simulation sim;
    Telemetry t(10_ms);
    Telemetry::Handle ops = t.rate("ops");
    t.addProbe("now_ms", Telemetry::Kind::kGauge,
               [&sim] { return sim::toSeconds(sim.now()) * 1e3; });
    t.attach(sim);
    sim.spawn(hubWorkload(&sim, ops, rep));
    sim.run();
    hub.add("rep/" + std::to_string(rep), std::move(t));
    return 0;
  });
  std::ostringstream os;
  hub.writeCsv(os);
  return os.str();
}

TEST(TelemetryHub, SerialAndParallelDumpsAreByteIdentical) {
  const std::string serial = hubDump(1);
  EXPECT_EQ(serial, hubDump(4));
  // And the merged dump parses with every run's series present.
  std::stringstream ss(serial);
  const obs::TelemetryDump dump = obs::parseTelemetryCsv(ss);
  EXPECT_EQ(dump.run_intervals.size(), 4u);
  EXPECT_EQ(dump.series.count("rep/0/ops"), 1u);
  EXPECT_EQ(dump.series.count("rep/3/ops"), 1u);
}

/// Full-testbed telemetry dump with all standard probes, optionally with an
/// installed empty-plan FaultInjector. The injector must register nothing
/// and perturb nothing: all four combinations (with/without machinery,
/// serial/parallel) produce byte-identical CSV.
std::string testbedDump(int jobs, bool with_fault_machinery) {
  obs::TelemetryHub hub;
  sim::ParallelRunner pool(jobs);
  pool.map(2, [&hub, with_fault_machinery](std::size_t rep) {
    apps::DaosTestbed::Options opt;
    opt.server_nodes = 2;
    opt.client_nodes = 1;
    opt.seed = 7 + rep;
    opt.with_dfuse = false;
    apps::DaosTestbed tb(opt);
    Telemetry t(1_ms);
    apps::registerProbes(t, tb);
    std::optional<apps::FaultInjector> inj;
    if (with_fault_machinery) {
      inj.emplace(tb, sim::FaultPlan{});
      inj->registerTelemetry(t);
      inj->install();
    }
    t.attach(tb.sim());
    daos::Client client(tb.daos(), tb.clients()[0], 42);
    struct Work {
      static Task<void> run(daos::Client* c, daos::Container cont,
                            std::uint64_t rep) {
        daos::Array a = co_await daos::Array::create(
            *c, cont, c->nextOid(placement::ObjClass::RP_2G1),
            {.cell_size = 1, .chunk_size = 1 << 20});
        for (std::uint64_t i = 0; i < 4 + rep; ++i) {
          co_await a.write(i * hw::kMiB, vos::Payload::synthetic(hw::kMiB));
        }
        (void)co_await a.read(0, hw::kMiB);
      }
    };
    tb.sim().spawn(Work::run(&client, tb.container(), rep));
    tb.sim().run();
    hub.add("rep/" + std::to_string(rep), std::move(t));
    return 0;
  });
  std::ostringstream os;
  hub.writeCsv(os);
  return os.str();
}

TEST(TelemetryHub, EmptyFaultPlanDumpsAreByteIdenticalSerialAndParallel) {
  const std::string plain = testbedDump(1, false);
  EXPECT_EQ(plain, testbedDump(1, true));
  EXPECT_EQ(plain, testbedDump(2, true));
  EXPECT_EQ(plain, testbedDump(2, false));
  // The machinery-off dump has no fault series at all, and the pool-health
  // gauges it does always export sit flat at zero.
  EXPECT_EQ(plain.find("faults/"), std::string::npos);
  EXPECT_NE(plain.find("rep/0/daos/targets_failed"), std::string::npos);
}

TEST(TelemetryHub, DuplicateLabelKeepsFirstRegistry) {
  obs::TelemetryHub hub;
  Telemetry a;
  a.gauge("first");
  Telemetry b;
  b.gauge("second");
  hub.add("rep/0", std::move(a));
  hub.add("rep/0", std::move(b));
  EXPECT_EQ(hub.runCount(), 1u);
  std::ostringstream os;
  hub.writeCsv(os);
  EXPECT_NE(os.str().find("rep/0/first"), std::string::npos);
  EXPECT_EQ(os.str().find("rep/0/second"), std::string::npos);
}

}  // namespace
}  // namespace daosim
