// Integration tests for the benchmark applications: every IOR API, Field
// I/O, fdb-hammer on all three stores, the SPMD harness semantics, and a
// headline calibration check against the paper's §III-B numbers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/runner.h"
#include "apps/sweep.h"
#include "apps/testbed.h"

namespace daosim::apps {
namespace {

using placement::ObjClass;
using hw::kKiB;
using hw::kMiB;

DaosTestbed::Options smallDaos() {
  DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 2;
  return opt;
}

IorConfig smallIor() {
  IorConfig cfg;
  cfg.transfer = 256 * kKiB;
  cfg.ops = 20;
  return cfg;
}

class IorApiTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IorApiTest, RunsAndAccountsAllBytes) {
  DaosTestbed tb(smallDaos());
  Ior bench(tb.ioEnv(), GetParam(), smallIor());
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);

  const std::uint64_t expected = 4ULL * 20 * 256 * kKiB;
  EXPECT_EQ(r.write().bytes, expected);
  EXPECT_EQ(r.read().bytes, expected);
  EXPECT_EQ(r.write().ops, 80u);
  EXPECT_GT(r.write().gibps(), 0.05);
  EXPECT_GT(r.read().gibps(), 0.05);
  // Write phase strictly precedes read phase (barrier between them).
  EXPECT_LE(r.write().last_end, r.read().first_start);
}

INSTANTIATE_TEST_SUITE_P(
    AllApis, IorApiTest,
    ::testing::Values("daos-array", "dfs", "dfuse", "dfuse-il", "hdf5",
                      "hdf5-daos"),
    [](const auto& info) {
      // Test names must be identifiers: registry names minus the dashes.
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IorDaosTest, BandwidthGrowsWithProcessCount) {
  // Runs must be long enough to exceed the devices' burst-absorption
  // window, like the paper's 10k-op runs; short bursts ride the SSD cache.
  double prev = 0;
  for (int ppn : {1, 4, 16}) {
    DaosTestbed tb(smallDaos());
    IorConfig cfg;
    cfg.transfer = 1 * kMiB;
    cfg.ops = 200;
    Ior bench(tb.ioEnv(), "daos-array", cfg);
    RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), ppn, bench);
    EXPECT_GT(r.write().gibps(), prev * 0.8);  // grows, then plateaus
    prev = r.write().gibps();
  }
  // 2 servers saturate at ~7.7 GiB/s write; 32 procs should get close.
  EXPECT_GT(prev, 5.8);
}

TEST(IorDaosTest, StoredBytesMatchWrites) {
  DaosTestbed tb(smallDaos());
  IorConfig cfg = smallIor();
  Ior bench(tb.ioEnv(), "daos-array", cfg);
  const std::uint64_t before = tb.daos().bytesStored();
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(1), 2, bench);
  const std::uint64_t stored = tb.daos().bytesStored() - before;
  EXPECT_GE(stored, r.write().bytes);
  EXPECT_LT(stored, r.write().bytes + 4096);  // plus array metadata records
}

TEST(IorDaosTest, ErasureCodedWritesCost50PercentMore) {
  DaosTestbed tb(smallDaos());
  IorConfig cfg = smallIor();
  cfg.transfer = 1 * kMiB;
  cfg.oclass = ObjClass::EC_2P1GX;
  Ior bench(tb.ioEnv(), "daos-array", cfg);
  const std::uint64_t before = tb.daos().bytesStored();
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(1), 2, bench);
  const std::uint64_t stored = tb.daos().bytesStored() - before;
  EXPECT_NEAR(static_cast<double>(stored),
              1.5 * static_cast<double>(r.write().bytes),
              0.01 * static_cast<double>(stored));
}

TEST(FieldIoTest, RunsWithIndexOps) {
  DaosTestbed tb(smallDaos());
  FieldIoConfig cfg;
  cfg.field_size = 512 * kKiB;
  cfg.fields = 15;
  FieldIo bench(tb.ioEnv(), "daos-array", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
  EXPECT_EQ(r.write().bytes, 4ULL * 15 * 512 * kKiB);
  EXPECT_EQ(r.read().bytes, r.write().bytes);
  EXPECT_GT(r.read().gibps(), 0.05);
}

TEST(FdbVsFieldIo, FdbReadsFasterThanFieldIoSizeChecks) {
  // Same workload shape, one process: fdb-hammer skips array create,
  // metadata open and size probes, so its per-process read rate is higher.
  double fieldio_read = 0, fdb_read = 0;
  {
    DaosTestbed tb(smallDaos());
    FieldIoConfig cfg;
    cfg.fields = 30;
    FieldIo bench(tb.ioEnv(), "daos-array", cfg);
    fieldio_read =
        runSpmd(tb.sim(), tb.clientSubset(1), 1, bench).read().gibps();
  }
  {
    DaosTestbed tb(smallDaos());
    FdbConfig cfg;
    cfg.fields = 30;
    Fdb bench(tb.ioEnv(), "daos-array", cfg);
    fdb_read = runSpmd(tb.sim(), tb.clientSubset(1), 1, bench).read().gibps();
  }
  EXPECT_GT(fdb_read, fieldio_read * 1.05);
}

TEST(FdbLustreTest, WriteOptimizedReadMetadataBound) {
  LustreTestbed::Options opt;
  opt.oss_nodes = 2;
  opt.client_nodes = 2;
  LustreTestbed tb(opt);
  FdbConfig cfg;
  cfg.fields = 40;
  Fdb bench(tb.ioEnv(), "lustre-posix", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
  EXPECT_EQ(r.write().bytes, 4ULL * 40 * kMiB);
  EXPECT_EQ(r.read().bytes, r.write().bytes);
  // Buffered large-block writes beat per-field open/read/close reads.
  EXPECT_GT(r.write().gibps(), r.read().gibps());
}

TEST(FdbRadosTest, RunsOnCeph) {
  CephTestbed::Options opt;
  opt.osd_nodes = 2;
  opt.client_nodes = 2;
  CephTestbed tb(opt);
  FdbConfig cfg;
  cfg.fields = 80;
  Fdb bench(tb.ioEnv(), "rados", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 16, bench);
  EXPECT_EQ(r.write().bytes, 32ULL * 80 * kMiB);
  // At saturation, write amplification caps writes (~5.3 GiB/s on 2 nodes)
  // below the read ceiling.
  EXPECT_GT(r.read().gibps(), r.write().gibps());
  EXPECT_LT(r.write().gibps(), 5.5);
}

TEST(IorLustreTest, LargeIoApproachesHardware) {
  LustreTestbed::Options opt;
  opt.oss_nodes = 2;
  opt.client_nodes = 2;
  LustreTestbed tb(opt);
  IorConfig cfg;
  cfg.ops = 100;
  Ior bench(tb.ioEnv(), "lustre-posix", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 32, bench);
  // 2 OSS nodes: ~7.7 GiB/s write ideal, network-bound ~12.5 read ideal.
  EXPECT_GT(r.write().gibps(), 5.5);
  EXPECT_GT(r.read().gibps(), 8.0);
}

TEST(IorRadosTest, ObjectPerProcessUnderperforms) {
  CephTestbed::Options opt;
  opt.osd_nodes = 2;
  opt.client_nodes = 2;
  CephTestbed tb(opt);
  IorConfig cfg;
  cfg.ops = 100;  // the paper's cap to stay within 132 MiB objects
  Ior bench(tb.ioEnv(), "rados", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(2), 8, bench);
  // 16 proc-objects over 32 OSDs: imbalance + BlueStore overheads keep
  // write bandwidth clearly under the 7.7 GiB/s hardware bound.
  EXPECT_LT(r.write().gibps(), 5.0);
  EXPECT_GT(r.write().gibps(), 0.5);
}

TEST(RunnerTest, ProcessFailurePropagates) {
  class Failing : public SpmdBenchmark {
   public:
    sim::Task<void> process(ProcContext ctx) override {
      co_await ctx.sim->delay(sim::kMillisecond);
      if (ctx.rank == 1) throw std::runtime_error("rank 1 exploded");
    }
  };
  DaosTestbed tb(smallDaos());
  Failing bench;
  EXPECT_THROW(runSpmd(tb.sim(), tb.clientSubset(2), 2, bench),
               std::runtime_error);
}

TEST(SweepTest, GridAndScaling) {
  auto grid = clientNodeGrid(16, 8);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid.front().client_nodes, 1);
  EXPECT_EQ(grid.back().client_nodes, 16);
  EXPECT_EQ(grid.back().totalProcs(), 128);

  auto cross = crossGrid({1, 2}, {4, 8});
  EXPECT_EQ(cross.size(), 4u);

  EXPECT_EQ(scaledOps(1, 1000, 40000), 1000u);    // capped at base
  EXPECT_EQ(scaledOps(512, 1000, 40000), 78u);    // scaled down
  EXPECT_EQ(scaledOps(4000, 1000, 40000), 50u);   // floor
}

// Headline calibration: the paper's 16-server DAOS system reaches ~60 GiB/s
// write and ~90 GiB/s read through libdaos with enough clients (Fig. 1),
// against ideals of 61.76 (SSD) and 100 (client NIC).
TEST(CalibrationTest, SixteenServerHeadlineNumbers) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = 16;
  opt.with_dfuse = false;
  DaosTestbed tb(opt);
  IorConfig cfg;
  cfg.ops = 150;
  Ior bench(tb.ioEnv(), "daos-array", cfg);
  RunResult r = runSpmd(tb.sim(), tb.clientSubset(16), 16, bench);
  EXPECT_GT(r.write().gibps(), 48.0);
  EXPECT_LT(r.write().gibps(), 63.0);
  EXPECT_GT(r.read().gibps(), 80.0);
  EXPECT_LT(r.read().gibps(), 101.0);
}

}  // namespace
}  // namespace daosim::apps
