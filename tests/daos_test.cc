// Integration tests for the DAOS layer: pool/container life-cycle, KV and
// Array round-trips across object classes, redundancy (replication + EC)
// including degraded reads under device failure, space accounting, OID
// management, and latency sanity checks against the hardware model.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using daos::Array;
using daos::Client;
using daos::Container;
using daos::DaosConfig;
using daos::DaosSystem;
using daos::EventQueue;
using daos::KeyValue;
using placement::ObjClass;
using sim::Task;
using vos::Payload;
using namespace sim::literals;
using hw::kMiB;

class DaosTest : public ::testing::Test {
 protected:
  DaosTest() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 4);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, /*id=*/1);
  }

  /// Runs `body(Container&)` as a simulated process against a fresh
  /// container.
  template <typename Body>
  void runInContainer(Body body) {
    auto h = sim_.spawn(
        [](Client& c, Body body) -> Task<void> {
          co_await c.poolConnect();
          Container cont = co_await c.contCreate("test");
          co_await body(c, cont);
        }(*client_, std::move(body)));
    sim_.run();
    if (h.failed()) {
      // Re-join to surface the exception message.
      sim_.spawn([](sim::ProcHandle h) -> Task<void> { co_await h.join(); }(h));
      EXPECT_NO_THROW(sim_.run());
      FAIL() << "simulated process failed";
    }
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_F(DaosTest, PoolAndContainerLifecycle) {
  bool checked = false;
  auto h = sim_.spawn([](Client& c, DaosSystem& sys, bool& ok) -> Task<void> {
    co_await c.poolConnect();
    Container a = co_await c.contCreate("alpha");
    Container b = co_await c.contCreate("beta");
    ok = a.valid() && b.valid() && a.id != b.id;

    Container a2 = co_await c.contOpen("alpha");
    ok = ok && a2.id == a.id;

    bool threw = false;
    try {
      co_await c.contCreate("alpha");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    ok = ok && threw;

    co_await c.contDestroy("alpha");
    threw = false;
    try {
      co_await c.contOpen("alpha");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    ok = ok && threw && sys.poolService().containerCount() == 1;
  }(*client_, *system_, checked));
  sim_.run();
  ASSERT_FALSE(h.failed());
  EXPECT_TRUE(checked);
}

TEST_F(DaosTest, KvRoundTripAndList) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    KeyValue kv(c, cont, c.nextOid(ObjClass::SX));
    co_await kv.put("temperature", Payload::fromString("291.5K"));
    co_await kv.put("pressure", Payload::fromString("1013hPa"));
    co_await kv.put("humidity", Payload::fromString("0.62"));

    auto t = co_await kv.get("temperature");
    EXPECT_TRUE(t.has_value());
    EXPECT_EQ(t->toString(), "291.5K");

    auto missing = co_await kv.get("wind");
    EXPECT_FALSE(missing.has_value());

    auto keys = co_await kv.list();
    EXPECT_EQ(keys, (std::vector<std::string>{"humidity", "pressure",
                                              "temperature"}));

    EXPECT_TRUE(co_await kv.remove("pressure"));
    EXPECT_FALSE(co_await kv.remove("pressure"));
    keys = co_await kv.list();
    EXPECT_EQ(keys.size(), 2u);
  });
}

TEST_F(DaosTest, KvOverwriteReturnsLatest) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    KeyValue kv(c, cont, c.nextOid(ObjClass::S1));
    co_await kv.put("k", Payload::fromString("v1"));
    co_await kv.put("k", Payload::fromString("v2"));
    auto v = co_await kv.get("k");
    EXPECT_TRUE(v.has_value());  // ASSERT_* returns, which coroutines forbid
    if (v) {
      EXPECT_EQ(v->toString(), "v2");
    }
  });
}

TEST_F(DaosTest, ArrayWriteReadRoundTrip) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1 << 16});
    Payload data = vos::patternPayload(200000, 42);  // spans 4 chunks
    co_await a.write(0, data);
    Payload back = co_await a.read(0, 200000);
    EXPECT_EQ(back, data);
    EXPECT_EQ(co_await a.getSize(), 200000u);
  });
}

TEST_F(DaosTest, ArrayPartialAndUnalignedReads) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1024});
    co_await a.write(100, Payload::fromString("hello"));
    co_await a.write(2000, Payload::fromString("world"));

    // Hole before 100 reads as zeros.
    Payload r = co_await a.read(98, 9);
    auto b = r.bytes();
    EXPECT_EQ(static_cast<char>(b[0]), '\0');
    EXPECT_EQ(static_cast<char>(b[2]), 'h');
    EXPECT_EQ(static_cast<char>(b[6]), 'o');

    // Cross-chunk read covering both extents and the gap.
    Payload all = co_await a.read(100, 1905);
    EXPECT_EQ(all.size(), 1905u);
    EXPECT_EQ(all.slice(0, 5).toString(), "hello");
    EXPECT_EQ(all.slice(1900, 5).toString(), "world");
    EXPECT_EQ(co_await a.getSize(), 2005u);
  });
}

TEST_F(DaosTest, ArrayOpenFetchesAttrs) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    auto oid = c.nextOid(ObjClass::S2);
    {
      Array a = co_await Array::create(c, cont, oid,
                                       {.cell_size = 4, .chunk_size = 8192});
      co_await a.write(0, Payload::fromString("persisted"));
    }
    Array reopened = co_await Array::open(c, cont, oid);
    EXPECT_EQ(reopened.attrs().cell_size, 4u);
    EXPECT_EQ(reopened.attrs().chunk_size, 8192u);
    Payload back = co_await reopened.read(0, 9);
    EXPECT_EQ(back.toString(), "persisted");

    bool threw = false;
    try {
      co_await Array::open(c, cont, c.nextOid(ObjClass::S1));
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

TEST_F(DaosTest, ArraySetSizeTruncatesAndExtends) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1024});
    co_await a.write(0, vos::patternPayload(5000, 1));
    co_await a.setSize(3000);
    EXPECT_EQ(co_await a.getSize(), 3000u);
    Payload beyond = co_await a.read(3000, 100);
    // Truncated region reads as holes (zeros).
    bool all_zero = true;
    for (auto byte : beyond.bytes()) {
      if (byte != std::byte{0}) all_zero = false;
    }
    EXPECT_TRUE(all_zero);

    co_await a.setSize(10000);
    EXPECT_EQ(co_await a.getSize(), 10000u);
  });
}

TEST_F(DaosTest, ObjPunchRemovesData) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1024});
    co_await a.write(0, vos::patternPayload(4096, 9));
    co_await a.punch();
    EXPECT_EQ(co_await a.getSize(), 0u);
    EXPECT_EQ(c.system().bytesStored(), 0u);
  });
}

TEST_F(DaosTest, ReplicatedKvSurvivesDeviceFailure) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    KeyValue kv(c, cont, c.nextOid(ObjClass::RP_2G1));
    co_await kv.put("key", Payload::fromString("precious"));

    // Fail the first replica's target device; get must fail over.
    const auto& layout = kv.layout();
    c.system().failTarget(layout.target(0, 0));
    auto v = co_await kv.get("key");
    EXPECT_TRUE(v.has_value());
    if (v) {
      EXPECT_EQ(v->toString(), "precious");
    }
    c.system().recoverTarget(layout.target(0, 0));
  });
}

TEST_F(DaosTest, ReplicationDoublesStoredBytes) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::RP_2GX),
                                     {.cell_size = 1, .chunk_size = 1 << 16});
    const std::uint64_t before = c.system().bytesStored();
    co_await a.write(0, vos::patternPayload(1 << 18, 3));
    const std::uint64_t delta = c.system().bytesStored() - before;
    EXPECT_EQ(delta, 2u << 18);

    Payload back = co_await a.read(0, 1 << 18);
    EXPECT_EQ(back, vos::patternPayload(1 << 18, 3));
  });
}

TEST_F(DaosTest, ReplicatedArrayDegradedRead) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::RP_2G1),
                                     {.cell_size = 1, .chunk_size = 1 << 16});
    Payload data = vos::patternPayload(1 << 16, 17);
    co_await a.write(0, data);
    c.system().failTarget(a.layout().target(0, 0));
    Payload back = co_await a.read(0, 1 << 16);
    EXPECT_EQ(back, data);
    c.system().recoverTarget(a.layout().target(0, 0));
  });
}

TEST_F(DaosTest, ErasureCodingStoresFiftyPercentOverhead) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::EC_2P1GX),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    const std::uint64_t before = c.system().bytesStored();
    co_await a.write(0, vos::patternPayload(4 << 20, 5));  // 4 full stripes
    const std::uint64_t delta = c.system().bytesStored() - before;
    EXPECT_EQ(delta, 6u << 20);  // 1.5x
  });
}

TEST_F(DaosTest, ErasureCodedDegradedReadReconstructsData) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::EC_2P1G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    Payload data = vos::patternPayload(1 << 20, 77);  // one full stripe
    co_await a.write(0, data);

    // Healthy read first.
    Payload healthy = co_await a.read(0, 1 << 20);
    EXPECT_EQ(healthy, data);

    // Fail data cell 0's device: the read must XOR-reconstruct from cell 1
    // + parity and still return identical bytes.
    c.system().failTarget(a.layout().target(0, 0));
    Payload degraded = co_await a.read(0, 1 << 20);
    EXPECT_EQ(degraded, data);

    // A parity-device failure must not affect normal reads.
    c.system().recoverTarget(a.layout().target(0, 0));
    c.system().failTarget(a.layout().target(0, 2));
    Payload still = co_await a.read(0, 1 << 20);
    EXPECT_EQ(still, data);
  });
}

TEST_F(DaosTest, AllocOidsRangesAreDisjoint) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    auto a = co_await c.allocOids(cont, 100, ObjClass::S1);
    auto b = co_await c.allocOids(cont, 100, ObjClass::S1);
    EXPECT_NE(a.lo, b.lo);
    EXPECT_GE(b.lo, a.lo + 100);
  });
}

TEST_F(DaosTest, ClientOidsAreUniqueAcrossClients) {
  Client other(*system_, client_node_, /*id=*/2);
  auto a = client_->nextOid(ObjClass::S1);
  auto b = other.nextOid(ObjClass::S1);
  EXPECT_NE(a, b);
  EXPECT_EQ(placement::oidUserHi(a), 1u);
  EXPECT_EQ(placement::oidUserHi(b), 2u);
}

TEST_F(DaosTest, WriteLatencyMatchesHardwareModel) {
  // A single unloaded 1 MiB write: ~165us request leg + xstream CPU +
  // ~530us device burst completion + response. Expect 0.5-1.5 ms; the
  // sustained device rate only bites under load (see hw/device.h).
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    const sim::Time t0 = c.sim().now();
    co_await a.write(0, Payload::synthetic(1 * kMiB));
    const sim::Time w = c.sim().now() - t0;
    EXPECT_GT(w, 500 * sim::kMicrosecond);
    EXPECT_LT(w, 1500 * sim::kMicrosecond);

    const sim::Time t1 = c.sim().now();
    (void)co_await a.read(0, 1 * kMiB);
    const sim::Time r = c.sim().now() - t1;
    EXPECT_GT(r, 500 * sim::kMicrosecond);
    EXPECT_LT(r, 1500 * sim::kMicrosecond);
  });
}

TEST_F(DaosTest, EventQueueOverlapsOperations) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    // Serial baseline: 4 writes to distinct chunks.
    const sim::Time t0 = c.sim().now();
    for (int i = 0; i < 4; ++i) {
      co_await a.write(static_cast<std::uint64_t>(i) << 20,
                       Payload::synthetic(1 * kMiB));
    }
    const sim::Time serial = c.sim().now() - t0;

    // Async via event queue: same work, overlapping.
    EventQueue eq(c.sim());
    const sim::Time t1 = c.sim().now();
    for (int i = 4; i < 8; ++i) {
      eq.launch(a.write(static_cast<std::uint64_t>(i) << 20,
                        Payload::synthetic(1 * kMiB)));
    }
    EXPECT_EQ(eq.inFlight(), 4u);
    co_await eq.waitAll();
    const sim::Time parallel = c.sim().now() - t1;
    EXPECT_LT(parallel, serial / 2);
  });
}

TEST_F(DaosTest, ConservationBytesWrittenEqualsBytesStored) {
  runInContainer([](Client& c, Container cont) -> Task<void> {
    std::uint64_t written = 0;
    for (int i = 0; i < 8; ++i) {
      Array a = co_await Array::create(
          c, cont, c.nextOid(ObjClass::SX),
          {.cell_size = 1, .chunk_size = 1 << 20});
      const std::uint64_t n = 100000 + static_cast<std::uint64_t>(i) * 37777;
      co_await a.write(0, Payload::synthetic(n));
      written += n;
    }
    // KV/array metadata adds a little; data bytes dominate and must match.
    const std::uint64_t stored = c.system().bytesStored();
    EXPECT_GE(stored, written);
    EXPECT_LT(stored, written + 8 * 64);  // metadata records only
  });
}

}  // namespace
}  // namespace daosim
