// Tests for the mini-HDF5 layer: format round-trips on the POSIX driver,
// the DAOS VOL (container per file, object per dataset), and the serialized
// leader-side metadata path that produces the paper's HDF5 scalability wall.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "daos/client.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hdf5/h5.h"
#include "hw/cluster.h"
#include "posix/dfuse.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace daosim {
namespace {

using daos::Client;
using daos::Container;
using daos::DaosSystem;
using hdf5::Dataset;
using hdf5::H5CostModel;
using hdf5::H5DaosFile;
using hdf5::H5PosixFile;
using sim::Task;
using sim::Time;
using vos::Payload;
using namespace sim::literals;
using hw::kKiB;
using hw::kMiB;

class Hdf5Test : public ::testing::Test {
 protected:
  Hdf5Test() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 4);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, 1);
  }

  template <typename Body>
  void run(Body body) {
    auto h = sim_.spawn([](Client& c, Body body) -> Task<void> {
      co_await c.poolConnect();
      Container cont = co_await c.contCreate("h5test");
      dfs::FileSystem fs = co_await dfs::FileSystem::mount(c, cont);
      co_await body(c, fs);
    }(*client_, std::move(body)));
    sim_.run();
    if (h.failed()) {
      sim_.spawn([](sim::ProcHandle h) -> Task<void> { co_await h.join(); }(h));
      EXPECT_NO_THROW(sim_.run());
      FAIL() << "simulated process failed";
    }
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_F(Hdf5Test, PosixDriverRoundTripAcrossReopen) {
  run([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    posix::DfsVfs vfs(fs);
    {
      auto file = co_await H5PosixFile::create(c.sim(), vfs, "/exp.h5");
      for (int i = 0; i < 3; ++i) {
        std::string name = "dset" + std::to_string(i);
        Dataset d = co_await file->createDataset(name, 100 * kKiB);
        co_await file->writeDataset(
            d, vos::patternPayload(100 * kKiB,
                                   static_cast<std::uint64_t>(i)));
      }
      co_await file->close();
    }
    {
      auto file = co_await H5PosixFile::open(c.sim(), vfs, "/exp.h5");
      for (int i = 0; i < 3; ++i) {
        Dataset d = co_await file->openDataset("dset" + std::to_string(i));
        EXPECT_EQ(d.size, 100 * kKiB);
        Payload back = co_await file->readDataset(d);
        EXPECT_EQ(back, vos::patternPayload(
                            100 * kKiB, static_cast<std::uint64_t>(i)));
      }
      bool threw = false;
      try {
        co_await file->openDataset("missing");
      } catch (const std::runtime_error&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
      co_await file->close();
    }
  });
}

TEST_F(Hdf5Test, PosixDriverWritesMetadataBesideData) {
  run([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    posix::DfsVfs vfs(fs);
    auto file = co_await H5PosixFile::create(c.sim(), vfs, "/meta.h5");
    Dataset d = co_await file->createDataset("x", kMiB);
    co_await file->writeDataset(d, Payload::synthetic(kMiB));
    co_await file->close();
    auto st = co_await vfs.stat("/meta.h5");
    // superblock + header + btree node + data + persisted index.
    EXPECT_GT(st.size, kMiB + 4096u + 512u);
  });
}

TEST_F(Hdf5Test, PosixDriverDataTransfersPayCopyCost) {
  run([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    posix::DfsVfs vfs(fs);
    auto file = co_await H5PosixFile::create(c.sim(), vfs, "/slow.h5");
    Dataset d = co_await file->createDataset("x", kMiB);

    const Time t0 = c.sim().now();
    co_await file->writeDataset(d, Payload::synthetic(kMiB));
    const Time h5_write = c.sim().now() - t0;

    dfs::File raw = co_await fs.open("/raw", {.create = true});
    const Time t1 = c.sim().now();
    co_await fs.write(raw, 0, Payload::synthetic(kMiB));
    const Time raw_write = c.sim().now() - t1;

    // Internal copy at 0.35 GiB/s adds ~2.8ms on top of the raw path.
    EXPECT_GT(h5_write, raw_write + 2 * sim::kMillisecond);
    co_await file->close();
  });
}

TEST_F(Hdf5Test, DaosVolRoundTripAcrossReopen) {
  run([](Client& c, dfs::FileSystem&) -> Task<void> {
    {
      auto file = co_await H5DaosFile::create(c, "sim.h5");
      Dataset d = co_await file->createDataset("temperature", 256 * kKiB);
      co_await file->writeDataset(d, vos::patternPayload(256 * kKiB, 42));
      co_await file->close();
    }
    {
      auto file = co_await H5DaosFile::open(c, "sim.h5");
      Dataset d = co_await file->openDataset("temperature");
      EXPECT_EQ(d.size, 256 * kKiB);
      Payload back = co_await file->readDataset(d);
      EXPECT_EQ(back, vos::patternPayload(256 * kKiB, 42));
      co_await file->close();
    }
  });
}

TEST_F(Hdf5Test, DaosVolUsesContainerPerFileAndObjectPerDataset) {
  run([](Client& c, dfs::FileSystem&) -> Task<void> {
    const std::size_t before = c.system().poolService().containerCount();
    auto f1 = co_await H5DaosFile::create(c, "a.h5");
    auto f2 = co_await H5DaosFile::create(c, "b.h5");
    EXPECT_EQ(c.system().poolService().containerCount(), before + 2);

    Dataset d1 = co_await f1->createDataset("x", kKiB);
    Dataset d2 = co_await f1->createDataset("y", kKiB);
    EXPECT_NE(d1.oid, d2.oid);
    co_await f1->close();
    co_await f2->close();
  });
}

TEST_F(Hdf5Test, DaosVolDatasetCreationSerializesOnLeader) {
  // N dataset creations from concurrent processes must take at least
  // N * raft_commit on the leader, regardless of server count: the
  // scalability wall of the adaptor.
  const int procs = 16;
  const int creates = 4;
  auto setup = sim_.spawn([](Client& c) -> Task<void> {
    co_await c.poolConnect();
    (void)co_await c.contCreate("warmup");
  }(*client_));
  sim_.run();
  ASSERT_FALSE(setup.failed());

  const Time t0 = sim_.now();
  for (int p = 0; p < procs; ++p) {
    sim_.spawn([](DaosSystem& sys, hw::NodeId node, int id,
                  int creates) -> Task<void> {
      Client c(sys, node, static_cast<std::uint32_t>(100 + id));
      auto file =
          co_await H5DaosFile::create(c, "p" + std::to_string(id) + ".h5");
      for (int i = 0; i < creates; ++i) {
        Dataset d = co_await file->createDataset("d" + std::to_string(i),
                                                 64 * kKiB);
        co_await file->writeDataset(d, Payload::synthetic(64 * kKiB));
      }
      co_await file->close();
    }(*system_, client_node_, p, creates));
  }
  sim_.run();
  const Time span = sim_.now() - t0;
  // Each create commits an OID allocation (55us) and each file create
  // commits a container create; 16 files + 64 allocations > 80 commits.
  const Time min_serialized =
      80 * system_->config().pool_service.raft_commit;
  EXPECT_GT(span, min_serialized);
}

}  // namespace
}  // namespace daosim
