// Critical-path profiler tests (trace schema 2):
//   * end-to-end round trip: a DAOS array workload traced, exported, and
//     re-parsed through obs::parseChromeTrace must yield causal leg trees
//     (nonzero leg ids, parents referencing legs of the same op) whose
//     exact decomposition sums to each op's span duration;
//   * exemplar reservoir: merge-order invariance (the determinism that
//     makes --jobs runs byte-identical to serial) and the K bound;
//   * decomposition exactness as a randomized property: arbitrary leg
//     forests, including overlapping and span-clipped legs, always account
//     for every nanosecond of the op exactly once;
//   * frozen-format guard: legs whose causal fields are all zero serialize
//     byte-identically to schema 1 (only the version stamp moved).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "obs/critical_path.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"
#include "sim/queue_station.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using namespace sim::literals;

sim::Task<void> arrayWorkload(daos::Client* c, int writes) {
  co_await c->poolConnect();
  daos::Container cont = co_await c->contCreate("trace");
  daos::Array arr = co_await daos::Array::create(
      *c, cont, c->nextOid(placement::ObjClass::SX), daos::Array::Attrs{});
  for (int i = 0; i < writes; ++i) {
    co_await arr.write(static_cast<std::uint64_t>(i) * 256 * 1024,
                       vos::Payload::synthetic(256 * 1024));
  }
  vos::Payload p = co_await arr.read(0, 256 * 1024);
  (void)p;
}

/// Sum of all station shares; must equal the op duration exactly.
sim::Time shareSum(const std::vector<obs::StationShare>& shares) {
  sim::Time total = 0;
  for (const auto& s : shares) total += s.wait + s.service;
  return total;
}

// --- round trip through the trace reader -----------------------------------

TEST(TraceRoundTrip, ReaderRebuildsCausalTreesAndExactSums) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);

  obs::Observer obs;
  obs.attach(sim);
  obs.enableTracing();
  auto h = sim.spawn(arrayWorkload(&client, 4));
  sim.run();
  ASSERT_FALSE(h.failed());

  std::ostringstream os;
  obs.writeChromeTrace(os);
  std::istringstream is(os.str());
  const obs::TraceDump dump = obs::parseChromeTrace(is);
  EXPECT_EQ(dump.schema, obs::kTraceSchemaVersion);
  EXPECT_EQ(dump.dropped_opens, 0u);
  ASSERT_FALSE(dump.ops.empty());
  ASSERT_FALSE(dump.tracks.empty());

  const auto stations = obs::stationNames(dump.tracks);
  bool saw_parent = false;
  for (const obs::OpRecord& op : dump.ops) {
    ASSERT_FALSE(op.legs.empty()) << op.type << " has no legs";
    std::map<obs::LegId, const obs::TraceEvent*> by_id;
    for (const obs::TraceEvent& leg : op.legs) {
      EXPECT_NE(leg.leg, 0u) << "schema-2 leg without an id";
      EXPECT_TRUE(by_id.emplace(leg.leg, &leg).second)
          << "duplicate leg id " << leg.leg << " in " << op.type;
      EXPECT_LE(leg.wait, leg.dur) << "wait exceeds leg duration";
    }
    for (const obs::TraceEvent& leg : op.legs) {
      if (leg.parent == 0) continue;
      saw_parent = true;
      EXPECT_TRUE(by_id.count(leg.parent))
          << op.type << " leg " << leg.leg << " has dangling parent "
          << leg.parent;
      EXPECT_NE(leg.parent, leg.leg) << "self-parented leg";
    }
    // The headline invariant: the per-station wait/service decomposition
    // accounts for every nanosecond of the span exactly once.
    const auto shares = obs::decomposeOp(op, stations);
    EXPECT_EQ(shareSum(shares), op.dur) << op.type << " seq " << op.seq;
  }
  EXPECT_TRUE(saw_parent) << "no nested legs: causal parents not wired";

  // array.write must cross the full pipeline: the decomposition of some
  // write touches a net, an engine, and an nvme station class.
  bool full_path = false;
  for (const obs::OpRecord& op : dump.ops) {
    if (op.type != "array.write") continue;
    bool net = false, engine = false, nvme = false;
    for (const auto& s : obs::decomposeOp(op, stations)) {
      if (s.station.find("net") != std::string::npos) net = true;
      if (s.station.find("engine") != std::string::npos) engine = true;
      if (s.station.find("nvme") != std::string::npos) nvme = true;
    }
    if (net && engine && nvme) {
      full_path = true;
      break;
    }
  }
  EXPECT_TRUE(full_path)
      << "no array.write decomposes across net+engine+nvme stations";
}

// --- depth-1 sharded-vs-serial identity ------------------------------------

struct DepthOneArtifacts {
  std::string trace;
  std::string metrics;
};

/// One client, strictly sequential awaits — a depth-1 workload: op starts
/// are totally ordered, so the serial kernel's spawn-order tie-break and
/// the shard group's key-order tie-break coincide and the two kernels
/// produce the same simulated timeline.
DepthOneArtifacts depthOneSerial() {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);
  obs::Observer obs;
  obs.attach(sim);
  obs.enableTracing();
  auto h = sim.spawn(arrayWorkload(&client, 4));
  sim.run();
  EXPECT_FALSE(h.failed());
  DepthOneArtifacts out;
  std::ostringstream tr;
  obs.writeChromeTrace(tr);
  out.trace = tr.str();
  obs.exportMetrics();
  std::ostringstream ms;
  obs.metrics().writeCsv(ms);
  out.metrics = ms.str();
  obs.detach();
  return out;
}

DepthOneArtifacts depthOneSharded() {
  sim::ShardGroup::Options go;
  go.shards = 1;
  go.lookahead = hw::FabricSpec{}.latency;
  go.seed = 1;
  sim::ShardGroup group(go);
  hw::Cluster cluster(group);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);
  obs::Observer out;
  out.enableTracing();
  DepthOneArtifacts r;
  {
    obs::ObserverGroup og(group);
    auto h = group.shard(cluster.nodeShard(client_node))
                 .spawn(arrayWorkload(&client, 4));
    group.run();
    EXPECT_FALSE(h.failed());
    og.mergeInto(out);
  }
  std::ostringstream tr;
  out.writeChromeTrace(tr);
  r.trace = tr.str();
  out.exportMetrics();
  std::ostringstream ms;
  out.metrics().writeCsv(ms);
  r.metrics = ms.str();
  return r;
}

// Leg identity minus the leg/parent ids: ids are allocation-ordered and may
// legitimately differ between the serial kernel and the merged group lanes
// (e.g. a tx leg recorded before the peer's rx leg, or after); everything
// observable — where, what, when, how long, how much queue wait — must not.
using LegSig = std::tuple<int, std::string, std::string, int, sim::Time,
                          sim::Time, sim::Time>;
using OpSig =
    std::tuple<std::string, sim::Time, sim::Time, int, std::vector<LegSig>>;

std::vector<OpSig> opSignatures(const obs::TraceDump& d) {
  std::vector<OpSig> out;
  for (const obs::OpRecord& op : d.ops) {
    std::vector<LegSig> legs;
    for (const obs::TraceEvent& l : op.legs) {
      const int pid = l.track < d.tracks.size() ? d.tracks[l.track].pid : -1;
      const std::string track =
          l.track < d.tracks.size() ? d.tracks[l.track].name : "";
      legs.emplace_back(pid, track, l.name != nullptr ? l.name : "",
                        static_cast<int>(l.cat), l.ts, l.dur, l.wait);
    }
    std::sort(legs.begin(), legs.end());
    const int pid = op.track < d.tracks.size() ? d.tracks[op.track].pid : -1;
    out.emplace_back(op.type, op.start, op.dur, pid, std::move(legs));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TraceShardedVsSerial, DepthOneRunsAreObservablyIdentical) {
  // The acceptance bar from DESIGN.md §11c: a depth-1 run traced on
  // ShardGroup(1) is identical to the serial kernel — same per-op spans,
  // same leg decomposition (as a multiset; leg ids are allocation-ordered
  // and excluded), and byte-identical metrics export.
  const DepthOneArtifacts serial = depthOneSerial();
  const DepthOneArtifacts sharded = depthOneSharded();
  EXPECT_EQ(serial.metrics, sharded.metrics);

  std::istringstream sis(serial.trace);
  const obs::TraceDump sd = obs::parseChromeTrace(sis);
  std::istringstream gis(sharded.trace);
  const obs::TraceDump gd = obs::parseChromeTrace(gis);
  EXPECT_EQ(sd.dropped_opens, 0u);
  EXPECT_EQ(gd.dropped_opens, 0u);
  ASSERT_FALSE(sd.ops.empty());
  ASSERT_EQ(sd.ops.size(), gd.ops.size());
  const std::vector<OpSig> a = opSignatures(sd);
  const std::vector<OpSig> b = opSignatures(gd);
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    EXPECT_EQ(std::get<0>(a[i]), std::get<0>(b[i])) << "op " << i;
    EXPECT_EQ(std::get<1>(a[i]), std::get<1>(b[i]))
        << std::get<0>(a[i]) << " start";
    EXPECT_EQ(std::get<2>(a[i]), std::get<2>(b[i]))
        << std::get<0>(a[i]) << " dur";
    EXPECT_TRUE(a[i] == b[i]) << std::get<0>(a[i]) << " legs differ";
  }
  EXPECT_TRUE(a == b);
}

// --- exemplar reservoir ----------------------------------------------------

std::unique_ptr<obs::ExemplarReservoir> runRep(std::uint32_t rep, int writes) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);
  obs::Observer obs;
  obs.attach(sim);
  obs.enableExemplars(2, rep);
  auto h = sim.spawn(arrayWorkload(&client, writes));
  sim.run();
  EXPECT_FALSE(h.failed());
  return obs.takeExemplars();
}

std::string renderReservoir(const obs::ExemplarReservoir& r) {
  const auto ops = obs::reservoirOps(r);
  const auto stations = obs::stationNames(r.tracks());
  std::ostringstream os;
  obs::writeExemplars(os, ops, stations, r.k());
  obs::writeCriticalPath(os, ops, stations);
  return os.str();
}

TEST(ExemplarReservoir, MergeOrderInvariantAndBounded) {
  // Reps with different op populations; the retained set and its rendering
  // must not depend on merge order (this is what makes daosim_run --jobs
  // output byte-identical to a serial run).
  auto r0 = runRep(0, 3);
  auto r1 = runRep(1, 6);
  auto r2 = runRep(2, 1);
  ASSERT_TRUE(r0 && r1 && r2);

  obs::ExemplarReservoir fwd(2);
  fwd.merge(*r0);
  fwd.merge(*r1);
  fwd.merge(*r2);
  obs::ExemplarReservoir rev(2);
  rev.merge(*r2);
  rev.merge(*r1);
  rev.merge(*r0);

  for (const auto& [type, ops] : fwd.byType()) {
    EXPECT_LE(ops.size(), 2u) << type << " exceeds K";
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_TRUE(obs::ExemplarReservoir::slower(ops[i - 1], ops[i]) ||
                  ops[i - 1].dur == ops[i].dur)
          << type << " not sorted slowest-first";
    }
  }
  ASSERT_FALSE(fwd.byType().empty());
  EXPECT_EQ(renderReservoir(fwd), renderReservoir(rev));
}

TEST(ExemplarReservoir, KeepsTheSlowestAcrossReps) {
  // 6-write rep ops are a superset of the 1-write rep's; the reservoir must
  // retain per-type the global slowest regardless of which rep offered them.
  auto big = runRep(1, 6);
  auto small = runRep(2, 1);
  obs::ExemplarReservoir merged(1);
  merged.merge(*small);
  merged.merge(*big);
  ASSERT_TRUE(merged.byType().count("array.write"));
  const auto& kept = merged.byType().at("array.write");
  ASSERT_EQ(kept.size(), 1u);
  // Verify against a brute-force max over both inputs.
  sim::Time slowest = 0;
  for (const auto* r : {small.get(), big.get()}) {
    auto it = r->byType().find("array.write");
    if (it == r->byType().end()) continue;
    for (const auto& op : it->second) {
      if (op.dur > slowest) slowest = op.dur;
    }
  }
  EXPECT_EQ(kept[0].dur, slowest);
}

// --- decomposition exactness (property) ------------------------------------

TEST(Decompose, RandomLegForestsAccountForEveryNanosecond) {
  // Arbitrary leg forests — overlapping siblings, nested children, legs
  // clipped by the span edges, waits up to the full leg — must decompose to
  // station shares summing exactly to the span duration.
  sim::Rng rng(20240817);
  const std::vector<std::string> stations = {"alpha", "beta", "gamma"};
  for (int iter = 0; iter < 500; ++iter) {
    obs::OpRecord op;
    op.type = "prop.op";
    op.seq = static_cast<std::uint64_t>(iter + 1);
    op.start = rng.uniform(0, 10'000);
    op.dur = rng.uniform(1, 50'000);
    const int n = static_cast<int>(rng.uniform(0, 12));
    for (int i = 0; i < n; ++i) {
      obs::TraceEvent leg;
      // Legs may start before the span or run past its end; decomposeOp
      // clips them (the trace reader can see such legs on malformed input).
      leg.ts = rng.uniform(0, op.start + op.dur + 5'000);
      leg.dur = rng.uniform(0, 60'000);
      leg.wait = rng.uniform(0, leg.dur);
      leg.leg = static_cast<obs::LegId>(i + 1);
      leg.parent = static_cast<obs::LegId>(rng.uniform(0, i));  // forest
      leg.track = static_cast<obs::TrackId>(
          rng.uniform(0, stations.size() - 1));
      leg.name = "leg";
      leg.cat = obs::Cat::kService;
      op.legs.push_back(leg);
    }
    const auto shares = obs::decomposeOp(op, stations);
    ASSERT_EQ(shareSum(shares), op.dur) << "iter " << iter;
  }
}

TEST(Decompose, WaitServicePartitionMatchesContention) {
  // Two clients on a one-server station: the second op's leg shows the
  // service time of the first as queue wait, and wait + service equals the
  // leg duration exactly.
  sim::Simulation sim;
  obs::Observer obs;
  obs.attach(sim);
  obs.enableExemplars(4);
  sim::QueueStation station(sim, "tgt0", 1);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](sim::Simulation& s, sim::QueueStation& st,
                 int id) -> sim::Task<void> {
      auto op = obs::beginOp(s, "contend", /*pid=*/100 + id, "client");
      co_await st.exec(1000, op.id());
    }(sim, station, i));
  }
  sim.run();

  auto* r = obs.exemplars();
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->byType().count("contend"));
  const auto& ops = r->byType().at("contend");
  ASSERT_EQ(ops.size(), 2u);
  // Slowest first: the queued op waited the other's full service time.
  EXPECT_EQ(ops[0].dur, 2000);
  EXPECT_EQ(ops[1].dur, 1000);
  ASSERT_EQ(ops[0].legs.size(), 1u);
  EXPECT_EQ(ops[0].legs[0].wait, 1000);
  EXPECT_EQ(ops[0].legs[0].dur, 2000);
  EXPECT_EQ(ops[1].legs[0].wait, 0);

  const auto stations = obs::stationNames(r->tracks());
  const auto shares = obs::decomposeOp(ops[0], stations);
  sim::Time wait = 0, service = 0;
  for (const auto& s : shares) {
    if (s.station == "tgt") {
      wait += s.wait;
      service += s.service;
    }
  }
  EXPECT_EQ(wait, 1000);
  EXPECT_EQ(service, 1000);
  EXPECT_EQ(shareSum(shares), ops[0].dur);
}

// --- frozen schema-1 leg format --------------------------------------------

TEST(FrozenFormat, DepthOneLegsSerializeExactlyAsSchemaOne) {
  obs::Tracer tr;
  const obs::TrackId t = tr.track(3, "client0");
  tr.span(t, 7, "op.x", 1000, 5000);
  tr.leg(t, 7, "leg.a", obs::Cat::kService, 1500, 2500);
  std::ostringstream os;
  tr.writeChromeTrace(os);
  const std::string out = os.str();
  // Byte-frozen schema-1 X record: no leg/parent/wait keys when the causal
  // fields default to zero. Any format drift here breaks old consumers.
  EXPECT_NE(out.find("{\"ph\":\"X\",\"cat\":\"service\",\"name\":\"leg.a\","
                     "\"pid\":3,\"tid\":0,\"ts\":1.500,\"dur\":1,"
                     "\"args\":{\"op\":7}}"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("\"leg\""), std::string::npos) << out;
  EXPECT_EQ(out.find("\"parent\""), std::string::npos) << out;
  EXPECT_EQ(out.find("\"wait\""), std::string::npos) << out;

  // And the causal fields do serialize once set.
  tr.leg(t, 7, "leg.b", obs::Cat::kDevice, 2500, 4500, /*leg_id=*/2,
         /*parent=*/1, /*wait=*/500);
  std::ostringstream os2;
  tr.writeChromeTrace(os2);
  EXPECT_NE(os2.str().find("\"args\":{\"op\":7,\"leg\":2,\"parent\":1,"
                           "\"wait\":0.500}"),
            std::string::npos)
      << os2.str();
}

TEST(FrozenFormat, OpIdPackingRoundTrips) {
  const obs::OpId op = obs::withParent(obs::OpId{123456789}, obs::LegId{77});
  EXPECT_EQ(obs::opSeq(op), 123456789u);
  EXPECT_EQ(obs::opParent(op), 77u);
  EXPECT_EQ(obs::opSeq(obs::withParent(op, 9)), 123456789u);
  EXPECT_EQ(obs::opParent(obs::withParent(op, 9)), 9u);
  EXPECT_EQ(obs::opParent(obs::OpId{42}), 0u);
}

}  // namespace
}  // namespace daosim
