// Observability subsystem tests: histogram binning and percentiles, metrics
// export schema, tracer event structure, queue-station busy accounting under
// enter/leave, and an end-to-end Chrome-trace round trip that parses the
// exported JSON back and validates the span tree.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "sim/queue_station.h"
#include "sim/simulation.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using obs::Histogram;
using sim::Task;
using namespace sim::literals;

// --- histogram -------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, SingleValueAtEveryPercentile) {
  Histogram h;
  h.add(4711);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 4711u);
  EXPECT_EQ(h.max(), 4711u);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 4711.0) << "p=" << p;
  }
}

TEST(Histogram, ConstantSeriesReportsExactValue) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(123456);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 123456.0);
  // Percentiles clamp to the recorded min/max, so quantization within the
  // containing bucket never leaks into a constant series.
  EXPECT_DOUBLE_EQ(h.percentile(50), 123456.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 123456.0);
}

TEST(Histogram, BucketBoundariesContainTheirValues) {
  const std::uint64_t samples[] = {
      0,  1,  15, 16,  17,  31,   32,   255,  256, 1000, 1023, 1024,
      (1ULL << 20) - 1, 1ULL << 20, (1ULL << 40) + 12345, ~std::uint64_t{0}};
  for (std::uint64_t v : samples) {
    const std::size_t i = Histogram::bucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::bucketLo(i), v) << v;
    if (v != ~std::uint64_t{0}) {
      EXPECT_GT(Histogram::bucketHi(i), v) << v;
    } else {
      // The top bucket's exclusive bound saturates at UINT64_MAX.
      EXPECT_EQ(Histogram::bucketHi(i), v);
    }
  }
}

TEST(Histogram, BucketsTileTheRangeWithBoundedError) {
  // Buckets must be adjacent (no gaps/overlaps) and, beyond the exact
  // region, no wider than 1/kSubBuckets of their lower bound (6.25%).
  for (std::size_t i = 0; i + 1 < 40 * Histogram::kSubBuckets; ++i) {
    EXPECT_EQ(Histogram::bucketHi(i), Histogram::bucketLo(i + 1)) << i;
    if (i >= Histogram::kSubBuckets) {
      const std::uint64_t lo = Histogram::bucketLo(i);
      const std::uint64_t width = Histogram::bucketHi(i) - lo;
      EXPECT_LE(width * Histogram::kSubBuckets, lo) << i;
    }
  }
}

TEST(Histogram, PercentileInterpolatesWithinTolerance) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  // Relative quantization error is bounded by 1/16; allow a bit of slack
  // for the interpolation itself.
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 / 10);
  EXPECT_NEAR(h.percentile(95), 950.0, 950.0 / 10);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 / 10);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, MergeMatchesCombinedHistogram) {
  Histogram a, b, both;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.add(v * 3);
    both.add(v * 3);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    b.add(v * 7 + 1);
    both.add(v * 7 + 1);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    ASSERT_EQ(a.bucketCount(i), both.bucketCount(i)) << i;
  }
  EXPECT_DOUBLE_EQ(a.percentile(50), both.percentile(50));
}

TEST(Histogram, MergeWithEmptyKeepsMinMax) {
  Histogram a, empty;
  a.add(10);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 10u);
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CsvHasSchemaHeader) {
  obs::MetricsRegistry reg;
  reg.counter("ops.total").inc(5);
  reg.gauge("queue.depth").set(2.5);
  reg.histogram("lat").add(100);
  std::ostringstream os;
  reg.writeCsv(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("# daosim-metrics schema=2\n", 0), 0u) << out;
  EXPECT_NE(out.find("counter,ops.total,value,5"), std::string::npos) << out;
  EXPECT_NE(out.find("histogram,lat,count,1"), std::string::npos) << out;
}

TEST(Metrics, JsonHasSchemaField) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(1);
  std::ostringstream os;
  reg.writeJson(os);
  const std::string out = os.str();
  const auto schema = out.find("\"schema\": 2");
  ASSERT_NE(schema, std::string::npos) << out;
  // Schema version leads the document, before any metric content.
  EXPECT_LT(schema, out.find("\"counters\"")) << out;
}

// --- queue station enter/leave accounting ----------------------------------

sim::Task<void> holdStation(sim::Simulation* s, sim::QueueStation* st,
                            sim::Time hold) {
  const sim::Time held = co_await st->enter();
  co_await s->delay(hold);
  st->leave(held);
}

TEST(QueueStation, EnterLeaveAccountsHeldTimeAsBusy) {
  sim::Simulation sim;
  sim::QueueStation st(sim, "s", 1);
  sim.spawn(holdStation(&sim, &st, 10_us));
  sim.spawn(holdStation(&sim, &st, 5_us));
  sim.run();
  // One server: 10us + 5us of held time, regardless of queueing.
  EXPECT_EQ(st.busyTime(), 15_us);
  EXPECT_EQ(st.ops(), 2u);
  EXPECT_DOUBLE_EQ(st.utilization(sim.now()), 1.0);
}

TEST(QueueStation, WaitHistogramRecordsQueueingWhenObserved) {
  sim::Simulation sim;
  obs::Observer obs;
  obs.attach(sim);
  sim::QueueStation st(sim, "s", 1);
  sim.spawn(holdStation(&sim, &st, 10_us));
  sim.spawn(holdStation(&sim, &st, 10_us));  // queues behind the first
  sim.run();
  ASSERT_EQ(st.waitHistogram().count(), 2u);
  EXPECT_EQ(st.waitHistogram().min(), 0u);
  EXPECT_EQ(st.waitHistogram().max(), static_cast<std::uint64_t>(10_us));
}

// --- tracer ----------------------------------------------------------------

TEST(Tracer, EmitsMatchedSpansAndMonotoneTimestamps) {
  obs::Tracer tr;
  const obs::TrackId t0 = tr.track(0, "client");
  const obs::TrackId t1 = tr.track(1, "net");
  tr.span(t0, /*op=*/1, "op.a", /*start=*/100, /*end=*/500);
  tr.leg(t1, /*op=*/1, "send", obs::Cat::kNetRequest, 150, 250);
  tr.span(t0, /*op=*/2, "op.b", 200, 300);
  EXPECT_EQ(tr.trackCount(), 2u);
  std::ostringstream os;
  tr.writeChromeTrace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\": 2"), std::string::npos);
  // "e" for op 1 (ts 0.5us) must come after "b" of op 2 (ts 0.2us).
  const auto b2 = out.find("\"ph\":\"b\",\"cat\":\"op\",\"id\":2");
  const auto e1 = out.find("\"ph\":\"e\",\"cat\":\"op\",\"id\":1");
  ASSERT_NE(b2, std::string::npos);
  ASSERT_NE(e1, std::string::npos);
  EXPECT_LT(b2, e1);
}

// --- end-to-end round trip -------------------------------------------------

// Minimal line-based parser for the exporter's one-object-per-line JSON.
struct ParsedEvent {
  std::string ph;
  std::string cat;
  std::string name;
  double ts = -1;
  std::uint64_t id = 0;  // span id or leg "args":{"op":N}
  bool has_ts = false;
};

std::string strField(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto p = line.find(pat);
  if (p == std::string::npos) return {};
  const auto start = p + pat.size();
  return line.substr(start, line.find('"', start) - start);
}

bool numField(const std::string& line, const std::string& key, double* out) {
  const std::string pat = "\"" + key + "\":";
  const auto p = line.find(pat);
  if (p == std::string::npos) return false;
  *out = std::strtod(line.c_str() + p + pat.size(), nullptr);
  return true;
}

std::vector<ParsedEvent> parseTrace(const std::string& json,
                                    std::string* error) {
  std::vector<ParsedEvent> events;
  std::istringstream is(json);
  std::string line;
  std::getline(is, line);
  if (line.find("\"schema\": 2") == std::string::npos) {
    *error = "missing schema header: " + line;
    return events;
  }
  while (std::getline(is, line)) {
    if (line.rfind("{\"ph\"", 0) != 0) continue;
    ParsedEvent e;
    e.ph = strField(line, "ph");
    e.cat = strField(line, "cat");
    e.name = strField(line, "name");
    double v = 0;
    if (numField(line, "ts", &v)) {
      e.ts = v;
      e.has_ts = true;
    }
    if (numField(line, "id", &v) || numField(line, "op", &v)) {
      e.id = static_cast<std::uint64_t>(v);
    }
    events.push_back(e);
  }
  return events;
}

sim::Task<void> arrayWorkload(daos::Client* c) {
  co_await c->poolConnect();
  daos::Container cont = co_await c->contCreate("obs");
  daos::Array arr = co_await daos::Array::create(
      *c, cont, c->nextOid(placement::ObjClass::SX), daos::Array::Attrs{});
  co_await arr.write(0, vos::Payload::synthetic(256 * 1024));
  vos::Payload p = co_await arr.read(0, 256 * 1024);
  (void)p;
}

TEST(TraceRoundTrip, ExportedTraceHasWellFormedSpanTree) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);

  obs::Observer obs;
  obs.attach(sim);
  obs.enableTracing();
  auto h = sim.spawn(arrayWorkload(&client));
  sim.run();
  ASSERT_FALSE(h.failed());
  ASSERT_GE(obs.opsStarted(), 2u);  // at least array.write + array.read

  std::ostringstream os;
  obs.writeChromeTrace(os);
  std::string error;
  const std::vector<ParsedEvent> events = parseTrace(os.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_FALSE(events.empty());

  // Every "e" matches an open "b" of the same id; every "b" is closed.
  std::set<std::uint64_t> open;
  std::map<std::uint64_t, std::set<std::string>> legs_by_op;
  double last_ts = 0;
  bool saw_span = false;
  for (const ParsedEvent& e : events) {
    if (e.has_ts) {
      EXPECT_GE(e.ts, last_ts) << "timestamps not monotone in file order";
      last_ts = e.ts;
    }
    if (e.ph == "b") {
      EXPECT_TRUE(open.insert(e.id).second) << "duplicate open id " << e.id;
      saw_span = true;
    } else if (e.ph == "e") {
      EXPECT_EQ(open.erase(e.id), 1u) << "exit without enter, id " << e.id;
    } else if (e.ph == "X") {
      legs_by_op[e.id].insert(e.cat);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(open.empty()) << open.size() << " spans never closed";

  // At least one op covers the whole path: client RPC request, server-side
  // work (queue or service), device I/O, and the response leg.
  bool full_path = false;
  for (const auto& [op, cats] : legs_by_op) {
    if (cats.count("net_request") &&
        (cats.count("server_queue") || cats.count("service")) &&
        cats.count("device") && cats.count("net_response")) {
      full_path = true;
      break;
    }
  }
  EXPECT_TRUE(full_path)
      << "no op with client->RPC->server->device->response coverage";
}

TEST(TraceRoundTrip, MetricsExportAggregatesOps) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  const hw::NodeId client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, client_node, /*id=*/1);

  obs::Observer obs;
  obs.attach(sim);
  auto h = sim.spawn(arrayWorkload(&client));
  sim.run();
  ASSERT_FALSE(h.failed());

  ASSERT_TRUE(obs.opTypes().count("array.write"));
  ASSERT_TRUE(obs.opTypes().count("array.read"));
  const auto& wr = obs.opTypes().at("array.write");
  EXPECT_EQ(wr.count, 1u);
  EXPECT_EQ(wr.latency.count(), 1u);
  EXPECT_GT(wr.latency.min(), 0u);
  // The device leg must be part of the write's breakdown.
  EXPECT_GT(wr.cat_ns[static_cast<int>(obs::Cat::kDevice)], 0u);

  obs.exportMetrics();
  std::ostringstream os;
  obs.metrics().writeCsv(os);
  EXPECT_NE(os.str().find("op.array.write.count"), std::string::npos);

  // Breakdown table renders without tracing enabled.
  std::ostringstream bd;
  obs.writeBreakdown(bd);
  EXPECT_NE(bd.str().find("array.write"), std::string::npos);
}

}  // namespace
}  // namespace daosim
