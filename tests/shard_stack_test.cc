// Sharded DAOS protocol stack conformance (DESIGN.md §11c).
//
// The tentpole invariant of the sharded stack: a full benchmark run on
// ShardGroup(N) produces bit-identical results for every shard count N —
// same digests, same timestamps, same histogram buckets. ShardGroup(1)
// (the full windowed protocol, inline) is the anchor; 2 and 4 must match
// it exactly, for IOR on each RPC-shaped DAOS backend and for FDB under
// an active fault plan. The legacy serial kernel (sim_jobs = 0) is a
// different frozen total order and is *not* expected to match — its
// outputs are pinned by the kernel/integration suites instead.
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/fault_injector.h"
#include "apps/fdb.h"
#include "apps/ior.h"
#include "apps/pdes.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "net/rpc.h"
#include "obs/critical_path.h"
#include "obs/histogram.h"
#include "obs/observer.h"
#include "obs/telemetry.h"
#include "placement/objclass.h"
#include "sim/fault_plan.h"

namespace daosim {
namespace {

void expectIdentical(const apps::RunResult& x, const apps::RunResult& y) {
  ASSERT_EQ(x.procs, y.procs);
  for (int ph = 0; ph < 2; ++ph) {
    const apps::PhaseResult& p = x.phase[ph];
    const apps::PhaseResult& q = y.phase[ph];
    ASSERT_EQ(p.bytes, q.bytes);
    ASSERT_EQ(p.ops, q.ops);
    ASSERT_EQ(p.first_start, q.first_start);
    ASSERT_EQ(p.last_end, q.last_end);
    ASSERT_EQ(p.latency.count(), q.latency.count());
    ASSERT_EQ(p.latency.min(), q.latency.min());
    ASSERT_EQ(p.latency.max(), q.latency.max());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      ASSERT_EQ(p.latency.bucketCount(i), q.latency.bucketCount(i));
    }
  }
}

constexpr int kServers = 4;
constexpr int kClients = 4;
constexpr int kPpn = 2;
constexpr std::uint64_t kSeed = 11;

apps::DaosTestbed makeTestbed(int shards, bool chaos) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = kServers;
  opt.client_nodes = kClients;
  opt.seed = kSeed;
  opt.with_dfuse = false;
  opt.sim_jobs = shards;
  // Chaos runs switch the data path onto the retry policy, exactly as
  // daosim_run does for a non-empty --faults plan.
  if (chaos) opt.daos.rpc_retry = net::RetryPolicy::chaosDefault();
  return apps::DaosTestbed(opt);
}

apps::RunResult runIorOn(int shards, const std::string& api) {
  apps::DaosTestbed tb = makeTestbed(shards, /*chaos=*/false);
  apps::IorConfig cfg;
  cfg.ops = 12;
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmdSharded(tb.cluster(), *tb.shardGroup(),
                              tb.clientSubset(kClients), kPpn, tb.seed(),
                              bench);
}

struct FdbOutcome {
  apps::RunResult run;
  std::uint64_t events_applied = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuild_bytes_moved = 0;
  std::uint64_t rpc_retries = 0;
};

/// FDB on `shards` shards, optionally under a fault plan. The object
/// classes are replicated so degraded reads are recoverable; fault times
/// must land in the read phase — acknowledged data stays *readable* with
/// one target dead, but writes to a dead replica are a modeled hard error
/// (see sim/fault_plan.h), serially and sharded alike.
FdbOutcome runFdb(int shards, const std::string& plan_spec) {
  apps::DaosTestbed tb = makeTestbed(shards, /*chaos=*/!plan_spec.empty());
  std::optional<apps::FaultInjector> injector;
  if (!plan_spec.empty()) {
    sim::FaultTopology topo;
    topo.engines = kServers;
    topo.targets = tb.daos().totalTargets();
    topo.nodes = static_cast<int>(tb.cluster().nodeCount());
    injector.emplace(tb, sim::FaultPlan::parse(plan_spec, topo));
    injector->install();
  }
  apps::FdbConfig cfg;
  cfg.fields = 20;
  cfg.array_oclass = placement::ObjClass::RP_2GX;
  cfg.kv_oclass = placement::ObjClass::RP_2GX;
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  FdbOutcome out;
  out.run = apps::runSpmdSharded(tb.cluster(), *tb.shardGroup(),
                                 tb.clientSubset(kClients), kPpn, tb.seed(),
                                 bench);
  if (injector) {
    out.events_applied = injector->stats().events_applied;
    out.rebuilds_completed = injector->stats().rebuilds_completed;
    out.rebuild_bytes_moved = injector->stats().rebuild_bytes_moved;
  }
  out.rpc_retries = tb.cluster().rpcRetries();
  return out;
}

/// Fault plan timed off a fault-free dry run: exclusion (fail + pool-map
/// removal + background rebuild) a quarter into the read phase, a NIC
/// flap on a client node at the midpoint. Sharded results are
/// shard-count-invariant, so timing the plan from the ShardGroup(1) dry
/// run places it identically for every shard count.
std::string readPhasePlan(const apps::RunResult& dry) {
  const apps::PhaseResult& rd = dry.read();
  const sim::Time t_exclude = rd.first_start + rd.span() / 4;
  const sim::Time t_flap = rd.first_start + rd.span() / 2;
  return "exclude@" + std::to_string(t_exclude) + ":t3;flap@" +
         std::to_string(t_flap) + ":n" + std::to_string(kServers + 1) +
         "," + std::to_string(rd.span() / 4);
}

TEST(ShardStack, IorIdenticalAcrossShardCounts) {
  // IOR on every RPC-shaped DAOS backend: ShardGroup(1) == (2) == (4),
  // full RunResult equality (every histogram bucket) plus the digest the
  // CLI prints under --stats.
  for (const char* api : {"daos-array", "dfs", "hdf5-daos"}) {
    SCOPED_TRACE(api);
    const apps::RunResult one = runIorOn(1, api);
    const apps::RunResult two = runIorOn(2, api);
    const apps::RunResult four = runIorOn(4, api);
    expectIdentical(one, two);
    expectIdentical(one, four);
    EXPECT_EQ(apps::runDigest(one), apps::runDigest(two));
    EXPECT_EQ(apps::runDigest(one), apps::runDigest(four));
    EXPECT_GT(one.write().ops, 0u);
    EXPECT_GT(one.read().ops, 0u);
  }
}

TEST(ShardStack, FdbWithFaultPlanIdenticalAcrossShardCounts) {
  // FDB under an active fault plan: the exclusion broadcast, rebuild and
  // retry/timeout races must all resolve shard-count-invariantly.
  // Dry run with the chaos retry policy active but no effective fault (a
  // no-op slowdown long after quiescence): its phase windows are the ones
  // the faulted runs follow up to the first real fault, so the plan times
  // derived from it land exactly where intended.
  const FdbOutcome dry = runFdb(1, "slow@10s:t0,x1");
  ASSERT_GT(dry.run.read().span(), 0u);
  const std::string plan = readPhasePlan(dry.run);

  const FdbOutcome one = runFdb(1, plan);
  const FdbOutcome two = runFdb(2, plan);
  const FdbOutcome four = runFdb(4, plan);
  expectIdentical(one.run, two.run);
  expectIdentical(one.run, four.run);
  EXPECT_EQ(apps::runDigest(one.run), apps::runDigest(two.run));
  EXPECT_EQ(apps::runDigest(one.run), apps::runDigest(four.run));
  EXPECT_GT(one.run.write().ops, 0u);
  EXPECT_GT(one.run.read().ops, 0u);
  // The plan was live mid-run: both events applied, the exclusion kicked
  // off a rebuild that moved data, and the result differs from the
  // fault-free run — all shard-count-invariantly. (Degraded reads stay
  // zero here by design: FDB re-opens every array at read time, so
  // post-exclusion opens compute fresh layouts that avoid the dead
  // target and land on the rebuilt replica.)
  EXPECT_EQ(one.events_applied, 2u);
  EXPECT_EQ(one.rebuilds_completed, 1u);
  EXPECT_GT(one.rebuild_bytes_moved, 0u);
  EXPECT_EQ(one.rebuild_bytes_moved, two.rebuild_bytes_moved);
  EXPECT_EQ(one.rebuild_bytes_moved, four.rebuild_bytes_moved);
  EXPECT_EQ(one.rpc_retries, two.rpc_retries);
  EXPECT_EQ(one.rpc_retries, four.rpc_retries);
  EXPECT_NE(apps::runDigest(one.run), apps::runDigest(dry.run));
}

/// Every observer output from a sharded IOR run, as strings: trace JSON,
/// metrics CSV, exemplar tail report, telemetry CSV. Per-shard lanes are
/// collected during the run and merged at the end — the deterministic
/// merge is the thing under test, so each artifact must be byte-identical
/// for every shard count. Telemetry rows under pdes/* carry wall-clock
/// engine introspection (nondeterministic by nature) and are stripped
/// before the compare, exactly as DESIGN.md §11c tells harnesses to do.
struct ObservedOutputs {
  apps::RunResult run;
  std::string trace;
  std::string metrics;
  std::string exemplars;
  std::string telemetry;
};

std::string stripPdesRows(const std::string& csv) {
  std::istringstream is(csv);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("pdes/") != std::string::npos) continue;
    os << line << "\n";
  }
  return os.str();
}

ObservedOutputs runObservedIor(int shards) {
  apps::DaosTestbed tb = makeTestbed(shards, /*chaos=*/false);
  obs::Observer out;
  out.enableTracing();
  out.enableExemplars(3, 0);
  // Local hub: each shard count writes its own rep/0 dump, so reusing the
  // global hub would collide labels across the three runs.
  obs::TelemetryHub hub;
  ObservedOutputs r;
  {
    obs::ObserverGroup og(*tb.shardGroup());
    apps::ShardedRunTelemetry telem(tb, "rep/0", /*enabled=*/true,
                                    sim::kMillisecond, &hub);
    apps::IorConfig cfg;
    cfg.ops = 12;
    apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
    r.run = apps::runSpmdSharded(tb.cluster(), *tb.shardGroup(),
                                 tb.clientSubset(kClients), kPpn, tb.seed(),
                                 bench);
    telem.noteShardStats(tb.shardGroup()->stats());
    og.mergeInto(out);
  }  // telem dtor merges the per-shard lanes into the hub
  std::ostringstream trace_os;
  out.writeChromeTrace(trace_os);
  r.trace = trace_os.str();
  out.exportMetrics();
  std::ostringstream metrics_os;
  out.metrics().writeCsv(metrics_os);
  r.metrics = metrics_os.str();
  std::ostringstream tail_os;
  out.writeTailReport(tail_os);
  r.exemplars = tail_os.str();
  std::ostringstream telem_os;
  hub.writeCsv(telem_os);
  r.telemetry = stripPdesRows(telem_os.str());
  return r;
}

TEST(ShardStack, ObserverOutputsIdenticalAcrossShardCounts) {
  // The frozen contract for sharded observability: trace, metrics,
  // exemplar, and telemetry exporter bytes are identical for every shard
  // count (pdes/* wall-clock rows excepted). ShardGroup(1) anchors.
  const ObservedOutputs one = runObservedIor(1);
  const ObservedOutputs two = runObservedIor(2);
  const ObservedOutputs four = runObservedIor(4);
  expectIdentical(one.run, two.run);
  expectIdentical(one.run, four.run);
  // Sanity: the artifacts are non-trivial, not vacuously equal.
  EXPECT_GT(one.trace.size(), 100u);
  EXPECT_NE(one.trace.find("\"ph\""), std::string::npos);
  EXPECT_GT(one.metrics.size(), 10u);
  EXPECT_NE(one.exemplars.find("slowest"), std::string::npos);
  EXPECT_NE(one.telemetry.find("net/"), std::string::npos);
  EXPECT_EQ(one.trace, two.trace);
  EXPECT_EQ(one.trace, four.trace);
  EXPECT_EQ(one.metrics, two.metrics);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.exemplars, two.exemplars);
  EXPECT_EQ(one.exemplars, four.exemplars);
  EXPECT_EQ(one.telemetry, two.telemetry);
  EXPECT_EQ(one.telemetry, four.telemetry);
}

TEST(ShardStack, ShardedRunsAreDeterministic) {
  // Run-to-run: identical sharded runs agree bit-for-bit.
  const apps::RunResult a = runIorOn(2, "daos-array");
  const apps::RunResult b = runIorOn(2, "daos-array");
  expectIdentical(a, b);
  EXPECT_EQ(apps::runDigest(a), apps::runDigest(b));
}

}  // namespace
}  // namespace daosim
