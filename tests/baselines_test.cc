// Tests for the Lustre and Ceph baseline systems: functional round-trips,
// striping/placement properties, and the cost-model relations the paper's
// comparison figures (Fig. 7-9) depend on.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "hw/cluster.h"
#include "lustre/lustre.h"
#include "rados/rados.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace daosim {
namespace {

using posix::OpenFlags;
using sim::Task;
using sim::Time;
using vos::Payload;
using namespace sim::literals;
using hw::kKiB;
using hw::kMiB;

class LustreTest : public ::testing::Test {
 protected:
  LustreTest() : cluster_(sim_) {
    auto oss = cluster_.addNodes(hw::NodeSpec::server(), 2);
    auto mds = cluster_.addNode(hw::NodeSpec::server(1));
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    lustre_ = std::make_unique<lustre::LustreSystem>(cluster_, oss, mds);
  }

  template <typename Body>
  void run(Body body) {
    auto h = sim_.spawn([](lustre::LustreSystem& ls, hw::NodeId node,
                           Body body) -> Task<void> {
      lustre::LustreVfs vfs(ls, node);
      co_await body(ls, vfs);
    }(*lustre_, client_node_, std::move(body)));
    sim_.run();
    if (h.failed()) {
      sim_.spawn([](sim::ProcHandle h) -> Task<void> { co_await h.join(); }(h));
      EXPECT_NO_THROW(sim_.run());
      FAIL() << "simulated process failed";
    }
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<lustre::LustreSystem> lustre_;
};

TEST_F(LustreTest, FileRoundTripAndStat) {
  run([](lustre::LustreSystem&, lustre::LustreVfs& vfs) -> Task<void> {
    co_await vfs.mkdirs("/runs/a");
    posix::Fd fd = co_await vfs.open("/runs/a/data", OpenFlags::writeCreate());
    Payload data = vos::patternPayload(3 * kMiB, 11);
    co_await vfs.pwrite(fd, 0, data);
    co_await vfs.close(fd);

    posix::Fd rd = co_await vfs.open("/runs/a/data", OpenFlags::readOnly());
    Payload back = co_await vfs.pread(rd, 0, 3 * kMiB);
    EXPECT_EQ(back, data);
    auto st = co_await vfs.fstat(rd);
    EXPECT_EQ(st.size, 3 * kMiB);
    co_await vfs.close(rd);

    auto dir_st = co_await vfs.stat("/runs");
    EXPECT_TRUE(dir_st.is_directory);
    auto names = co_await vfs.readdir("/runs/a");
    EXPECT_EQ(names, (std::vector<std::string>{"data"}));
  });
}

TEST_F(LustreTest, StripingSpreadsAcrossOsts) {
  run([](lustre::LustreSystem& ls, lustre::LustreVfs&) -> Task<void> {
    lustre::LustreVfs striped(ls, 3, /*stripe_count=*/8, 1 * kMiB);
    posix::Fd fd = co_await striped.open("/striped", OpenFlags::writeCreate());
    co_await striped.pwrite(fd, 0, Payload::synthetic(16 * kMiB));
    co_await striped.close(fd);

    int osts_with_data = 0;
    for (int i = 0; i < ls.ostCount(); ++i) {
      if (ls.ost(i).store.bytesStored() > 0) ++osts_with_data;
    }
    EXPECT_EQ(osts_with_data, 8);
    EXPECT_EQ(ls.bytesStored(), 16 * kMiB);
  });
}

TEST_F(LustreTest, OpenCloseAndStatGoThroughMds) {
  run([](lustre::LustreSystem&, lustre::LustreVfs& vfs) -> Task<void> {
    posix::Fd fd = co_await vfs.open("/f", OpenFlags::writeCreate());
    co_await vfs.pwrite(fd, 0, Payload::synthetic(kKiB));
    co_await vfs.close(fd);
    (void)co_await vfs.stat("/f");
  });
  // open(create) + close + stat = 3 MDS requests; the data write = 0.
  EXPECT_EQ(lustre_->mdsStation().ops(), 3u);
}

TEST_F(LustreTest, MdsSaturationCapsMetadataRate) {
  // Many concurrent processes doing open/close loops: aggregate op rate must
  // cap at mds_threads / mds_service regardless of process count.
  const int procs = 64;
  const int ops = 30;
  for (int p = 0; p < procs; ++p) {
    sim_.spawn([](lustre::LustreSystem& ls, hw::NodeId node,
                  int id, int ops) -> Task<void> {
      lustre::LustreVfs vfs(ls, node);
      for (int i = 0; i < ops; ++i) {
        posix::Fd fd = co_await vfs.open(
            "/meta" + std::to_string(id) + "_" + std::to_string(i),
            OpenFlags::writeCreate());
        co_await vfs.close(fd);
      }
    }(*lustre_, client_node_, p, ops));
  }
  sim_.run();
  const double mds_ops = procs * ops * 2.0;  // open + close
  const double rate = mds_ops / sim::toSeconds(sim_.now());
  const double cap = 16.0 / 80e-6;  // mds_threads / mds_service = 200k/s
  EXPECT_LT(rate, cap * 1.05);
  EXPECT_GT(rate, cap * 0.5);  // and the MDS is the actual bottleneck
}

TEST_F(LustreTest, UnlinkTruncateSemantics) {
  run([](lustre::LustreSystem& ls, lustre::LustreVfs& vfs) -> Task<void> {
    posix::Fd fd = co_await vfs.open("/t", OpenFlags::writeCreate());
    co_await vfs.pwrite(fd, 0, vos::patternPayload(2 * kMiB, 3));
    co_await vfs.close(fd);

    co_await vfs.truncate("/t", kMiB);
    auto st = co_await vfs.stat("/t");
    EXPECT_EQ(st.size, kMiB);
    EXPECT_EQ(ls.bytesStored(), kMiB);

    co_await vfs.unlink("/t");
    EXPECT_EQ(ls.bytesStored(), 0u);
    bool threw = false;
    try {
      (void)co_await vfs.stat("/t");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

class CephTest : public ::testing::Test {
 protected:
  CephTest() : cluster_(sim_) {
    auto osd_nodes = cluster_.addNodes(hw::NodeSpec::server(), 2);
    auto mon = cluster_.addNode(hw::NodeSpec::client());
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    ceph_ = std::make_unique<rados::CephCluster>(cluster_, osd_nodes, mon);
  }

  template <typename Body>
  void run(Body body) {
    auto h = sim_.spawn([](rados::CephCluster& ceph, hw::NodeId node,
                           Body body) -> Task<void> {
      rados::RadosClient client(ceph, node);
      co_await client.connect();
      co_await body(ceph, client);
    }(*ceph_, client_node_, std::move(body)));
    sim_.run();
    if (h.failed()) {
      sim_.spawn([](sim::ProcHandle h) -> Task<void> { co_await h.join(); }(h));
      EXPECT_NO_THROW(sim_.run());
      FAIL() << "simulated process failed";
    }
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<rados::CephCluster> ceph_;
};

TEST_F(CephTest, ObjectRoundTrip) {
  run([](rados::CephCluster&, rados::RadosClient& c) -> Task<void> {
    Payload data = vos::patternPayload(5 * kMiB, 21);
    co_await c.writeFull("field.0", data);
    Payload back = co_await c.read("field.0", 0, 5 * kMiB);
    EXPECT_EQ(back, data);
    EXPECT_EQ(co_await c.stat("field.0"), 5 * kMiB);
    EXPECT_EQ(co_await c.stat("missing"), 0u);

    co_await c.remove("field.0");
    EXPECT_EQ(co_await c.stat("field.0"), 0u);
  });
}

TEST_F(CephTest, ObjectSizeCapEnforced) {
  run([](rados::CephCluster& ceph, rados::RadosClient& c) -> Task<void> {
    bool threw = false;
    try {
      co_await c.write("big", ceph.config().max_object_bytes - 10,
                       Payload::synthetic(100));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

TEST_F(CephTest, ObjectsAreNotSharded) {
  run([](rados::CephCluster& ceph, rados::RadosClient& c) -> Task<void> {
    co_await c.writeFull("whole", Payload::synthetic(32 * kMiB));
    int osds_with_data = 0;
    for (int i = 0; i < ceph.osdCount(); ++i) {
      if (ceph.osd(i).store.bytesStored() > 0) ++osds_with_data;
    }
    EXPECT_EQ(osds_with_data, 1);  // single primary OSD holds it all
  });
}

TEST_F(CephTest, PgPlacementBalancesManyObjects) {
  std::set<int> used;
  for (int i = 0; i < 2000; ++i) {
    used.insert(ceph_->primaryOsd(ceph_->pgOf("obj" + std::to_string(i))));
  }
  // 2000 objects over 1024 PGs over 32 OSDs: every OSD gets some.
  EXPECT_EQ(used.size(), static_cast<std::size_t>(ceph_->osdCount()));
}

TEST_F(CephTest, FewerPgsBalanceWorse) {
  rados::CephConfig few;
  few.pg_count = 16;
  rados::CephCluster small(cluster_, {}, 0, few);  // placement math only
  std::set<int> pgs;
  for (int i = 0; i < 1000; ++i) {
    pgs.insert(small.pgOf("o" + std::to_string(i)));
  }
  EXPECT_LE(pgs.size(), 16u);
}

TEST_F(CephTest, WriteAmplificationChargesDevice) {
  run([](rados::CephCluster& ceph, rados::RadosClient& c) -> Task<void> {
    co_await c.writeFull("amp", Payload::synthetic(10 * kMiB));
    std::uint64_t device_bytes = 0;
    for (int i = 0; i < ceph.osdCount(); ++i) {
      device_bytes += ceph.osd(i).device->bytesWritten();
    }
    // BlueStore amplification on the device, exact user bytes in the store.
    EXPECT_NEAR(static_cast<double>(device_bytes),
                ceph.config().write_amplification * 10 * kMiB,
                0.01 * 10 * kMiB);
    EXPECT_EQ(ceph.bytesStored(), 10 * kMiB);
  });
}

TEST_F(CephTest, PerOsdWriteBandwidthIsRoughlyTwoThirdsOfRaw) {
  // Sustained 1 MiB writes to one object: effective bandwidth should be
  // raw_device / write_amplification (plus small op overheads).
  run([](rados::CephCluster& ceph, rados::RadosClient& c) -> Task<void> {
    const int ops = 60;
    const Time t0 = ceph.cluster().sim().now();
    for (int i = 0; i < ops; ++i) {
      co_await c.write("stream", static_cast<std::uint64_t>(i) * kMiB,
                       Payload::synthetic(kMiB));
    }
    const double secs = sim::toSeconds(ceph.cluster().sim().now() - t0);
    const double mibps = ops / secs / 1.048576e6 * 1e6;  // MiB/s
    const double raw = 3.86 * 1024 / 16;  // 247 MiB/s
    const double expected = raw / ceph.config().write_amplification;
    EXPECT_LT(mibps, expected * 1.1);
    EXPECT_GT(mibps, expected * 0.8);
  });
}

}  // namespace
}  // namespace daosim
