// Kernel-performance invariants: the two-level event queue's exact
// (time, seq) ordering contract, the pooled frame allocator's steady-state
// reuse, ProcHandle's intrusive join-state lifetime, the release-build
// scheduleAt clamp, and serial-vs-parallel sweep determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "apps/ior.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "sim/event_queue.h"
#include "sim/parallel.h"
#include "sim/pool.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim {
namespace {

using sim::EventQueue;
using sim::Simulation;
using sim::Task;
using sim::Time;
using namespace sim::literals;

// --- Two-level queue: exact order under randomized schedules -------------

struct RefItem {
  Time t;
  std::uint64_t seq;
};

struct RefAfter {
  bool operator()(const RefItem& a, const RefItem& b) const noexcept {
    return a.t > b.t || (a.t == b.t && a.seq > b.seq);
  }
};

// Drives EventQueue and a std::priority_queue reference with the same
// randomized push/pop schedule and asserts identical (t, seq) pop order.
// The delta distribution mixes the regimes the queue's levels split on:
// same-instant hand-offs, current-window, near-ring and far-heap times.
void crossCheck(std::uint64_t rng_seed, int rounds) {
  std::mt19937_64 rng(rng_seed);
  EventQueue q;
  std::priority_queue<RefItem, std::vector<RefItem>, RefAfter> ref;

  Time now = 0;
  std::uint64_t seq = 0;
  for (int round = 0; round < rounds; ++round) {
    const int pushes = static_cast<int>(rng() % 24);
    for (int i = 0; i < pushes; ++i) {
      Time delta = 0;
      switch (rng() % 5) {
        case 0: delta = 0; break;                        // now-FIFO
        case 1: delta = rng() % 4096; break;             // current window
        case 2: delta = rng() % (512 * 4096); break;     // near ring
        case 3: delta = rng() % 100'000'000; break;      // far heap
        default: delta = rng() % 10'000'000'000ULL; break;  // very far
      }
      q.push(now, now + delta, seq, std::coroutine_handle<>{});
      ref.push(RefItem{now + delta, seq});
      ++seq;
    }
    const int pops = static_cast<int>(rng() % 24);
    for (int i = 0; i < pops && !ref.empty(); ++i) {
      ASSERT_EQ(q.nextTime(), ref.top().t);
      const EventQueue::Item got = q.pop();
      ASSERT_EQ(got.t, ref.top().t);
      ASSERT_EQ(got.seq, ref.top().seq);
      now = got.t;  // the kernel advances time to the popped event
      ref.pop();
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }
  while (!ref.empty()) {
    const EventQueue::Item got = q.pop();
    EXPECT_EQ(got.t, ref.top().t);
    EXPECT_EQ(got.seq, ref.top().seq);
    now = got.t;
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MatchesPriorityQueueUnderRandomSchedules) {
  for (std::uint64_t s = 1; s <= 8; ++s) crossCheck(s, 400);
}

TEST(EventQueue, FifoWithinTimestamp) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.push(0, 50, i, std::coroutine_handle<>{});
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    const EventQueue::Item e = q.pop();
    EXPECT_EQ(e.t, 50u);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(EventQueue, SparseTimestampsFallBackToFarHeap) {
  // Timestamps days apart: everything lands in the far heap and must still
  // pop in exact order.
  EventQueue q;
  std::vector<Time> times;
  std::mt19937_64 rng(9);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Time t = rng() % (86'400ULL * sim::kSecond);
    times.push_back(t);
    q.push(0, t, i, std::coroutine_handle<>{});
  }
  std::sort(times.begin(), times.end());
  for (Time expect : times) {
    EXPECT_EQ(q.pop().t, expect);
  }
}

// --- scheduleAt precondition: clamped and counted in release builds ------

TEST(Simulation, PastScheduleIsClampedAndCounted) {
#ifdef NDEBUG
  Simulation simu;
  struct PastAwaiter {
    Simulation* s;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      // A (buggy) 5us-in-the-past schedule: must run at now, not corrupt
      // the timeline.
      s->scheduleAt(s->now() - 5_us, h);
    }
    void await_resume() const noexcept {}
  };
  Time resumed_at = 0;
  simu.spawn([](Simulation& s, Time& out) -> Task<void> {
    co_await s.delay(10_us);
    co_await PastAwaiter{&s};
    out = s.now();
  }(simu, resumed_at));
  simu.run();
  EXPECT_EQ(resumed_at, 10_us);
  EXPECT_EQ(simu.pastScheduleClamps(), 1u);
  EXPECT_EQ(simu.now(), 10_us);
#else
  GTEST_SKIP() << "debug build: past scheduleAt is an assertion failure";
#endif
}

// --- Pooled frames: steady-state spawning allocates nothing fresh --------

TEST(FramePool, SteadyStateSpawningReusesFrames) {
  Simulation simu;
  auto spawnBatch = [&] {
    for (int i = 0; i < 64; ++i) {
      simu.spawn([](Simulation& s) -> Task<void> {
        co_await s.delay(1_us);
        co_await [](Simulation& s2) -> Task<int> {
          co_await s2.delay(1_us);
          co_return 1;
        }(s);
      }(simu));
    }
    simu.run();
  };
  spawnBatch();  // warm the pool
  const auto before = sim::detail::FramePool::threadStats();
  spawnBatch();  // identical shape: frames must come from the free lists
  const auto after = sim::detail::FramePool::threadStats();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GT(after.reuses, before.reuses);
  EXPECT_EQ(after.fresh, before.fresh) << "steady-state batch hit malloc";
}

// --- ProcHandle: intrusive refcount keeps join state alive ---------------

TEST(ProcHandle, CopiesShareStateAndOutliveTheProcess) {
  Simulation simu;
  sim::ProcHandle a = simu.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
  }(simu));
  sim::ProcHandle b = a;             // copy
  sim::ProcHandle c = std::move(a);  // move
  EXPECT_FALSE(a.valid());
  simu.run();
  EXPECT_TRUE(b.done());
  EXPECT_TRUE(c.done());
  bool joined = false;
  simu.spawn([](sim::ProcHandle h, bool& out) -> Task<void> {
    co_await h.join();
    out = true;
  }(b, joined));
  simu.run();
  EXPECT_TRUE(joined);
}

// --- Serial vs parallel sweep determinism --------------------------------

// Exhaustive RunResult comparison, histogram buckets included.
void expectIdentical(const apps::RunResult& x, const apps::RunResult& y) {
  ASSERT_EQ(x.procs, y.procs);
  for (int ph = 0; ph < 2; ++ph) {
    const apps::PhaseResult& p = x.phase[ph];
    const apps::PhaseResult& q = y.phase[ph];
    ASSERT_EQ(p.bytes, q.bytes);
    ASSERT_EQ(p.ops, q.ops);
    ASSERT_EQ(p.first_start, q.first_start);
    ASSERT_EQ(p.last_end, q.last_end);
    ASSERT_EQ(p.latency.count(), q.latency.count());
    ASSERT_EQ(p.latency.min(), q.latency.min());
    ASSERT_EQ(p.latency.max(), q.latency.max());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      ASSERT_EQ(p.latency.bucketCount(i), q.latency.bucketCount(i));
    }
  }
}

apps::RunResult runPoint(int clients, int ppn, std::uint64_t seed) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = clients;
  opt.seed = seed;
  opt.with_dfuse = false;
  apps::DaosTestbed tb(opt);
  apps::IorConfig cfg;
  cfg.ops = 40;
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(clients), ppn, bench);
}

TEST(ParallelRunner, SweepMatchesSerialBitwise) {
  // 4 sweep points x 2 reps, executed serially and on a 4-worker pool; each
  // simulation is self-contained and seed-deterministic, so the two must
  // agree on every field of every result.
  struct Pt {
    int clients, ppn;
  };
  const std::vector<Pt> grid = {{1, 2}, {2, 2}, {2, 4}, {4, 2}};
  const int reps = 2;

  auto runAll = [&](int jobs) {
    sim::ParallelRunner pool(jobs);
    return pool.map(grid.size() * reps, [&](std::size_t i) {
      const Pt pt = grid[i / reps];
      const std::uint64_t seed = i % reps + 1;
      return runPoint(pt.clients, pt.ppn, seed);
    });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectIdentical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, PropagatesExceptionsThroughFutures) {
  sim::ParallelRunner pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelRunner, SerialModeRunsInline) {
  sim::ParallelRunner pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const auto ids = pool.map(4, [](std::size_t i) { return i * i; });
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1, 4, 9}));
}

}  // namespace
}  // namespace daosim
