// Kernel-performance invariants: the two-level event queue's exact
// (time, seq) ordering contract, the pooled frame allocator's steady-state
// reuse, ProcHandle's intrusive join-state lifetime, the release-build
// scheduleAt clamp, and serial-vs-parallel sweep determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "apps/ior.h"
#include "apps/pdes.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "hw/cluster.h"
#include "hw/spec.h"
#include "sim/event_queue.h"
#include "sim/parallel.h"
#include "sim/pool.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim {
namespace {

using sim::EventQueue;
using sim::Simulation;
using sim::Task;
using sim::Time;
using namespace sim::literals;

// --- Two-level queue: exact order under randomized schedules -------------

struct RefItem {
  Time t;
  std::uint64_t seq;
};

struct RefAfter {
  bool operator()(const RefItem& a, const RefItem& b) const noexcept {
    return a.t > b.t || (a.t == b.t && a.seq > b.seq);
  }
};

// Drives EventQueue and a std::priority_queue reference with the same
// randomized push/pop schedule and asserts identical (t, seq) pop order.
// The delta distribution mixes the regimes the queue's levels split on:
// same-instant hand-offs, current-window, near-ring and far-heap times.
void crossCheck(std::uint64_t rng_seed, int rounds) {
  std::mt19937_64 rng(rng_seed);
  EventQueue q;
  std::priority_queue<RefItem, std::vector<RefItem>, RefAfter> ref;

  Time now = 0;
  std::uint64_t seq = 0;
  for (int round = 0; round < rounds; ++round) {
    const int pushes = static_cast<int>(rng() % 24);
    for (int i = 0; i < pushes; ++i) {
      Time delta = 0;
      switch (rng() % 5) {
        case 0: delta = 0; break;                        // now-FIFO
        case 1: delta = rng() % 4096; break;             // current window
        case 2: delta = rng() % (512 * 4096); break;     // near ring
        case 3: delta = rng() % 100'000'000; break;      // far heap
        default: delta = rng() % 10'000'000'000ULL; break;  // very far
      }
      q.push(now, now + delta, seq, std::coroutine_handle<>{});
      ref.push(RefItem{now + delta, seq});
      ++seq;
    }
    const int pops = static_cast<int>(rng() % 24);
    for (int i = 0; i < pops && !ref.empty(); ++i) {
      ASSERT_EQ(q.nextTime(), ref.top().t);
      const EventQueue::Item got = q.pop();
      ASSERT_EQ(got.t, ref.top().t);
      ASSERT_EQ(got.seq, ref.top().seq);
      now = got.t;  // the kernel advances time to the popped event
      ref.pop();
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }
  while (!ref.empty()) {
    const EventQueue::Item got = q.pop();
    EXPECT_EQ(got.t, ref.top().t);
    EXPECT_EQ(got.seq, ref.top().seq);
    now = got.t;
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MatchesPriorityQueueUnderRandomSchedules) {
  for (std::uint64_t s = 1; s <= 8; ++s) crossCheck(s, 400);
}

TEST(EventQueue, FifoWithinTimestamp) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.push(0, 50, i, std::coroutine_handle<>{});
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    const EventQueue::Item e = q.pop();
    EXPECT_EQ(e.t, 50u);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(EventQueue, SparseTimestampsFallBackToFarHeap) {
  // Timestamps days apart: everything lands in the far heap and must still
  // pop in exact order.
  EventQueue q;
  std::vector<Time> times;
  std::mt19937_64 rng(9);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Time t = rng() % (86'400ULL * sim::kSecond);
    times.push_back(t);
    q.push(0, t, i, std::coroutine_handle<>{});
  }
  std::sort(times.begin(), times.end());
  for (Time expect : times) {
    EXPECT_EQ(q.pop().t, expect);
  }
}

// --- scheduleAt precondition: clamped and counted in release builds ------

TEST(Simulation, PastScheduleIsClampedAndCounted) {
#ifdef NDEBUG
  Simulation simu;
  struct PastAwaiter {
    Simulation* s;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      // A (buggy) 5us-in-the-past schedule: must run at now, not corrupt
      // the timeline.
      s->scheduleAt(s->now() - 5_us, h);
    }
    void await_resume() const noexcept {}
  };
  Time resumed_at = 0;
  simu.spawn([](Simulation& s, Time& out) -> Task<void> {
    co_await s.delay(10_us);
    co_await PastAwaiter{&s};
    out = s.now();
  }(simu, resumed_at));
  simu.run();
  EXPECT_EQ(resumed_at, 10_us);
  EXPECT_EQ(simu.pastScheduleClamps(), 1u);
  EXPECT_EQ(simu.now(), 10_us);
#else
  GTEST_SKIP() << "debug build: past scheduleAt is an assertion failure";
#endif
}

// --- Pooled frames: steady-state spawning allocates nothing fresh --------

TEST(FramePool, SteadyStateSpawningReusesFrames) {
  Simulation simu;
  auto spawnBatch = [&] {
    for (int i = 0; i < 64; ++i) {
      simu.spawn([](Simulation& s) -> Task<void> {
        co_await s.delay(1_us);
        co_await [](Simulation& s2) -> Task<int> {
          co_await s2.delay(1_us);
          co_return 1;
        }(s);
      }(simu));
    }
    simu.run();
  };
  spawnBatch();  // warm the pool
  const auto before = sim::detail::FramePool::threadStats();
  spawnBatch();  // identical shape: frames must come from the free lists
  const auto after = sim::detail::FramePool::threadStats();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GT(after.reuses, before.reuses);
  EXPECT_EQ(after.fresh, before.fresh) << "steady-state batch hit malloc";
}

// --- ProcHandle: intrusive refcount keeps join state alive ---------------

TEST(ProcHandle, CopiesShareStateAndOutliveTheProcess) {
  Simulation simu;
  sim::ProcHandle a = simu.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
  }(simu));
  sim::ProcHandle b = a;             // copy
  sim::ProcHandle c = std::move(a);  // move
  EXPECT_FALSE(a.valid());
  simu.run();
  EXPECT_TRUE(b.done());
  EXPECT_TRUE(c.done());
  bool joined = false;
  simu.spawn([](sim::ProcHandle h, bool& out) -> Task<void> {
    co_await h.join();
    out = true;
  }(b, joined));
  simu.run();
  EXPECT_TRUE(joined);
}

// --- Serial vs parallel sweep determinism --------------------------------

// Exhaustive RunResult comparison, histogram buckets included.
void expectIdentical(const apps::RunResult& x, const apps::RunResult& y) {
  ASSERT_EQ(x.procs, y.procs);
  for (int ph = 0; ph < 2; ++ph) {
    const apps::PhaseResult& p = x.phase[ph];
    const apps::PhaseResult& q = y.phase[ph];
    ASSERT_EQ(p.bytes, q.bytes);
    ASSERT_EQ(p.ops, q.ops);
    ASSERT_EQ(p.first_start, q.first_start);
    ASSERT_EQ(p.last_end, q.last_end);
    ASSERT_EQ(p.latency.count(), q.latency.count());
    ASSERT_EQ(p.latency.min(), q.latency.min());
    ASSERT_EQ(p.latency.max(), q.latency.max());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      ASSERT_EQ(p.latency.bucketCount(i), q.latency.bucketCount(i));
    }
  }
}

apps::RunResult runPoint(int clients, int ppn, std::uint64_t seed) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = clients;
  opt.seed = seed;
  opt.with_dfuse = false;
  apps::DaosTestbed tb(opt);
  apps::IorConfig cfg;
  cfg.ops = 40;
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(clients), ppn, bench);
}

TEST(ParallelRunner, SweepMatchesSerialBitwise) {
  // 4 sweep points x 2 reps, executed serially and on a 4-worker pool; each
  // simulation is self-contained and seed-deterministic, so the two must
  // agree on every field of every result.
  struct Pt {
    int clients, ppn;
  };
  const std::vector<Pt> grid = {{1, 2}, {2, 2}, {2, 4}, {4, 2}};
  const int reps = 2;

  auto runAll = [&](int jobs) {
    sim::ParallelRunner pool(jobs);
    return pool.map(grid.size() * reps, [&](std::size_t i) {
      const Pt pt = grid[i / reps];
      const std::uint64_t seed = i % reps + 1;
      return runPoint(pt.clients, pt.ppn, seed);
    });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectIdentical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, PropagatesExceptionsThroughFutures) {
  sim::ParallelRunner pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelRunner, SerialModeRunsInline) {
  sim::ParallelRunner pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const auto ids = pool.map(4, [](std::size_t i) { return i * i; });
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1, 4, 9}));
}

TEST(ParallelRunner, FailFastCancelsQueuedJobs) {
  // Deterministic fail-fast check on a 2-worker pool: a blocker pins one
  // worker behind a gate, a failer poisons the pool from the other; once
  // the failure is visible, everything submitted afterwards must be
  // skipped (JobCancelled) without running.
  sim::ParallelRunner pool(2);
  std::promise<void> gate;
  auto opened = gate.get_future().share();
  auto blocker = pool.submit([opened] { opened.wait(); });
  auto failer =
      pool.submit([]() -> void { throw std::runtime_error("boom"); });
  while (pool.firstError() == nullptr) std::this_thread::yield();
  std::atomic<int> ran{0};
  std::vector<std::future<void>> later;
  for (int i = 0; i < 4; ++i) {
    later.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  gate.set_value();
  EXPECT_THROW(failer.get(), std::runtime_error);
  blocker.get();  // ran normally: it started before the failure
  int cancelled = 0;
  for (auto& f : later) {
    try {
      f.get();
    } catch (const sim::JobCancelled&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(cancelled, 4);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_NE(pool.firstError(), nullptr);
}

TEST(ParallelRunner, MapRethrowsFirstRealErrorNotCancellation) {
  // map() must surface the originating error even when later jobs were
  // skipped with JobCancelled after the pool was poisoned.
  sim::ParallelRunner pool(2);
  try {
    pool.map(8, [](std::size_t i) -> int {
      if (i == 3) throw std::invalid_argument("job3");
      return static_cast<int>(i);
    });
    FAIL() << "map() should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "job3");
  }
}

// --- Conservative PDES: ShardGroup protocol ------------------------------

struct DelayRec {
  Simulation* sim = nullptr;
  std::vector<Time>* out = nullptr;
  Time d1 = 0, d2 = 0;
};

// Plain-pointer arg, not a lambda closure (GCC-12 coroutine bug; see
// net/rpc.h).
Task<void> delayTwice(DelayRec* r) {
  co_await r->sim->delay(r->d1);
  r->out->push_back(r->sim->now());
  co_await r->sim->delay(r->d2);
  r->out->push_back(r->sim->now());
}

TEST(ShardGroup, EventExactlyAtWindowHorizonRunsInLaterWindow) {
  // Lookahead 100ns. Shard 0's second event lands exactly at gmin +
  // lookahead of the first window (t = 100): the conservative rule is
  // strict (t < window_end), because an event AT the horizon could still
  // tie with an incoming migration, so it must run in a later window —
  // at its exact timestamp either way.
  sim::ShardGroup::Options opt;
  opt.shards = 2;
  opt.lookahead = 100;
  sim::ShardGroup group(opt);
  std::vector<Time> t0, t1;
  DelayRec r0{&group.shard(0), &t0, 10, 90};   // events at 10 and 100
  DelayRec r1{&group.shard(1), &t1, 50, 500};  // events at 50 and 550
  auto h0 = group.shard(0).spawn(delayTwice(&r0));
  auto h1 = group.shard(1).spawn(delayTwice(&r1));
  group.run();
  EXPECT_FALSE(h0.failed());
  EXPECT_FALSE(h1.failed());
  EXPECT_EQ(t0, (std::vector<Time>{10, 100}));
  EXPECT_EQ(t1, (std::vector<Time>{50, 550}));
  // The t = 100 and t = 550 events cannot share the first [0, 100) window.
  EXPECT_GE(group.stats().windows, 2u);
  EXPECT_EQ(group.stats().cross_posts, 0u);
}

struct SendRec {
  hw::Cluster* cluster = nullptr;
  Simulation* home = nullptr;
  hw::NodeId src = 0, dst = 0;
  std::uint64_t bytes = 0;
  Time done = 0;
};

Task<void> oneSend(SendRec* r) {
  co_await r->cluster->send(r->src, r->dst, r->bytes);
  r->done = r->home->now();
}

TEST(ShardGroup, SameNodeSelfSendStaysOnShard) {
  // A node sending to itself never crosses shards: the sharded loopback
  // must match the serial loopback cost and post nothing to any mailbox.
  const hw::FabricSpec fabric;
  sim::ShardGroup::Options opt;
  opt.shards = 2;
  opt.lookahead = fabric.latency;
  sim::ShardGroup group(opt);
  hw::Cluster cluster(group, fabric);
  const hw::NodeId n0 = cluster.addNode(hw::NodeSpec::client(), 0);
  cluster.addNode(hw::NodeSpec::client(), 1);
  SendRec r{&cluster, &cluster.node(n0).sim(), n0, n0, 1 << 20};
  auto h = cluster.node(n0).sim().spawn(oneSend(&r));
  group.run();
  ASSERT_FALSE(h.failed());

  sim::Simulation serial_sim(1);
  hw::Cluster serial(serial_sim, fabric);
  const hw::NodeId s0 = serial.addNode(hw::NodeSpec::client());
  SendRec sr{&serial, &serial_sim, s0, s0, 1 << 20};
  auto sh = serial_sim.spawn(oneSend(&sr));
  serial_sim.run();
  ASSERT_FALSE(sh.failed());

  EXPECT_EQ(r.done, sr.done);
  EXPECT_GT(r.done, 0u);
  EXPECT_EQ(group.stats().cross_posts, 0u);
}

TEST(ShardGroup, CrossShardSendMatchesSerialTiming) {
  // One transfer between nodes on different shards, with lookahead equal
  // to the fabric latency (the minimum legal value): the reservation-based
  // sharded send must complete at the serial send's exact instant, via
  // exactly one migration (the sender's coroutine moving to the
  // destination shard).
  const hw::FabricSpec fabric;
  sim::ShardGroup::Options opt;
  opt.shards = 2;
  opt.lookahead = fabric.latency;
  sim::ShardGroup group(opt);
  hw::Cluster cluster(group, fabric);
  const hw::NodeId a = cluster.addNode(hw::NodeSpec::client(), 0);
  const hw::NodeId b = cluster.addNode(hw::NodeSpec::client(), 1);
  SendRec r{&cluster, &cluster.node(b).sim(), a, b, 1 << 20};
  auto h = cluster.node(a).sim().spawn(oneSend(&r));
  group.run();
  ASSERT_FALSE(h.failed());

  sim::Simulation serial_sim(1);
  hw::Cluster serial(serial_sim, fabric);
  const hw::NodeId sa = serial.addNode(hw::NodeSpec::client());
  const hw::NodeId sb = serial.addNode(hw::NodeSpec::client());
  SendRec sr{&serial, &serial_sim, sa, sb, 1 << 20};
  auto sh = serial_sim.spawn(oneSend(&sr));
  serial_sim.run();
  ASSERT_FALSE(sh.failed());

  EXPECT_EQ(r.done, sr.done);
  EXPECT_GT(r.done, fabric.latency);
  EXPECT_EQ(group.stats().cross_posts, 1u);
  EXPECT_EQ(cluster.messages(), serial.messages());
  EXPECT_EQ(cluster.bytesSent(), serial.bytesSent());
}

// --- Conservative PDES: sharded == serial on the pdes workload -----------

apps::PdesOptions pdesCfg(int servers, int clients, int ppn,
                          std::uint64_t ops, std::uint64_t seed,
                          int sim_jobs) {
  apps::PdesOptions o;
  o.server_nodes = servers;
  o.client_nodes = clients;
  o.procs_per_node = ppn;
  o.ops = ops;
  o.transfer = 256 << 10;
  o.drives_per_server = 2;
  o.seed = seed;
  o.sim_jobs = sim_jobs;
  return o;
}

TEST(ShardGroup, PdesShardedMatchesSerial) {
  // The tentpole invariant: for a spread of topologies, seeds and shard
  // counts, the sharded runs must reproduce the serial kernel's RunResult
  // exactly — every byte count, every timestamp, every histogram bucket.
  struct Cfg {
    int servers, clients, ppn, shards;
    std::uint64_t ops, seed;
  };
  const Cfg cfgs[] = {
      {2, 1, 1, 2, 8, 1},  {3, 2, 2, 2, 12, 7}, {4, 4, 2, 3, 10, 11},
      {5, 3, 4, 4, 16, 3}, {2, 4, 3, 4, 24, 5}, {4, 2, 1, 2, 9, 13},
  };
  for (const Cfg& c : cfgs) {
    SCOPED_TRACE(::testing::Message()
                 << "servers=" << c.servers << " clients=" << c.clients
                 << " ppn=" << c.ppn << " shards=" << c.shards
                 << " ops=" << c.ops << " seed=" << c.seed);
    const apps::PdesResult serial =
        apps::runPdes(pdesCfg(c.servers, c.clients, c.ppn, c.ops, c.seed, 0));
    const apps::PdesResult sharded = apps::runPdes(
        pdesCfg(c.servers, c.clients, c.ppn, c.ops, c.seed, c.shards));
    expectIdentical(serial.run, sharded.run);
    EXPECT_EQ(serial.digest, sharded.digest);
    EXPECT_GT(sharded.sync.cross_posts, 0u);
  }
}

TEST(ShardGroup, SingleShardWindowedMatchesSerial) {
  // shards == 1 runs the full windowed protocol inline (no workers); it
  // must still agree with the plain serial kernel exactly.
  const apps::PdesResult serial = apps::runPdes(pdesCfg(3, 2, 2, 10, 9, 0));
  const apps::PdesResult windowed = apps::runPdes(pdesCfg(3, 2, 2, 10, 9, 1));
  expectIdentical(serial.run, windowed.run);
  EXPECT_EQ(serial.digest, windowed.digest);
  // Same-shard NIC deliveries route through the mailbox too (migrate with
  // src == dst) so that same-time deliveries order shard-count-invariantly;
  // even a one-shard group therefore posts.
  EXPECT_GT(windowed.sync.cross_posts, 0u);
  EXPECT_GT(windowed.sync.windows, 0u);
}

TEST(ShardGroup, ShardedRunsAreDeterministic) {
  // Two identical sharded runs must agree on results AND protocol
  // counters — windows, posts, per-shard event counts.
  const auto cfg = pdesCfg(4, 3, 2, 12, 21, 4);
  const apps::PdesResult a = apps::runPdes(cfg);
  const apps::PdesResult b = apps::runPdes(cfg);
  expectIdentical(a.run, b.run);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sync.windows, b.sync.windows);
  EXPECT_EQ(a.sync.cross_posts, b.sync.cross_posts);
  EXPECT_EQ(a.sync.shard_events, b.sync.shard_events);
}

}  // namespace
}  // namespace daosim
