// Backend-conformance suite for the io:: layer.
//
// Three contracts, checked for every registered backend:
//   1. Registry — the paper's seven API paths (plus hdf5-daos) are reachable
//      by their canonical names, aliases resolve, and unknown names throw.
//   2. Round trip — a write/barrier/read-back cycle through io::Object
//      returns the exact bytes written (testbeds run with retain_data).
//   3. Frozen numbers — at queue_depth = 1 the unified benchmarks reproduce
//      the pre-io:: per-backend implementations bit for bit; the expected
//      integers below were captured from the seed implementations at
//      seed 7, 2 servers x 2 client nodes x 2 ppn, 256 KiB transfers.
// Plus the queue-depth contract: deeper IOR submission queues never lower
// write bandwidth (and strictly help before saturation).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/fault_injector.h"
#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "io/backend.h"
#include "io/submit_queue.h"
#include "net/retry.h"
#include "sim/fault_plan.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using hw::kKiB;
using sim::Task;
using vos::Payload;

// --- 1. registry ---------------------------------------------------------

TEST(IoRegistry, AllSevenPaperPathsRegistered) {
  const auto names = io::backendNames();
  for (const char* api : {"daos-array", "dfs", "dfuse", "dfuse-il", "hdf5",
                          "hdf5-daos", "lustre-posix", "rados"}) {
    EXPECT_TRUE(io::haveBackend(api)) << api;
    EXPECT_NE(std::find(names.begin(), names.end(), api), names.end()) << api;
  }
}

TEST(IoRegistry, AliasesResolveToCanonicalNames) {
  EXPECT_EQ(io::canonicalName("libdaos"), "daos-array");
  EXPECT_EQ(io::canonicalName("array"), "daos-array");
  EXPECT_EQ(io::canonicalName("dfuse+il"), "dfuse-il");
  EXPECT_EQ(io::canonicalName("hdf5-dfuse"), "hdf5");
  EXPECT_EQ(io::canonicalName("lustre"), "lustre-posix");
  EXPECT_EQ(io::canonicalName("daos-array"), "daos-array");  // idempotent
}

TEST(IoRegistry, UnknownNamesThrow) {
  EXPECT_FALSE(io::haveBackend("ntfs"));
  EXPECT_THROW((void)io::canonicalName("ntfs"), std::invalid_argument);
  EXPECT_THROW((void)io::backendSystem("ntfs"), std::invalid_argument);
  io::Env env;
  EXPECT_THROW((void)io::makeBackend("ntfs", env, hw::NodeId{}, 0),
               std::invalid_argument);
}

TEST(IoRegistry, BackendsMapToTheirSystems) {
  for (const char* api :
       {"daos-array", "dfs", "dfuse", "dfuse-il", "hdf5", "hdf5-daos"}) {
    EXPECT_EQ(io::backendSystem(api), io::System::kDaos) << api;
  }
  EXPECT_EQ(io::backendSystem("lustre-posix"), io::System::kLustre);
  EXPECT_EQ(io::backendSystem("rados"), io::System::kCeph);
}

TEST(IoRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(io::registerBackend("daos-array", io::System::kDaos, nullptr),
               std::invalid_argument);
  EXPECT_THROW(io::registerAlias("libdaos", "dfs"), std::invalid_argument);
}

// --- 2. write/barrier/read-back round trip -------------------------------

/// Each rank writes two pattern blocks to its own object, waits at the
/// barrier, then reads both back and compares byte-for-byte.
class RoundTrip final : public apps::SpmdBenchmark {
 public:
  RoundTrip(io::Env env, std::string api) : env_(env), api_(std::move(api)) {}

  sim::Task<void> process(apps::ProcContext ctx) override {
    std::unique_ptr<io::Backend> backend = io::makeBackend(
        api_, env_, ctx.node,
        apps::spmdClientId(env_.seed, /*domain=*/0x99000, ctx.rank));
    co_await backend->connect();
    io::OpenSpec spec;
    spec.name = "conf." + std::to_string(ctx.rank);
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);

    const Payload a = vos::patternPayload(128 * kKiB, 1000u + ctx.rank);
    const Payload b = vos::patternPayload(64 * kKiB, 2000u + ctx.rank);
    co_await obj->write(0, a);
    co_await obj->write(128 * kKiB, b);
    co_await obj->sync();
    co_await ctx.barrier->arriveAndWait();

    const Payload ra = co_await obj->read(0, 128 * kKiB);
    const Payload rb = co_await obj->read(128 * kKiB, 64 * kKiB);
    EXPECT_EQ(ra, a) << api_ << " rank " << ctx.rank;
    EXPECT_EQ(rb, b) << api_ << " rank " << ctx.rank;
    EXPECT_EQ(co_await obj->size(), 192 * kKiB) << api_;
    co_await obj->close();
  }

 private:
  io::Env env_;
  std::string api_;
};

void runRoundTrip(io::Env env, const std::string& api,
                  sim::Simulation& simu, std::vector<hw::NodeId> nodes) {
  RoundTrip bench(env, api);
  (void)apps::runSpmd(simu, std::move(nodes), 2, bench);
}

TEST(IoRoundTrip, EveryBackendReturnsWrittenBytes) {
  for (const std::string& api : io::backendNames()) {
    SCOPED_TRACE(api);
    switch (io::backendSystem(api)) {
      case io::System::kDaos: {
        apps::DaosTestbed::Options opt;
        opt.server_nodes = 2;
        opt.client_nodes = 1;
        opt.retain_data = true;
        apps::DaosTestbed tb(opt);
        runRoundTrip(tb.ioEnv(), api, tb.sim(), tb.clientSubset(1));
        break;
      }
      case io::System::kLustre: {
        apps::LustreTestbed::Options opt;
        opt.oss_nodes = 2;
        opt.client_nodes = 1;
        opt.retain_data = true;
        apps::LustreTestbed tb(opt);
        runRoundTrip(tb.ioEnv(), api, tb.sim(), tb.clientSubset(1));
        break;
      }
      case io::System::kCeph: {
        apps::CephTestbed::Options opt;
        opt.osd_nodes = 2;
        opt.client_nodes = 1;
        opt.retain_data = true;
        apps::CephTestbed tb(opt);
        runRoundTrip(tb.ioEnv(), api, tb.sim(), tb.clientSubset(1));
        break;
      }
    }
  }
}

// --- 3. frozen pre-refactor numbers at queue_depth = 1 --------------------

struct PhaseExpect {
  std::uint64_t bytes, ops, span, p50, p95, p99;
};

void expectPhase(const std::string& label, const apps::PhaseResult& got,
                 const PhaseExpect& want) {
  EXPECT_EQ(got.bytes, want.bytes) << label;
  EXPECT_EQ(got.ops, want.ops) << label;
  EXPECT_EQ(got.span(), want.span) << label;
  // Truncate interpolated percentiles to whole nanoseconds, as the capture
  // harness that produced the expected values did.
  EXPECT_EQ(static_cast<std::uint64_t>(got.latency.percentile(50)), want.p50)
      << label;
  EXPECT_EQ(static_cast<std::uint64_t>(got.latency.percentile(95)), want.p95)
      << label;
  EXPECT_EQ(static_cast<std::uint64_t>(got.latency.percentile(99)), want.p99)
      << label;
}

apps::DaosTestbed::Options frozenDaos() {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 2;
  opt.seed = 7;
  return opt;
}

apps::IorConfig frozenIor() {
  apps::IorConfig cfg;
  cfg.transfer = 256 * kKiB;
  cfg.ops = 20;
  return cfg;
}

struct IorCase {
  const char* api;
  bool shared;
  PhaseExpect write, read;
};

TEST(IoFrozenNumbers, IorDaosApisMatchPreRefactorSeed) {
  const IorCase cases[] = {
      {"daos-array", false,
       {20971520, 80, 4189688, 203380, 233472, 281804},
       {20971520, 80, 4081651, 200977, 233472, 265420}},
      {"dfs", false,
       {20971520, 80, 4189688, 203380, 233472, 281804},
       {20971520, 80, 4081651, 200977, 233472, 265420}},
      {"dfuse", false,
       {20971520, 80, 5999352, 303535, 311296, 377290},
       {20971520, 80, 5924011, 290899, 316757, 363724}},
      {"dfuse-il", false,
       {20971520, 80, 4188992, 209111, 212992, 281804},
       {20971520, 80, 4113651, 200977, 232106, 265420}},
      {"hdf5", false,
       {20971520, 80, 29240831, 1468006, 1504303, 1520435},
       {20971520, 80, 28961566, 1464007, 1503995, 1520435}},
      {"hdf5-daos", false,
       {20971520, 80, 31280406, 1555678, 1572012, 1717043},
       {20971520, 80, 29234403, 1475400, 1505647, 1546649}},
      {"daos-array", true,
       {20971520, 80, 4189688, 203380, 237568, 244121},
       {20971520, 80, 4081651, 201036, 234837, 239058}},
      {"dfs", true,
       {20971520, 80, 4189688, 203380, 239616, 281804},
       {20971520, 80, 4081651, 200977, 233472, 265420}},
  };
  for (const IorCase& c : cases) {
    const std::string label =
        std::string("ior.") + c.api + (c.shared ? ".shared" : "");
    apps::DaosTestbed tb(frozenDaos());
    apps::IorConfig cfg = frozenIor();
    cfg.shared_file = c.shared;
    apps::Ior bench(tb.ioEnv(), c.api, cfg);
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    expectPhase(label + ".write", r.write(), c.write);
    expectPhase(label + ".read", r.read(), c.read);
  }
}

TEST(IoFrozenNumbers, IorLustreAndRadosMatchPreRefactorSeed) {
  {
    apps::LustreTestbed::Options opt;
    opt.oss_nodes = 2;
    opt.client_nodes = 2;
    opt.seed = 7;
    apps::LustreTestbed tb(opt);
    apps::Ior bench(tb.ioEnv(), "lustre-posix", frozenIor());
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    expectPhase("ior.lustre.write", r.write(),
                {20971520, 80, 4128296, 204380, 204589, 242483});
    expectPhase("ior.lustre.read", r.read(),
                {20971520, 80, 4028297, 200809, 204589, 240058});
  }
  {
    apps::CephTestbed::Options opt;
    opt.osd_nodes = 2;
    opt.client_nodes = 2;
    opt.seed = 7;
    apps::CephTestbed tb(opt);
    apps::Ior bench(tb.ioEnv(), "rados", frozenIor());
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    expectPhase("ior.rados.write", r.write(),
                {20971520, 80, 7421434, 368959, 376619, 445644});
    expectPhase("ior.rados.read", r.read(),
                {20971520, 80, 14999634, 746314, 752823, 819668});
  }
}

TEST(IoFrozenNumbers, FieldIoAndFdbMatchPreRefactorSeed) {
  {
    apps::DaosTestbed tb(frozenDaos());
    apps::FieldIoConfig cfg;
    cfg.field_size = 256 * kKiB;
    cfg.fields = 15;
    apps::FieldIo bench(tb.ioEnv(), "daos-array", cfg);
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    expectPhase("fieldio.write", r.write(),
                {15728640, 60, 8921608, 578901, 622592, 648806});
    expectPhase("fieldio.read", r.read(),
                {15728640, 60, 5439635, 355766, 409600, 445739});
  }
  for (const bool async : {false, true}) {
    apps::DaosTestbed tb(frozenDaos());
    apps::FdbConfig cfg;
    cfg.field_size = 256 * kKiB;
    cfg.fields = 20;
    cfg.async_index = async;
    apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    if (async) {
      expectPhase("fdb.async.write", r.write(),
                  {20971520, 80, 4407792, 215598, 245760, 280504});
    } else {
      expectPhase("fdb.sync.write", r.write(),
                  {20971520, 80, 10926950, 543283, 579993, 596377});
    }
    // The retrieve path is identical in both modes.
    expectPhase("fdb.read", r.read(),
                {20971520, 80, 6082598, 298812, 352256, 362647});
  }
}

// --- 3b. fault machinery off == fault machinery absent --------------------

void expectPhaseBitIdentical(const std::string& label,
                             const apps::PhaseResult& got,
                             const apps::PhaseResult& want) {
  EXPECT_EQ(got.bytes, want.bytes) << label;
  EXPECT_EQ(got.ops, want.ops) << label;
  EXPECT_EQ(got.first_start, want.first_start) << label;
  EXPECT_EQ(got.last_end, want.last_end) << label;
  EXPECT_EQ(got.latency.count(), want.latency.count()) << label;
  EXPECT_EQ(got.latency.min(), want.latency.min()) << label;
  EXPECT_EQ(got.latency.max(), want.latency.max()) << label;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    ASSERT_EQ(got.latency.bucketCount(i), want.latency.bucketCount(i))
        << label << " bucket " << i;
  }
}

/// An installed-but-empty FaultPlan and an explicitly disabled RetryPolicy
/// must take the zero-retry fast path everywhere: the full frozen IOR run
/// (event schedule, clock, per-op latency histogram) is bit-identical to a
/// run with no fault machinery at all.
TEST(IoFrozenNumbers, EmptyFaultPlanIsBitIdenticalToPlanFreeRun) {
  auto run = [](bool with_fault_machinery) {
    apps::DaosTestbed::Options opt = frozenDaos();
    if (with_fault_machinery) {
      opt.daos.rpc_retry = net::RetryPolicy{};  // disabled, explicitly
    }
    apps::DaosTestbed tb(opt);
    std::optional<apps::FaultInjector> inj;
    if (with_fault_machinery) {
      inj.emplace(tb, sim::FaultPlan{});
      inj->install();
    }
    apps::Ior bench(tb.ioEnv(), "daos-array", frozenIor());
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    if (inj) {
      inj->rethrowIfFailed();
      EXPECT_EQ(inj->stats().events_applied, 0u);
    }
    EXPECT_EQ(tb.cluster().rpcRetries(), 0u);
    EXPECT_EQ(tb.cluster().rpcTimeouts(), 0u);
    return std::make_pair(r, tb.sim().now());
  };
  const auto [plain, plain_now] = run(false);
  const auto [chaos, chaos_now] = run(true);
  EXPECT_EQ(plain_now, chaos_now);
  EXPECT_EQ(plain.procs, chaos.procs);
  expectPhaseBitIdentical("emptyplan.write", chaos.write(), plain.write());
  expectPhaseBitIdentical("emptyplan.read", chaos.read(), plain.read());
}

// --- 4. queue depth ------------------------------------------------------

TEST(IoQueueDepth, DeeperQueuesNeverLowerIorWriteBandwidth) {
  double prev = 0;
  for (const int qd : {1, 2, 4, 8}) {
    apps::DaosTestbed tb(frozenDaos());
    apps::IorConfig cfg = frozenIor();
    cfg.ops = 100;
    cfg.queue_depth = qd;
    apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
    apps::RunResult r =
        apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);
    EXPECT_EQ(r.write().bytes, 4ULL * 100 * 256 * kKiB) << "qd=" << qd;
    EXPECT_GE(r.write().gibps(), prev) << "qd=" << qd;
    prev = r.write().gibps();
  }
  // Depth 1 is well below saturation here, so depth 8 must strictly win.
  apps::DaosTestbed tb(frozenDaos());
  apps::IorConfig cfg = frozenIor();
  cfg.ops = 100;
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  const double qd1 =
      apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench).write().gibps();
  EXPECT_GT(prev, qd1 * 1.2);
}

TEST(IoSubmitQueue, BoundsInFlightOpsToDepth) {
  sim::Simulation simu;
  bool done = false;
  simu.spawn([](sim::Simulation& s, bool& done) -> Task<void> {
    io::SubmitQueue q(s, /*depth=*/3);
    EXPECT_EQ(q.depth(), 3u);
    for (int i = 0; i < 10; ++i) {
      co_await q.submit([](sim::Simulation& s) -> Task<void> {
        co_await s.delay(sim::kMillisecond);
      }(s));
      EXPECT_LE(q.inFlight(), 3u);
    }
    co_await q.waitAll();
    EXPECT_EQ(q.inFlight(), 0u);
    done = true;
  }(simu, done));
  simu.run();
  EXPECT_TRUE(done);
}

TEST(IoSubmitQueue, SubmitPropagatesFailuresFromEarlierOps) {
  sim::Simulation simu;
  bool caught = false;
  simu.spawn([](sim::Simulation& s, bool& caught) -> Task<void> {
    io::SubmitQueue q(s, /*depth=*/1);
    q.launch([](sim::Simulation& s) -> Task<void> {
      co_await s.delay(sim::kMicrosecond);
      throw std::runtime_error("op failed");
    }(s));
    try {
      // Depth 1: this submit must first join the failed op...
      co_await q.submit([](sim::Simulation& s) -> Task<void> {
        co_await s.delay(sim::kMicrosecond);
      }(s));
      co_await q.waitAll();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(simu, caught));
  simu.run();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace daosim
