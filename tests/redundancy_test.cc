// Parameterized redundancy suite: for every protected object class, verify
// round-trip correctness, storage amplification, and single-failure
// degraded reads — the guarantees behind the paper's §III-D experiments.
// Also covers pool space queries and IOR's single-shared-file mode.
#include <gtest/gtest.h>

#include <memory>

#include "apps/ior.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "sim/simulation.h"

namespace daosim {
namespace {

using daos::Array;
using daos::Client;
using daos::Container;
using daos::DaosSystem;
using daos::KeyValue;
using placement::classSpec;
using placement::ObjClass;
using sim::Task;
using vos::Payload;
using hw::kKiB;
using hw::kMiB;

struct RedundancyCase {
  ObjClass oclass;
  const char* name;
  bool survives_one_failure;
};

class RedundancyTest : public ::testing::TestWithParam<RedundancyCase> {
 protected:
  RedundancyTest() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 4);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, 1);
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_P(RedundancyTest, RoundTripAmplificationAndDegradedRead) {
  const RedundancyCase& tc = GetParam();
  bool done = false;
  auto h = sim_.spawn([](Client& c, RedundancyCase tc, bool& done) -> Task<void> {
    co_await c.poolConnect();
    Container cont = co_await c.contCreate("red");
    Array a = co_await Array::create(c, cont, c.nextOid(tc.oclass),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    // 4 full stripes of real data.
    Payload data = vos::patternPayload(4 * kMiB, 99);
    const std::uint64_t before = c.system().bytesStored();
    co_await a.write(0, data);
    const double stored =
        static_cast<double>(c.system().bytesStored() - before);
    const double expected =
        classSpec(tc.oclass).writeAmplification() * 4 * kMiB;
    EXPECT_NEAR(stored, expected, 0.01 * expected) << tc.name;

    Payload healthy = co_await a.read(0, 4 * kMiB);
    EXPECT_EQ(healthy, data) << tc.name;

    if (tc.survives_one_failure) {
      // Fail the first target of the first group; reads must still return
      // identical bytes (replica failover or XOR reconstruction).
      const int victim = a.layout().target(0, 0);
      c.system().failTarget(victim);
      Payload degraded = co_await a.read(0, 4 * kMiB);
      EXPECT_EQ(degraded, data) << tc.name << " (degraded)";
      // Size probes must also survive the failure.
      EXPECT_EQ(co_await a.getSize(), 4 * kMiB) << tc.name;
      c.system().recoverTarget(victim);
    }
    done = true;
  }(*client_, tc, done));
  sim_.run();
  ASSERT_FALSE(h.failed()) << tc.name;
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(
    Classes, RedundancyTest,
    ::testing::Values(
        RedundancyCase{ObjClass::S1, "S1", false},
        RedundancyCase{ObjClass::SX, "SX", false},
        RedundancyCase{ObjClass::RP_2G1, "RP_2G1", true},
        RedundancyCase{ObjClass::RP_2GX, "RP_2GX", true},
        RedundancyCase{ObjClass::RP_3G1, "RP_3G1", true},
        RedundancyCase{ObjClass::EC_2P1G1, "EC_2P1G1", true},
        RedundancyCase{ObjClass::EC_2P1GX, "EC_2P1GX", true},
        RedundancyCase{ObjClass::EC_4P2GX, "EC_4P2GX", true}),
    [](const auto& info) { return info.param.name; });

TEST_F(RedundancyTest, ReplicatedKvSurvivesTwoFailuresWithRp3) {
  bool done = false;
  auto h = sim_.spawn([](Client& c, bool& done) -> Task<void> {
    co_await c.poolConnect();
    Container cont = co_await c.contCreate("kv3");
    KeyValue kv(c, cont, c.nextOid(ObjClass::RP_3G1));
    co_await kv.put("k", Payload::fromString("triple"));
    c.system().failTarget(kv.layout().target(0, 0));
    c.system().failTarget(kv.layout().target(0, 1));
    auto v = co_await kv.get("k");
    EXPECT_TRUE(v.has_value());
    if (v) {
      EXPECT_EQ(v->toString(), "triple");
    }
    done = true;
  }(*client_, done));
  sim_.run();
  ASSERT_FALSE(h.failed());
  EXPECT_TRUE(done);
}

TEST_F(RedundancyTest, PoolQueryReportsCapacityAndUsage) {
  bool done = false;
  auto h = sim_.spawn([](Client& c, bool& done) -> Task<void> {
    co_await c.poolConnect();
    auto before = co_await c.poolQuery();
    EXPECT_EQ(before.engines, 4);
    EXPECT_EQ(before.targets, 64);
    EXPECT_EQ(before.total_bytes, 64ULL * 384 * (1ULL << 30));

    Container cont = co_await c.contCreate("space");
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::RP_2GX),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    co_await a.write(0, Payload::synthetic(8 * kMiB));
    auto after = co_await c.poolQuery();
    // 8 MiB twice (RP_2) + the replicated attrs records.
    EXPECT_EQ(after.used_bytes - before.used_bytes, 16 * kMiB + 32);
    done = true;
  }(*client_, done));
  sim_.run();
  ASSERT_FALSE(h.failed());
  EXPECT_TRUE(done);
}

// --- IOR single-shared-file mode ---------------------------------------

TEST(SharedFileIor, DaosArraySegmentsDoNotCollide) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 2;
  opt.retain_data = true;  // verify actual stored bytes
  apps::DaosTestbed tb(opt);
  apps::IorConfig cfg;
  cfg.transfer = 128 * kKiB;
  cfg.ops = 10;
  cfg.shared_file = true;
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  apps::RunResult r = apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);

  // 4 ranks x 10 ops x 128 KiB, all in ONE object: exactly that much data
  // stored (disjoint segments) plus a handful of metadata records (array
  // attrs, DFS superblock and directory entry from the testbed setup).
  EXPECT_EQ(r.write().bytes, 4ULL * 10 * 128 * kKiB);
  EXPECT_GE(tb.daos().bytesStored(), r.write().bytes);
  EXPECT_LT(tb.daos().bytesStored(), r.write().bytes + 256);
  EXPECT_EQ(r.read().bytes, r.write().bytes);
}

TEST(SharedFileIor, DfsSharedFileHasSingleDirectoryEntry) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 2;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  apps::IorConfig cfg;
  cfg.transfer = 64 * kKiB;
  cfg.ops = 8;
  cfg.shared_file = true;
  apps::Ior bench(tb.ioEnv(), "dfs", cfg);
  (void)apps::runSpmd(tb.sim(), tb.clientSubset(2), 2, bench);

  // The namespace holds exactly one shared file.
  bool checked = false;
  auto h = tb.sim().spawn(
      [](apps::DaosTestbed& tb, bool& checked) -> Task<void> {
        dfs::FileSystem fs = tb.dfsMount();
        auto names = co_await fs.readdir("/bench");
        EXPECT_EQ(names, (std::vector<std::string>{"ior.shared"}));
        auto st = co_await fs.stat("/bench/ior.shared");
        EXPECT_EQ(st.size, 4ULL * 8 * 64 * kKiB);
        checked = true;
      }(tb, checked));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace daosim
