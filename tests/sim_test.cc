// Unit tests for the discrete-event kernel: scheduling order, coroutine
// task semantics, synchronization primitives and queueing stations.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/queue_station.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::sim {
namespace {

using namespace daosim::sim::literals;

TEST(SimTime, Conversions) {
  EXPECT_EQ(1_s, kSecond);
  EXPECT_EQ(1_ms, kMillisecond);
  EXPECT_EQ(1_us, kMicrosecond);
  EXPECT_DOUBLE_EQ(toSeconds(1'500'000'000), 1.5);
  EXPECT_EQ(fromSeconds(2.5), 2'500'000'000ULL);
}

TEST(Simulation, DelayAdvancesTime) {
  Simulation sim;
  Time seen = 0;
  sim.spawn([](Simulation& s, Time& out) -> Task<void> {
    co_await s.delay(10_us);
    co_await s.delay(5_us);
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, 15_us);
  EXPECT_EQ(sim.now(), 15_us);
}

TEST(Simulation, FifoOrderAtEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Simulation& s, std::vector<int>& o, int id) -> Task<void> {
      co_await s.delay(1_us);
      o.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedTaskReturnValues) {
  Simulation sim;
  auto inner = [](Simulation& s) -> Task<int> {
    co_await s.delay(1_us);
    co_return 41;
  };
  int result = 0;
  sim.spawn([](Simulation& s, auto inner_fn, int& out) -> Task<void> {
    out = co_await inner_fn(s) + 1;
  }(sim, inner, result));
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Simulation, ExceptionPropagatesThroughJoin) {
  Simulation sim;
  auto h = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
    throw std::runtime_error("boom");
  }(sim));
  bool caught = false;
  sim.spawn([](Simulation&, ProcHandle p, bool& c) -> Task<void> {
    try {
      co_await p.join();
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "boom";
    }
  }(sim, h, caught));
  sim.run();
  EXPECT_TRUE(caught);
  EXPECT_TRUE(h.failed());
}

TEST(Simulation, JoinAfterCompletionIsImmediate) {
  Simulation sim;
  auto h = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
  }(sim));
  sim.run();
  ASSERT_TRUE(h.done());
  bool joined = false;
  sim.spawn([](Simulation&, ProcHandle p, bool& j) -> Task<void> {
    co_await p.join();
    j = true;
  }(sim, h, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ticks = 0;
  sim.spawn([](Simulation& s, int& t) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(1_ms);
      ++t;
    }
  }(sim, ticks));
  sim.runUntil(3_ms);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.now(), 3_ms);
  sim.run();
  EXPECT_EQ(ticks, 10);
}

TEST(Simulation, EventBudgetThrows) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    for (;;) co_await s.yield();
  }(sim));
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Event, WakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Event& e, int& w) -> Task<void> {
      co_await e.wait();
      ++w;
    }(ev, woken));
  }
  sim.spawn([](Simulation& s, Event& e) -> Task<void> {
    co_await s.delay(5_us);
    e.set();
    e.set();  // idempotent
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woken, 3);
  EXPECT_TRUE(ev.isSet());
}

TEST(Event, WaitAfterSetDoesNotBlock) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  bool ran = false;
  sim.spawn([](Event& e, bool& r) -> Task<void> {
    co_await e.wait();
    r = true;
  }(ev, ran));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, int& c, int& p) -> Task<void> {
      co_await sm.acquire();
      ++c;
      p = std::max(p, c);
      co_await s.delay(10_us);
      --c;
      sm.release();
    }(sim, sem, concurrent, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sim.now(), 30_us);  // 6 jobs, 2 at a time, 10us each
}

TEST(Mutex, ScopedLockSerializes) {
  Simulation sim;
  Mutex mu(sim);
  int in_section = 0;
  bool overlap = false;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(
        [](Simulation& s, Mutex& m, int& in, bool& ov) -> Task<void> {
          auto lock = co_await m.scoped();
          ++in;
          if (in > 1) ov = true;
          co_await s.delay(3_us);
          --in;
        }(sim, mu, in_section, overlap));
  }
  sim.run();
  EXPECT_FALSE(overlap);
  EXPECT_EQ(sim.now(), 12_us);
}

TEST(Barrier, ReleasesAllTogether) {
  Simulation sim;
  Barrier bar(sim, 3);
  std::vector<Time> release_times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, std::vector<Time>& out,
                 int id) -> Task<void> {
      co_await s.delay(static_cast<Time>(id + 1) * 1_us);
      co_await b.arriveAndWait();
      out.push_back(s.now());
    }(sim, bar, release_times, i));
  }
  sim.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (Time t : release_times) EXPECT_EQ(t, 3_us);
  EXPECT_EQ(bar.generation(), 1u);
}

TEST(Barrier, IsCyclic) {
  Simulation sim;
  Barrier bar(sim, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, int& done, int id) -> Task<void> {
      for (int r = 0; r < 3; ++r) {
        co_await s.delay(static_cast<Time>(id + 1) * 1_us);
        co_await b.arriveAndWait();
      }
      ++done;
    }(sim, bar, rounds_done, i));
  }
  sim.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_EQ(bar.generation(), 3u);
}

TEST(WhenAll, RunsConcurrently) {
  Simulation sim;
  std::vector<Task<void>> tasks;
  auto sleeper = [](Simulation& s) -> Task<void> { co_await s.delay(10_us); };
  for (int i = 0; i < 5; ++i) tasks.push_back(sleeper(sim));
  sim.spawn(whenAll(sim, std::move(tasks)));
  sim.run();
  EXPECT_EQ(sim.now(), 10_us);  // concurrent, not 50us
}

TEST(WhenAll, PropagatesFirstError) {
  Simulation sim;
  std::vector<Task<void>> tasks;
  tasks.push_back([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
    throw std::runtime_error("first");
  }(sim));
  tasks.push_back([](Simulation& s) -> Task<void> {
    co_await s.delay(2_us);
    throw std::runtime_error("second");
  }(sim));
  auto h = sim.spawn(whenAll(sim, std::move(tasks)));
  sim.run();
  ASSERT_TRUE(h.failed());
  bool caught = false;
  sim.spawn([](ProcHandle p, bool& c) -> Task<void> {
    try {
      co_await p.join();
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "first";
    }
  }(h, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(QueueStation, SingleServerSerializes) {
  Simulation sim;
  QueueStation st(sim, "dev", 1);
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](QueueStation& s) -> Task<void> {
      co_await s.exec(100_us);
    }(st));
  }
  sim.run();
  EXPECT_EQ(sim.now(), 400_us);
  EXPECT_EQ(st.ops(), 4u);
  EXPECT_EQ(st.busyTime(), 400_us);
  // First job waits 0, then 100, 200, 300us.
  EXPECT_EQ(st.totalWait(), 600_us);
  EXPECT_DOUBLE_EQ(st.meanWait(), 150e3);
  EXPECT_DOUBLE_EQ(st.utilization(400_us), 1.0);
}

TEST(QueueStation, MultiServerParallelism) {
  Simulation sim;
  QueueStation st(sim, "nic", 4);
  for (int i = 0; i < 8; ++i) {
    sim.spawn([](QueueStation& s) -> Task<void> {
      co_await s.exec(10_us);
    }(st));
  }
  sim.run();
  EXPECT_EQ(sim.now(), 20_us);  // two waves of four
}

TEST(QueueStation, SaturationThroughputMatchesServiceRate) {
  // 1 server, 1ms service -> 1000 ops/s; run 100 ops and check the span.
  Simulation sim;
  QueueStation st(sim, "x", 1);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    sim.spawn([](QueueStation& s) -> Task<void> {
      co_await s.exec(1_ms);
    }(st));
  }
  sim.run();
  const double ops_per_sec = n / toSeconds(sim.now());
  EXPECT_NEAR(ops_per_sec, 1000.0, 1e-6);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformWithinBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, Real01Range) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double v = r.real01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  Welford w;
  for (int i = 0; i < 20000; ++i) w.add(r.exponential(5.0));
  EXPECT_NEAR(w.mean(), 5.0, 0.2);
}

TEST(Welford, BasicMoments) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
}

TEST(Welford, SingleSampleHasZeroSpread) {
  Welford w;
  w.add(42.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 42.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 42.0);
  EXPECT_DOUBLE_EQ(w.max(), 42.0);
}

TEST(Welford, ConstantSeriesHasZeroVariance) {
  Welford w;
  for (int i = 0; i < 1000; ++i) w.add(3.25);
  EXPECT_EQ(w.count(), 1000u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.25);
  // Welford's update must not accumulate rounding noise on a constant
  // stream; the naive sum-of-squares formulation does.
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.25);
  EXPECT_DOUBLE_EQ(w.max(), 3.25);
}

TEST(Mix64, HashCombineVariesWithOrder) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_EQ(hashCombine(1, 2), hashCombine(1, 2));
}

// Determinism property: two identical simulations produce identical event
// traces (same final time, same processed-event count).
TEST(Simulation, DeterministicReplay) {
  auto runOnce = [] {
    Simulation sim(123);
    QueueStation st(sim, "d", 2);
    for (int i = 0; i < 50; ++i) {
      sim.spawn([](Simulation& s, QueueStation& q, int id) -> Task<void> {
        co_await s.delay(s.rng().uniform(0, 1000) * kMicrosecond);
        co_await q.exec((100 + static_cast<Time>(id)) * kMicrosecond);
      }(sim, st, i));
    }
    sim.run();
    return std::pair(sim.now(), sim.processedEvents());
  };
  auto a = runOnce();
  auto b = runOnce();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace daosim::sim
