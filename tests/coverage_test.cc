// Edge-case coverage across modules: empty/zero-length operations, cursor
// semantics, error paths, accounting corners, and API contracts that the
// scenario-driven suites do not reach.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "apps/runner.h"
#include "apps/stats_report.h"
#include "apps/sweep.h"
#include "apps/testbed.h"
#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hdf5/h5.h"
#include "hw/cluster.h"
#include "lustre/lustre.h"
#include "placement/objclass.h"
#include "posix/dfuse.h"
#include "sim/queue_station.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace daosim {
namespace {

using daos::Array;
using daos::Client;
using daos::Container;
using daos::DaosSystem;
using daos::KeyValue;
using placement::ObjClass;
using posix::OpenFlags;
using sim::Task;
using vos::Payload;
using namespace sim::literals;
using hw::kKiB;
using hw::kMiB;

// --- sim kernel corners ----------------------------------------------------

TEST(SimCorners, WhenAllEmptyVectorCompletesImmediately) {
  sim::Simulation sim;
  bool done = false;
  sim.spawn([](sim::Simulation& s, bool& d) -> Task<void> {
    co_await sim::whenAll(s, {});
    d = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(SimCorners, QueueStationEnterLeavePreservesFifoOrder) {
  sim::Simulation sim;
  sim::QueueStation st(sim, "s", 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](sim::Simulation& s, sim::QueueStation& st,
                 std::vector<int>& o, int id) -> Task<void> {
      co_await s.delay(static_cast<sim::Time>(id) * 1_us);
      const sim::Time held = co_await st.enter();
      co_await s.delay(10_us);  // held across arbitrary work
      o.push_back(id);
      st.leave(held);
    }(sim, st, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(st.ops(), 4u);
}

TEST(SimCorners, BarrierWithOneParty) {
  sim::Simulation sim;
  sim::Barrier b(sim, 1);
  bool done = false;
  sim.spawn([](sim::Barrier& b, bool& d) -> Task<void> {
    co_await b.arriveAndWait();
    co_await b.arriveAndWait();
    d = true;
  }(b, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(SimCorners, ProcHandleErrorIsNullOnSuccess) {
  sim::Simulation sim;
  auto h = sim.spawn([](sim::Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
  }(sim));
  sim.run();
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.error(), nullptr);
}

// --- payload / placement corners -------------------------------------------

TEST(PayloadCorners, SliceOfSliceComposes) {
  auto p = vos::patternPayload(1000, 1);
  auto a = p.slice(100, 500);
  auto b = a.slice(50, 100);
  EXPECT_EQ(b, p.slice(150, 100));
}

TEST(PayloadCorners, XorOfSyntheticIsSynthetic) {
  auto x = vos::xorPayloads({Payload::synthetic(64), vos::patternPayload(64, 1)},
                            64);
  EXPECT_FALSE(x.hasBytes());
  EXPECT_EQ(x.size(), 64u);
}

TEST(PayloadCorners, XorIsInvolution) {
  auto a = vos::patternPayload(128, 1);
  auto b = vos::patternPayload(128, 2);
  auto axb = vos::xorPayloads({a, b}, 128);
  EXPECT_EQ(vos::xorPayloads({axb, b}, 128), a);
}

TEST(ObjClassCorners, NameRoundTrip) {
  for (ObjClass oc : {ObjClass::S1, ObjClass::SX, ObjClass::RP_2GX,
                      ObjClass::EC_2P1G1, ObjClass::EC_4P2GX}) {
    EXPECT_EQ(placement::classFromName(placement::className(oc)), oc);
  }
  EXPECT_THROW(placement::classFromName("NOPE"), std::invalid_argument);
}

// --- DAOS client corners ----------------------------------------------------

class DaosCorners : public ::testing::Test {
 protected:
  DaosCorners() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 2);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, 1);
  }

  template <typename Body>
  void run(Body body) {
    auto h = sim_.spawn([](Client& c, Body body) -> Task<void> {
      co_await c.poolConnect();
      Container cont = co_await c.contCreate("corners");
      co_await body(c, cont);
    }(*client_, std::move(body)));
    sim_.run();
    if (h.failed()) std::rethrow_exception(h.error());
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_F(DaosCorners, EmptyWritesAndReadsAreNoOps) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1024});
    co_await a.write(100, Payload{});
    EXPECT_EQ(co_await a.getSize(), 0u);
    Payload r = co_await a.read(0, 0);
    EXPECT_EQ(r.size(), 0u);
  });
}

TEST_F(DaosCorners, GetSizeOnUntouchedArrayIsZero) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::S4),
                                     {.cell_size = 1, .chunk_size = 1024});
    EXPECT_EQ(co_await a.getSize(), 0u);
  });
}

TEST_F(DaosCorners, ContDestroyReclaimsAllShards) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1 << 16});
    co_await a.write(0, Payload::synthetic(1 << 20));
    EXPECT_GT(c.system().bytesStored(), 1u << 20);
    co_await c.contDestroy("corners");
    EXPECT_EQ(c.system().bytesStored(), 0u);
  });
}

TEST_F(DaosCorners, KvRemoveOnReplicatedObjectRemovesAllCopies) {
  run([](Client& c, Container cont) -> Task<void> {
    KeyValue kv(c, cont, c.nextOid(ObjClass::RP_2G1));
    co_await kv.put("k", Payload::fromString("vv"));
    EXPECT_EQ(c.system().bytesStored(), 4u);  // two copies
    EXPECT_TRUE(co_await kv.remove("k"));
    EXPECT_EQ(c.system().bytesStored(), 0u);
  });
}

TEST_F(DaosCorners, EcPartialWriteReadsBackThroughHealthyPath) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::EC_2P1G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    // Unaligned partial write: spans both data cells, not a full stripe.
    Payload data = vos::patternPayload(600 * kKiB, 3);
    co_await a.write(100 * kKiB, data);
    Payload back = co_await a.read(100 * kKiB, 600 * kKiB);
    EXPECT_EQ(back, data);
    EXPECT_EQ(co_await a.getSize(), 700 * kKiB);
  });
}

TEST_F(DaosCorners, EventQueueWaitAllOnEmptyQueue) {
  run([](Client& c, Container) -> Task<void> {
    daos::EventQueue eq(c.sim());
    EXPECT_EQ(eq.inFlight(), 0u);
    co_await eq.waitAll();  // must not hang
  });
}

// --- POSIX cursor semantics ----------------------------------------------

TEST(PosixCorners, SeekTellAndIndependentFds) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::DaosTestbed& tb) -> Task<void> {
    posix::DfsVfs vfs(tb.dfsMount());
    posix::Fd a = co_await vfs.open("/f", OpenFlags::writeCreate());
    posix::Fd b = co_await vfs.open("/f", OpenFlags::readOnly());
    co_await vfs.write(a, Payload::fromString("0123456789"));
    EXPECT_EQ(vfs.tell(a), 10u);
    EXPECT_EQ(vfs.tell(b), 0u);  // cursors are per-fd
    vfs.seek(b, 4);
    Payload r = co_await vfs.read(b, 3);
    EXPECT_EQ(r.toString(), "456");
    EXPECT_EQ(vfs.tell(b), 7u);
    co_await vfs.close(a);
    co_await vfs.close(b);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

TEST(PosixCorners, DfuseOpenMissingWithoutCreateThrows) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::DaosTestbed& tb) -> Task<void> {
    posix::DfuseVfs vfs(tb.daemon(tb.clients().front()));
    bool threw = false;
    try {
      (void)co_await vfs.open("/missing", OpenFlags::readOnly());
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

// --- Lustre corners ----------------------------------------------------

TEST(LustreCorners, AppendCursorAndReaddirNested) {
  apps::LustreTestbed::Options opt;
  opt.oss_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::LustreTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::LustreTestbed& tb) -> Task<void> {
    lustre::LustreVfs vfs(tb.lustre(), tb.clients().front());
    co_await vfs.mkdirs("/a/b");
    posix::Fd fd = co_await vfs.open("/a/b/log", OpenFlags::appendCreate());
    co_await vfs.write(fd, Payload::fromString("one"));
    co_await vfs.close(fd);
    posix::Fd fd2 = co_await vfs.open("/a/b/log", OpenFlags::appendCreate());
    EXPECT_EQ(vfs.tell(fd2), 3u);
    co_await vfs.write(fd2, Payload::fromString("two"));
    co_await vfs.close(fd2);
    auto st = co_await vfs.stat("/a/b/log");
    EXPECT_EQ(st.size, 6u);
    // (assign before comparing: GCC 12 miscompiles brace-init temporaries
    // inside co_await full expressions)
    auto names_a = co_await vfs.readdir("/a");
    EXPECT_EQ(names_a, (std::vector<std::string>{"b"}));
    auto names_ab = co_await vfs.readdir("/a/b");
    EXPECT_EQ(names_ab, (std::vector<std::string>{"log"}));
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

// --- HDF5 corners -----------------------------------------------------

Task<void> bigIndexBody(apps::DaosTestbed& tb) {
  posix::DfsVfs vfs(tb.dfsMount());
  auto file =
      co_await hdf5::H5PosixFile::create(tb.sim(), vfs, "/big-index.h5");
  // Many datasets: the persisted index spans several KiB.
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t size = i == 0 ? 0 : 64;
    auto d = co_await file->createDataset(
        "dataset_with_a_long_name_" + std::to_string(i), size);
    if (i > 0) co_await file->writeDataset(d, Payload::synthetic(64));
  }
  co_await file->close();

  auto reopened =
      co_await hdf5::H5PosixFile::open(tb.sim(), vfs, "/big-index.h5");
  auto d0 = co_await reopened->openDataset("dataset_with_a_long_name_0");
  EXPECT_EQ(d0.size, 0u);
  auto d199 = co_await reopened->openDataset("dataset_with_a_long_name_199");
  EXPECT_EQ(d199.size, 64u);
  co_await reopened->close();
}

TEST(Hdf5Corners, ZeroByteDatasetAndLargeIndex) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn(bigIndexBody(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

// --- apps corners ------------------------------------------------------

TEST(AppsCorners, PhaseResultEmptyIsZero) {
  apps::PhaseResult p;
  EXPECT_EQ(p.span(), 0u);
  EXPECT_DOUBLE_EQ(p.gibps(), 0.0);
  EXPECT_DOUBLE_EQ(p.iops(), 0.0);
}

TEST(AppsCorners, EnvOverridesParse) {
  setenv("DAOSIM_OPS", "123", 1);
  setenv("DAOSIM_REPS", "7", 1);
  EXPECT_EQ(apps::envOps(), 123u);
  EXPECT_EQ(apps::envReps(), 7);
  unsetenv("DAOSIM_OPS");
  unsetenv("DAOSIM_REPS");
  EXPECT_EQ(apps::envOps(55), 55u);
  EXPECT_EQ(apps::envReps(3), 3);
}

TEST(AppsCorners, PrintSeriesFormatsRows) {
  apps::Series s;
  s.name = "demo";
  apps::Measurement m;
  m.point = {4, 8};
  apps::RunResult r;
  r.phase[apps::kWrite].bytes = 1ULL << 30;
  r.phase[apps::kWrite].ops = 1024;
  r.phase[apps::kWrite].first_start = 0;
  r.phase[apps::kWrite].last_end = sim::kSecond;
  m.add(r);
  s.points.push_back(m);
  std::ostringstream os;
  apps::printSeries(os, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);  // 1 GiB in 1 s
  EXPECT_NE(out.find("32"), std::string::npos);    // 4 x 8 procs
}

TEST(AppsCorners, UtilizationReportMentionsEveryResource) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  apps::DaosTestbed tb(opt);
  std::ostringstream os;
  apps::reportUtilization(os, tb, sim::kSecond);
  const std::string out = os.str();
  EXPECT_NE(out.find("NVMe device"), std::string::npos);
  EXPECT_NE(out.find("pool-service leader"), std::string::npos);
  EXPECT_NE(out.find("client NIC tx"), std::string::npos);
}


// --- second batch: transport, grids, namespaces, stores -------------------

TEST(ClusterCorners, HeaderBytesChargedPerMessage) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto a = cluster.addNode(hw::NodeSpec::client());
  auto b = cluster.addNode(hw::NodeSpec::client());
  sim.spawn([](hw::Cluster& c, hw::NodeId a, hw::NodeId b) -> Task<void> {
    co_await c.send(a, b, 1000);
    co_await c.send(a, b, 0);  // pure header
  }(cluster, a, b));
  sim.run();
  EXPECT_EQ(cluster.messages(), 2u);
  EXPECT_EQ(cluster.bytesSent(), 1000u);  // payload accounting excl. header
  // Both messages serialized their wire size (payload + 512B header).
  EXPECT_GT(cluster.node(a).tx().busyTime(), 0u);
}

TEST(SweepCorners, ClientNodeGridIncludesNonPowerOfTwoMax) {
  auto grid = apps::clientNodeGrid(24, 4);
  ASSERT_GE(grid.size(), 2u);
  EXPECT_EQ(grid.back().client_nodes, 24);  // appended explicitly
  EXPECT_EQ(grid[grid.size() - 2].client_nodes, 16);
}

TEST(DfsCorners, RenameAcrossDirectoriesKeepsData) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::DaosTestbed& tb) -> Task<void> {
    dfs::FileSystem fs = tb.dfsMount();
    co_await fs.mkdirs("/src/deep");
    co_await fs.mkdirs("/dst");
    dfs::File f = co_await fs.open("/src/deep/file", {.create = true});
    co_await fs.write(f, 0, Payload::fromString("payload"));
    co_await fs.rename("/src/deep/file", "/dst/moved");

    auto gone = co_await fs.lookup("/src/deep/file");
    EXPECT_FALSE(gone.has_value());
    dfs::File g = co_await fs.open("/dst/moved", {});
    Payload back = co_await fs.read(g, 0, 7);
    EXPECT_EQ(back.toString(), "payload");
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

TEST(KvCorners, ListMergesManyKeysAcrossAllGroups) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::DaosTestbed& tb) -> Task<void> {
    Client c(tb.daos(), tb.clients().front(), 77);
    Container cont = co_await c.contOpen("bench");
    KeyValue kv(c, cont, c.nextOid(ObjClass::SX));  // 32 groups
    for (int i = 0; i < 200; ++i) {
      co_await kv.put("key" + std::to_string(i), Payload::fromString("v"));
    }
    auto keys = co_await kv.list();
    EXPECT_EQ(keys.size(), 200u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

TEST(LustreCorners2, TruncateThenReadSeesHole) {
  apps::LustreTestbed::Options opt;
  opt.oss_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::LustreTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::LustreTestbed& tb) -> Task<void> {
    lustre::LustreVfs vfs(tb.lustre(), tb.clients().front());
    posix::Fd fd = co_await vfs.open("/t", OpenFlags::writeCreate());
    co_await vfs.pwrite(fd, 0, vos::patternPayload(256 * kKiB, 1));
    co_await vfs.close(fd);
    co_await vfs.truncate("/t", 100 * kKiB);

    posix::Fd rd = co_await vfs.open("/t", OpenFlags::readOnly());
    Payload head = co_await vfs.pread(rd, 0, 100 * kKiB);
    EXPECT_EQ(head, vos::patternPayload(256 * kKiB, 1).slice(0, 100 * kKiB));
    Payload beyond = co_await vfs.pread(rd, 100 * kKiB, 16);
    bool zero = true;
    for (auto b : beyond.bytes()) {
      if (b != std::byte{0}) zero = false;
    }
    EXPECT_TRUE(zero);
    co_await vfs.close(rd);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

TEST(RadosCorners, RemoveFreesSpaceAndStatSeesPartialWrites) {
  apps::CephTestbed::Options opt;
  opt.osd_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::CephTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::CephTestbed& tb) -> Task<void> {
    rados::RadosClient c(tb.ceph(), tb.clients().front());
    co_await c.connect();
    co_await c.write("obj", 1 * kMiB, Payload::synthetic(64 * kKiB));
    // stat reports one past the last byte, even with a leading hole.
    EXPECT_EQ(co_await c.stat("obj"), 1 * kMiB + 64 * kKiB);
    EXPECT_EQ(tb.ceph().bytesStored(), 64 * kKiB);
    co_await c.remove("obj");
    EXPECT_EQ(tb.ceph().bytesStored(), 0u);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

Task<void> h5DaosOverwriteBody(apps::DaosTestbed& tb) {
  Client c(tb.daos(), tb.clients().front(), 88);
  auto file = co_await hdf5::H5DaosFile::create(c, "overwrite.h5");
  auto d1 = co_await file->createDataset("d", 32 * kKiB);
  co_await file->writeDataset(d1, vos::patternPayload(32 * kKiB, 1));
  // Re-creating the same dataset name points the catalog at a new object.
  auto d2 = co_await file->createDataset("d", 16 * kKiB);
  co_await file->writeDataset(d2, vos::patternPayload(16 * kKiB, 2));
  auto opened = co_await file->openDataset("d");
  EXPECT_EQ(opened.size, 16 * kKiB);
  Payload back = co_await file->readDataset(opened);
  EXPECT_EQ(back, vos::patternPayload(16 * kKiB, 2));
  co_await file->close();
}

TEST(Hdf5Corners, DaosVolDatasetOverwriteTakesLatest) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn(h5DaosOverwriteBody(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

}  // namespace
}  // namespace daosim
