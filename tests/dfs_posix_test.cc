// Tests for libdfs (namespace semantics, file I/O, symlinks) and the POSIX
// access paths (direct DFS, DFUSE, DFUSE + interception library), including
// the relative-cost relations the paper's Fig. 1-2 rest on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "daos/client.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hw/cluster.h"
#include "posix/dfuse.h"
#include "posix/vfs.h"
#include "sim/simulation.h"

namespace daosim {
namespace {

using daos::Client;
using daos::Container;
using daos::DaosSystem;
using posix::DfsVfs;
using posix::DfuseConfig;
using posix::DfuseDaemon;
using posix::DfuseVfs;
using posix::InterceptVfs;
using posix::OpenFlags;
using sim::Task;
using sim::Time;
using vos::Payload;
using namespace sim::literals;
using hw::kKiB;
using hw::kMiB;

TEST(SplitPath, Basics) {
  EXPECT_EQ(dfs::splitPath("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(dfs::splitPath("a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(dfs::splitPath("/").empty());
  EXPECT_TRUE(dfs::splitPath("").empty());
}

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 2);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, 1);
  }

  /// Runs body(FileSystem&) as a simulated process with a mounted DFS.
  template <typename Body>
  void runMounted(Body body) {
    auto h = sim_.spawn([](Client& c, Body body) -> Task<void> {
      co_await c.poolConnect();
      Container cont = co_await c.contCreate("posix");
      dfs::FileSystem fs = co_await dfs::FileSystem::mount(c, cont);
      co_await body(c, fs);
    }(*client_, std::move(body)));
    sim_.run();
    if (h.failed()) {
      sim_.spawn([](sim::ProcHandle h) -> Task<void> { co_await h.join(); }(h));
      EXPECT_NO_THROW(sim_.run());
      FAIL() << "simulated process failed";
    }
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_F(DfsTest, MkdirLookupReaddir) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    co_await fs.mkdir("/data");
    co_await fs.mkdir("/data/run1");
    co_await fs.mkdirs("/data/deep/nested/dirs");

    auto e = co_await fs.lookup("/data/run1");
    EXPECT_TRUE(e.has_value());
    EXPECT_TRUE(e.has_value() && e->type == dfs::EntryType::kDirectory);

    auto names = co_await fs.readdir("/data");
    EXPECT_EQ(names, (std::vector<std::string>{"deep", "run1"}));

    auto missing = co_await fs.lookup("/data/nope");
    EXPECT_FALSE(missing.has_value());

    bool threw = false;
    try {
      co_await fs.mkdir("/data");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

TEST_F(DfsTest, FileWriteReadRoundTrip) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    co_await fs.mkdir("/d");
    dfs::File f = co_await fs.open("/d/file.bin", {.create = true});
    Payload data = vos::patternPayload(3 * kMiB + 12345, 7);  // spans chunks
    co_await fs.write(f, 0, data);
    EXPECT_EQ(co_await fs.size(f), 3 * kMiB + 12345);

    dfs::File g = co_await fs.open("/d/file.bin", {});
    Payload back = co_await fs.read(g, 0, 3 * kMiB + 12345);
    EXPECT_EQ(back, data);

    auto st = co_await fs.stat("/d/file.bin");
    EXPECT_EQ(st.size, 3 * kMiB + 12345);
    EXPECT_TRUE(st.type == dfs::EntryType::kFile);
  });
}

TEST_F(DfsTest, OpenSemantics) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    bool threw = false;
    try {
      co_await fs.open("/missing", {});
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);

    dfs::File f = co_await fs.open("/x", {.create = true});
    co_await fs.write(f, 0, Payload::fromString("hello"));

    threw = false;
    try {
      co_await fs.open("/x", {.create = true, .exclusive = true});
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);

    // O_TRUNC empties the file.
    dfs::File t = co_await fs.open("/x", {.create = true, .truncate = true});
    EXPECT_EQ(co_await fs.size(t), 0u);
  });
}

TEST_F(DfsTest, SymlinksResolveAndLoopIsDetected) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    co_await fs.mkdir("/real");
    dfs::File f = co_await fs.open("/real/target", {.create = true});
    co_await fs.write(f, 0, Payload::fromString("via-link"));

    co_await fs.symlink("/real", "/alias");
    Payload via = co_await fs.read(
        *std::make_unique<dfs::File>(
            co_await fs.open("/alias/target", {})),
        0, 8);
    EXPECT_EQ(via.toString(), "via-link");

    EXPECT_EQ(co_await fs.readlink("/alias"), "/real");

    // Symlink loop must throw, not hang.
    co_await fs.symlink("/loop2", "/loop1");
    co_await fs.symlink("/loop1", "/loop2");
    bool threw = false;
    try {
      co_await fs.lookup("/loop1/x");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

TEST_F(DfsTest, UnlinkAndRename) {
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    co_await fs.mkdir("/dir");
    dfs::File f = co_await fs.open("/dir/a", {.create = true});
    co_await fs.write(f, 0, vos::patternPayload(64 * kKiB, 1));

    bool threw = false;
    try {
      co_await fs.unlink("/dir");  // not empty
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);

    co_await fs.rename("/dir/a", "/dir/b");
    EXPECT_FALSE((co_await fs.lookup("/dir/a")).has_value());
    auto st = co_await fs.stat("/dir/b");
    EXPECT_EQ(st.size, 64 * kKiB);

    co_await fs.unlink("/dir/b");
    EXPECT_FALSE((co_await fs.lookup("/dir/b")).has_value());
    co_await fs.unlink("/dir");  // now empty
    EXPECT_FALSE((co_await fs.lookup("/dir")).has_value());
    EXPECT_EQ(c.system().bytesStored(), 12u);  // superblock config record
  });
}

TEST_F(DfsTest, RemountSeesPersistedNamespace) {
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    co_await fs.mkdir("/persist");
    dfs::File f = co_await fs.open("/persist/file", {.create = true});
    co_await fs.write(f, 0, Payload::fromString("durable"));

    Container cont2 = co_await c.contOpen("posix");
    dfs::FileSystem fs2 = co_await dfs::FileSystem::mount(c, cont2);
    dfs::File g = co_await fs2.open("/persist/file", {});
    EXPECT_EQ((co_await fs2.read(g, 0, 7)).toString(), "durable");
  });
}

// --- POSIX access paths ---------------------------------------------------

class PosixPathsTest : public DfsTest {};

TEST_F(PosixPathsTest, DfsVfsBasicIo) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    DfsVfs vfs(fs);
    posix::Fd fd = co_await vfs.open("/f", OpenFlags::writeCreate());
    co_await vfs.write(fd, vos::patternPayload(1000, 1));
    co_await vfs.write(fd, vos::patternPayload(1000, 2));
    EXPECT_EQ(vfs.tell(fd), 2000u);
    co_await vfs.close(fd);

    posix::Fd rd = co_await vfs.open("/f", OpenFlags::readOnly());
    Payload a = co_await vfs.read(rd, 1000);
    Payload b = co_await vfs.read(rd, 1000);
    EXPECT_EQ(a, vos::patternPayload(1000, 1));
    EXPECT_EQ(b, vos::patternPayload(1000, 2));
    auto st = co_await vfs.fstat(rd);
    EXPECT_EQ(st.size, 2000u);
    co_await vfs.close(rd);
  });
}

TEST_F(PosixPathsTest, AppendModePositionsAtEof) {
  runMounted([](Client&, dfs::FileSystem& fs) -> Task<void> {
    DfsVfs vfs(fs);
    posix::Fd fd = co_await vfs.open("/log", OpenFlags::writeCreate());
    co_await vfs.write(fd, Payload::fromString("first"));
    co_await vfs.close(fd);

    posix::Fd ap = co_await vfs.open("/log", OpenFlags::appendCreate());
    EXPECT_EQ(vfs.tell(ap), 5u);
    co_await vfs.write(ap, Payload::fromString("second"));
    co_await vfs.close(ap);

    auto st = co_await vfs.stat("/log");
    EXPECT_EQ(st.size, 11u);
  });
}

TEST_F(PosixPathsTest, DfuseRoundTripAndCostOrdering) {
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    DfuseDaemon daemon(c.sim(), fs, DfuseConfig{});
    DfuseVfs dfuse(daemon);
    DfsVfs direct(fs);

    // Round-trip through FUSE.
    posix::Fd fd = co_await dfuse.open("/via-fuse", OpenFlags::writeCreate());
    co_await dfuse.pwrite(fd, 0, vos::patternPayload(64 * kKiB, 3));
    Payload back = co_await dfuse.pread(fd, 0, 64 * kKiB);
    EXPECT_EQ(back, vos::patternPayload(64 * kKiB, 3));
    co_await dfuse.close(fd);

    // 1 KiB ops: FUSE path must be measurably slower than direct libdfs.
    posix::Fd d1 = co_await direct.open("/d1", OpenFlags::writeCreate());
    Time t0 = c.sim().now();
    for (int i = 0; i < 50; ++i) {
      co_await direct.pwrite(d1, static_cast<std::uint64_t>(i) * kKiB,
                             Payload::synthetic(kKiB));
    }
    const Time direct_span = c.sim().now() - t0;

    posix::Fd f1 = co_await dfuse.open("/f1", OpenFlags::writeCreate());
    t0 = c.sim().now();
    for (int i = 0; i < 50; ++i) {
      co_await dfuse.pwrite(f1, static_cast<std::uint64_t>(i) * kKiB,
                            Payload::synthetic(kKiB));
    }
    const Time fuse_span = c.sim().now() - t0;
    EXPECT_GT(fuse_span, direct_span + 50 * 50 * sim::kMicrosecond);
  });
}

TEST_F(PosixPathsTest, InterceptionBypassesDaemonForData) {
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    DfuseDaemon daemon(c.sim(), fs, DfuseConfig{});
    InterceptVfs il(daemon, fs);
    DfuseVfs plain(daemon);

    posix::Fd a = co_await il.open("/ila", OpenFlags::writeCreate());
    posix::Fd b = co_await plain.open("/plainb", OpenFlags::writeCreate());

    const std::uint64_t before = daemon.threads().ops();
    Time t0 = c.sim().now();
    for (int i = 0; i < 20; ++i) {
      co_await il.pwrite(a, static_cast<std::uint64_t>(i) * kKiB,
                         Payload::synthetic(kKiB));
    }
    const Time il_span = c.sim().now() - t0;
    // Data ops never touched the daemon.
    EXPECT_EQ(daemon.threads().ops(), before);

    t0 = c.sim().now();
    for (int i = 0; i < 20; ++i) {
      co_await plain.pwrite(b, static_cast<std::uint64_t>(i) * kKiB,
                            Payload::synthetic(kKiB));
    }
    const Time fuse_span = c.sim().now() - t0;
    EXPECT_GT(fuse_span, il_span);

    // Reads through IL return the data written through IL.
    Payload p = co_await il.pread(a, 0, kKiB);
    EXPECT_EQ(p.size(), kKiB);

    // ... and the namespaces agree (same backing DFS).
    auto st = co_await plain.stat("/ila");
    EXPECT_EQ(st.size, 20 * kKiB);
  });
}

TEST_F(PosixPathsTest, DfuseCachesServeRepeatAccesses) {
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    DfuseConfig cached;
    cached.attr_cache = true;
    cached.dentry_cache = true;
    cached.data_cache = true;
    DfuseDaemon daemon(c.sim(), fs, cached);
    DfuseVfs vfs(daemon);

    posix::Fd fd = co_await vfs.open("/cached", OpenFlags::writeCreate());
    co_await vfs.pwrite(fd, 0, vos::patternPayload(64 * kKiB, 9));

    // First stat populates, second hits the attr cache (much cheaper).
    (void)co_await vfs.stat("/cached");
    Time t0 = c.sim().now();
    (void)co_await vfs.stat("/cached");
    EXPECT_LT(c.sim().now() - t0, 10_us);

    // Repeat read of the same block: page-cache hit, no backend RPC.
    (void)co_await vfs.pread(fd, 0, 64 * kKiB);
    const std::uint64_t msgs_before = c.system().cluster().messages();
    Payload hit = co_await vfs.pread(fd, 0, 64 * kKiB);
    EXPECT_EQ(c.system().cluster().messages(), msgs_before);
    EXPECT_EQ(hit, vos::patternPayload(64 * kKiB, 9));
    EXPECT_GT(daemon.cacheHits(), 0u);

    // Writes invalidate: after truncate, stat misses the cache again.
    co_await vfs.truncate("/cached", 0);
    auto st = co_await vfs.stat("/cached");
    EXPECT_EQ(st.size, 0u);
  });
}

TEST_F(PosixPathsTest, LargeIoOverheadIsSmallThroughDfuse) {
  // The Fig. 1 observation: at 1 MiB I/O the interception library brings
  // little benefit because FUSE overhead is amortized by transfer time.
  runMounted([](Client& c, dfs::FileSystem& fs) -> Task<void> {
    DfuseDaemon daemon(c.sim(), fs, DfuseConfig{});
    DfuseVfs dfuse(daemon);
    InterceptVfs il(daemon, fs);

    posix::Fd a = co_await dfuse.open("/big1", OpenFlags::writeCreate());
    Time t0 = c.sim().now();
    for (int i = 0; i < 8; ++i) {
      co_await dfuse.pwrite(a, static_cast<std::uint64_t>(i) * kMiB,
                            Payload::synthetic(kMiB));
    }
    const double fuse_span = static_cast<double>(c.sim().now() - t0);

    posix::Fd b = co_await il.open("/big2", OpenFlags::writeCreate());
    t0 = c.sim().now();
    for (int i = 0; i < 8; ++i) {
      co_await il.pwrite(b, static_cast<std::uint64_t>(i) * kMiB,
                         Payload::synthetic(kMiB));
    }
    const double il_span = static_cast<double>(c.sim().now() - t0);
    // Unloaded latency view: FUSE adds crossings + a data copy, ~25-30% on
    // an unloaded 1 MiB op. At saturation (Fig. 1) the server is the
    // bottleneck and the two APIs converge — the fig1 bench verifies that.
    EXPECT_LT(fuse_span / il_span, 1.4);
    EXPECT_GT(fuse_span, il_span);  // but strictly slower
  });
}

}  // namespace
}  // namespace daosim
