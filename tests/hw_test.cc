// Tests for the hardware substrate: device bandwidth/latency math, NIC
// contention, fabric transfers and the RPC model. Includes calibration
// checks against the paper's §III-A raw measurements.
#include <gtest/gtest.h>

#include <vector>

#include "hw/cluster.h"
#include "hw/device.h"
#include "hw/spec.h"
#include "net/rpc.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace daosim {
namespace {

using hw::kGiB;
using hw::kKiB;
using hw::kMiB;
using sim::Task;
using sim::Time;
using namespace sim::literals;

TEST(Spec, TransferTimeMath) {
  // 1 GiB at 1 GiB/s = 1 s.
  EXPECT_EQ(hw::transferTime(kGiB, 1.0), sim::kSecond);
  // 1 MiB at 6.25 GiB/s = 156.25 us.
  EXPECT_NEAR(static_cast<double>(hw::transferTime(kMiB, 6.25)), 156250, 50);
  EXPECT_EQ(hw::transferTime(123, 0.0), 0u);
}

TEST(NvmeDevice, SequentialWriteBandwidthMatchesSpec) {
  sim::Simulation sim;
  hw::NvmeSpec spec;
  hw::NvmeDevice dev(sim, spec, "d0");
  const int ops = 100;
  const std::uint64_t block = 100 * kMiB;  // the paper's dd block size
  sim.spawn([](hw::NvmeDevice& d, int n, std::uint64_t b) -> Task<void> {
    for (int i = 0; i < n; ++i) co_await d.write(b);
  }(dev, ops, block));
  sim.run();
  const double gibps = static_cast<double>(ops * block) /
                       static_cast<double>(kGiB) / sim::toSeconds(sim.now());
  // Large blocks: latency overhead is negligible, bandwidth ~= spec.
  EXPECT_NEAR(gibps, spec.write_gibps, 0.01 * spec.write_gibps);
}

TEST(NvmeDevice, SixteenDrivesAggregateToPaperNumbers) {
  // Reproduces the §III-A dd experiment: 16 drives in parallel, write then
  // read; expect ~3.86 GiB/s aggregate write and ~7 GiB/s aggregate read.
  sim::Simulation sim;
  std::vector<std::unique_ptr<hw::NvmeDevice>> drives;
  for (int i = 0; i < 16; ++i) {
    drives.push_back(std::make_unique<hw::NvmeDevice>(
        sim, hw::NvmeSpec{}, "d" + std::to_string(i)));
  }
  const std::uint64_t block = 100 * kMiB;
  const int blocks = 50;
  for (auto& d : drives) {
    sim.spawn([](hw::NvmeDevice& dev, int n, std::uint64_t b) -> Task<void> {
      for (int i = 0; i < n; ++i) co_await dev.write(b);
    }(*d, blocks, block));
  }
  sim.run();
  const Time write_span = sim.now();
  double agg_write = 16.0 * blocks * static_cast<double>(block) /
                     static_cast<double>(kGiB) / sim::toSeconds(write_span);
  EXPECT_NEAR(agg_write, 3.86, 0.05);

  const Time read_start = sim.now();
  for (auto& d : drives) {
    sim.spawn([](hw::NvmeDevice& dev, int n, std::uint64_t b) -> Task<void> {
      for (int i = 0; i < n; ++i) co_await dev.read(b);
    }(*d, blocks, block));
  }
  sim.run();
  double agg_read = 16.0 * blocks * static_cast<double>(block) /
                    static_cast<double>(kGiB) /
                    sim::toSeconds(sim.now() - read_start);
  EXPECT_NEAR(agg_read, 7.0, 0.1);
}

TEST(NvmeDevice, SmallOpsAreLatencyBound) {
  sim::Simulation sim;
  hw::NvmeDevice dev(sim, hw::NvmeSpec{}, "d0");
  const int ops = 1000;
  sim.spawn([](hw::NvmeDevice& d, int n) -> Task<void> {
    for (int i = 0; i < n; ++i) co_await d.read(4 * kKiB);
  }(dev, ops));
  sim.run();
  const double iops = ops / sim::toSeconds(sim.now());
  // Read latency 15us + ~9us transfer -> ~41k IOPS.
  EXPECT_GT(iops, 30e3);
  EXPECT_LT(iops, 70e3);
}

TEST(NvmeDevice, FailureInjection) {
  sim::Simulation sim;
  hw::NvmeDevice dev(sim, hw::NvmeSpec{}, "d0");
  dev.fail();
  bool threw = false;
  sim.spawn([](hw::NvmeDevice& d, bool& t) -> Task<void> {
    try {
      co_await d.write(kMiB);
    } catch (const hw::DeviceFailed&) {
      t = true;
    }
  }(dev, threw));
  sim.run();
  EXPECT_TRUE(threw);
  dev.recover();
  EXPECT_FALSE(dev.failed());
}

// Fail-at-dequeue semantics (documented on NvmeDevice::fail): at the exact
// fail timestamp the outcome follows the kernel's FIFO (time, seq) order,
// i.e. spawn order. A 0-byte read completes at exactly read_latency (15us
// with the default spec), so scheduling fail() at that same instant probes
// the boundary deterministically.
TEST(NvmeDevice, FailAtExactCompletionTimestampFollowsSpawnOrder) {
  const hw::NvmeSpec spec;
  const Time completion = spec.read_latency;  // 0-byte read: latency only

  auto reader = [](hw::NvmeDevice& d, bool& threw) -> Task<void> {
    try {
      co_await d.read(0);
    } catch (const hw::DeviceFailed&) {
      threw = true;
    }
  };
  auto failer = [](sim::Simulation& sm, hw::NvmeDevice& d,
                   Time at) -> Task<void> {
    co_await sm.delay(at);
    d.fail();
  };

  {
    // Reader spawned first: its completion event dequeues before the fail
    // event with the same timestamp -> the op succeeds.
    sim::Simulation sim;
    hw::NvmeDevice dev(sim, spec, "d0");
    bool threw = false;
    sim.spawn(reader(dev, threw));
    sim.spawn(failer(sim, dev, completion));
    sim.run();
    EXPECT_EQ(sim.now(), completion);
    EXPECT_FALSE(threw);
  }
  {
    // Failer spawned first: fail() runs before the queued op's completion
    // dequeues at the same timestamp -> the op observes the failure.
    sim::Simulation sim;
    hw::NvmeDevice dev(sim, spec, "d0");
    bool threw = false;
    sim.spawn(failer(sim, dev, completion));
    sim.spawn(reader(dev, threw));
    sim.run();
    EXPECT_EQ(sim.now(), completion);
    EXPECT_TRUE(threw);
  }
}

TEST(NvmeDevice, SlowdownScalesServiceAndLatency) {
  {
    // Baseline: a 0-byte read completes at exactly read_latency.
    sim::Simulation sim;
    hw::NvmeDevice dev(sim, hw::NvmeSpec{}, "d0");
    sim.spawn([](hw::NvmeDevice& d) -> Task<void> { co_await d.read(0); }(dev));
    sim.run();
    EXPECT_EQ(sim.now(), hw::NvmeSpec{}.read_latency);
  }
  {
    sim::Simulation sim;
    hw::NvmeDevice dev(sim, hw::NvmeSpec{}, "d0");
    dev.setSlowdown(2.0);
    sim.spawn([](hw::NvmeDevice& d) -> Task<void> { co_await d.read(0); }(dev));
    sim.run();
    EXPECT_EQ(sim.now(), 2 * hw::NvmeSpec{}.read_latency);
  }
  {
    // x1 restores full speed; sub-1 factors clamp to 1.
    sim::Simulation sim;
    hw::NvmeDevice dev(sim, hw::NvmeSpec{}, "d0");
    dev.setSlowdown(8.0);
    dev.setSlowdown(1.0);
    EXPECT_EQ(dev.slowdown(), 1.0);
    dev.setSlowdown(0.25);
    EXPECT_EQ(dev.slowdown(), 1.0);
    sim.spawn([](hw::NvmeDevice& d) -> Task<void> { co_await d.read(0); }(dev));
    sim.run();
    EXPECT_EQ(sim.now(), hw::NvmeSpec{}.read_latency);
  }
}

TEST(Cluster, LinkDownFailsSendsAfterOneFabricLatency) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto a = cluster.addNode(hw::NodeSpec::client());
  auto b = cluster.addNode(hw::NodeSpec::client());
  cluster.setLinkDown(b, true);
  bool threw = false;
  sim.spawn([](hw::Cluster& c, hw::NodeId s, hw::NodeId d,
               bool& t) -> Task<void> {
    try {
      co_await c.send(s, d, kMiB);
    } catch (const hw::NetworkDown&) {
      t = true;
    }
  }(cluster, a, b, threw));
  sim.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(sim.now(), cluster.fabric().latency);
  EXPECT_EQ(cluster.sendFailures(), 1u);
  EXPECT_EQ(cluster.messages(), 0u);

  // Loopback never traverses the NIC, downed or not.
  cluster.setLinkDown(a, true);
  bool loopback_ok = true;
  sim.spawn([](hw::Cluster& c, hw::NodeId n, bool& ok) -> Task<void> {
    try {
      co_await c.send(n, n, kMiB);
    } catch (const hw::NetworkDown&) {
      ok = false;
    }
  }(cluster, a, loopback_ok));
  sim.run();
  EXPECT_TRUE(loopback_ok);

  cluster.setLinkDown(a, false);
  cluster.setLinkDown(b, false);
  EXPECT_FALSE(cluster.linkDown(a));
  EXPECT_FALSE(cluster.linkDown(b));
}

TEST(Cluster, PointToPointBandwidthMatchesNic) {
  // iperf-style: one stream of large messages; expect ~6.25 GiB/s.
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto a = cluster.addNode(hw::NodeSpec::client());
  auto b = cluster.addNode(hw::NodeSpec::client());
  const int msgs = 200;
  const std::uint64_t sz = 8 * kMiB;
  sim.spawn([](hw::Cluster& c, hw::NodeId s, hw::NodeId d, int n,
               std::uint64_t sz) -> Task<void> {
    for (int i = 0; i < n; ++i) co_await c.send(s, d, sz);
  }(cluster, a, b, msgs, sz));
  sim.run();
  const double gibps = static_cast<double>(msgs * sz) /
                       static_cast<double>(kGiB) / sim::toSeconds(sim.now());
  EXPECT_NEAR(gibps, 6.25, 0.15);
}

TEST(Cluster, ManyToOneSaturatesReceiverNic) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  std::vector<hw::NodeId> sources;
  for (int i = 0; i < 4; ++i) sources.push_back(cluster.addNode(hw::NodeSpec::client()));
  auto sink = cluster.addNode(hw::NodeSpec::client());
  const int msgs = 50;
  const std::uint64_t sz = 8 * kMiB;
  for (auto s : sources) {
    sim.spawn([](hw::Cluster& c, hw::NodeId src, hw::NodeId dst, int n,
                 std::uint64_t sz) -> Task<void> {
      for (int i = 0; i < n; ++i) co_await c.send(src, dst, sz);
    }(cluster, s, sink, msgs, sz));
  }
  sim.run();
  const double gibps = 4.0 * msgs * static_cast<double>(sz) /
                       static_cast<double>(kGiB) / sim::toSeconds(sim.now());
  // Aggregate is pinned at the single receiver NIC despite 4 senders.
  EXPECT_NEAR(gibps, 6.25, 0.2);
}

TEST(Cluster, LoopbackSkipsNic) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto a = cluster.addNode(hw::NodeSpec::client());
  sim.spawn([](hw::Cluster& c, hw::NodeId n) -> Task<void> {
    co_await c.send(n, n, kGiB);
  }(cluster, a));
  sim.run();
  EXPECT_LT(sim.now(), 10_us);
  EXPECT_EQ(cluster.node(a).tx().ops(), 0u);
}

TEST(Rpc, RoundTripLatency) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto c = cluster.addNode(hw::NodeSpec::client());
  auto s = cluster.addNode(hw::NodeSpec::server());
  sim.spawn([](sim::Simulation& sm, hw::Cluster& cl, hw::NodeId c,
               hw::NodeId s) -> Task<void> {
    co_await net::request(cl, c, s, net::kSmallRequest);
    co_await sm.delay(5_us);  // server-side service
    co_await net::respond(cl, s, c, 0);
  }(sim, cluster, c, s));
  sim.run();
  // 2 fabric hops (8us each) + 2 small serializations + 5us service + NIC
  // per-message costs: ~30us total.
  EXPECT_GT(sim.now(), 20_us);
  EXPECT_LT(sim.now(), 45_us);
}

TEST(Rpc, BulkResponseChargedOnReturnPath) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto c = cluster.addNode(hw::NodeSpec::client());
  auto s = cluster.addNode(hw::NodeSpec::server());
  sim.spawn([](hw::Cluster& cl, hw::NodeId c, hw::NodeId s) -> Task<void> {
    co_await net::request(cl, c, s, net::kSmallRequest);
    co_await net::respond(cl, s, c, 64 * kMiB);
  }(cluster, c, s));
  sim.run();
  // 64 MiB at 6.25 GiB/s = ~10ms dominates.
  EXPECT_GT(sim.now(), 10_ms);
  EXPECT_LT(sim.now(), 25_ms);
}

}  // namespace
}  // namespace daosim
