// Tests for pool-map exclusion and rebuild: placement stability under
// exclusion, replica re-protection, erasure-code reconstruction onto
// spares, loss accounting for unprotected data, and post-rebuild access
// through the normal (non-degraded) path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/rebuild.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "placement/layout.h"
#include "sim/simulation.h"

namespace daosim {
namespace {

using daos::Array;
using daos::Client;
using daos::Container;
using daos::DaosSystem;
using daos::KeyValue;
using placement::computeLayout;
using placement::makeOid;
using placement::ObjClass;
using sim::Task;
using vos::Payload;
using hw::kMiB;

// --- placement stability under exclusion ---------------------------------

TEST(ExclusionPlacement, SurvivingSlotsNeverMove) {
  const int T = 64;
  std::vector<std::uint8_t> all(T, 1);
  for (std::uint64_t id = 0; id < 300; ++id) {
    for (ObjClass oc : {ObjClass::SX, ObjClass::RP_2GX, ObjClass::EC_2P1GX}) {
      auto oid = makeOid(oc, id);
      auto healthy = computeLayout(oid, T, &all);
      // Exclude one target that appears in the layout.
      const int victim = healthy.targets.front();
      std::vector<std::uint8_t> degraded = all;
      degraded[static_cast<std::size_t>(victim)] = 0;
      auto after = computeLayout(oid, T, &degraded);
      ASSERT_EQ(after.groups, healthy.groups);
      ASSERT_EQ(after.targets.size(), healthy.targets.size());
      for (std::size_t j = 0; j < healthy.targets.size(); ++j) {
        if (healthy.targets[j] == victim) {
          EXPECT_NE(after.targets[j], victim);
        } else {
          EXPECT_EQ(after.targets[j], healthy.targets[j])
              << "surviving slot moved (oid " << id << ")";
        }
      }
    }
  }
}

TEST(ExclusionPlacement, SparesKeepGroupMembersDistinct) {
  const int T = 24;
  std::vector<std::uint8_t> alive(T, 1);
  alive[3] = alive[7] = alive[11] = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    auto layout = computeLayout(makeOid(ObjClass::EC_2P1GX, id), T, &alive);
    for (int g = 0; g < layout.groups; ++g) {
      auto members = layout.groupTargets(g);
      std::set<int> s(members.begin(), members.end());
      ASSERT_EQ(s.size(), members.size());
      for (int t : members) EXPECT_TRUE(alive[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(ExclusionPlacement, ThrowsWhenTooFewTargetsAlive) {
  std::vector<std::uint8_t> alive = {1, 0, 0, 0};
  EXPECT_THROW(computeLayout(makeOid(ObjClass::RP_2G1, 1), 4, &alive),
               std::invalid_argument);
}

// --- full rebuild flows --------------------------------------------------

class RebuildTest : public ::testing::Test {
 protected:
  RebuildTest() : cluster_(sim_) {
    auto servers = cluster_.addNodes(hw::NodeSpec::server(), 4);
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
    system_ = std::make_unique<DaosSystem>(cluster_, servers);
    client_ = std::make_unique<Client>(*system_, client_node_, 1);
  }

  template <typename Body>
  void run(Body body) {
    auto h = sim_.spawn([](Client& c, Body body) -> Task<void> {
      co_await c.poolConnect();
      Container cont = co_await c.contCreate("rebuild");
      co_await body(c, cont);
    }(*client_, std::move(body)));
    sim_.run();
    if (h.failed()) std::rethrow_exception(h.error());
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  hw::NodeId client_node_{};
  std::unique_ptr<DaosSystem> system_;
  std::unique_ptr<Client> client_;
};

TEST_F(RebuildTest, ReplicatedArrayIsReprotectedOntoSpare) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::RP_2G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    Payload data = vos::patternPayload(2 * kMiB, 7);
    co_await a.write(0, data);

    // Kill replica 0: exclude it from the map AND fail its device.
    const int victim = a.layout().target(0, 0);
    c.system().failTarget(victim);
    c.system().excludeTarget(victim);

    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    EXPECT_GE(stats.slots_repaired, 1u);
    EXPECT_GE(stats.bytes_moved, 2 * kMiB);
    EXPECT_EQ(stats.objects_lost, 0u);

    // The NEW layout avoids the victim; reads go through the normal path
    // (both replicas healthy again) even though the device stays dead.
    Array reopened = co_await Array::open(c, cont, a.oid());
    for (int t : reopened.layout().targets) EXPECT_NE(t, victim);
    Payload back = co_await reopened.read(0, 2 * kMiB);
    EXPECT_EQ(back, data);

    // Redundancy is really back: fail the OTHER original replica too and
    // read again — only possible if the spare now holds a full copy.
    const int other = a.layout().target(0, 1);
    c.system().failTarget(other);
    Payload again = co_await reopened.read(0, 2 * kMiB);
    EXPECT_EQ(again, data);
  });
}

TEST_F(RebuildTest, ErasureCodedCellIsReconstructedOntoSpare) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::EC_2P1G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    Payload data = vos::patternPayload(3 * kMiB, 9);  // 3 full stripes
    co_await a.write(0, data);

    // Kill data cell 1 (not the metadata-carrying front target).
    const int victim = a.layout().target(0, 1);
    c.system().failTarget(victim);
    c.system().excludeTarget(victim);

    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    EXPECT_EQ(stats.slots_repaired, 1u);
    // One reconstructed cell per stripe + the replicated attrs record.
    EXPECT_EQ(stats.records_restored, 4u);
    EXPECT_EQ(stats.records_unrecoverable, 0u);

    // Normal-path read: every cell healthy under the new layout.
    Array reopened = co_await Array::open(c, cont, a.oid());
    Payload back = co_await reopened.read(0, 3 * kMiB);
    EXPECT_EQ(back, data);

    // The parity is intact too: fail the rebuilt spare's *sibling* data
    // cell and confirm degraded reads still reconstruct.
    c.system().failTarget(reopened.layout().target(0, 0));
    Payload degraded = co_await reopened.read(0, 3 * kMiB);
    EXPECT_EQ(degraded, data);
  });
}

TEST_F(RebuildTest, ParityCellIsRecomputedOntoSpare) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::EC_2P1G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    Payload data = vos::patternPayload(2 * kMiB, 13);
    co_await a.write(0, data);

    const int victim = a.layout().target(0, 2);  // the parity cell
    c.system().failTarget(victim);
    c.system().excludeTarget(victim);
    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    EXPECT_EQ(stats.slots_repaired, 1u);

    // Parity works again: fail a data cell, degraded read must succeed.
    Array reopened = co_await Array::open(c, cont, a.oid());
    c.system().failTarget(reopened.layout().target(0, 1));
    Payload back = co_await reopened.read(0, 2 * kMiB);
    EXPECT_EQ(back, data);
  });
}

TEST_F(RebuildTest, ReplicatedKvIsReprotected) {
  run([](Client& c, Container cont) -> Task<void> {
    KeyValue kv(c, cont, c.nextOid(ObjClass::RP_2G1));
    for (int i = 0; i < 20; ++i) {
      co_await kv.put("key" + std::to_string(i),
                      Payload::fromString("value" + std::to_string(i)));
    }
    const int victim = kv.layout().target(0, 0);
    c.system().failTarget(victim);
    c.system().excludeTarget(victim);
    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    EXPECT_GE(stats.records_restored, 20u);

    KeyValue reopened(c, cont, kv.oid());
    c.system().failTarget(kv.layout().target(0, 1));  // other original copy
    for (int i = 0; i < 20; ++i) {
      auto v = co_await reopened.get("key" + std::to_string(i));
      EXPECT_TRUE(v.has_value());
      if (v) {
      EXPECT_EQ(v->toString(), "value" + std::to_string(i));
    }
    }
  });
}

TEST_F(RebuildTest, UnprotectedShardsAreReportedLost) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::SX),
                                     {.cell_size = 1, .chunk_size = 1 << 16});
    co_await a.write(0, Payload::synthetic(1 << 20));  // 16 chunks over SX

    const int victim = a.layout().targets.front();
    c.system().excludeTarget(victim);
    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    EXPECT_GE(stats.objects_lost, 1u);
    EXPECT_EQ(stats.slots_repaired, 0u);
  });
}

TEST_F(RebuildTest, RebuildChargesRealIo) {
  run([](Client& c, Container cont) -> Task<void> {
    Array a = co_await Array::create(c, cont, c.nextOid(ObjClass::RP_2G1),
                                     {.cell_size = 1, .chunk_size = 1 << 20});
    co_await a.write(0, Payload::synthetic(16 * kMiB));
    const int victim = a.layout().target(0, 0);
    c.system().excludeTarget(victim);

    const std::uint64_t msgs_before = c.system().cluster().messages();
    daos::RebuildStats stats = co_await daos::rebuild(c.system(), victim);
    // 16 MiB re-replicated: takes real simulated time and network messages.
    EXPECT_GE(stats.bytes_moved, 16 * kMiB);
    EXPECT_GT(stats.duration, 8 * sim::kMillisecond);
    EXPECT_GT(c.system().cluster().messages(), msgs_before);
  });
}

}  // namespace
}  // namespace daosim
