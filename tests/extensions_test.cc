// Tests for the extensions beyond the paper's exact configurations:
// Ceph replication, fdb-hammer's asynchronous index path, rename through
// every POSIX access path, and event-queue error propagation.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "apps/fdb.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "daos/client.h"
#include "lustre/lustre.h"
#include "posix/dfuse.h"
#include "rados/rados.h"
#include "sim/simulation.h"

namespace daosim {
namespace {

using posix::OpenFlags;
using sim::Task;
using vos::Payload;
using hw::kKiB;
using hw::kMiB;

// --- Ceph replication ----------------------------------------------------

class CephReplicationTest : public ::testing::Test {
 protected:
  CephReplicationTest() : cluster_(sim_) {
    osd_nodes_ = cluster_.addNodes(hw::NodeSpec::server(), 2);
    mon_ = cluster_.addNode(hw::NodeSpec::client());
    client_node_ = cluster_.addNode(hw::NodeSpec::client());
  }

  sim::Simulation sim_;
  hw::Cluster cluster_;
  std::vector<hw::NodeId> osd_nodes_;
  hw::NodeId mon_{};
  hw::NodeId client_node_{};
};

TEST_F(CephReplicationTest, UpSetsAreDistinctAndBalanced) {
  rados::CephConfig cfg;
  cfg.replica_count = 3;
  rados::CephCluster ceph(cluster_, osd_nodes_, mon_, cfg);
  std::vector<int> load(static_cast<std::size_t>(ceph.osdCount()), 0);
  for (int pg = 0; pg < cfg.pg_count; ++pg) {
    auto up = ceph.upSet(pg);
    ASSERT_EQ(up.size(), 3u);
    std::set<int> s(up.begin(), up.end());
    ASSERT_EQ(s.size(), 3u) << "pg " << pg;
    for (int osd : up) load[static_cast<std::size_t>(osd)]++;
  }
  const double mean = 3.0 * cfg.pg_count / ceph.osdCount();
  for (int l : load) EXPECT_NEAR(l, mean, 0.5 * mean);
}

TEST_F(CephReplicationTest, ReplicatedWriteStoresTwoCopies) {
  rados::CephConfig cfg;
  cfg.replica_count = 2;
  rados::CephCluster ceph(cluster_, osd_nodes_, mon_, cfg);
  auto h = sim_.spawn(
      [](rados::CephCluster& ceph, hw::NodeId node) -> Task<void> {
        rados::RadosClient c(ceph, node);
        co_await c.connect();
        Payload data = vos::patternPayload(2 * kMiB, 5);
        co_await c.writeFull("obj", data);
        // Both copies stored; reads (from the primary) return the data.
        EXPECT_EQ(ceph.bytesStored(), 4 * kMiB);
        Payload back = co_await c.read("obj", 0, 2 * kMiB);
        EXPECT_EQ(back, data);
        int osds_with_data = 0;
        for (int i = 0; i < ceph.osdCount(); ++i) {
          if (ceph.osd(i).store.bytesStored() > 0) ++osds_with_data;
        }
        EXPECT_EQ(osds_with_data, 2);
      }(ceph, client_node_));
  sim_.run();
  ASSERT_FALSE(h.failed());
}

TEST_F(CephReplicationTest, ReplicationHalvesSustainedWriteBandwidth) {
  auto measure = [&](int replicas) {
    sim::Simulation sim;
    hw::Cluster cluster(sim);
    auto osd_nodes = cluster.addNodes(hw::NodeSpec::server(), 2);
    auto mon = cluster.addNode(hw::NodeSpec::client());
    auto cnode = cluster.addNode(hw::NodeSpec::client());
    rados::CephConfig cfg;
    cfg.replica_count = replicas;
    rados::CephCluster ceph(cluster, osd_nodes, mon, cfg);
    // 16 writers streaming 1 MiB objects.
    for (int w = 0; w < 16; ++w) {
      sim.spawn([](rados::CephCluster& ceph, hw::NodeId node,
                   int w) -> Task<void> {
        rados::RadosClient c(ceph, node);
        co_await c.connect();
        for (int i = 0; i < 150; ++i) {
          co_await c.writeFull("w" + std::to_string(w) + "." +
                                   std::to_string(i),
                               Payload::synthetic(kMiB));
        }
      }(ceph, cnode, w));
    }
    sim.run();
    return 16 * 150.0 / (1 << 10) / sim::toSeconds(sim.now());  // GiB/s
  };
  const double r1 = measure(1);
  const double r2 = measure(2);
  // Twice the device volume per user byte: roughly half the bandwidth
  // (slightly above 0.5x because the single-copy run is not fully
  // saturated by 16 writers).
  EXPECT_LT(r2, r1 * 0.7);
  EXPECT_GT(r2, r1 * 0.45);
}

// --- fdb async index -------------------------------------------------------

TEST(FdbAsyncIndex, OverlapsIndexPutsWithDataWrite) {
  auto run = [](bool async) {
    apps::DaosTestbed::Options opt;
    opt.server_nodes = 2;
    opt.client_nodes = 1;
    apps::DaosTestbed tb(opt);
    apps::FdbConfig cfg;
    cfg.fields = 60;
    cfg.async_index = async;
    apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
    return apps::runSpmd(tb.sim(), tb.clientSubset(1), 1, bench)
        .write()
        .gibps();
  };
  const double sync_bw = run(false);
  const double async_bw = run(true);
  // Seven serialized index puts cost ~0.5 ms/field; overlapped they are
  // hidden behind the 1 MiB array write.
  EXPECT_GT(async_bw, sync_bw * 1.1);
}

TEST(EventQueue, PropagatesFailuresOnWaitAll) {
  sim::Simulation sim;
  bool caught = false;
  sim.spawn([](sim::Simulation& s, bool& caught) -> Task<void> {
    daos::EventQueue eq(s);
    eq.launch([](sim::Simulation& s) -> Task<void> {
      co_await s.delay(sim::kMicrosecond);
    }(s));
    eq.launch([](sim::Simulation& s) -> Task<void> {
      co_await s.delay(sim::kMicrosecond);
      throw std::runtime_error("async op failed");
    }(s));
    try {
      co_await eq.waitAll();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

// --- rename through the POSIX paths ---------------------------------------

TEST(VfsRename, WorksThroughDfuseAndInterception) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::DaosTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::DaosTestbed& tb) -> Task<void> {
    posix::DfuseVfs dfuse(tb.daemon(tb.clients().front()));
    posix::Fd fd = co_await dfuse.open("/old-name", OpenFlags::writeCreate());
    co_await dfuse.pwrite(fd, 0, Payload::fromString("contents"));
    co_await dfuse.close(fd);

    co_await dfuse.rename("/old-name", "/new-name");
    bool threw = false;
    try {
      (void)co_await dfuse.stat("/old-name");
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    auto st = co_await dfuse.stat("/new-name");
    EXPECT_EQ(st.size, 8u);

    // And through the interception library (metadata forwards to dfuse).
    posix::InterceptVfs il(tb.daemon(tb.clients().front()), tb.dfsMount());
    co_await il.rename("/new-name", "/final-name");
    posix::Fd rd = co_await il.open("/final-name", OpenFlags::readOnly());
    Payload back = co_await il.pread(rd, 0, 8);
    EXPECT_EQ(back.toString(), "contents");
    co_await il.close(rd);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

TEST(VfsRename, WorksOnLustre) {
  apps::LustreTestbed::Options opt;
  opt.oss_nodes = 2;
  opt.client_nodes = 1;
  opt.retain_data = true;
  apps::LustreTestbed tb(opt);
  auto h = tb.sim().spawn([](apps::LustreTestbed& tb) -> Task<void> {
    lustre::LustreVfs vfs(tb.lustre(), tb.clients().front());
    posix::Fd fd = co_await vfs.open("/a", OpenFlags::writeCreate());
    co_await vfs.pwrite(fd, 0, vos::patternPayload(64 * kKiB, 3));
    co_await vfs.close(fd);
    co_await vfs.rename("/a", "/b");
    auto st = co_await vfs.stat("/b");
    EXPECT_EQ(st.size, 64 * kKiB);
    posix::Fd rd = co_await vfs.open("/b", OpenFlags::readOnly());
    Payload back = co_await vfs.pread(rd, 0, 64 * kKiB);
    EXPECT_EQ(back, vos::patternPayload(64 * kKiB, 3));
    co_await vfs.close(rd);
  }(tb));
  tb.sim().run();
  ASSERT_FALSE(h.failed());
}

}  // namespace
}  // namespace daosim
