// Randomized property tests against reference models.
//
//  * ExtentTree vs a byte-level reference (std::map<offset, byte>): random
//    writes, truncates and reads must agree byte-for-byte across thousands
//    of operations.
//  * DFS namespace vs a reference map of paths: random mkdir/create/write/
//    rename/unlink sequences must leave both in the same state, checked
//    through lookups, stats and readdirs.
//  * Bandwidth accounting invariants of the SPMD harness.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "daos/client.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hw/cluster.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "vos/extent_tree.h"
#include "vos/payload.h"

namespace daosim {
namespace {

using sim::Task;
using vos::ExtentTree;
using vos::Payload;

// --- ExtentTree vs byte map -------------------------------------------

class ExtentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentFuzz, MatchesByteLevelReference) {
  sim::Rng rng(GetParam());
  ExtentTree tree;
  std::map<std::uint64_t, std::byte> reference;
  std::uint64_t ref_end = 0;
  constexpr std::uint64_t kSpace = 4096;

  for (int op = 0; op < 2000; ++op) {
    const auto kind = rng.uniform(0, 9);
    if (kind < 6) {  // write
      const std::uint64_t off = rng.uniform(0, kSpace);
      const std::uint64_t len = rng.uniform(1, 200);
      Payload p = vos::patternPayload(len, rng());
      auto bytes = p.bytes();
      for (std::uint64_t i = 0; i < len; ++i) {
        reference[off + i] = bytes[static_cast<std::size_t>(i)];
      }
      ref_end = std::max(ref_end, off + len);
      tree.write(off, std::move(p));
    } else if (kind < 8) {  // read + compare
      const std::uint64_t off = rng.uniform(0, kSpace);
      const std::uint64_t len = rng.uniform(1, 300);
      auto r = tree.read(off, len);
      ASSERT_EQ(r.data.size(), len);
      auto got = r.data.bytes();
      std::uint64_t found = 0;
      for (std::uint64_t i = 0; i < len; ++i) {
        auto it = reference.find(off + i);
        const std::byte expect =
            it == reference.end() ? std::byte{0} : it->second;
        ASSERT_EQ(got[static_cast<std::size_t>(i)], expect)
            << "op " << op << " offset " << off + i;
        if (it != reference.end()) ++found;
      }
      ASSERT_EQ(r.bytes_found, found) << "op " << op;
    } else if (kind == 8) {  // truncate
      const std::uint64_t size = rng.uniform(0, kSpace);
      tree.truncate(size);
      reference.erase(reference.lower_bound(size), reference.end());
      ref_end = size;
    } else {  // end() check
      ASSERT_EQ(tree.end(), ref_end) << "op " << op;
    }
  }

  // Final accounting: stored bytes equal live reference bytes.
  ASSERT_EQ(tree.bytesStored(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- DFS namespace vs reference -----------------------------------------

struct RefEntry {
  bool is_dir = false;
  std::uint64_t size = 0;
};

class DfsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfsFuzz, NamespaceMatchesReference) {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  auto cnode = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  daos::Client client(system, cnode, 1);

  const std::uint64_t seed = GetParam();
  auto h = sim.spawn([](daos::Client& c, std::uint64_t seed) -> Task<void> {
    sim::Rng rng(seed);
    co_await c.poolConnect();
    daos::Container cont = co_await c.contCreate("fuzz");
    dfs::FileSystem fs = co_await dfs::FileSystem::mount(c, cont);

    // Reference: normalized path -> entry. Root always exists.
    std::map<std::string, RefEntry> ref;
    ref["/"] = RefEntry{true, 0};

    auto randomDir = [&rng, &ref]() {
      std::vector<std::string> dirs;
      for (const auto& [p, e] : ref) {
        if (e.is_dir) dirs.push_back(p);
      }
      return dirs[static_cast<std::size_t>(
          rng.uniform(0, dirs.size() - 1))];
    };
    auto join = [](const std::string& dir, const std::string& name) {
      return dir == "/" ? "/" + name : dir + "/" + name;
    };

    for (int op = 0; op < 300; ++op) {
      const auto kind = rng.uniform(0, 9);
      if (kind < 3) {  // mkdir
        const std::string path =
            join(randomDir(), "d" + std::to_string(rng.uniform(0, 20)));
        const bool exists = ref.count(path) > 0;
        bool threw = false;
        try {
          co_await fs.mkdir(path);
        } catch (const std::runtime_error&) {
          threw = true;
        }
        EXPECT_EQ(threw, exists) << path;
        if (!exists) ref[path] = RefEntry{true, 0};
      } else if (kind < 6) {  // create/overwrite a file and write
        const std::string path =
            join(randomDir(), "f" + std::to_string(rng.uniform(0, 20)));
        auto it = ref.find(path);
        if (it != ref.end() && it->second.is_dir) continue;  // name is a dir
        const std::uint64_t n = rng.uniform(1, 8192);
        dfs::File f =
            co_await fs.open(path, {.create = true, .truncate = true});
        co_await fs.write(f, 0, Payload::synthetic(n));
        ref[path] = RefEntry{false, n};
      } else if (kind < 8) {  // stat/lookup agreement
        const std::string path =
            join(randomDir(), (rng.uniform(0, 1) ? "f" : "d") +
                                  std::to_string(rng.uniform(0, 20)));
        auto it = ref.find(path);
        auto entry = co_await fs.lookup(path);
        EXPECT_EQ(entry.has_value(), it != ref.end()) << path;
        if (entry.has_value() && it != ref.end() && !it->second.is_dir) {
          auto st = co_await fs.stat(path);
          EXPECT_EQ(st.size, it->second.size) << path;
        }
      } else if (kind == 8) {  // unlink a random file
        std::vector<std::string> files;
        for (const auto& [p, e] : ref) {
          if (!e.is_dir) files.push_back(p);
        }
        if (files.empty()) continue;
        const std::string path = files[static_cast<std::size_t>(
            rng.uniform(0, files.size() - 1))];
        co_await fs.unlink(path);
        ref.erase(path);
      } else {  // readdir agreement on a random directory
        const std::string dir = randomDir();
        auto names = co_await fs.readdir(dir);
        std::set<std::string> expected;
        const std::string prefix = dir == "/" ? "/" : dir + "/";
        for (const auto& [p, e] : ref) {
          if (p.size() > prefix.size() &&
              p.compare(0, prefix.size(), prefix) == 0 &&
              p.find('/', prefix.size()) == std::string::npos) {
            expected.insert(p.substr(prefix.size()));
          }
        }
        EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
                  expected)
            << dir;
      }
    }
  }(client, seed));
  sim.run();
  ASSERT_FALSE(h.failed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsFuzz, ::testing::Values(7, 11, 19, 42));

}  // namespace
}  // namespace daosim
