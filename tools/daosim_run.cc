// daosim_run — command-line driver for arbitrary experiment points.
//
// The paper's artifact exposes "master scripts" that deploy a storage
// system and loop a benchmark over client-node/process grids. This tool is
// the equivalent entry point for the simulated testbed: pick a system, a
// benchmark, a deployment size and a client configuration, get a
// paper-style result line (plus an optional utilization breakdown).
//
// Examples:
//   daosim_run --bench ior --api daos-array
//              --servers 16 --clients 16 --ppn 16
//   daosim_run --bench ior --api dfuse-il --transfer 1024 --ops 2000
//   daosim_run --bench ior --api daos-array --queue-depth 8
//   daosim_run --system lustre --bench fdb --clients 32 --ppn 8 --stats
//   daosim_run --system ceph --bench fdb --pgs 256
//   daosim_run --bench ior --oclass EC_2P1GX --shared
//   daosim_run --bench ior --trace=trace.json --metrics=m.csv
//   daosim_run --bench ior --telemetry=telem.csv --telemetry-interval=5ms
//
// The --api names come from the io::Backend registry (see io/backend.h);
// --system is inferred from --api when omitted, and vice versa.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/fault_injector.h"
#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/pdes.h"
#include "apps/runner.h"
#include "apps/stats_report.h"
#include "apps/sweep.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "io/backend.h"
#include "obs/observer.h"
#include "obs/telemetry.h"
#include "obs/telemetry_reader.h"
#include "sim/parallel.h"

namespace {

using namespace daosim;

struct Options {
  std::string system;  // empty = inferred from --api (default: daos)
  std::string bench = "ior";
  std::string api;  // empty = the system's default backend
  std::string oclass = "SX";
  int servers = 16;
  int clients = 16;
  int ppn = 16;
  std::uint64_t ops = 0;  // 0 = auto-scale
  std::uint64_t transfer = 1 << 20;
  int reps = 3;
  int jobs = 0;      // 0 = DAOSIM_JOBS / hardware concurrency (sweep cells)
  int sim_jobs = -1;  // -1 = DAOSIM_SIM_JOBS / 1; 0 and 1 = serial kernel
  std::uint64_t seed = 1;
  int pgs = 1024;
  int replicas = 1;
  int queue_depth = 1;
  bool shared = false;
  bool async_index = false;
  bool stats = false;
  bool write_only = false;  // --write-only: skip the IOR read phase
  bool read_only = false;   // --read-only: write silently, time reads only
  std::string trace_file;      // --trace / DAOSIM_TRACE
  int exemplars = 0;           // --exemplars K / DAOSIM_EXEMPLARS (0 = off)
  std::string metrics_file;    // --metrics / DAOSIM_METRICS
  std::string telemetry_file;  // --telemetry / DAOSIM_TELEMETRY
  sim::Time telemetry_interval = 0;  // 0 = DAOSIM_TELEMETRY_INTERVAL / 10ms
  std::string faults;           // --faults: sim::FaultPlan spec (daos only)
  sim::Time rpc_timeout = 0;    // --rpc-timeout: per-attempt RPC timeout
  int rpc_retries = -1;         // --rpc-retries: retry budget (-1 = default)
};

[[noreturn]] void usage(const char* argv0) {
  std::string apis;
  for (const std::string& name : io::backendNames()) {
    if (!apis.empty()) apis += '|';
    apis += name;
  }
  std::fprintf(
      stderr,
      "usage: %s [--system daos|lustre|ceph] [--bench ior|fieldio|fdb|pdes]\n"
      "          [--api %s]\n"
      "          [--servers N] [--clients N] [--ppn N] [--ops N]\n"
      "          [--transfer BYTES] [--oclass S1|...|SX|RP_2GX|EC_2P1GX]\n"
      "          [--reps N] [--jobs N] [--sim-jobs N] [--seed N]\n"
      "          [--pgs N] [--replicas N]\n"
      "          [--queue-depth N] [--shared] [--async-index] [--stats]\n"
      "          [--write-only | --read-only]\n"
      "          [--trace FILE] [--metrics FILE] [--exemplars K]\n"
      "          [--telemetry FILE] [--telemetry-interval DUR]\n"
      "          [--faults SPEC] [--rpc-timeout DUR] [--rpc-retries N]\n"
      "Backends: --api picks an io::Backend by registry name; --system is\n"
      "inferred from it (and vice versa: --system alone picks that system's\n"
      "default backend). --queue-depth N keeps up to N IOR transfers in\n"
      "flight per process (1 = sequential issue, the paper's setup).\n"
      "--write-only / --read-only run just that IOR phase (reads hit the\n"
      "timing model whether or not data was written first).\n"
      "Parallelism: two independent knobs. --jobs (or DAOSIM_JOBS) runs\n"
      "repetitions (sweep cells) concurrently on a worker pool; results are\n"
      "identical to --jobs 1 for a fixed --seed because every repetition is\n"
      "a self-contained simulation. --sim-jobs N (or DAOSIM_SIM_JOBS)\n"
      "shards ONE simulation's event queue across N worker threads with\n"
      "conservative lookahead; 0 and 1 (the default) both mean the serial\n"
      "kernel, bit-identical to builds before sharding existed, and any\n"
      "fixed N >= 2 is deterministic — N=2 and N=4 print identical\n"
      "results. --jobs x --sim-jobs threads must fit the machine.\n"
      "--sim-jobs compatibility matrix (N > 1):\n"
      "  supported:   --system daos with --api daos-array|dfs|hdf5-daos\n"
      "               (aliases included) and --bench ior|fieldio|fdb; also\n"
      "               --bench pdes; --faults, --shared, --queue-depth and\n"
      "               --stats (which adds a 'result digest' line);\n"
      "               --trace, --metrics, --telemetry and --exemplars\n"
      "               (per-shard collection, merged deterministically —\n"
      "               exporter bytes are identical for every N, and\n"
      "               --telemetry adds a pdes/* engine-introspection\n"
      "               subtree); --rpc-timeout must be 0 or >= 2x the\n"
      "               fabric latency (16us) so a deadline cannot expire\n"
      "               inside one shard synchronization window.\n"
      "  serial-only: --system lustre|ceph; --api dfuse|dfuse-il|hdf5|\n"
      "               lustre-posix|rados (FUSE daemons and foreign stacks\n"
      "               share one simulation); --faults combined with\n"
      "               --telemetry (the faults/* probes sample cross-shard\n"
      "               fault state). Each conflict is reported naming the\n"
      "               offending flag.\n"
      "--bench pdes is a hardware-level object-store workload (clients ->\n"
      "NIC -> per-server service queue -> NVMe -> response) built for\n"
      "intra-run sharding; it takes --servers/--clients/--ppn/--ops/\n"
      "--transfer/--write-only/--read-only but no --api/--system, and with\n"
      "--stats prints shard-sync counters plus a result digest.\n"
      "Observability: --trace writes a Chrome-trace JSON (open in\n"
      "chrome://tracing or Perfetto) and --metrics a CSV (or JSON when the\n"
      "file ends in .json) of op latency histograms, both for the last\n"
      "repetition. DAOSIM_TRACE / DAOSIM_METRICS env vars are fallbacks.\n"
      "--exemplars K keeps the K slowest ops per op type across ALL\n"
      "repetitions (bounded memory) and prints their causal leg trees plus\n"
      "a p50/p95/p99 critical-path breakdown; deterministic under --jobs.\n"
      "DAOSIM_EXEMPLARS is the env fallback.\n"
      "--telemetry samples a per-component metric tree every\n"
      "--telemetry-interval of simulated time (default 10ms; \"500us\",\n"
      "\"5ms\", ... — see obs/telemetry.h) across every repetition and\n"
      "writes one schema-versioned dump (CSV, or JSON for .json files)\n"
      "that daosim_metrics turns into a bottleneck report. With --stats\n"
      "the report is also printed here. DAOSIM_TELEMETRY /\n"
      "DAOSIM_TELEMETRY_INTERVAL env vars are fallbacks.\n"
      "Fault injection (--system daos): --faults takes a plan like\n"
      "\"slow@40ms:t7,x8;flap@120ms:n5,15ms;exclude@200ms:t3\" or\n"
      "\"random:seed=7,events=6,horizon=300ms\" (grammar in\n"
      "sim/fault_plan.h); the same plan replays at every repetition.\n"
      "A non-empty plan enables the client RPC retry policy\n"
      "(net::RetryPolicy::chaosDefault(), tunable with --rpc-timeout /\n"
      "--rpc-retries); chaos counters land under net/rpc_retry_per_s,\n"
      "net/rpc_timeout_per_s, daos/degraded_read_per_s and faults/* in the\n"
      "--telemetry dump, and --stats prints a fault injection summary.\n",
      argv0, apis.c_str());
  std::exit(2);
}

const char* systemName(io::System s) {
  switch (s) {
    case io::System::kDaos: return "daos";
    case io::System::kLustre: return "lustre";
    case io::System::kCeph: return "ceph";
  }
  return "?";
}

/// Fills in whichever of --api / --system the user omitted and checks that
/// the pair is consistent (e.g. rejects `--system lustre --api dfs`).
void resolveApiAndSystem(Options& o) {
  if (o.api.empty()) {
    if (o.system.empty() || o.system == "daos") {
      o.system = "daos";
      o.api = "daos-array";
    } else if (o.system == "lustre") {
      o.api = "lustre-posix";
    } else if (o.system == "ceph") {
      o.api = "rados";
    } else {
      throw std::invalid_argument("unknown --system: " + o.system);
    }
    return;
  }
  o.api = io::canonicalName(o.api);  // throws on unknown names
  const char* inferred = systemName(io::backendSystem(o.api));
  if (o.system.empty()) {
    o.system = inferred;
  } else if (o.system != inferred) {
    throw std::invalid_argument("--api " + o.api + " runs on --system " +
                                inferred + ", not " + o.system);
  }
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--opt value` and `--opt=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--system") {
      o.system = value();
    } else if (arg == "--bench") {
      o.bench = value();
    } else if (arg == "--api") {
      o.api = value();
    } else if (arg == "--oclass") {
      o.oclass = value();
    } else if (arg == "--servers") {
      o.servers = std::atoi(value());
    } else if (arg == "--clients") {
      o.clients = std::atoi(value());
    } else if (arg == "--ppn") {
      o.ppn = std::atoi(value());
    } else if (arg == "--ops") {
      o.ops = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--transfer") {
      o.transfer = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--reps") {
      o.reps = std::atoi(value());
    } else if (arg == "--jobs") {
      o.jobs = std::atoi(value());
    } else if (arg == "--sim-jobs") {
      o.sim_jobs = std::atoi(value());
      if (o.sim_jobs < 0) usage(argv[0]);
    } else if (arg == "--seed") {
      o.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--pgs") {
      o.pgs = std::atoi(value());
    } else if (arg == "--replicas") {
      o.replicas = std::atoi(value());
    } else if (arg == "--queue-depth") {
      o.queue_depth = std::atoi(value());
    } else if (arg == "--shared") {
      o.shared = true;
    } else if (arg == "--async-index") {
      o.async_index = true;
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg == "--write-only") {
      o.write_only = true;
    } else if (arg == "--read-only") {
      o.read_only = true;
    } else if (arg == "--trace") {
      o.trace_file = value();
    } else if (arg == "--exemplars") {
      o.exemplars = std::atoi(value());
      if (o.exemplars <= 0) usage(argv[0]);
    } else if (arg == "--metrics") {
      o.metrics_file = value();
    } else if (arg == "--telemetry") {
      o.telemetry_file = value();
    } else if (arg == "--telemetry-interval") {
      o.telemetry_interval = apps::parseDuration(value());
    } else if (arg == "--faults") {
      o.faults = value();
    } else if (arg == "--rpc-timeout") {
      o.rpc_timeout = apps::parseDuration(value());
    } else if (arg == "--rpc-retries") {
      o.rpc_retries = std::atoi(value());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (o.servers <= 0 || o.clients <= 0 || o.ppn <= 0 || o.reps <= 0 ||
      o.queue_depth <= 0 || (o.read_only && o.write_only)) {
    usage(argv[0]);
  }
  if (o.sim_jobs < 0) o.sim_jobs = sim::envSimJobs();  // explicit 0 = serial
  if (o.jobs > 1 && o.sim_jobs > 1) {
    // Both knobs explicit: refuse silent oversubscription. (When --jobs is
    // omitted the pool below defaults to one worker instead.)
    const unsigned hc = std::thread::hardware_concurrency();
    const auto want = static_cast<unsigned long long>(o.jobs) *
                      static_cast<unsigned long long>(o.sim_jobs);
    if (hc != 0 && want > hc) {
      throw std::invalid_argument(
          "--jobs " + std::to_string(o.jobs) + " (concurrent repetitions) x "
          "--sim-jobs " + std::to_string(o.sim_jobs) +
          " (event-queue shards per run) = " + std::to_string(want) +
          " worker threads, but this machine has " + std::to_string(hc) +
          " cores; lower one of the two");
    }
  }
  if (o.bench == "pdes") {
    if (!o.api.empty() || !o.system.empty()) {
      throw std::invalid_argument(
          "--bench pdes runs directly on the hardware model; "
          "--api/--system do not apply");
    }
    o.system = "hw";
    if (!o.faults.empty() || !o.trace_file.empty() || o.exemplars > 0 ||
        !o.metrics_file.empty() || !o.telemetry_file.empty()) {
      throw std::invalid_argument(
          "--bench pdes does not support --faults/--trace/--exemplars/"
          "--metrics/--telemetry (those observers attach to a single "
          "serial simulation)");
    }
    return o;  // no backend to resolve, and observer env fallbacks are moot
  }
  resolveApiAndSystem(o);
  if (!o.faults.empty() && o.system != "daos") {
    throw std::invalid_argument("--faults requires --system daos");
  }
  if (o.trace_file.empty()) {
    if (const char* v = std::getenv("DAOSIM_TRACE")) o.trace_file = v;
  }
  if (o.exemplars == 0) {
    if (const char* v = std::getenv("DAOSIM_EXEMPLARS")) {
      o.exemplars = std::atoi(v);
    }
  }
  if (o.metrics_file.empty()) {
    if (const char* v = std::getenv("DAOSIM_METRICS")) o.metrics_file = v;
  }
  if (o.telemetry_file.empty()) o.telemetry_file = apps::telemetryEnvFile();
  if (o.telemetry_interval == 0) {
    o.telemetry_interval = apps::telemetryEnvInterval();
  }
  // --sim-jobs N > 1 compatibility gate. Every rejection names the
  // specific conflicting flag; the full matrix is in --help. (Checked
  // after the env fallbacks above so DAOSIM_TRACE & co. are caught too.)
  if (o.sim_jobs > 1) {
    auto reject = [](const std::string& flag, const std::string& why) {
      throw std::invalid_argument(
          "--sim-jobs > 1 is incompatible with " + flag + ": " + why +
          ". Drop " + flag +
          " or run on the serial kernel (--sim-jobs 1); see --help for "
          "the compatibility matrix.");
    };
    if (o.system != "daos") {
      reject("--system " + o.system,
             "intra-run sharding deploys the DAOS testbed only; the "
             "Lustre/Ceph stacks run on the serial kernel");
    }
    if (o.api != "daos-array" && o.api != "dfs" && o.api != "hdf5-daos") {
      reject("--api " + o.api,
             "sharded runs support the RPC-shaped DAOS backends "
             "(daos-array, dfs, hdf5-daos); FUSE-daemon-backed APIs need "
             "the serial kernel");
    }
    // --trace/--metrics/--telemetry/--exemplars are shard-aware: per-shard
    // collection with a deterministic merge (obs::ObserverGroup,
    // obs::Telemetry::mergeLanes) keeps every exporter's bytes identical
    // across shard counts. One remaining conflict:
    if (!o.faults.empty() && !o.telemetry_file.empty()) {
      reject("--faults with --telemetry (or DAOSIM_TELEMETRY)",
             "the fault injector's faults/* telemetry probes sample "
             "cross-shard fault state and are serial-only");
    }
  }
  return o;
}

std::uint64_t opCount(const Options& o) {
  if (o.ops > 0) return o.ops;
  return apps::scaledOps(o.clients * o.ppn, 1000, 40000);
}

apps::IorConfig iorConfig(const Options& o) {
  apps::IorConfig cfg;
  cfg.transfer = o.transfer;
  // librados: the paper caps runs to stay within 132 MiB objects.
  if (o.system == "ceph") {
    cfg.ops = o.ops > 0 ? o.ops : 100;
  } else {
    cfg.ops = opCount(o);
  }
  cfg.oclass = placement::classFromName(o.oclass);
  cfg.shared_file = o.shared;
  cfg.queue_depth = o.queue_depth;
  cfg.write_phase = !o.read_only;
  cfg.read_phase = !o.write_only;
  return cfg;
}

apps::FdbConfig fdbConfig(const Options& o) {
  apps::FdbConfig cfg;
  cfg.field_size = o.transfer;
  cfg.fields = opCount(o);
  cfg.async_index = o.async_index;
  cfg.array_oclass =
      placement::classFromName(o.oclass) == placement::ObjClass::SX
          ? placement::ObjClass::S1
          : placement::classFromName(o.oclass);
  return cfg;
}

/// Runs the selected benchmark against the named backend on a deployed
/// testbed; shared across the three systems now that the benchmarks are
/// backend-neutral.
template <typename Testbed>
apps::RunResult runBench(const Options& o, Testbed& tb, bool stats,
                         obs::Observer* observer, const std::string& run_label,
                         apps::FaultInjector* injector = nullptr) {
  const sim::Time t0 = tb.sim().now();
  // Sharded DAOS testbeds dispatch through the ShardGroup harness; all
  // other testbeds (and serial DAOS ones) use the frozen serial harness.
  sim::ShardGroup* sg = nullptr;
  if constexpr (std::is_same_v<Testbed, apps::DaosTestbed>) {
    sg = tb.shardGroup();
  }
  // Scoped: the registry detaches and lands in TelemetryHub::global()
  // (keyed by the deterministic rep label) before the testbed dies. A
  // sharded run collects one raw-sample lane per shard instead and merges
  // them under the same label (apps::ShardedRunTelemetry).
  apps::ScopedRunTelemetry telem(tb.sim(), run_label,
                                 sg == nullptr && !o.telemetry_file.empty(),
                                 o.telemetry_interval);
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);
  if (telem.active() && injector != nullptr) {
    injector->registerTelemetry(telem.telemetry());
  }
  std::optional<apps::ShardedRunTelemetry> stelem;
  if constexpr (std::is_same_v<Testbed, apps::DaosTestbed>) {
    if (sg != nullptr && !o.telemetry_file.empty()) {
      stelem.emplace(tb, run_label, true, o.telemetry_interval);
    }
  }
  // Sharded runs observe through one lane per shard; the lanes journal and
  // ObserverGroup::mergeInto rebuilds the serial-equivalent state in
  // `observer` after the run (same exporter bytes for every shard count).
  std::optional<obs::ObserverGroup> og;
  if (observer != nullptr) {
    if (sg != nullptr) {
      og.emplace(*sg);
    } else {
      observer->attach(tb.sim());
    }
  }
  if (injector != nullptr) injector->install();
  const auto run = [&](apps::SpmdBenchmark& bench) {
    return sg != nullptr
               ? apps::runSpmdSharded(tb.cluster(), *sg,
                                      tb.clientSubset(o.clients), o.ppn,
                                      tb.seed(), bench)
               : apps::runSpmd(tb.sim(), tb.clientSubset(o.clients), o.ppn,
                               bench);
  };
  apps::RunResult r;
  if (o.bench == "ior") {
    apps::Ior bench(tb.ioEnv(), o.api, iorConfig(o));
    r = run(bench);
  } else if (o.bench == "fieldio") {
    apps::FieldIoConfig cfg;
    cfg.field_size = o.transfer;
    cfg.fields = opCount(o);
    apps::FieldIo bench(tb.ioEnv(), o.api, cfg);
    r = run(bench);
  } else if (o.bench == "fdb") {
    apps::Fdb bench(tb.ioEnv(), o.api, fdbConfig(o));
    r = run(bench);
  } else {
    throw std::invalid_argument("unknown --bench: " + o.bench);
  }
  if (og.has_value()) {
    // Deterministic merge: lanes detach, the journals are reconciled, and
    // `observer` ends up in the exact state a serial observer of the same
    // run would hold (enableTracing/enableExemplars on it apply).
    og->mergeInto(*observer);
    og.reset();
  }
  if (sg != nullptr && stelem.has_value()) stelem->noteShardStats(sg->stats());
  if (stats && sg != nullptr) {
    apps::reportShardSync(std::cout, sg->stats());
    // Shard-count-invariant fingerprint (see apps::runDigest): CI compares
    // this line across --sim-jobs values. The sync counters above are not
    // invariant (per-shard tallies depend on the layout); the digest is.
    std::printf("result digest %016" PRIx64 "\n", apps::runDigest(r));
  }
  if (injector != nullptr) {
    injector->rethrowIfFailed();
    if (stats) injector->writeSummary(std::cout);
  }
  if (stats) apps::reportUtilization(std::cout, tb, tb.sim().now() - t0);
  if (observer != nullptr) {
    if (stats) observer->writeBreakdown(std::cout);
    if (sg == nullptr) observer->detach();  // tb's sim dies with this scope
  }
  return r;
}

apps::RunResult runDaos(const Options& o, std::uint64_t seed, bool stats,
                        obs::Observer* observer, const std::string& label) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = o.servers;
  opt.client_nodes = o.clients;
  opt.seed = seed;
  sim::FaultPlan plan;
  if (!o.faults.empty()) {
    sim::FaultTopology topo;
    topo.engines = o.servers;
    topo.targets = o.servers * opt.daos.targets_per_engine;
    topo.nodes = o.servers + o.clients;
    plan = sim::FaultPlan::parse(o.faults, topo);
  }
  const bool chaos =
      !plan.empty() || o.rpc_timeout > 0 || o.rpc_retries >= 0;
  if (chaos) {
    // A non-empty plan (or explicit retry flags) switches the client data
    // path onto the retry policy; otherwise the disabled default keeps the
    // zero-retry fast path bit-identical to a plan-free run.
    opt.daos.rpc_retry = net::RetryPolicy::chaosDefault();
    if (o.rpc_timeout > 0) opt.daos.rpc_retry.timeout = o.rpc_timeout;
    if (o.rpc_retries >= 0) opt.daos.rpc_retry.max_retries = o.rpc_retries;
  }
  if (o.sim_jobs > 1) {
    opt.sim_jobs = o.sim_jobs;
    opt.with_dfuse = false;  // FUSE daemons are serial-only (APIs gated)
    const sim::Time min_timeout = 2 * hw::FabricSpec{}.latency;
    if (opt.daos.rpc_retry.enabled() && opt.daos.rpc_retry.timeout > 0 &&
        opt.daos.rpc_retry.timeout < min_timeout) {
      throw std::invalid_argument(
          "--rpc-timeout must be 0 (disabled) or >= " +
          std::to_string(min_timeout) +
          "ns (2x the fabric latency) when --sim-jobs > 1: a shorter "
          "per-attempt deadline could expire inside one shard "
          "synchronization window");
    }
  }
  apps::DaosTestbed tb(opt);
  std::optional<apps::FaultInjector> injector;
  if (!plan.empty()) injector.emplace(tb, std::move(plan));
  return runBench(o, tb, stats, observer, label,
                  injector ? &*injector : nullptr);
}

apps::RunResult runLustre(const Options& o, std::uint64_t seed, bool stats,
                          obs::Observer* observer, const std::string& label) {
  apps::LustreTestbed::Options opt;
  opt.oss_nodes = o.servers;
  opt.client_nodes = o.clients;
  opt.seed = seed;
  apps::LustreTestbed tb(opt);
  return runBench(o, tb, stats, observer, label);
}

apps::RunResult runCeph(const Options& o, std::uint64_t seed, bool stats,
                        obs::Observer* observer, const std::string& label) {
  apps::CephTestbed::Options opt;
  opt.osd_nodes = o.servers;
  opt.client_nodes = o.clients;
  opt.seed = seed;
  opt.ceph.pg_count = o.pgs;
  opt.ceph.replica_count = o.replicas;
  apps::CephTestbed tb(opt);
  return runBench(o, tb, stats, observer, label);
}

void printSummary(const Options& o, const apps::Measurement& m) {
  std::printf(
      "%s/%s servers=%d clients=%d ppn=%d procs=%d reps=%d\n"
      "  write %.2f +/- %.2f GiB/s (%.1f kIOPS) p50/p95/p99 %.1f/%.1f/%.1f us\n"
      "  read  %.2f +/- %.2f GiB/s (%.1f kIOPS) p50/p95/p99 %.1f/%.1f/%.1f us\n",
      o.system.c_str(), o.bench.c_str(), o.servers, o.clients, o.ppn,
      o.clients * o.ppn, o.reps, m.write_gibps.mean(), m.write_gibps.stddev(),
      m.write_kiops.mean(),
      static_cast<double>(m.write_lat.percentile(50)) / 1e3,
      static_cast<double>(m.write_lat.percentile(95)) / 1e3,
      static_cast<double>(m.write_lat.percentile(99)) / 1e3,
      m.read_gibps.mean(), m.read_gibps.stddev(), m.read_kiops.mean(),
      static_cast<double>(m.read_lat.percentile(50)) / 1e3,
      static_cast<double>(m.read_lat.percentile(95)) / 1e3,
      static_cast<double>(m.read_lat.percentile(99)) / 1e3);
}

/// Sweep-pool width: --jobs when given; otherwise one worker while shards
/// are engaged (so the thread count stays --sim-jobs), else DAOSIM_JOBS /
/// hardware concurrency.
int sweepJobs(const Options& o) {
  if (o.jobs > 0) return o.jobs;
  if (o.sim_jobs > 1) return 1;
  return sim::envSweepJobs();
}

int runPdesBench(const Options& o) {
  apps::PdesOptions p;
  p.server_nodes = o.servers;
  p.client_nodes = o.clients;
  p.procs_per_node = o.ppn;
  p.ops = o.ops > 0 ? o.ops : 64;
  p.transfer = o.transfer;
  // CLI --sim-jobs 1 is the plain serial kernel (no ShardGroup at all);
  // N > 1 engages a windowed group with N shards.
  p.sim_jobs = o.sim_jobs <= 1 ? 0 : o.sim_jobs;
  p.write_phase = !o.read_only;
  p.read_phase = !o.write_only;
  apps::Measurement m;
  m.point = apps::SweepPoint{o.clients, o.ppn};
  sim::ParallelRunner pool(sweepJobs(o));
  auto results = pool.map(
      static_cast<std::size_t>(o.reps),
      [&](std::size_t rep) -> apps::RunResult {
        apps::PdesOptions pr = p;
        pr.seed = o.seed + static_cast<std::uint64_t>(rep);
        apps::PdesResult r = apps::runPdes(pr);
        // Shard-sync stats describe the last repetition, mirroring the
        // testbed benches' --stats behavior.
        if (o.stats && rep == static_cast<std::size_t>(o.reps) - 1) {
          apps::writePdesStats(std::cout, r);
        }
        return r.run;
      });
  for (const auto& r : results) m.add(r);
  printSummary(o, m);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);
    if (o.bench == "pdes") return runPdesBench(o);
    // Observe the last repetition only (mirrors --stats), so traces and
    // metrics describe one run rather than a mix of seeds.
    obs::Observer observer;
    const bool want_obs = o.stats || !o.trace_file.empty() ||
                          !o.metrics_file.empty() || !o.telemetry_file.empty();
    if (!o.trace_file.empty()) observer.enableTracing();
    if (o.exemplars > 0) {
      observer.enableExemplars(static_cast<std::size_t>(o.exemplars),
                               static_cast<std::uint32_t>(o.reps - 1));
    }
    apps::Measurement m;
    m.point = apps::SweepPoint{o.clients, o.ppn};
    // Per-rep exemplar reservoirs, merged in rep order after the pool joins
    // (merge order does not matter, but fixed order keeps it obviously
    // deterministic under --jobs).
    std::vector<std::unique_ptr<obs::ExemplarReservoir>> reservoirs(
        static_cast<std::size_t>(o.reps));
    // Repetitions are independent simulations; run them across a worker
    // pool (--jobs / DAOSIM_JOBS). Aggregation stays in rep order, so the
    // printed numbers are identical to a serial run for a fixed --seed.
    sim::ParallelRunner pool(sweepJobs(o));
    auto results = pool.map(
        static_cast<std::size_t>(o.reps),
        [&](std::size_t rep) -> apps::RunResult {
          const std::uint64_t seed = o.seed + static_cast<std::uint64_t>(rep);
          const bool last = rep == static_cast<std::size_t>(o.reps) - 1;
          const bool stats = o.stats && last;
          // Sharded runs route the observer through an ObserverGroup (one
          // lane per shard) inside runBench and merge into it afterwards,
          // so the exporters below read the same state either way.
          obs::Observer* obsp = want_obs && last ? &observer : nullptr;
          // Non-last reps get a local observer when exemplars are on, so
          // the reservoir sees the tail of every repetition.
          std::optional<obs::Observer> rep_obs;
          if (o.exemplars > 0 && obsp == nullptr) {
            rep_obs.emplace();
            rep_obs->enableExemplars(static_cast<std::size_t>(o.exemplars),
                                     static_cast<std::uint32_t>(rep));
            obsp = &*rep_obs;
          }
          const std::string label = "rep/" + std::to_string(rep);
          apps::RunResult r;
          if (o.system == "daos") {
            r = runDaos(o, seed, stats, obsp, label);
          } else if (o.system == "lustre") {
            r = runLustre(o, seed, stats, obsp, label);
          } else if (o.system == "ceph") {
            r = runCeph(o, seed, stats, obsp, label);
          } else {
            throw std::invalid_argument("unknown --system: " + o.system);
          }
          if (o.exemplars > 0) reservoirs[rep] = obsp->takeExemplars();
          return r;
        });
    for (const auto& r : results) m.add(r);
    if (o.exemplars > 0) {
      obs::ExemplarReservoir master(static_cast<std::size_t>(o.exemplars));
      for (const auto& r : reservoirs) {
        if (r != nullptr) master.merge(*r);
      }
      const auto ops = obs::reservoirOps(master);
      const auto stations = obs::stationNames(master.tracks());
      obs::writeExemplars(std::cout, ops, stations, master.k());
      obs::writeCriticalPath(std::cout, ops, stations);
    }
    if (!o.trace_file.empty()) {
      std::ofstream f(o.trace_file);
      observer.writeChromeTrace(f);
    }
    bool metrics_exported = false;
    if (!o.metrics_file.empty()) {
      observer.exportMetrics();
      metrics_exported = true;
      std::ofstream f(o.metrics_file);
      const std::string& mf = o.metrics_file;
      if (mf.size() >= 5 && mf.compare(mf.size() - 5, 5, ".json") == 0) {
        observer.metrics().writeJson(f);
      } else {
        observer.metrics().writeCsv(f);
      }
    }
    if (!o.telemetry_file.empty()) {
      // Splice the last rep's op.* layer aggregates into the dump so the
      // analyzer can attribute wall-clock share per layer.
      if (!metrics_exported) observer.exportMetrics();
      const obs::MetricsRegistry* extra = &observer.metrics();
      obs::TelemetryHub& hub = obs::TelemetryHub::global();
      std::ofstream f(o.telemetry_file);
      const std::string& tf = o.telemetry_file;
      if (tf.size() >= 5 && tf.compare(tf.size() - 5, 5, ".json") == 0) {
        hub.writeJson(f, extra);
      } else {
        hub.writeCsv(f, extra);
      }
      if (o.stats) {
        std::stringstream ss;
        hub.writeCsv(ss, extra);
        const obs::TelemetryDump dump = obs::parseTelemetryCsv(ss);
        std::cout << "\n-- telemetry bottleneck report --\n";
        obs::writeReport(std::cout, obs::analyze(dump));
        const obs::PdesAnalysis pdes = obs::analyzePdes(dump);
        if (pdes.present) {
          std::cout << "\n-- pdes engine --\n";
          obs::writePdesReport(std::cout, pdes);
        }
      }
    }
    printSummary(o, m);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "daosim_run: %s\n", e.what());
    return 1;
  }
}
