// daosim_metrics — bottleneck report from a telemetry dump.
//
// Reads a schema-versioned CSV written by `daosim_run --telemetry` (or a
// bench binary under DAOSIM_TELEMETRY), attributes utilization per station
// class, and prints which layer bounds the run plus per-component tables
// and straggler flags. The simulated analogue of pointing `daos_metrics`
// at a busy engine.
//
//   daosim_metrics telem.csv
//   daosim_metrics --top 20 telem.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/telemetry_reader.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--top N] FILE.csv\n"
               "Prints a bottleneck/utilization report from a telemetry CSV\n"
               "dump (daosim_run --telemetry, or DAOSIM_TELEMETRY with the\n"
               "bench binaries). --top N controls the hottest-component\n"
               "table length (default 10). Dumps from sharded runs\n"
               "(--sim-jobs > 1) carry a pdes/* engine subtree; a PDES\n"
               "section with per-shard busy/wait shares and a straggler/\n"
               "imbalance verdict is appended for those.\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int top_n = 10;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--top") {
      top_n = std::atoi(value());
      if (top_n <= 0) usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (file.empty() && arg[0] != '-') {
      file = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (file.empty()) usage(argv[0]);
  try {
    std::ifstream is(file);
    if (!is) {
      std::fprintf(stderr, "daosim_metrics: cannot open %s\n", file.c_str());
      return 1;
    }
    const daosim::obs::TelemetryDump dump =
        daosim::obs::parseTelemetryCsv(is);
    daosim::obs::writeReport(std::cout, daosim::obs::analyze(dump), top_n);
    const daosim::obs::PdesAnalysis pdes = daosim::obs::analyzePdes(dump);
    if (pdes.present) {
      std::cout << "\n-- pdes engine --\n";
      daosim::obs::writePdesReport(std::cout, pdes);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "daosim_metrics: %s\n", e.what());
    return 1;
  }
}
