// daosim_trace — critical-path analysis of a trace dump.
//
// Ingests the chrome-trace JSON written by `daosim_run --trace` (or a bench
// binary under DAOSIM_TRACE) and answers "where did the ops spend their
// time": per-op-type p50/p95/p99 station breakdowns with the queue-wait vs
// service split, tail exemplar leg trees, folded stacks for flamegraph.pl /
// speedscope, and a per-station A/B diff of two runs.
//
//   daosim_trace breakdown trace.json
//   daosim_trace exemplars --top 3 trace.json
//   daosim_trace folded trace.json > run.folded
//   daosim_trace diff before.json after.json
//
// Exits non-zero (with no partial output) on missing files or a trace
// schema this build does not understand.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/trace_reader.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s COMMAND [options] FILE.json [FILE2.json]\n"
      "Critical-path analysis of a daosim trace dump (daosim_run --trace,\n"
      "or DAOSIM_TRACE with the bench binaries).\n"
      "commands:\n"
      "  breakdown FILE        per-op-type p50/p95/p99 station breakdown\n"
      "                        (queue-wait vs service; sums == span)\n"
      "  exemplars FILE        slowest ops per type with full leg trees\n"
      "  folded FILE           folded-stack flamegraph lines to stdout\n"
      "  diff FILE_A FILE_B    per-station comparison of two runs\n"
      "options:\n"
      "  --top N               exemplar count per op type (default 5)\n",
      argv0);
  std::exit(2);
}

daosim::obs::TraceDump load(const std::string& file) {
  std::ifstream is(file);
  if (!is) {
    std::fprintf(stderr, "daosim_trace: cannot open %s\n", file.c_str());
    std::exit(1);
  }
  return daosim::obs::parseChromeTrace(is);
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::size_t top = 5;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--top") {
      const int n = std::atoi(value());
      if (n <= 0) usage(argv[0]);
      top = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    } else if (command.empty()) {
      command = arg;
    } else {
      files.push_back(arg);
    }
  }
  const std::size_t want_files = command == "diff" ? 2 : 1;
  if (command.empty() || files.size() != want_files) usage(argv[0]);
  if (command != "breakdown" && command != "exemplars" &&
      command != "folded" && command != "diff") {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    usage(argv[0]);
  }

  try {
    using namespace daosim::obs;
    // Parse everything up front, then print: a schema error after partial
    // output would defeat the non-zero-exit contract.
    const TraceDump a = load(files[0]);
    const auto stations_a = stationNames(a.tracks);
    std::ostringstream out;
    if (command == "breakdown") {
      writeCriticalPath(out, a.ops, stations_a);
    } else if (command == "exemplars") {
      writeExemplars(out, a.ops, stations_a, top);
    } else if (command == "folded") {
      writeFoldedStacks(out, a.ops, stations_a);
    } else {  // diff
      const TraceDump b = load(files[1]);
      writeStationDiff(out, a.ops, stations_a, b.ops, stationNames(b.tracks));
    }
    std::cout << out.str();
    if (a.dropped_opens != 0) {
      std::fprintf(stderr,
                   "daosim_trace: note: %zu op span(s) never ended "
                   "(run cut off mid-op); they are excluded\n",
                   a.dropped_opens);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "daosim_trace: %s\n", e.what());
    return 1;
  }
}
