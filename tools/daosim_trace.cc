// daosim_trace — critical-path analysis of a trace dump.
//
// Ingests the chrome-trace JSON written by `daosim_run --trace` (or a bench
// binary under DAOSIM_TRACE) and answers "where did the ops spend their
// time": per-op-type p50/p95/p99 station breakdowns with the queue-wait vs
// service split, tail exemplar leg trees, folded stacks for flamegraph.pl /
// speedscope, and a per-station A/B diff of two runs.
//
//   daosim_trace breakdown trace.json
//   daosim_trace exemplars --top 3 trace.json
//   daosim_trace folded trace.json > run.folded
//   daosim_trace diff before.json after.json
//
// Exits non-zero (with no partial output) on missing files or a trace
// schema this build does not understand.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/trace_reader.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s COMMAND [options] FILE.json [FILE2.json]\n"
      "Critical-path analysis of a daosim trace dump (daosim_run --trace,\n"
      "or DAOSIM_TRACE with the bench binaries).\n"
      "commands:\n"
      "  breakdown FILE        per-op-type p50/p95/p99 station breakdown\n"
      "                        (queue-wait vs service; sums == span)\n"
      "  exemplars FILE        slowest ops per type with full leg trees\n"
      "  folded FILE           folded-stack flamegraph lines to stdout\n"
      "  diff FILE_A FILE_B    per-station comparison of two runs\n"
      "  hops FILE             cross-node ops: node (pid) chains in visit\n"
      "                        order with per-hop send-leg latencies —\n"
      "                        the view of op spans stitched across shard\n"
      "                        mailbox migrations in a --sim-jobs trace\n"
      "options:\n"
      "  --top N               exemplar count per op type, or detailed op\n"
      "                        count for hops (default 5)\n",
      argv0);
  std::exit(2);
}

/// Cross-node op report: ops whose legs touch more than one trace pid
/// (node), the node chain in first-visit order, and every "send" leg's
/// latency. In a sharded trace these are exactly the spans that migrated
/// between shards through the cluster mailbox; the chains surviving the
/// deterministic merge intact is what "stitched" means.
void writeHops(std::ostream& os, const daosim::obs::TraceDump& d,
               std::size_t top) {
  using daosim::obs::OpRecord;
  using daosim::obs::TraceEvent;
  struct Hopper {
    const OpRecord* op;
    std::vector<int> chain;  // pids in first-visit order
  };
  std::vector<Hopper> multi;
  for (const OpRecord& op : d.ops) {
    // Legs are stored in record order; visit order is by leg start time.
    std::vector<const TraceEvent*> legs;
    for (const TraceEvent& l : op.legs) legs.push_back(&l);
    std::stable_sort(legs.begin(), legs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts < b->ts;
                     });
    Hopper h{&op, {}};
    auto visit = [&](daosim::obs::TrackId t) {
      if (t >= d.tracks.size()) return;
      const int pid = d.tracks[t].pid;
      if (h.chain.empty() || h.chain.back() != pid) h.chain.push_back(pid);
    };
    visit(op.track);
    for (const TraceEvent* l : legs) visit(l->track);
    std::vector<int> uniq = h.chain;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    if (uniq.size() > 1) multi.push_back(std::move(h));
  }
  os << multi.size() << " of " << d.ops.size()
     << " ops cross nodes (legs on more than one pid)\n";
  if (multi.empty()) return;
  std::stable_sort(multi.begin(), multi.end(),
                   [](const Hopper& a, const Hopper& b) {
                     return a.op->dur > b.op->dur;
                   });
  std::size_t shown = 0;
  for (const Hopper& h : multi) {
    if (shown++ >= top) break;
    const OpRecord& op = *h.op;
    os << "\n" << op.type << " seq " << op.seq << "  start " << op.start
       << " ns  dur " << op.dur << " ns\n  nodes:";
    for (std::size_t i = 0; i < h.chain.size(); ++i) {
      os << (i == 0 ? " " : " -> ") << h.chain[i];
    }
    os << "\n";
    for (const TraceEvent& l : op.legs) {
      if (l.name == nullptr || std::strcmp(l.name, "send") != 0) continue;
      const int pid =
          l.track < d.tracks.size() ? d.tracks[l.track].pid : -1;
      os << "  send @ node " << pid << ": ts " << l.ts << " ns, dur "
         << l.dur << " ns (wait " << l.wait << " ns)\n";
    }
  }
  if (multi.size() > shown) {
    os << "\n(" << multi.size() - shown
       << " more; raise --top to list them)\n";
  }
}

daosim::obs::TraceDump load(const std::string& file) {
  std::ifstream is(file);
  if (!is) {
    std::fprintf(stderr, "daosim_trace: cannot open %s\n", file.c_str());
    std::exit(1);
  }
  return daosim::obs::parseChromeTrace(is);
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::size_t top = 5;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--top") {
      const int n = std::atoi(value());
      if (n <= 0) usage(argv[0]);
      top = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    } else if (command.empty()) {
      command = arg;
    } else {
      files.push_back(arg);
    }
  }
  const std::size_t want_files = command == "diff" ? 2 : 1;
  if (command.empty() || files.size() != want_files) usage(argv[0]);
  if (command != "breakdown" && command != "exemplars" &&
      command != "folded" && command != "diff" && command != "hops") {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    usage(argv[0]);
  }

  try {
    using namespace daosim::obs;
    // Parse everything up front, then print: a schema error after partial
    // output would defeat the non-zero-exit contract.
    const TraceDump a = load(files[0]);
    const auto stations_a = stationNames(a.tracks);
    std::ostringstream out;
    if (command == "breakdown") {
      writeCriticalPath(out, a.ops, stations_a);
    } else if (command == "exemplars") {
      writeExemplars(out, a.ops, stations_a, top);
    } else if (command == "folded") {
      writeFoldedStacks(out, a.ops, stations_a);
    } else if (command == "hops") {
      writeHops(out, a, top);
    } else {  // diff
      const TraceDump b = load(files[1]);
      writeStationDiff(out, a.ops, stations_a, b.ops, stationNames(b.tracks));
    }
    std::cout << out.str();
    if (a.dropped_opens != 0) {
      std::fprintf(stderr,
                   "daosim_trace: note: %zu op span(s) never ended "
                   "(run cut off mid-op); they are excluded\n",
                   a.dropped_opens);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "daosim_trace: %s\n", e.what());
    return 1;
  }
}
