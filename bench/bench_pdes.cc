// bench_pdes — intra-run sharding (sim::ShardGroup) throughput.
//
// Three questions, answered on the --bench pdes workload (apps/pdes.h):
//   * kernel event throughput of the sharded engine vs shard count
//     (BM_PdesEventsPerSec/1..4 — speedup is events/s at N over events/s
//     at 1, since every shard count produces identical results);
//   * the price of the windowed protocol itself: one shard pays for
//     window computation and quiescence checks but never parks a worker,
//     so PdesEventsPerSec/1 vs PdesSerialEventsPerSec bounds the overhead
//     (BENCH_pdes.json budgets it at < 15%);
//   * cross-shard handoff rate: every NIC send between nodes on different
//     shards is one mailbox post + one migrated coroutine
//     (BM_PdesCrossShardPostsPerSec counts posts, not events).
//
// Results are recorded in BENCH_pdes.json and guarded by
// scripts/check_bench_regression.py. Note the shared CI container exposes
// a single core: shard workers oversubscribe it, so the recorded numbers
// show protocol cost, not parallel speedup — see the baseline host note.
#include <benchmark/benchmark.h>

#include "apps/ior.h"
#include "apps/pdes.h"
#include "apps/testbed.h"

namespace {

using namespace daosim;

apps::PdesOptions benchOptions(int sim_jobs) {
  apps::PdesOptions o;
  o.server_nodes = 4;
  o.client_nodes = 4;
  o.procs_per_node = 4;
  o.ops = 32;
  o.transfer = 1 << 20;
  o.sim_jobs = sim_jobs;
  return o;
}

/// Serial kernel (no ShardGroup at all) — the --sim-jobs 1 CLI default and
/// the denominator for the 1-shard protocol-overhead budget.
void BM_PdesSerialEventsPerSec(benchmark::State& state) {
  std::size_t events = 0;
  for (auto _ : state) {
    apps::PdesResult r = apps::runPdes(benchOptions(0));
    events += r.events;
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

/// Windowed ShardGroup with N shards; N == 1 exercises the full sync
/// protocol (windows, quiescence, mailbox flushes) without parallelism.
void BM_PdesEventsPerSec(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    apps::PdesResult r = apps::runPdes(benchOptions(shards));
    events += r.events;
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

/// The full DAOS protocol stack on the sharded kernel: IOR over daos-array
/// (RPC state machines, pool/container services, placement, VOS) on a
/// ShardGroup — the workload tests/shard_stack_test.cc pins for equality.
/// Items are kernel events across all shards, testbed deployment included.
void BM_IorShardedEventsPerSec(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    apps::DaosTestbed::Options opt;
    opt.server_nodes = 4;
    opt.client_nodes = 4;
    opt.with_dfuse = false;
    opt.sim_jobs = shards;
    apps::DaosTestbed tb(opt);
    apps::IorConfig cfg;
    cfg.ops = 12;
    apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
    apps::RunResult r = apps::runSpmdSharded(
        tb.cluster(), *tb.shardGroup(), tb.clientSubset(4), 2, tb.seed(),
        bench);
    events += tb.shardGroup()->stats().events;
    benchmark::DoNotOptimize(apps::runDigest(r));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

/// Cross-shard handoff rate: items are mailbox posts (each one a reserve +
/// migrate + re-schedule on the destination), on a 2-shard split where
/// every request/response crosses shards with high probability.
void BM_PdesCrossShardPostsPerSec(benchmark::State& state) {
  std::uint64_t posts = 0;
  for (auto _ : state) {
    apps::PdesResult r = apps::runPdes(benchOptions(2));
    posts += r.sync.cross_posts;
    benchmark::DoNotOptimize(r.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(posts));
}

}  // namespace

BENCHMARK(BM_PdesSerialEventsPerSec)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PdesEventsPerSec)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_IorShardedEventsPerSec)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_PdesCrossShardPostsPerSec)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
