// E8/E11 — Fig. 8 and §III-F: fdb-hammer on librados against a 16(+1 mon)
// node Ceph cluster (PG count 1024, no replication), plus the §III-F text
// experiments: IOR with an object per process (100 x 1 MiB to respect the
// 132 MiB object-size recommendation) and a placement-group-count ablation.
//
// Expected shape (paper): fdb-hammer reaches ~40 GiB/s write / ~70 GiB/s
// read — about two thirds of the hardware ideal (BlueStore amplification +
// OSD pipeline costs); IOR only manages ~25/50 (objects are not sharded, so
// one object binds to one OSD and few objects balance poorly); fewer PGs
// balance worse.
#include "apps/fdb.h"
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::CephTestbed;
using apps::SweepPoint;

CephTestbed::Options options16(SweepPoint pt, std::uint64_t seed,
                               int pg_count = 1024) {
  CephTestbed::Options opt;
  opt.osd_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.ceph.pg_count = pg_count;
  return opt;
}

apps::RunResult runFdb(SweepPoint pt, std::uint64_t seed, int pg_count) {
  CephTestbed tb(options16(pt, seed, pg_count));
  apps::FdbConfig cfg;
  cfg.fields = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 20000);
  apps::Fdb bench(tb.ioEnv(), "rados", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

apps::RunResult runIor(SweepPoint pt, std::uint64_t seed) {
  CephTestbed tb(options16(pt, seed));
  apps::IorConfig cfg;
  cfg.ops = 100;  // fits the per-process object within 132 MiB
  apps::Ior bench(tb.ioEnv(), "rados", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::envFullGrid()
                        ? apps::crossGrid({1, 4, 16, 32}, {1, 4, 16, 32})
                        : apps::crossGrid({4, 16, 32}, {4, 16});
  bench::registerSweep("fdb-hammer-rados-pg1024", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runFdb(pt, seed, 1024);
                       });
  bench::registerSweep("ior-rados", grid, runIor);
  // PG ablation (the paper tuned PGs and found 1024 optimal).
  const auto ablation = apps::crossGrid({16}, {16});
  for (int pgs : {64, 256, 1024}) {
    bench::registerSweep("fdb-rados-pg" + std::to_string(pgs), ablation,
                         [pgs](SweepPoint pt, std::uint64_t seed) {
                           return runFdb(pt, seed, pgs);
                         });
  }
  return bench::benchMain(
      argc, argv, "E8/E11 / Fig. 8 + §III-F: fdb-hammer + IOR on Ceph");
}
