// E3 — Fig. 3: the DAOS applications against a 16-server system:
// (a,b) IOR/HDF5 on DFUSE+IL, (c,d) IOR/HDF5 on libdaos,
// (e,f) Field I/O (SX KVs, S1 arrays), (g,h) fdb-hammer (S1 KVs and arrays).
// All perform the equivalent workload of 1 MiB per I/O, with ~10 KV
// operations per object for the two weather benchmarks.
//
// Expected shape (paper): Field I/O and fdb-hammer come close to plain IOR;
// Field I/O's read scaling is linear but trails fdb-hammer (size checks);
// both HDF5 variants trail everything, HDF5-on-libdaos worst (container per
// process + serialized OID/epoch metadata on the pool-service leader).
#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;

DaosTestbed::Options options16(SweepPoint pt, std::uint64_t seed,
                               bool with_dfuse) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = with_dfuse;
  return opt;
}

apps::RunResult runHdf5(std::string api, SweepPoint pt,
                        std::uint64_t seed) {
  DaosTestbed tb(options16(pt, seed, api == "hdf5"));
  apps::IorConfig cfg;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000),
                            /*total_target=*/20000);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

apps::RunResult runFieldIo(SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb(options16(pt, seed, false));
  apps::FieldIoConfig cfg;
  cfg.fields = apps::scaledOps(pt.totalProcs(), apps::envOps(1000),
                               /*total_target=*/20000);
  apps::FieldIo bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

apps::RunResult runFdb(SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb(options16(pt, seed, false));
  apps::FdbConfig cfg;
  cfg.fields = apps::scaledOps(pt.totalProcs(), apps::envOps(1000),
                               /*total_target=*/20000);
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ior_grid = apps::envFullGrid()
                            ? apps::crossGrid({1, 4, 16}, {1, 4, 16, 32})
                            : apps::crossGrid({1, 4, 16}, {4, 16});
  const auto app_grid = apps::envFullGrid()
                            ? apps::crossGrid({1, 4, 16, 32}, {1, 4, 16, 32})
                            : apps::crossGrid({1, 4, 16, 32}, {4, 16});

  bench::registerSweep("ior-hdf5", ior_grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runHdf5("hdf5", pt, seed);
                       });
  bench::registerSweep("ior-hdf5-daos", ior_grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runHdf5("hdf5-daos", pt, seed);
                       });
  bench::registerSweep("fieldio", app_grid, runFieldIo);
  bench::registerSweep("fdb-hammer-daos", app_grid, runFdb);
  return bench::benchMain(
      argc, argv, "E3 / Fig. 3: applications against a 16-server DAOS");
}
