// E6/E10 — Fig. 6 and §III-D: IOR and fdb-hammer against a 16-server DAOS
// system with data redundancy enabled.
//
//   * EC 2+1 for bulk data; directories/Key-Values use replication 2 (the
//     paper replicates constantly-modified index entities rather than
//     erasure-coding them);
//   * an RP_2 series reproduces the §III-D text experiment (write halves).
//
// Expected shape (paper): reads unaffected (~90 GiB/s); EC 2+1 writes cap
// at ~2/3 of no-redundancy (~40 GiB/s); replication-2 writes at ~1/2
// (~30 GiB/s). Both are hardware-optimal given the amplified volume.
#include "apps/fdb.h"
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;
using placement::ObjClass;

DaosTestbed::Options options16(SweepPoint pt, std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = false;
  return opt;
}

apps::RunResult runIor(ObjClass oclass, SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb(options16(pt, seed));
  apps::IorConfig cfg;
  cfg.oclass = oclass;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 40000);
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

apps::RunResult runFdb(ObjClass array_oclass, ObjClass kv_oclass,
                       SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb(options16(pt, seed));
  apps::FdbConfig cfg;
  cfg.array_oclass = array_oclass;
  cfg.kv_oclass = kv_oclass;
  cfg.fields = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 20000);
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::envFullGrid()
                        ? apps::crossGrid({4, 8, 16}, {4, 16, 32})
                        : apps::crossGrid({4, 16}, {16, 32});

  bench::registerSweep("ior-libdaos-ec2p1", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runIor(ObjClass::EC_2P1GX, pt, seed);
                       });
  bench::registerSweep("fdb-daos-ec2p1(kv-rp2)", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runFdb(ObjClass::EC_2P1G1, ObjClass::RP_2G1,
                                       pt, seed);
                       });
  bench::registerSweep("ior-libdaos-rp2", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runIor(ObjClass::RP_2GX, pt, seed);
                       });
  bench::registerSweep("fdb-daos-rp2", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runFdb(ObjClass::RP_2G1, ObjClass::RP_2G1, pt,
                                       seed);
                       });
  // No-redundancy reference series for the ratios.
  bench::registerSweep("ior-libdaos-none", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runIor(ObjClass::SX, pt, seed);
                       });
  return bench::benchMain(
      argc, argv, "E6/E10 / Fig. 6 + §III-D: redundancy on 16-server DAOS");
}
