// E9 — Fig. 9: fdb-hammer on 32 client nodes against the three deployments
// (16-server DAOS, 16+1 Lustre, 16+1 Ceph), superimposed; process count on
// the x axis.
//
// Expected shape (paper): DAOS wins both directions (small-I/O and
// metadata-friendly); Lustre matches DAOS for (buffered) writes but reads
// cap near 40 GiB/s on the MDS; Ceph lands at roughly two thirds of DAOS
// (~40 write / ~70 read).
#include "apps/fdb.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::SweepPoint;

constexpr int kClients = 32;

std::uint64_t fieldsFor(SweepPoint pt) {
  return apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 20000);
}

apps::RunResult runDaos(SweepPoint pt, std::uint64_t seed) {
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = kClients;
  opt.seed = seed;
  opt.with_dfuse = false;
  apps::DaosTestbed tb(opt);
  apps::FdbConfig cfg;
  cfg.fields = fieldsFor(pt);
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients),
                       pt.procs_per_node, bench);
}

apps::RunResult runLustre(SweepPoint pt, std::uint64_t seed) {
  apps::LustreTestbed::Options opt;
  opt.oss_nodes = 16;
  opt.client_nodes = kClients;
  opt.seed = seed;
  apps::LustreTestbed tb(opt);
  apps::FdbConfig cfg;
  cfg.fields = fieldsFor(pt);
  apps::Fdb bench(tb.ioEnv(8, 8 << 20), "lustre-posix", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients),
                       pt.procs_per_node, bench);
}

apps::RunResult runCeph(SweepPoint pt, std::uint64_t seed) {
  apps::CephTestbed::Options opt;
  opt.osd_nodes = 16;
  opt.client_nodes = kClients;
  opt.seed = seed;
  apps::CephTestbed tb(opt);
  apps::FdbConfig cfg;
  cfg.fields = fieldsFor(pt);
  apps::Fdb bench(tb.ioEnv(), "rados", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  // 32 client nodes fixed; processes per node on the x axis.
  std::vector<SweepPoint> grid;
  for (int n : {1, 2, 4, 8, 16}) grid.push_back({kClients, n});

  bench::registerSweep("fdb-hammer-daos", grid, runDaos);
  bench::registerSweep("fdb-hammer-lustre", grid, runLustre);
  bench::registerSweep("fdb-hammer-rados", grid, runCeph);
  return bench::benchMain(
      argc, argv,
      "E9 / Fig. 9: fdb-hammer, 32 client nodes, DAOS vs Lustre vs Ceph");
}
