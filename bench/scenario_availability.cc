// Fixed-seed availability scenario: the documented chaos walkthrough for
// the fault-injection subsystem (see DESIGN.md, "Fault model").
//
// Act 1 — chaos IOR: a replicated IOR run rides through a fixed fault
//   schedule (device slowdown, engine stall, NIC flap) under the chaos
//   retry policy. The run must complete with every fault applied and the
//   retry machinery visibly engaged.
//
// Act 2 — durability walkthrough: writes are paced over a target exclusion
//   chosen from the array's own layout, so the degraded read path and the
//   background rebuild both provably engage. Every acknowledged write must
//   read back bit-for-bit through the old (degraded) layout and through a
//   fresh open after rebuild.
//
// Prints a "health: OK" verdict and exits 0 only if every check holds —
// CI greps for the verdict line.
#include <cstdint>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/fault_injector.h"
#include "apps/ior.h"
#include "apps/runner.h"
#include "apps/testbed.h"
#include "daos/array.h"
#include "daos/client.h"
#include "daos/system.h"
#include "net/retry.h"
#include "sim/fault_plan.h"
#include "vos/payload.h"

namespace {

using namespace daosim;
using sim::FaultPlan;
using sim::FaultTopology;
using namespace sim::literals;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

// --- Act 1: chaos IOR ------------------------------------------------------

void chaosIor() {
  std::cout << "== act 1: replicated IOR under a fixed fault schedule ==\n";
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 4;
  opt.client_nodes = 4;
  opt.seed = 42;
  opt.with_dfuse = false;
  opt.daos.rpc_retry = net::RetryPolicy::chaosDefault();
  apps::DaosTestbed tb(opt);

  const FaultTopology topo{
      .targets = 4 * opt.daos.targets_per_engine, .engines = 4, .nodes = 8};
  FaultPlan plan = FaultPlan::parse(
      "slow@40ms:t7,x8; stall@80ms:e1,10ms; flap@120ms:n5,15ms;"
      "slow@160ms:t7,x1",
      topo);
  apps::FaultInjector injector(tb, plan);
  injector.install();

  apps::IorConfig cfg;
  cfg.transfer = 256 * hw::kKiB;
  cfg.ops = 100;
  cfg.oclass = placement::ObjClass::RP_2GX;
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  apps::RunResult r = apps::runSpmd(tb.sim(), tb.clients(), 4, bench);
  injector.rethrowIfFailed();
  injector.writeSummary(std::cout);

  const std::uint64_t expected_bytes =
      std::uint64_t(16) * cfg.ops * cfg.transfer;
  check(r.write().bytes == expected_bytes, "all writes completed");
  check(r.read().bytes == expected_bytes, "all reads completed");
  check(injector.stats().events_applied == plan.size(),
        "every fault event applied");
  check(tb.cluster().rpcRetries() > 0, "retry machinery engaged");
  check(tb.cluster().sendFailures() > 0, "NIC flap produced failed sends");
}

// --- Act 2: durability walkthrough ----------------------------------------

constexpr std::uint64_t kRecord = 64 * hw::kKiB;
constexpr int kRecords = 16;

struct Act2State {
  daos::Client* client = nullptr;
  daos::Container cont;
  std::optional<daos::Array> array;
  std::vector<std::uint8_t> acked = std::vector<std::uint8_t>(kRecords, 0);
  int degraded_mismatches = 0;
  int rebuilt_mismatches = 0;
};

sim::Task<void> createArray(std::shared_ptr<Act2State> st) {
  st->array = co_await daos::Array::create(
      *st->client, st->cont, st->client->nextOid(placement::ObjClass::RP_2G1),
      {.cell_size = 1, .chunk_size = 1 << 20});
}

sim::Task<void> pacedWriter(std::shared_ptr<Act2State> st) {
  for (int i = 0; i < kRecords; ++i) {
    vos::Payload rec = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    bool ok = true;
    try {
      co_await st->array->write(std::uint64_t(i) * kRecord, rec);
    } catch (const std::exception&) {
      ok = false;
    }
    st->acked[std::size_t(i)] = ok ? 1 : 0;
    co_await st->client->sim().delay(4_ms);
  }
}

sim::Task<void> verifier(std::shared_ptr<Act2State> st) {
  // Old layout first: the victim replica is gone, so these reads take the
  // surviving-replica (degraded) path.
  for (int i = 0; i < kRecords; ++i) {
    if (st->acked[std::size_t(i)] == 0) continue;
    vos::Payload want = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    vos::Payload got =
        co_await st->array->read(std::uint64_t(i) * kRecord, kRecord);
    if (!(got == want)) ++st->degraded_mismatches;
  }
  // Fresh open computes the post-exclusion layout: rebuild must have
  // repopulated the spare replica.
  daos::Array reopened = co_await daos::Array::open(
      *st->client, st->cont, st->array->oid());
  for (int i = 0; i < kRecords; ++i) {
    if (st->acked[std::size_t(i)] == 0) continue;
    vos::Payload want = vos::patternPayload(kRecord, std::uint64_t(i) + 1);
    vos::Payload got =
        co_await reopened.read(std::uint64_t(i) * kRecord, kRecord);
    if (!(got == want)) ++st->rebuilt_mismatches;
  }
}

void durabilityWalkthrough() {
  std::cout << "\n== act 2: acked writes survive a target exclusion ==\n";
  apps::DaosTestbed::Options opt;
  opt.server_nodes = 3;
  opt.client_nodes = 1;
  opt.seed = 42;
  opt.retain_data = true;
  opt.with_dfuse = false;
  opt.daos.rpc_retry = net::RetryPolicy::chaosDefault();
  apps::DaosTestbed tb(opt);

  daos::Client client(tb.daos(), tb.clients()[0], 7);
  auto st = std::make_shared<Act2State>();
  st->client = &client;
  st->cont = tb.container();
  auto ch = tb.sim().spawn(createArray(st));
  tb.sim().run();
  if (ch.failed()) std::rethrow_exception(ch.error());

  // Kill a replica the array actually uses, mid-write.
  const int victim =
      tb.daos().layout(st->array->oid()).target(/*group=*/0, /*member=*/0);
  FaultPlan plan;
  plan.add({.at = tb.sim().now() + 30_ms,
            .kind = sim::FaultKind::kTargetExclude,
            .subject = victim});
  std::cout << "  excluding target t" << victim
            << " (replica 0 of the array) at +30ms\n";
  apps::FaultInjector injector(tb, plan);
  injector.install();

  auto wh = tb.sim().spawn(pacedWriter(st));
  tb.sim().run();  // drains the writer, the exclusion and the rebuild
  if (wh.failed()) std::rethrow_exception(wh.error());
  injector.rethrowIfFailed();

  auto vh = tb.sim().spawn(verifier(st));
  tb.sim().run();
  if (vh.failed()) std::rethrow_exception(vh.error());
  injector.writeSummary(std::cout);

  int acked = 0;
  for (std::uint8_t a : st->acked) acked += a;
  const apps::FaultStats& stats = injector.stats();
  check(acked > 0, "some writes acknowledged (" + std::to_string(acked) +
                       "/" + std::to_string(kRecords) + ")");
  check(acked < kRecords || tb.daos().degradedReads() > 0,
        "exclusion landed mid-workload");
  check(st->degraded_mismatches == 0,
        "degraded reads return every acked byte");
  check(st->rebuilt_mismatches == 0,
        "post-rebuild reads return every acked byte");
  check(stats.rebuilds_completed == 1, "background rebuild completed");
  check(stats.records_unrecoverable == 0, "no unrecoverable records");
  check(tb.daos().degradedReads() > 0, "degraded read path engaged");
}

}  // namespace

int main() {
  try {
    chaosIor();
    durabilityWalkthrough();
  } catch (const std::exception& e) {
    std::cout << "unexpected exception: " << e.what() << "\n";
    ++g_failures;
  }
  std::cout << "\nhealth: " << (g_failures == 0 ? "OK" : "DEGRADED") << " ("
            << g_failures << " failed checks)\n";
  return g_failures == 0 ? 0 : 1;
}
