// Ablation — object-class sharding width.
//
// The paper states it "selected an object class of SX (sharding across all
// targets) ... as this was found to perform best" (§III-B). This ablation
// regenerates that tuning decision: IOR through libdaos on a 16-server
// system with S1 / S2 / S4 / S8 / SX arrays, plus a single-shared-file run
// (where sharding width matters most: one object carries all processes).
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;
using placement::ObjClass;

apps::RunResult runPoint(ObjClass oclass, bool shared, SweepPoint pt,
                         std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = false;
  DaosTestbed tb(opt);

  apps::IorConfig cfg;
  cfg.oclass = oclass;
  cfg.shared_file = shared;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 40000);
  apps::Ior bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::crossGrid({16}, {4, 16});
  const std::pair<const char*, ObjClass> classes[] = {
      {"S1", ObjClass::S1}, {"S2", ObjClass::S2}, {"S4", ObjClass::S4},
      {"S8", ObjClass::S8}, {"SX", ObjClass::SX},
  };
  for (const auto& [name, oc] : classes) {
    bench::registerSweep(std::string("ior-fpp-") + name, grid,
                         [oc = oc](SweepPoint pt, std::uint64_t seed) {
                           return runPoint(oc, false, pt, seed);
                         });
  }
  for (const auto& [name, oc] : classes) {
    bench::registerSweep(std::string("ior-shared-") + name, grid,
                         [oc = oc](SweepPoint pt, std::uint64_t seed) {
                           return runPoint(oc, true, pt, seed);
                         });
  }
  return bench::benchMain(
      argc, argv,
      "Ablation: object-class sharding width (why the paper picked SX)");
}
