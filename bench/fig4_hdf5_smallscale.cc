// E4 — Fig. 4: IOR on libdaos vs IOR/HDF5 on libdaos against a *4-server*
// DAOS system.
//
// Expected shape (paper): at this small scale the HDF5 DAOS adaptor can
// approach optimal hardware performance like plain IOR — the serialized
// pool-leader metadata path only becomes the bottleneck beyond ~4 servers
// (compare fig3/fig5).
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::IorConfig;
using apps::SweepPoint;

apps::RunResult runPoint(std::string api, SweepPoint pt,
                         std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 4;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = false;
  DaosTestbed tb(opt);

  IorConfig cfg;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000),
                            /*total_target=*/20000);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::envFullGrid()
                        ? apps::crossGrid({1, 2, 4, 8, 16}, {1, 4, 16, 32})
                        : apps::crossGrid({1, 4, 16}, {4, 16, 32});
  bench::registerSweep("ior-daos-array-4srv", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runPoint("daos-array", pt, seed);
                       });
  bench::registerSweep("ior-hdf5-daos-4srv", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runPoint("hdf5-daos", pt, seed);
                       });
  return bench::benchMain(
      argc, argv,
      "E4 / Fig. 4: IOR vs IOR/HDF5 on libdaos, 4-server DAOS");
}
