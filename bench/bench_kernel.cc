// Kernel microbenchmarks: raw event-loop throughput, independent of any
// storage model. These are the numbers the pooled frame allocator and the
// two-level event queue are meant to move (see DESIGN.md "Kernel
// performance"); before/after results live in BENCH_kernel.json.
//
//   events_per_sec  — delay-driven ping-pong through the event queue
//   spawn_per_sec   — spawn/join churn (frame + join-state allocation path)
//   timer_churn     — wide-range random timers (stresses queue ordering)
//   handoff_per_sec — semaphore hand-offs at equal timestamps (now-path)
#include <benchmark/benchmark.h>

#include <cstdint>

#include "sim/queue_station.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace {

using namespace daosim;
using sim::Simulation;
using sim::Task;
using sim::Time;

// N processes each sleeping K times with staggered delays: every event is a
// queue push + pop with a nontrivial ordering decision.
void BM_EventsPerSec(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int steps = 200;
  std::size_t events = 0;
  for (auto _ : state) {
    Simulation sim(7);
    for (int p = 0; p < procs; ++p) {
      sim.spawn([](Simulation& s, int id) -> Task<void> {
        for (int i = 0; i < steps; ++i) {
          co_await s.delay(static_cast<Time>(100 + (id * 37 + i * 13) % 900));
        }
      }(sim, p));
    }
    events += sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventsPerSec)->Arg(64)->Arg(1024);

// Spawn/join churn: each iteration spawns a batch of trivial processes and
// joins them. Dominated by coroutine-frame and join-state allocation.
void BM_SpawnPerSec(benchmark::State& state) {
  const int batch = 4096;
  std::size_t spawned = 0;
  for (auto _ : state) {
    Simulation sim(3);
    sim.spawn([](Simulation& s, int n) -> Task<void> {
      for (int i = 0; i < n; ++i) {
        auto h = s.spawn([](Simulation& sm) -> Task<void> {
          co_await sm.delay(10);
        }(s));
        co_await h.join();
      }
    }(sim, batch));
    sim.run();
    spawned += static_cast<std::size_t>(batch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spawned));
}
BENCHMARK(BM_SpawnPerSec);

// Wide-range random timers: a mix of sub-microsecond, microsecond and
// millisecond delays so events land near and far from the current time.
void BM_TimerChurn(benchmark::State& state) {
  const int procs = 256;
  const int steps = 100;
  std::size_t events = 0;
  for (auto _ : state) {
    Simulation sim(11);
    for (int p = 0; p < procs; ++p) {
      sim.spawn([](Simulation& s) -> Task<void> {
        for (int i = 0; i < steps; ++i) {
          const std::uint64_t r = s.rng()();
          Time d;
          switch (r % 4) {
            case 0: d = static_cast<Time>(r % 1000); break;          // <1us
            case 1: d = static_cast<Time>(1000 + r % 100000); break; // ~us
            case 2: d = static_cast<Time>(r % 2000000); break;       // <2ms
            default: d = static_cast<Time>(r % 20000000); break;     // <20ms
          }
          co_await s.delay(d);
        }
      }(sim));
    }
    events += sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TimerChurn);

// Same-timestamp hand-off chains: contended single-server station, so every
// release schedules the next waiter at the current instant.
void BM_HandoffPerSec(benchmark::State& state) {
  const int procs = 512;
  const int rounds = 40;
  std::size_t events = 0;
  for (auto _ : state) {
    Simulation sim(5);
    sim::QueueStation st(sim, "dev", 1);
    for (int p = 0; p < procs; ++p) {
      sim.spawn([](sim::QueueStation& q, int n) -> Task<void> {
        for (int i = 0; i < n; ++i) co_await q.exec(5);
      }(st, rounds));
    }
    events += sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_HandoffPerSec);

}  // namespace

BENCHMARK_MAIN();
