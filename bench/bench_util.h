// Shared scaffolding for the per-figure benchmark binaries.
//
// Each figure binary registers one google-benchmark case per sweep point;
// a case runs DAOSIM_REPS (default 3) fresh testbeds with different seeds,
// reports mean/stddev bandwidths plus p99 op latency as counters, and
// accumulates rows for the paper-style table printed after the run (which
// includes p50/p95/p99 latency columns). DAOSIM_OPS scales per-process op
// counts; see apps/sweep.h. DAOSIM_TRACE / DAOSIM_METRICS write a
// Chrome-trace JSON / metrics file for the last run executed (the export
// happens inside apps::runSpmd; see apps/runner.cc).
//
// Parallel sweeps: with DAOSIM_JOBS > 1, the first case to execute launches
// every registered (point × repetition) run onto a sim::ParallelRunner
// worker pool, and each case then just collects its own repetitions. Every
// run is a self-contained, seed-deterministic Simulation, and repetitions
// are always aggregated in (rep 0..R-1) submission order, so the resulting
// tables are bitwise-identical to a serial (DAOSIM_JOBS=1) sweep. Two
// caveats: per-case google-benchmark timings shift onto whichever case
// waits, so only total wall clock is meaningful; and --benchmark_filter
// does not prevent unselected registered points from being computed.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "apps/sweep.h"
#include "apps/telemetry_probes.h"
#include "sim/parallel.h"

namespace daosim::bench {

using apps::Measurement;
using apps::Series;
using apps::SweepPoint;

/// Guards the series table; point runs may complete on pool workers.
inline std::mutex& seriesMutex() {
  static std::mutex mu;
  return mu;
}

/// Rows accumulated per series for the end-of-run table. A deque (not a
/// vector): seriesNamed hands out references that must survive later
/// insertions.
inline std::deque<Series>& allSeries() {
  static std::deque<Series> series;
  return series;
}

/// Named lookup-or-create; callers needing cross-thread safety must hold
/// seriesMutex() (registration and table printing are single-threaded).
inline Series& seriesNamed(const std::string& name) {
  for (auto& s : allSeries()) {
    if (s.name == name) return s;
  }
  allSeries().push_back(Series{name, {}});
  return allSeries().back();
}

/// A point runner: executes one full benchmark run (fresh testbed) for one
/// repetition and returns its result. Called DAOSIM_REPS times per point.
using PointRunner =
    std::function<apps::RunResult(SweepPoint, std::uint64_t seed)>;

namespace detail {

/// One registered sweep point and, once launched, its in-flight repetitions.
struct SweepCase {
  SweepPoint pt;
  PointRunner runner;
  std::vector<std::future<apps::RunResult>> futures;
  bool launched = false;
};

inline std::vector<std::shared_ptr<SweepCase>>& sweepRegistry() {
  static std::vector<std::shared_ptr<SweepCase>> cases;
  return cases;
}

inline sim::ParallelRunner& sweepPool() {
  static sim::ParallelRunner pool;  // DAOSIM_JOBS workers
  return pool;
}

/// Launches every registered case's repetitions onto the pool, in
/// registration × repetition order. No-op in serial mode (jobs == 1), where
/// each case runs its repetitions inline as before.
inline void launchAllSweeps() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (sweepPool().jobs() <= 1) return;
    const int reps = apps::envReps();
    for (auto& c : sweepRegistry()) {
      for (int rep = 0; rep < reps; ++rep) {
        c->futures.push_back(sweepPool().submit(
            [c, rep] { return c->runner(c->pt, static_cast<std::uint64_t>(rep + 1)); }));
      }
      c->launched = true;
    }
  });
}

}  // namespace detail

/// Registers one google-benchmark case per sweep point for `series`.
inline void registerSweep(const std::string& series,
                          const std::vector<SweepPoint>& grid,
                          PointRunner runner, bool show_iops = false,
                          const std::string& col1 = "clients") {
  seriesNamed(series).col1 = col1;
  for (const SweepPoint& pt : grid) {
    const std::string name = series + "/c" + std::to_string(pt.client_nodes) +
                             "/n" + std::to_string(pt.procs_per_node);
    auto cs = std::make_shared<detail::SweepCase>();
    cs->pt = pt;
    cs->runner = runner;
    detail::sweepRegistry().push_back(cs);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [series, cs, show_iops](benchmark::State& state) {
          Measurement m;
          m.point = cs->pt;
          for (auto _ : state) {
            detail::launchAllSweeps();
            if (cs->launched) {
              for (auto& f : cs->futures) m.add(f.get());
            } else {
              const int reps = apps::envReps();
              for (int rep = 0; rep < reps; ++rep) {
                m.add(cs->runner(cs->pt, static_cast<std::uint64_t>(rep + 1)));
              }
            }
          }
          if (show_iops) {
            state.counters["write_kIOPS"] = m.write_kiops.mean();
            state.counters["write_kIOPS_sd"] = m.write_kiops.stddev();
            state.counters["read_kIOPS"] = m.read_kiops.mean();
            state.counters["read_kIOPS_sd"] = m.read_kiops.stddev();
          } else {
            state.counters["write_GiBps"] = m.write_gibps.mean();
            state.counters["write_GiBps_sd"] = m.write_gibps.stddev();
            state.counters["read_GiBps"] = m.read_gibps.mean();
            state.counters["read_GiBps_sd"] = m.read_gibps.stddev();
          }
          state.counters["write_p99_us"] =
              static_cast<double>(m.write_lat.percentile(99)) / 1e3;
          state.counters["read_p99_us"] =
              static_cast<double>(m.read_lat.percentile(99)) / 1e3;
          std::lock_guard<std::mutex> lock(seriesMutex());
          seriesNamed(series).points.push_back(m);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

/// main() body for every figure binary: run benchmarks, then print the
/// paper-style tables to stderr.
inline int benchMain(int argc, char** argv, const char* figure_title,
                     bool show_iops = false) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // DAOSIM_TELEMETRY: every run registered a labelled registry with
  // TelemetryHub::global(); write the merged dump now that the pool has
  // drained. Labels encode (series, point, seed), so the file is identical
  // for serial and DAOSIM_JOBS>1 sweeps.
  apps::flushTelemetryEnv();
  std::cerr << "\n#### " << figure_title << " ####\n";
  std::lock_guard<std::mutex> lock(seriesMutex());
  for (const auto& s : allSeries()) {
    apps::printSeries(std::cerr, s, show_iops);
  }
  return 0;
}

}  // namespace daosim::bench
