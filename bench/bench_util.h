// Shared scaffolding for the per-figure benchmark binaries.
//
// Each figure binary registers one google-benchmark case per sweep point;
// a case runs DAOSIM_REPS (default 3) fresh testbeds with different seeds,
// reports mean/stddev bandwidths plus p99 op latency as counters, and
// accumulates rows for the paper-style table printed after the run (which
// includes p50/p95/p99 latency columns). DAOSIM_OPS scales per-process op
// counts; see apps/sweep.h. DAOSIM_TRACE / DAOSIM_METRICS write a
// Chrome-trace JSON / metrics file for the last run executed (the export
// happens inside apps::runSpmd; see apps/runner.cc).
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "apps/sweep.h"

namespace daosim::bench {

using apps::Measurement;
using apps::Series;
using apps::SweepPoint;

/// Rows accumulated per series for the end-of-run table.
inline std::vector<Series>& allSeries() {
  static std::vector<Series> series;
  return series;
}

inline Series& seriesNamed(const std::string& name) {
  for (auto& s : allSeries()) {
    if (s.name == name) return s;
  }
  allSeries().push_back(Series{name, {}});
  return allSeries().back();
}

/// A point runner: executes one full benchmark run (fresh testbed) for one
/// repetition and returns its result. Called DAOSIM_REPS times per point.
using PointRunner =
    std::function<apps::RunResult(SweepPoint, std::uint64_t seed)>;

/// Registers one google-benchmark case per sweep point for `series`.
inline void registerSweep(const std::string& series,
                          const std::vector<SweepPoint>& grid,
                          PointRunner runner, bool show_iops = false,
                          const std::string& col1 = "clients") {
  seriesNamed(series).col1 = col1;
  for (const SweepPoint& pt : grid) {
    const std::string name = series + "/c" + std::to_string(pt.client_nodes) +
                             "/n" + std::to_string(pt.procs_per_node);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [series, pt, runner, show_iops](benchmark::State& state) {
          Measurement m;
          m.point = pt;
          for (auto _ : state) {
            const int reps = apps::envReps();
            for (int rep = 0; rep < reps; ++rep) {
              m.add(runner(pt, static_cast<std::uint64_t>(rep + 1)));
            }
          }
          if (show_iops) {
            state.counters["write_kIOPS"] = m.write_kiops.mean();
            state.counters["write_kIOPS_sd"] = m.write_kiops.stddev();
            state.counters["read_kIOPS"] = m.read_kiops.mean();
            state.counters["read_kIOPS_sd"] = m.read_kiops.stddev();
          } else {
            state.counters["write_GiBps"] = m.write_gibps.mean();
            state.counters["write_GiBps_sd"] = m.write_gibps.stddev();
            state.counters["read_GiBps"] = m.read_gibps.mean();
            state.counters["read_GiBps_sd"] = m.read_gibps.stddev();
          }
          state.counters["write_p99_us"] =
              static_cast<double>(m.write_lat.percentile(99)) / 1e3;
          state.counters["read_p99_us"] =
              static_cast<double>(m.read_lat.percentile(99)) / 1e3;
          seriesNamed(series).points.push_back(m);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

/// main() body for every figure binary: run benchmarks, then print the
/// paper-style tables to stderr.
inline int benchMain(int argc, char** argv, const char* figure_title,
                     bool show_iops = false) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cerr << "\n#### " << figure_title << " ####\n";
  for (const auto& s : allSeries()) {
    apps::printSeries(std::cerr, s, show_iops);
  }
  return 0;
}

}  // namespace daosim::bench
