// E7 — Fig. 7: fdb-hammer POSIX backend against a 16(+1 MDS)-node Lustre
// system; files striped over 8 OSTs at 8 MiB. An IOR series reproduces the
// §III-E text result ("IOR on Lustre reaches close to optimal hardware
// performance", not shown as a figure in the paper).
//
// Expected shape (paper): fdb-hammer writes come close to IOR (buffered
// large blocks); reads cap around 40 GiB/s — every field retrieve performs
// open/read/close on the index and data files and the single MDS saturates.
#include "apps/fdb.h"
#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::LustreTestbed;
using apps::SweepPoint;

LustreTestbed::Options options16(SweepPoint pt, std::uint64_t seed) {
  LustreTestbed::Options opt;
  opt.oss_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  return opt;
}

apps::RunResult runFdb(SweepPoint pt, std::uint64_t seed) {
  LustreTestbed tb(options16(pt, seed));
  apps::FdbConfig cfg;
  cfg.fields = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 20000);
  apps::Fdb bench(tb.ioEnv(/*stripe_count=*/8, /*stripe_size=*/8 << 20),
                  "lustre-posix", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

apps::RunResult runIor(SweepPoint pt, std::uint64_t seed) {
  LustreTestbed tb(options16(pt, seed));
  apps::IorConfig cfg;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000), 40000);
  apps::Ior bench(tb.ioEnv(/*stripe_count=*/8, /*stripe_size=*/8 << 20),
                  "lustre-posix", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::envFullGrid()
                        ? apps::crossGrid({1, 4, 16, 32}, {1, 4, 16, 32})
                        : apps::crossGrid({4, 16, 32}, {4, 16});
  bench::registerSweep("fdb-hammer-lustre", grid, runFdb);
  bench::registerSweep("ior-lustre", grid, runIor);
  return bench::benchMain(
      argc, argv, "E7 / Fig. 7: fdb-hammer + IOR on 16+1-node Lustre");
}
