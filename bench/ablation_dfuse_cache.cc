// Ablation — DFUSE client caching.
//
// The paper ran DFUSE with all caching disabled (§III-B); dfuse itself
// offers attr/dentry/data caches. This ablation quantifies what the knobs
// do for a re-read-heavy POSIX workload: each process writes a file once,
// then reads the same blocks repeatedly. With the data cache on, repeat
// reads are served from the client page cache without touching the servers.
#include "apps/runner.h"
#include "apps/testbed.h"
#include "bench_util.h"
#include "posix/dfuse.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;

class RereadBench final : public apps::SpmdBenchmark {
 public:
  RereadBench(DaosTestbed& tb, std::uint64_t ops, int passes)
      : tb_(&tb), ops_(ops), passes_(passes) {}

  sim::Task<void> process(apps::ProcContext ctx) override {
    posix::DfuseVfs vfs(tb_->daemon(ctx.node));
    const std::string path = "/bench/reread." + std::to_string(ctx.rank);
    posix::Fd fd = co_await vfs.open(path, posix::OpenFlags::writeCreate());

    co_await ctx.barrier->arriveAndWait();
    for (std::uint64_t i = 0; i < ops_; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await vfs.pwrite(fd, i << 20, vos::Payload::synthetic(1 << 20));
      ctx.record(apps::kWrite, 1 << 20, t0);
    }
    co_await ctx.barrier->arriveAndWait();
    for (int pass = 0; pass < passes_; ++pass) {
      for (std::uint64_t i = 0; i < ops_; ++i) {
        const sim::Time t0 = ctx.sim->now();
        (void)co_await vfs.pread(fd, i << 20, 1 << 20);
        ctx.record(apps::kRead, 1 << 20, t0);
      }
    }
    co_await vfs.close(fd);
  }

 private:
  DaosTestbed* tb_;
  std::uint64_t ops_;
  int passes_;
};

apps::RunResult runPoint(bool caches, SweepPoint pt, std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.dfuse.attr_cache = caches;
  opt.dfuse.dentry_cache = caches;
  opt.dfuse.data_cache = caches;
  DaosTestbed tb(opt);

  RereadBench bench(tb,
                    apps::scaledOps(pt.totalProcs(), apps::envOps(200), 8000),
                    /*passes=*/3);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::crossGrid({4, 16}, {8});
  bench::registerSweep("dfuse-no-cache(paper)", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runPoint(false, pt, seed);
                       });
  bench::registerSweep("dfuse-all-caches", grid,
                       [](SweepPoint pt, std::uint64_t seed) {
                         return runPoint(true, pt, seed);
                       });
  return bench::benchMain(
      argc, argv, "Ablation: DFUSE caching on a re-read workload (3 passes)");
}
