// E5 — Fig. 5: write/read scalability of every DAOS API and application
// with server count (1..64), no redundancy, at the optimal client
// configuration found in Figs. 1/3 (16 client nodes x 16 processes).
//
// Expected shape (paper): near-linear scaling to 24 servers for IOR on all
// four APIs and for Field I/O / fdb-hammer; HDF5-on-DFUSE+IL reaches about
// half and flattens around 16 servers; HDF5-on-libdaos stops scaling beyond
// ~4 servers (serialized adaptor metadata). The 32/48/64-server points
// extend past the paper's measured range; they run on the sharded kernel
// where the API allows it (DESIGN.md §11c), which is what makes them
// affordable by default.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;

constexpr int kClients = 16;
constexpr int kPpn = 16;

// Beyond the paper's 24-engine ceiling, deploy on the sharded kernel.
constexpr int kShardThresholdServers = 32;
constexpr int kShards = 4;

// Wall-clock guard for the extended points: once the process has been
// running for DAOSIM_FIG5_BUDGET_S seconds (default 900, 0 = unlimited),
// remaining >= 32-server points are skipped (reported as zero rows) so a
// default run cannot blow a CI time budget. The paper-range points always
// run.
std::chrono::steady_clock::time_point processStart() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

bool overBudget() {
  static const long budget_s = [] {
    const char* v = std::getenv("DAOSIM_FIG5_BUDGET_S");
    return v == nullptr ? 900L : std::atol(v);
  }();
  if (budget_s <= 0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - processStart();
  return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count() >=
         budget_s;
}

bool skipExtendedPoint(const char* series, int servers) {
  if (servers < kShardThresholdServers || !overBudget()) return false;
  std::fprintf(stderr,
               "fig5: wall-clock budget exhausted (DAOSIM_FIG5_BUDGET_S); "
               "skipping %s at %d servers (zero row)\n",
               series, servers);
  return true;
}

// Run label for DAOSIM_TELEMETRY dumps ("s" = server count on this figure).
std::string runLabel(const std::string& series, SweepPoint pt,
                     std::uint64_t seed) {
  return series + "/s" + std::to_string(pt.client_nodes) + "/rep/" +
         std::to_string(seed);
}

DaosTestbed makeTestbed(int servers, std::uint64_t seed, bool with_dfuse) {
  DaosTestbed::Options opt;
  opt.server_nodes = servers;
  opt.client_nodes = kClients;
  opt.seed = seed;
  opt.with_dfuse = with_dfuse;
  // Extended points deploy on the sharded kernel when no FUSE daemon is
  // required; dfuse-backed APIs stay serial at every size (§11c).
  if (servers >= kShardThresholdServers && !with_dfuse) {
    opt.sim_jobs = kShards;
  }
  return DaosTestbed(opt);
}

/// Harness dispatch, as in daosim_run: sharded testbeds run on the
/// ShardGroup harness, serial ones on the frozen serial harness.
/// Telemetry only attaches serially (samplers bind to one simulation).
apps::RunResult runOn(DaosTestbed& tb, const std::string& label,
                      apps::SpmdBenchmark& bench) {
  if (tb.shardGroup() != nullptr) {
    return apps::runSpmdSharded(tb.cluster(), *tb.shardGroup(),
                                tb.clientSubset(kClients), kPpn, tb.seed(),
                                bench);
  }
  apps::ScopedRunTelemetry telem(tb.sim(), label);
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

// The sweep "client_nodes" column carries the *server* count here.
apps::RunResult runIor(std::string api, SweepPoint pt,
                       std::uint64_t seed) {
  if (skipExtendedPoint(("ior-" + api).c_str(), pt.client_nodes)) return {};
  const bool needs_dfuse =
      api == "dfuse" || api == "dfuse-il" || api == "hdf5";
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, needs_dfuse);
  apps::IorConfig cfg;
  const bool hdf5 = api == "hdf5" || api == "hdf5-daos";
  cfg.ops = apps::scaledOps(kClients * kPpn, apps::envOps(1000),
                            hdf5 ? 20000 : 40000);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return runOn(tb, runLabel("ior-" + api, pt, seed), bench);
}

apps::RunResult runFieldIo(SweepPoint pt, std::uint64_t seed) {
  if (skipExtendedPoint("fieldio", pt.client_nodes)) return {};
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, false);
  apps::FieldIoConfig cfg;
  cfg.fields = apps::scaledOps(kClients * kPpn, apps::envOps(1000), 20000);
  apps::FieldIo bench(tb.ioEnv(), "daos-array", cfg);
  return runOn(tb, runLabel("fieldio", pt, seed), bench);
}

apps::RunResult runFdb(SweepPoint pt, std::uint64_t seed) {
  if (skipExtendedPoint("fdb-hammer-daos", pt.client_nodes)) return {};
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, false);
  apps::FdbConfig cfg;
  cfg.fields = apps::scaledOps(kClients * kPpn, apps::envOps(1000), 20000);
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  return runOn(tb, runLabel("fdb-hammer-daos", pt, seed), bench);
}

}  // namespace

int main(int argc, char** argv) {
  // Server counts on the x axis (as SweepPoint.client_nodes). The paper
  // stops at 24 engines; the 32/48/64 points probe where the simulated
  // systems stop scaling, and run by default now that sharded deployment
  // (DESIGN.md §11c) makes them affordable — guarded by
  // DAOSIM_FIG5_BUDGET_S above.
  std::vector<apps::SweepPoint> servers;
  for (int s : {1, 2, 4, 8, 16, 24, 32, 48, 64}) servers.push_back({s, kPpn});

  // One sweep series per io::Backend registry name.
  for (const char* api :
       {"daos-array", "dfs", "dfuse", "dfuse-il", "hdf5", "hdf5-daos"}) {
    bench::registerSweep(
        std::string("ior-") + api, servers,
        [api = std::string(api)](SweepPoint pt, std::uint64_t seed) {
          return runIor(api, pt, seed);
        },
        /*show_iops=*/false, /*col1=*/"servers");
  }
  bench::registerSweep("fieldio", servers, runFieldIo, false, "servers");
  bench::registerSweep("fdb-hammer-daos", servers, runFdb, false, "servers");
  return bench::benchMain(
      argc, argv,
      "E5 / Fig. 5: scalability with DAOS server count (16x16 clients)");
}
