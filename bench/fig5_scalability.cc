// E5 — Fig. 5: write/read scalability of every DAOS API and application
// with server count (1..24), no redundancy, at the optimal client
// configuration found in Figs. 1/3 (16 client nodes x 16 processes).
//
// Expected shape (paper): near-linear scaling to 24 servers for IOR on all
// four APIs and for Field I/O / fdb-hammer; HDF5-on-DFUSE+IL reaches about
// half and flattens around 16 servers; HDF5-on-libdaos stops scaling beyond
// ~4 servers (serialized adaptor metadata).
#include "apps/fdb.h"
#include "apps/fieldio.h"
#include "apps/ior.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;

constexpr int kClients = 16;
constexpr int kPpn = 16;

// Run label for DAOSIM_TELEMETRY dumps ("s" = server count on this figure).
std::string runLabel(const std::string& series, SweepPoint pt,
                     std::uint64_t seed) {
  return series + "/s" + std::to_string(pt.client_nodes) + "/rep/" +
         std::to_string(seed);
}

DaosTestbed makeTestbed(int servers, std::uint64_t seed, bool with_dfuse) {
  DaosTestbed::Options opt;
  opt.server_nodes = servers;
  opt.client_nodes = kClients;
  opt.seed = seed;
  opt.with_dfuse = with_dfuse;
  return DaosTestbed(opt);
}

// The sweep "client_nodes" column carries the *server* count here.
apps::RunResult runIor(std::string api, SweepPoint pt,
                       std::uint64_t seed) {
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, api != "daos-array");
  apps::ScopedRunTelemetry telem(tb.sim(),
                                 runLabel("ior-" + api, pt, seed));
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);
  apps::IorConfig cfg;
  const bool hdf5 = api == "hdf5" || api == "hdf5-daos";
  cfg.ops = apps::scaledOps(kClients * kPpn, apps::envOps(1000),
                            hdf5 ? 20000 : 40000);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

apps::RunResult runFieldIo(SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, false);
  apps::ScopedRunTelemetry telem(tb.sim(), runLabel("fieldio", pt, seed));
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);
  apps::FieldIoConfig cfg;
  cfg.fields = apps::scaledOps(kClients * kPpn, apps::envOps(1000), 20000);
  apps::FieldIo bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

apps::RunResult runFdb(SweepPoint pt, std::uint64_t seed) {
  DaosTestbed tb = makeTestbed(pt.client_nodes, seed, false);
  apps::ScopedRunTelemetry telem(tb.sim(),
                                 runLabel("fdb-hammer-daos", pt, seed));
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);
  apps::FdbConfig cfg;
  cfg.fields = apps::scaledOps(kClients * kPpn, apps::envOps(1000), 20000);
  apps::Fdb bench(tb.ioEnv(), "daos-array", cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

}  // namespace

int main(int argc, char** argv) {
  // Server counts on the x axis (as SweepPoint.client_nodes). The paper
  // stops at 24 engines; DAOSIM_FULL_GRID=1 extends the sweep past the
  // measured range to probe where the simulated systems stop scaling.
  std::vector<apps::SweepPoint> servers;
  for (int s : {1, 2, 4, 8, 16, 24}) servers.push_back({s, kPpn});
  if (apps::envFullGrid()) {
    for (int s : {32, 48, 64}) servers.push_back({s, kPpn});
  }

  // One sweep series per io::Backend registry name.
  for (const char* api :
       {"daos-array", "dfs", "dfuse", "dfuse-il", "hdf5", "hdf5-daos"}) {
    bench::registerSweep(
        std::string("ior-") + api, servers,
        [api = std::string(api)](SweepPoint pt, std::uint64_t seed) {
          return runIor(api, pt, seed);
        },
        /*show_iops=*/false, /*col1=*/"servers");
  }
  bench::registerSweep("fieldio", servers, runFieldIo, false, "servers");
  bench::registerSweep("fdb-hammer-daos", servers, runFdb, false, "servers");
  return bench::benchMain(
      argc, argv,
      "E5 / Fig. 5: scalability with DAOS server count (16x16 clients)");
}
