// Ablation — transfer size.
//
// The paper's conclusion hinges on 1 MiB being "much smaller than any
// distributed file system could support while preserving high performance";
// Fig. 2 probes 1 KiB. This ablation sweeps the transfer size from 4 KiB to
// 4 MiB through libdaos and through DFUSE, showing where each path's
// bandwidth saturates and how the FUSE per-op overhead fades as transfers
// grow (the crossover behind the paper's Fig. 1 vs Fig. 2 observations).
#include <algorithm>

#include "apps/ior.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::SweepPoint;

apps::RunResult runPoint(std::string api, std::uint64_t transfer,
                         SweepPoint pt, std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = api != "daos-array";
  DaosTestbed tb(opt);

  apps::IorConfig cfg;
  cfg.transfer = transfer;
  // Keep the moved volume roughly constant across sizes (bounded so small
  // transfers stay affordable: there they are op-rate-bound anyway).
  const std::uint64_t total_ops = std::clamp<std::uint64_t>(
      (40ULL << 30) / transfer, 20000, 400000);
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(4000), total_ops);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  // "ppn" column carries log2(transfer KiB); fixed 16 clients x 16 procs.
  const int kClients = 16;
  const int kPpn = 16;
  for (std::uint64_t kib : {4ULL, 64ULL, 256ULL, 1024ULL, 4096ULL}) {
    const SweepPoint pt{kClients, kPpn};
    const std::string suffix = std::to_string(kib) + "KiB";
    bench::registerSweep("ior-daos-array-" + suffix, {pt},
                         [kib](SweepPoint p, std::uint64_t seed) {
                           return runPoint("daos-array", kib << 10, p, seed);
                         });
    bench::registerSweep("ior-dfuse-" + suffix, {pt},
                         [kib](SweepPoint p, std::uint64_t seed) {
                           return runPoint("dfuse", kib << 10, p, seed);
                         });
  }
  return bench::benchMain(argc, argv,
                          "Ablation: transfer size, libdaos vs DFUSE");
}
