// E2 — Fig. 2: IOR with 1 KiB transfers on DFUSE vs DFUSE+IL (IOPS),
// against a 16-server DAOS system.
//
// Expected shape (paper): the interception library's benefit is "very
// noticeable" at this I/O size — DFUSE pays two kernel crossings and a FUSE
// thread per op; the IL forwards read/write straight to libdfs.
#include "apps/ior.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::IorConfig;
using apps::SweepPoint;

apps::RunResult runPoint(std::string api, SweepPoint pt,
                         std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  DaosTestbed tb(opt);
  apps::ScopedRunTelemetry telem(
      tb.sim(), "ior-" + api + "-1KiB/c" + std::to_string(pt.client_nodes) +
                    "/n" + std::to_string(pt.procs_per_node) + "/rep/" +
                    std::to_string(seed));
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);

  IorConfig cfg;
  cfg.transfer = 1024;  // 1 KiB
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(4000),
                            /*total_target=*/400000);
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid = apps::envFullGrid()
                        ? apps::crossGrid({1, 2, 4, 8, 16}, {4, 16, 32})
                        : apps::crossGrid({1, 4, 16}, {4, 16, 32});
  bench::registerSweep(
      "ior-dfuse-1KiB", grid,
      [](SweepPoint pt, std::uint64_t seed) {
        return runPoint("dfuse", pt, seed);
      },
      /*show_iops=*/true);
  bench::registerSweep(
      "ior-dfuse-il-1KiB", grid,
      [](SweepPoint pt, std::uint64_t seed) {
        return runPoint("dfuse-il", pt, seed);
      },
      /*show_iops=*/true);
  return bench::benchMain(argc, argv,
                          "E2 / Fig. 2: DFUSE vs DFUSE+IL at 1 KiB (IOPS)",
                          /*show_iops=*/true);
}
