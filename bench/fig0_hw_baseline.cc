// E0 — §III-A hardware baselines.
//
// Reproduces the paper's raw measurements on the simulated hardware:
//   * dd-style parallel writes/reads of 100 MiB blocks to all 16 NVMe
//     drives of one server node (paper: 3.86 GiB/s write, 7 GiB/s read);
//   * iperf-style streaming between two nodes (paper: 50 Gbps = 6.25 GiB/s
//     each direction).
#include <benchmark/benchmark.h>

#include <iostream>

#include "hw/cluster.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace {

using namespace daosim;
using hw::kMiB;
using sim::Task;

double ddAggregate(bool read_phase) {
  sim::Simulation sim;
  std::vector<std::unique_ptr<hw::NvmeDevice>> drives;
  for (int i = 0; i < 16; ++i) {
    drives.push_back(std::make_unique<hw::NvmeDevice>(
        sim, hw::NvmeSpec{}, "d" + std::to_string(i)));
  }
  const std::uint64_t block = 100 * kMiB;
  const int blocks = 1000;  // the paper's dd block count
  for (auto& d : drives) {
    sim.spawn([](hw::NvmeDevice& dev, int n, std::uint64_t b,
                 bool rd) -> Task<void> {
      for (int i = 0; i < n; ++i) {
        if (rd) {
          co_await dev.read(b);
        } else {
          co_await dev.write(b);
        }
      }
    }(*d, blocks, block, read_phase));
  }
  sim.run();
  return 16.0 * blocks * static_cast<double>(block) / (1ULL << 30) /
         sim::toSeconds(sim.now());
}

double iperfGibps() {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto a = cluster.addNode(hw::NodeSpec::client());
  auto b = cluster.addNode(hw::NodeSpec::client());
  const int msgs = 2000;
  const std::uint64_t sz = 8 * kMiB;
  sim.spawn([](hw::Cluster& c, hw::NodeId s, hw::NodeId d, int n,
               std::uint64_t sz) -> Task<void> {
    for (int i = 0; i < n; ++i) co_await c.send(s, d, sz);
  }(cluster, a, b, msgs, sz));
  sim.run();
  return static_cast<double>(msgs) * static_cast<double>(sz) / (1ULL << 30) /
         sim::toSeconds(sim.now());
}

void BM_DdWrite(benchmark::State& state) {
  double gibps = 0;
  for (auto _ : state) gibps = ddAggregate(false);
  state.counters["GiBps"] = gibps;
}
BENCHMARK(BM_DdWrite)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_DdRead(benchmark::State& state) {
  double gibps = 0;
  for (auto _ : state) gibps = ddAggregate(true);
  state.counters["GiBps"] = gibps;
}
BENCHMARK(BM_DdRead)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Iperf(benchmark::State& state) {
  double gibps = 0;
  for (auto _ : state) gibps = iperfGibps();
  state.counters["GiBps"] = gibps;
}
BENCHMARK(BM_Iperf)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cerr << "\n#### E0 / §III-A hardware baselines ####\n"
            << "dd 16-drive aggregate write: " << ddAggregate(false)
            << " GiB/s (paper: 3.86)\n"
            << "dd 16-drive aggregate read:  " << ddAggregate(true)
            << " GiB/s (paper: 7.0)\n"
            << "iperf point-to-point:        " << iperfGibps()
            << " GiB/s (paper: 6.25)\n";
  return 0;
}
