// E1 — Fig. 1: IOR through the four DAOS APIs (libdaos, libdfs, DFUSE,
// DFUSE+IL) against a 16-server DAOS system; client node and process count
// optimisation grid; 1 MiB transfers, object class SX.
//
// Expected shape (paper): all APIs reach ~60 GiB/s write / ~90 GiB/s read
// at saturation (ideals 61.76 and 100); libdaos is ahead at low process
// counts; 16 client nodes suffice.
#include "apps/ior.h"
#include "apps/telemetry_probes.h"
#include "apps/testbed.h"
#include "bench_util.h"

namespace {

using namespace daosim;
using apps::DaosTestbed;
using apps::IorConfig;
using apps::SweepPoint;

apps::RunResult runPoint(std::string api, SweepPoint pt,
                         std::uint64_t seed) {
  DaosTestbed::Options opt;
  opt.server_nodes = 16;
  opt.client_nodes = pt.client_nodes;
  opt.seed = seed;
  opt.with_dfuse = api != "daos-array";
  DaosTestbed tb(opt);
  apps::ScopedRunTelemetry telem(
      tb.sim(), "ior-" + api + "/c" + std::to_string(pt.client_nodes) + "/n" +
                    std::to_string(pt.procs_per_node) + "/rep/" +
                    std::to_string(seed));
  if (telem.active()) apps::registerProbes(telem.telemetry(), tb);

  IorConfig cfg;
  cfg.ops = apps::scaledOps(pt.totalProcs(), apps::envOps(1000));
  apps::Ior bench(tb.ioEnv(), api, cfg);
  return apps::runSpmd(tb.sim(), tb.clientSubset(pt.client_nodes),
                       pt.procs_per_node, bench);
}

}  // namespace

int main(int argc, char** argv) {
  const auto grid =
      apps::envFullGrid()
          ? apps::crossGrid({1, 2, 4, 8, 16}, {1, 2, 4, 8, 16, 32})
          : apps::crossGrid({1, 4, 16}, {1, 4, 16, 32});

  // One sweep series per io::Backend registry name.
  for (const char* api : {"daos-array", "dfs", "dfuse", "dfuse-il"}) {
    bench::registerSweep(std::string("ior-") + api, grid,
                         [api = std::string(api)](SweepPoint pt,
                                                  std::uint64_t seed) {
                           return runPoint(api, pt, seed);
                         });
  }
  return bench::benchMain(
      argc, argv,
      "E1 / Fig. 1: IOR API comparison, 16-server DAOS, 1 MiB transfers");
}
