// Quickstart: deploy a small simulated DAOS system, store and retrieve
// real data through the Key-Value and Array APIs, and print what happened.
//
//   $ ./build/examples/quickstart
//
// This walks the same code paths the paper's benchmarks use — pool
// connection, container creation, client-side OID generation with an object
// class, Array and KV I/O — but with byte-accurate payloads verified on
// read-back.
#include <cstdio>
#include <string>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "sim/simulation.h"

using namespace daosim;
using daos::Array;
using daos::Client;
using daos::Container;
using daos::KeyValue;
using placement::ObjClass;
using sim::Task;
using vos::Payload;

namespace {

Task<void> quickstart(Client& client, bool& ok) {
  // 1. Connect to the pool and create a container (an isolated object
  //    namespace with its own transaction history).
  co_await client.poolConnect();
  Container cont = co_await client.contCreate("quickstart");
  std::printf("connected; container id=%llu\n",
              static_cast<unsigned long long>(cont.id));

  // 2. Key-Value object, sharded over every target (class SX).
  KeyValue kv(client, cont, client.nextOid(ObjClass::SX));
  co_await kv.put("model", Payload::fromString("IFS cycle 48r1"));
  co_await kv.put("grid", Payload::fromString("O1280"));
  auto model = co_await kv.get("model");
  std::printf("kv get(model) -> %s\n",
              model ? model->toString().c_str() : "<missing>");

  // 3. Array object: a sparse 1-D byte array, chunked at 1 MiB. Write a
  //    3.5 MiB pattern, read it back, verify every byte.
  Array array = co_await Array::create(
      client, cont, client.nextOid(ObjClass::SX),
      {.cell_size = 1, .chunk_size = 1 << 20});
  Payload pattern = vos::patternPayload(3'500'000, /*seed=*/2026);
  const sim::Time t0 = client.sim().now();
  co_await array.write(0, pattern);
  const sim::Time w_us = (client.sim().now() - t0) / sim::kMicrosecond;
  Payload back = co_await array.read(0, 3'500'000);
  std::printf("array round trip: %llu bytes in %llu us (write), data %s\n",
              static_cast<unsigned long long>(back.size()),
              static_cast<unsigned long long>(w_us),
              back == pattern ? "VERIFIED" : "CORRUPT");
  std::printf("array size reported by the pool: %llu\n",
              static_cast<unsigned long long>(co_await array.getSize()));

  ok = model.has_value() && model->toString() == "IFS cycle 48r1" &&
       back == pattern;
}

}  // namespace

int main() {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  // 4 DAOS servers (16 NVMe targets each) + 1 client node.
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 4);
  auto client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  Client client(system, client_node, /*client_id=*/1);

  bool ok = false;
  auto proc = sim.spawn(quickstart(client, ok));
  sim.run();
  if (proc.failed() || !ok) {
    std::fprintf(stderr, "quickstart FAILED\n");
    return 1;
  }
  std::printf("quickstart OK (simulated time: %.3f ms, %zu events)\n",
              sim::toSeconds(sim.now()) * 1e3, sim.processedEvents());
  return 0;
}
