// Three stores, one workload: a miniature of the paper's Fig. 9.
//
//   $ ./build/examples/storage_comparison
//
// Runs the fdb-hammer weather workload (field archive + retrieve) against
// small DAOS, Lustre and Ceph deployments on identical simulated hardware
// and prints the resulting bandwidth table.
#include <cstdio>

#include "apps/fdb.h"
#include "apps/runner.h"
#include "apps/testbed.h"

using namespace daosim;
using namespace daosim::apps;

namespace {

constexpr int kServers = 4;
constexpr int kClients = 4;
constexpr int kPpn = 8;

FdbConfig workload() {
  FdbConfig cfg;
  cfg.fields = 150;
  return cfg;
}

RunResult runDaos() {
  DaosTestbed::Options opt;
  opt.server_nodes = kServers;
  opt.client_nodes = kClients;
  opt.with_dfuse = false;
  DaosTestbed tb(opt);
  Fdb bench(tb.ioEnv(), "daos-array", workload());
  return runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

RunResult runLustre() {
  LustreTestbed::Options opt;
  opt.oss_nodes = kServers;
  opt.client_nodes = kClients;
  LustreTestbed tb(opt);
  Fdb bench(tb.ioEnv(/*stripe_count=*/8, /*stripe_size=*/8 << 20),
            "lustre-posix", workload());
  return runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

RunResult runCeph() {
  CephTestbed::Options opt;
  opt.osd_nodes = kServers;
  opt.client_nodes = kClients;
  CephTestbed tb(opt);
  Fdb bench(tb.ioEnv(), "rados", workload());
  return runSpmd(tb.sim(), tb.clientSubset(kClients), kPpn, bench);
}

}  // namespace

int main() {
  std::printf("fdb-hammer, %d server nodes, %d clients x %d procs, "
              "1 MiB fields\n\n", kServers, kClients, kPpn);
  std::printf("%-10s %14s %14s\n", "store", "write GiB/s", "read GiB/s");

  const RunResult daos = runDaos();
  std::printf("%-10s %14.2f %14.2f\n", "DAOS", daos.write().gibps(),
              daos.read().gibps());
  const RunResult lustre = runLustre();
  std::printf("%-10s %14.2f %14.2f\n", "Lustre", lustre.write().gibps(),
              lustre.read().gibps());
  const RunResult ceph = runCeph();
  std::printf("%-10s %14.2f %14.2f\n", "Ceph", ceph.write().gibps(),
              ceph.read().gibps());

  // The paper's qualitative conclusion at this workload: DAOS reads beat
  // both baselines; Ceph writes trail (BlueStore amplification).
  const bool ok = daos.read().gibps() > lustre.read().gibps() &&
                  daos.read().gibps() > ceph.read().gibps() &&
                  daos.write().gibps() > ceph.write().gibps();
  std::printf("\nstorage_comparison %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
