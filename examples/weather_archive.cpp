// Weather-field archive with data protection and failure recovery.
//
//   $ ./build/examples/weather_archive
//
// Models the paper's motivating workload (ECMWF numerical weather
// prediction): several writer processes archive forecast fields — each
// field a separate erasure-coded Array (EC 2+1), indexed in replicated
// Key-Values (RP_2). We then *fail a storage device* and show that every
// field is still retrieved bit-exact through degraded reads (XOR
// reconstruction for arrays, replica failover for the index) — the paper's
// contribution C3 in action.
#include <cstdio>
#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "daos/rebuild.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "sim/simulation.h"
#include "sim/sync.h"

using namespace daosim;
using daos::Array;
using daos::Client;
using daos::Container;
using daos::KeyValue;
using placement::ObjClass;
using placement::ObjectId;
using sim::Task;
using vos::Payload;

namespace {

constexpr int kWriters = 4;
constexpr int kFieldsPerWriter = 6;
constexpr std::uint64_t kFieldBytes = 1 << 20;

Payload fieldData(int writer, int f) {
  return vos::patternPayload(
      kFieldBytes, sim::hashCombine(static_cast<std::uint64_t>(writer),
                                    static_cast<std::uint64_t>(f)));
}

std::string fieldKey(int writer, int f) {
  return "stream=oper,writer=" + std::to_string(writer) +
         ",step=" + std::to_string(f * 6) + ",param=t850";
}

ObjectId indexOid() {
  return placement::makeOid(ObjClass::RP_2G1, 0x1D,  0xfffffff0u);
}

Task<void> archive(Client client, Container cont, int writer,
                   std::vector<ObjectId>* oids) {
  KeyValue index(client, cont, indexOid());
  for (int f = 0; f < kFieldsPerWriter; ++f) {
    Array field = co_await Array::create(
        client, cont, client.nextOid(ObjClass::EC_2P1G1),
        {.cell_size = 1, .chunk_size = kFieldBytes});
    co_await field.write(0, fieldData(writer, f));
    co_await index.put(fieldKey(writer, f),
                       Payload::fromString("len=1048576"));
    oids->push_back(field.oid());
  }
}

Task<void> retrieveAll(Client& client, Container cont,
                       const std::vector<std::vector<ObjectId>>& oids,
                       int* verified) {
  KeyValue index(client, cont, indexOid());
  for (int w = 0; w < kWriters; ++w) {
    for (int f = 0; f < kFieldsPerWriter; ++f) {
      auto meta = co_await index.get(fieldKey(w, f));
      Array field = Array::openWithAttrs(
          client, cont, oids[static_cast<std::size_t>(w)][static_cast<std::size_t>(f)],
          {.cell_size = 1, .chunk_size = kFieldBytes});
      Payload data = co_await field.read(0, kFieldBytes);
      if (meta.has_value() && data == fieldData(w, f)) ++(*verified);
    }
  }
}

Task<void> run(daos::DaosSystem& system, std::vector<Client>& clients,
               bool& ok) {
  Client& admin = clients.front();
  co_await admin.poolConnect();
  Container cont = co_await admin.contCreate("weather");

  // Archive phase: four concurrent writers.
  std::vector<std::vector<ObjectId>> oids(kWriters);
  std::vector<sim::Task<void>> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.push_back(archive(clients[static_cast<std::size_t>(w)], cont, w,
                              &oids[static_cast<std::size_t>(w)]));
  }
  co_await sim::whenAll(admin.sim(), std::move(writers));
  std::printf("archived %d fields (%d writers x %d), stored %.1f MiB "
              "(1.5x EC overhead on %.1f MiB of data)\n",
              kWriters * kFieldsPerWriter, kWriters, kFieldsPerWriter,
              static_cast<double>(system.bytesStored()) / (1 << 20),
              kWriters * kFieldsPerWriter * 1.0);

  // Healthy retrieval.
  int verified = 0;
  co_await retrieveAll(admin, cont, oids, &verified);
  std::printf("healthy retrieve: %d/%d fields verified\n", verified,
              kWriters * kFieldsPerWriter);
  ok = verified == kWriters * kFieldsPerWriter;

  // Fail the device behind the first field's first data shard and retrieve
  // everything again: EC reconstruction + KV replica failover take over.
  const int victim = system.layout(oids[0][0]).targets.front();
  system.failTarget(victim);
  std::printf("injected failure on target %d\n", victim);
  verified = 0;
  co_await retrieveAll(admin, cont, oids, &verified);
  std::printf("degraded retrieve: %d/%d fields verified\n", verified,
              kWriters * kFieldsPerWriter);
  ok = ok && verified == kWriters * kFieldsPerWriter;

  // Now restore full redundancy: exclude the dead target from the pool map
  // and rebuild its shards onto spares from the surviving redundancy. The
  // device stays dead; subsequent reads use the normal path again.
  system.excludeTarget(victim);
  daos::RebuildStats stats = co_await daos::rebuild(system, victim);
  std::printf("rebuild: %llu objects scanned, %llu slots repaired, "
              "%.1f MiB moved in %.1f ms (simulated)\n",
              static_cast<unsigned long long>(stats.objects_scanned),
              static_cast<unsigned long long>(stats.slots_repaired),
              static_cast<double>(stats.bytes_moved) / (1 << 20),
              sim::toSeconds(stats.duration) * 1e3);
  verified = 0;
  co_await retrieveAll(admin, cont, oids, &verified);
  std::printf("post-rebuild retrieve: %d/%d fields verified\n", verified,
              kWriters * kFieldsPerWriter);
  ok = ok && verified == kWriters * kFieldsPerWriter;
}

}  // namespace

int main() {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 4);
  auto client_nodes = cluster.addNodes(hw::NodeSpec::client(), 2);
  daos::DaosSystem system(cluster, servers);

  std::vector<Client> clients;
  for (int i = 0; i < kWriters; ++i) {
    clients.emplace_back(system, client_nodes[static_cast<std::size_t>(i % 2)],
                         static_cast<std::uint32_t>(i + 1));
  }

  bool ok = false;
  auto proc = sim.spawn(run(system, clients, ok));
  sim.run();
  if (proc.failed() || !ok) {
    std::fprintf(stderr, "weather_archive FAILED\n");
    return 1;
  }
  std::printf("weather_archive OK\n");
  return 0;
}
