// POSIX on DAOS, three ways: libdfs directly, through the DFUSE daemon, and
// through DFUSE with the interception library.
//
//   $ ./build/examples/posix_on_daos
//
// Builds a small namespace (directories, files, a symlink) through each
// access path, shows they all see the same file system, and compares the
// time a burst of small writes takes on each path — the paper's Fig. 2
// effect in miniature.
#include <cstdio>
#include <string>

#include "daos/client.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hw/cluster.h"
#include "posix/dfuse.h"
#include "sim/simulation.h"

using namespace daosim;
using daos::Client;
using daos::Container;
using posix::OpenFlags;
using sim::Task;
using vos::Payload;

namespace {

Task<sim::Time> smallWriteBurst(posix::Vfs& vfs, sim::Simulation& sim,
                                std::string path, int ops) {
  posix::Fd fd = co_await vfs.open(std::move(path), OpenFlags::writeCreate());
  const sim::Time t0 = sim.now();
  for (int i = 0; i < ops; ++i) {
    co_await vfs.pwrite(fd, static_cast<std::uint64_t>(i) * 1024,
                        Payload::synthetic(1024));
  }
  const sim::Time span = sim.now() - t0;
  co_await vfs.close(fd);
  co_return span;
}

Task<void> run(Client& client, sim::Simulation& sim, bool& ok) {
  co_await client.poolConnect();
  Container cont = co_await client.contCreate("posix-demo");
  dfs::FileSystem fs = co_await dfs::FileSystem::mount(client, cont);

  // Build a namespace through libdfs.
  co_await fs.mkdirs("/projects/forecast");
  dfs::File readme = co_await fs.open("/projects/forecast/README",
                                      {.create = true});
  co_await fs.write(readme, 0,
                    Payload::fromString("hourly forecast outputs"));
  co_await fs.symlink("/projects/forecast", "/latest");

  // The DFUSE daemon exposes the same container as a POSIX mount.
  posix::DfuseDaemon daemon(sim, fs, posix::DfuseConfig{});
  posix::DfuseVfs dfuse(daemon);
  auto st = co_await dfuse.stat("/latest/README");  // via the symlink
  std::printf("stat over DFUSE via symlink: size=%llu\n",
              static_cast<unsigned long long>(st.size));

  // And the interception library bypasses the daemon for data.
  posix::InterceptVfs il(daemon, fs);
  posix::Fd fd = co_await il.open("/projects/forecast/README",
                                  OpenFlags::readOnly());
  Payload text = co_await il.pread(fd, 0, st.size);
  std::printf("read through DFUSE+IL: \"%s\"\n", text.toString().c_str());
  co_await il.close(fd);

  // Small-I/O burst comparison (the Fig. 2 effect).
  const int ops = 200;
  posix::DfsVfs direct(fs);
  const sim::Time t_dfs =
      co_await smallWriteBurst(direct, sim, "/burst.dfs", ops);
  const sim::Time t_fuse =
      co_await smallWriteBurst(dfuse, sim, "/burst.fuse", ops);
  const sim::Time t_il = co_await smallWriteBurst(il, sim, "/burst.il", ops);
  std::printf("200 x 1 KiB writes: libdfs %llu us | dfuse %llu us | "
              "dfuse+IL %llu us\n",
              static_cast<unsigned long long>(t_dfs / sim::kMicrosecond),
              static_cast<unsigned long long>(t_fuse / sim::kMicrosecond),
              static_cast<unsigned long long>(t_il / sim::kMicrosecond));

  ok = st.size == 23 && text.toString() == "hourly forecast outputs" &&
       t_fuse > t_il && t_il > t_dfs;
}

}  // namespace

int main() {
  sim::Simulation sim;
  hw::Cluster cluster(sim);
  auto servers = cluster.addNodes(hw::NodeSpec::server(), 2);
  auto client_node = cluster.addNode(hw::NodeSpec::client());
  daos::DaosSystem system(cluster, servers);
  Client client(system, client_node, 1);

  bool ok = false;
  auto proc = sim.spawn(run(client, sim, ok));
  sim.run();
  if (proc.failed() || !ok) {
    std::fprintf(stderr, "posix_on_daos FAILED\n");
    return 1;
  }
  std::printf("posix_on_daos OK\n");
  return 0;
}
