# Empty compiler generated dependencies file for daosim_run.
# This may be replaced when dependencies are built.
