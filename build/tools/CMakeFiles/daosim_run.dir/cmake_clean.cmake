file(REMOVE_RECURSE
  "CMakeFiles/daosim_run.dir/daosim_run.cc.o"
  "CMakeFiles/daosim_run.dir/daosim_run.cc.o.d"
  "daosim_run"
  "daosim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daosim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
