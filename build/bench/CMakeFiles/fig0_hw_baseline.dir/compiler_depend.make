# Empty compiler generated dependencies file for fig0_hw_baseline.
# This may be replaced when dependencies are built.
