file(REMOVE_RECURSE
  "CMakeFiles/fig0_hw_baseline.dir/fig0_hw_baseline.cc.o"
  "CMakeFiles/fig0_hw_baseline.dir/fig0_hw_baseline.cc.o.d"
  "fig0_hw_baseline"
  "fig0_hw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig0_hw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
