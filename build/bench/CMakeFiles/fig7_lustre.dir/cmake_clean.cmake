file(REMOVE_RECURSE
  "CMakeFiles/fig7_lustre.dir/fig7_lustre.cc.o"
  "CMakeFiles/fig7_lustre.dir/fig7_lustre.cc.o.d"
  "fig7_lustre"
  "fig7_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
