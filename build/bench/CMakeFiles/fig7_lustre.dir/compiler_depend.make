# Empty compiler generated dependencies file for fig7_lustre.
# This may be replaced when dependencies are built.
