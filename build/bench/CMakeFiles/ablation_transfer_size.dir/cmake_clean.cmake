file(REMOVE_RECURSE
  "CMakeFiles/ablation_transfer_size.dir/ablation_transfer_size.cc.o"
  "CMakeFiles/ablation_transfer_size.dir/ablation_transfer_size.cc.o.d"
  "ablation_transfer_size"
  "ablation_transfer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
