# Empty dependencies file for ablation_transfer_size.
# This may be replaced when dependencies are built.
