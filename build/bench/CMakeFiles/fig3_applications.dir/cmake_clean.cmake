file(REMOVE_RECURSE
  "CMakeFiles/fig3_applications.dir/fig3_applications.cc.o"
  "CMakeFiles/fig3_applications.dir/fig3_applications.cc.o.d"
  "fig3_applications"
  "fig3_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
