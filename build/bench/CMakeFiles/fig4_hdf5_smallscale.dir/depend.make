# Empty dependencies file for fig4_hdf5_smallscale.
# This may be replaced when dependencies are built.
