file(REMOVE_RECURSE
  "CMakeFiles/fig4_hdf5_smallscale.dir/fig4_hdf5_smallscale.cc.o"
  "CMakeFiles/fig4_hdf5_smallscale.dir/fig4_hdf5_smallscale.cc.o.d"
  "fig4_hdf5_smallscale"
  "fig4_hdf5_smallscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hdf5_smallscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
