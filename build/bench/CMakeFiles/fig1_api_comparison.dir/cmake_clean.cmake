file(REMOVE_RECURSE
  "CMakeFiles/fig1_api_comparison.dir/fig1_api_comparison.cc.o"
  "CMakeFiles/fig1_api_comparison.dir/fig1_api_comparison.cc.o.d"
  "fig1_api_comparison"
  "fig1_api_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_api_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
