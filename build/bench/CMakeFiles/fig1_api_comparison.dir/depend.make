# Empty dependencies file for fig1_api_comparison.
# This may be replaced when dependencies are built.
