file(REMOVE_RECURSE
  "CMakeFiles/fig8_ceph.dir/fig8_ceph.cc.o"
  "CMakeFiles/fig8_ceph.dir/fig8_ceph.cc.o.d"
  "fig8_ceph"
  "fig8_ceph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ceph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
