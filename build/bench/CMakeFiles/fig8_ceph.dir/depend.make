# Empty dependencies file for fig8_ceph.
# This may be replaced when dependencies are built.
