file(REMOVE_RECURSE
  "CMakeFiles/fig2_dfuse_il_iops.dir/fig2_dfuse_il_iops.cc.o"
  "CMakeFiles/fig2_dfuse_il_iops.dir/fig2_dfuse_il_iops.cc.o.d"
  "fig2_dfuse_il_iops"
  "fig2_dfuse_il_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dfuse_il_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
