# Empty compiler generated dependencies file for fig2_dfuse_il_iops.
# This may be replaced when dependencies are built.
