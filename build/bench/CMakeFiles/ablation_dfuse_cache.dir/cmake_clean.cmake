file(REMOVE_RECURSE
  "CMakeFiles/ablation_dfuse_cache.dir/ablation_dfuse_cache.cc.o"
  "CMakeFiles/ablation_dfuse_cache.dir/ablation_dfuse_cache.cc.o.d"
  "ablation_dfuse_cache"
  "ablation_dfuse_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dfuse_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
