# Empty dependencies file for ablation_dfuse_cache.
# This may be replaced when dependencies are built.
