# Empty dependencies file for fig6_erasure_coding.
# This may be replaced when dependencies are built.
