file(REMOVE_RECURSE
  "CMakeFiles/fig6_erasure_coding.dir/fig6_erasure_coding.cc.o"
  "CMakeFiles/fig6_erasure_coding.dir/fig6_erasure_coding.cc.o.d"
  "fig6_erasure_coding"
  "fig6_erasure_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_erasure_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
