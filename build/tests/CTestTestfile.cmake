# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hw_test "/root/repo/build/tests/hw_test")
set_tests_properties(hw_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(placement_test "/root/repo/build/tests/placement_test")
set_tests_properties(placement_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vos_test "/root/repo/build/tests/vos_test")
set_tests_properties(vos_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(daos_test "/root/repo/build/tests/daos_test")
set_tests_properties(daos_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dfs_posix_test "/root/repo/build/tests/dfs_posix_test")
set_tests_properties(dfs_posix_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hdf5_test "/root/repo/build/tests/hdf5_test")
set_tests_properties(hdf5_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(redundancy_test "/root/repo/build/tests/redundancy_test")
set_tests_properties(redundancy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rebuild_test "/root/repo/build/tests/rebuild_test")
set_tests_properties(rebuild_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(coverage_test "/root/repo/build/tests/coverage_test")
set_tests_properties(coverage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;daosim_test;/root/repo/tests/CMakeLists.txt;0;")
