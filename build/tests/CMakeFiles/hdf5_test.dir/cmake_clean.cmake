file(REMOVE_RECURSE
  "CMakeFiles/hdf5_test.dir/hdf5_test.cc.o"
  "CMakeFiles/hdf5_test.dir/hdf5_test.cc.o.d"
  "hdf5_test"
  "hdf5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
