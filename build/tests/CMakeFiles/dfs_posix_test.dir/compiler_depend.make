# Empty compiler generated dependencies file for dfs_posix_test.
# This may be replaced when dependencies are built.
