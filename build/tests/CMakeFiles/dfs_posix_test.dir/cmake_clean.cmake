file(REMOVE_RECURSE
  "CMakeFiles/dfs_posix_test.dir/dfs_posix_test.cc.o"
  "CMakeFiles/dfs_posix_test.dir/dfs_posix_test.cc.o.d"
  "dfs_posix_test"
  "dfs_posix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_posix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
