file(REMOVE_RECURSE
  "CMakeFiles/vos_test.dir/vos_test.cc.o"
  "CMakeFiles/vos_test.dir/vos_test.cc.o.d"
  "vos_test"
  "vos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
