# Empty dependencies file for daosim.
# This may be replaced when dependencies are built.
