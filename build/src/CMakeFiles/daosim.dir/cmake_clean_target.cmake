file(REMOVE_RECURSE
  "libdaosim.a"
)
