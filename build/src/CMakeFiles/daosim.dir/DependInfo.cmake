
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fdb.cc" "src/CMakeFiles/daosim.dir/apps/fdb.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/fdb.cc.o.d"
  "/root/repo/src/apps/fieldio.cc" "src/CMakeFiles/daosim.dir/apps/fieldio.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/fieldio.cc.o.d"
  "/root/repo/src/apps/ior.cc" "src/CMakeFiles/daosim.dir/apps/ior.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/ior.cc.o.d"
  "/root/repo/src/apps/runner.cc" "src/CMakeFiles/daosim.dir/apps/runner.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/runner.cc.o.d"
  "/root/repo/src/apps/stats_report.cc" "src/CMakeFiles/daosim.dir/apps/stats_report.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/stats_report.cc.o.d"
  "/root/repo/src/apps/sweep.cc" "src/CMakeFiles/daosim.dir/apps/sweep.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/sweep.cc.o.d"
  "/root/repo/src/apps/testbed.cc" "src/CMakeFiles/daosim.dir/apps/testbed.cc.o" "gcc" "src/CMakeFiles/daosim.dir/apps/testbed.cc.o.d"
  "/root/repo/src/daos/array.cc" "src/CMakeFiles/daosim.dir/daos/array.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/array.cc.o.d"
  "/root/repo/src/daos/client.cc" "src/CMakeFiles/daosim.dir/daos/client.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/client.cc.o.d"
  "/root/repo/src/daos/engine.cc" "src/CMakeFiles/daosim.dir/daos/engine.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/engine.cc.o.d"
  "/root/repo/src/daos/kv.cc" "src/CMakeFiles/daosim.dir/daos/kv.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/kv.cc.o.d"
  "/root/repo/src/daos/pool_service.cc" "src/CMakeFiles/daosim.dir/daos/pool_service.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/pool_service.cc.o.d"
  "/root/repo/src/daos/rebuild.cc" "src/CMakeFiles/daosim.dir/daos/rebuild.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/rebuild.cc.o.d"
  "/root/repo/src/daos/system.cc" "src/CMakeFiles/daosim.dir/daos/system.cc.o" "gcc" "src/CMakeFiles/daosim.dir/daos/system.cc.o.d"
  "/root/repo/src/dfs/dfs.cc" "src/CMakeFiles/daosim.dir/dfs/dfs.cc.o" "gcc" "src/CMakeFiles/daosim.dir/dfs/dfs.cc.o.d"
  "/root/repo/src/hdf5/h5.cc" "src/CMakeFiles/daosim.dir/hdf5/h5.cc.o" "gcc" "src/CMakeFiles/daosim.dir/hdf5/h5.cc.o.d"
  "/root/repo/src/lustre/lustre.cc" "src/CMakeFiles/daosim.dir/lustre/lustre.cc.o" "gcc" "src/CMakeFiles/daosim.dir/lustre/lustre.cc.o.d"
  "/root/repo/src/placement/layout.cc" "src/CMakeFiles/daosim.dir/placement/layout.cc.o" "gcc" "src/CMakeFiles/daosim.dir/placement/layout.cc.o.d"
  "/root/repo/src/placement/objclass.cc" "src/CMakeFiles/daosim.dir/placement/objclass.cc.o" "gcc" "src/CMakeFiles/daosim.dir/placement/objclass.cc.o.d"
  "/root/repo/src/posix/dfuse.cc" "src/CMakeFiles/daosim.dir/posix/dfuse.cc.o" "gcc" "src/CMakeFiles/daosim.dir/posix/dfuse.cc.o.d"
  "/root/repo/src/posix/vfs.cc" "src/CMakeFiles/daosim.dir/posix/vfs.cc.o" "gcc" "src/CMakeFiles/daosim.dir/posix/vfs.cc.o.d"
  "/root/repo/src/rados/rados.cc" "src/CMakeFiles/daosim.dir/rados/rados.cc.o" "gcc" "src/CMakeFiles/daosim.dir/rados/rados.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/daosim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/daosim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/daosim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/daosim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/CMakeFiles/daosim.dir/sim/sync.cc.o" "gcc" "src/CMakeFiles/daosim.dir/sim/sync.cc.o.d"
  "/root/repo/src/vos/extent_tree.cc" "src/CMakeFiles/daosim.dir/vos/extent_tree.cc.o" "gcc" "src/CMakeFiles/daosim.dir/vos/extent_tree.cc.o.d"
  "/root/repo/src/vos/payload.cc" "src/CMakeFiles/daosim.dir/vos/payload.cc.o" "gcc" "src/CMakeFiles/daosim.dir/vos/payload.cc.o.d"
  "/root/repo/src/vos/target_store.cc" "src/CMakeFiles/daosim.dir/vos/target_store.cc.o" "gcc" "src/CMakeFiles/daosim.dir/vos/target_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
