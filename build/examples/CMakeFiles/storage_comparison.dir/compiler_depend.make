# Empty compiler generated dependencies file for storage_comparison.
# This may be replaced when dependencies are built.
