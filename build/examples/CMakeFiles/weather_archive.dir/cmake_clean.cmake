file(REMOVE_RECURSE
  "CMakeFiles/weather_archive.dir/weather_archive.cpp.o"
  "CMakeFiles/weather_archive.dir/weather_archive.cpp.o.d"
  "weather_archive"
  "weather_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
