# Empty compiler generated dependencies file for weather_archive.
# This may be replaced when dependencies are built.
