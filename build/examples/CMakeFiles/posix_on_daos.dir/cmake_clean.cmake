file(REMOVE_RECURSE
  "CMakeFiles/posix_on_daos.dir/posix_on_daos.cpp.o"
  "CMakeFiles/posix_on_daos.dir/posix_on_daos.cpp.o.d"
  "posix_on_daos"
  "posix_on_daos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_on_daos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
