# Empty compiler generated dependencies file for posix_on_daos.
# This may be replaced when dependencies are built.
