// io::SubmitQueue: bounded-depth asynchronous operation submission.
//
// Generalizes the libdaos event-queue analogue to any backend: ops are
// spawned as simulation processes, and `submit` blocks the issuing process
// once `depth` ops are in flight — the fixed-queue-depth issue pattern IOR
// uses with asynchronous APIs. depth = 0 means unbounded (pure
// launch/waitAll, the daos_eq_poll behaviour); the POSIX/Lustre/RADOS
// backends get the same in-flight parallelism because each spawned op is an
// independent simulation process regardless of which storage stack it
// drives.
//
// Failures are held until waitAll(), which rethrows the first one — like
// an application checking event statuses at drain time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <utility>

#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace daosim::io {

class SubmitQueue {
 public:
  explicit SubmitQueue(sim::Simulation& sim, std::size_t depth = 0)
      : sim_(&sim), depth_(depth) {}

  /// Spawns `op` immediately, regardless of depth.
  void launch(sim::Task<void> op) {
    inflight_.push_back(sim_->spawn(std::move(op)));
    noteSpawn();
  }

  /// Spawns `op`, first waiting for the oldest in-flight op to complete
  /// while the queue is at depth.
  sim::Task<void> submit(sim::Task<void> op) {
    while (depth_ > 0 && inflight_.size() >= depth_) {
      co_await joinOldest();
    }
    inflight_.push_back(sim_->spawn(std::move(op)));
    noteSpawn();
  }

  /// Waits for every in-flight op; rethrows the first failure.
  sim::Task<void> waitAll() {
    while (!inflight_.empty()) co_await joinOldest();
    if (first_error_) {
      std::rethrow_exception(std::exchange(first_error_, nullptr));
    }
  }

  std::size_t inFlight() const noexcept { return inflight_.size(); }
  std::size_t depth() const noexcept { return depth_; }

 private:
  sim::Task<void> joinOldest() {
    sim::ProcHandle h = std::move(inflight_.front());
    inflight_.pop_front();
    noteJoin();
    try {
      co_await h.join();
    } catch (...) {
      if (!first_error_) first_error_ = std::current_exception();
    }
  }

  /// Telemetry push site: with no registry attached this is one pointer
  /// load and a branch; handles are re-resolved when a new registry epoch
  /// appears (fresh rep) and summed across every queue in the run.
  void noteSpawn() {
    obs::Telemetry* t = sim_->telemetry();
    if (t == nullptr) [[likely]] return;
    if (tq_epoch_ != t->epoch()) {
      tq_epoch_ = t->epoch();
      tq_inflight_ = t->gauge("client/submitq/inflight");
      tq_ops_ = t->rate("client/submitq/ops");
    }
    tq_inflight_.add(1.0);
    tq_ops_.inc();
  }

  /// Only touches the cached handle while the registry that issued it is
  /// still attached (a stale epoch means the nodes may be gone).
  void noteJoin() {
    obs::Telemetry* t = sim_->telemetry();
    if (t == nullptr || tq_epoch_ != t->epoch()) return;
    tq_inflight_.add(-1.0);
  }

  sim::Simulation* sim_;
  std::size_t depth_;
  std::deque<sim::ProcHandle> inflight_;
  std::exception_ptr first_error_;
  obs::Telemetry::Handle tq_inflight_;
  obs::Telemetry::Handle tq_ops_;
  std::uint64_t tq_epoch_ = 0;
};

}  // namespace daosim::io
