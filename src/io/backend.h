// Backend-neutral I/O layer: the paper's "interface" axis as a first-class
// abstraction.
//
// The paper compares the *same* workloads across seven client interfaces
// (libdaos arrays, libdfs, DFUSE, DFUSE+IL, HDF5, Lustre POSIX, librados).
// An io::Backend is one of those interfaces, instantiated per simulated
// process; it hands out io::Object (bulk data) and io::Index (key-value
// metadata) handles with coroutine create/open/write/read/close, so a
// benchmark written once runs against every registered interface.
//
// Backends are looked up by string name through a registry
// (io::makeBackend); the canonical names match `daosim_run --api=`:
//
//   daos-array    libdaos Array API           (alias: libdaos, array)
//   dfs           libdfs
//   dfuse         POSIX on a DFUSE mount
//   dfuse-il      DFUSE + interception library (alias: dfuse+il)
//   hdf5          HDF5, POSIX driver over DFUSE+IL (alias: hdf5-dfuse)
//   hdf5-daos     HDF5, DAOS VOL adaptor
//   lustre-posix  POSIX on Lustre              (alias: lustre)
//   rados         librados on Ceph
//
// COROUTINE DISCIPLINE (see net/rpc.h): every coroutine takes only plain
// data parameters; OpenSpec/IndexSpec are passed by value for that reason.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hw/cluster.h"
#include "placement/objclass.h"
#include "sim/task.h"
#include "vos/payload.h"

namespace daosim::sim {
class Simulation;
}
namespace daosim::daos {
class DaosSystem;
}
namespace daosim::dfs {
class FileSystem;
}
namespace daosim::posix {
class DfuseDaemon;
}
namespace daosim::lustre {
class LustreSystem;
}
namespace daosim::rados {
class CephCluster;
}

namespace daosim::io {

/// Which deployed storage system a backend drives.
enum class System { kDaos, kLustre, kCeph };

/// Everything a backend needs from the deployed testbed. Plain pointers into
/// testbed-owned state; the testbed must outlive the backends (apps::*Testbed
/// expose ioEnv() helpers that fill this in).
struct Env {
  sim::Simulation* sim = nullptr;
  std::uint64_t seed = 1;

  // DAOS-side systems (daos-array, dfs, dfuse, dfuse-il, hdf5, hdf5-daos).
  daos::DaosSystem* daos = nullptr;
  const dfs::FileSystem* dfs_mount = nullptr;
  const std::map<hw::NodeId, std::unique_ptr<posix::DfuseDaemon>>*
      dfuse_daemons = nullptr;
  std::string container = "bench";

  // Lustre (lustre-posix). Stripe settings default to the paper's tuning.
  lustre::LustreSystem* lustre = nullptr;
  int lustre_stripe_count = 8;
  std::uint64_t lustre_stripe_size = 8 << 20;

  // Ceph (rados).
  rados::CephCluster* ceph = nullptr;
};

/// What a backend can do natively; benchmarks pick strategies from these.
struct Caps {
  /// Supports a well-known shared object identity (IOR single-shared-file).
  bool shared_object = false;
  /// Native key-value index objects (libdaos KV): openIndex() works.
  bool native_index = false;
  /// Per-writer append files are the write-optimized idiom (fdb's POSIX
  /// backend buffers fields client-side and flushes in large blocks).
  bool append_log = false;
  /// Per-object size cap (0 = unbounded; librados recommends 132 MiB).
  std::uint64_t max_object_bytes = 0;
};

/// How to create/open an object. Plain data: safe as a coroutine parameter.
struct OpenSpec {
  /// Logical name, unique per process unless `shared`. Backends map it to
  /// their namespace (paths under /bench on DFS/DFUSE, salted object names
  /// on RADOS, OIDs on libdaos).
  std::string name;
  /// Every process addresses the same well-known object (rank 0 creates it).
  bool shared = false;
  /// Create-vs-open-existing. An object created earlier through the same
  /// backend instance can be reopened by name with create = false.
  bool create = true;
  /// create: register attributes with a create RPC; open: fetch them with a
  /// metadata RPC. False = the caller already knows the attributes — fdb's
  /// open-with-attrs fast path, free of RPCs on DAOS.
  bool registered = true;
  /// POSIX backends: open O_APPEND|O_CREAT instead of truncating.
  bool append = false;
  /// Array chunking (0 = backend default, 1 MiB).
  std::uint64_t chunk_size = 0;
  /// DAOS object class (ignored by non-DAOS backends).
  placement::ObjClass oclass = placement::ObjClass::SX;
};

/// How to open a native key-value index (caps().native_index backends only).
struct IndexSpec {
  std::string name;
  /// One well-known index shared by all processes (vs process-exclusive).
  bool shared = false;
  placement::ObjClass oclass = placement::ObjClass::SX;
};

/// An open bulk-data handle: DAOS array, DFS/POSIX file, HDF5 file, or
/// RADOS object.
class Object {
 public:
  virtual ~Object() = default;
  virtual sim::Task<void> write(std::uint64_t offset, vos::Payload data) = 0;
  virtual sim::Task<vos::Payload> read(std::uint64_t offset,
                                       std::uint64_t length) = 0;
  /// Size probe (a metadata round trip on most backends).
  virtual sim::Task<std::uint64_t> size() = 0;
  /// Durability barrier; no-op where writes are already durable on ack.
  virtual sim::Task<void> sync();
  /// Releases the handle; no-op on handle-less backends.
  virtual sim::Task<void> close();
};

/// An open key-value index handle (libdaos KV analogue).
class Index {
 public:
  virtual ~Index() = default;
  virtual sim::Task<void> put(std::string key, vos::Payload value) = 0;
  /// Throws std::out_of_range if the key is missing.
  virtual sim::Task<vos::Payload> get(std::string key) = 0;
};

/// One client interface, instantiated per simulated process.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const Caps& caps() const = 0;
  /// Per-process session setup (pool connect, container open, mount copy,
  /// cluster-map fetch — whatever the real client library does once).
  virtual sim::Task<void> connect() = 0;
  virtual sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) = 0;
  /// Native key-value index; throws std::logic_error unless
  /// caps().native_index.
  virtual sim::Task<std::unique_ptr<Index>> openIndex(IndexSpec spec);
};

// --- registry ------------------------------------------------------------

using Factory = std::unique_ptr<Backend> (*)(const Env& env, hw::NodeId node,
                                             std::uint32_t client_id);

/// Registers a backend under a canonical name; throws std::invalid_argument
/// on duplicates. The seven paper interfaces (plus hdf5-daos) are
/// pre-registered.
void registerBackend(std::string name, System system, Factory factory);
/// Registers an alternate spelling for a canonical name.
void registerAlias(std::string alias, std::string canonical);

bool haveBackend(std::string_view api);
/// Resolves aliases; throws std::invalid_argument for unknown names.
std::string canonicalName(std::string_view api);
/// Which testbed the named backend drives.
System backendSystem(std::string_view api);
/// Canonical names in registration order.
std::vector<std::string> backendNames();

/// Instantiates the named backend for one simulated process. `client_id` is
/// the process's seed-salted identity (apps::spmdClientId); backends without
/// client-stamped identities ignore it.
std::unique_ptr<Backend> makeBackend(std::string_view api, const Env& env,
                                     hw::NodeId node, std::uint32_t client_id);

}  // namespace daosim::io
