#include "io/backend.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "dfs/dfs.h"
#include "hdf5/h5.h"
#include "lustre/lustre.h"
#include "placement/oid.h"
#include "posix/dfuse.h"
#include "posix/vfs.h"
#include "rados/rados.h"
#include "sim/rng.h"

namespace daosim::io {

sim::Task<void> Object::sync() { co_return; }
sim::Task<void> Object::close() { co_return; }

sim::Task<std::unique_ptr<Index>> Backend::openIndex(IndexSpec spec) {
  (void)spec;
  throw std::logic_error("io: backend has no native key-value index");
}

namespace {

constexpr std::uint64_t kDefaultChunk = 1 << 20;

/// The well-known OID every rank agrees on for shared-object mode.
placement::ObjectId sharedDataOid(placement::ObjClass oc, std::uint64_t seed) {
  return placement::makeOid(oc, sim::hashCombine(seed, 0x510AD), 0xfffffff1u);
}

/// Shared index object: same OID for every process (keys spread over all
/// targets through the object's layout).
placement::ObjectId sharedIndexOid(placement::ObjClass oc) {
  return placement::makeOid(oc, 0xF1E7D, 0xfffffff0u);
}

posix::OpenFlags posixFlags(const OpenSpec& spec) {
  if (!spec.create) return posix::OpenFlags::readOnly();
  if (spec.append) return posix::OpenFlags::appendCreate();
  return posix::OpenFlags::writeCreate();
}

daos::DaosSystem& requireDaos(const Env& env) {
  if (env.daos == nullptr) {
    throw std::invalid_argument("io: backend needs a DAOS Env (env.daos)");
  }
  return *env.daos;
}

lustre::LustreSystem& requireLustre(const Env& env) {
  if (env.lustre == nullptr) {
    throw std::invalid_argument("io: backend needs a Lustre Env (env.lustre)");
  }
  return *env.lustre;
}

rados::CephCluster& requireCeph(const Env& env) {
  if (env.ceph == nullptr) {
    throw std::invalid_argument("io: backend needs a Ceph Env (env.ceph)");
  }
  return *env.ceph;
}

// --- daos-array ----------------------------------------------------------

class DaosArrayObject final : public Object {
 public:
  explicit DaosArrayObject(daos::Array array) : array_(std::move(array)) {}

  sim::Task<void> write(std::uint64_t offset, vos::Payload data) override {
    co_await array_.write(offset, std::move(data));
  }
  sim::Task<vos::Payload> read(std::uint64_t offset,
                               std::uint64_t length) override {
    co_return co_await array_.read(offset, length);
  }
  sim::Task<std::uint64_t> size() override {
    co_return co_await array_.getSize();
  }

 private:
  daos::Array array_;
};

class DaosKvIndex final : public Index {
 public:
  explicit DaosKvIndex(daos::KeyValue kv) : kv_(std::move(kv)) {}

  sim::Task<void> put(std::string key, vos::Payload value) override {
    co_await kv_.put(std::move(key), std::move(value));
  }
  sim::Task<vos::Payload> get(std::string key) override {
    std::optional<vos::Payload> v = co_await kv_.get(std::move(key));
    if (!v) throw std::out_of_range("io: index key not found");
    co_return std::move(*v);
  }

 private:
  daos::KeyValue kv_;
};

class DaosArrayBackend final : public Backend {
 public:
  DaosArrayBackend(const Env& env, hw::NodeId node, std::uint32_t client_id)
      : env_(env), client_(requireDaos(env), node, client_id) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override {
    co_await client_.poolConnect();
    cont_ = co_await client_.contOpen(env_.container);
  }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    const daos::Array::Attrs attrs{
        .cell_size = 1,
        .chunk_size = spec.chunk_size ? spec.chunk_size : kDefaultChunk};
    placement::ObjectId oid;
    if (spec.shared) {
      oid = sharedDataOid(spec.oclass, env_.seed);
    } else if (spec.create) {
      oid = client_.nextOid(spec.oclass);
      oids_[spec.name] = oid;
    } else {
      oid = oids_.at(spec.name);
    }
    if (spec.create && spec.registered) {
      co_return std::make_unique<DaosArrayObject>(
          co_await daos::Array::create(client_, cont_, oid, attrs));
    }
    if (!spec.create && spec.registered) {
      co_return std::make_unique<DaosArrayObject>(
          co_await daos::Array::open(client_, cont_, oid));
    }
    co_return std::make_unique<DaosArrayObject>(
        daos::Array::openWithAttrs(client_, cont_, oid, attrs));
  }

  sim::Task<std::unique_ptr<Index>> openIndex(IndexSpec spec) override {
    const placement::ObjectId oid = spec.shared
                                        ? sharedIndexOid(spec.oclass)
                                        : client_.nextOid(spec.oclass);
    co_return std::make_unique<DaosKvIndex>(
        daos::KeyValue(client_, cont_, oid));
  }

 private:
  Env env_;
  Caps caps_{.shared_object = true, .native_index = true};
  daos::Client client_;
  daos::Container cont_;
  std::map<std::string, placement::ObjectId, std::less<>> oids_;
};

// --- dfs -----------------------------------------------------------------

class DfsObject final : public Object {
 public:
  DfsObject(dfs::FileSystem* fs, dfs::File file)
      : fs_(fs), file_(std::move(file)) {}

  sim::Task<void> write(std::uint64_t offset, vos::Payload data) override {
    (void)co_await fs_->write(file_, offset, std::move(data));
  }
  sim::Task<vos::Payload> read(std::uint64_t offset,
                               std::uint64_t length) override {
    co_return co_await fs_->read(file_, offset, length);
  }
  sim::Task<std::uint64_t> size() override {
    co_return co_await fs_->size(file_);
  }

 private:
  dfs::FileSystem* fs_;
  dfs::File file_;
};

class DfsBackend final : public Backend {
 public:
  DfsBackend(const Env& env, hw::NodeId node, std::uint32_t client_id)
      : env_(env), client_(requireDaos(env), node, client_id) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override {
    if (env_.dfs_mount == nullptr) {
      throw std::invalid_argument("io: dfs backend needs Env.dfs_mount");
    }
    co_await client_.poolConnect();
    fs_.emplace(env_.dfs_mount->withClient(client_));
  }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    const std::string path = "/bench/" + spec.name;
    if (spec.create) {
      dfs::File file = co_await fs_->open(path, {.create = true}, spec.oclass);
      co_return std::make_unique<DfsObject>(&*fs_, std::move(file));
    }
    dfs::File file = co_await fs_->open(path, {});
    co_return std::make_unique<DfsObject>(&*fs_, std::move(file));
  }

 private:
  Env env_;
  Caps caps_{.shared_object = true};
  daos::Client client_;
  std::optional<dfs::FileSystem> fs_;
};

// --- POSIX file over any Vfs (DFUSE, DFUSE+IL, Lustre) -------------------

class PosixObject final : public Object {
 public:
  PosixObject(posix::Vfs* vfs, posix::Fd fd) : vfs_(vfs), fd_(fd) {}

  sim::Task<void> write(std::uint64_t offset, vos::Payload data) override {
    (void)co_await vfs_->pwrite(fd_, offset, std::move(data));
  }
  sim::Task<vos::Payload> read(std::uint64_t offset,
                               std::uint64_t length) override {
    co_return co_await vfs_->pread(fd_, offset, length);
  }
  sim::Task<std::uint64_t> size() override {
    const posix::FileStat st = co_await vfs_->fstat(fd_);
    co_return st.size;
  }
  sim::Task<void> sync() override { co_await vfs_->fsync(fd_); }
  sim::Task<void> close() override { co_await vfs_->close(fd_); }

 private:
  posix::Vfs* vfs_;
  posix::Fd fd_;
};

class DfusePosixBackend final : public Backend {
 public:
  DfusePosixBackend(const Env& env, hw::NodeId node, std::uint32_t client_id,
                    bool intercept)
      : env_(env),
        node_(node),
        intercept_(intercept),
        client_(requireDaos(env), node, client_id) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override {
    co_await client_.poolConnect();
    posix::DfuseDaemon& daemon = this->daemon();
    if (intercept_) {
      if (env_.dfs_mount == nullptr) {
        throw std::invalid_argument("io: dfuse-il backend needs Env.dfs_mount");
      }
      process_fs_.emplace(env_.dfs_mount->withClient(client_));
      il_.emplace(daemon, *process_fs_);
    } else {
      plain_.emplace(daemon);
    }
  }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    posix::Vfs& v = vfs();
    const posix::Fd fd =
        co_await v.open("/bench/" + spec.name, posixFlags(spec));
    co_return std::make_unique<PosixObject>(&v, fd);
  }

 private:
  posix::DfuseDaemon& daemon() {
    if (env_.dfuse_daemons == nullptr || env_.dfuse_daemons->count(node_) == 0) {
      throw std::invalid_argument(
          "io: dfuse backend needs a DFUSE daemon on the client node "
          "(testbed with_dfuse = false?)");
    }
    return *env_.dfuse_daemons->at(node_);
  }
  posix::Vfs& vfs() {
    return intercept_ ? static_cast<posix::Vfs&>(*il_)
                      : static_cast<posix::Vfs&>(*plain_);
  }

  Env env_;
  hw::NodeId node_;
  bool intercept_;
  Caps caps_{};
  daos::Client client_;
  std::optional<dfs::FileSystem> process_fs_;
  std::optional<posix::DfuseVfs> plain_;
  std::optional<posix::InterceptVfs> il_;
};

// --- HDF5 ----------------------------------------------------------------

/// Datasets are named by op ordinal: the i-th write creates "d<i>" and the
/// i-th read opens "d<i>" — IOR's HDF5 mode maps sequential transfers to
/// one dataset each, so the byte offset is implicit in the dataset name.
class H5Object final : public Object {
 public:
  explicit H5Object(std::unique_ptr<hdf5::H5File> file)
      : file_(std::move(file)) {}

  sim::Task<void> write(std::uint64_t offset, vos::Payload data) override {
    (void)offset;
    const std::uint64_t n = data.size();
    hdf5::Dataset d = co_await file_->createDataset(
        "d" + std::to_string(next_create_++), n);
    co_await file_->writeDataset(d, std::move(data));
    written_ += n;
  }
  sim::Task<vos::Payload> read(std::uint64_t offset,
                               std::uint64_t length) override {
    (void)offset;
    (void)length;
    hdf5::Dataset d =
        co_await file_->openDataset("d" + std::to_string(next_open_++));
    co_return co_await file_->readDataset(d);
  }
  /// Local bookkeeping only: HDF5 has no cheap whole-file size probe.
  sim::Task<std::uint64_t> size() override { co_return written_; }
  sim::Task<void> close() override { co_await file_->close(); }

 private:
  std::unique_ptr<hdf5::H5File> file_;
  std::uint64_t next_create_ = 0;
  std::uint64_t next_open_ = 0;
  std::uint64_t written_ = 0;
};

/// HDF5 with the POSIX (sec2) driver over DFUSE + interception library.
class Hdf5DfuseBackend final : public Backend {
 public:
  Hdf5DfuseBackend(const Env& env, hw::NodeId node, std::uint32_t client_id)
      : env_(env), node_(node), client_(requireDaos(env), node, client_id) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override {
    co_await client_.poolConnect();
    if (env_.dfuse_daemons == nullptr ||
        env_.dfuse_daemons->count(node_) == 0 || env_.dfs_mount == nullptr) {
      throw std::invalid_argument(
          "io: hdf5 backend needs a DFUSE daemon on the client node");
    }
    process_fs_.emplace(env_.dfs_mount->withClient(client_));
    vfs_.emplace(*env_.dfuse_daemons->at(node_), *process_fs_);
  }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    const std::string path = "/bench/" + spec.name + ".h5";
    std::unique_ptr<hdf5::H5File> file;
    if (spec.create) {
      file = co_await hdf5::H5PosixFile::create(*env_.sim, *vfs_, path);
    } else {
      file = co_await hdf5::H5PosixFile::open(*env_.sim, *vfs_, path);
    }
    co_return std::make_unique<H5Object>(std::move(file));
  }

 private:
  Env env_;
  hw::NodeId node_;
  Caps caps_{};
  daos::Client client_;
  std::optional<dfs::FileSystem> process_fs_;
  std::optional<posix::InterceptVfs> vfs_;
};

/// HDF5 through the DAOS VOL adaptor (container per file).
class Hdf5DaosBackend final : public Backend {
 public:
  Hdf5DaosBackend(const Env& env, hw::NodeId node, std::uint32_t client_id)
      : env_(env), client_(requireDaos(env), node, client_id) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override { co_await client_.poolConnect(); }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    std::unique_ptr<hdf5::H5File> file;
    if (spec.create) {
      file = co_await hdf5::H5DaosFile::create(client_, spec.name);
    } else {
      file = co_await hdf5::H5DaosFile::open(client_, spec.name);
    }
    co_return std::make_unique<H5Object>(std::move(file));
  }

 private:
  Env env_;
  Caps caps_{};
  daos::Client client_;
};

// --- lustre-posix --------------------------------------------------------

class LustreBackend final : public Backend {
 public:
  LustreBackend(const Env& env, hw::NodeId node, std::uint32_t /*client_id*/)
      : vfs_(requireLustre(env), node, env.lustre_stripe_count,
             env.lustre_stripe_size) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override { co_return; }

  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    const posix::Fd fd =
        co_await vfs_.open("/" + spec.name, posixFlags(spec));
    co_return std::make_unique<PosixObject>(&vfs_, fd);
  }

 private:
  Caps caps_{.append_log = true};
  lustre::LustreVfs vfs_;
};

// --- rados ---------------------------------------------------------------

class RadosObject final : public Object {
 public:
  RadosObject(rados::RadosClient* client, std::string object)
      : client_(client), object_(std::move(object)) {}

  sim::Task<void> write(std::uint64_t offset, vos::Payload data) override {
    co_await client_->write(object_, offset, std::move(data));
  }
  sim::Task<vos::Payload> read(std::uint64_t offset,
                               std::uint64_t length) override {
    co_return co_await client_->read(object_, offset, length);
  }
  sim::Task<std::uint64_t> size() override {
    co_return co_await client_->stat(object_);
  }

 private:
  rados::RadosClient* client_;
  std::string object_;
};

/// Repetition salt: a fresh testbed seed must perturb placement the way
/// rerunning on a real cluster would. DAOS backends get this through the
/// seed-salted client id baked into OIDs; RADOS places by object-name hash,
/// so the seed is spliced in after the name's first dot-delimited token
/// ("ior.3" -> "ior.<seed>.3").
std::string saltedObjectName(const std::string& name, std::uint64_t seed) {
  const std::string s = std::to_string(seed);
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return name + "." + s;
  return name.substr(0, dot + 1) + s + name.substr(dot);
}

class RadosBackend final : public Backend {
 public:
  RadosBackend(const Env& env, hw::NodeId node, std::uint32_t /*client_id*/)
      : env_(env),
        caps_{.max_object_bytes =
                  requireCeph(env).config().max_object_bytes},
        client_(*env.ceph, node) {}

  const Caps& caps() const override { return caps_; }

  sim::Task<void> connect() override { co_await client_.connect(); }

  /// RADOS objects spring into existence on first write: open only binds
  /// the (seed-salted) name.
  sim::Task<std::unique_ptr<Object>> open(OpenSpec spec) override {
    co_return std::make_unique<RadosObject>(
        &client_, saltedObjectName(spec.name, env_.seed));
  }

 private:
  Env env_;
  Caps caps_;
  rados::RadosClient client_;
};

// --- registry ------------------------------------------------------------

struct Entry {
  System system;
  Factory factory;
};

struct Registry {
  std::map<std::string, Entry, std::less<>> backends;
  std::map<std::string, std::string, std::less<>> aliases;
  std::vector<std::string> order;
};

void addBackend(Registry& r, std::string name, System system, Factory f) {
  if (r.backends.count(name) || r.aliases.count(name)) {
    throw std::invalid_argument("io: backend name already registered: " +
                                name);
  }
  r.order.push_back(name);
  r.backends.emplace(std::move(name), Entry{system, f});
}

void addAlias(Registry& r, std::string alias, std::string canonical) {
  if (r.backends.count(alias) || r.aliases.count(alias)) {
    throw std::invalid_argument("io: backend name already registered: " +
                                alias);
  }
  if (!r.backends.count(canonical)) {
    throw std::invalid_argument("io: alias target unknown: " + canonical);
  }
  r.aliases.emplace(std::move(alias), std::move(canonical));
}

template <typename B>
std::unique_ptr<Backend> make(const Env& env, hw::NodeId node,
                              std::uint32_t client_id) {
  return std::make_unique<B>(env, node, client_id);
}

std::unique_ptr<Backend> makeDfuse(const Env& env, hw::NodeId node,
                                   std::uint32_t client_id) {
  return std::make_unique<DfusePosixBackend>(env, node, client_id,
                                             /*intercept=*/false);
}

std::unique_ptr<Backend> makeDfuseIl(const Env& env, hw::NodeId node,
                                     std::uint32_t client_id) {
  return std::make_unique<DfusePosixBackend>(env, node, client_id,
                                             /*intercept=*/true);
}

Registry builtins() {
  Registry r;
  addBackend(r, "daos-array", System::kDaos, &make<DaosArrayBackend>);
  addBackend(r, "dfs", System::kDaos, &make<DfsBackend>);
  addBackend(r, "dfuse", System::kDaos, &makeDfuse);
  addBackend(r, "dfuse-il", System::kDaos, &makeDfuseIl);
  addBackend(r, "hdf5", System::kDaos, &make<Hdf5DfuseBackend>);
  addBackend(r, "hdf5-daos", System::kDaos, &make<Hdf5DaosBackend>);
  addBackend(r, "lustre-posix", System::kLustre, &make<LustreBackend>);
  addBackend(r, "rados", System::kCeph, &make<RadosBackend>);
  addAlias(r, "libdaos", "daos-array");
  addAlias(r, "array", "daos-array");
  addAlias(r, "libdfs", "dfs");
  addAlias(r, "dfuse+il", "dfuse-il");
  addAlias(r, "hdf5-dfuse", "hdf5");
  addAlias(r, "hdf5-posix", "hdf5");
  addAlias(r, "lustre", "lustre-posix");
  return r;
}

Registry& registry() {
  static Registry r = builtins();
  return r;
}

const Entry& lookup(std::string_view api) {
  Registry& r = registry();
  auto it = r.backends.find(api);
  if (it == r.backends.end()) {
    auto al = r.aliases.find(api);
    if (al != r.aliases.end()) it = r.backends.find(al->second);
  }
  if (it == r.backends.end()) {
    throw std::invalid_argument("io: unknown backend: " + std::string(api));
  }
  return it->second;
}

}  // namespace

void registerBackend(std::string name, System system, Factory factory) {
  addBackend(registry(), std::move(name), system, factory);
}

void registerAlias(std::string alias, std::string canonical) {
  addAlias(registry(), std::move(alias), std::move(canonical));
}

bool haveBackend(std::string_view api) {
  Registry& r = registry();
  return r.backends.count(api) > 0 || r.aliases.count(api) > 0;
}

std::string canonicalName(std::string_view api) {
  Registry& r = registry();
  auto al = r.aliases.find(api);
  if (al != r.aliases.end()) return al->second;
  if (r.backends.count(api)) return std::string(api);
  throw std::invalid_argument("io: unknown backend: " + std::string(api));
}

System backendSystem(std::string_view api) { return lookup(api).system; }

std::vector<std::string> backendNames() { return registry().order; }

std::unique_ptr<Backend> makeBackend(std::string_view api, const Env& env,
                                     hw::NodeId node,
                                     std::uint32_t client_id) {
  return lookup(api).factory(env, node, client_id);
}

}  // namespace daosim::io
