// Named metrics: counters, gauges and latency histograms.
//
// A MetricsRegistry is the cold-path companion of the tracer: layers (or the
// export code at end of run) register metrics by name once and hold stable
// pointers; add/inc on the returned handles never allocates. The registry
// serializes to a flat CSV or JSON dump with a schema-versioned header so
// downstream tooling can detect format drift.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "obs/histogram.h"

namespace daosim::obs {

/// Version stamped into every metrics dump (first CSV line / JSON field).
/// v2: metric names are CSV/JSON-escaped, and dumps may carry a telemetry
/// time-series section (`series,name,t_ns,value` rows — see obs/telemetry.h).
inline constexpr int kMetricsSchemaVersion = 2;

/// RFC-4180 field quoting: names containing commas, quotes or newlines are
/// wrapped in double quotes (embedded quotes doubled); everything else is
/// returned verbatim.
std::string csvField(const std::string& s);

/// JSON string-body escaping (quotes, backslashes, control characters); the
/// caller supplies the surrounding quotes.
std::string jsonEscape(const std::string& s);

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Handles are stable for the registry's lifetime (node-based map).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// CSV dump: `# daosim-metrics schema=N` header line, then
  /// `kind,name,field,value` rows (histograms expand to count/mean/p50/...).
  void writeCsv(std::ostream& os) const;

  /// JSON dump with a top-level `"schema"` field.
  void writeJson(std::ostream& os) const;

  /// The `kind,name,field,value` rows alone (no header) — used to splice
  /// registry contents into a telemetry dump.
  void writeCsvRows(std::ostream& os) const;

  /// The `"counters": ... , "gauges": ..., "histograms": ...` JSON fields
  /// alone (no braces, no schema) at the given indent.
  void writeJsonFields(std::ostream& os, const char* indent) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace daosim::obs
