#include "obs/telemetry.h"

#include <atomic>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "sim/simulation.h"

namespace daosim::obs {

namespace {

std::atomic<std::uint64_t> g_telemetry_epoch{1};

/// Deterministic double formatting for dumps: 15 significant digits keeps
/// every value we emit (ns-derived seconds, byte totals, fractions)
/// round-trippable while printing small fractions compactly.
std::string fmtNum(double v) {
  std::ostringstream ss;
  ss.precision(15);
  ss << v;
  return ss.str();
}

}  // namespace

const char* Telemetry::kindName(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kRate: return "rate";
  }
  return "?";
}

Telemetry::Telemetry(sim::Time interval)
    : interval_(interval > 0 ? interval : 1),
      epoch_(g_telemetry_epoch.fetch_add(1, std::memory_order_relaxed)) {}

Telemetry::~Telemetry() {
  if (sim_ != nullptr) detach();
}

Telemetry::Node* Telemetry::instrument(const std::string& path, Kind kind) {
  // Commas and quotes are escaped on export; newlines cannot be represented
  // in the line-based CSV dump, so reject them at registration.
  if (path.find('\n') != std::string::npos ||
      path.find('\r') != std::string::npos) {
    throw std::invalid_argument("telemetry path contains a newline");
  }
  auto it = by_path_.find(path);
  if (it != by_path_.end()) {
    if (it->second->kind != kind) {
      throw std::invalid_argument("telemetry path registered twice with "
                                  "different kinds: " +
                                  path);
    }
    return it->second;
  }
  nodes_.push_back(std::make_unique<Node>());
  Node* n = nodes_.back().get();
  n->path = path;
  n->kind = kind;
  by_path_.emplace(path, n);
  return n;
}

void Telemetry::addProbe(const std::string& path, Kind kind,
                         std::function<double()> fn, double scale) {
  Node* n = instrument(path, kind);
  n->probe = std::move(fn);
  n->scale = scale;
}

void Telemetry::attach(sim::Simulation& sim) { attachAt(sim, sim.now()); }

void Telemetry::attachAt(sim::Simulation& sim, sim::Time t0) {
  if (sim_ != nullptr) detach();
  sim_ = &sim;
  t0_ = t0;
  last_sample_ = t0_;
  next_due_ = t0_ + interval_;
  finished_ = false;
  sim.setTelemetry(this, next_due_);
}

sim::Time Telemetry::sampleUpTo(sim::Time t) {
  while (next_due_ < t) {
    sampleAt(next_due_);
    next_due_ += interval_;
  }
  return next_due_;
}

void Telemetry::sampleAt(sim::Time t) {
  for (auto& up : nodes_) {
    Node& n = *up;
    const double cur = n.probe ? n.probe() : n.value;
    double v;
    if (raw_samples_) {
      v = cur;  // lane mode: raw reading; mergeLanes runs the arithmetic
    } else if (n.kind == Kind::kRate) {
      const sim::Time dt = t - last_sample_;
      v = dt > 0 ? n.scale * (cur - n.prev) / sim::toSeconds(dt) : 0.0;
      n.prev = cur;
    } else {
      v = n.scale * cur;
    }
    n.value = cur;  // summary rows show the final cumulative/instant value
    n.samples.emplace_back(t - t0_, v);
  }
  last_sample_ = t;
}

void Telemetry::finish() { finishAt(sim_ != nullptr ? sim_->now() : 0); }

void Telemetry::finishAt(sim::Time end) {
  if (finished_) return;
  if (sim_ != nullptr) {
    while (next_due_ <= end) {
      sampleAt(next_due_);
      next_due_ += interval_;
    }
    if (end > last_sample_) sampleAt(end);  // final partial bin
    sim_->setTelemetry(nullptr, 0);
    sim_ = nullptr;
  }
  // Probes reference run-scoped objects (devices, stations); drop them so a
  // finished registry can safely outlive its testbed (TelemetryHub).
  for (auto& up : nodes_) up->probe = nullptr;
  finished_ = true;
}

void Telemetry::detach() { finish(); }

Telemetry Telemetry::mergeLanes(const std::vector<const Telemetry*>& lanes) {
  Telemetry out(lanes.empty() ? 1 : lanes.front()->interval_);
  if (lanes.empty()) {
    out.finished_ = true;
    return out;
  }
  // Union of paths in sorted order (per-lane by_path_ maps are sorted), so
  // node registration — and with it writeJson's node order — is independent
  // of the lane layout.
  struct Merged {
    Kind kind = Kind::kGauge;
    double scale = 1.0;
    // Summed raw reading per bin offset. Lane bin boundaries are identical
    // (attachAt/finishAt at group-wide times), so offsets line up exactly;
    // a path absent from some lanes contributes nothing there, matching a
    // serial probe that sums only the registered components.
    std::map<sim::Time, double> raw;
  };
  std::map<std::string, Merged> merged;
  for (const Telemetry* lane : lanes) {
    for (const auto& [path, n] : lane->by_path_) {
      Merged& m = merged[path];
      m.kind = n->kind;
      m.scale = n->scale;
      for (const auto& [t, v] : n->samples) m.raw[t] += v;
    }
  }
  for (auto& [path, m] : merged) {
    Node* n = out.instrument(path, m.kind);
    n->scale = m.scale;
    // Serial-identical bin arithmetic over the summed raws: rates diff
    // against the previous boundary's cumulative (starting from 0 at the
    // attach origin), gauges/counters emit the scaled reading.
    double prev = 0;
    sim::Time last = 0;  // offsets are relative to t0
    for (const auto& [t, raw] : m.raw) {
      double v;
      if (m.kind == Kind::kRate) {
        const sim::Time dt = t - last;
        v = dt > 0 ? m.scale * (raw - prev) / sim::toSeconds(dt) : 0.0;
        prev = raw;
      } else {
        v = m.scale * raw;
      }
      n->value = raw;
      n->samples.emplace_back(t, v);
      last = t;
    }
  }
  out.finished_ = true;
  return out;
}

const Telemetry::Node* Telemetry::find(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : it->second;
}

std::size_t Telemetry::sampleCount() const noexcept {
  std::size_t n = 0;
  for (const auto& up : nodes_) n += up->samples.size();
  return n;
}

void Telemetry::writeCsvRows(std::ostream& os,
                             const std::string& prefix) const {
  for (const auto& [path, n] : by_path_) {
    os << kindName(n->kind) << "," << csvField(prefix + path) << ",total,"
       << fmtNum(n->value * n->scale) << "\n";
  }
  for (const auto& [path, n] : by_path_) {
    const std::string name = csvField(prefix + path);
    for (const auto& [t, v] : n->samples) {
      os << "series," << name << "," << t << "," << fmtNum(v) << "\n";
    }
  }
}

void Telemetry::writeCsv(std::ostream& os,
                         const MetricsRegistry* extra) const {
  os << "# daosim-metrics schema=" << kMetricsSchemaVersion << "\n";
  os << "# telemetry interval_ns=" << interval_ << "\n";
  os << "kind,name,field,value\n";
  writeCsvRows(os, "");
  if (extra != nullptr) extra->writeCsvRows(os);
}

namespace {

void jsonBody(std::ostream& os, const Telemetry& t, const char* indent) {
  std::string ind(indent);
  os << ind << "\"summary\": {";
  bool first = true;
  for (const auto& n : t.nodes()) {
    os << (first ? "" : ",") << "\n"
       << ind << "  \"" << jsonEscape(n->path) << "\": {\"kind\": \""
       << Telemetry::kindName(n->kind)
       << "\", \"total\": " << fmtNum(n->value * n->scale) << "}";
    first = false;
  }
  if (!first) os << "\n" << ind;
  os << "},\n" << ind << "\"series\": {";
  first = true;
  for (const auto& n : t.nodes()) {
    os << (first ? "" : ",") << "\n"
       << ind << "  \"" << jsonEscape(n->path) << "\": [";
    bool fs = true;
    for (const auto& [ts, v] : n->samples) {
      os << (fs ? "" : ",") << "[" << ts << "," << fmtNum(v) << "]";
      fs = false;
    }
    os << "]";
    first = false;
  }
  if (!first) os << "\n" << ind;
  os << "}";
}

}  // namespace

void Telemetry::writeJson(std::ostream& os,
                          const MetricsRegistry* extra) const {
  os << "{\n  \"schema\": " << kMetricsSchemaVersion << ",\n"
     << "  \"interval_ns\": " << interval_ << ",\n";
  jsonBody(os, *this, "  ");
  if (extra != nullptr) {
    os << ",\n  \"metrics\": {\n";
    extra->writeJsonFields(os, "    ");
    os << "\n  }";
  }
  os << "\n}\n";
}

TelemetryHub& TelemetryHub::global() {
  static TelemetryHub hub;
  return hub;
}

void TelemetryHub::add(const std::string& label, Telemetry t) {
  t.finish();
  std::lock_guard<std::mutex> lock(mu_);
  runs_.emplace(label, std::move(t));
}

bool TelemetryHub::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.empty();
}

std::size_t TelemetryHub::runCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

void TelemetryHub::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.clear();
}

void TelemetryHub::writeCsv(std::ostream& os,
                            const MetricsRegistry* extra) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "# daosim-metrics schema=" << kMetricsSchemaVersion << "\n";
  for (const auto& [label, t] : runs_) {
    os << "# telemetry run=" << label << " interval_ns=" << t.interval()
       << "\n";
  }
  os << "kind,name,field,value\n";
  for (const auto& [label, t] : runs_) t.writeCsvRows(os, label + "/");
  if (extra != nullptr) extra->writeCsvRows(os);
}

void TelemetryHub::writeJson(std::ostream& os,
                             const MetricsRegistry* extra) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"schema\": " << kMetricsSchemaVersion << ",\n  \"runs\": {";
  bool first = true;
  for (const auto& [label, t] : runs_) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(label)
       << "\": {\n      \"interval_ns\": " << t.interval() << ",\n";
    jsonBody(os, t, "      ");
    os << "\n    }";
    first = false;
  }
  if (!first) os << "\n  ";
  os << "}";
  if (extra != nullptr) {
    os << ",\n  \"metrics\": {\n";
    extra->writeJsonFields(os, "    ");
    os << "\n  }";
  }
  os << "\n}\n";
}

}  // namespace daosim::obs
