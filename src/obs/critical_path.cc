#include "obs/critical_path.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <iomanip>
#include <utility>

namespace daosim::obs {

TrackId ExemplarReservoir::internTrack(int pid, std::string_view name) {
  auto key = std::make_pair(pid, std::string(name));
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(TrackDesc{pid, std::string(name)});
  track_ids_.emplace(std::move(key), id);
  return id;
}

void ExemplarReservoir::offer(OpRecord op) {
  auto& v = by_type_[op.type];
  auto pos = std::lower_bound(
      v.begin(), v.end(), op,
      [](const OpRecord& a, const OpRecord& b) { return slower(a, b); });
  if (v.size() >= k_ && pos == v.end()) return;
  v.insert(pos, std::move(op));
  if (v.size() > k_) v.pop_back();
}

void ExemplarReservoir::merge(const ExemplarReservoir& other) {
  std::vector<TrackId> remap(other.tracks_.size());
  for (std::size_t i = 0; i < other.tracks_.size(); ++i) {
    remap[i] = internTrack(other.tracks_[i].pid, other.tracks_[i].name);
  }
  for (const auto& [type, ops] : other.by_type_) {
    for (const OpRecord& src : ops) {
      OpRecord op = src;
      op.track = remap[op.track];
      for (TraceEvent& e : op.legs) e.track = remap[e.track];
      offer(std::move(op));
    }
  }
}

std::string trackStationClass(std::string_view track_name) {
  std::string out;
  out.reserve(track_name.size());
  for (char c : track_name) {
    if (c < '0' || c > '9') out.push_back(c);
  }
  return out;
}

std::vector<std::string> stationNames(const std::vector<TrackDesc>& tracks) {
  std::vector<std::string> names;
  names.reserve(tracks.size());
  for (const TrackDesc& t : tracks) names.push_back(trackStationClass(t.name));
  return names;
}

namespace {

// Walks the op span slice by slice and reports each slice's owner: the
// deepest leg active at that instant (ties: latest start, then highest leg
// id, then latest record order), or -1 for the uncovered client residual.
// Slices never straddle a leg boundary or a leg's wait/service split, so
// the callback sees each (owner, kind) run with exact integer bounds.
template <typename Fn>
void forEachSlice(const OpRecord& op, Fn&& fn) {
  const sim::Time lo = op.start;
  const sim::Time hi = op.start + op.dur;
  const auto& legs = op.legs;
  const std::size_t n = legs.size();

  // Depth via the parent chain; unknown parents count as roots (a parent
  // leg may be missing when an op was cut off mid-flight).
  std::map<LegId, std::size_t> by_id;
  for (std::size_t i = 0; i < n; ++i) {
    if (legs[i].leg != 0) by_id.emplace(legs[i].leg, i);
  }
  std::vector<int> depth(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    LegId p = legs[i].parent;
    int d = 1;
    // Bounded walk: a malformed trace cannot loop more than n steps.
    for (std::size_t steps = 0; p != 0 && steps < n; ++steps) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      ++d;
      p = legs[it->second].parent;
    }
    depth[i] = d;
  }

  std::vector<sim::Time> cuts;
  cuts.reserve(2 + 3 * n);
  cuts.push_back(lo);
  cuts.push_back(hi);
  const auto clip = [&](sim::Time t) {
    if (t > lo && t < hi) cuts.push_back(t);
  };
  for (const TraceEvent& e : legs) {
    clip(e.ts);
    clip(e.ts + e.wait);
    clip(e.ts + e.dur);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const sim::Time a = cuts[k];
    const sim::Time b = cuts[k + 1];
    std::ptrdiff_t owner = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = legs[i];
      if (e.ts > a || a >= e.ts + e.dur) continue;
      if (owner < 0) {
        owner = static_cast<std::ptrdiff_t>(i);
        continue;
      }
      const TraceEvent& o = legs[static_cast<std::size_t>(owner)];
      const int od = depth[static_cast<std::size_t>(owner)];
      if (depth[i] > od ||
          (depth[i] == od &&
           (e.ts > o.ts || (e.ts == o.ts && e.leg >= o.leg)))) {
        owner = static_cast<std::ptrdiff_t>(i);
      }
    }
    bool is_wait = false;
    if (owner >= 0) {
      const TraceEvent& o = legs[static_cast<std::size_t>(owner)];
      is_wait = a < o.ts + o.wait;
    }
    fn(owner, is_wait, b - a);
  }
}

double us(sim::Time ns) { return static_cast<double>(ns) / 1000.0; }

const std::string& trackStation(const std::vector<std::string>& stations,
                                TrackId t) {
  static const std::string kUnknown = "unknown";
  return t < stations.size() ? stations[t] : kUnknown;
}

struct WaitService {
  sim::Time wait = 0;
  sim::Time service = 0;
};

std::map<std::string, WaitService> shareMap(
    const OpRecord& op, const std::vector<std::string>& stations) {
  std::map<std::string, WaitService> acc;
  forEachSlice(op, [&](std::ptrdiff_t owner, bool is_wait, sim::Time dur) {
    const std::string& station =
        owner < 0 ? trackStation(stations, op.track)  // residual: client CPU
                  : trackStation(stations,
                                 op.legs[static_cast<std::size_t>(owner)].track);
    WaitService& ws = acc[owner < 0 ? "client" : station];
    (is_wait ? ws.wait : ws.service) += dur;
  });
  return acc;
}

void printShareRows(std::ostream& os, const std::map<std::string, WaitService>& acc,
                    sim::Time span, const char* indent) {
  os << indent << std::left << std::setw(16) << "station" << std::right
     << std::setw(12) << "wait_us" << std::setw(12) << "service_us"
     << std::setw(12) << "total_us" << std::setw(8) << "share%" << "\n";
  sim::Time sum = 0;
  os << std::fixed;
  for (const auto& [station, ws] : acc) {
    const sim::Time total = ws.wait + ws.service;
    sum += total;
    os << indent << std::left << std::setw(16) << station << std::right
       << std::setprecision(3) << std::setw(12) << us(ws.wait) << std::setw(12)
       << us(ws.service) << std::setw(12) << us(total) << std::setprecision(1)
       << std::setw(8)
       << (span > 0 ? 100.0 * static_cast<double>(total) /
                          static_cast<double>(span)
                    : 0.0)
       << "\n";
  }
  os << indent << std::left << std::setw(16) << "sum" << std::right
     << std::setprecision(3) << std::setw(36) << us(sum) << std::setw(8)
     << (sum == span ? "=span" : "!SPAN") << "\n";
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

std::map<std::string, std::vector<const OpRecord*>> groupByType(
    const std::vector<OpRecord>& ops) {
  std::map<std::string, std::vector<const OpRecord*>> by_type;
  for (const OpRecord& op : ops) by_type[op.type].push_back(&op);
  for (auto& [type, v] : by_type) {
    std::sort(v.begin(), v.end(), [](const OpRecord* a, const OpRecord* b) {
      if (a->dur != b->dur) return a->dur < b->dur;
      if (a->start != b->start) return a->start < b->start;
      if (a->rep != b->rep) return a->rep < b->rep;
      return a->seq < b->seq;
    });
  }
  return by_type;
}

}  // namespace

std::vector<StationShare> decomposeOp(
    const OpRecord& op, const std::vector<std::string>& stations) {
  std::vector<StationShare> out;
  for (const auto& [station, ws] : shareMap(op, stations)) {
    out.push_back(StationShare{station, ws.wait, ws.service});
  }
  return out;
}

void writeCriticalPath(std::ostream& os, const std::vector<OpRecord>& ops,
                       const std::vector<std::string>& stations) {
  os << "-- critical-path breakdown (wait vs service per station) --\n";
  if (ops.empty()) {
    os << "(no ops recorded)\n";
    return;
  }
  static constexpr std::array<double, 3> kPercentiles = {50.0, 95.0, 99.0};
  for (const auto& [type, v] : groupByType(ops)) {
    os << "== " << type << " (count=" << v.size() << ") ==\n";
    for (double p : kPercentiles) {
      // Nearest-rank percentile: an actual op, so its decomposition sums to
      // its span exactly (no interpolation).
      std::size_t idx = static_cast<std::size_t>(
          p / 100.0 * static_cast<double>(v.size()) + 0.999999);
      if (idx > 0) --idx;
      if (idx >= v.size()) idx = v.size() - 1;
      const OpRecord& ex = *v[idx];
      os << std::fixed << std::setprecision(3) << "  p" << std::setprecision(1)
         << p << ": op " << ex.seq << " rep " << ex.rep << ", latency "
         << std::setprecision(3) << us(ex.dur) << " us, " << ex.legs.size()
         << " legs\n";
      os.unsetf(std::ios::fixed);
      os << std::setprecision(6);
      printShareRows(os, shareMap(ex, stations), ex.dur, "    ");
    }
  }
}

void writeExemplars(std::ostream& os, const std::vector<OpRecord>& ops,
                    const std::vector<std::string>& stations,
                    std::size_t top) {
  os << "-- tail exemplars (slowest ops per type) --\n";
  if (ops.empty()) {
    os << "(no ops recorded)\n";
    return;
  }
  for (const auto& [type, v] : groupByType(ops)) {
    os << "== " << type << " ==\n";
    // groupByType sorts fastest-first; walk from the back for the tail.
    const std::size_t count = std::min(top, v.size());
    for (std::size_t i = 0; i < count; ++i) {
      const OpRecord& ex = *v[v.size() - 1 - i];
      os << std::fixed << std::setprecision(3) << "  #" << (i + 1) << "  op "
         << ex.seq << " rep " << ex.rep << "  latency " << us(ex.dur)
         << " us  [" << trackStation(stations, ex.track) << "]\n";
      // Leg tree: indent by causal depth (full parent-chain walk — legs
      // record when they end, so a parent always follows its children in
      // record order), printed in start-time order.
      std::map<LegId, std::size_t> by_id;
      for (std::size_t j = 0; j < ex.legs.size(); ++j) {
        if (ex.legs[j].leg != 0) by_id.emplace(ex.legs[j].leg, j);
      }
      std::vector<std::size_t> order(ex.legs.size());
      for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  if (ex.legs[a].ts != ex.legs[b].ts) {
                    return ex.legs[a].ts < ex.legs[b].ts;
                  }
                  return ex.legs[a].leg < ex.legs[b].leg;
                });
      for (std::size_t j : order) {
        const TraceEvent& e = ex.legs[j];
        int d = 1;
        LegId p = e.parent;
        for (std::size_t steps = 0; p != 0 && steps < ex.legs.size();
             ++steps) {
          auto it = by_id.find(p);
          if (it == by_id.end()) break;
          ++d;
          p = ex.legs[it->second].parent;
        }
        os << "    " << std::string(static_cast<std::size_t>(2 * d), ' ')
           << std::left << std::setw(std::max(1, 24 - 2 * d)) << e.name
           << std::right << " @" << std::setw(11) << us(e.ts - ex.start)
           << "  dur " << std::setw(11) << us(e.dur);
        if (e.wait != 0) os << "  wait " << us(e.wait);
        os << "  (" << trackStation(stations, e.track) << ")\n";
      }
      os.unsetf(std::ios::fixed);
      os << std::setprecision(6);
    }
  }
}

void writeFoldedStacks(std::ostream& os, const std::vector<OpRecord>& ops,
                       const std::vector<std::string>& stations) {
  std::map<std::string, sim::Time> folded;
  std::vector<std::size_t> chain;
  for (const OpRecord& op : ops) {
    // Map leg id -> index once per op for parent-chain walks.
    std::map<LegId, std::size_t> by_id;
    for (std::size_t i = 0; i < op.legs.size(); ++i) {
      if (op.legs[i].leg != 0) by_id.emplace(op.legs[i].leg, i);
    }
    forEachSlice(op, [&](std::ptrdiff_t owner, bool is_wait, sim::Time dur) {
      std::string path = op.type;
      if (owner < 0) {
        path += ";client";
      } else {
        chain.clear();
        std::size_t i = static_cast<std::size_t>(owner);
        chain.push_back(i);
        LegId p = op.legs[i].parent;
        for (std::size_t steps = 0; p != 0 && steps < op.legs.size();
             ++steps) {
          auto it = by_id.find(p);
          if (it == by_id.end()) break;
          chain.push_back(it->second);
          p = op.legs[it->second].parent;
        }
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
          const TraceEvent& e = op.legs[*it];
          path += ';';
          path += trackStation(stations, e.track);
          path += ':';
          path += e.name;
        }
        if (is_wait) path += ";[wait]";
      }
      folded[path] += dur;
    });
  }
  for (const auto& [path, ns] : folded) os << path << ' ' << ns << "\n";
}

void writeStationDiff(std::ostream& os, const std::vector<OpRecord>& ops_a,
                      const std::vector<std::string>& stations_a,
                      const std::vector<OpRecord>& ops_b,
                      const std::vector<std::string>& stations_b) {
  const auto totals = [](const std::vector<OpRecord>& ops,
                         const std::vector<std::string>& stations,
                         sim::Time& span_sum) {
    std::map<std::string, WaitService> acc;
    for (const OpRecord& op : ops) {
      span_sum += op.dur;
      for (const auto& [station, ws] : shareMap(op, stations)) {
        acc[station].wait += ws.wait;
        acc[station].service += ws.service;
      }
    }
    return acc;
  };
  sim::Time span_a = 0;
  sim::Time span_b = 0;
  const auto a = totals(ops_a, stations_a, span_a);
  const auto b = totals(ops_b, stations_b, span_b);

  os << "-- per-station diff (A: " << ops_a.size() << " ops, B: "
     << ops_b.size() << " ops) --\n";
  os << std::left << std::setw(16) << "station" << std::right << std::setw(14)
     << "A_us" << std::setw(14) << "B_us" << std::setw(9) << "A_shr%"
     << std::setw(9) << "B_shr%" << std::setw(10) << "delta_pp" << "\n";
  std::map<std::string, int> stations;
  for (const auto& [s, _] : a) stations.emplace(s, 0);
  for (const auto& [s, _] : b) stations.emplace(s, 0);
  os << std::fixed;
  for (const auto& [s, _] : stations) {
    const auto ita = a.find(s);
    const auto itb = b.find(s);
    const sim::Time ta =
        ita != a.end() ? ita->second.wait + ita->second.service : 0;
    const sim::Time tb =
        itb != b.end() ? itb->second.wait + itb->second.service : 0;
    const double sa =
        span_a > 0 ? 100.0 * static_cast<double>(ta) /
                         static_cast<double>(span_a)
                   : 0.0;
    const double sb =
        span_b > 0 ? 100.0 * static_cast<double>(tb) /
                         static_cast<double>(span_b)
                   : 0.0;
    os << std::left << std::setw(16) << s << std::right << std::setprecision(3)
       << std::setw(14) << us(ta) << std::setw(14) << us(tb)
       << std::setprecision(1) << std::setw(9) << sa << std::setw(9) << sb
       << std::showpos << std::setw(10) << (sb - sa) << std::noshowpos
       << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

}  // namespace daosim::obs
