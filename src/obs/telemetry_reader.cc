#include "obs/telemetry_reader.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace daosim::obs {

namespace {

/// Splits one CSV line, honouring RFC-4180 quoting (quoted fields may
/// contain commas; embedded quotes are doubled).
std::vector<std::string> splitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool allDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::vector<std::string> splitPath(const std::string& path) {
  std::vector<std::string> seg;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      seg.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  seg.push_back(std::move(cur));
  return seg;
}

}  // namespace

TelemetryDump parseTelemetryCsv(std::istream& is) {
  TelemetryDump dump;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("telemetry dump is empty");
  }
  const std::string magic = "# daosim-metrics schema=";
  if (line.rfind(magic, 0) != 0) {
    throw std::runtime_error(
        "not a daosim metrics/telemetry dump (missing '# daosim-metrics "
        "schema=N' header line)");
  }
  dump.schema = std::atoi(line.c_str() + magic.size());
  if (dump.schema != kMetricsSchemaVersion) {
    throw std::runtime_error(
        "unsupported metrics dump schema " + std::to_string(dump.schema) +
        " (this reader understands schema " +
        std::to_string(kMetricsSchemaVersion) +
        "); re-export the dump with a matching daosim build");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# telemetry [run=<label>] interval_ns=<n>"
      std::string label;
      const auto run_pos = line.find("run=");
      const auto int_pos = line.find("interval_ns=");
      if (run_pos != std::string::npos) {
        const auto end = line.find(' ', run_pos);
        label = line.substr(run_pos + 4, end == std::string::npos
                                             ? std::string::npos
                                             : end - (run_pos + 4));
      }
      if (int_pos != std::string::npos) {
        dump.run_intervals[label] = std::strtoull(
            line.c_str() + int_pos + std::string("interval_ns=").size(),
            nullptr, 10);
      }
      continue;
    }
    const auto f = splitCsv(line);
    if (f.size() != 4 || f[0] == "kind") continue;  // column header / junk
    if (f[0] == "series") {
      dump.series[f[1]].emplace_back(std::strtoll(f[2].c_str(), nullptr, 10),
                                     std::strtod(f[3].c_str(), nullptr));
    } else if (f[2] == "total") {
      dump.summary[f[1]] = {f[0], std::strtod(f[3].c_str(), nullptr)};
    } else {
      dump.metrics[f[1]][f[2]] = std::strtod(f[3].c_str(), nullptr);
    }
  }
  return dump;
}

std::string stationClass(const std::string& path) {
  std::vector<std::string> seg = splitPath(path);
  if (seg.size() > 1) seg.pop_back();  // metric leaf
  std::size_t start = seg.size();
  while (start > 0 && !allDigits(seg[start - 1])) --start;
  if (start == seg.size()) start = 0;  // all-numeric path: keep everything
  std::string out;
  for (std::size_t i = start; i < seg.size(); ++i) {
    if (!out.empty()) out.push_back('/');
    out += seg[i];
  }
  return out;
}

Analysis analyze(const TelemetryDump& dump) {
  Analysis a;

  // --- per-unit utilization from */busy_frac series ---------------------
  const std::string leaf = "/busy_frac";
  for (const auto& [path, pts] : dump.series) {
    if (path.size() <= leaf.size() ||
        path.compare(path.size() - leaf.size(), leaf.size(), leaf) != 0) {
      continue;
    }
    UnitUtil u;
    u.unit = path.substr(0, path.size() - leaf.size());
    u.cls = stationClass(path);
    double weighted = 0, total_dt = 0;
    std::int64_t prev_t = 0;
    for (const auto& [t, v] : pts) {
      const double dt = static_cast<double>(t - prev_t);
      if (dt > 0) {
        weighted += v * dt;
        total_dt += dt;
      }
      u.peak = std::max(u.peak, v);
      prev_t = t;
    }
    u.mean = total_dt > 0 ? weighted / total_dt : 0;
    a.units.push_back(std::move(u));
  }
  std::sort(a.units.begin(), a.units.end(),
            [](const UnitUtil& x, const UnitUtil& y) {
              return x.mean != y.mean ? x.mean > y.mean : x.unit < y.unit;
            });

  // --- class aggregation + straggler flags ------------------------------
  std::map<std::string, std::vector<const UnitUtil*>> by_class;
  for (const UnitUtil& u : a.units) by_class[u.cls].push_back(&u);
  for (const auto& [cls, us] : by_class) {
    ClassUtil c;
    c.cls = cls;
    c.units = static_cast<int>(us.size());
    for (const UnitUtil* u : us) {
      c.mean += u->mean;
      if (u->mean > c.max_unit) {
        c.max_unit = u->mean;
        c.hottest_unit = u->unit;
      }
    }
    c.mean /= static_cast<double>(us.size());
    c.imbalance = c.mean > 0 ? c.max_unit / c.mean : 0;
    c.straggler = c.imbalance > kStragglerImbalance && c.mean > 0.02;
    a.classes.push_back(std::move(c));
  }
  std::sort(a.classes.begin(), a.classes.end(),
            [](const ClassUtil& x, const ClassUtil& y) {
              return x.mean != y.mean ? x.mean > y.mean : x.cls < y.cls;
            });
  if (!a.classes.empty()) {
    a.verdict = a.classes.front().cls;
    a.verdict_util = a.classes.front().mean;
  }

  // --- wall-clock share per span layer from op.*_ns counters ------------
  std::map<std::string, double> per_cat;
  double total_ns = 0;
  for (const auto& [name, fields] : dump.metrics) {
    if (name.rfind("op.", 0) != 0) continue;
    if (name.size() < 3 || name.compare(name.size() - 3, 3, "_ns") != 0) {
      continue;
    }
    const auto it = fields.find("value");
    if (it == fields.end()) continue;  // histograms (latency_ns) have none
    const auto dot = name.rfind('.');
    std::string cat = name.substr(dot + 1, name.size() - dot - 1 - 3);
    per_cat[cat] += it->second;
    total_ns += it->second;
  }
  for (const auto& [cat, ns] : per_cat) {
    a.layer_share.emplace_back(cat, total_ns > 0 ? ns / total_ns : 0);
  }
  std::sort(a.layer_share.begin(), a.layer_share.end(),
            [](const auto& x, const auto& y) {
              return x.second != y.second ? x.second > y.second
                                          : x.first < y.first;
            });
  return a;
}

void writeReport(std::ostream& os, const Analysis& a, int top_n) {
  if (a.verdict.empty()) {
    os << "no utilization (busy_frac) series in dump — nothing to "
          "attribute\n";
    return;
  }
  const ClassUtil& top = a.classes.front();
  os << "bottleneck: " << a.verdict << " (mean util "
     << std::fixed << std::setprecision(1) << 100 * a.verdict_util << "%, "
     << top.units << " unit" << (top.units == 1 ? "" : "s") << ", hottest "
     << top.hottest_unit << " @ " << 100 * top.max_unit << "%)\n";

  os << "\nstation class utilization:\n";
  os << "  " << std::left << std::setw(24) << "class" << std::right
     << std::setw(7) << "units" << std::setw(8) << "mean%" << std::setw(8)
     << "max%" << std::setw(11) << "imbalance" << "\n";
  for (const ClassUtil& c : a.classes) {
    os << "  " << std::left << std::setw(24) << c.cls << std::right
       << std::setw(7) << c.units << std::setw(8) << std::setprecision(1)
       << 100 * c.mean << std::setw(8) << 100 * c.max_unit << std::setw(11)
       << std::setprecision(2) << c.imbalance
       << (c.straggler ? "  <-- straggler" : "") << "\n";
  }

  os << "\ntop " << top_n << " hottest components:\n";
  int shown = 0;
  for (const UnitUtil& u : a.units) {
    if (shown++ >= top_n) break;
    os << "  " << std::left << std::setw(44) << u.unit << std::right
       << " mean " << std::setw(5) << std::setprecision(1) << 100 * u.mean
       << "%  peak " << std::setw(5) << 100 * u.peak << "%\n";
  }

  if (!a.layer_share.empty()) {
    os << "\nwall-clock share per span layer (op.* counters):\n";
    for (const auto& [cat, share] : a.layer_share) {
      os << "  " << std::left << std::setw(16) << cat << std::right
         << std::setw(6) << std::setprecision(1) << 100 * share << "%\n";
    }
  }

  bool any_straggler = false;
  for (const ClassUtil& c : a.classes) any_straggler |= c.straggler;
  if (any_straggler) {
    os << "\nstragglers (max/mean > " << std::setprecision(1)
       << kStragglerImbalance << "):\n";
    for (const ClassUtil& c : a.classes) {
      if (!c.straggler) continue;
      os << "  " << c.cls << ": imbalance " << std::setprecision(2)
         << c.imbalance << ", hottest unit " << c.hottest_unit << "\n";
    }
  }
  os.unsetf(std::ios::fixed);
}

PdesAnalysis analyzePdes(const TelemetryDump& dump) {
  PdesAnalysis a;
  std::map<int, PdesShard> shards;
  for (const auto& [path, kv] : dump.summary) {
    // Accept any run-label prefix: "<label>/pdes/..." or bare "pdes/...".
    auto pos = path.find("pdes/");
    if (pos != 0 && (pos == std::string::npos || path[pos - 1] != '/')) {
      continue;
    }
    const std::string sub = path.substr(pos + 5);  // past "pdes/"
    const double v = kv.second;
    a.present = true;
    if (sub.rfind("shard/", 0) == 0) {
      const auto seg = splitPath(sub);
      if (seg.size() != 3 || !allDigits(seg[1])) continue;
      PdesShard& s = shards[std::atoi(seg[1].c_str())];
      if (seg[2] == "events") s.events += v;
      else if (seg[2] == "busy_ns") s.busy_ns += v;
      else if (seg[2] == "wait_ns") s.wait_ns += v;
      // busy_frac / events_per_s are recomputed from the summed times, so
      // multi-rep dumps aggregate correctly.
      continue;
    }
    if (sub == "shards") a.shards = std::max(a.shards, static_cast<int>(v));
    else if (sub == "lookahead_ns") a.lookahead_ns = std::max(a.lookahead_ns, v);
    else if (sub == "windows") a.windows += v;
    else if (sub == "cross_posts") a.cross_posts += v;
    else if (sub == "barrier_releases") a.barrier_releases += v;
    else if (sub == "late_releases") a.late_releases += v;
    else if (sub == "mailbox_flushes") a.mailbox_flushes += v;
    else if (sub == "mailbox_entries") a.mailbox_entries += v;
    else if (sub == "mailbox_bytes") a.mailbox_bytes += v;
    // "imbalance" is recomputed below from the (possibly summed) times.
  }
  if (!a.present) return a;

  double busy_sum = 0, busy_max = 0, rate_sum = 0;
  int rated = 0;
  for (auto& [id, s] : shards) {
    s.shard = id;
    const double wall = s.busy_ns + s.wait_ns;
    s.busy_frac = wall > 0 ? s.busy_ns / wall : 0;
    s.wait_share = wall > 0 ? s.wait_ns / wall : 0;
    s.events_per_s = s.busy_ns > 0 ? s.events / (s.busy_ns * 1e-9) : 0;
    busy_sum += s.busy_ns;
    busy_max = std::max(busy_max, s.busy_ns);
    if (s.events_per_s > 0) {
      rate_sum += s.events_per_s;
      ++rated;
    }
    a.per_shard.push_back(s);
  }
  const double busy_mean =
      a.per_shard.empty() ? 0 : busy_sum / static_cast<double>(a.per_shard.size());
  a.imbalance = busy_mean > 0 ? busy_max / busy_mean : 1.0;
  const double rate_mean = rated > 0 ? rate_sum / rated : 0;
  for (PdesShard& s : a.per_shard) {
    s.rel_rate = rate_mean > 0 ? s.events_per_s / rate_mean : 0;
    // A single-shard group has no peers to straggle behind; its wait is
    // zero by construction (inline window loop).
    s.straggler = a.per_shard.size() > 1 &&
                  (s.wait_share > kPdesWaitShare ||
                   (rate_mean > 0 && s.rel_rate < kPdesSlowRate));
  }

  std::ostringstream verdict;
  verdict << std::fixed;
  bool any = false;
  for (const PdesShard& s : a.per_shard) {
    if (!s.straggler) continue;
    verdict << (any ? "; " : "") << "shard " << s.shard << ": "
            << std::setprecision(0) << 100 * s.wait_share
            << "% barrier wait, events/s " << std::setprecision(1)
            << s.rel_rate << "x mean";
    any = true;
  }
  if (!any) {
    verdict << "balanced (imbalance " << std::setprecision(2) << a.imbalance
            << ")";
  }
  a.verdict = verdict.str();
  return a;
}

void writePdesReport(std::ostream& os, const PdesAnalysis& a) {
  if (!a.present) {
    os << "no pdes/* subtree in dump (serial run, or telemetry collected "
          "without shard stats)\n";
    return;
  }
  os << "pdes engine: " << a.shards << " shard" << (a.shards == 1 ? "" : "s")
     << ", lookahead " << std::fixed << std::setprecision(1)
     << a.lookahead_ns / 1000.0 << " us\n";
  os << "  windows " << std::setprecision(0) << a.windows << "  cross-posts "
     << a.cross_posts << "  barrier releases " << a.barrier_releases
     << " (late " << a.late_releases << ")\n";
  os << "  mailbox flushes " << a.mailbox_flushes << "  entries "
     << a.mailbox_entries << "  bytes " << a.mailbox_bytes << "\n";
  if (!a.per_shard.empty()) {
    os << "  " << std::left << std::setw(7) << "shard" << std::right
       << std::setw(12) << "events" << std::setw(10) << "busy_ms"
       << std::setw(10) << "wait_ms" << std::setw(7) << "busy%"
       << std::setw(10) << "ev/s" << std::setw(8) << "x-mean" << "\n";
    for (const PdesShard& s : a.per_shard) {
      os << "  " << std::left << std::setw(7) << s.shard << std::right
         << std::setw(12) << std::setprecision(0) << s.events
         << std::setw(10) << std::setprecision(2) << s.busy_ns / 1e6
         << std::setw(10) << s.wait_ns / 1e6 << std::setw(7)
         << std::setprecision(1) << 100 * s.busy_frac << std::setw(10)
         << std::setprecision(0) << s.events_per_s << std::setw(8)
         << std::setprecision(2) << s.rel_rate
         << (s.straggler ? "  <-- straggler" : "") << "\n";
    }
  }
  os << "  imbalance (max/mean busy): " << std::setprecision(2)
     << a.imbalance << "\n";
  os << "  verdict: " << a.verdict << "\n";
  os.unsetf(std::ios::fixed);
}

}  // namespace daosim::obs
