// Span tracer: deterministic (simulated-time) event recording with
// chrome://tracing / Perfetto JSON export.
//
// Two event shapes:
//   * op spans — one per client-API operation (array.write, dfuse.pread,
//     rados.read, ...), exported as async "b"/"e" pairs keyed by the op id,
//     so overlapping ops from one process (event-queue async I/O) stay
//     well-formed;
//   * legs — the time an op spent in one station of the pipeline (net
//     request, server queue, xstream service, device, net response),
//     exported as complete "X" events carrying the op id in args.
//
// Tracks follow the paper's topology: one pid per simulated node, one tid
// per station/xstream/client. All timestamps are simulated nanoseconds, so
// traces are bit-identical across runs with the same seed.
//
// Schema 2 adds the causal-tree fields: each leg carries its own id, the id
// of the leg it ran under (parent), and the queue-wait prefix of its
// duration. Legs whose new fields are all zero serialize exactly as in
// schema 1, so depth-1 traces are unchanged apart from the version stamp.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace daosim::obs {

/// Version stamped as the first field of every trace dump.
inline constexpr int kTraceSchemaVersion = 2;

using OpId = std::uint64_t;
using TrackId = std::uint32_t;

/// Per-op leg number (1-based; 0 means "no leg" / root). Allocated by
/// Observer in leg-record order, so ids are deterministic.
using LegId = std::uint32_t;

// An OpId packs the op sequence number (low 40 bits) with the id of the leg
// the current code path runs under (high 24 bits). Instrumentation already
// threads `obs::OpId op` through every coroutine as plain data (the GCC-12
// closure-parameter rule forbids capturing context instead), so causal
// parents ride along without touching any signature: a parent leg calls
// withParent(op, id) and passes the result to its children.
inline constexpr int kOpSeqBits = 40;
inline constexpr OpId kOpSeqMask = (OpId{1} << kOpSeqBits) - 1;

constexpr OpId opSeq(OpId op) noexcept { return op & kOpSeqMask; }
constexpr LegId opParent(OpId op) noexcept {
  return static_cast<LegId>(op >> kOpSeqBits);
}
constexpr OpId withParent(OpId op, LegId parent) noexcept {
  return opSeq(op) | (static_cast<OpId>(parent) << kOpSeqBits);
}

/// Pipeline leg categories; kClient is the residual (op latency not covered
/// by any recorded leg: client-side CPU, library overhead, local waits).
enum class Cat : std::uint8_t {
  kClient = 0,
  kNetRequest,
  kServerQueue,
  kService,
  kDevice,
  kNetResponse,
  kOther,
};
inline constexpr int kCatCount = 7;

const char* catName(Cat c) noexcept;

struct TraceEvent {
  sim::Time ts = 0;
  sim::Time dur = 0;
  OpId op = 0;           // op sequence number (parent bits stripped)
  TrackId track = 0;
  const char* name = nullptr;  // static string (op type or leg name)
  Cat cat = Cat::kOther;
  bool is_span = false;  // true: async op span; false: "X" leg
  // Causal-tree fields (legs only; schema 2). All-zero legs serialize
  // exactly as schema-1 events did.
  LegId leg = 0;         // this leg's id within its op
  LegId parent = 0;      // id of the enclosing leg (0 = directly under op)
  sim::Time wait = 0;    // queue-wait prefix of dur; the rest is service
};

class Tracer {
 public:
  /// Registers (or finds) the track `name` under process `pid`.
  TrackId track(int pid, std::string_view name);

  void span(TrackId track, OpId op, const char* type, sim::Time start,
            sim::Time end) {
    events_.push_back(TraceEvent{.ts = start,
                                 .dur = end - start,
                                 .op = opSeq(op),
                                 .track = track,
                                 .name = type,
                                 .cat = Cat::kClient,
                                 .is_span = true});
  }

  void leg(TrackId track, OpId op, const char* name, Cat cat, sim::Time start,
           sim::Time end, LegId leg_id = 0, LegId parent = 0,
           sim::Time wait = 0) {
    events_.push_back(TraceEvent{.ts = start,
                                 .dur = end - start,
                                 .op = opSeq(op),
                                 .track = track,
                                 .name = name,
                                 .cat = cat,
                                 .is_span = false,
                                 .leg = leg_id,
                                 .parent = parent,
                                 .wait = wait});
  }

  void push(const TraceEvent& e) { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t trackCount() const noexcept { return tracks_.size(); }
  int trackPid(TrackId id) const noexcept { return tracks_[id].pid; }
  const std::string& trackName(TrackId id) const noexcept {
    return tracks_[id].name;
  }

  /// Chrome-trace JSON: `{"schema": N, "traceEvents": [...]}` with one event
  /// object per line (metadata first, then events sorted by timestamp).
  void writeChromeTrace(std::ostream& os) const;

 private:
  struct Track {
    int pid;
    std::string name;
  };

  struct KeyLess {
    using is_transparent = void;
    bool operator()(const std::pair<int, std::string>& a,
                    const std::pair<int, std::string_view>& b) const noexcept {
      return a.first < b.first ||
             (a.first == b.first && std::string_view(a.second) < b.second);
    }
    bool operator()(const std::pair<int, std::string_view>& a,
                    const std::pair<int, std::string>& b) const noexcept {
      return a.first < b.first ||
             (a.first == b.first && a.second < std::string_view(b.second));
    }
    bool operator()(const std::pair<int, std::string>& a,
                    const std::pair<int, std::string>& b) const noexcept {
      return a.first < b.first || (a.first == b.first && a.second < b.second);
    }
  };

  std::vector<Track> tracks_;
  std::map<std::pair<int, std::string>, TrackId, KeyLess> by_name_;
  std::vector<TraceEvent> events_;
};

}  // namespace daosim::obs
