// Critical-path analysis over causal leg trees (trace schema 2).
//
// Three pieces:
//   * ExemplarReservoir — bounded-memory store of the K slowest ops per
//     op-type with their full leg trees. Offers are kept in a total order
//     (duration desc, then start/rep/seq asc), so merging per-rep
//     reservoirs in any order yields the same result — the analogue of
//     TelemetryHub's (time, seq) merge, and what makes `--jobs N` runs
//     byte-identical to serial ones.
//   * decomposeOp — exact per-op wait-vs-service split: every nanosecond of
//     the op span is attributed to the deepest leg active at that instant
//     (its queue-wait prefix or its service remainder), or to the "client"
//     residual when no leg is active. Integer arithmetic throughout, so the
//     per-op station sums equal the span duration exactly.
//   * writers — p50/p95/p99 breakdown tables, exemplar leg-tree dumps,
//     folded-stack flamegraph lines, and a per-station A/B diff. Shared by
//     tools/daosim_trace and the in-process reservoir printers.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace daosim::obs {

struct TrackDesc {
  int pid = 0;
  std::string name;
};

/// One op with its retained leg tree; the unit both the reservoir and the
/// trace reader hand to the analyzer. `track` indexes the owning container's
/// track table; leg names are static strings (instrumentation literals) or
/// strings interned by the trace reader.
struct OpRecord {
  std::string type;
  std::uint64_t seq = 0;   // op sequence number within its run
  std::uint32_t rep = 0;   // repetition index (0 for single runs)
  TrackId track = 0;
  sim::Time start = 0;
  sim::Time dur = 0;
  std::vector<TraceEvent> legs;
};

/// Keeps the K slowest ops per op-type, each with its full leg tree and a
/// private track table (so exemplars survive the simulation that produced
/// them). Memory is O(types * K * legs-per-op) regardless of run length.
class ExemplarReservoir {
 public:
  explicit ExemplarReservoir(std::size_t k) : k_(k == 0 ? 1 : k) {}

  /// Total order used for retention: slower ops first; ties broken by
  /// (start, rep, seq) so the winner set is unique and merge-order free.
  static bool slower(const OpRecord& a, const OpRecord& b) noexcept {
    if (a.dur != b.dur) return a.dur > b.dur;
    if (a.start != b.start) return a.start < b.start;
    if (a.rep != b.rep) return a.rep < b.rep;
    return a.seq < b.seq;
  }

  /// Registers (or finds) a track in the reservoir's own table.
  TrackId internTrack(int pid, std::string_view name);

  /// Considers `op` for retention; leg events must already reference this
  /// reservoir's track table (see Observer's remapping at endOp).
  void offer(OpRecord op);

  /// Folds `other` into this reservoir, remapping its track ids. offer() is
  /// commutative under slower(), so any merge order gives the same state.
  void merge(const ExemplarReservoir& other);

  std::size_t k() const noexcept { return k_; }
  const std::vector<TrackDesc>& tracks() const noexcept { return tracks_; }
  /// Per type, the retained ops sorted slowest-first.
  const std::map<std::string, std::vector<OpRecord>>& byType() const noexcept {
    return by_type_;
  }

 private:
  std::size_t k_;
  std::vector<TrackDesc> tracks_;
  std::map<std::pair<int, std::string>, TrackId> track_ids_;
  std::map<std::string, std::vector<OpRecord>> by_type_;
};

/// Wait/service nanoseconds one op spent in one station class. `station` is
/// the digit-stripped track name ("engine0.tgt3" -> "engine.tgt"); the
/// residual not covered by any leg is the pseudo-station "client".
struct StationShare {
  std::string station;
  sim::Time wait = 0;
  sim::Time service = 0;
};

/// Strips digit runs from a track name to get its station class.
std::string trackStationClass(std::string_view track_name);

/// Exact critical-path decomposition of one op (see file comment). The
/// returned shares are sorted by station name and their wait+service sums
/// equal `op.dur` exactly. `stations[t]` names track t (see trackStationClass).
std::vector<StationShare> decomposeOp(const OpRecord& op,
                                      const std::vector<std::string>& stations);

/// Per-op-type breakdown tables: for p50/p95/p99 (nearest-rank over the
/// given ops), prints the percentile op's station wait/service split plus a
/// sum row equal to the op's span. `ops` may come from a reservoir (tail
/// only) or a full trace.
void writeCriticalPath(std::ostream& os, const std::vector<OpRecord>& ops,
                       const std::vector<std::string>& stations);

/// Human-readable dump of the K slowest ops per type with their leg trees
/// (indent = causal depth, wait/service split per leg).
void writeExemplars(std::ostream& os, const std::vector<OpRecord>& ops,
                    const std::vector<std::string>& stations, std::size_t top);

/// Folded-stack flamegraph lines ("type;station:leg;... ns"), aggregated
/// over all ops and sorted by path — feed to flamegraph.pl or speedscope.
/// Wait time gets a ";[wait]" leaf frame.
void writeFoldedStacks(std::ostream& os, const std::vector<OpRecord>& ops,
                       const std::vector<std::string>& stations);

/// Per-station A/B comparison of two runs: total wait/service and share of
/// all op time, with deltas in percentage points.
void writeStationDiff(std::ostream& os, const std::vector<OpRecord>& ops_a,
                      const std::vector<std::string>& stations_a,
                      const std::vector<OpRecord>& ops_b,
                      const std::vector<std::string>& stations_b);

/// Normalized station name per track id for a track table (helper shared by
/// the CLI and the reservoir printers).
std::vector<std::string> stationNames(const std::vector<TrackDesc>& tracks);

/// Flattens a reservoir's retained ops into one list for the writers above.
inline std::vector<OpRecord> reservoirOps(const ExemplarReservoir& r) {
  std::vector<OpRecord> out;
  for (const auto& [type, ops] : r.byType()) {
    out.insert(out.end(), ops.begin(), ops.end());
  }
  return out;
}

}  // namespace daosim::obs
