#include "obs/metrics.h"

#include <iomanip>

namespace daosim::obs {

namespace {

void histRows(std::ostream& os, const std::string& name, const Histogram& h) {
  os << "histogram," << name << ",count," << h.count() << "\n";
  os << "histogram," << name << ",min," << h.min() << "\n";
  os << "histogram," << name << ",max," << h.max() << "\n";
  os << "histogram," << name << ",mean," << h.mean() << "\n";
  os << "histogram," << name << ",p50," << h.percentile(50) << "\n";
  os << "histogram," << name << ",p95," << h.percentile(95) << "\n";
  os << "histogram," << name << ",p99," << h.percentile(99) << "\n";
}

void histJson(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"min\":" << h.min()
     << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
     << ",\"p50\":" << h.percentile(50) << ",\"p95\":" << h.percentile(95)
     << ",\"p99\":" << h.percentile(99) << "}";
}

}  // namespace

void MetricsRegistry::writeCsv(std::ostream& os) const {
  os << "# daosim-metrics schema=" << kMetricsSchemaVersion << "\n";
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",value," << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",value," << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) histRows(os, name, h);
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": " << kMetricsSchemaVersion << ",\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": ";
    histJson(os, h);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace daosim::obs
