#include "obs/metrics.h"

#include <cstdio>

namespace daosim::obs {

std::string csvField(const std::string& s) {
  bool needs_quote = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void histRows(std::ostream& os, const std::string& name, const Histogram& h) {
  const std::string n = csvField(name);
  os << "histogram," << n << ",count," << h.count() << "\n";
  os << "histogram," << n << ",min," << h.min() << "\n";
  os << "histogram," << n << ",max," << h.max() << "\n";
  os << "histogram," << n << ",mean," << h.mean() << "\n";
  os << "histogram," << n << ",p50," << h.percentile(50) << "\n";
  os << "histogram," << n << ",p95," << h.percentile(95) << "\n";
  os << "histogram," << n << ",p99," << h.percentile(99) << "\n";
}

void histJson(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"min\":" << h.min()
     << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
     << ",\"p50\":" << h.percentile(50) << ",\"p95\":" << h.percentile(95)
     << ",\"p99\":" << h.percentile(99) << "}";
}

}  // namespace

void MetricsRegistry::writeCsvRows(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << "counter," << csvField(name) << ",value," << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << csvField(name) << ",value," << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) histRows(os, name, h);
}

void MetricsRegistry::writeCsv(std::ostream& os) const {
  os << "# daosim-metrics schema=" << kMetricsSchemaVersion << "\n";
  os << "kind,name,field,value\n";
  writeCsvRows(os);
}

void MetricsRegistry::writeJsonFields(std::ostream& os,
                                      const char* indent) const {
  os << indent << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n" << indent << "  \"" << jsonEscape(name)
       << "\": " << c.value();
    first = false;
  }
  if (!first) os << "\n" << indent;
  os << "},\n" << indent << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n" << indent << "  \"" << jsonEscape(name)
       << "\": " << g.value();
    first = false;
  }
  if (!first) os << "\n" << indent;
  os << "},\n" << indent << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n" << indent << "  \"" << jsonEscape(name)
       << "\": ";
    histJson(os, h);
    first = false;
  }
  if (!first) os << "\n" << indent;
  os << "}";
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": " << kMetricsSchemaVersion << ",\n";
  writeJsonFields(os, "  ");
  os << "\n}\n";
}

}  // namespace daosim::obs
