// Re-ingestion of daosim chrome-trace dumps for offline analysis.
//
// Parses the JSON written by Tracer::writeChromeTrace back into track
// tables and per-op leg trees (the analyzer's OpRecord form). The format is
// the tool's own output — one event object per line — so the parser is a
// line scanner, not a general JSON parser; it is strict about the schema
// stamp and required fields and throws TraceFormatError rather than
// producing partial results (tools/daosim_trace turns that into a non-zero
// exit).
#pragma once

#include <deque>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/critical_path.h"

namespace daosim::obs {

class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct TraceDump {
  int schema = 0;
  std::vector<TrackDesc> tracks;
  /// Completed ops with their leg trees, in file (time) order.
  std::vector<OpRecord> ops;
  /// Spans begun but never ended (ops cut off mid-run) — reported, not kept.
  std::size_t dropped_opens = 0;
  /// Interned leg/op name storage; OpRecord legs point into this.
  std::deque<std::string> names;
};

/// Parses a schema-2 daosim trace. Throws TraceFormatError on a missing or
/// mismatched schema stamp and on malformed event lines.
TraceDump parseChromeTrace(std::istream& is);

}  // namespace daosim::obs
