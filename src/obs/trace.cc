#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace daosim::obs {

const char* catName(Cat c) noexcept {
  switch (c) {
    case Cat::kClient:
      return "client";
    case Cat::kNetRequest:
      return "net_request";
    case Cat::kServerQueue:
      return "server_queue";
    case Cat::kService:
      return "service";
    case Cat::kDevice:
      return "device";
    case Cat::kNetResponse:
      return "net_response";
    case Cat::kOther:
      return "other";
  }
  return "other";
}

TrackId Tracer::track(int pid, std::string_view name) {
  auto it = by_name_.find(std::make_pair(pid, name));
  if (it != by_name_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{pid, std::string(name)});
  by_name_.emplace(std::make_pair(pid, std::string(name)), id);
  return id;
}

namespace {

// Timestamps in chrome trace JSON are microseconds; emit fractional µs so
// nanosecond resolution survives the export.
void writeMicros(std::ostream& os, sim::Time ns) {
  os << ns / 1000;
  const sim::Time frac = ns % 1000;
  if (frac != 0) {
    os << '.' << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + frac / 10 % 10)
       << static_cast<char>('0' + frac % 10);
  }
}

}  // namespace

void Tracer::writeChromeTrace(std::ostream& os) const {
  os << "{\"schema\": " << kTraceSchemaVersion
     << ", \"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  // Metadata: name each simulated node (pid) and station/client (tid).
  std::vector<int> pids;
  for (const auto& t : tracks_) pids.push_back(t.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (int pid : pids) {
    std::ostringstream ss;
    ss << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"node" << pid << "\"}}";
    emit(ss.str());
  }
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    std::ostringstream ss;
    ss << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << tracks_[tid].pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << tracks_[tid].name
       << "\"}}";
    emit(ss.str());
  }

  // Flatten: spans become async "b"/"e" pairs keyed by op id (overlapping
  // ops from one process stay distinguishable), legs become complete "X"
  // events. Each record carries its own timestamp so the file can be sorted
  // time-monotone — the round-trip test relies on that ordering.
  struct Record {
    sim::Time ts;
    std::string json;
  };
  std::vector<Record> records;
  records.reserve(events_.size() * 2);
  for (const TraceEvent& e : events_) {
    const Track& t = tracks_[e.track];
    if (e.is_span) {
      std::ostringstream b;
      b << "{\"ph\":\"b\",\"cat\":\"op\",\"id\":" << e.op << ",\"name\":\""
        << e.name << "\",\"pid\":" << t.pid << ",\"tid\":" << e.track
        << ",\"ts\":";
      writeMicros(b, e.ts);
      b << "}";
      records.push_back(Record{e.ts, b.str()});
      std::ostringstream x;
      x << "{\"ph\":\"e\",\"cat\":\"op\",\"id\":" << e.op << ",\"name\":\""
        << e.name << "\",\"pid\":" << t.pid << ",\"tid\":" << e.track
        << ",\"ts\":";
      writeMicros(x, e.ts + e.dur);
      x << "}";
      records.push_back(Record{e.ts + e.dur, x.str()});
    } else {
      std::ostringstream x;
      x << "{\"ph\":\"X\",\"cat\":\"" << catName(e.cat) << "\",\"name\":\""
        << e.name << "\",\"pid\":" << t.pid << ",\"tid\":" << e.track
        << ",\"ts\":";
      writeMicros(x, e.ts);
      x << ",\"dur\":";
      writeMicros(x, e.dur);
      x << ",\"args\":{\"op\":" << e.op;
      // Causal-tree fields only when set, so depth-1 legs keep the exact
      // schema-1 serialization (guarded by tests/trace_test.cc).
      if (e.leg != 0) x << ",\"leg\":" << e.leg;
      if (e.parent != 0) x << ",\"parent\":" << e.parent;
      if (e.wait != 0) {
        x << ",\"wait\":";
        writeMicros(x, e.wait);
      }
      x << "}}";
      records.push_back(Record{e.ts, x.str()});
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) { return a.ts < b.ts; });
  for (const Record& r : records) emit(r.json);
  os << "\n]}\n";
}

}  // namespace daosim::obs
