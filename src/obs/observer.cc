#include "obs/observer.h"

#include <atomic>
#include <iomanip>
#include <string>

namespace daosim::obs {

namespace {
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

Observer::Observer() : epoch_(++g_epoch) {}

Observer::~Observer() { detach(); }

void Observer::attach(sim::Simulation& sim) {
  detach();
  sim_ = &sim;
  sim.setObserver(this);
}

void Observer::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->setObserver(nullptr);
  sim_ = nullptr;
}

void Observer::enableTracing() {
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
  tracing_ = true;
}

void Observer::enableExemplars(std::size_t k, std::uint32_t rep) {
  if (reservoir_ == nullptr) {
    reservoir_ = std::make_unique<ExemplarReservoir>(k);
  }
  rep_ = rep;
}

sim::Time Observer::now() const noexcept {
  return sim_ != nullptr ? sim_->now() : 0;
}

TrackId Observer::track(int pid, std::string_view name) {
  // The tracer hosts the track registry even when event recording is off.
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
  return tracer_->track(pid, name);
}

TrackId Observer::reservoirTrack(TrackId t) {
  constexpr TrackId kUnmapped = ~TrackId{0};
  if (t >= reservoir_track_.size()) {
    reservoir_track_.resize(tracer_->trackCount(), kUnmapped);
  }
  if (reservoir_track_[t] == kUnmapped) {
    reservoir_track_[t] =
        reservoir_->internTrack(tracer_->trackPid(t), tracer_->trackName(t));
  }
  return reservoir_track_[t];
}

OpId Observer::beginOp(const char* /*type*/, TrackId /*track*/) {
  const OpId op = next_op_++;
  open_.emplace(op, OpenOp{});
  return op;
}

void Observer::endOp(OpId op, const char* type, TrackId track,
                     sim::Time start) {
  const sim::Time end = now();
  const sim::Time total = end - start;
  const OpId seq = opSeq(op);

  auto open_it = open_.find(seq);
  OpTypeAgg& agg = op_types_[type];
  ++agg.count;
  agg.latency.add(total);
  if (open_it != open_.end()) {
    sim::Time covered = 0;
    for (int c = 1; c < kCatCount; ++c) {  // skip kClient: it is the residual
      agg.cat_ns[c] += open_it->second.cat_ns[c];
      covered += open_it->second.cat_ns[c];
    }
    agg.cat_ns[0] += total > covered ? total - covered : 0;
    if (reservoir_ != nullptr && tracer_ != nullptr) {
      OpRecord rec;
      rec.type = type;
      rec.seq = seq;
      rec.rep = rep_;
      rec.track = reservoirTrack(track);
      rec.start = start;
      rec.dur = total;
      rec.legs = std::move(open_it->second.legs);
      for (TraceEvent& e : rec.legs) e.track = reservoirTrack(e.track);
      reservoir_->offer(std::move(rec));
    }
    open_.erase(open_it);
  } else {
    agg.cat_ns[0] += total;
  }

  if (tracing_) tracer_->span(track, seq, type, start, end);
}

LegId Observer::recordLeg(OpId op, Cat cat, TrackId track, const char* name,
                          sim::Time start, sim::Time wait, Cat wait_cat,
                          LegId id, bool charge) {
  const OpId seq = opSeq(op);
  if (seq == 0) return 0;
  const sim::Time end = now();
  const sim::Time dur = end - start;
  if (wait > dur) wait = dur;
  auto it = open_.find(seq);
  LegId lid = id;
  if (it != open_.end()) {
    if (lid == 0) lid = ++it->second.next_leg;
    if (charge) {
      it->second.cat_ns[static_cast<int>(wait_cat)] += wait;
      it->second.cat_ns[static_cast<int>(cat)] += dur - wait;
    }
  }
  const bool retain = it != open_.end() && reservoir_ != nullptr;
  if (tracing_ || retain) {
    const TraceEvent e{.ts = start,
                       .dur = dur,
                       .op = seq,
                       .track = track,
                       .name = name,
                       .cat = cat,
                       .is_span = false,
                       .leg = lid,
                       .parent = opParent(op),
                       .wait = wait};
    if (tracing_) tracer_->push(e);
    if (retain) it->second.legs.push_back(e);
  }
  return lid;
}

LegId Observer::leg(OpId op, Cat cat, TrackId track, const char* name,
                    sim::Time start, sim::Time wait, Cat wait_cat, LegId id) {
  return recordLeg(op, cat, track, name, start, wait, wait_cat, id,
                   /*charge=*/true);
}

LegId Observer::structLeg(OpId op, Cat cat, TrackId track, const char* name,
                          sim::Time start, sim::Time wait, LegId id) {
  return recordLeg(op, cat, track, name, start, wait, Cat::kServerQueue, id,
                   /*charge=*/false);
}

LegId Observer::openLeg(OpId op) {
  const OpId seq = opSeq(op);
  if (seq == 0) return 0;
  auto it = open_.find(seq);
  if (it == open_.end()) return 0;
  return ++it->second.next_leg;
}

void Observer::exportMetrics() {
  for (const auto& [type, agg] : op_types_) {
    metrics_.counter("op." + type + ".count").inc(agg.count);
    metrics_.histogram("op." + type + ".latency_ns").merge(agg.latency);
    for (int c = 0; c < kCatCount; ++c) {
      if (agg.cat_ns[c] == 0) continue;
      metrics_.counter("op." + type + "." + catName(static_cast<Cat>(c)) +
                       "_ns")
          .inc(agg.cat_ns[c]);
    }
  }
}

void Observer::writeTailReport(std::ostream& os) const {
  if (reservoir_ == nullptr) return;
  const std::vector<OpRecord> ops = reservoirOps(*reservoir_);
  const std::vector<std::string> stations = stationNames(reservoir_->tracks());
  writeExemplars(os, ops, stations, reservoir_->k());
  writeCriticalPath(os, ops, stations);
}

void Observer::writeChromeTrace(std::ostream& os) const {
  if (tracer_ != nullptr) {
    tracer_->writeChromeTrace(os);
  } else {
    os << "{\"schema\": " << kTraceSchemaVersion << ", \"traceEvents\": []}\n";
  }
}

void Observer::writeBreakdown(std::ostream& os) const {
  if (op_types_.empty()) return;
  os << "-- per-op latency and layer breakdown --\n";
  os << std::left << std::setw(18) << "op" << std::right << std::setw(8)
     << "count" << std::setw(10) << "mean_us" << std::setw(9) << "p50_us"
     << std::setw(9) << "p95_us" << std::setw(9) << "p99_us" << std::setw(9)
     << "max_us";
  for (int c = 0; c < kCatCount; ++c) {
    if (static_cast<Cat>(c) == Cat::kOther) continue;
    os << std::setw(13) << (std::string(catName(static_cast<Cat>(c))) + "%");
  }
  os << "\n";
  const auto us = [](double ns) { return ns / 1000.0; };
  for (const auto& [type, agg] : op_types_) {
    os << std::left << std::setw(18) << type << std::right << std::setw(8)
       << agg.count << std::fixed << std::setprecision(1) << std::setw(10)
       << us(agg.latency.mean()) << std::setw(9)
       << us(agg.latency.percentile(50)) << std::setw(9)
       << us(agg.latency.percentile(95)) << std::setw(9)
       << us(agg.latency.percentile(99)) << std::setw(9)
       << us(static_cast<double>(agg.latency.max()));
    std::uint64_t total = 0;
    for (int c = 0; c < kCatCount; ++c) total += agg.cat_ns[c];
    for (int c = 0; c < kCatCount; ++c) {
      if (static_cast<Cat>(c) == Cat::kOther) continue;
      const double pct =
          total > 0 ? 100.0 * static_cast<double>(agg.cat_ns[c]) /
                          static_cast<double>(total)
                    : 0.0;
      os << std::setw(12) << std::setprecision(1) << pct << " ";
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
}

}  // namespace daosim::obs
