#include "obs/observer.h"

#include <atomic>
#include <iomanip>
#include <string>

namespace daosim::obs {

namespace {
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

Observer::Observer() : epoch_(++g_epoch) {}

Observer::~Observer() { detach(); }

void Observer::attach(sim::Simulation& sim) {
  detach();
  sim_ = &sim;
  sim.setObserver(this);
}

void Observer::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->setObserver(nullptr);
  sim_ = nullptr;
}

void Observer::enableTracing() {
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
}

sim::Time Observer::now() const noexcept {
  return sim_ != nullptr ? sim_->now() : 0;
}

TrackId Observer::track(int pid, std::string_view name) {
  enableTracing();  // tracks live in the tracer's registry
  return tracer_->track(pid, name);
}

OpId Observer::beginOp(const char* /*type*/, TrackId /*track*/) {
  const OpId op = next_op_++;
  open_.emplace(op, OpenOp{});
  return op;
}

void Observer::endOp(OpId op, const char* type, TrackId track,
                     sim::Time start) {
  const sim::Time end = now();
  const sim::Time total = end - start;

  auto open_it = open_.find(op);
  OpTypeAgg& agg = op_types_[type];
  ++agg.count;
  agg.latency.add(total);
  if (open_it != open_.end()) {
    sim::Time covered = 0;
    for (int c = 1; c < kCatCount; ++c) {  // skip kClient: it is the residual
      agg.cat_ns[c] += open_it->second.cat_ns[c];
      covered += open_it->second.cat_ns[c];
    }
    agg.cat_ns[0] += total > covered ? total - covered : 0;
    open_.erase(open_it);
  } else {
    agg.cat_ns[0] += total;
  }

  if (tracer_ != nullptr) tracer_->span(track, op, type, start, end);
}

void Observer::leg(OpId op, Cat cat, TrackId track, const char* name,
                   sim::Time start) {
  if (op == 0) return;
  const sim::Time end = now();
  auto it = open_.find(op);
  if (it != open_.end()) {
    it->second.cat_ns[static_cast<int>(cat)] += end - start;
  }
  if (tracer_ != nullptr) tracer_->leg(track, op, name, cat, start, end);
}

void Observer::exportMetrics() {
  for (const auto& [type, agg] : op_types_) {
    metrics_.counter("op." + type + ".count").inc(agg.count);
    metrics_.histogram("op." + type + ".latency_ns").merge(agg.latency);
    for (int c = 0; c < kCatCount; ++c) {
      if (agg.cat_ns[c] == 0) continue;
      metrics_.counter("op." + type + "." + catName(static_cast<Cat>(c)) +
                       "_ns")
          .inc(agg.cat_ns[c]);
    }
  }
}

void Observer::writeChromeTrace(std::ostream& os) const {
  if (tracer_ != nullptr) {
    tracer_->writeChromeTrace(os);
  } else {
    os << "{\"schema\": " << kTraceSchemaVersion << ", \"traceEvents\": []}\n";
  }
}

void Observer::writeBreakdown(std::ostream& os) const {
  if (op_types_.empty()) return;
  os << "-- per-op latency and layer breakdown --\n";
  os << std::left << std::setw(18) << "op" << std::right << std::setw(8)
     << "count" << std::setw(10) << "mean_us" << std::setw(9) << "p50_us"
     << std::setw(9) << "p95_us" << std::setw(9) << "p99_us" << std::setw(9)
     << "max_us";
  for (int c = 0; c < kCatCount; ++c) {
    if (static_cast<Cat>(c) == Cat::kOther) continue;
    os << std::setw(13) << (std::string(catName(static_cast<Cat>(c))) + "%");
  }
  os << "\n";
  const auto us = [](double ns) { return ns / 1000.0; };
  for (const auto& [type, agg] : op_types_) {
    os << std::left << std::setw(18) << type << std::right << std::setw(8)
       << agg.count << std::fixed << std::setprecision(1) << std::setw(10)
       << us(agg.latency.mean()) << std::setw(9)
       << us(agg.latency.percentile(50)) << std::setw(9)
       << us(agg.latency.percentile(95)) << std::setw(9)
       << us(agg.latency.percentile(99)) << std::setw(9)
       << us(static_cast<double>(agg.latency.max()));
    std::uint64_t total = 0;
    for (int c = 0; c < kCatCount; ++c) total += agg.cat_ns[c];
    for (int c = 0; c < kCatCount; ++c) {
      if (static_cast<Cat>(c) == Cat::kOther) continue;
      const double pct =
          total > 0 ? 100.0 * static_cast<double>(agg.cat_ns[c]) /
                          static_cast<double>(total)
                    : 0.0;
      os << std::setw(12) << std::setprecision(1) << pct << " ";
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
}

}  // namespace daosim::obs
