#include "obs/observer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <iomanip>
#include <stdexcept>
#include <string>
#include <tuple>

#include "sim/shard.h"

namespace daosim::obs {

namespace {
std::atomic<std::uint64_t> g_epoch{0};

// Provisional leg ids for legs recorded on a lane that does not own the op:
// bit 23 set, lane in bits 16..22, per-(lane, op) counter below. Disjoint
// from home-allocated ids (which count up from 1) for any realistic leg
// count, and unique per op across lanes, so the merge can treat all wire
// ids uniformly as per-op keys.
constexpr LegId kRemoteLegBase = 0x800000;

// Journal key for a leg-id allocation: the 40-bit op seq above the 24-bit
// leg id, exactly filling 64 bits.
constexpr std::uint64_t allocKey(OpId seq, LegId id) {
  return (seq << 24) | id;
}

// Home lane of a group-mode op: the lane tag lives in bits 32..39 of the
// 40-bit sequence space.
constexpr int laneOf(OpId seq) { return static_cast<int>(seq >> 32); }
}  // namespace

Observer::Observer() : epoch_(++g_epoch) {}

Observer::~Observer() { detach(); }

void Observer::attach(sim::Simulation& sim) {
  detach();
  sim_ = &sim;
  sim.setObserver(this);
}

void Observer::detach() {
  if (sim_ != nullptr && sim_->observer() == this) sim_->setObserver(nullptr);
  sim_ = nullptr;
}

void Observer::setGroupLane(int lane) {
  group_mode_ = true;
  lane_ = lane;
  // The journal records tracks by (pid, name); the tracer hosts the
  // lane-local registry instrumentation sites intern into.
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
}

void Observer::enableTracing() {
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
  tracing_ = true;
}

void Observer::enableExemplars(std::size_t k, std::uint32_t rep) {
  if (reservoir_ == nullptr) {
    reservoir_ = std::make_unique<ExemplarReservoir>(k);
  }
  rep_ = rep;
}

sim::Time Observer::now() const noexcept {
  return sim_ != nullptr ? sim_->now() : 0;
}

TrackId Observer::track(int pid, std::string_view name) {
  // The tracer hosts the track registry even when event recording is off.
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
  return tracer_->track(pid, name);
}

TrackId Observer::reservoirTrack(TrackId t) {
  constexpr TrackId kUnmapped = ~TrackId{0};
  if (t >= reservoir_track_.size()) {
    reservoir_track_.resize(tracer_->trackCount(), kUnmapped);
  }
  if (reservoir_track_[t] == kUnmapped) {
    reservoir_track_[t] =
        reservoir_->internTrack(tracer_->trackPid(t), tracer_->trackName(t));
  }
  return reservoir_track_[t];
}

OpId Observer::beginOp(const char* type, TrackId track) {
  if (group_mode_) {
    // Lane-tagged sequence number: globally unique across lanes without
    // coordination, and laneOf() identifies the home lane for leg-id
    // allocation. Final (serial-equivalent) numbering happens at merge.
    const OpId op =
        (static_cast<OpId>(static_cast<unsigned>(lane_)) << 32) | ++group_ops_;
    open_.emplace(op, OpenOp{});
    group_open_.emplace(
        op, GroupBegin{type, tracer_->trackPid(track),
                       std::string(tracer_->trackName(track)), now()});
    return op;
  }
  const OpId op = next_op_++;
  open_.emplace(op, OpenOp{});
  return op;
}

void Observer::endOp(OpId op, const char* type, TrackId track,
                     sim::Time start) {
  const sim::Time end = now();
  const sim::Time total = end - start;
  const OpId seq = opSeq(op);

  if (group_mode_) {
    auto it = group_open_.find(seq);
    if (it == group_open_.end()) return;
    group_closed_.push_back(
        GroupClose{seq, type, it->second.pid, it->second.track, start, end});
    group_open_.erase(it);
    open_.erase(seq);
    return;
  }

  auto open_it = open_.find(seq);
  OpTypeAgg& agg = op_types_[type];
  ++agg.count;
  agg.latency.add(total);
  if (open_it != open_.end()) {
    sim::Time covered = 0;
    for (int c = 1; c < kCatCount; ++c) {  // skip kClient: it is the residual
      agg.cat_ns[c] += open_it->second.cat_ns[c];
      covered += open_it->second.cat_ns[c];
    }
    agg.cat_ns[0] += total > covered ? total - covered : 0;
    if (reservoir_ != nullptr && tracer_ != nullptr) {
      OpRecord rec;
      rec.type = type;
      rec.seq = seq;
      rec.rep = rep_;
      rec.track = reservoirTrack(track);
      rec.start = start;
      rec.dur = total;
      rec.legs = std::move(open_it->second.legs);
      for (TraceEvent& e : rec.legs) e.track = reservoirTrack(e.track);
      reservoir_->offer(std::move(rec));
    }
    open_.erase(open_it);
  } else {
    agg.cat_ns[0] += total;
  }

  if (tracing_) tracer_->span(track, seq, type, start, end);
}

LegId Observer::remoteLeg(OpId seq) {
  LegId& ctr = group_remote_[seq];
  ++ctr;
  return kRemoteLegBase | (static_cast<LegId>(lane_) << 16) | (ctr & 0xFFFF);
}

LegId Observer::recordLeg(OpId op, Cat cat, TrackId track, const char* name,
                          sim::Time start, sim::Time end, sim::Time wait,
                          Cat wait_cat, LegId id, bool charge) {
  const OpId seq = opSeq(op);
  if (seq == 0) return 0;
  const sim::Time dur = end - start;
  if (wait > dur) wait = dur;
  if (group_mode_) {
    LegId lid = id;
    sim::Time alloc = kAllocElsewhere;
    if (lid == 0) {
      if (laneOf(seq) == lane_) {
        // Home lane: allocate like the serial path — fresh id while the op
        // is open, 0 (untracked) once it has closed.
        auto it = open_.find(seq);
        if (it != open_.end()) {
          lid = ++it->second.next_leg;
          alloc = now();
        }
      } else {
        lid = remoteLeg(seq);
        alloc = now();
      }
    }
    group_legs_.push_back(GroupLeg{seq, lid, opParent(op), tracer_->trackPid(track),
                                   std::string(tracer_->trackName(track)), name,
                                   cat, wait_cat, charge, start, dur, wait,
                                   alloc, now()});
    return lid;
  }
  auto it = open_.find(seq);
  LegId lid = id;
  if (it != open_.end()) {
    if (lid == 0) lid = ++it->second.next_leg;
    if (charge) {
      it->second.cat_ns[static_cast<int>(wait_cat)] += wait;
      it->second.cat_ns[static_cast<int>(cat)] += dur - wait;
    }
  }
  const bool retain = it != open_.end() && reservoir_ != nullptr;
  if (tracing_ || retain) {
    const TraceEvent e{.ts = start,
                       .dur = dur,
                       .op = seq,
                       .track = track,
                       .name = name,
                       .cat = cat,
                       .is_span = false,
                       .leg = lid,
                       .parent = opParent(op),
                       .wait = wait};
    if (tracing_) tracer_->push(e);
    if (retain) it->second.legs.push_back(e);
  }
  return lid;
}

LegId Observer::leg(OpId op, Cat cat, TrackId track, const char* name,
                    sim::Time start, sim::Time wait, Cat wait_cat, LegId id) {
  return recordLeg(op, cat, track, name, start, now(), wait, wait_cat, id,
                   /*charge=*/true);
}

LegId Observer::legAt(OpId op, Cat cat, TrackId track, const char* name,
                      sim::Time start, sim::Time end, sim::Time wait,
                      Cat wait_cat, LegId id) {
  return recordLeg(op, cat, track, name, start, end, wait, wait_cat, id,
                   /*charge=*/true);
}

LegId Observer::structLeg(OpId op, Cat cat, TrackId track, const char* name,
                          sim::Time start, sim::Time wait, LegId id) {
  return recordLeg(op, cat, track, name, start, now(), wait,
                   Cat::kServerQueue, id,
                   /*charge=*/false);
}

LegId Observer::structLegAt(OpId op, Cat cat, TrackId track, const char* name,
                            sim::Time start, sim::Time end, sim::Time wait,
                            LegId id) {
  return recordLeg(op, cat, track, name, start, end, wait, Cat::kServerQueue,
                   id,
                   /*charge=*/false);
}

LegId Observer::openLeg(OpId op) {
  const OpId seq = opSeq(op);
  if (seq == 0) return 0;
  if (group_mode_) {
    LegId lid = 0;
    if (laneOf(seq) == lane_) {
      auto it = open_.find(seq);
      if (it == open_.end()) return 0;
      lid = ++it->second.next_leg;
    } else {
      lid = remoteLeg(seq);
    }
    group_alloc_[allocKey(seq, lid)] = now();
    return lid;
  }
  auto it = open_.find(seq);
  if (it == open_.end()) return 0;
  return ++it->second.next_leg;
}

void Observer::exportMetrics() {
  for (const auto& [type, agg] : op_types_) {
    metrics_.counter("op." + type + ".count").inc(agg.count);
    metrics_.histogram("op." + type + ".latency_ns").merge(agg.latency);
    for (int c = 0; c < kCatCount; ++c) {
      if (agg.cat_ns[c] == 0) continue;
      metrics_.counter("op." + type + "." + catName(static_cast<Cat>(c)) +
                       "_ns")
          .inc(agg.cat_ns[c]);
    }
  }
}

void Observer::writeTailReport(std::ostream& os) const {
  if (reservoir_ == nullptr) return;
  const std::vector<OpRecord> ops = reservoirOps(*reservoir_);
  const std::vector<std::string> stations = stationNames(reservoir_->tracks());
  writeExemplars(os, ops, stations, reservoir_->k());
  writeCriticalPath(os, ops, stations);
}

void Observer::writeChromeTrace(std::ostream& os) const {
  if (tracer_ != nullptr) {
    tracer_->writeChromeTrace(os);
  } else {
    os << "{\"schema\": " << kTraceSchemaVersion << ", \"traceEvents\": []}\n";
  }
}

ObserverGroup::ObserverGroup(sim::ShardGroup& group) {
  const int n = group.shards();
  if (n > 128) {
    throw std::invalid_argument(
        "ObserverGroup: provisional leg ids encode at most 128 lanes");
  }
  lanes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto lane = std::make_unique<Observer>();
    lane->setGroupLane(i);
    lane->attach(group.shard(i));
    lanes_.push_back(std::move(lane));
  }
}

ObserverGroup::~ObserverGroup() = default;

void ObserverGroup::mergeInto(Observer& out) {
  using GroupLeg = Observer::GroupLeg;

  for (auto& l : lanes_) l->detach();

  // ---- Canonical op numbering ------------------------------------------
  // Serial observers number ops in begin order; the merged numbering sorts
  // every begun op (closed or not) by simulation-level identity — begin
  // time, then owning track, then type — with the lane-local issue counter
  // breaking same-track ties (two back-to-back queue-depth>1 ops from one
  // rank begin at the same instant; their home lane's counter preserves
  // their issue order for every shard count).
  struct MOp {
    OpId wire = 0;
    const char* type = nullptr;
    int pid = 0;
    const std::string* track = nullptr;
    sim::Time start = 0;
    sim::Time end = 0;
    bool closed = false;
    OpId final_seq = 0;
    std::vector<const GroupLeg*> legs;
  };
  std::vector<MOp> ops;
  for (auto& l : lanes_) {
    for (const Observer::GroupClose& c : l->group_closed_) {
      ops.push_back(
          MOp{c.seq, c.type, c.pid, &c.track, c.start, c.end, true, 0, {}});
    }
    for (const auto& [seq, b] : l->group_open_) {
      ops.push_back(MOp{seq, b.type, b.pid, &b.track, b.start, 0, false, 0, {}});
    }
  }
  auto opKey = [](const MOp& o) {
    return std::make_tuple(o.start, o.pid, std::string_view(*o.track),
                           std::string_view(o.type), o.wire & 0xFFFFFFFFu,
                           o.wire);
  };
  std::sort(ops.begin(), ops.end(),
            [&](const MOp& a, const MOp& b) { return opKey(a) < opKey(b); });
  std::map<OpId, MOp*> by_wire;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].final_seq = static_cast<OpId>(i + 1);
    by_wire.emplace(ops[i].wire, &ops[i]);
  }

  // ---- Global leg-allocation journal and leg assignment ----------------
  std::map<std::uint64_t, sim::Time> alloc_at;
  for (auto& l : lanes_) {
    alloc_at.insert(l->group_alloc_.begin(), l->group_alloc_.end());
  }
  for (auto& l : lanes_) {
    for (const GroupLeg& g : l->group_legs_) {
      auto it = by_wire.find(g.seq);
      if (it != by_wire.end()) it->second->legs.push_back(&g);
    }
  }

  // ---- Deterministic track registration --------------------------------
  // Serial track ids follow first-use order; the merged registry registers
  // by (first reference time, pid, name), which is shard-count-invariant.
  std::map<std::pair<int, std::string_view>, sim::Time> first_use;
  auto note_track = [&](int pid, const std::string& name, sim::Time t) {
    auto [it, inserted] =
        first_use.try_emplace({pid, std::string_view(name)}, t);
    if (!inserted && t < it->second) it->second = t;
  };
  for (const MOp& o : ops) note_track(o.pid, *o.track, o.start);
  for (auto& l : lanes_) {
    for (const GroupLeg& g : l->group_legs_) note_track(g.pid, g.track, g.ts);
  }
  {
    std::vector<std::tuple<sim::Time, int, std::string_view>> order;
    order.reserve(first_use.size());
    for (const auto& [key, t] : first_use) {
      order.emplace_back(t, key.first, key.second);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [t, pid, name] : order) out.track(pid, name);
  }

  // ---- Per-op leg renumbering, charges, events, exemplars --------------
  struct MEvent {
    sim::Time rec = 0;
    bool is_span = false;
    TraceEvent e;
  };
  std::vector<MEvent> events;
  struct MLeg {
    const GroupLeg* g = nullptr;
    sim::Time alloc = 0;
    LegId final_id = 0;
  };
  std::uint64_t total_ops = 0;
  for (MOp& op : ops) {
    ++total_ops;
    std::vector<MLeg> legs;
    legs.reserve(op.legs.size());
    for (const GroupLeg* g : op.legs) {
      sim::Time at = g->alloc;
      if (at == Observer::kAllocElsewhere) {
        auto it = alloc_at.find(allocKey(g->seq, g->id));
        at = it != alloc_at.end() ? it->second : g->ts;
      }
      legs.push_back(MLeg{g, at, 0});
    }
    // Ids follow allocation order, exactly as the serial per-op counter
    // does; legs allocated after the op closed (a timed-out transfer's
    // late finish) keep id 0, like the serial closed-op path.
    std::vector<MLeg*> numbered;
    for (MLeg& m : legs) {
      if (m.g->id != 0 && (!op.closed || m.alloc <= op.end)) {
        numbered.push_back(&m);
      }
    }
    std::sort(numbered.begin(), numbered.end(), [](const MLeg* a,
                                                   const MLeg* b) {
      return std::make_tuple(a->alloc, a->g->ts, a->g->pid,
                             std::string_view(a->g->track),
                             std::string_view(a->g->name), a->g->cat,
                             a->g->dur, a->g->wait, a->g->rec, a->g->id) <
             std::make_tuple(b->alloc, b->g->ts, b->g->pid,
                             std::string_view(b->g->track),
                             std::string_view(b->g->name), b->g->cat,
                             b->g->dur, b->g->wait, b->g->rec, b->g->id);
    });
    std::map<LegId, LegId> leg_map;
    for (std::size_t i = 0; i < numbered.size(); ++i) {
      numbered[i]->final_id = static_cast<LegId>(i + 1);
      leg_map.emplace(numbered[i]->g->id, numbered[i]->final_id);
    }
    auto mapped = [&](LegId wire) {
      auto it = leg_map.find(wire);
      return it != leg_map.end() ? it->second : LegId{0};
    };

    if (op.closed) {
      // Fold charges exactly like the serial endOp: legs recorded while the
      // op was open accumulate per-category time; kClient is the residual.
      Observer::OpTypeAgg& agg = out.op_types_[op.type];
      const sim::Time total = op.end - op.start;
      ++agg.count;
      agg.latency.add(total);
      sim::Time cat_ns[kCatCount] = {};
      for (const MLeg& m : legs) {
        if (!m.g->charge || m.g->rec > op.end) continue;
        cat_ns[static_cast<int>(m.g->wait_cat)] += m.g->wait;
        cat_ns[static_cast<int>(m.g->cat)] += m.g->dur - m.g->wait;
      }
      sim::Time covered = 0;
      for (int c = 1; c < kCatCount; ++c) {
        agg.cat_ns[c] += static_cast<std::uint64_t>(cat_ns[c]);
        covered += cat_ns[c];
      }
      agg.cat_ns[0] += static_cast<std::uint64_t>(
          total > covered ? total - covered : 0);
    }

    const TrackId op_track = out.track(op.pid, *op.track);
    if (out.tracing_ || out.reservoir_ != nullptr) {
      // Emit one event per journaled leg (sorted below into the canonical
      // record order) plus the op span for closed ops.
      std::vector<MLeg*> recorded;
      recorded.reserve(legs.size());
      for (MLeg& m : legs) recorded.push_back(&m);
      std::sort(recorded.begin(), recorded.end(),
                [](const MLeg* a, const MLeg* b) {
                  // Record order: by record time; nested legs recorded at
                  // the same instant unwind inner-first (later ts first).
                  return std::make_tuple(a->g->rec, -a->g->ts, a->final_id) <
                         std::make_tuple(b->g->rec, -b->g->ts, b->final_id);
                });
      std::vector<TraceEvent> retained;  // exemplar legs, record order
      for (const MLeg* m : recorded) {
        const TraceEvent e{.ts = m->g->ts,
                           .dur = m->g->dur,
                           .op = op.final_seq,
                           .track = out.track(m->g->pid, m->g->track),
                           .name = m->g->name,
                           .cat = m->g->cat,
                           .is_span = false,
                           .leg = m->final_id,
                           .parent = mapped(m->g->parent),
                           .wait = m->g->wait};
        if (out.tracing_) events.push_back(MEvent{m->g->rec, false, e});
        if (op.closed && m->g->rec <= op.end) retained.push_back(e);
      }
      if (op.closed) {
        if (out.tracing_) {
          events.push_back(MEvent{op.end, true,
                                  TraceEvent{.ts = op.start,
                                             .dur = op.end - op.start,
                                             .op = op.final_seq,
                                             .track = op_track,
                                             .name = op.type,
                                             .cat = Cat::kClient,
                                             .is_span = true}});
        }
        if (out.reservoir_ != nullptr) {
          OpRecord rec;
          rec.type = op.type;
          rec.seq = op.final_seq;
          rec.rep = out.rep_;
          rec.track = out.reservoirTrack(op_track);
          rec.start = op.start;
          rec.dur = op.end - op.start;
          rec.legs = std::move(retained);
          for (TraceEvent& e : rec.legs) e.track = out.reservoirTrack(e.track);
          out.reservoir_->offer(std::move(rec));
        }
      }
    }
  }

  if (out.tracing_) {
    // Canonical push order: the writer stable-sorts by ts, so same-ts
    // events keep this (shard-count-invariant) order.
    std::stable_sort(events.begin(), events.end(),
                     [](const MEvent& a, const MEvent& b) {
                       return std::make_tuple(a.rec, a.is_span, -a.e.ts,
                                              a.e.op, a.e.track) <
                              std::make_tuple(b.rec, b.is_span, -b.e.ts,
                                              b.e.op, b.e.track);
                     });
    for (const MEvent& m : events) out.tracer_->push(m.e);
  }

  out.next_op_ = total_ops + 1;
}

void Observer::writeBreakdown(std::ostream& os) const {
  if (op_types_.empty()) return;
  os << "-- per-op latency and layer breakdown --\n";
  os << std::left << std::setw(18) << "op" << std::right << std::setw(8)
     << "count" << std::setw(10) << "mean_us" << std::setw(9) << "p50_us"
     << std::setw(9) << "p95_us" << std::setw(9) << "p99_us" << std::setw(9)
     << "max_us";
  for (int c = 0; c < kCatCount; ++c) {
    if (static_cast<Cat>(c) == Cat::kOther) continue;
    os << std::setw(13) << (std::string(catName(static_cast<Cat>(c))) + "%");
  }
  os << "\n";
  const auto us = [](double ns) { return ns / 1000.0; };
  for (const auto& [type, agg] : op_types_) {
    os << std::left << std::setw(18) << type << std::right << std::setw(8)
       << agg.count << std::fixed << std::setprecision(1) << std::setw(10)
       << us(agg.latency.mean()) << std::setw(9)
       << us(agg.latency.percentile(50)) << std::setw(9)
       << us(agg.latency.percentile(95)) << std::setw(9)
       << us(agg.latency.percentile(99)) << std::setw(9)
       << us(static_cast<double>(agg.latency.max()));
    std::uint64_t total = 0;
    for (int c = 0; c < kCatCount; ++c) total += agg.cat_ns[c];
    for (int c = 0; c < kCatCount; ++c) {
      if (static_cast<Cat>(c) == Cat::kOther) continue;
      const double pct =
          total > 0 ? 100.0 * static_cast<double>(agg.cat_ns[c]) /
                          static_cast<double>(total)
                    : 0.0;
      os << std::setw(12) << std::setprecision(1) << pct << " ";
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
}

}  // namespace daosim::obs
