// Reader + end-of-run analyzer for telemetry dumps (obs/telemetry.h).
//
// parseTelemetryCsv loads a schema=2 dump (as written by
// Telemetry/TelemetryHub::writeCsv) back into memory, rejecting other
// schema versions with a clear error. analyze() then
//   (a) attributes utilization per station class to name the bottleneck
//       (classes are derived from metric paths: the `.../busy_frac` leaf is
//       dropped and run/topology index segments stripped, so
//       `rep/0/server/3/target/5/nvme/busy_frac` and its peers fold into
//       class "nvme"), plus wall-clock share per span layer when the dump
//       carries the observer's op.* counters;
//   (b) flags straggler classes via cross-unit imbalance (max/mean of
//       per-unit utilization).
// Both the daosim_metrics CLI and daosim_run --stats print the resulting
// report through writeReport.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace daosim::obs {

/// A parsed telemetry dump.
struct TelemetryDump {
  int schema = 0;
  /// run label -> sampling interval (label "" for single-run dumps).
  std::map<std::string, std::uint64_t> run_intervals;
  /// summary rows: path -> (kind, final value).
  std::map<std::string, std::pair<std::string, double>> summary;
  /// series rows: path -> [(t_ns relative, value)...] in file order.
  std::map<std::string, std::vector<std::pair<std::int64_t, double>>> series;
  /// flat registry rows spliced into the dump (counter/gauge/histogram),
  /// e.g. the observer's op.* aggregates: name -> field -> value.
  std::map<std::string, std::map<std::string, double>> metrics;
};

/// Parses a schema=2 CSV dump; throws std::runtime_error with an
/// actionable message on a missing header or schema mismatch.
TelemetryDump parseTelemetryCsv(std::istream& is);

/// Station-class grouping key for a utilization series path: drops the
/// metric leaf, then keeps the longest suffix of non-numeric segments
/// ("server/3/target/5/nvme/busy_frac" -> "nvme", "client/7/nic/rx/..."
/// -> "nic/rx", "rep/0/net/..." -> "net").
std::string stationClass(const std::string& path);

struct UnitUtil {
  std::string unit;  // full path minus the /busy_frac leaf
  std::string cls;
  double mean = 0;  // time-weighted mean utilization over the run
  double peak = 0;  // hottest single bin
};

struct ClassUtil {
  std::string cls;
  int units = 0;
  double mean = 0;       // mean over units
  double max_unit = 0;   // hottest unit's mean
  double imbalance = 0;  // max_unit / mean (1.0 = perfectly balanced)
  bool straggler = false;
  std::string hottest_unit;
};

struct Analysis {
  /// Per-class utilization, sorted hottest first.
  std::vector<ClassUtil> classes;
  /// Every utilization unit, sorted hottest first.
  std::vector<UnitUtil> units;
  /// Bottleneck verdict: the station class with the highest mean
  /// utilization (empty when the dump has no busy_frac series).
  std::string verdict;
  double verdict_util = 0;
  /// Wall-clock share per span layer from op.* counters (fractions summing
  /// to ~1), present when the dump carries observer metrics.
  std::vector<std::pair<std::string, double>> layer_share;
};

/// Cross-unit imbalance above this (with non-trivial load) flags a
/// straggler class.
inline constexpr double kStragglerImbalance = 1.5;

Analysis analyze(const TelemetryDump& dump);

/// Human-readable report: bottleneck verdict, per-class utilization table,
/// top-N hottest units, per-layer wall-clock shares, straggler flags.
void writeReport(std::ostream& os, const Analysis& a, int top_n = 10);

// --- PDES engine introspection (the pdes/* telemetry subtree) -------------

struct PdesShard {
  int shard = 0;
  double events = 0;
  double busy_ns = 0;
  double wait_ns = 0;
  double busy_frac = 0;     // busy / (busy + wait)
  double wait_share = 0;    // 1 - busy_frac: share of wall time at barriers
  double events_per_s = 0;  // events / wall busy seconds
  double rel_rate = 0;      // events_per_s / mean over shards
  bool straggler = false;
};

/// A shard waiting more than this share of its wall time at window barriers
/// is flagged a straggler...
inline constexpr double kPdesWaitShare = 0.30;
/// ...as is one processing events slower than this fraction of the mean.
inline constexpr double kPdesSlowRate = 0.70;

struct PdesAnalysis {
  bool present = false;  // dump carried a pdes/* subtree
  int shards = 0;
  double lookahead_ns = 0;
  double windows = 0;
  double cross_posts = 0;
  double barrier_releases = 0;
  double late_releases = 0;
  double mailbox_flushes = 0;
  double mailbox_entries = 0;
  double mailbox_bytes = 0;
  double imbalance = 0;  // max/mean of per-shard wall busy time
  std::vector<PdesShard> per_shard;
  /// One-line load verdict, e.g. "balanced (imbalance 1.08)" or
  /// "shard 3: 41% barrier wait, events/s 0.6x mean".
  std::string verdict;
};

/// Extracts the pdes/* subtree from a dump's summary rows (any run-label
/// prefix; multi-rep dumps sum the counters and per-shard times across
/// runs) and derives per-shard busy/wait shares, relative event rates and
/// the straggler verdict. `present` is false when the dump has no pdes
/// rows (serial run).
PdesAnalysis analyzePdes(const TelemetryDump& dump);

/// Human-readable PDES engine section: protocol counters, per-shard
/// busy/wait/events table, imbalance ratio and the straggler verdict.
void writePdesReport(std::ostream& os, const PdesAnalysis& a);

}  // namespace daosim::obs
