// obs::Telemetry: a hierarchical, slash-pathed metric tree sampled into
// in-memory time series on a fixed simulated-time interval — the simulator's
// analogue of the DAOS d_tm telemetry tree that `daos_metrics` consumes.
//
// Metric paths mirror the deployed topology, e.g.
//   server/0/target/3/nvme/busy_frac     client/2/nic/rx/bytes
//   server/0/target/3/xs/queue_depth     net/inflight
// Three instrument kinds exist:
//   * counter — monotone cumulative value; sampled as-is;
//   * gauge   — instantaneous value; sampled as-is;
//   * rate    — monotone cumulative value; each sample is the per-second
//               delta over the elapsed bin ((cur - prev) / bin_seconds).
//               A probe returning busy *seconds* therefore samples as a
//               dimensionless busy fraction.
//
// Values come from two sources:
//   * probes: std::function<double()> registered per component at testbed
//     attach time (apps::registerProbes), pulled at every sample point —
//     the hot path is untouched;
//   * push handles: stable Telemetry::Handle pointers for layers without a
//     long-lived cumulative counter (e.g. io::SubmitQueue occupancy).
//     Registration allocates once; add()/set() never allocate.
//
// Sampling is driven by the simulation kernel, not a self-rescheduling
// process (which would keep the event queue from draining): when the kernel
// pops an event with timestamp strictly greater than the next sample
// boundary, it snapshots every node at that boundary first (see
// sim::Simulation). finish() emits any remaining whole bins plus one final
// partial bin at the current time. With no telemetry attached the kernel
// pays a single integer compare per event and zero allocations.
//
// Timestamps in the series are relative to attach time, so dumps from
// repetitions with identical workloads are identical. Runs are merged
// deterministically through TelemetryHub (sorted by run label), which is
// what keeps serial and --jobs dumps byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace daosim::sim {
class Simulation;
}

namespace daosim::obs {

class MetricsRegistry;

class Telemetry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kRate };
  static const char* kindName(Kind k) noexcept;

  /// One metric node: a path, a current value (pushed or probed), and the
  /// sampled time series (timestamps relative to attach).
  struct Node {
    std::string path;
    Kind kind = Kind::kGauge;
    double value = 0;                 // latest cumulative / instantaneous
    std::function<double()> probe;    // overrides `value` while sampling
    double prev = 0;                  // previous cumulative (rate bins)
    /// Output scale applied after the bin arithmetic (and to the summary
    /// value). Lets a probe expose an integer-valued raw (e.g. cumulative
    /// send nanoseconds) whose per-lane samples sum exactly across shards,
    /// with the unit conversion deferred to emission: scale 1.0 multiplies
    /// out to the bit-identical serial value.
    double scale = 1.0;
    std::vector<std::pair<sim::Time, double>> samples;
  };

  /// Stable push handle; never allocates after registration. A
  /// default-constructed handle is inert (for cached-handle sites).
  class Handle {
   public:
    Handle() = default;
    void add(double d) noexcept {
      if (n_ != nullptr) n_->value += d;
    }
    void inc() noexcept { add(1.0); }
    void set(double v) noexcept {
      if (n_ != nullptr) n_->value = v;
    }
    explicit operator bool() const noexcept { return n_ != nullptr; }

   private:
    friend class Telemetry;
    explicit Handle(Node* n) noexcept : n_(n) {}
    Node* n_ = nullptr;
  };

  explicit Telemetry(sim::Time interval = 10 * sim::kMillisecond);
  ~Telemetry();

  Telemetry(Telemetry&&) noexcept = default;
  Telemetry& operator=(Telemetry&&) noexcept = default;

  // --- registration (cold path; allocates) -----------------------------
  Handle counter(const std::string& path) {
    return Handle(instrument(path, Kind::kCounter));
  }
  Handle gauge(const std::string& path) {
    return Handle(instrument(path, Kind::kGauge));
  }
  Handle rate(const std::string& path) {
    return Handle(instrument(path, Kind::kRate));
  }
  /// Pull-style metric: `fn` is invoked at every sample point (and never
  /// after finish(), so it may reference run-scoped objects). `scale` is
  /// the output scale (see Node::scale; 1.0 emits the raw value).
  void addProbe(const std::string& path, Kind kind, std::function<double()> fn,
                double scale = 1.0);

  // --- lifecycle --------------------------------------------------------
  /// Starts sampling on `sim` (installs this as sim.telemetry()); the first
  /// boundary is attach-time + interval.
  void attach(sim::Simulation& sim);
  /// attach() with an explicit series origin `t0` >= sim.now(). Per-shard
  /// lanes of one sharded run attach at the group-wide maximum clock so
  /// every lane has identical bin boundaries (the group is quiescent at
  /// setup end, so nothing is missed on the shards whose clock is behind).
  void attachAt(sim::Simulation& sim, sim::Time t0);
  /// finish() + uninstall from the simulation.
  void detach();
  /// Emits every whole-bin sample up to the current simulated time plus a
  /// final partial bin, then drops all probe functions (safe to outlive the
  /// probed objects). Idempotent; implied by detach().
  void finish();
  /// finish() against an explicit end time >= this shard's clock (the
  /// group-wide maximum clock at quiescence), so every lane of a sharded
  /// run emits the same final bins regardless of where its clock stopped.
  void finishAt(sim::Time end);

  /// Group-lane mode: samples store the RAW probe reading at each boundary
  /// — no rate differencing, no scale — so mergeLanes() can sum the lane
  /// readings per (path, bin) exactly (integer-valued raws) and apply the
  /// serial arithmetic once on the sums. Set before attach.
  void enableRawSamples() noexcept { raw_samples_ = true; }

  /// Merges raw-mode lanes with identical t0/interval/end (attachAt /
  /// finishAt contract ⇒ identical bin boundaries) into one finished
  /// registry: per (path, bin) the lane raws are summed in lane order, then
  /// rate differencing and scaling run with serial-identical arithmetic.
  /// Nodes are created in sorted-path order, making the merged dump — CSV
  /// and JSON — independent of lane count for single-writer paths and
  /// integer-raw multi-writer paths.
  static Telemetry mergeLanes(const std::vector<const Telemetry*>& lanes);

  bool attached() const noexcept { return sim_ != nullptr; }
  sim::Time interval() const noexcept { return interval_; }
  /// Monotone instance id for cached-handle invalidation (a fresh Telemetry
  /// never sees a handle cached against a previous one).
  std::uint64_t epoch() const noexcept { return epoch_; }

  // --- kernel interface -------------------------------------------------
  /// Samples every boundary strictly below `t`; called by the simulation
  /// kernel when an event passes the next boundary. Returns the new next
  /// boundary (absolute).
  sim::Time sampleUpTo(sim::Time t);
  sim::Time nextDue() const noexcept { return next_due_; }

  // --- inspection / export ---------------------------------------------
  const std::vector<std::unique_ptr<Node>>& nodes() const noexcept {
    return nodes_;
  }
  const Node* find(const std::string& path) const;
  std::size_t sampleCount() const noexcept;

  /// Schema-versioned CSV dump (`# daosim-metrics schema=2`): summary rows
  /// (`kind,path,value,total`) followed by a time-series section
  /// (`series,path,t_ns,value`). `extra` appends a MetricsRegistry's rows
  /// (e.g. the observer's op.* layer aggregates). Requires finish().
  void writeCsv(std::ostream& os, const MetricsRegistry* extra = nullptr) const;
  /// JSON equivalent with a top-level "schema": 2 field.
  void writeJson(std::ostream& os,
                 const MetricsRegistry* extra = nullptr) const;

  /// Summary + series rows only (no header); every path gets `prefix`
  /// prepended. Used by TelemetryHub to splice runs into one dump.
  void writeCsvRows(std::ostream& os, const std::string& prefix) const;

 private:
  Node* instrument(const std::string& path, Kind kind);
  void sampleAt(sim::Time t);

  sim::Time interval_;
  sim::Time t0_ = 0;           // absolute attach time
  sim::Time next_due_ = 0;     // absolute next boundary
  sim::Time last_sample_ = 0;  // absolute time of the previous sample
  bool finished_ = false;
  bool raw_samples_ = false;   // group-lane mode (see enableRawSamples)
  sim::Simulation* sim_ = nullptr;
  std::uint64_t epoch_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::string, Node*> by_path_;
};

/// Collects per-run Telemetry registries and writes one merged dump with
/// every path prefixed by its run label. Runs may finish in any order on
/// any thread (parallel sweeps); the dump iterates labels sorted, so a
/// serial and a --jobs run of the same workload produce byte-identical
/// files.
class TelemetryHub {
 public:
  /// Process-wide hub used by the bench binaries and daosim_run.
  static TelemetryHub& global();

  /// Takes ownership of a finished run's registry. Labels must be unique
  /// per run and deterministic (derived from the run's identity, not from
  /// scheduling); a duplicate label keeps the first registry.
  void add(const std::string& label, Telemetry t);

  bool empty() const;
  std::size_t runCount() const;
  void clear();

  void writeCsv(std::ostream& os, const MetricsRegistry* extra = nullptr) const;
  void writeJson(std::ostream& os,
                 const MetricsRegistry* extra = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Telemetry> runs_;
};

}  // namespace daosim::obs
