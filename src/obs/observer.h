// Observer: the single sink every instrumentation site in the simulator
// guards on.
//
// `sim::Simulation` holds a raw `Observer*` that is null by default; each
// hot-path hook is one `if (auto* o = sim.observer())` branch, so the
// disabled cost is a pointer load and compare. When attached, the observer
//   * assigns op ids and aggregates per-op-type latency histograms plus a
//     category breakdown (client CPU / net request / server queue / service /
//     device / net response) — always on, allocation-free per event;
//   * optionally records every span and leg into a Tracer for chrome://tracing
//     export (enableTracing(); off by default since event storage grows with
//     the run).
//
// Ops are identified by explicit `OpId` values threaded through coroutine
// parameters (plain data, safe under the GCC-12 closure-parameter rule); the
// id 0 means "not traced" and instrumentation sites ignore it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace daosim::sim {
class ShardGroup;
}

namespace daosim::obs {

class ObserverGroup;

class Observer {
 public:
  Observer();
  ~Observer();
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Registers this observer as `sim`'s sink. One observer per simulation;
  /// detaches automatically on destruction.
  void attach(sim::Simulation& sim);
  void detach();

  /// Switches this observer into group-lane mode for sharded runs: it is one
  /// lane of an ObserverGroup, attached to a single shard. Op ids carry the
  /// lane in bits 32..39 of the 40-bit sequence space, legs recorded for ops
  /// homed on other lanes get provisional ids, and every record is journaled
  /// verbatim (instead of folded into aggregates) so ObserverGroup::mergeInto
  /// can rebuild the exact serial-equivalent state deterministically. Call
  /// before attach().
  void setGroupLane(int lane);

  /// Unique across all Observer instances in the process. Stations cache
  /// their TrackId keyed by this epoch so a fresh observer (new rep) never
  /// sees a stale id.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Turns on span/leg event recording (for --trace). Aggregation and
  /// metrics are always on while attached.
  void enableTracing();
  Tracer* tracer() noexcept { return tracer_.get(); }
  const Tracer* tracer() const noexcept { return tracer_.get(); }

  /// Turns on the bounded-memory tail-exemplar reservoir: the `k` slowest
  /// ops per op-type are retained with their full leg trees (independent of
  /// tracing, which stores every event). `rep` tags exemplars with the
  /// repetition index so reservoirs from parallel reps merge
  /// deterministically.
  void enableExemplars(std::size_t k, std::uint32_t rep = 0);
  ExemplarReservoir* exemplars() noexcept { return reservoir_.get(); }
  const ExemplarReservoir* exemplars() const noexcept {
    return reservoir_.get();
  }
  /// Releases the reservoir, e.g. to merge per-repetition reservoirs in
  /// repetition order after a parallel sweep.
  std::unique_ptr<ExemplarReservoir> takeExemplars() noexcept {
    return std::move(reservoir_);
  }

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  sim::Time now() const noexcept;

  TrackId track(int pid, std::string_view name);

  /// Opens a new op of `type` (a string literal) on `track`; returns its id.
  OpId beginOp(const char* type, TrackId track);

  /// Closes `op`. `type`/`track`/`start` are carried by the caller (OpScope)
  /// rather than stored per op, keeping the open-op table small.
  void endOp(OpId op, const char* type, TrackId track, sim::Time start);

  /// Records that `op` occupied `track` from `start` to now(): queue-wait
  /// for the first `wait` ns (charged to `wait_cat` in the aggregate),
  /// service for the rest (charged to `cat`). `id` 0 allocates a fresh leg
  /// id; a nonzero `id` must come from openLeg() on the same op. Returns
  /// the leg id (0 for op 0 or an op that already ended).
  LegId leg(OpId op, Cat cat, TrackId track, const char* name,
            sim::Time start, sim::Time wait = 0,
            Cat wait_cat = Cat::kServerQueue, LegId id = 0);

  /// leg() with an explicit end time instead of now(). For call sites that
  /// know a leg's completion instant without being scheduled at it — e.g.
  /// QueueStation::reserve() (analytic service, returns the future completion
  /// time) and the sharded timeout path (the abandoned transfer's finish).
  LegId legAt(OpId op, Cat cat, TrackId track, const char* name,
              sim::Time start, sim::Time end, sim::Time wait = 0,
              Cat wait_cat = Cat::kServerQueue, LegId id = 0);

  /// Trace/exemplar-only leg: shows up in the causal tree but charges
  /// nothing to the per-category aggregate. Used for structural parents
  /// (per-shard RPC scopes, NIC tx/rx under the charging "send" leg) whose
  /// time is already covered by other legs.
  LegId structLeg(OpId op, Cat cat, TrackId track, const char* name,
                  sim::Time start, sim::Time wait = 0, LegId id = 0);

  /// structLeg() with an explicit end time (see legAt()).
  LegId structLegAt(OpId op, Cat cat, TrackId track, const char* name,
                    sim::Time start, sim::Time end, sim::Time wait = 0,
                    LegId id = 0);

  /// Pre-allocates the id of a forthcoming leg of `op`, so children created
  /// while the leg is still running can name it as parent via
  /// withParent(op, id). Record the leg later by passing the id to leg() or
  /// structLeg().
  LegId openLeg(OpId op);

  /// Per-op-type aggregate: latency histogram plus summed per-category leg
  /// time. kClient is the residual latency not covered by recorded legs.
  struct OpTypeAgg {
    std::uint64_t count = 0;
    Histogram latency;                      // ns per op
    std::uint64_t cat_ns[kCatCount] = {};  // summed leg time per category
  };

  /// Keyed by string literal identity-by-content (op types are literals).
  const std::map<std::string, OpTypeAgg>& opTypes() const noexcept {
    return op_types_;
  }

  std::uint64_t opsStarted() const noexcept {
    return group_mode_ ? group_ops_ : next_op_ - 1;
  }

  /// Folds per-op-type aggregates into metrics() as `op.<type>.*` entries.
  void exportMetrics();

  void writeChromeTrace(std::ostream& os) const;

  /// Human-readable per-layer breakdown table: for each op type, count,
  /// latency percentiles, and % of total time per category.
  void writeBreakdown(std::ostream& os) const;

  /// Prints the reservoir's tail exemplars with their critical-path
  /// decomposition; no-op unless enableExemplars() was called.
  void writeTailReport(std::ostream& os) const;

 private:
  friend class ObserverGroup;

  struct OpenOp {
    sim::Time cat_ns[kCatCount] = {};
    LegId next_leg = 0;            // per-op leg id allocator
    std::vector<TraceEvent> legs;  // retained only while exemplars are on
  };

  // Group-lane journal rows: records kept verbatim (tracks by (pid, name)
  // since TrackIds are lane-local; names are string literals) so the merge
  // can replay them against final op/leg numbering. `alloc` is the leg-id
  // allocation time, kAllocElsewhere when the id was pre-allocated by
  // openLeg() — possibly on a different lane — and must be resolved from the
  // global allocation journal.
  struct GroupBegin {
    const char* type;
    int pid;
    std::string track;
    sim::Time start;
  };
  struct GroupClose {
    OpId seq;  // lane-tagged wire sequence number
    const char* type;
    int pid;
    std::string track;
    sim::Time start;
    sim::Time end;
  };
  struct GroupLeg {
    OpId seq;
    LegId id;
    LegId parent;
    int pid;
    std::string track;
    const char* name;
    Cat cat;
    Cat wait_cat;
    bool charge;
    sim::Time ts;
    sim::Time dur;
    sim::Time wait;
    sim::Time alloc;  // id allocation time; kAllocElsewhere if via openLeg()
    sim::Time rec;    // record time (serial parity: charges need rec <= end)
  };
  static constexpr sim::Time kAllocElsewhere = sim::Time(-1);

  LegId recordLeg(OpId op, Cat cat, TrackId track, const char* name,
                  sim::Time start, sim::Time end, sim::Time wait, Cat wait_cat,
                  LegId id, bool charge);
  /// Provisional leg id for a foreign op (homed on another lane):
  /// 0x800000 | lane<<16 | per-(lane,op) counter. Unique per op across lanes
  /// and disjoint from home-allocated ids; replaced at merge time.
  LegId remoteLeg(OpId seq);
  /// Interns a tracer track into the reservoir's own table (cached).
  TrackId reservoirTrack(TrackId t);

  std::uint64_t epoch_;
  sim::Simulation* sim_ = nullptr;
  std::unique_ptr<Tracer> tracer_;
  bool tracing_ = false;  // tracer_ may exist just to host the track registry
  std::unique_ptr<ExemplarReservoir> reservoir_;
  std::uint32_t rep_ = 0;
  std::vector<TrackId> reservoir_track_;  // tracer TrackId -> reservoir id
  MetricsRegistry metrics_;
  OpId next_op_ = 1;
  std::map<OpId, OpenOp> open_;  // keyed by op sequence number
  std::map<std::string, OpTypeAgg> op_types_;

  // Group-lane mode state (see setGroupLane()).
  bool group_mode_ = false;
  int lane_ = 0;
  std::uint64_t group_ops_ = 0;  // lane-local op counter (< 2^32)
  std::map<OpId, GroupBegin> group_open_;
  std::vector<GroupClose> group_closed_;
  std::vector<GroupLeg> group_legs_;
  std::map<std::uint64_t, sim::Time> group_alloc_;  // (seq<<24|id) -> time
  std::map<OpId, LegId> group_remote_;  // foreign seq -> provisional counter
};

/// Shard-aware observer fan-out: one group-lane Observer per shard of a
/// sim::ShardGroup, each attached to its own shard (no cross-shard locks on
/// the hot path), merged deterministically into a plain Observer after the
/// run. The merged result is byte-identical across shard counts: final op
/// sequence numbers are assigned by (start, pid, track, type) order, leg ids
/// per op by allocation order, and tracer/reservoir contents are rebuilt in
/// that canonical order. Usage:
///
///   obs::Observer out;                 // the exporter-facing observer
///   out.enableTracing();               // flags read at merge time
///   obs::ObserverGroup og(*tb.shardGroup());
///   ... run ...
///   og.mergeInto(out);                 // out now looks like a serial run
class ObserverGroup {
 public:
  /// Creates one lane per shard and attaches each to its shard's simulation.
  explicit ObserverGroup(sim::ShardGroup& group);
  ~ObserverGroup();
  ObserverGroup(const ObserverGroup&) = delete;
  ObserverGroup& operator=(const ObserverGroup&) = delete;

  int lanes() const noexcept { return static_cast<int>(lanes_.size()); }
  Observer& lane(int i) noexcept { return *lanes_[i]; }

  /// Detaches every lane and folds the journals into `out` (a fresh, never-
  /// attached Observer). Honours out's tracing/exemplar flags: call
  /// out.enableTracing() / out.enableExemplars() before merging.
  void mergeInto(Observer& out);

 private:
  std::vector<std::unique_ptr<Observer>> lanes_;
};

/// RAII op span. Default-constructed (or moved-from) scopes are inert, so
/// call sites stay a single line whether or not an observer is attached:
///
///   auto op = obs::beginOp(sim, "array.write", node_, "client3");
///   ... co_await legs passing op.id() ...
///   (destructor or op.end() closes the span at the current sim time)
class OpScope {
 public:
  OpScope() = default;
  OpScope(Observer* o, const char* type, TrackId track)
      : o_(o), type_(type), track_(track), id_(o->beginOp(type, track)),
        start_(o->now()) {}
  OpScope(OpScope&& other) noexcept { *this = std::move(other); }
  OpScope& operator=(OpScope&& other) noexcept {
    end();
    o_ = other.o_;
    type_ = other.type_;
    track_ = other.track_;
    id_ = other.id_;
    start_ = other.start_;
    other.o_ = nullptr;
    other.id_ = 0;
    return *this;
  }
  ~OpScope() { end(); }

  OpId id() const noexcept { return id_; }

  void end() noexcept {
    if (o_ != nullptr && id_ != 0) o_->endOp(id_, type_, track_, start_);
    o_ = nullptr;
    id_ = 0;
  }

 private:
  Observer* o_ = nullptr;
  const char* type_ = nullptr;
  TrackId track_ = 0;
  OpId id_ = 0;
  sim::Time start_ = 0;
};

/// RAII structural leg: groups child legs under one node of the op's causal
/// tree without charging the aggregate (the children carry the charges).
/// ctx() is the OpId to thread into child work — it names this leg as the
/// children's parent. Default-constructed scopes are inert and ctx() passes
/// the original op through unchanged.
class LegScope {
 public:
  LegScope() = default;
  LegScope(Observer* o, OpId op, const char* name, Cat cat, TrackId track)
      : o_(o), op_(op), name_(name), cat_(cat), track_(track),
        id_(o->openLeg(op)), start_(o->now()) {}
  LegScope(LegScope&& other) noexcept { *this = std::move(other); }
  LegScope& operator=(LegScope&& other) noexcept {
    end();
    o_ = other.o_;
    op_ = other.op_;
    name_ = other.name_;
    cat_ = other.cat_;
    track_ = other.track_;
    id_ = other.id_;
    start_ = other.start_;
    other.o_ = nullptr;
    other.id_ = 0;
    return *this;
  }
  ~LegScope() { end(); }

  /// Op id for child work: children record this leg as their parent.
  OpId ctx() const noexcept {
    return id_ != 0 ? withParent(op_, id_) : op_;
  }

  void end() noexcept {
    if (o_ != nullptr && id_ != 0) {
      o_->structLeg(op_, cat_, track_, name_, start_, 0, id_);
    }
    o_ = nullptr;
    id_ = 0;
  }

 private:
  Observer* o_ = nullptr;
  OpId op_ = 0;
  const char* name_ = nullptr;
  Cat cat_ = Cat::kOther;
  TrackId track_ = 0;
  LegId id_ = 0;
  sim::Time start_ = 0;
};

/// Opens an op span if `sim` has an observer; inert OpScope otherwise.
inline OpScope beginOp(sim::Simulation& sim, const char* type, int pid,
                       std::string_view track_name) {
  Observer* o = sim.observer();
  if (o == nullptr) return {};
  return OpScope(o, type, o->track(pid, track_name));
}

}  // namespace daosim::obs
