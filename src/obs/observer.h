// Observer: the single sink every instrumentation site in the simulator
// guards on.
//
// `sim::Simulation` holds a raw `Observer*` that is null by default; each
// hot-path hook is one `if (auto* o = sim.observer())` branch, so the
// disabled cost is a pointer load and compare. When attached, the observer
//   * assigns op ids and aggregates per-op-type latency histograms plus a
//     category breakdown (client CPU / net request / server queue / service /
//     device / net response) — always on, allocation-free per event;
//   * optionally records every span and leg into a Tracer for chrome://tracing
//     export (enableTracing(); off by default since event storage grows with
//     the run).
//
// Ops are identified by explicit `OpId` values threaded through coroutine
// parameters (plain data, safe under the GCC-12 closure-parameter rule); the
// id 0 means "not traced" and instrumentation sites ignore it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace daosim::obs {

class Observer {
 public:
  Observer();
  ~Observer();
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Registers this observer as `sim`'s sink. One observer per simulation;
  /// detaches automatically on destruction.
  void attach(sim::Simulation& sim);
  void detach();

  /// Unique across all Observer instances in the process. Stations cache
  /// their TrackId keyed by this epoch so a fresh observer (new rep) never
  /// sees a stale id.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Turns on span/leg event recording (for --trace). Aggregation and
  /// metrics are always on while attached.
  void enableTracing();
  Tracer* tracer() noexcept { return tracer_.get(); }
  const Tracer* tracer() const noexcept { return tracer_.get(); }

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  sim::Time now() const noexcept;

  TrackId track(int pid, std::string_view name);

  /// Opens a new op of `type` (a string literal) on `track`; returns its id.
  OpId beginOp(const char* type, TrackId track);

  /// Closes `op`. `type`/`track`/`start` are carried by the caller (OpScope)
  /// rather than stored per op, keeping the open-op table small.
  void endOp(OpId op, const char* type, TrackId track, sim::Time start);

  /// Records that `op` occupied `track` from `start` to now() as `cat`.
  /// No-op for op 0 or an op that already ended.
  void leg(OpId op, Cat cat, TrackId track, const char* name, sim::Time start);

  /// Per-op-type aggregate: latency histogram plus summed per-category leg
  /// time. kClient is the residual latency not covered by recorded legs.
  struct OpTypeAgg {
    std::uint64_t count = 0;
    Histogram latency;                      // ns per op
    std::uint64_t cat_ns[kCatCount] = {};  // summed leg time per category
  };

  /// Keyed by string literal identity-by-content (op types are literals).
  const std::map<std::string, OpTypeAgg>& opTypes() const noexcept {
    return op_types_;
  }

  std::uint64_t opsStarted() const noexcept { return next_op_ - 1; }

  /// Folds per-op-type aggregates into metrics() as `op.<type>.*` entries.
  void exportMetrics();

  void writeChromeTrace(std::ostream& os) const;

  /// Human-readable per-layer breakdown table: for each op type, count,
  /// latency percentiles, and % of total time per category.
  void writeBreakdown(std::ostream& os) const;

 private:
  struct OpenOp {
    sim::Time cat_ns[kCatCount] = {};
  };

  std::uint64_t epoch_;
  sim::Simulation* sim_ = nullptr;
  std::unique_ptr<Tracer> tracer_;
  MetricsRegistry metrics_;
  OpId next_op_ = 1;
  std::map<OpId, OpenOp> open_;
  std::map<std::string, OpTypeAgg> op_types_;
};

/// RAII op span. Default-constructed (or moved-from) scopes are inert, so
/// call sites stay a single line whether or not an observer is attached:
///
///   auto op = obs::beginOp(sim, "array.write", node_, "client3");
///   ... co_await legs passing op.id() ...
///   (destructor or op.end() closes the span at the current sim time)
class OpScope {
 public:
  OpScope() = default;
  OpScope(Observer* o, const char* type, TrackId track)
      : o_(o), type_(type), track_(track), id_(o->beginOp(type, track)),
        start_(o->now()) {}
  OpScope(OpScope&& other) noexcept { *this = std::move(other); }
  OpScope& operator=(OpScope&& other) noexcept {
    end();
    o_ = other.o_;
    type_ = other.type_;
    track_ = other.track_;
    id_ = other.id_;
    start_ = other.start_;
    other.o_ = nullptr;
    other.id_ = 0;
    return *this;
  }
  ~OpScope() { end(); }

  OpId id() const noexcept { return id_; }

  void end() noexcept {
    if (o_ != nullptr && id_ != 0) o_->endOp(id_, type_, track_, start_);
    o_ = nullptr;
    id_ = 0;
  }

 private:
  Observer* o_ = nullptr;
  const char* type_ = nullptr;
  TrackId track_ = 0;
  OpId id_ = 0;
  sim::Time start_ = 0;
};

/// Opens an op span if `sim` has an observer; inert OpScope otherwise.
inline OpScope beginOp(sim::Simulation& sim, const char* type, int pid,
                       std::string_view track_name) {
  Observer* o = sim.observer();
  if (o == nullptr) return {};
  return OpScope(o, type, o->track(pid, track_name));
}

}  // namespace daosim::obs
