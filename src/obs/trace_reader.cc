#include "obs/trace_reader.h"

#include <cstdint>
#include <istream>
#include <map>
#include <string_view>
#include <utility>

namespace daosim::obs {

namespace {

[[noreturn]] void malformed(std::string_view line, const char* what) {
  throw TraceFormatError("malformed trace event (" + std::string(what) +
                         "): " +
                         std::string(line.substr(0, 120)));
}

/// Extracts the numeric token after `key` ("1234" or "1234.567"); returns
/// false when the key is absent.
bool findNum(std::string_view line, std::string_view key,
             std::string_view& out) {
  const auto pos = line.find(key);
  if (pos == std::string_view::npos) return false;
  std::size_t i = pos + key.size();
  const std::size_t begin = i;
  while (i < line.size() &&
         ((line[i] >= '0' && line[i] <= '9') || line[i] == '.' ||
          line[i] == '-')) {
    ++i;
  }
  if (i == begin) return false;
  out = line.substr(begin, i - begin);
  return true;
}

std::uint64_t toU64(std::string_view s) {
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Chrome timestamps are microseconds with up to 3 fractional digits (the
/// writer emits nanosecond precision); converts back to integer ns.
sim::Time microsToNs(std::string_view s) {
  const auto dot = s.find('.');
  std::uint64_t whole = toU64(dot == std::string_view::npos ? s : s.substr(0, dot));
  std::uint64_t frac = 0;
  if (dot != std::string_view::npos) {
    std::string_view f = s.substr(dot + 1);
    std::size_t digits = 0;
    for (char c : f) {
      if (c < '0' || c > '9') break;
      frac = frac * 10 + static_cast<std::uint64_t>(c - '0');
      ++digits;
    }
    for (; digits < 3; ++digits) frac *= 10;
  }
  return static_cast<sim::Time>(whole * 1000 + frac);
}

bool findStr(std::string_view line, std::string_view key,
             std::string_view& out) {
  const auto pos = line.find(key);
  if (pos == std::string_view::npos) return false;
  const std::size_t begin = pos + key.size();
  const auto end = line.find('"', begin);
  if (end == std::string_view::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

}  // namespace

TraceDump parseChromeTrace(std::istream& is) {
  TraceDump dump;
  std::map<std::string, const char*> interned;
  const auto intern = [&](std::string_view s) -> const char* {
    auto it = interned.find(std::string(s));
    if (it != interned.end()) return it->second;
    dump.names.emplace_back(s);
    return interned.emplace(std::string(s), dump.names.back().c_str())
        .first->second;
  };

  struct Pending {
    const char* name = nullptr;
    TrackId track = 0;
    sim::Time ts = 0;
  };
  std::map<std::uint64_t, Pending> open;                 // "b" awaiting "e"
  std::map<std::uint64_t, std::vector<TraceEvent>> legs;  // by op seq

  std::string line;
  bool have_schema = false;
  while (std::getline(is, line)) {
    std::string_view v = line;
    if (!have_schema) {
      std::string_view num;
      if (findNum(v, "\"schema\": ", num) || findNum(v, "\"schema\":", num)) {
        dump.schema = static_cast<int>(toU64(num));
        have_schema = true;
        if (dump.schema != kTraceSchemaVersion) {
          throw TraceFormatError(
              "trace schema mismatch: file has version " +
              std::to_string(dump.schema) + ", this tool expects " +
              std::to_string(kTraceSchemaVersion));
        }
      }
    }
    const auto brace = v.find("{\"ph\":\"");
    if (brace == std::string_view::npos) continue;
    if (!have_schema) {
      throw TraceFormatError(
          "not a daosim trace: events before (or without) a schema stamp");
    }
    v = v.substr(brace);
    const char ph = v.size() > 7 ? v[7] : '\0';
    std::string_view num;
    std::string_view str;
    if (ph == 'M') {
      if (!findStr(v, "\"name\":\"", str) || str != "thread_name") continue;
      if (!findNum(v, "\"pid\":", num)) malformed(v, "no pid");
      const int pid = static_cast<int>(toU64(num));
      if (!findNum(v, "\"tid\":", num)) malformed(v, "no tid");
      const std::size_t tid = toU64(num);
      if (!findStr(v, "\"args\":{\"name\":\"", str)) malformed(v, "no name");
      if (dump.tracks.size() <= tid) dump.tracks.resize(tid + 1);
      dump.tracks[tid] = TrackDesc{pid, std::string(str)};
    } else if (ph == 'b' || ph == 'e') {
      if (!findNum(v, "\"id\":", num)) malformed(v, "no id");
      const std::uint64_t id = toU64(num);
      if (!findNum(v, "\"ts\":", num)) malformed(v, "no ts");
      const sim::Time ts = microsToNs(num);
      if (ph == 'b') {
        if (!findStr(v, "\"name\":\"", str)) malformed(v, "no name");
        Pending p;
        p.name = intern(str);
        if (findNum(v, "\"tid\":", num)) {
          p.track = static_cast<TrackId>(toU64(num));
        }
        p.ts = ts;
        open[id] = p;
      } else {
        auto it = open.find(id);
        if (it == open.end()) malformed(v, "span end without begin");
        OpRecord rec;
        rec.type = it->second.name;
        rec.seq = id;
        rec.track = it->second.track;
        rec.start = it->second.ts;
        rec.dur = ts - it->second.ts;
        open.erase(it);
        dump.ops.push_back(std::move(rec));
      }
    } else if (ph == 'X') {
      TraceEvent e;
      if (!findStr(v, "\"name\":\"", str)) malformed(v, "no name");
      e.name = intern(str);
      if (findStr(v, "\"cat\":\"", str)) {
        for (int c = 0; c < kCatCount; ++c) {
          if (str == catName(static_cast<Cat>(c))) {
            e.cat = static_cast<Cat>(c);
            break;
          }
        }
      }
      if (!findNum(v, "\"tid\":", num)) malformed(v, "no tid");
      e.track = static_cast<TrackId>(toU64(num));
      if (!findNum(v, "\"ts\":", num)) malformed(v, "no ts");
      e.ts = microsToNs(num);
      if (!findNum(v, "\"dur\":", num)) malformed(v, "no dur");
      e.dur = microsToNs(num);
      if (!findNum(v, "\"op\":", num)) malformed(v, "no op");
      e.op = toU64(num);
      if (findNum(v, "\"leg\":", num)) {
        e.leg = static_cast<LegId>(toU64(num));
      }
      if (findNum(v, "\"parent\":", num)) {
        e.parent = static_cast<LegId>(toU64(num));
      }
      if (findNum(v, "\"wait\":", num)) e.wait = microsToNs(num);
      legs[e.op].push_back(e);
    }
  }
  if (!have_schema) {
    throw TraceFormatError("not a daosim trace: no schema stamp found");
  }
  dump.dropped_opens = open.size();
  for (OpRecord& rec : dump.ops) {
    auto it = legs.find(rec.seq);
    if (it != legs.end()) rec.legs = std::move(it->second);
  }
  return dump;
}

}  // namespace daosim::obs
