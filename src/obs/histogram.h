// Log-linear latency histogram (HDR-style).
//
// Values are bucketed by power-of-two octave, with kSubBuckets linear
// sub-buckets per octave, bounding the relative quantization error at
// 1/kSubBuckets (6.25%) while covering the full 64-bit nanosecond range in a
// fixed-size array. add() is branch-light and allocation-free, so the
// histogram can sit on simulator hot paths (queue stations, per-op latency
// recording) without perturbing the run.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace daosim::obs {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// Values below kSubBuckets get one exact bucket each; every octave above
  /// contributes kSubBuckets log-linear buckets.
  static constexpr std::size_t kBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  /// Index of the bucket holding `v`. Exposed for bin-boundary tests.
  static constexpr std::size_t bucketIndex(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const std::uint64_t sub =
        (v >> (msb - kSubBucketBits)) - kSubBuckets;  // in [0, kSubBuckets)
    return static_cast<std::size_t>(
        kSubBuckets +
        static_cast<std::uint64_t>(msb - kSubBucketBits) * kSubBuckets + sub);
  }

  /// Lowest value mapped to bucket `i` (inclusive).
  static constexpr std::uint64_t bucketLo(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::uint64_t octave = (i - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (i - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + sub) << octave;
  }

  /// Highest value mapped to bucket `i` (exclusive); saturates at the
  /// maximum representable value for the top bucket, whose true bound
  /// (2^64) does not fit in a uint64_t.
  static constexpr std::uint64_t bucketHi(std::size_t i) noexcept {
    if (i < kSubBuckets) return i + 1;
    const std::uint64_t octave = (i - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (i - kSubBuckets) % kSubBuckets;
    const std::uint64_t base = kSubBuckets + sub + 1;
    if (octave >= 64 || (base << octave) >> octave != base) {
      return ~std::uint64_t{0};
    }
    return base << octave;
  }

  void add(std::uint64_t v) noexcept {
    ++counts_[bucketIndex(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  double sum() const noexcept { return static_cast<double>(sum_); }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at percentile `p` in [0, 100], linearly interpolated within the
  /// containing bucket; clamped to the recorded min/max so constant series
  /// report their exact value. Returns 0 for an empty histogram.
  double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return static_cast<double>(min_);
    if (p >= 100.0) return static_cast<double>(max_);
    // Rank in [0, count): the p-th fraction of the ordered samples.
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      const std::uint64_t next = seen + counts_[i];
      if (static_cast<double>(next) >= rank) {
        const double within =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(counts_[i]);
        const double lo = static_cast<double>(bucketLo(i));
        const double hi = static_cast<double>(bucketHi(i));
        double v = lo + within * (hi - lo);
        if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
        if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
        return v;
      }
      seen = next;
    }
    return static_cast<double>(max_);
  }

  std::uint64_t bucketCount(std::size_t i) const noexcept {
    return counts_[i];
  }

  void reset() noexcept { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace daosim::obs
