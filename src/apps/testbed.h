// Testbeds: fully deployed storage systems plus client fleets, mirroring the
// paper's three deployments (§II-B, §III-E, §III-F). A testbed owns the
// simulation; benchmarks are run against it with apps::runSpmd. Each
// repetition of an experiment uses a fresh testbed with a different seed,
// which perturbs object placement the way re-running on a real system would.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "daos/client.h"
#include "daos/system.h"
#include "dfs/dfs.h"
#include "hw/cluster.h"
#include "io/backend.h"
#include "lustre/lustre.h"
#include "posix/dfuse.h"
#include "rados/rados.h"
#include "sim/shard.h"
#include "sim/simulation.h"

namespace daosim::apps {

/// DAOS deployment: `server_count` engines (16 targets each) + client fleet.
class DaosTestbed {
 public:
  struct Options {
    int server_nodes = 16;
    int client_nodes = 16;
    std::uint64_t seed = 1;
    bool retain_data = false;  // benchmarks run size-only by default
    bool with_dfuse = true;    // start a DFUSE daemon on every client node
    /// Intra-run event-queue shards, following apps::PdesOptions: 0
    /// deploys on the plain serial kernel (the frozen pre-sharding path,
    /// bit-identical to before this knob existed); >= 1 deploys on a
    /// sim::ShardGroup — nodes placed round-robin across shards (node id
    /// modulo shards), lookahead = the fabric latency, setup under
    /// ShardGroup::run(). ShardGroup(1) runs the full windowed protocol
    /// inline; its results are bit-identical to every other shard count
    /// (the conformance anchor in tests/shard_stack_test.cc), while the
    /// serial kernel is a different frozen total order. Requires
    /// with_dfuse = false (DFUSE daemons are serial-only). The daosim_run
    /// CLI maps --sim-jobs 0|1 to the serial kernel.
    int sim_jobs = 0;
    daos::DaosConfig daos;
    dfs::DfsConfig dfs;
    posix::DfuseConfig dfuse;
  };

  explicit DaosTestbed(Options opt);

  /// Shard 0's simulation on a sharded testbed, the one global simulation
  /// otherwise (identical to the pre-sharding accessor there).
  sim::Simulation& sim() noexcept { return cluster_->sim(); }
  /// Non-null when the testbed deploys on a shard group (sim_jobs >= 1).
  sim::ShardGroup* shardGroup() noexcept { return group_.get(); }
  /// Runs the deployed kernel to quiescence: ShardGroup::run() when
  /// sharded, Simulation::run() serially.
  void run() {
    if (group_ != nullptr) {
      group_->run();
    } else {
      serial_sim_->run();
    }
  }
  hw::Cluster& cluster() noexcept { return *cluster_; }
  daos::DaosSystem& daos() noexcept { return *daos_; }
  const std::vector<hw::NodeId>& clients() const noexcept { return clients_; }
  const daos::Container& container() const noexcept { return cont_; }
  const dfs::FileSystem& dfsMount() const noexcept { return *dfs_; }
  posix::DfuseDaemon& daemon(hw::NodeId node) { return *daemons_.at(node); }
  /// All running DFUSE daemons (empty when with_dfuse = false).
  const std::map<hw::NodeId, std::unique_ptr<posix::DfuseDaemon>>& daemons()
      const noexcept {
    return daemons_;
  }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Env for io::makeBackend, pointing into this testbed (which must
  /// outlive any backend made from it).
  io::Env ioEnv() noexcept {
    io::Env env;
    env.sim = &sim();
    env.seed = seed_;
    env.daos = daos_.get();
    env.dfs_mount = dfs_ ? &*dfs_ : nullptr;
    env.dfuse_daemons = &daemons_;
    return env;
  }

  /// First `n` client nodes.
  std::vector<hw::NodeId> clientSubset(int n) const {
    return {clients_.begin(), clients_.begin() + n};
  }

 private:
  std::unique_ptr<sim::Simulation> serial_sim_;  // null when sharded
  std::unique_ptr<sim::ShardGroup> group_;       // null when serial
  std::unique_ptr<hw::Cluster> cluster_;
  std::uint64_t seed_;
  std::vector<hw::NodeId> servers_;
  std::vector<hw::NodeId> clients_;
  std::unique_ptr<daos::DaosSystem> daos_;
  std::unique_ptr<daos::Client> admin_;
  std::vector<std::unique_ptr<daos::Client>> daemon_clients_;
  daos::Container cont_;
  std::optional<dfs::FileSystem> dfs_;
  std::map<hw::NodeId, std::unique_ptr<posix::DfuseDaemon>> daemons_;
};

/// Lustre deployment: OSS nodes (16 OSTs each) + one MDS node + clients.
class LustreTestbed {
 public:
  struct Options {
    int oss_nodes = 16;
    int client_nodes = 32;
    std::uint64_t seed = 1;
    bool retain_data = false;
    lustre::LustreConfig lustre;
  };

  explicit LustreTestbed(Options opt);

  sim::Simulation& sim() noexcept { return sim_; }
  hw::Cluster& cluster() noexcept { return cluster_; }
  lustre::LustreSystem& lustre() noexcept { return *lustre_; }
  const std::vector<hw::NodeId>& clients() const noexcept { return clients_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Env for io::makeBackend. Stripe settings default to the paper's
  /// benchmark tuning (8 stripes x 8 MiB).
  io::Env ioEnv(int stripe_count = 8,
                std::uint64_t stripe_size = 8 << 20) noexcept {
    io::Env env;
    env.sim = &sim_;
    env.seed = seed_;
    env.lustre = lustre_.get();
    env.lustre_stripe_count = stripe_count;
    env.lustre_stripe_size = stripe_size;
    return env;
  }
  std::vector<hw::NodeId> clientSubset(int n) const {
    return {clients_.begin(), clients_.begin() + n};
  }

 private:
  sim::Simulation sim_;
  hw::Cluster cluster_;
  std::uint64_t seed_;
  std::vector<hw::NodeId> clients_;
  std::unique_ptr<lustre::LustreSystem> lustre_;
};

/// Ceph deployment: OSD nodes (16 OSDs each) + one monitor node + clients.
class CephTestbed {
 public:
  struct Options {
    int osd_nodes = 16;
    int client_nodes = 32;
    std::uint64_t seed = 1;
    bool retain_data = false;
    rados::CephConfig ceph;
  };

  explicit CephTestbed(Options opt);

  sim::Simulation& sim() noexcept { return sim_; }
  hw::Cluster& cluster() noexcept { return cluster_; }
  rados::CephCluster& ceph() noexcept { return *ceph_; }
  const std::vector<hw::NodeId>& clients() const noexcept { return clients_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Env for io::makeBackend.
  io::Env ioEnv() noexcept {
    io::Env env;
    env.sim = &sim_;
    env.seed = seed_;
    env.ceph = ceph_.get();
    return env;
  }
  std::vector<hw::NodeId> clientSubset(int n) const {
    return {clients_.begin(), clients_.begin() + n};
  }

 private:
  sim::Simulation sim_;
  hw::Cluster cluster_;
  std::uint64_t seed_;
  std::vector<hw::NodeId> clients_;
  std::unique_ptr<rados::CephCluster> ceph_;
};

}  // namespace daosim::apps
