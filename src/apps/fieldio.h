// Field I/O: ECMWF's standalone weather-field benchmark (§II-A3).
//
// Each process writes a sequence of fields; every field is stored in its
// own object (a DAOS Array, S1 in the paper's tuning) and indexed with
// Key-Value puts, some into an index object exclusive to the process and
// some into an index shared by all processes (SX). In read mode the same
// sequence is retrieved by querying the Key-Values, checking the object
// size, and reading it — the size check ahead of every read is the
// behaviour the paper singles out as the reason Field I/O's read scaling
// trails fdb-hammer's.
//
// Field I/O is written against libdaos KV indexes, so it requires a
// backend with caps().native_index (daos-array today).
#pragma once

#include <cstdint>
#include <string>

#include "apps/runner.h"
#include "io/backend.h"
#include "placement/objclass.h"

namespace daosim::apps {

struct FieldIoConfig {
  std::uint64_t field_size = 1 << 20;
  std::uint64_t fields = 1000;  // per process
  placement::ObjClass array_oclass = placement::ObjClass::S1;
  placement::ObjClass kv_oclass = placement::ObjClass::SX;
  /// Index puts per field on the write side (split exclusive/shared) and
  /// gets per field on the read side; 7 + 3 reproduces the paper's "average
  /// of 10 KV operations per object".
  int index_puts_exclusive = 5;
  int index_puts_shared = 2;
  int index_gets_exclusive = 2;
  int index_gets_shared = 1;
};

class FieldIo final : public SpmdBenchmark {
 public:
  /// Throws std::invalid_argument from process() if the named backend has
  /// no native key-value index.
  FieldIo(io::Env env, std::string api, FieldIoConfig cfg)
      : env_(env), api_(std::move(api)), cfg_(cfg) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  io::Env env_;
  std::string api_;
  FieldIoConfig cfg_;
};

}  // namespace daosim::apps
