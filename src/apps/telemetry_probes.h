// Telemetry wiring for the testbeds: walks a deployed system and registers
// one pull probe per hot component under a topology-mirroring path, e.g.
//
//   server/<e>/target/<t>/nvme/busy_frac      server/<e>/nic/tx/bytes_per_s
//   server/<e>/target/<t>/xs/queue_len        client/<i>/dfuse/cache_hit_frac
//   ost/<i>/cpu/busy_frac                     osd/<i>/threads/busy_frac
//   net/inflight                              net/rpc_req_per_s
//
// Busy-fraction probes return cumulative busy *seconds* under Kind::kRate,
// so each sampled bin is the dimensionless utilization over that bin.
// Multi-server stations (DFUSE, MDS, OSD op threads) divide by the thread
// count to report per-thread utilization, matching apps::reportUtilization.
//
// ScopedRunTelemetry is the per-run RAII wrapper the bench binaries and
// daosim_run use: it attaches a Telemetry to the run's simulation and, on
// destruction, finishes it and hands it to TelemetryHub::global() under a
// deterministic run label (which is what keeps serial and --jobs sweeps
// byte-identical).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/testbed.h"
#include "obs/telemetry.h"
#include "sim/shard.h"
#include "sim/time.h"

namespace daosim::apps {

void registerProbes(obs::Telemetry& t, DaosTestbed& tb);
void registerProbes(obs::Telemetry& t, LustreTestbed& tb);
void registerProbes(obs::Telemetry& t, CephTestbed& tb);

/// Sharded-run probe registration: the subset of registerProbes(DaosTestbed)
/// owned by `shard`, under the *same paths*. Component probes (NICs, NVMe,
/// xstreams, VOS, the pool-service station) go to the shard whose thread
/// mutates them — nodeShard() of the owning node — so sampling never reads
/// across threads; cluster-wide `net/*` probes read lane-local counters on
/// every shard and rely on mergeLanes() summing the raw samples back to the
/// serial value. The DaosSystem health gauges (`daos/*`) register on shard 0
/// — they are driven only by the serial-only fault machinery, so they stay
/// flat zero (daosim_run rejects --faults with sharded telemetry). Lanes
/// must be in raw-sample mode (obs::Telemetry::enableRawSamples).
void registerShardProbes(obs::Telemetry& t, DaosTestbed& tb, int shard);

/// Adds the `pdes/*` engine-introspection subtree to a finished registry:
/// protocol counters (windows, cross_posts, barrier/late releases, mailbox
/// flush counts and bytes), per-shard wall-clock busy/wait splits with
/// events/s, and the group load-imbalance ratio (max busy / mean busy).
/// Wall-clock values are nondeterministic — byte-compare harnesses filter
/// rows containing "pdes/".
void addPdesTelemetry(obs::Telemetry& t, const sim::ShardSyncStats& s);

/// Parses a duration: a plain number is nanoseconds; "us"/"ms"/"s"/"ns"
/// suffixes are honoured ("10ms", "500us"). Throws std::invalid_argument on
/// junk or non-positive values.
sim::Time parseDuration(const std::string& s);

/// DAOSIM_TELEMETRY: output file enabling telemetry in the bench binaries
/// ("" when unset). DAOSIM_TELEMETRY_INTERVAL: sampling interval (default
/// 10ms sim-time).
std::string telemetryEnvFile();
sim::Time telemetryEnvInterval();

/// Writes TelemetryHub::global() to telemetryEnvFile() if set and any run
/// was collected (JSON when the file name ends in ".json", CSV otherwise).
/// Called by benchMain after the sweeps drain.
void flushTelemetryEnv();

/// Per-run telemetry scope. The env-gated form is inert unless
/// DAOSIM_TELEMETRY is set; the explicit form is driven by a CLI flag.
/// While active, register probes with `registerProbes(s.telemetry(), tb)`.
class ScopedRunTelemetry {
 public:
  /// Env-gated (bench binaries): enabled iff DAOSIM_TELEMETRY is set, with
  /// the interval from DAOSIM_TELEMETRY_INTERVAL.
  ScopedRunTelemetry(sim::Simulation& sim, std::string label)
      : ScopedRunTelemetry(sim, std::move(label), !telemetryEnvFile().empty(),
                           telemetryEnvInterval()) {}

  /// Explicit (daosim_run --telemetry).
  ScopedRunTelemetry(sim::Simulation& sim, std::string label, bool enabled,
                     sim::Time interval);

  ScopedRunTelemetry(const ScopedRunTelemetry&) = delete;
  ScopedRunTelemetry& operator=(const ScopedRunTelemetry&) = delete;

  /// Finishes the run and moves the registry into TelemetryHub::global().
  ~ScopedRunTelemetry();

  bool active() const noexcept { return t_.has_value(); }
  obs::Telemetry& telemetry() noexcept { return *t_; }

 private:
  std::string label_;
  std::optional<obs::Telemetry> t_;
};

/// Sharded-run telemetry scope (daosim_run --telemetry --sim-jobs N): one
/// raw-sample Telemetry lane per shard, attached at the group-wide maximum
/// clock so every lane shares bin boundaries. The destructor finishes all
/// lanes at the group-wide end clock, merges them deterministically
/// (obs::Telemetry::mergeLanes — dump bytes independent of the shard
/// count), appends the `pdes/*` subtree if noteShardStats() was called, and
/// hands the merged registry to `hub` (TelemetryHub::global() by default;
/// tests pass a local hub to keep cross-shard-count runs from colliding on
/// one label) under `label`.
class ShardedRunTelemetry {
 public:
  /// Requires tb.shardGroup() != nullptr when `enabled`; a non-positive
  /// `interval` falls back to telemetryEnvInterval().
  ShardedRunTelemetry(DaosTestbed& tb, std::string label, bool enabled,
                      sim::Time interval, obs::TelemetryHub* hub = nullptr);

  ShardedRunTelemetry(const ShardedRunTelemetry&) = delete;
  ShardedRunTelemetry& operator=(const ShardedRunTelemetry&) = delete;

  ~ShardedRunTelemetry();

  bool active() const noexcept { return !lanes_.empty(); }

  /// Stores a copy of the group's sync stats (call after ShardGroup::run());
  /// exported as the pdes/* subtree of the merged dump.
  void noteShardStats(const sim::ShardSyncStats& s) {
    stats_ = s;
    has_stats_ = true;
  }

 private:
  DaosTestbed* tb_;
  std::string label_;
  obs::TelemetryHub* hub_;
  std::vector<std::unique_ptr<obs::Telemetry>> lanes_;
  sim::ShardSyncStats stats_;
  bool has_stats_ = false;
};

}  // namespace daosim::apps
