// Telemetry wiring for the testbeds: walks a deployed system and registers
// one pull probe per hot component under a topology-mirroring path, e.g.
//
//   server/<e>/target/<t>/nvme/busy_frac      server/<e>/nic/tx/bytes_per_s
//   server/<e>/target/<t>/xs/queue_len        client/<i>/dfuse/cache_hit_frac
//   ost/<i>/cpu/busy_frac                     osd/<i>/threads/busy_frac
//   net/inflight                              net/rpc_req_per_s
//
// Busy-fraction probes return cumulative busy *seconds* under Kind::kRate,
// so each sampled bin is the dimensionless utilization over that bin.
// Multi-server stations (DFUSE, MDS, OSD op threads) divide by the thread
// count to report per-thread utilization, matching apps::reportUtilization.
//
// ScopedRunTelemetry is the per-run RAII wrapper the bench binaries and
// daosim_run use: it attaches a Telemetry to the run's simulation and, on
// destruction, finishes it and hands it to TelemetryHub::global() under a
// deterministic run label (which is what keeps serial and --jobs sweeps
// byte-identical).
#pragma once

#include <optional>
#include <string>

#include "apps/testbed.h"
#include "obs/telemetry.h"
#include "sim/time.h"

namespace daosim::apps {

void registerProbes(obs::Telemetry& t, DaosTestbed& tb);
void registerProbes(obs::Telemetry& t, LustreTestbed& tb);
void registerProbes(obs::Telemetry& t, CephTestbed& tb);

/// Parses a duration: a plain number is nanoseconds; "us"/"ms"/"s"/"ns"
/// suffixes are honoured ("10ms", "500us"). Throws std::invalid_argument on
/// junk or non-positive values.
sim::Time parseDuration(const std::string& s);

/// DAOSIM_TELEMETRY: output file enabling telemetry in the bench binaries
/// ("" when unset). DAOSIM_TELEMETRY_INTERVAL: sampling interval (default
/// 10ms sim-time).
std::string telemetryEnvFile();
sim::Time telemetryEnvInterval();

/// Writes TelemetryHub::global() to telemetryEnvFile() if set and any run
/// was collected (JSON when the file name ends in ".json", CSV otherwise).
/// Called by benchMain after the sweeps drain.
void flushTelemetryEnv();

/// Per-run telemetry scope. The env-gated form is inert unless
/// DAOSIM_TELEMETRY is set; the explicit form is driven by a CLI flag.
/// While active, register probes with `registerProbes(s.telemetry(), tb)`.
class ScopedRunTelemetry {
 public:
  /// Env-gated (bench binaries): enabled iff DAOSIM_TELEMETRY is set, with
  /// the interval from DAOSIM_TELEMETRY_INTERVAL.
  ScopedRunTelemetry(sim::Simulation& sim, std::string label)
      : ScopedRunTelemetry(sim, std::move(label), !telemetryEnvFile().empty(),
                           telemetryEnvInterval()) {}

  /// Explicit (daosim_run --telemetry).
  ScopedRunTelemetry(sim::Simulation& sim, std::string label, bool enabled,
                     sim::Time interval);

  ScopedRunTelemetry(const ScopedRunTelemetry&) = delete;
  ScopedRunTelemetry& operator=(const ScopedRunTelemetry&) = delete;

  /// Finishes the run and moves the registry into TelemetryHub::global().
  ~ScopedRunTelemetry();

  bool active() const noexcept { return t_.has_value(); }
  obs::Telemetry& telemetry() noexcept { return *t_; }

 private:
  std::string label_;
  std::optional<obs::Telemetry> t_;
};

}  // namespace daosim::apps
