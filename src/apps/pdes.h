// Sharded SPMD harness: the --bench pdes workload.
//
// A hardware-level object-store workload built directly on hw::Cluster —
// clients pick a server per op, ship the payload over the NIC model, burn a
// fixed server-CPU cost on the target's service station, hit one NVMe
// device and ship the response back — with a barrier between the write and
// read phases. It exists to exercise and measure intra-run parallelism
// (sim::ShardGroup): unlike the full DAOS/Lustre/Ceph protocol stacks,
// which are built against a single sim::Simulation, every object this
// workload touches is owned by exactly one node, so nodes can be
// partitioned across event-queue shards.
//
// The same workload code runs in two modes:
//   * sim_jobs == 0 — the classic serial kernel (one Simulation, one
//     sim::Barrier); this is the --sim-jobs 1 default and the equality
//     baseline;
//   * sim_jobs >= 1 — a ShardGroup with that many shards, nodes assigned
//     round-robin, lookahead = fabric latency, a ShardBarrier between
//     phases, and per-shard RunResult lanes merged commutatively.
//
// Determinism and serial equality: every client process owns an RNG lane
// seeded from (seed, rank), so its op sequence is mode-independent; a
// deterministic per-rank start stagger plus per-op think jitter keeps
// cross-shard arrivals from tying at the same nanosecond on one station,
// which is the only way the sharded total order could diverge from the
// serial one. tests/kernel_test.cc asserts full RunResult equality
// (histogram buckets included) across random topologies and seeds.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "apps/runner.h"
#include "sim/shard.h"

namespace daosim::apps {

struct PdesOptions {
  int server_nodes = 4;
  int client_nodes = 4;
  int procs_per_node = 4;       ///< client processes per client node
  std::uint64_t ops = 32;       ///< per process, per phase
  std::uint64_t transfer = 1 << 20;
  int drives_per_server = 4;
  std::uint64_t seed = 1;
  /// Event-queue shards: 0 = the plain serial kernel (no ShardGroup at
  /// all); N >= 1 = a windowed ShardGroup with N shards (1 measures the
  /// protocol overhead without parallelism).
  int sim_jobs = 0;
  bool write_phase = true;
  bool read_phase = true;
};

struct PdesResult {
  RunResult run;
  std::size_t events = 0;      ///< kernel events processed (all shards)
  sim::ShardSyncStats sync;    ///< zeroed in serial mode
  std::uint64_t digest = 0;    ///< runDigest(run)
};

/// Order-insensitive fingerprint of a RunResult: procs, per-phase
/// bytes/ops/first/last and every latency bucket plus min/max. Two runs
/// with equal digests agree on everything daosim_run prints.
std::uint64_t runDigest(const RunResult& r);

PdesResult runPdes(const PdesOptions& o);

/// Shard-sync rows for daosim_run --stats.
void writePdesStats(std::ostream& out, const PdesResult& r);

}  // namespace daosim::apps
