#include "apps/testbed.h"

#include <stdexcept>
#include <string>

namespace daosim::apps {

namespace {

sim::Task<void> daosSetup(DaosTestbed* tb, daos::Client* admin,
                          daos::Container* cont,
                          std::optional<dfs::FileSystem>* dfs_out,
                          dfs::DfsConfig dfs_config) {
  (void)tb;
  co_await admin->poolConnect();
  *cont = co_await admin->contCreate("bench");
  dfs_out->emplace(
      co_await dfs::FileSystem::mount(*admin, *cont, dfs_config));
  co_await (*dfs_out)->mkdirs("/bench");
}

}  // namespace

DaosTestbed::DaosTestbed(Options opt) : seed_(opt.seed) {
  opt.daos.retain_data = opt.retain_data;
  if (opt.sim_jobs >= 1) {
    if (opt.with_dfuse) {
      throw std::invalid_argument(
          "DaosTestbed: DFUSE daemons require the serial kernel "
          "(with_dfuse = false when sim_jobs >= 1)");
    }
    sim::ShardGroup::Options go;
    go.shards = opt.sim_jobs;
    go.lookahead = hw::FabricSpec{}.latency;
    go.seed = opt.seed;
    group_ = std::make_unique<sim::ShardGroup>(go);
    cluster_ = std::make_unique<hw::Cluster>(*group_);
  } else {
    serial_sim_ = std::make_unique<sim::Simulation>(opt.seed);
    cluster_ = std::make_unique<hw::Cluster>(*serial_sim_);
  }
  // Node ids are identical in both modes (servers first, then clients);
  // sharding only changes which event queue owns each node. Round-robin
  // placement spreads servers and clients alike, so every shard advances
  // through comparable work each window.
  const int shards = group_ ? group_->shards() : 1;
  auto place = [&](const hw::NodeSpec& spec, int count) {
    std::vector<hw::NodeId> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const int shard =
          static_cast<int>(cluster_->nodeCount()) % shards;
      ids.push_back(cluster_->addNode(spec, shard));
    }
    return ids;
  };
  servers_ = place(hw::NodeSpec::server(), opt.server_nodes);
  clients_ = place(hw::NodeSpec::client(), opt.client_nodes);
  daos_ = std::make_unique<daos::DaosSystem>(*cluster_, servers_, opt.daos);
  admin_ = std::make_unique<daos::Client>(
      *daos_, clients_.front(),
      static_cast<std::uint32_t>(1 + (opt.seed << 8)));

  // Setup runs on the admin client's home simulation — the one global
  // simulation serially (byte-identical to the pre-sharding spawn), the
  // admin node's shard when sharded.
  auto h = cluster_->node(clients_.front())
               .sim()
               .spawn(daosSetup(this, admin_.get(), &cont_, &dfs_, opt.dfs));
  run();
  if (h.failed()) std::rethrow_exception(h.error());

  if (opt.with_dfuse) {
    for (hw::NodeId node : clients_) {
      auto client = std::make_unique<daos::Client>(
          *daos_, node,
          static_cast<std::uint32_t>(0x0D000000u + static_cast<std::uint32_t>(node)));
      daemons_.emplace(node, std::make_unique<posix::DfuseDaemon>(
                                 sim(), dfs_->withClient(*client), opt.dfuse,
                                 "dfuse" + std::to_string(node)));
      daemons_.at(node)->threads().setTracePid(node);
      daemon_clients_.push_back(std::move(client));
    }
  }
}

LustreTestbed::LustreTestbed(Options opt)
    : sim_(opt.seed), cluster_(sim_), seed_(opt.seed) {
  opt.lustre.retain_data = opt.retain_data;
  auto oss = cluster_.addNodes(hw::NodeSpec::server(), opt.oss_nodes);
  auto mds = cluster_.addNode(hw::NodeSpec::server(1));
  clients_ = cluster_.addNodes(hw::NodeSpec::client(), opt.client_nodes);
  lustre_ =
      std::make_unique<lustre::LustreSystem>(cluster_, oss, mds, opt.lustre);
}

CephTestbed::CephTestbed(Options opt)
    : sim_(opt.seed), cluster_(sim_), seed_(opt.seed) {
  opt.ceph.retain_data = opt.retain_data;
  auto osd_nodes = cluster_.addNodes(hw::NodeSpec::server(), opt.osd_nodes);
  auto mon = cluster_.addNode(hw::NodeSpec::client());
  clients_ = cluster_.addNodes(hw::NodeSpec::client(), opt.client_nodes);
  ceph_ = std::make_unique<rados::CephCluster>(cluster_, osd_nodes, mon,
                                               opt.ceph);
}

}  // namespace daosim::apps
