#include "apps/testbed.h"

#include <stdexcept>
#include <string>

namespace daosim::apps {

namespace {

/// Runs a setup coroutine to completion and rethrows failures.
void runSetup(sim::Simulation& sim, sim::ProcHandle h) {
  sim.run();
  if (h.failed()) std::rethrow_exception(h.error());
}

sim::Task<void> daosSetup(DaosTestbed* tb, daos::Client* admin,
                          daos::Container* cont,
                          std::optional<dfs::FileSystem>* dfs_out,
                          dfs::DfsConfig dfs_config) {
  (void)tb;
  co_await admin->poolConnect();
  *cont = co_await admin->contCreate("bench");
  dfs_out->emplace(
      co_await dfs::FileSystem::mount(*admin, *cont, dfs_config));
  co_await (*dfs_out)->mkdirs("/bench");
}

}  // namespace

DaosTestbed::DaosTestbed(Options opt)
    : sim_(opt.seed), cluster_(sim_), seed_(opt.seed) {
  opt.daos.retain_data = opt.retain_data;
  servers_ = cluster_.addNodes(hw::NodeSpec::server(), opt.server_nodes);
  clients_ = cluster_.addNodes(hw::NodeSpec::client(), opt.client_nodes);
  daos_ = std::make_unique<daos::DaosSystem>(cluster_, servers_, opt.daos);
  admin_ = std::make_unique<daos::Client>(
      *daos_, clients_.front(),
      static_cast<std::uint32_t>(1 + (opt.seed << 8)));

  auto h = sim_.spawn(
      daosSetup(this, admin_.get(), &cont_, &dfs_, opt.dfs));
  runSetup(sim_, h);

  if (opt.with_dfuse) {
    for (hw::NodeId node : clients_) {
      auto client = std::make_unique<daos::Client>(
          *daos_, node,
          static_cast<std::uint32_t>(0x0D000000u + static_cast<std::uint32_t>(node)));
      daemons_.emplace(node, std::make_unique<posix::DfuseDaemon>(
                                 sim_, dfs_->withClient(*client), opt.dfuse,
                                 "dfuse" + std::to_string(node)));
      daemons_.at(node)->threads().setTracePid(node);
      daemon_clients_.push_back(std::move(client));
    }
  }
}

LustreTestbed::LustreTestbed(Options opt)
    : sim_(opt.seed), cluster_(sim_), seed_(opt.seed) {
  opt.lustre.retain_data = opt.retain_data;
  auto oss = cluster_.addNodes(hw::NodeSpec::server(), opt.oss_nodes);
  auto mds = cluster_.addNode(hw::NodeSpec::server(1));
  clients_ = cluster_.addNodes(hw::NodeSpec::client(), opt.client_nodes);
  lustre_ =
      std::make_unique<lustre::LustreSystem>(cluster_, oss, mds, opt.lustre);
}

CephTestbed::CephTestbed(Options opt)
    : sim_(opt.seed), cluster_(sim_), seed_(opt.seed) {
  opt.ceph.retain_data = opt.retain_data;
  auto osd_nodes = cluster_.addNodes(hw::NodeSpec::server(), opt.osd_nodes);
  auto mon = cluster_.addNode(hw::NodeSpec::client());
  clients_ = cluster_.addNodes(hw::NodeSpec::client(), opt.client_nodes);
  ceph_ = std::make_unique<rados::CephCluster>(cluster_, osd_nodes, mon,
                                               opt.ceph);
}

}  // namespace daosim::apps
