#include "apps/pdes.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "apps/stats_report.h"
#include "hw/cluster.h"
#include "hw/device.h"
#include "hw/spec.h"
#include "sim/queue_station.h"
#include "sim/rng.h"
#include "sim/sync.h"

namespace daosim::apps {

namespace {

/// Per-process state; lives in a stable vector for the whole run. Proc
/// coroutines take a plain pointer to one of these — no lambda closures
/// (see the GCC-12 note in net/rpc.h).
struct PdesProcArgs {
  hw::Cluster* cluster = nullptr;
  sim::Simulation* home = nullptr;   ///< the client node's (shard's) sim
  sim::QueueStation* const* svc = nullptr;  ///< per-server service stations
  hw::NodeId node = 0;
  int shard = 0;
  int rank = 0;
  int server_nodes = 0;
  int drives = 0;
  std::uint64_t ops = 0;
  std::uint64_t transfer = 0;
  std::uint64_t seed = 0;
  sim::Barrier* barrier = nullptr;        ///< serial mode
  sim::ShardBarrier* sbarrier = nullptr;  ///< sharded mode
  RunResult* result = nullptr;            ///< this proc's (shard's) lane
  bool phases[2] = {true, true};
};

/// RPC header sizes, matching net::rpc's small-message framing.
constexpr std::uint64_t kRequestHeader = 384;
constexpr std::uint64_t kResponseHeader = 256;
/// Fixed server-side CPU cost per op (request parse + dispatch).
constexpr sim::Time kServerCpu = 3 * sim::kMicrosecond;

sim::Task<void> pdesProc(PdesProcArgs* a) {
  // Per-proc RNG lane: the op sequence is a function of (seed, rank) only,
  // identical in serial and sharded runs.
  sim::Rng rng(sim::hashCombine(a->seed, 0x70646573ULL + // 'pdes'
                                static_cast<std::uint64_t>(a->rank)));
  // Deterministic de-tie: distinct per-rank start offsets plus the per-op
  // think jitter below keep independent clients from arriving at one
  // station at the exact same nanosecond, which is the only case where the
  // sharded station order could differ from the serial FIFO order.
  co_await a->home->delay(static_cast<sim::Time>(a->rank) * 97 + 13);
  for (int ph = 0; ph < 2; ++ph) {
    if (a->phases[ph]) {
      for (std::uint64_t i = 0; i < a->ops; ++i) {
        co_await a->home->delay(sim::kMicrosecond +
                                rng.uniform(0, 16 * sim::kMicrosecond));
        const sim::Time start = a->home->now();
        const auto srv = static_cast<hw::NodeId>(
            rng() % static_cast<std::uint64_t>(a->server_nodes));
        const auto drive = static_cast<std::size_t>(
            rng() % static_cast<std::uint64_t>(a->drives));
        const std::uint64_t req =
            ph == kWrite ? a->transfer + kRequestHeader : kRequestHeader;
        const std::uint64_t rsp =
            ph == kWrite ? kResponseHeader : a->transfer + kResponseHeader;
        co_await a->cluster->send(a->node, srv, req);
        // Server side — on the server's shard after a sharded send.
        co_await a->svc[srv]->exec(kServerCpu);
        hw::NvmeDevice& dev = a->cluster->node(srv).drive(drive);
        if (ph == kWrite) {
          co_await dev.write(a->transfer);
        } else {
          co_await dev.read(a->transfer);
        }
        co_await a->cluster->send(srv, a->node, rsp);
        // Back home; record into this shard's lane.
        PhaseResult& p = a->result->phase[ph];
        const sim::Time end = a->home->now();
        p.bytes += a->transfer;
        p.ops += 1;
        if (start < p.first_start) p.first_start = start;
        if (end > p.last_end) p.last_end = end;
        p.latency.add(end - start);
      }
    }
    if (ph == kWrite) {
      if (a->barrier != nullptr) {
        co_await a->barrier->arriveAndWait();
      } else {
        co_await a->sbarrier->arriveAndWait(a->shard);
      }
    }
  }
}

void validate(const PdesOptions& o) {
  if (o.server_nodes < 1 || o.client_nodes < 1 || o.procs_per_node < 1 ||
      o.ops < 1 || o.drives_per_server < 1 || o.sim_jobs < 0) {
    throw std::invalid_argument("runPdes: invalid topology");
  }
}

}  // namespace

std::uint64_t runDigest(const RunResult& r) {
  std::uint64_t h = sim::hashCombine(0x9e3779b97f4a7c15ULL,
                                     static_cast<std::uint64_t>(r.procs));
  for (int ph = 0; ph < 2; ++ph) {
    const PhaseResult& p = r.phase[ph];
    h = sim::hashCombine(h, p.bytes);
    h = sim::hashCombine(h, p.ops);
    h = sim::hashCombine(h, p.first_start);
    h = sim::hashCombine(h, p.last_end);
    h = sim::hashCombine(h, p.latency.count());
    h = sim::hashCombine(h, p.latency.min());
    h = sim::hashCombine(h, p.latency.max());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      const std::uint64_t c = p.latency.bucketCount(i);
      if (c != 0) h = sim::hashCombine(sim::hashCombine(h, i), c);
    }
  }
  return h;
}

PdesResult runPdes(const PdesOptions& o) {
  validate(o);
  const int procs = o.client_nodes * o.procs_per_node;
  const int shards = o.sim_jobs;  // 0 = serial kernel
  const hw::FabricSpec fabric;

  // One Simulation (serial) or a ShardGroup; exactly one is engaged.
  std::unique_ptr<sim::Simulation> serial_sim;
  std::unique_ptr<sim::ShardGroup> group;
  if (shards == 0) {
    serial_sim = std::make_unique<sim::Simulation>(o.seed);
  } else {
    sim::ShardGroup::Options g;
    g.shards = shards;
    g.lookahead = fabric.latency;
    g.seed = o.seed;
    group = std::make_unique<sim::ShardGroup>(g);
  }
  std::unique_ptr<hw::Cluster> cluster =
      group != nullptr ? std::make_unique<hw::Cluster>(*group, fabric)
                       : std::make_unique<hw::Cluster>(*serial_sim, fabric);

  // Servers get node ids [0, S), clients [S, S + C); both are spread
  // round-robin over the shards so every shard owns a mix of both roles.
  const int total_nodes = o.server_nodes + o.client_nodes;
  auto shardOf = [&](int node_id) {
    return group != nullptr ? node_id % group->shards() : 0;
  };
  for (int n = 0; n < o.server_nodes; ++n) {
    cluster->addNode(hw::NodeSpec::server(o.drives_per_server), shardOf(n));
  }
  for (int n = o.server_nodes; n < total_nodes; ++n) {
    cluster->addNode(hw::NodeSpec::client(), shardOf(n));
  }
  std::vector<std::unique_ptr<sim::QueueStation>> svc;
  std::vector<sim::QueueStation*> svc_ptrs;
  for (int srv = 0; srv < o.server_nodes; ++srv) {
    svc.push_back(std::make_unique<sim::QueueStation>(
        cluster->node(srv).sim(), "srv" + std::to_string(srv) + ".svc", 2));
    svc_ptrs.push_back(svc.back().get());
  }

  const int lanes = group != nullptr ? group->shards() : 1;
  std::vector<RunResult> results(static_cast<std::size_t>(lanes));
  std::unique_ptr<sim::Barrier> barrier;
  std::unique_ptr<sim::ShardBarrier> sbarrier;
  if (group != nullptr) {
    sbarrier = std::make_unique<sim::ShardBarrier>(
        *group, static_cast<std::size_t>(procs));
  } else {
    barrier = std::make_unique<sim::Barrier>(*serial_sim,
                                             static_cast<std::size_t>(procs));
  }

  std::vector<PdesProcArgs> args(static_cast<std::size_t>(procs));
  std::vector<sim::ProcHandle> handles;
  handles.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    const hw::NodeId node =
        static_cast<hw::NodeId>(o.server_nodes + r / o.procs_per_node);
    const int shard = cluster->nodeShard(node);
    PdesProcArgs& a = args[static_cast<std::size_t>(r)];
    a.cluster = cluster.get();
    a.home = &cluster->node(node).sim();
    a.svc = svc_ptrs.data();
    a.node = node;
    a.shard = shard;
    a.rank = r;
    a.server_nodes = o.server_nodes;
    a.drives = o.drives_per_server;
    a.ops = o.ops;
    a.transfer = o.transfer;
    a.seed = o.seed;
    a.barrier = barrier.get();
    a.sbarrier = sbarrier.get();
    a.result = &results[static_cast<std::size_t>(shard)];
    a.phases[kWrite] = o.write_phase;
    a.phases[kRead] = o.read_phase;
    handles.push_back(a.home->spawn(pdesProc(&a)));
  }

  PdesResult out;
  if (group != nullptr) {
    out.events = group->run();
    out.sync = group->stats();
  } else {
    out.events = serial_sim->run();
  }
  for (auto& h : handles) {
    if (h.failed()) std::rethrow_exception(h.error());
  }
  out.run.procs = procs;
  for (const RunResult& lane : results) mergeRunResults(out.run, lane);
  out.digest = runDigest(out.run);
  return out;
}

void writePdesStats(std::ostream& out, const PdesResult& r) {
  // Serial runs carry a zeroed sync block; patch in the event count so the
  // block still reports work done (shards stays 0, marking the serial path).
  sim::ShardSyncStats sync = r.sync;
  sync.events = r.events;
  reportShardSync(out, sync);
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %016" PRIx64 "\n", "result digest",
                r.digest);
  out << line;
}

}  // namespace daosim::apps
