#include "apps/fault_injector.h"

#include <ostream>
#include <stdexcept>
#include <string>

#include "daos/rebuild.h"
#include "obs/observer.h"
#include "obs/telemetry.h"

namespace daosim::apps {

namespace {

void checkSubject(int subject, int limit, const char* what) {
  if (subject < 0 || subject >= limit) {
    throw std::out_of_range(std::string("FaultInjector: ") + what + " " +
                            std::to_string(subject) + " out of range [0, " +
                            std::to_string(limit) + ")");
  }
}

}  // namespace

FaultInjector::FaultInjector(DaosTestbed& testbed, sim::FaultPlan plan)
    : testbed_(&testbed), plan_(std::move(plan)) {
  const int targets = testbed_->daos().totalTargets();
  const int engines = testbed_->daos().engineCount();
  const int nodes = static_cast<int>(testbed_->cluster().nodeCount());
  for (const sim::FaultEvent& e : plan_.events()) {
    switch (e.kind) {
      case sim::FaultKind::kNicFlap:
        checkSubject(e.subject, nodes, "node");
        break;
      case sim::FaultKind::kEngineStall:
        checkSubject(e.subject, engines, "engine");
        break;
      default:
        checkSubject(e.subject, targets, "target");
        break;
    }
  }
}

sim::Simulation& FaultInjector::driverSim() {
  // The pool leader's simulation: the one global simulation serially (all
  // nodes share it, so this is byte-identical to spawning on
  // testbed_->sim()), the leader node's shard when sharded.
  return testbed_->cluster()
      .node(testbed_->daos().poolService().leaderNode())
      .sim();
}

void FaultInjector::install() {
  if (plan_.empty() || installed_) return;
  installed_ = true;
  procs_.push_back(driverSim().spawn(drive(this)));
}

void FaultInjector::registerTelemetry(obs::Telemetry& telemetry) {
  if (plan_.empty()) return;
  using Kind = obs::Telemetry::Kind;
  const FaultStats* st = &stats_;
  telemetry.addProbe("faults/events_applied", Kind::kCounter, [st] {
    return static_cast<double>(st->events_applied);
  });
  telemetry.addProbe("faults/rebuilds_started", Kind::kCounter, [st] {
    return static_cast<double>(st->rebuilds_started);
  });
  telemetry.addProbe("faults/rebuilds_completed", Kind::kCounter, [st] {
    return static_cast<double>(st->rebuilds_completed);
  });
  telemetry.addProbe("faults/rebuild_bytes_moved", Kind::kCounter, [st] {
    return static_cast<double>(st->rebuild_bytes_moved);
  });
  telemetry.addProbe("faults/objects_lost", Kind::kCounter, [st] {
    return static_cast<double>(st->objects_lost);
  });
  telemetry.addProbe("faults/records_unrecoverable", Kind::kCounter, [st] {
    return static_cast<double>(st->records_unrecoverable);
  });
}

sim::Task<void> FaultInjector::quiesce() {
  // procs_ grows while we join (exclusions spawn rebuilds), so index-loop
  // over the live vector rather than iterating a snapshot.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    sim::ProcHandle h = procs_[i];  // joining may reallocate procs_
    co_await h.join();
  }
}

void FaultInjector::rethrowIfFailed() const {
  for (const sim::ProcHandle& h : procs_) {
    if (h.failed()) std::rethrow_exception(h.error());
  }
}

void FaultInjector::writeSummary(std::ostream& os) const {
  os << "fault injection summary\n"
     << "  plan events          " << plan_.size() << "\n"
     << "  events applied       " << stats_.events_applied << "\n"
     << "  rebuilds             " << stats_.rebuilds_completed << "/"
     << stats_.rebuilds_started << " completed\n"
     << "  records restored     " << stats_.rebuild_records_restored << "\n"
     << "  bytes moved          " << stats_.rebuild_bytes_moved << "\n"
     << "  objects lost         " << stats_.objects_lost << "\n"
     << "  records unrecoverable " << stats_.records_unrecoverable << "\n";
  hw::Cluster& cluster = testbed_->cluster();
  daos::DaosSystem& system = testbed_->daos();
  os << "  rpc retries          " << cluster.rpcRetries() << "\n"
     << "  rpc timeouts         " << cluster.rpcTimeouts() << "\n"
     << "  sends failed         " << cluster.sendFailures() << "\n"
     << "  degraded reads       " << system.degradedReads() << "\n"
     << "  targets failed now   " << system.failedTargets() << "\n"
     << "  targets excluded now " << system.excludedTargets() << "\n";
}

void FaultInjector::markTrace(const sim::FaultEvent& e) {
  // Observers are serial-only; on a sharded testbed even reading shard 0's
  // observer pointer/clock from the driver's shard would race.
  if (testbed_->shardGroup() != nullptr) return;
  obs::Observer* o = testbed_->sim().observer();
  if (o == nullptr) return;
  // Zero-length op on a dedicated "faults" track: chaos events line up
  // against workload ops in the chrome trace.
  const obs::TrackId track = o->track(-1, "faults");
  const sim::Time now = testbed_->sim().now();
  const obs::OpId op = o->beginOp(faultKindName(e.kind), track);
  o->endOp(op, faultKindName(e.kind), track, now);
}

void FaultInjector::applyEvent(const sim::FaultEvent& e) {
  daos::DaosSystem& system = testbed_->daos();
  switch (e.kind) {
    case sim::FaultKind::kTargetFail:
      system.failTarget(e.subject);
      break;
    case sim::FaultKind::kTargetRecover:
      system.recoverTarget(e.subject);
      break;
    case sim::FaultKind::kTargetExclude: {
      // Real flow: the device dies, the administrator excludes it from the
      // pool map, and rebuild restores redundancy in the background while
      // clients keep reading via the degraded path.
      system.failTarget(e.subject);
      system.excludeTarget(e.subject);
      ++stats_.rebuilds_started;
      procs_.push_back(
          testbed_->sim().spawn(rebuildVictim(this, e.subject)));
      break;
    }
    case sim::FaultKind::kTargetSlow: {
      auto [engine, local] = system.locateTarget(e.subject);
      engine->target(local).device().setSlowdown(e.factor);
      break;
    }
    case sim::FaultKind::kNicFlap:
      testbed_->cluster().setLinkDown(e.subject, true);
      procs_.push_back(testbed_->sim().spawn(
          restoreLink(this, e.subject, e.duration)));
      break;
    case sim::FaultKind::kEngineStall: {
      daos::Engine& engine = system.engine(e.subject);
      for (int t = 0; t < engine.targetCount(); ++t) {
        procs_.push_back(testbed_->sim().spawn(
            stallFor(this, &engine.target(t).xstream(), e.duration)));
      }
      break;
    }
  }
  ++stats_.events_applied;
  markTrace(e);
}

void FaultInjector::applyEventSharded(const sim::FaultEvent& e) {
  daos::DaosSystem& system = testbed_->daos();
  sim::ShardGroup& group = *testbed_->shardGroup();
  sim::Simulation& hsim = driverSim();
  switch (e.kind) {
    case sim::FaultKind::kTargetFail:
    case sim::FaultKind::kTargetRecover:
    case sim::FaultKind::kTargetSlow:
      procs_.push_back(hsim.spawn(applyAtOwner(this, e)));
      break;
    case sim::FaultKind::kTargetExclude: {
      // Device death on the owner's shard; pool-map exclusion broadcast to
      // every shard's replica (all visible at T + latency); rebuild driven
      // from the leader, delayed past the broadcast so it reads the
      // post-exclusion map (see rebuildVictim).
      procs_.push_back(hsim.spawn(applyAtOwner(this, e)));
      for (int s = 0; s < group.shards(); ++s) {
        procs_.push_back(hsim.spawn(excludeOnShard(this, s, e.subject)));
      }
      ++stats_.rebuilds_started;
      procs_.push_back(hsim.spawn(rebuildVictim(this, e.subject)));
      break;
    }
    case sim::FaultKind::kNicFlap:
      // One applier per shard flips that shard's link replica down at
      // T + latency and back up `duration` later — the same down-window on
      // every shard, so retry/timeout races resolve shard-count-invariantly.
      for (int s = 0; s < group.shards(); ++s) {
        procs_.push_back(
            hsim.spawn(linkFlapOnShard(this, s, e.subject, e.duration)));
      }
      break;
    case sim::FaultKind::kEngineStall: {
      daos::Engine& engine = system.engine(e.subject);
      for (int t = 0; t < engine.targetCount(); ++t) {
        procs_.push_back(
            hsim.spawn(stallAtOwner(this, e.subject, t, e.duration)));
      }
      break;
    }
  }
  ++stats_.events_applied;
  markTrace(e);
}

sim::Task<void> FaultInjector::drive(FaultInjector* self) {
  sim::Simulation& sim = self->driverSim();
  const bool sharded = self->testbed_->shardGroup() != nullptr;
  for (const sim::FaultEvent& e : self->plan_.events()) {
    if (e.at > sim.now()) co_await sim.delay(e.at - sim.now());
    if (sharded) {
      self->applyEventSharded(e);
    } else {
      self->applyEvent(e);
    }
  }
}

sim::Task<void> FaultInjector::restoreLink(FaultInjector* self, int node,
                                           sim::Time after) {
  co_await self->testbed_->sim().delay(after);
  self->testbed_->cluster().setLinkDown(node, false);
}

sim::Task<void> FaultInjector::stallFor(FaultInjector* self,
                                        sim::QueueStation* station,
                                        sim::Time dur) {
  (void)self;
  co_await station->exec(dur);
}

sim::Task<void> FaultInjector::rebuildVictim(FaultInjector* self,
                                             int victim) {
  if (self->testbed_->shardGroup() != nullptr) {
    // Wait out the exclusion broadcast (T + latency) before reading the
    // pool map: 2x latency keeps the leader's first census hop (which
    // cannot arrive anywhere before T + 3x latency) strictly after every
    // shard's replica update, for any shard count.
    hw::Cluster& cluster = self->testbed_->cluster();
    co_await self->driverSim().delay(2 * cluster.fabric().latency);
  }
  daos::RebuildStats rs =
      co_await daos::rebuild(self->testbed_->daos(), victim);
  self->stats_.rebuild_records_restored += rs.records_restored;
  self->stats_.rebuild_bytes_moved += rs.bytes_moved;
  self->stats_.objects_lost += rs.objects_lost;
  self->stats_.records_unrecoverable += rs.records_unrecoverable;
  ++self->stats_.rebuilds_completed;
}

sim::Task<void> FaultInjector::applyAtOwner(FaultInjector* self,
                                            sim::FaultEvent e) {
  daos::DaosSystem& system = self->testbed_->daos();
  hw::Cluster& cluster = self->testbed_->cluster();
  const hw::NodeId home = system.poolService().leaderNode();
  auto [engine, local] = system.locateTarget(e.subject);
  co_await cluster.hop(home, engine->node());
  switch (e.kind) {
    case sim::FaultKind::kTargetRecover:
      system.recoverTarget(e.subject);
      break;
    case sim::FaultKind::kTargetSlow:
      engine->target(local).device().setSlowdown(e.factor);
      break;
    default:  // kTargetFail, and kTargetExclude's device half
      system.failTarget(e.subject);
      break;
  }
  co_await cluster.hop(engine->node(), home);
}

sim::Task<void> FaultInjector::excludeOnShard(FaultInjector* self, int shard,
                                              int global) {
  hw::Cluster& cluster = self->testbed_->cluster();
  sim::ShardGroup& group = *self->testbed_->shardGroup();
  const int home = cluster.nodeShard(
      self->testbed_->daos().poolService().leaderNode());
  const sim::Time lat = cluster.fabric().latency;
  sim::Simulation& hsim = self->driverSim();
  if (shard == home) {
    co_await hsim.delay(lat);
  } else {
    co_await group.migrate(home, shard, hsim.now() + lat);
  }
  self->testbed_->daos().excludeTargetOnShard(shard, global);
  if (shard != home) {
    co_await group.migrate(shard, home, group.shard(shard).now() + lat);
  }
}

sim::Task<void> FaultInjector::linkFlapOnShard(FaultInjector* self, int shard,
                                               int node, sim::Time up_after) {
  hw::Cluster& cluster = self->testbed_->cluster();
  sim::ShardGroup& group = *self->testbed_->shardGroup();
  const int home = cluster.nodeShard(
      self->testbed_->daos().poolService().leaderNode());
  const sim::Time lat = cluster.fabric().latency;
  sim::Simulation& hsim = self->driverSim();
  if (shard == home) {
    co_await hsim.delay(lat);
  } else {
    co_await group.migrate(home, shard, hsim.now() + lat);
  }
  cluster.setLinkDownOnShard(shard, node, true);
  co_await group.shard(shard).delay(up_after);
  cluster.setLinkDownOnShard(shard, node, false);
  if (shard != home) {
    co_await group.migrate(shard, home, group.shard(shard).now() + lat);
  }
}

sim::Task<void> FaultInjector::stallAtOwner(FaultInjector* self,
                                            int engine_idx, int target_idx,
                                            sim::Time dur) {
  daos::DaosSystem& system = self->testbed_->daos();
  hw::Cluster& cluster = self->testbed_->cluster();
  const hw::NodeId home = system.poolService().leaderNode();
  daos::Engine& engine = system.engine(engine_idx);
  co_await cluster.hop(home, engine.node());
  co_await engine.target(target_idx).xstream().exec(dur);
  co_await cluster.hop(engine.node(), home);
}

}  // namespace daosim::apps
