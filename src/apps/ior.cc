#include "apps/ior.h"

#include <memory>
#include <string>

#include "io/submit_queue.h"

namespace daosim::apps {

namespace {

vos::Payload block(std::uint64_t size, int rank, std::uint64_t op) {
  return vos::Payload::synthetic(
      size, sim::hashCombine(static_cast<std::uint64_t>(rank), op));
}

/// One timed transfer, spawnable as its own process for queue_depth > 1.
sim::Task<void> timedOp(io::Object* obj, ProcContext ctx, Phase phase,
                        std::uint64_t offset, std::uint64_t len,
                        std::uint64_t opno) {
  const sim::Time t0 = ctx.sim->now();
  if (phase == kWrite) {
    co_await obj->write(offset, block(len, ctx.rank, opno));
  } else {
    (void)co_await obj->read(offset, len);
  }
  ctx.record(phase, len, t0);
}

}  // namespace

sim::Task<void> Ior::process(ProcContext ctx) {
  std::unique_ptr<io::Backend> backend = io::makeBackend(
      api_, env_, ctx.node, spmdClientId(env_.seed, kIorIdDomain, ctx.rank));
  co_await backend->connect();

  // Single-shared-file needs a well-known shared identity; backends
  // without one (the POSIX/HDF5/RADOS paths) run file-per-process, as the
  // paper's runs on those interfaces do.
  const bool shared = cfg_.shared_file && backend->caps().shared_object;

  std::unique_ptr<io::Object> obj;
  std::uint64_t base = 0;  // this rank's first byte within the object
  io::OpenSpec spec;
  spec.oclass = cfg_.oclass;
  if (shared) {
    spec.name = "ior.shared";
    spec.shared = true;
    if (ctx.rank == 0) {
      spec.create = true;
      obj = co_await backend->open(spec);
    }
    co_await ctx.phaseBarrier();  // create-before-open, as in IOR
    if (ctx.rank != 0) {
      // The creating rank broadcast the attributes: open without a
      // metadata fetch.
      spec.create = false;
      spec.registered = false;
      obj = co_await backend->open(spec);
    }
    base = static_cast<std::uint64_t>(ctx.rank) * cfg_.ops * cfg_.transfer;
  } else {
    spec.name = "ior." + std::to_string(ctx.rank);
    spec.create = true;
    obj = co_await backend->open(spec);
  }

  co_await ctx.phaseBarrier();
  if (cfg_.write_phase) {
    co_await runPhase(obj.get(), ctx, kWrite, base);
  }
  co_await ctx.phaseBarrier();
  if (cfg_.read_phase) {
    co_await runPhase(obj.get(), ctx, kRead, base);
  }
  co_await obj->close();
}

sim::Task<void> Ior::runPhase(io::Object* obj, ProcContext ctx, Phase phase,
                              std::uint64_t base) {
  if (cfg_.queue_depth <= 1) {
    // Sequential issue: no spawning, identical to the pre-io:: benchmarks.
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      co_await ctx.paceOp();
      const sim::Time t0 = ctx.sim->now();
      if (phase == kWrite) {
        co_await obj->write(base + i * cfg_.transfer,
                            block(cfg_.transfer, ctx.rank, i));
      } else {
        (void)co_await obj->read(base + i * cfg_.transfer, cfg_.transfer);
      }
      ctx.record(phase, cfg_.transfer, t0);
    }
    co_return;
  }
  io::SubmitQueue q(*ctx.sim, static_cast<std::size_t>(cfg_.queue_depth));
  for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
    // Pace at submit time: the draw order on the per-proc stream stays
    // sequential no matter how in-flight ops interleave.
    co_await ctx.paceOp();
    co_await q.submit(
        timedOp(obj, ctx, phase, base + i * cfg_.transfer, cfg_.transfer, i));
  }
  co_await q.waitAll();
}

}  // namespace daosim::apps
