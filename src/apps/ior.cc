#include "apps/ior.h"

#include <optional>
#include <string>

#include "daos/array.h"
#include "hdf5/h5.h"

namespace daosim::apps {

namespace {

vos::Payload block(std::uint64_t size, int rank, std::uint64_t op) {
  return vos::Payload::synthetic(
      size, sim::hashCombine(static_cast<std::uint64_t>(rank), op));
}

/// The well-known OID every rank agrees on for shared-file mode.
placement::ObjectId sharedOid(placement::ObjClass oc, std::uint64_t seed) {
  return placement::makeOid(oc, sim::hashCombine(seed, 0x510AD),
                            0xfffffff1u);
}

}  // namespace

sim::Task<void> IorDaos::process(ProcContext ctx) {
  switch (api_) {
    case Api::kDaosArray:
      co_await runDaosArray(ctx);
      break;
    case Api::kDfs:
      co_await runDfs(ctx);
      break;
    case Api::kDfuse:
      co_await runPosix(ctx, /*intercept=*/false);
      break;
    case Api::kDfuseIl:
      co_await runPosix(ctx, /*intercept=*/true);
      break;
    case Api::kHdf5DfuseIl:
      co_await runHdf5Posix(ctx);
      break;
    case Api::kHdf5Daos:
      co_await runHdf5Daos(ctx);
      break;
  }
}

sim::Task<void> IorDaos::runDaosArray(ProcContext ctx) {
  daos::Client client(tb_->daos(), ctx.node, clientId(ctx.rank));
  co_await client.poolConnect();
  daos::Container cont = co_await client.contOpen("bench");

  const daos::Array::Attrs attrs{.cell_size = 1, .chunk_size = 1 << 20};
  std::optional<daos::Array> array;
  std::uint64_t base = 0;  // this rank's first byte within the array
  if (cfg_.shared_file) {
    const placement::ObjectId oid = sharedOid(cfg_.oclass, tb_->seed());
    if (ctx.rank == 0) {
      array.emplace(co_await daos::Array::create(client, cont, oid, attrs));
    }
    co_await ctx.barrier->arriveAndWait();  // create-before-open, as in IOR
    if (ctx.rank != 0) {
      array.emplace(daos::Array::openWithAttrs(client, cont, oid, attrs));
    }
    base = static_cast<std::uint64_t>(ctx.rank) * cfg_.ops * cfg_.transfer;
  } else {
    array.emplace(co_await daos::Array::create(
        client, cont, client.nextOid(cfg_.oclass), attrs));
  }

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await array->write(base + i * cfg_.transfer,
                            block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      (void)co_await array->read(base + i * cfg_.transfer, cfg_.transfer);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
}

sim::Task<void> IorDaos::runDfs(ProcContext ctx) {
  daos::Client client(tb_->daos(), ctx.node, clientId(ctx.rank));
  co_await client.poolConnect();
  dfs::FileSystem fs = tb_->dfsMount().withClient(client);
  posix::DfsVfs vfs(fs);

  // File per process, or one shared file in rank-segmented regions.
  std::optional<dfs::File> file;
  std::uint64_t base = 0;
  if (cfg_.shared_file) {
    if (ctx.rank == 0) {
      file.emplace(co_await fs.open("/bench/ior.shared", {.create = true},
                                    cfg_.oclass));
    }
    co_await ctx.barrier->arriveAndWait();
    if (ctx.rank != 0) {
      file.emplace(co_await fs.open("/bench/ior.shared", {}));
    }
    base = static_cast<std::uint64_t>(ctx.rank) * cfg_.ops * cfg_.transfer;
  } else {
    file.emplace(co_await fs.open("/bench/ior." + std::to_string(ctx.rank),
                                  {.create = true}, cfg_.oclass));
  }

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await fs.write(*file, base + i * cfg_.transfer,
                        block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      (void)co_await fs.read(*file, base + i * cfg_.transfer, cfg_.transfer);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
}

sim::Task<void> IorDaos::runPosix(ProcContext ctx, bool intercept) {
  daos::Client client(tb_->daos(), ctx.node, clientId(ctx.rank));
  co_await client.poolConnect();
  posix::DfuseDaemon& daemon = tb_->daemon(ctx.node);
  posix::DfuseVfs plain(daemon);
  dfs::FileSystem process_fs = tb_->dfsMount().withClient(client);
  posix::InterceptVfs il(daemon, process_fs);
  posix::Vfs& vfs = intercept ? static_cast<posix::Vfs&>(il)
                              : static_cast<posix::Vfs&>(plain);

  const std::string path = "/bench/ior." + std::to_string(ctx.rank);
  posix::Fd fd = co_await vfs.open(path, posix::OpenFlags::writeCreate());

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await vfs.pwrite(fd, i * cfg_.transfer,
                          block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      (void)co_await vfs.pread(fd, i * cfg_.transfer, cfg_.transfer);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
  co_await vfs.close(fd);
}

sim::Task<void> IorDaos::runHdf5Posix(ProcContext ctx) {
  daos::Client client(tb_->daos(), ctx.node, clientId(ctx.rank));
  co_await client.poolConnect();
  posix::DfuseDaemon& daemon = tb_->daemon(ctx.node);
  dfs::FileSystem process_fs = tb_->dfsMount().withClient(client);
  posix::InterceptVfs vfs(daemon, process_fs);

  auto file = co_await hdf5::H5PosixFile::create(
      *ctx.sim, vfs, "/bench/ior." + std::to_string(ctx.rank) + ".h5");

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      hdf5::Dataset d = co_await file->createDataset(
          "d" + std::to_string(i), cfg_.transfer);
      co_await file->writeDataset(d, block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      hdf5::Dataset d = co_await file->openDataset("d" + std::to_string(i));
      (void)co_await file->readDataset(d);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
  co_await file->close();
}

sim::Task<void> IorDaos::runHdf5Daos(ProcContext ctx) {
  daos::Client client(tb_->daos(), ctx.node, clientId(ctx.rank));
  co_await client.poolConnect();

  // The DAOS VOL creates one container per HDF5 file — per process here.
  auto file = co_await hdf5::H5DaosFile::create(
      client, "ior." + std::to_string(ctx.rank));

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      hdf5::Dataset d = co_await file->createDataset(
          "d" + std::to_string(i), cfg_.transfer);
      co_await file->writeDataset(d, block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      hdf5::Dataset d = co_await file->openDataset("d" + std::to_string(i));
      (void)co_await file->readDataset(d);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
  co_await file->close();
}

sim::Task<void> IorLustre::process(ProcContext ctx) {
  lustre::LustreVfs vfs(tb_->lustre(), ctx.node, stripe_count_, stripe_size_);
  posix::Fd fd = co_await vfs.open("/ior." + std::to_string(ctx.rank),
                                   posix::OpenFlags::writeCreate());

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await vfs.pwrite(fd, i * cfg_.transfer,
                          block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      (void)co_await vfs.pread(fd, i * cfg_.transfer, cfg_.transfer);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
  co_await vfs.close(fd);
}

sim::Task<void> IorRados::process(ProcContext ctx) {
  rados::RadosClient client(tb_->ceph(), ctx.node);
  co_await client.connect();
  const std::string object =
      "ior." + std::to_string(tb_->seed()) + "." + std::to_string(ctx.rank);

  co_await ctx.barrier->arriveAndWait();
  if (cfg_.write_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      co_await client.write(object, i * cfg_.transfer,
                            block(cfg_.transfer, ctx.rank, i));
      ctx.record(kWrite, cfg_.transfer, t0);
    }
  }
  co_await ctx.barrier->arriveAndWait();
  if (cfg_.read_phase) {
    for (std::uint64_t i = 0; i < cfg_.ops; ++i) {
      const sim::Time t0 = ctx.sim->now();
      (void)co_await client.read(object, i * cfg_.transfer, cfg_.transfer);
      ctx.record(kRead, cfg_.transfer, t0);
    }
  }
}

}  // namespace daosim::apps
