// Post-run utilization reports: where did the time go?
//
// After a benchmark run these print, per resource class, the busy time and
// utilization over a horizon — the first tool one reaches for when a curve
// flattens (is it the SSDs, a NIC, the MDS, the pool-service leader?). The
// bench binaries honour DAOSIM_STATS=1 and the CLI exposes --stats.
#pragma once

#include <ostream>

#include "apps/testbed.h"

namespace daosim::apps {

/// DAOS: devices, NICs, target xstreams, pool-service leader.
void reportUtilization(std::ostream& os, DaosTestbed& tb,
                       sim::Time horizon);

/// Lustre: OST devices, MDS threads, NICs.
void reportUtilization(std::ostream& os, LustreTestbed& tb,
                       sim::Time horizon);

/// Ceph: OSD devices and op threads, NICs.
void reportUtilization(std::ostream& os, CephTestbed& tb, sim::Time horizon);

/// Shard-synchronization protocol counters (`-- shard sync --` block):
/// shards, lookahead, windows, mailbox posts/flush bytes, barrier
/// resolutions and per-shard event tallies, each tally followed by a
/// wall-clock "wall:" line (busy/wait split and events/s) and closed by the
/// busy-time imbalance ratio (max/mean). Printed by every bench that ran on
/// a ShardGroup; the per-shard tallies depend on the shard count even
/// though the results do not, and the "wall:"/"imbalance" lines are
/// host-timing dependent — byte-compare harnesses must filter them.
void reportShardSync(std::ostream& os, const sim::ShardSyncStats& s);

}  // namespace daosim::apps
