#include "apps/fdb.h"

#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/kv.h"
#include "lustre/lustre.h"
#include "rados/rados.h"

namespace daosim::apps {

namespace {

vos::Payload fieldData(std::uint64_t size, int rank, std::uint64_t f) {
  return vos::Payload::synthetic(
      size, sim::hashCombine(static_cast<std::uint64_t>(rank), f));
}

std::string fdbKey(int rank, std::uint64_t f, int k) {
  return "class=od,expver=1,r" + std::to_string(rank) + ",f" +
         std::to_string(f) + ",k" + std::to_string(k);
}

}  // namespace

sim::Task<void> FdbDaos::process(ProcContext ctx) {
  daos::Client client(
      tb_->daos(), ctx.node,
      static_cast<std::uint32_t>(sim::hashCombine(
          tb_->seed(), 0x30000u + static_cast<std::uint64_t>(ctx.rank))));
  co_await client.poolConnect();
  daos::Container cont = co_await client.contOpen("bench");

  daos::KeyValue index(client, cont, client.nextOid(cfg_.kv_oclass));
  std::vector<placement::ObjectId> field_oids;
  field_oids.reserve(cfg_.fields);

  co_await ctx.barrier->arriveAndWait();

  // --- archive ----------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    const placement::ObjectId oid = client.nextOid(cfg_.array_oclass);
    field_oids.push_back(oid);
    // FDB opens arrays with known attributes: no create/metadata RPC.
    daos::Array array = daos::Array::openWithAttrs(
        client, cont, oid, {.cell_size = 1, .chunk_size = cfg_.field_size});
    if (cfg_.async_index) {
      // Asynchronous libdaos: launch the index puts on an event queue so
      // they overlap the bulk array write, then drain the queue.
      daos::EventQueue eq(client.sim());
      for (int k = 0; k < cfg_.index_puts_per_field; ++k) {
        eq.launch(index.put(fdbKey(ctx.rank, f, k),
                            vos::Payload::synthetic(cfg_.index_entry_bytes)));
      }
      co_await array.write(0, fieldData(cfg_.field_size, ctx.rank, f));
      co_await eq.waitAll();
    } else {
      co_await array.write(0, fieldData(cfg_.field_size, ctx.rank, f));
      for (int k = 0; k < cfg_.index_puts_per_field; ++k) {
        co_await index.put(fdbKey(ctx.rank, f, k),
                           vos::Payload::synthetic(cfg_.index_entry_bytes));
      }
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.barrier->arriveAndWait();

  // --- retrieve ---------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    for (int k = 0; k < cfg_.index_gets_per_field; ++k) {
      (void)co_await index.get(fdbKey(ctx.rank, f, k));
    }
    // The index records field lengths: open with attrs, read, no size probe.
    daos::Array array = daos::Array::openWithAttrs(
        client, cont, field_oids[f],
        {.cell_size = 1, .chunk_size = cfg_.field_size});
    (void)co_await array.read(0, cfg_.field_size);
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

sim::Task<void> FdbLustre::process(ProcContext ctx) {
  lustre::LustreVfs vfs(tb_->lustre(), ctx.node, stripe_count_, stripe_size_);
  const std::string data_path = "/fdb.data." + std::to_string(ctx.rank);
  const std::string index_path = "/fdb.index." + std::to_string(ctx.rank);

  posix::Fd data_fd =
      co_await vfs.open(data_path, posix::OpenFlags::appendCreate());
  posix::Fd index_fd =
      co_await vfs.open(index_path, posix::OpenFlags::appendCreate());

  co_await ctx.barrier->arriveAndWait();

  // --- archive: buffer fields client-side, flush in large blocks --------
  std::uint64_t buffered = 0;
  std::uint64_t index_buffered = 0;
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    buffered += cfg_.field_size;
    index_buffered += cfg_.index_entry_bytes;
    if (buffered >= cfg_.flush_block) {
      co_await vfs.write(data_fd, vos::Payload::synthetic(buffered));
      co_await vfs.write(index_fd, vos::Payload::synthetic(index_buffered));
      buffered = 0;
      index_buffered = 0;
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }
  if (buffered > 0) {
    co_await vfs.write(data_fd, vos::Payload::synthetic(buffered));
    co_await vfs.write(index_fd, vos::Payload::synthetic(index_buffered));
  }
  co_await vfs.fsync(data_fd);
  co_await vfs.close(data_fd);
  co_await vfs.close(index_fd);

  co_await ctx.barrier->arriveAndWait();

  // --- retrieve: open/read/close the index and data files per field ------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    posix::Fd ifd = co_await vfs.open(index_path, posix::OpenFlags::readOnly());
    (void)co_await vfs.pread(ifd, f * cfg_.index_entry_bytes,
                             cfg_.index_entry_bytes);
    co_await vfs.close(ifd);
    posix::Fd dfd = co_await vfs.open(data_path, posix::OpenFlags::readOnly());
    (void)co_await vfs.pread(dfd, f * cfg_.field_size, cfg_.field_size);
    co_await vfs.close(dfd);
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

sim::Task<void> FdbRados::process(ProcContext ctx) {
  rados::RadosClient client(tb_->ceph(), ctx.node);
  co_await client.connect();
  const std::string prefix =
      "fdb." + std::to_string(tb_->seed()) + ".r" + std::to_string(ctx.rank);
  const std::string index_object = prefix + ".index";

  co_await ctx.barrier->arriveAndWait();

  // --- archive: one object per field + small index-object update ---------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    co_await client.writeFull(prefix + ".f" + std::to_string(f),
                              fieldData(cfg_.field_size, ctx.rank, f));
    co_await client.write(
        index_object,
        (f * cfg_.index_entry_bytes) %
            (tb_->ceph().config().max_object_bytes - cfg_.index_entry_bytes),
        vos::Payload::synthetic(cfg_.index_entry_bytes));
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.barrier->arriveAndWait();

  // --- retrieve: index lookup + object read per field ---------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    (void)co_await client.read(index_object,
                               (f * cfg_.index_entry_bytes) %
                                   (tb_->ceph().config().max_object_bytes -
                                    cfg_.index_entry_bytes),
                               cfg_.index_entry_bytes);
    (void)co_await client.read(prefix + ".f" + std::to_string(f), 0,
                               cfg_.field_size);
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

}  // namespace daosim::apps
