#include "apps/fdb.h"

#include <memory>
#include <string>

#include "io/submit_queue.h"

namespace daosim::apps {

namespace {

vos::Payload fieldData(std::uint64_t size, int rank, std::uint64_t f) {
  return vos::Payload::synthetic(
      size, sim::hashCombine(static_cast<std::uint64_t>(rank), f));
}

std::string fdbKey(int rank, std::uint64_t f, int k) {
  return "class=od,expver=1,r" + std::to_string(rank) + ",f" +
         std::to_string(f) + ",k" + std::to_string(k);
}

std::string fieldName(int rank, std::uint64_t f) {
  return "fdb.r" + std::to_string(rank) + ".f" + std::to_string(f);
}

}  // namespace

sim::Task<void> Fdb::process(ProcContext ctx) {
  std::unique_ptr<io::Backend> backend = io::makeBackend(
      api_, env_, ctx.node, spmdClientId(env_.seed, kFdbIdDomain, ctx.rank));
  co_await backend->connect();
  const io::Caps& caps = backend->caps();
  if (caps.native_index) {
    co_await runNativeIndex(backend.get(), ctx);
  } else if (caps.append_log) {
    co_await runAppendLog(backend.get(), ctx);
  } else {
    co_await runObjectPerField(backend.get(), ctx);
  }
}

sim::Task<void> Fdb::runNativeIndex(io::Backend* backend, ProcContext ctx) {
  io::IndexSpec index_spec;
  index_spec.name = "fdb.index";
  index_spec.oclass = cfg_.kv_oclass;
  std::unique_ptr<io::Index> index = co_await backend->openIndex(index_spec);

  co_await ctx.phaseBarrier();

  // --- archive ----------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    // FDB opens arrays with known attributes: no create/metadata RPC.
    io::OpenSpec spec;
    spec.name = fieldName(ctx.rank, f);
    spec.registered = false;
    spec.chunk_size = cfg_.field_size;
    spec.oclass = cfg_.array_oclass;
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    if (cfg_.async_index) {
      // Launch the index puts on a submit queue so they overlap the bulk
      // field write, then drain the queue.
      io::SubmitQueue q(*ctx.sim);
      for (int k = 0; k < cfg_.index_puts_per_field; ++k) {
        q.launch(index->put(fdbKey(ctx.rank, f, k),
                            vos::Payload::synthetic(cfg_.index_entry_bytes)));
      }
      co_await obj->write(0, fieldData(cfg_.field_size, ctx.rank, f));
      co_await q.waitAll();
    } else {
      co_await obj->write(0, fieldData(cfg_.field_size, ctx.rank, f));
      for (int k = 0; k < cfg_.index_puts_per_field; ++k) {
        co_await index->put(fdbKey(ctx.rank, f, k),
                            vos::Payload::synthetic(cfg_.index_entry_bytes));
      }
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.phaseBarrier();

  // --- retrieve ---------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    for (int k = 0; k < cfg_.index_gets_per_field; ++k) {
      (void)co_await index->get(fdbKey(ctx.rank, f, k));
    }
    // The index records field lengths: open with attrs, read, no size probe.
    io::OpenSpec spec;
    spec.name = fieldName(ctx.rank, f);
    spec.create = false;
    spec.registered = false;
    spec.chunk_size = cfg_.field_size;
    spec.oclass = cfg_.array_oclass;
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    (void)co_await obj->read(0, cfg_.field_size);
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

sim::Task<void> Fdb::runAppendLog(io::Backend* backend, ProcContext ctx) {
  const std::string data_name = "fdb.data." + std::to_string(ctx.rank);
  const std::string index_name = "fdb.index." + std::to_string(ctx.rank);

  io::OpenSpec create;
  create.append = true;
  create.name = data_name;
  std::unique_ptr<io::Object> data = co_await backend->open(create);
  create.name = index_name;
  std::unique_ptr<io::Object> index = co_await backend->open(create);

  co_await ctx.phaseBarrier();

  // --- archive: buffer fields client-side, flush in large blocks --------
  std::uint64_t data_off = 0;
  std::uint64_t index_off = 0;
  std::uint64_t buffered = 0;
  std::uint64_t index_buffered = 0;
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    buffered += cfg_.field_size;
    index_buffered += cfg_.index_entry_bytes;
    if (buffered >= cfg_.flush_block) {
      co_await data->write(data_off, vos::Payload::synthetic(buffered));
      co_await index->write(index_off,
                            vos::Payload::synthetic(index_buffered));
      data_off += buffered;
      index_off += index_buffered;
      buffered = 0;
      index_buffered = 0;
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }
  if (buffered > 0) {
    co_await data->write(data_off, vos::Payload::synthetic(buffered));
    co_await index->write(index_off, vos::Payload::synthetic(index_buffered));
  }
  co_await data->sync();
  co_await data->close();
  co_await index->close();

  co_await ctx.phaseBarrier();

  // --- retrieve: open/read/close the index and data files per field ------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    io::OpenSpec open_spec;
    open_spec.create = false;
    open_spec.name = index_name;
    std::unique_ptr<io::Object> ifile = co_await backend->open(open_spec);
    (void)co_await ifile->read(f * cfg_.index_entry_bytes,
                               cfg_.index_entry_bytes);
    co_await ifile->close();
    open_spec.name = data_name;
    std::unique_ptr<io::Object> dfile = co_await backend->open(open_spec);
    (void)co_await dfile->read(f * cfg_.field_size, cfg_.field_size);
    co_await dfile->close();
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

sim::Task<void> Fdb::runObjectPerField(io::Backend* backend,
                                       ProcContext ctx) {
  // Per-writer index object, updated with one small write per field. On
  // size-capped stores (librados) the index write offset wraps within one
  // object.
  const std::uint64_t cap = backend->caps().max_object_bytes;
  const std::uint64_t index_span =
      cap > cfg_.index_entry_bytes ? cap - cfg_.index_entry_bytes : 0;
  io::OpenSpec index_spec;
  index_spec.name = "fdb.r" + std::to_string(ctx.rank) + ".index";
  std::unique_ptr<io::Object> index = co_await backend->open(index_spec);

  co_await ctx.phaseBarrier();

  // --- archive: one object per field + small index-object update ---------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    io::OpenSpec spec;
    spec.name = fieldName(ctx.rank, f);
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    co_await obj->write(0, fieldData(cfg_.field_size, ctx.rank, f));
    const std::uint64_t index_off =
        index_span ? (f * cfg_.index_entry_bytes) % index_span
                   : f * cfg_.index_entry_bytes;
    co_await index->write(index_off,
                          vos::Payload::synthetic(cfg_.index_entry_bytes));
    co_await obj->close();
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.phaseBarrier();

  // --- retrieve: index lookup + object read per field ---------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    const std::uint64_t index_off =
        index_span ? (f * cfg_.index_entry_bytes) % index_span
                   : f * cfg_.index_entry_bytes;
    (void)co_await index->read(index_off, cfg_.index_entry_bytes);
    io::OpenSpec spec;
    spec.name = fieldName(ctx.rank, f);
    spec.create = false;
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    (void)co_await obj->read(0, cfg_.field_size);
    co_await obj->close();
    ctx.record(kRead, cfg_.field_size, t0);
  }
}

}  // namespace daosim::apps
