#include "apps/stats_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iomanip>

namespace daosim::apps {

namespace {

struct Agg {
  double busy_total = 0;  // seconds
  double busy_max = 0;
  int count = 0;

  void add(sim::Time busy) {
    const double s = sim::toSeconds(busy);
    busy_total += s;
    busy_max = std::max(busy_max, s);
    ++count;
  }
};

void printRow(std::ostream& os, const char* name, const Agg& a,
              double horizon_s) {
  if (a.count == 0 || horizon_s <= 0) return;
  os << "  " << std::left << std::setw(22) << name << std::right
     << std::fixed << std::setprecision(1) << std::setw(6)
     << 100.0 * a.busy_total / a.count / horizon_s << "% avg  "
     << std::setw(6) << 100.0 * a.busy_max / horizon_s << "% max  ("
     << a.count << " units)\n";
  os.unsetf(std::ios::fixed);
}

/// Queue-wait percentiles for a station class; the histograms are only
/// populated while an observer is attached (--stats attaches one).
void printWaitRow(std::ostream& os, const char* name,
                  const obs::Histogram& hist) {
  if (hist.count() == 0) return;
  os << "  " << std::left << std::setw(22) << name << std::right
     << std::fixed << std::setprecision(1) << "wait p50 "
     << static_cast<double>(hist.percentile(50)) / 1e3 << " us  p95 "
     << static_cast<double>(hist.percentile(95)) / 1e3 << " us  p99 "
     << static_cast<double>(hist.percentile(99)) / 1e3 << " us\n";
  os.unsetf(std::ios::fixed);
}

void printClientNics(std::ostream& os, hw::Cluster& cluster,
                     const std::vector<hw::NodeId>& clients,
                     double horizon_s) {
  Agg tx, rx;
  for (hw::NodeId n : clients) {
    tx.add(cluster.node(n).tx().busyTime());
    rx.add(cluster.node(n).rx().busyTime());
  }
  printRow(os, "client NIC tx", tx, horizon_s);
  printRow(os, "client NIC rx", rx, horizon_s);
}

}  // namespace

void reportUtilization(std::ostream& os, DaosTestbed& tb,
                       sim::Time horizon) {
  const double h = sim::toSeconds(horizon);
  os << "-- utilization over " << std::fixed << std::setprecision(3) << h
     << " s (DAOS) --\n";
  os.unsetf(std::ios::fixed);
  Agg dev, xs, srv_tx, srv_rx;
  obs::Histogram xs_wait;
  daos::DaosSystem& sys = tb.daos();
  for (int e = 0; e < sys.engineCount(); ++e) {
    daos::Engine& engine = sys.engine(e);
    srv_tx.add(tb.cluster().node(engine.node()).tx().busyTime());
    srv_rx.add(tb.cluster().node(engine.node()).rx().busyTime());
    for (int t = 0; t < engine.targetCount(); ++t) {
      dev.add(engine.target(t).device().busyTime());
      xs.add(engine.target(t).xstream().busyTime());
      xs_wait.merge(engine.target(t).xstream().waitHistogram());
    }
  }
  printRow(os, "NVMe device", dev, h);
  printRow(os, "target xstream", xs, h);
  printWaitRow(os, "xstream queue wait", xs_wait);
  printRow(os, "server NIC tx", srv_tx, h);
  printRow(os, "server NIC rx", srv_rx, h);
  Agg leader;
  leader.add(sys.poolService().station().busyTime());
  printRow(os, "pool-service leader", leader, h);
  if (!tb.daemons().empty()) {
    // Meaningful now that enter/leave accounts held time as busy.
    Agg dfuse;
    int threads = 1;
    for (const auto& kv : tb.daemons()) {
      dfuse.add(kv.second->threads().busyTime());
      threads = kv.second->config().fuse_threads;
    }
    dfuse.busy_total /= threads;
    dfuse.busy_max /= threads;
    printRow(os, "DFUSE (per thread)", dfuse, h);
  }
  printClientNics(os, tb.cluster(), tb.clients(), h);
}

void reportUtilization(std::ostream& os, LustreTestbed& tb,
                       sim::Time horizon) {
  const double h = sim::toSeconds(horizon);
  os << "-- utilization over " << std::fixed << std::setprecision(3) << h
     << " s (Lustre) --\n";
  os.unsetf(std::ios::fixed);
  lustre::LustreSystem& sys = tb.lustre();
  Agg dev, cpu;
  for (int i = 0; i < sys.ostCount(); ++i) {
    dev.add(sys.ost(i).device->busyTime());
    cpu.add(sys.ost(i).cpu.busyTime());
  }
  printRow(os, "OST device", dev, h);
  printRow(os, "OST cpu", cpu, h);
  Agg mds;
  mds.add(sys.mdsStation().busyTime());
  // The MDS station has config().mds_threads servers; report per-server.
  mds.busy_total /= sys.config().mds_threads;
  mds.busy_max /= sys.config().mds_threads;
  printRow(os, "MDS (per thread)", mds, h);
  printWaitRow(os, "MDS queue wait", sys.mdsStation().waitHistogram());
  printClientNics(os, tb.cluster(), tb.clients(), h);
}

void reportUtilization(std::ostream& os, CephTestbed& tb,
                       sim::Time horizon) {
  const double h = sim::toSeconds(horizon);
  os << "-- utilization over " << std::fixed << std::setprecision(3) << h
     << " s (Ceph) --\n";
  os.unsetf(std::ios::fixed);
  rados::CephCluster& sys = tb.ceph();
  Agg dev, threads;
  obs::Histogram osd_wait;
  for (int i = 0; i < sys.osdCount(); ++i) {
    dev.add(sys.osd(i).device->busyTime());
    threads.add(sys.osd(i).op_threads.busyTime());
    osd_wait.merge(sys.osd(i).op_threads.waitHistogram());
  }
  printRow(os, "OSD device", dev, h);
  printRow(os, "OSD op threads", threads, h);
  printWaitRow(os, "OSD queue wait", osd_wait);
  printClientNics(os, tb.cluster(), tb.clients(), h);
}

void reportShardSync(std::ostream& os, const sim::ShardSyncStats& s) {
  char line[160];
  os << "\n-- shard sync --\n";
  std::snprintf(line, sizeof(line), "%-22s %d\n", "shards", s.shards);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 " ns\n", "lookahead",
                static_cast<std::uint64_t>(s.lookahead));
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n", "windows",
                s.windows);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n",
                "cross-shard posts", s.cross_posts);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n", "barrier releases",
                s.barrier_releases);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n", "late releases",
                s.late_releases);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n", "mailbox flushes",
                s.mailbox_flushes);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 "\n", "mailbox entries",
                s.mailbox_entries);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %" PRIu64 " B\n", "mailbox bytes",
                s.mailbox_bytes);
  os << line;
  std::snprintf(line, sizeof(line), "%-22s %zu\n", "events", s.events);
  os << line;
  // Per-shard event tallies are deterministic; the wall-clock rate/wait
  // lines beneath them ("wall:") and the imbalance ratio are host-timing
  // dependent — byte-compare harnesses filter lines containing "wall:" or
  // "imbalance".
  double busy_sum = 0, busy_max = 0;
  for (std::size_t i = 0; i < s.shard_events.size(); ++i) {
    std::snprintf(line, sizeof(line), "  shard%-18zu %zu\n", i,
                  s.shard_events[i]);
    os << line;
    const double busy =
        i < s.shard_busy_ns.size() ? static_cast<double>(s.shard_busy_ns[i])
                                   : 0.0;
    const double wait =
        i < s.shard_wait_ns.size() ? static_cast<double>(s.shard_wait_ns[i])
                                   : 0.0;
    busy_sum += busy;
    if (busy > busy_max) busy_max = busy;
    const double wall = busy + wait;
    const double evps =
        busy > 0 ? static_cast<double>(s.shard_events[i]) / (busy * 1e-9)
                 : 0.0;
    std::snprintf(line, sizeof(line),
                  "    wall: busy %.2f ms, wait %.2f ms (%.0f%% wait), "
                  "%.2f Mev/s\n",
                  busy / 1e6, wait / 1e6, wall > 0 ? 100 * wait / wall : 0.0,
                  evps / 1e6);
    os << line;
  }
  if (!s.shard_events.empty()) {
    const double mean = busy_sum / static_cast<double>(s.shard_events.size());
    std::snprintf(line, sizeof(line), "%-22s %.2f\n",
                  "imbalance (max/mean)", mean > 0 ? busy_max / mean : 1.0);
    os << line;
  }
}

}  // namespace daosim::apps
