// fdb-hammer: the benchmark for ECMWF's FDB domain-specific object store
// (§II-A4). One benchmark, three storage strategies picked from the
// backend's io::Caps:
//
//  * native_index (libdaos): one Array + KV index entries per field — like
//    Field I/O, but with the optimizations FDB carries: arrays are opened
//    with known attributes (no per-open metadata fetch) and reads skip the
//    size probe (lengths come from the index). `async_index` issues the
//    index puts through an io::SubmitQueue, overlapping them with the bulk
//    array write (FDB uses the asynchronous libdaos API this way).
//  * append_log (Lustre POSIX): each writer appends to a pair of files
//    (index + data), buffering small field writes client-side and flushing
//    in large blocks — the write-optimized pattern. Readers open and read
//    the index and data files for *every* field, the metadata-heavy pattern
//    that saturates Lustre's MDS (Fig. 7).
//  * otherwise (librados, dfs, dfuse): one object per field plus a
//    per-writer index object updated with small writes (Fig. 8).
#pragma once

#include <cstdint>
#include <string>

#include "apps/runner.h"
#include "io/backend.h"
#include "placement/objclass.h"

namespace daosim::apps {

struct FdbConfig {
  std::uint64_t field_size = 1 << 20;
  std::uint64_t fields = 1000;  // per process
  placement::ObjClass array_oclass = placement::ObjClass::S1;
  placement::ObjClass kv_oclass = placement::ObjClass::S1;
  int index_puts_per_field = 7;
  int index_gets_per_field = 3;
  /// native_index backends: issue the index puts asynchronously,
  /// overlapping them with the field's bulk write.
  bool async_index = false;
  /// append_log backends: client-side buffer flushed in blocks of this size.
  std::uint64_t flush_block = 32 << 20;
  std::uint64_t index_entry_bytes = 256;
};

class Fdb final : public SpmdBenchmark {
 public:
  Fdb(io::Env env, std::string api, FdbConfig cfg)
      : env_(env), api_(std::move(api)), cfg_(cfg) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  sim::Task<void> runNativeIndex(io::Backend* backend, ProcContext ctx);
  sim::Task<void> runAppendLog(io::Backend* backend, ProcContext ctx);
  sim::Task<void> runObjectPerField(io::Backend* backend, ProcContext ctx);

  io::Env env_;
  std::string api_;
  FdbConfig cfg_;
};

}  // namespace daosim::apps
