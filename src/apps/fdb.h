// fdb-hammer: the benchmark for ECMWF's FDB domain-specific object store
// (§II-A4), on its three storage backends.
//
//  * DAOS backend: one S1 Array + S1 Key-Value index entries per field —
//    like Field I/O, but with the optimizations FDB carries: arrays are
//    opened with known attributes (no per-open metadata fetch) and reads
//    skip the size probe (lengths come from the index).
//  * POSIX backend: each writer appends to a pair of files (index + data),
//    buffering small field writes client-side and flushing in large blocks
//    — the write-optimized pattern. Readers open and read the index and
//    data files for *every* field, the metadata-heavy pattern that
//    saturates Lustre's MDS (Fig. 7).
//  * Ceph backend: one RADOS object per field plus a per-writer index
//    object updated with small writes (Fig. 8).
#pragma once

#include <cstdint>

#include "apps/runner.h"
#include "apps/testbed.h"
#include "placement/objclass.h"

namespace daosim::apps {

struct FdbConfig {
  std::uint64_t field_size = 1 << 20;
  std::uint64_t fields = 1000;  // per process
  placement::ObjClass array_oclass = placement::ObjClass::S1;
  placement::ObjClass kv_oclass = placement::ObjClass::S1;
  int index_puts_per_field = 7;
  int index_gets_per_field = 3;
  /// DAOS backend: issue the index puts asynchronously through a DAOS
  /// event queue, overlapping them with the field's array write (FDB uses
  /// the asynchronous libdaos API this way).
  bool async_index = false;
  /// POSIX backend: client-side buffer flushed in blocks of this size.
  std::uint64_t flush_block = 32 << 20;
  std::uint64_t index_entry_bytes = 256;
};

class FdbDaos final : public SpmdBenchmark {
 public:
  FdbDaos(DaosTestbed& tb, FdbConfig cfg) : tb_(&tb), cfg_(cfg) {}
  sim::Task<void> process(ProcContext ctx) override;

 private:
  DaosTestbed* tb_;
  FdbConfig cfg_;
};

class FdbLustre final : public SpmdBenchmark {
 public:
  FdbLustre(LustreTestbed& tb, FdbConfig cfg, int stripe_count = 8,
            std::uint64_t stripe_size = 8 << 20)
      : tb_(&tb),
        cfg_(cfg),
        stripe_count_(stripe_count),
        stripe_size_(stripe_size) {}
  sim::Task<void> process(ProcContext ctx) override;

 private:
  LustreTestbed* tb_;
  FdbConfig cfg_;
  int stripe_count_;
  std::uint64_t stripe_size_;
};

class FdbRados final : public SpmdBenchmark {
 public:
  FdbRados(CephTestbed& tb, FdbConfig cfg) : tb_(&tb), cfg_(cfg) {}
  sim::Task<void> process(ProcContext ctx) override;

 private:
  CephTestbed* tb_;
  FdbConfig cfg_;
};

}  // namespace daosim::apps
