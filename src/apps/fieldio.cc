#include "apps/fieldio.h"

#include <memory>
#include <stdexcept>
#include <string>

namespace daosim::apps {

namespace {

std::string indexValue() { return "step=12;param=t;level=500;grid=o1280"; }

}  // namespace

sim::Task<void> FieldIo::process(ProcContext ctx) {
  std::unique_ptr<io::Backend> backend =
      io::makeBackend(api_, env_, ctx.node,
                      spmdClientId(env_.seed, kFieldIoIdDomain, ctx.rank));
  co_await backend->connect();
  if (!backend->caps().native_index) {
    throw std::invalid_argument("fieldio: backend '" + api_ +
                                "' has no native key-value index");
  }

  io::IndexSpec own_spec;
  own_spec.name = "fieldio.own";
  own_spec.oclass = cfg_.kv_oclass;
  std::unique_ptr<io::Index> own_index =
      co_await backend->openIndex(own_spec);
  io::IndexSpec shared_spec;
  shared_spec.name = "fieldio.shared";
  shared_spec.shared = true;
  shared_spec.oclass = cfg_.kv_oclass;
  std::unique_ptr<io::Index> shared_index =
      co_await backend->openIndex(shared_spec);

  co_await ctx.phaseBarrier();

  // --- write phase ------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    // Field I/O creates the object (registering attributes) per field.
    io::OpenSpec spec;
    spec.name = "f" + std::to_string(f);
    spec.chunk_size = cfg_.field_size;
    spec.oclass = cfg_.array_oclass;
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    co_await obj->write(
        0, vos::Payload::synthetic(
               cfg_.field_size,
               sim::hashCombine(static_cast<std::uint64_t>(ctx.rank), f)));
    // Index entries: process-exclusive and shared.
    const std::string key =
        "r" + std::to_string(ctx.rank) + ".f" + std::to_string(f);
    for (int k = 0; k < cfg_.index_puts_exclusive; ++k) {
      co_await own_index->put(key + ".k" + std::to_string(k),
                              vos::Payload::fromString(indexValue()));
    }
    for (int k = 0; k < cfg_.index_puts_shared; ++k) {
      co_await shared_index->put(key + ".s" + std::to_string(k),
                                 vos::Payload::fromString(indexValue()));
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.phaseBarrier();

  // --- read phase ---------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    co_await ctx.paceOp();
    const sim::Time t0 = ctx.sim->now();
    const std::string key =
        "r" + std::to_string(ctx.rank) + ".f" + std::to_string(f);
    for (int k = 0; k < cfg_.index_gets_exclusive; ++k) {
      (void)co_await own_index->get(key + ".k" + std::to_string(k));
    }
    for (int k = 0; k < cfg_.index_gets_shared; ++k) {
      (void)co_await shared_index->get(key + ".s" + std::to_string(k));
    }
    // Reopen the field with a metadata fetch, then probe the size before
    // every read: Field I/O does not implement the size-check-avoidance
    // optimization fdb-hammer has.
    io::OpenSpec spec;
    spec.name = "f" + std::to_string(f);
    spec.create = false;
    std::unique_ptr<io::Object> obj = co_await backend->open(spec);
    const std::uint64_t size = co_await obj->size();
    (void)co_await obj->read(0, size);
    ctx.record(kRead, size, t0);
  }
}

}  // namespace daosim::apps
