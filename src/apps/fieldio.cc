#include "apps/fieldio.h"

#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/kv.h"

namespace daosim::apps {

namespace {

/// Shared index object: same OID for every process (keys spread over all
/// targets through the object's SX layout).
placement::ObjectId sharedIndexOid(placement::ObjClass oc) {
  return placement::makeOid(oc, 0xF1E7D, 0xfffffff0u);
}

std::string indexValue() { return "step=12;param=t;level=500;grid=o1280"; }

}  // namespace

sim::Task<void> FieldIo::process(ProcContext ctx) {
  daos::Client client(
      tb_->daos(), ctx.node,
      static_cast<std::uint32_t>(sim::hashCombine(
          tb_->seed(), 0x20000u + static_cast<std::uint64_t>(ctx.rank))));
  co_await client.poolConnect();
  daos::Container cont = co_await client.contOpen("bench");

  daos::KeyValue own_index(client, cont, client.nextOid(cfg_.kv_oclass));
  daos::KeyValue shared_index(client, cont,
                              sharedIndexOid(cfg_.kv_oclass));

  // The field OIDs this process wrote, for the read phase.
  std::vector<placement::ObjectId> field_oids;
  field_oids.reserve(cfg_.fields);

  co_await ctx.barrier->arriveAndWait();

  // --- write phase ------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    const placement::ObjectId oid = client.nextOid(cfg_.array_oclass);
    field_oids.push_back(oid);
    // Field I/O creates the array (registering attributes) per field.
    daos::Array array = co_await daos::Array::create(
        client, cont, oid, {.cell_size = 1, .chunk_size = cfg_.field_size});
    co_await array.write(
        0, vos::Payload::synthetic(
               cfg_.field_size,
               sim::hashCombine(static_cast<std::uint64_t>(ctx.rank), f)));
    // Index entries: process-exclusive and shared.
    const std::string key = "r" + std::to_string(ctx.rank) + ".f" +
                            std::to_string(f);
    for (int k = 0; k < cfg_.index_puts_exclusive; ++k) {
      co_await own_index.put(key + ".k" + std::to_string(k),
                             vos::Payload::fromString(indexValue()));
    }
    for (int k = 0; k < cfg_.index_puts_shared; ++k) {
      co_await shared_index.put(key + ".s" + std::to_string(k),
                                vos::Payload::fromString(indexValue()));
    }
    ctx.record(kWrite, cfg_.field_size, t0);
  }

  co_await ctx.barrier->arriveAndWait();

  // --- read phase ---------------------------------------------------------
  for (std::uint64_t f = 0; f < cfg_.fields; ++f) {
    const sim::Time t0 = ctx.sim->now();
    const std::string key = "r" + std::to_string(ctx.rank) + ".f" +
                            std::to_string(f);
    for (int k = 0; k < cfg_.index_gets_exclusive; ++k) {
      (void)co_await own_index.get(key + ".k" + std::to_string(k));
    }
    for (int k = 0; k < cfg_.index_gets_shared; ++k) {
      (void)co_await shared_index.get(key + ".s" + std::to_string(k));
    }
    daos::Array array = co_await daos::Array::open(client, cont,
                                                   field_oids[f]);
    // Size probe before every read: Field I/O does not implement the
    // size-check-avoidance optimization fdb-hammer has.
    const std::uint64_t size = co_await array.getSize();
    (void)co_await array.read(0, size);
    ctx.record(kRead, size, t0);
  }
}

}  // namespace daosim::apps
