// IOR: the file/object-per-process bulk I/O benchmark (§II-A1).
//
// Every process creates one array/file/object, all processes synchronize,
// then each issues `ops` sequential transfers of `transfer` bytes (write
// phase, barrier, read phase). Backends cover every API the paper tests:
// libdaos arrays, libdfs, DFUSE, DFUSE+IL, HDF5 over DFUSE+IL, HDF5 over
// the DAOS VOL, POSIX on Lustre, and librados on Ceph.
#pragma once

#include <cstdint>

#include "apps/runner.h"
#include "apps/testbed.h"
#include "placement/objclass.h"

namespace daosim::apps {

struct IorConfig {
  std::uint64_t transfer = 1 << 20;  // bytes per operation
  std::uint64_t ops = 1000;          // operations per process
  placement::ObjClass oclass = placement::ObjClass::SX;
  bool write_phase = true;
  bool read_phase = true;
  /// IOR -F vs single-shared-file: with shared_file, every process works on
  /// one array/file in disjoint rank-segmented regions (rank 0 creates it,
  /// the rest open it after a barrier, as IOR does over MPI).
  bool shared_file = false;
};

/// IOR against a DAOS testbed, through one of the DAOS-side APIs.
class IorDaos final : public SpmdBenchmark {
 public:
  enum class Api {
    kDaosArray,   // libdaos backend
    kDfs,         // libdfs backend
    kDfuse,       // POSIX backend on a DFUSE mount
    kDfuseIl,     // POSIX backend on DFUSE + interception library
    kHdf5DfuseIl,  // HDF5 backend, POSIX driver over DFUSE + IL
    kHdf5Daos,     // HDF5 backend, DAOS VOL adaptor
  };

  IorDaos(DaosTestbed& tb, Api api, IorConfig cfg)
      : tb_(&tb), api_(api), cfg_(cfg) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  sim::Task<void> runDaosArray(ProcContext ctx);
  sim::Task<void> runDfs(ProcContext ctx);
  sim::Task<void> runPosix(ProcContext ctx, bool intercept);
  sim::Task<void> runHdf5Posix(ProcContext ctx);
  sim::Task<void> runHdf5Daos(ProcContext ctx);

  /// Per-rank client identity, salted by the testbed seed so repetitions
  /// draw different OIDs (and hence placements), like real reruns do.
  std::uint32_t clientId(int rank) const {
    return static_cast<std::uint32_t>(sim::hashCombine(
        tb_->seed(), 0x10000u + static_cast<std::uint64_t>(rank)));
  }

  DaosTestbed* tb_;
  Api api_;
  IorConfig cfg_;
};

/// IOR POSIX backend against Lustre (file per process, striped).
class IorLustre final : public SpmdBenchmark {
 public:
  IorLustre(LustreTestbed& tb, IorConfig cfg, int stripe_count = 8,
            std::uint64_t stripe_size = 8 << 20)
      : tb_(&tb),
        cfg_(cfg),
        stripe_count_(stripe_count),
        stripe_size_(stripe_size) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  LustreTestbed* tb_;
  IorConfig cfg_;
  int stripe_count_;
  std::uint64_t stripe_size_;
};

/// IOR librados backend against Ceph (object per process; the paper caps
/// runs at 100 x 1 MiB to fit the 132 MiB object-size recommendation).
class IorRados final : public SpmdBenchmark {
 public:
  IorRados(CephTestbed& tb, IorConfig cfg) : tb_(&tb), cfg_(cfg) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  CephTestbed* tb_;
  IorConfig cfg_;
};

}  // namespace daosim::apps
