// IOR: the file/object-per-process bulk I/O benchmark (§II-A1).
//
// Every process creates one array/file/object, all processes synchronize,
// then each issues `ops` sequential transfers of `transfer` bytes (write
// phase, barrier, read phase). The benchmark is backend-neutral: it drives
// any io::Backend registered by name, covering every API the paper tests —
// libdaos arrays, libdfs, DFUSE, DFUSE+IL, HDF5 over DFUSE+IL, HDF5 over
// the DAOS VOL, POSIX on Lustre, and librados on Ceph.
#pragma once

#include <cstdint>
#include <string>

#include "apps/runner.h"
#include "io/backend.h"
#include "placement/objclass.h"

namespace daosim::apps {

struct IorConfig {
  std::uint64_t transfer = 1 << 20;  // bytes per operation
  std::uint64_t ops = 1000;          // operations per process
  placement::ObjClass oclass = placement::ObjClass::SX;
  bool write_phase = true;
  bool read_phase = true;
  /// IOR -F vs single-shared-file: with shared_file, every process works on
  /// one array/file in disjoint rank-segmented regions (rank 0 creates it,
  /// the rest open it after a barrier, as IOR does over MPI). Only honoured
  /// on backends with caps().shared_object; others fall back to
  /// file-per-process.
  bool shared_file = false;
  /// In-flight operations per process, issued through an io::SubmitQueue
  /// (the async event-queue analogue). 1 = fully sequential issue, the
  /// paper's baseline behaviour.
  int queue_depth = 1;
};

/// IOR against any registered io::Backend (`api` is an io::Backend registry
/// name, e.g. "daos-array", "dfs", "lustre-posix", "rados").
class Ior final : public SpmdBenchmark {
 public:
  Ior(io::Env env, std::string api, IorConfig cfg)
      : env_(env), api_(std::move(api)), cfg_(cfg) {}

  sim::Task<void> process(ProcContext ctx) override;

 private:
  sim::Task<void> runPhase(io::Object* obj, ProcContext ctx, Phase phase,
                           std::uint64_t base);

  io::Env env_;
  std::string api_;
  IorConfig cfg_;
};

}  // namespace daosim::apps
