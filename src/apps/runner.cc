#include "apps/runner.h"

#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "obs/observer.h"

namespace daosim::apps {

namespace {

sim::Task<void> runProcess(SpmdBenchmark* bench, ProcContext ctx) {
  co_await bench->process(ctx);
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string envFile(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace

RunResult runSpmd(sim::Simulation& sim, const std::vector<hw::NodeId>& nodes,
                  int procs_per_node, SpmdBenchmark& bench) {
  // DAOSIM_TRACE / DAOSIM_METRICS: attach an observer for this run if the
  // caller has not installed one, and export when the run completes. Each
  // runSpmd call overwrites the files, so a sweep leaves the last run's
  // trace — attach an observer around the point of interest for more. The
  // observer itself is local to this run (no state shared across runs);
  // under a parallel sweep (DAOSIM_JOBS > 1) file writes are serialized
  // below and "last" means last to complete, which is scheduling-dependent.
  const std::string trace_file = envFile("DAOSIM_TRACE");
  const std::string metrics_file = envFile("DAOSIM_METRICS");
  int exemplars = 0;  // DAOSIM_EXEMPLARS: K slowest ops per type
  if (const char* v = std::getenv("DAOSIM_EXEMPLARS")) {
    exemplars = std::atoi(v);
  }
  obs::Observer local;
  const bool attach =
      (!trace_file.empty() || !metrics_file.empty() || exemplars > 0) &&
      sim.observer() == nullptr;
  if (attach) {
    local.attach(sim);
    if (!trace_file.empty()) local.enableTracing();
    if (exemplars > 0) {
      local.enableExemplars(static_cast<std::size_t>(exemplars));
    }
  }

  const int procs = static_cast<int>(nodes.size()) * procs_per_node;
  RunResult result;
  result.procs = procs;
  sim::Barrier barrier(sim, static_cast<std::size_t>(procs));

  std::vector<sim::ProcHandle> handles;
  handles.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    ProcContext ctx;
    ctx.rank = r;
    ctx.nprocs = procs;
    ctx.node = nodes[static_cast<std::size_t>(r / procs_per_node)];
    ctx.sim = &sim;
    ctx.barrier = &barrier;
    ctx.result = &result;
    handles.push_back(sim.spawn(runProcess(&bench, ctx)));
  }
  sim.run();

  if (attach) {
    static std::mutex export_mu;  // concurrent runs share the export files
    std::lock_guard<std::mutex> lock(export_mu);
    if (!trace_file.empty()) {
      std::ofstream f(trace_file);
      local.writeChromeTrace(f);
    }
    if (!metrics_file.empty()) {
      local.exportMetrics();
      std::ofstream f(metrics_file);
      if (endsWith(metrics_file, ".json")) {
        local.metrics().writeJson(f);
      } else {
        local.metrics().writeCsv(f);
      }
    }
    if (exemplars > 0) local.writeTailReport(std::cout);
    local.detach();
  }

  for (auto& h : handles) {
    if (h.failed()) std::rethrow_exception(h.error());
  }
  return result;
}

}  // namespace daosim::apps
