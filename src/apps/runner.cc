#include "apps/runner.h"

#include <exception>

namespace daosim::apps {

namespace {

sim::Task<void> runProcess(SpmdBenchmark* bench, ProcContext ctx) {
  co_await bench->process(ctx);
}

}  // namespace

RunResult runSpmd(sim::Simulation& sim, const std::vector<hw::NodeId>& nodes,
                  int procs_per_node, SpmdBenchmark& bench) {
  const int procs = static_cast<int>(nodes.size()) * procs_per_node;
  RunResult result;
  result.procs = procs;
  sim::Barrier barrier(sim, static_cast<std::size_t>(procs));

  std::vector<sim::ProcHandle> handles;
  handles.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    ProcContext ctx;
    ctx.rank = r;
    ctx.nprocs = procs;
    ctx.node = nodes[static_cast<std::size_t>(r / procs_per_node)];
    ctx.sim = &sim;
    ctx.barrier = &barrier;
    ctx.result = &result;
    handles.push_back(sim.spawn(runProcess(&bench, ctx)));
  }
  sim.run();

  for (auto& h : handles) {
    if (h.failed()) std::rethrow_exception(h.error());
  }
  return result;
}

}  // namespace daosim::apps
