#include "apps/runner.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "obs/observer.h"

namespace daosim::apps {

namespace {

sim::Task<void> runProcess(SpmdBenchmark* bench, ProcContext ctx) {
  co_await bench->process(ctx);
}

/// Per-rank state for the sharded harness; lives in a stable vector for
/// the whole run. Proc coroutines take a plain pointer (no lambda
/// closures — see the GCC-12 note in net/rpc.h).
struct ShardProcArgs {
  SpmdBenchmark* bench = nullptr;
  ProcContext ctx;
  sim::Rng pace;
  sim::Time stagger = 0;
};

sim::Task<void> runShardProcess(ShardProcArgs* a) {
  // Deterministic de-tie, as in apps/pdes.cc: distinct per-rank start
  // offsets keep lock-step SPMD ranks on different shards from hitting one
  // station at the exact same nanosecond.
  co_await a->ctx.sim->delay(a->stagger);
  co_await a->bench->process(a->ctx);
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string envFile(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace

RunResult runSpmd(sim::Simulation& sim, const std::vector<hw::NodeId>& nodes,
                  int procs_per_node, SpmdBenchmark& bench) {
  // DAOSIM_TRACE / DAOSIM_METRICS: attach an observer for this run if the
  // caller has not installed one, and export when the run completes. Each
  // runSpmd call overwrites the files, so a sweep leaves the last run's
  // trace — attach an observer around the point of interest for more. The
  // observer itself is local to this run (no state shared across runs);
  // under a parallel sweep (DAOSIM_JOBS > 1) file writes are serialized
  // below and "last" means last to complete, which is scheduling-dependent.
  const std::string trace_file = envFile("DAOSIM_TRACE");
  const std::string metrics_file = envFile("DAOSIM_METRICS");
  int exemplars = 0;  // DAOSIM_EXEMPLARS: K slowest ops per type
  if (const char* v = std::getenv("DAOSIM_EXEMPLARS")) {
    exemplars = std::atoi(v);
  }
  obs::Observer local;
  const bool attach =
      (!trace_file.empty() || !metrics_file.empty() || exemplars > 0) &&
      sim.observer() == nullptr;
  if (attach) {
    local.attach(sim);
    if (!trace_file.empty()) local.enableTracing();
    if (exemplars > 0) {
      local.enableExemplars(static_cast<std::size_t>(exemplars));
    }
  }

  const int procs = static_cast<int>(nodes.size()) * procs_per_node;
  RunResult result;
  result.procs = procs;
  sim::Barrier barrier(sim, static_cast<std::size_t>(procs));

  std::vector<sim::ProcHandle> handles;
  handles.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    ProcContext ctx;
    ctx.rank = r;
    ctx.nprocs = procs;
    ctx.node = nodes[static_cast<std::size_t>(r / procs_per_node)];
    ctx.sim = &sim;
    ctx.barrier = &barrier;
    ctx.result = &result;
    handles.push_back(sim.spawn(runProcess(&bench, ctx)));
  }
  sim.run();

  if (attach) {
    static std::mutex export_mu;  // concurrent runs share the export files
    std::lock_guard<std::mutex> lock(export_mu);
    if (!trace_file.empty()) {
      std::ofstream f(trace_file);
      local.writeChromeTrace(f);
    }
    if (!metrics_file.empty()) {
      local.exportMetrics();
      std::ofstream f(metrics_file);
      if (endsWith(metrics_file, ".json")) {
        local.metrics().writeJson(f);
      } else {
        local.metrics().writeCsv(f);
      }
    }
    if (exemplars > 0) local.writeTailReport(std::cout);
    local.detach();
  }

  for (auto& h : handles) {
    if (h.failed()) std::rethrow_exception(h.error());
  }
  return result;
}

sim::Task<void> ProcContext::phaseBarrier() const {
  if (sbarrier != nullptr) {
    co_await sbarrier->arriveAndWait(static_cast<std::size_t>(shard));
  } else {
    co_await barrier->arriveAndWait();
  }
}

sim::Task<void> ProcContext::paceOp() const {
  if (pace == nullptr) co_return;  // serial: schedule-identical no-op
  co_await sim->delay(sim::kMicrosecond +
                      pace->uniform(0, 16 * sim::kMicrosecond));
}

void mergeRunResults(RunResult& into, const RunResult& from) {
  for (int ph = 0; ph < 2; ++ph) {
    PhaseResult& a = into.phase[ph];
    const PhaseResult& b = from.phase[ph];
    a.bytes += b.bytes;
    a.ops += b.ops;
    if (b.first_start < a.first_start) a.first_start = b.first_start;
    if (b.last_end > a.last_end) a.last_end = b.last_end;
    a.latency.merge(b.latency);
  }
}

RunResult runSpmdSharded(hw::Cluster& cluster, sim::ShardGroup& group,
                         const std::vector<hw::NodeId>& nodes,
                         int procs_per_node, std::uint64_t seed,
                         SpmdBenchmark& bench) {
  const int procs = static_cast<int>(nodes.size()) * procs_per_node;
  std::vector<RunResult> lanes(static_cast<std::size_t>(group.shards()));
  sim::ShardBarrier barrier(group, static_cast<std::size_t>(procs));

  // Shard clocks are skewed when the harness starts: the preceding setup
  // run advanced the admin's shard to the setup-completion time, while a
  // shard whose nodes saw no traffic stopped at its last event. Each
  // rank's start is therefore anchored at the group-wide maximum clock —
  // a property of the event history, identical for every shard layout —
  // not at its home shard's (layout-dependent) local clock.
  sim::Time t0 = 0;
  for (int i = 0; i < group.shards(); ++i) {
    t0 = std::max(t0, group.shard(i).now());
  }

  std::vector<ShardProcArgs> args(static_cast<std::size_t>(procs));
  std::vector<sim::ProcHandle> handles;
  handles.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    const hw::NodeId node = nodes[static_cast<std::size_t>(r / procs_per_node)];
    const int shard = cluster.nodeShard(node);
    ShardProcArgs& a = args[static_cast<std::size_t>(r)];
    a.bench = &bench;
    a.ctx.rank = r;
    a.ctx.nprocs = procs;
    a.ctx.node = node;
    a.ctx.sim = &cluster.node(node).sim();
    a.ctx.result = &lanes[static_cast<std::size_t>(shard)];
    a.ctx.sbarrier = &barrier;
    a.ctx.shard = shard;
    // 'pace': the pacing stream is a function of (seed, rank) only, so op
    // timing is identical for every shard count.
    a.pace = sim::Rng(sim::hashCombine(
        seed, 0x70616365ULL + static_cast<std::uint64_t>(r)));
    a.ctx.pace = &a.pace;
    a.stagger = t0 - a.ctx.sim->now() + static_cast<sim::Time>(r) * 97 + 13;
    handles.push_back(a.ctx.sim->spawn(runShardProcess(&a)));
  }
  try {
    group.run();
  } catch (...) {
    // A rank that died mid-phase leaves the ShardBarrier unfillable and
    // the group reports quiescence-with-incomplete-barrier; the rank's
    // own exception is the actionable one, so prefer it.
    for (auto& h : handles) {
      if (h.failed()) std::rethrow_exception(h.error());
    }
    throw;
  }
  for (auto& h : handles) {
    if (h.failed()) std::rethrow_exception(h.error());
  }

  RunResult result;
  result.procs = procs;
  for (const RunResult& lane : lanes) mergeRunResults(result, lane);
  return result;
}

}  // namespace daosim::apps
