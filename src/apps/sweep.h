// Sweep utilities shared by the per-figure benchmark binaries: the paper's
// client-node/process-count grids, op-count scaling, repetition statistics
// (mean ± stddev over 3 runs, as in §II), and table printing.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "sim/stats.h"

namespace daosim::apps {

struct SweepPoint {
  int client_nodes = 1;
  int procs_per_node = 1;
  int totalProcs() const noexcept { return client_nodes * procs_per_node; }
};

/// Aggregated repetitions of one sweep point.
struct Measurement {
  SweepPoint point;
  sim::Welford write_gibps;
  sim::Welford read_gibps;
  sim::Welford write_kiops;
  sim::Welford read_kiops;
  obs::Histogram write_lat;  // per-op ns, merged across reps
  obs::Histogram read_lat;

  void add(const RunResult& r) {
    write_gibps.add(r.write().gibps());
    read_gibps.add(r.read().gibps());
    write_kiops.add(r.write().iops() / 1e3);
    read_kiops.add(r.read().iops() / 1e3);
    write_lat.merge(r.write().latency);
    read_lat.merge(r.read().latency);
  }
};

struct Series {
  std::string name;
  std::vector<Measurement> points;
  /// Label of the first column (default "clients"; the server-scaling
  /// figure reuses it as "servers").
  std::string col1 = "clients";
};

/// The paper's client-count optimisation grid: client node counts doubling
/// up to `max_clients`, with `procs_per_node` processes each (the per-node
/// process counts the paper found optimal are applied by the callers).
std::vector<SweepPoint> clientNodeGrid(int max_clients, int procs_per_node);

/// A (nodes x procs) cross grid, for full optimisation sweeps.
std::vector<SweepPoint> crossGrid(std::vector<int> client_nodes,
                                  std::vector<int> procs_per_node);

/// Scales per-process op counts so the total per run stays near
/// `total_target` (keeps big sweeps fast without flattening small ones).
std::uint64_t scaledOps(int total_procs, std::uint64_t base_ops,
                        std::uint64_t total_target = 40000);

/// Environment overrides: DAOSIM_OPS (per-process op base),
/// DAOSIM_REPS (repetitions), DAOSIM_FULL_GRID (1 = larger grids).
std::uint64_t envOps(std::uint64_t def = 1000);
int envReps(int def = 3);
bool envFullGrid();

/// Paper-style table: one row per point with write/read mean ± stddev.
void printSeries(std::ostream& os, const Series& series,
                 bool show_iops = false);

}  // namespace daosim::apps
