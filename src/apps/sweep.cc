#include "apps/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>

namespace daosim::apps {

std::vector<SweepPoint> clientNodeGrid(int max_clients, int procs_per_node) {
  std::vector<SweepPoint> grid;
  for (int c = 1; c <= max_clients; c *= 2) {
    grid.push_back(SweepPoint{c, procs_per_node});
  }
  if (!grid.empty() && grid.back().client_nodes != max_clients) {
    grid.push_back(SweepPoint{max_clients, procs_per_node});
  }
  return grid;
}

std::vector<SweepPoint> crossGrid(std::vector<int> client_nodes,
                                  std::vector<int> procs_per_node) {
  std::vector<SweepPoint> grid;
  for (int c : client_nodes) {
    for (int n : procs_per_node) grid.push_back(SweepPoint{c, n});
  }
  return grid;
}

std::uint64_t scaledOps(int total_procs, std::uint64_t base_ops,
                        std::uint64_t total_target) {
  if (total_procs <= 0) return base_ops;
  const std::uint64_t per_proc =
      total_target / static_cast<std::uint64_t>(total_procs);
  return std::clamp<std::uint64_t>(per_proc, 50, base_ops);
}

namespace {
std::uint64_t envU64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

std::uint64_t envOps(std::uint64_t def) { return envU64("DAOSIM_OPS", def); }

int envReps(int def) {
  return static_cast<int>(envU64("DAOSIM_REPS",
                                 static_cast<std::uint64_t>(def)));
}

bool envFullGrid() { return envU64("DAOSIM_FULL_GRID", 0) != 0; }

namespace {
/// Per-op latency columns (p50/p95/p99/p99.9/max), in microseconds.
void printLatCols(std::ostream& os, const obs::Histogram& h) {
  os << std::setprecision(1);
  for (double p : {50.0, 95.0, 99.0, 99.9}) {
    os << std::setw(9) << static_cast<double>(h.percentile(p)) / 1e3;
  }
  os << std::setw(9) << static_cast<double>(h.max()) / 1e3;
  os << std::setprecision(2);
}
}  // namespace

void printSeries(std::ostream& os, const Series& series, bool show_iops) {
  os << "== " << series.name << " ==\n";
  os << std::setw(8) << series.col1 << std::setw(7) << "ppn" << std::setw(7)
     << "procs";
  if (show_iops) {
    os << std::setw(14) << "write kIOPS" << std::setw(9) << "+/-"
       << std::setw(14) << "read kIOPS" << std::setw(9) << "+/-";
  } else {
    os << std::setw(14) << "write GiB/s" << std::setw(9) << "+/-"
       << std::setw(14) << "read GiB/s" << std::setw(9) << "+/-";
  }
  os << std::setw(9) << "w.p50us" << std::setw(9) << "w.p95" << std::setw(9)
     << "w.p99" << std::setw(9) << "w.p999" << std::setw(9) << "w.max"
     << std::setw(9) << "r.p50us" << std::setw(9) << "r.p95" << std::setw(9)
     << "r.p99" << std::setw(9) << "r.p999" << std::setw(9) << "r.max";
  os << "\n";
  for (const auto& m : series.points) {
    os << std::setw(8) << m.point.client_nodes << std::setw(7)
       << m.point.procs_per_node << std::setw(7) << m.point.totalProcs();
    os << std::fixed << std::setprecision(2);
    if (show_iops) {
      os << std::setw(14) << m.write_kiops.mean() << std::setw(9)
         << m.write_kiops.stddev() << std::setw(14) << m.read_kiops.mean()
         << std::setw(9) << m.read_kiops.stddev();
    } else {
      os << std::setw(14) << m.write_gibps.mean() << std::setw(9)
         << m.write_gibps.stddev() << std::setw(14) << m.read_gibps.mean()
         << std::setw(9) << m.read_gibps.stddev();
    }
    printLatCols(os, m.write_lat);
    printLatCols(os, m.read_lat);
    os << "\n";
    os.unsetf(std::ios::fixed);
  }
}

}  // namespace daosim::apps
