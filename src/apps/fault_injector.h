// FaultInjector: executes a sim::FaultPlan against a DaosTestbed.
//
// The injector is the bridge between the pure-data plan (sim/fault_plan.h)
// and the deployed hardware/DAOS objects: a driver process walks the plan
// and applies each event at its exact simulated time — device fail/recover,
// administrative exclusion (which also kicks off a background
// daos::rebuild), device slowdown, NIC flaps (with timed restore) and
// engine stalls. Because every action happens at a scheduled simulated
// time on the deterministic kernel, chaos runs replay bit-identically,
// serially and under --jobs N.
//
// An empty plan is a strict no-op: install() spawns nothing and
// registerTelemetry() adds no paths, so a run with an empty injector is
// byte-identical to one without an injector (enforced by the conformance
// suite).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "apps/testbed.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"

namespace daosim::obs {
class Telemetry;
}

namespace daosim::apps {

/// Cumulative fault/rebuild accounting, exposed under faults/* telemetry
/// paths and in the --stats summary.
struct FaultStats {
  std::uint64_t events_applied = 0;
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuild_records_restored = 0;
  std::uint64_t rebuild_bytes_moved = 0;
  /// Surfaced from daos::RebuildStats — unprotected data is reported, never
  /// silently dropped.
  std::uint64_t objects_lost = 0;
  std::uint64_t records_unrecoverable = 0;
};

class FaultInjector {
 public:
  /// Validates every event subject against the testbed's topology
  /// (throws std::out_of_range up front, so a bad plan never fails inside
  /// a detached driver process).
  FaultInjector(DaosTestbed& testbed, sim::FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Spawns the driver process on the testbed's kernel. Call once, before
  /// sim.run(). No-op for an empty plan.
  void install();

  /// Registers faults/* probes (events applied, retries/timeouts live on
  /// net/*, rebuild progress and loss counters). No-op for an empty plan,
  /// keeping empty-plan telemetry dumps byte-identical to plan-free runs.
  void registerTelemetry(obs::Telemetry& telemetry);

  const sim::FaultPlan& plan() const noexcept { return plan_; }
  const FaultStats& stats() const noexcept { return stats_; }

  /// Awaits every process the injector spawned (driver, link restores,
  /// stalls, background rebuilds), rethrowing the first failure. Call from
  /// a simulated process when the workload must observe rebuild completion.
  sim::Task<void> quiesce();

  /// Rethrows the first exception any injector-spawned process died with
  /// (call after sim.run(); detached processes otherwise swallow errors).
  void rethrowIfFailed() const;

  /// Human-readable "fault injection summary" block (--stats).
  void writeSummary(std::ostream& os) const;

 private:
  void applyEvent(const sim::FaultEvent& e);
  /// Sharded-testbed variant: state owned by one shard (devices, xstreams)
  /// is mutated by an applier that hops to the owner's shard, replicated
  /// views (link map, pool map) by one broadcast applier per shard — all
  /// arriving at event-time + fabric latency, so every shard sees the
  /// fault at the same simulated instant regardless of shard count.
  void applyEventSharded(const sim::FaultEvent& e);
  void markTrace(const sim::FaultEvent& e);
  /// Driver residency: the pool leader's simulation — the one global
  /// simulation serially (identical to the pre-sharding spawn), the
  /// leader node's shard on a sharded testbed.
  sim::Simulation& driverSim();

  // Driver/helper processes. Static members taking `self` keep coroutine
  // parameters plain data (see net/rpc.h's GCC-12 note).
  static sim::Task<void> drive(FaultInjector* self);
  static sim::Task<void> restoreLink(FaultInjector* self, int node,
                                     sim::Time after);
  static sim::Task<void> stallFor(FaultInjector* self,
                                  sim::QueueStation* station, sim::Time dur);
  static sim::Task<void> rebuildVictim(FaultInjector* self, int victim);
  // Sharded appliers (no-ops serially; only spawned on sharded testbeds).
  static sim::Task<void> applyAtOwner(FaultInjector* self, sim::FaultEvent e);
  static sim::Task<void> excludeOnShard(FaultInjector* self, int shard,
                                        int global);
  static sim::Task<void> linkFlapOnShard(FaultInjector* self, int shard,
                                         int node, sim::Time up_after);
  static sim::Task<void> stallAtOwner(FaultInjector* self, int engine_idx,
                                      int target_idx, sim::Time dur);

  DaosTestbed* testbed_;
  sim::FaultPlan plan_;
  FaultStats stats_;
  std::vector<sim::ProcHandle> procs_;
  bool installed_ = false;
};

}  // namespace daosim::apps
