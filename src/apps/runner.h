// SPMD benchmark harness.
//
// The paper's benchmarks run as sets of parallel processes pinned evenly
// across client nodes, with a barrier between the write and read phases.
// Bandwidth follows the paper's definition (§II): total bytes moved divided
// by the wall-clock span from the first operation's start to the last
// operation's end, per phase.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hw/cluster.h"
#include "obs/histogram.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::apps {

enum Phase : int { kWrite = 0, kRead = 1 };

/// Identity-salt domains: each benchmark stamps its client ids (and hence
/// its OID space) from a disjoint range.
inline constexpr std::uint32_t kIorIdDomain = 0x10000;
inline constexpr std::uint32_t kFieldIoIdDomain = 0x20000;
inline constexpr std::uint32_t kFdbIdDomain = 0x30000;

/// Per-rank client identity, salted by the testbed seed so repetitions draw
/// different OIDs (and hence placements), like real reruns do.
inline std::uint32_t spmdClientId(std::uint64_t seed, std::uint32_t domain,
                                  int rank) {
  return static_cast<std::uint32_t>(sim::hashCombine(
      seed, domain + static_cast<std::uint64_t>(rank)));
}

struct PhaseResult {
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  sim::Time first_start = std::numeric_limits<sim::Time>::max();
  sim::Time last_end = 0;
  obs::Histogram latency;  // per-op latency in ns, across all processes

  sim::Time span() const noexcept {
    return last_end > first_start ? last_end - first_start : 0;
  }
  double seconds() const noexcept { return sim::toSeconds(span()); }
  double gibps() const noexcept {
    const double s = seconds();
    return s > 0 ? static_cast<double>(bytes) / (1ULL << 30) / s : 0.0;
  }
  double iops() const noexcept {
    const double s = seconds();
    return s > 0 ? static_cast<double>(ops) / s : 0.0;
  }
};

struct RunResult {
  PhaseResult phase[2];
  int procs = 0;

  const PhaseResult& write() const noexcept { return phase[kWrite]; }
  const PhaseResult& read() const noexcept { return phase[kRead]; }
};

/// Per-process context handed to a benchmark's process().
///
/// Under runSpmd (the frozen serial harness) `barrier` is set and
/// `sbarrier`/`pace` are null; under runSpmdSharded the reverse. Benchmark
/// code stays mode-agnostic by synchronizing through phaseBarrier() and
/// pacing through paceOp() — both compile down to the exact pre-sharding
/// schedule serially (awaiting a Task that immediately co_returns, or that
/// directly awaits the serial barrier, adds zero kernel events).
struct ProcContext {
  int rank = 0;
  int nprocs = 0;
  hw::NodeId node = 0;
  sim::Simulation* sim = nullptr;
  sim::Barrier* barrier = nullptr;
  RunResult* result = nullptr;
  sim::ShardBarrier* sbarrier = nullptr;  ///< sharded mode only
  int shard = 0;                          ///< home shard (0 serially)
  sim::Rng* pace = nullptr;               ///< sharded mode only

  /// Records one completed operation ending now.
  void record(Phase phase, std::uint64_t bytes, sim::Time start) const {
    PhaseResult& p = result->phase[phase];
    p.bytes += bytes;
    p.ops += 1;
    if (start < p.first_start) p.first_start = start;
    if (sim->now() > p.last_end) p.last_end = sim->now();
    p.latency.add(sim->now() - start);
  }

  /// Phase barrier, whichever harness is driving.
  sim::Task<void> phaseBarrier() const;

  /// Pre-op think pacing: a deterministic per-proc jitter delay in sharded
  /// mode (de-ties same-nanosecond arrivals from different shards, the one
  /// case where mailbox order could depend on shard count — see
  /// apps/pdes.h), a free no-op serially.
  sim::Task<void> paceOp() const;
};

class SpmdBenchmark {
 public:
  virtual ~SpmdBenchmark() = default;
  /// Body of one process. Use ctx.barrier->arriveAndWait() between phases.
  virtual sim::Task<void> process(ProcContext ctx) = 0;
};

/// Runs `procs_per_node` processes on each listed client node to
/// completion; rethrows the first process failure. Rank r runs on
/// nodes[r / procs_per_node].
RunResult runSpmd(sim::Simulation& sim, const std::vector<hw::NodeId>& nodes,
                  int procs_per_node, SpmdBenchmark& bench);

/// Sharded-cluster variant: each rank is spawned on its client node's home
/// shard with a start stagger and a pacing RNG lane (both functions of
/// (seed, rank) only — shard-count-invariant), phases synchronize on a
/// ShardBarrier, results accumulate into per-shard lanes merged in shard
/// order after ShardGroup::run(). Observers attach one lane per shard
/// (obs::ObserverGroup, merged deterministically after the run) and
/// telemetry samples one raw lane per shard (apps::ShardedRunTelemetry);
/// neither is wired here — the CLI sets both up around this call.
RunResult runSpmdSharded(hw::Cluster& cluster, sim::ShardGroup& group,
                         const std::vector<hw::NodeId>& nodes,
                         int procs_per_node, std::uint64_t seed,
                         SpmdBenchmark& bench);

/// Commutative RunResult merge (bytes/ops sums, span hull, histogram
/// merge); does not touch `into.procs`.
void mergeRunResults(RunResult& into, const RunResult& from);

}  // namespace daosim::apps
