// SPMD benchmark harness.
//
// The paper's benchmarks run as sets of parallel processes pinned evenly
// across client nodes, with a barrier between the write and read phases.
// Bandwidth follows the paper's definition (§II): total bytes moved divided
// by the wall-clock span from the first operation's start to the last
// operation's end, per phase.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hw/cluster.h"
#include "obs/histogram.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::apps {

enum Phase : int { kWrite = 0, kRead = 1 };

/// Identity-salt domains: each benchmark stamps its client ids (and hence
/// its OID space) from a disjoint range.
inline constexpr std::uint32_t kIorIdDomain = 0x10000;
inline constexpr std::uint32_t kFieldIoIdDomain = 0x20000;
inline constexpr std::uint32_t kFdbIdDomain = 0x30000;

/// Per-rank client identity, salted by the testbed seed so repetitions draw
/// different OIDs (and hence placements), like real reruns do.
inline std::uint32_t spmdClientId(std::uint64_t seed, std::uint32_t domain,
                                  int rank) {
  return static_cast<std::uint32_t>(sim::hashCombine(
      seed, domain + static_cast<std::uint64_t>(rank)));
}

struct PhaseResult {
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  sim::Time first_start = std::numeric_limits<sim::Time>::max();
  sim::Time last_end = 0;
  obs::Histogram latency;  // per-op latency in ns, across all processes

  sim::Time span() const noexcept {
    return last_end > first_start ? last_end - first_start : 0;
  }
  double seconds() const noexcept { return sim::toSeconds(span()); }
  double gibps() const noexcept {
    const double s = seconds();
    return s > 0 ? static_cast<double>(bytes) / (1ULL << 30) / s : 0.0;
  }
  double iops() const noexcept {
    const double s = seconds();
    return s > 0 ? static_cast<double>(ops) / s : 0.0;
  }
};

struct RunResult {
  PhaseResult phase[2];
  int procs = 0;

  const PhaseResult& write() const noexcept { return phase[kWrite]; }
  const PhaseResult& read() const noexcept { return phase[kRead]; }
};

/// Per-process context handed to a benchmark's process().
struct ProcContext {
  int rank = 0;
  int nprocs = 0;
  hw::NodeId node = 0;
  sim::Simulation* sim = nullptr;
  sim::Barrier* barrier = nullptr;
  RunResult* result = nullptr;

  /// Records one completed operation ending now.
  void record(Phase phase, std::uint64_t bytes, sim::Time start) const {
    PhaseResult& p = result->phase[phase];
    p.bytes += bytes;
    p.ops += 1;
    if (start < p.first_start) p.first_start = start;
    if (sim->now() > p.last_end) p.last_end = sim->now();
    p.latency.add(sim->now() - start);
  }
};

class SpmdBenchmark {
 public:
  virtual ~SpmdBenchmark() = default;
  /// Body of one process. Use ctx.barrier->arriveAndWait() between phases.
  virtual sim::Task<void> process(ProcContext ctx) = 0;
};

/// Runs `procs_per_node` processes on each listed client node to
/// completion; rethrows the first process failure. Rank r runs on
/// nodes[r / procs_per_node].
RunResult runSpmd(sim::Simulation& sim, const std::vector<hw::NodeId>& nodes,
                  int procs_per_node, SpmdBenchmark& bench);

}  // namespace daosim::apps
