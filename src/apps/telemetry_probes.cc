#include "apps/telemetry_probes.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "daos/engine.h"
#include "daos/pool_service.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "hw/device.h"
#include "lustre/lustre.h"
#include "rados/rados.h"
#include "sim/fault_plan.h"
#include "sim/queue_station.h"
#include "vos/target_store.h"

namespace daosim::apps {

namespace {

using obs::Telemetry;
using Kind = obs::Telemetry::Kind;

/// busy_frac: cumulative busy seconds under kRate == per-bin utilization.
/// `servers` > 1 normalizes a pooled station to per-thread utilization.
void stationProbes(Telemetry& t, const std::string& prefix,
                   const sim::QueueStation& st, int servers = 1) {
  t.addProbe(prefix + "/busy_frac", Kind::kRate,
             [&st, servers] {
               return sim::toSeconds(st.busyTime()) / servers;
             });
  t.addProbe(prefix + "/queue_len", Kind::kGauge,
             [&st] { return static_cast<double>(st.queueLength()); });
}

void nicProbes(Telemetry& t, const std::string& prefix, hw::Node& node) {
  for (const char* dir : {"tx", "rx"}) {
    sim::QueueStation& st = dir[0] == 't' ? node.tx() : node.rx();
    const std::string p = prefix + "/nic/" + dir;
    t.addProbe(p + "/busy_frac", Kind::kRate,
               [&st] { return sim::toSeconds(st.busyTime()); });
    t.addProbe(p + "/bytes_per_s", Kind::kRate,
               [&st] { return static_cast<double>(st.bytes()); });
  }
}

void deviceProbes(Telemetry& t, const std::string& prefix,
                  const hw::NvmeDevice& dev) {
  t.addProbe(prefix + "/busy_frac", Kind::kRate,
             [&dev] { return sim::toSeconds(dev.busyTime()); });
  t.addProbe(prefix + "/queue_depth", Kind::kGauge,
             [&dev] { return static_cast<double>(dev.queueDepth()); });
  t.addProbe(prefix + "/bytes_per_s", Kind::kRate, [&dev] {
    return static_cast<double>(dev.bytesWritten() + dev.bytesRead());
  });
}

void vosProbes(Telemetry& t, const std::string& prefix,
               const vos::TargetStore& store) {
  t.addProbe(prefix + "/ops_per_s", Kind::kRate,
             [&store] { return static_cast<double>(store.recordOps()); });
}

void netProbes(Telemetry& t, hw::Cluster& cluster) {
  t.addProbe("net/inflight", Kind::kGauge, [&cluster] {
    return static_cast<double>(cluster.inflightSends());
  });
  t.addProbe("net/msgs_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.messages());
  });
  t.addProbe("net/bytes_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.bytesSent());
  });
  // Time-integral of in-flight messages: per-bin value is the mean number
  // of concurrent sends (Little's law), a direct read on per-leg latency
  // pressure.
  t.addProbe("net/inflight_avg", Kind::kRate, [&cluster] {
    return sim::toSeconds(cluster.totalSendTime());
  });
  t.addProbe("net/rpc_req_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcRequests());
  });
  t.addProbe("net/rpc_resp_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcResponses());
  });
  // Retry-policy health (flat zero unless a fault plan / retry policy is
  // active — see net::sendWithRetry, hw::Cluster::setLinkDown).
  t.addProbe("net/rpc_retry_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcRetries());
  });
  t.addProbe("net/rpc_timeout_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcTimeouts());
  });
  t.addProbe("net/send_fail_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.sendFailures());
  });
}

void clientNicProbes(Telemetry& t, hw::Cluster& cluster,
                     const std::vector<hw::NodeId>& clients) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    nicProbes(t, "client/" + std::to_string(i), cluster.node(clients[i]));
  }
}

/// Per-lane twins of netProbes: same paths, reading the shard's own counter
/// block, so each lane samples only state its thread mutates. mergeLanes()
/// sums the raw readings per bin, recovering the cluster-wide serial value
/// exactly (the raws are integer-valued). net/inflight_avg exposes the raw
/// cumulative send *nanoseconds* (integer, hence exactly summable) with the
/// seconds conversion deferred to the output scale.
void laneNetProbes(Telemetry& t, hw::Cluster& cluster, int s) {
  t.addProbe("net/inflight", Kind::kGauge, [&cluster, s] {
    return static_cast<double>(cluster.laneInflight(s));
  });
  t.addProbe("net/msgs_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneMessages(s));
  });
  t.addProbe("net/bytes_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneBytesSent(s));
  });
  t.addProbe(
      "net/inflight_avg", Kind::kRate,
      [&cluster, s] { return static_cast<double>(cluster.laneSendTime(s)); },
      1e-9);
  t.addProbe("net/rpc_req_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneRpcRequests(s));
  });
  t.addProbe("net/rpc_resp_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneRpcResponses(s));
  });
  t.addProbe("net/rpc_retry_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneRpcRetries(s));
  });
  t.addProbe("net/rpc_timeout_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneRpcTimeouts(s));
  });
  t.addProbe("net/send_fail_per_s", Kind::kRate, [&cluster, s] {
    return static_cast<double>(cluster.laneSendFailures(s));
  });
}

}  // namespace

void registerProbes(obs::Telemetry& t, DaosTestbed& tb) {
  daos::DaosSystem& sys = tb.daos();
  for (int e = 0; e < sys.engineCount(); ++e) {
    daos::Engine& engine = sys.engine(e);
    const std::string sp = "server/" + std::to_string(e);
    nicProbes(t, sp, tb.cluster().node(engine.node()));
    for (int tg = 0; tg < engine.targetCount(); ++tg) {
      daos::Target& target = engine.target(tg);
      const std::string tp = sp + "/target/" + std::to_string(tg);
      deviceProbes(t, tp + "/nvme", target.device());
      stationProbes(t, tp + "/xs", target.xstream());
      vosProbes(t, tp + "/vos", target.store());
    }
  }
  {
    const sim::QueueStation& ps = sys.poolService().station();
    t.addProbe("server/ps/busy_frac", Kind::kRate,
               [&ps] { return sim::toSeconds(ps.busyTime()); });
  }
  // Pool health: degraded-read rate and fail/exclusion gauges (flat zero
  // on a healthy run; driven by apps::FaultInjector).
  t.addProbe("daos/degraded_read_per_s", Kind::kRate,
             [&sys] { return static_cast<double>(sys.degradedReads()); });
  t.addProbe("daos/targets_failed", Kind::kGauge,
             [&sys] { return static_cast<double>(sys.failedTargets()); });
  t.addProbe("daos/targets_excluded", Kind::kGauge,
             [&sys] { return static_cast<double>(sys.excludedTargets()); });
  clientNicProbes(t, tb.cluster(), tb.clients());
  std::unordered_map<hw::NodeId, std::size_t> client_index;
  for (std::size_t i = 0; i < tb.clients().size(); ++i) {
    client_index[tb.clients()[i]] = i;
  }
  for (const auto& [node, daemon] : tb.daemons()) {
    const auto it = client_index.find(node);
    if (it == client_index.end()) continue;
    const std::string dp = "client/" + std::to_string(it->second) + "/dfuse";
    stationProbes(t, dp, daemon->threads(), daemon->config().fuse_threads);
    posix::DfuseDaemon* d = daemon.get();
    t.addProbe(dp + "/cache_hit_frac", Kind::kGauge, [d] {
      const std::uint64_t lookups = d->cacheLookups();
      return lookups ? static_cast<double>(d->cacheHits()) /
                           static_cast<double>(lookups)
                     : 0.0;
    });
  }
  netProbes(t, tb.cluster());
}

void registerProbes(obs::Telemetry& t, LustreTestbed& tb) {
  lustre::LustreSystem& sys = tb.lustre();
  for (int i = 0; i < sys.ostCount(); ++i) {
    const std::string op = "ost/" + std::to_string(i);
    deviceProbes(t, op + "/nvme", *sys.ost(i).device);
    stationProbes(t, op + "/cpu", sys.ost(i).cpu);
    vosProbes(t, op + "/vos", sys.ost(i).store);
  }
  stationProbes(t, "mds", sys.mdsStation(), sys.config().mds_threads);
  clientNicProbes(t, tb.cluster(), tb.clients());
  netProbes(t, tb.cluster());
}

void registerProbes(obs::Telemetry& t, CephTestbed& tb) {
  rados::CephCluster& sys = tb.ceph();
  for (int i = 0; i < sys.osdCount(); ++i) {
    const std::string op = "osd/" + std::to_string(i);
    deviceProbes(t, op + "/nvme", *sys.osd(i).device);
    stationProbes(t, op + "/threads", sys.osd(i).op_threads,
                  sys.config().osd_op_threads);
    vosProbes(t, op + "/vos", sys.osd(i).store);
  }
  clientNicProbes(t, tb.cluster(), tb.clients());
  netProbes(t, tb.cluster());
}

void registerShardProbes(obs::Telemetry& t, DaosTestbed& tb, int shard) {
  daos::DaosSystem& sys = tb.daos();
  hw::Cluster& cluster = tb.cluster();
  for (int e = 0; e < sys.engineCount(); ++e) {
    daos::Engine& engine = sys.engine(e);
    if (cluster.nodeShard(engine.node()) != shard) continue;
    const std::string sp = "server/" + std::to_string(e);
    nicProbes(t, sp, cluster.node(engine.node()));
    for (int tg = 0; tg < engine.targetCount(); ++tg) {
      daos::Target& target = engine.target(tg);
      const std::string tp = sp + "/target/" + std::to_string(tg);
      deviceProbes(t, tp + "/nvme", target.device());
      stationProbes(t, tp + "/xs", target.xstream());
      vosProbes(t, tp + "/vos", target.store());
    }
  }
  if (cluster.nodeShard(sys.poolService().leaderNode()) == shard) {
    const sim::QueueStation& ps = sys.poolService().station();
    t.addProbe("server/ps/busy_frac", Kind::kRate,
               [&ps] { return sim::toSeconds(ps.busyTime()); });
  }
  if (shard == 0) {
    // Driven only by the serial-only fault machinery — flat zero here, kept
    // so the sharded dump's path set matches the serial one.
    t.addProbe("daos/degraded_read_per_s", Kind::kRate,
               [&sys] { return static_cast<double>(sys.degradedReads()); });
    t.addProbe("daos/targets_failed", Kind::kGauge,
               [&sys] { return static_cast<double>(sys.failedTargets()); });
    t.addProbe("daos/targets_excluded", Kind::kGauge,
               [&sys] { return static_cast<double>(sys.excludedTargets()); });
  }
  for (std::size_t i = 0; i < tb.clients().size(); ++i) {
    if (cluster.nodeShard(tb.clients()[i]) != shard) continue;
    nicProbes(t, "client/" + std::to_string(i),
              cluster.node(tb.clients()[i]));
  }
  // No dfuse probes: sharded setup requires with_dfuse = false.
  laneNetProbes(t, cluster, shard);
}

void addPdesTelemetry(obs::Telemetry& t, const sim::ShardSyncStats& s) {
  t.gauge("pdes/shards").set(static_cast<double>(s.shards));
  t.gauge("pdes/lookahead_ns").set(static_cast<double>(s.lookahead));
  t.counter("pdes/windows").set(static_cast<double>(s.windows));
  t.counter("pdes/cross_posts").set(static_cast<double>(s.cross_posts));
  t.counter("pdes/barrier_releases")
      .set(static_cast<double>(s.barrier_releases));
  t.counter("pdes/late_releases").set(static_cast<double>(s.late_releases));
  t.counter("pdes/mailbox_flushes")
      .set(static_cast<double>(s.mailbox_flushes));
  t.counter("pdes/mailbox_entries")
      .set(static_cast<double>(s.mailbox_entries));
  t.counter("pdes/mailbox_bytes").set(static_cast<double>(s.mailbox_bytes));
  double busy_sum = 0;
  double busy_max = 0;
  for (int i = 0; i < s.shards; ++i) {
    const auto k = static_cast<std::size_t>(i);
    const double busy =
        k < s.shard_busy_ns.size() ? static_cast<double>(s.shard_busy_ns[k])
                                   : 0.0;
    const double wait =
        k < s.shard_wait_ns.size() ? static_cast<double>(s.shard_wait_ns[k])
                                   : 0.0;
    const double events =
        k < s.shard_events.size() ? static_cast<double>(s.shard_events[k])
                                  : 0.0;
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
    const std::string p = "pdes/shard/" + std::to_string(i) + "/";
    t.counter(p + "events").set(events);
    t.counter(p + "busy_ns").set(busy);
    t.counter(p + "wait_ns").set(wait);
    t.gauge(p + "busy_frac")
        .set(busy + wait > 0 ? busy / (busy + wait) : 0.0);
    t.gauge(p + "events_per_s").set(busy > 0 ? events / (busy * 1e-9) : 0.0);
  }
  const double mean = s.shards > 0 ? busy_sum / s.shards : 0.0;
  t.gauge("pdes/imbalance").set(mean > 0 ? busy_max / mean : 1.0);
}

ShardedRunTelemetry::ShardedRunTelemetry(DaosTestbed& tb, std::string label,
                                         bool enabled, sim::Time interval,
                                         obs::TelemetryHub* hub)
    : tb_(&tb),
      label_(std::move(label)),
      hub_(hub != nullptr ? hub : &obs::TelemetryHub::global()) {
  if (!enabled) return;
  sim::ShardGroup* g = tb.shardGroup();
  if (g == nullptr) {
    throw std::invalid_argument(
        "ShardedRunTelemetry requires a sharded testbed "
        "(use ScopedRunTelemetry on the serial kernel)");
  }
  if (interval <= 0) interval = telemetryEnvInterval();
  // Common series origin: the group-wide maximum clock. The group is
  // quiescent between setup and run, so lanes whose clock is behind miss
  // nothing by starting at the front-runner's time.
  sim::Time t0 = 0;
  for (int k = 0; k < g->shards(); ++k) {
    t0 = std::max(t0, g->shard(k).now());
  }
  for (int k = 0; k < g->shards(); ++k) {
    auto lane = std::make_unique<obs::Telemetry>(interval);
    registerShardProbes(*lane, tb, k);
    lane->enableRawSamples();
    lane->attachAt(g->shard(k), t0);
    lanes_.push_back(std::move(lane));
  }
}

ShardedRunTelemetry::~ShardedRunTelemetry() {
  if (lanes_.empty()) return;
  sim::ShardGroup* g = tb_->shardGroup();
  sim::Time end = 0;
  for (int k = 0; k < g->shards(); ++k) {
    end = std::max(end, g->shard(k).now());
  }
  std::vector<const obs::Telemetry*> ptrs;
  ptrs.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    lane->finishAt(end);
    ptrs.push_back(lane.get());
  }
  obs::Telemetry merged = obs::Telemetry::mergeLanes(ptrs);
  if (has_stats_) addPdesTelemetry(merged, stats_);
  hub_->add(label_, std::move(merged));
}

sim::Time parseDuration(const std::string& s) {
  return sim::parseDuration(s);  // canonical parser (sim/fault_plan.h)
}

std::string telemetryEnvFile() {
  const char* v = std::getenv("DAOSIM_TELEMETRY");
  return v ? std::string(v) : std::string();
}

sim::Time telemetryEnvInterval() {
  const char* v = std::getenv("DAOSIM_TELEMETRY_INTERVAL");
  return v ? parseDuration(v) : 10 * sim::kMillisecond;
}

void flushTelemetryEnv() {
  const std::string path = telemetryEnvFile();
  obs::TelemetryHub& hub = obs::TelemetryHub::global();
  if (path.empty() || hub.empty()) return;
  std::ofstream os(path);
  if (!os) return;
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    hub.writeJson(os);
  } else {
    hub.writeCsv(os);
  }
}

ScopedRunTelemetry::ScopedRunTelemetry(sim::Simulation& sim, std::string label,
                                       bool enabled, sim::Time interval)
    : label_(std::move(label)) {
  if (!enabled) return;
  t_.emplace(interval > 0 ? interval : telemetryEnvInterval());
  t_->attach(sim);
}

ScopedRunTelemetry::~ScopedRunTelemetry() {
  if (!t_.has_value()) return;
  t_->detach();
  obs::TelemetryHub::global().add(label_, std::move(*t_));
}

}  // namespace daosim::apps
