#include "apps/telemetry_probes.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "daos/engine.h"
#include "daos/pool_service.h"
#include "daos/system.h"
#include "hw/cluster.h"
#include "hw/device.h"
#include "lustre/lustre.h"
#include "rados/rados.h"
#include "sim/fault_plan.h"
#include "sim/queue_station.h"
#include "vos/target_store.h"

namespace daosim::apps {

namespace {

using obs::Telemetry;
using Kind = obs::Telemetry::Kind;

/// busy_frac: cumulative busy seconds under kRate == per-bin utilization.
/// `servers` > 1 normalizes a pooled station to per-thread utilization.
void stationProbes(Telemetry& t, const std::string& prefix,
                   const sim::QueueStation& st, int servers = 1) {
  t.addProbe(prefix + "/busy_frac", Kind::kRate,
             [&st, servers] {
               return sim::toSeconds(st.busyTime()) / servers;
             });
  t.addProbe(prefix + "/queue_len", Kind::kGauge,
             [&st] { return static_cast<double>(st.queueLength()); });
}

void nicProbes(Telemetry& t, const std::string& prefix, hw::Node& node) {
  for (const char* dir : {"tx", "rx"}) {
    sim::QueueStation& st = dir[0] == 't' ? node.tx() : node.rx();
    const std::string p = prefix + "/nic/" + dir;
    t.addProbe(p + "/busy_frac", Kind::kRate,
               [&st] { return sim::toSeconds(st.busyTime()); });
    t.addProbe(p + "/bytes_per_s", Kind::kRate,
               [&st] { return static_cast<double>(st.bytes()); });
  }
}

void deviceProbes(Telemetry& t, const std::string& prefix,
                  const hw::NvmeDevice& dev) {
  t.addProbe(prefix + "/busy_frac", Kind::kRate,
             [&dev] { return sim::toSeconds(dev.busyTime()); });
  t.addProbe(prefix + "/queue_depth", Kind::kGauge,
             [&dev] { return static_cast<double>(dev.queueDepth()); });
  t.addProbe(prefix + "/bytes_per_s", Kind::kRate, [&dev] {
    return static_cast<double>(dev.bytesWritten() + dev.bytesRead());
  });
}

void vosProbes(Telemetry& t, const std::string& prefix,
               const vos::TargetStore& store) {
  t.addProbe(prefix + "/ops_per_s", Kind::kRate,
             [&store] { return static_cast<double>(store.recordOps()); });
}

void netProbes(Telemetry& t, hw::Cluster& cluster) {
  t.addProbe("net/inflight", Kind::kGauge, [&cluster] {
    return static_cast<double>(cluster.inflightSends());
  });
  t.addProbe("net/msgs_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.messages());
  });
  t.addProbe("net/bytes_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.bytesSent());
  });
  // Time-integral of in-flight messages: per-bin value is the mean number
  // of concurrent sends (Little's law), a direct read on per-leg latency
  // pressure.
  t.addProbe("net/inflight_avg", Kind::kRate, [&cluster] {
    return sim::toSeconds(cluster.totalSendTime());
  });
  t.addProbe("net/rpc_req_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcRequests());
  });
  t.addProbe("net/rpc_resp_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcResponses());
  });
  // Retry-policy health (flat zero unless a fault plan / retry policy is
  // active — see net::sendWithRetry, hw::Cluster::setLinkDown).
  t.addProbe("net/rpc_retry_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcRetries());
  });
  t.addProbe("net/rpc_timeout_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.rpcTimeouts());
  });
  t.addProbe("net/send_fail_per_s", Kind::kRate, [&cluster] {
    return static_cast<double>(cluster.sendFailures());
  });
}

void clientNicProbes(Telemetry& t, hw::Cluster& cluster,
                     const std::vector<hw::NodeId>& clients) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    nicProbes(t, "client/" + std::to_string(i), cluster.node(clients[i]));
  }
}

}  // namespace

void registerProbes(obs::Telemetry& t, DaosTestbed& tb) {
  daos::DaosSystem& sys = tb.daos();
  for (int e = 0; e < sys.engineCount(); ++e) {
    daos::Engine& engine = sys.engine(e);
    const std::string sp = "server/" + std::to_string(e);
    nicProbes(t, sp, tb.cluster().node(engine.node()));
    for (int tg = 0; tg < engine.targetCount(); ++tg) {
      daos::Target& target = engine.target(tg);
      const std::string tp = sp + "/target/" + std::to_string(tg);
      deviceProbes(t, tp + "/nvme", target.device());
      stationProbes(t, tp + "/xs", target.xstream());
      vosProbes(t, tp + "/vos", target.store());
    }
  }
  {
    const sim::QueueStation& ps = sys.poolService().station();
    t.addProbe("server/ps/busy_frac", Kind::kRate,
               [&ps] { return sim::toSeconds(ps.busyTime()); });
  }
  // Pool health: degraded-read rate and fail/exclusion gauges (flat zero
  // on a healthy run; driven by apps::FaultInjector).
  t.addProbe("daos/degraded_read_per_s", Kind::kRate,
             [&sys] { return static_cast<double>(sys.degradedReads()); });
  t.addProbe("daos/targets_failed", Kind::kGauge,
             [&sys] { return static_cast<double>(sys.failedTargets()); });
  t.addProbe("daos/targets_excluded", Kind::kGauge,
             [&sys] { return static_cast<double>(sys.excludedTargets()); });
  clientNicProbes(t, tb.cluster(), tb.clients());
  std::unordered_map<hw::NodeId, std::size_t> client_index;
  for (std::size_t i = 0; i < tb.clients().size(); ++i) {
    client_index[tb.clients()[i]] = i;
  }
  for (const auto& [node, daemon] : tb.daemons()) {
    const auto it = client_index.find(node);
    if (it == client_index.end()) continue;
    const std::string dp = "client/" + std::to_string(it->second) + "/dfuse";
    stationProbes(t, dp, daemon->threads(), daemon->config().fuse_threads);
    posix::DfuseDaemon* d = daemon.get();
    t.addProbe(dp + "/cache_hit_frac", Kind::kGauge, [d] {
      const std::uint64_t lookups = d->cacheLookups();
      return lookups ? static_cast<double>(d->cacheHits()) /
                           static_cast<double>(lookups)
                     : 0.0;
    });
  }
  netProbes(t, tb.cluster());
}

void registerProbes(obs::Telemetry& t, LustreTestbed& tb) {
  lustre::LustreSystem& sys = tb.lustre();
  for (int i = 0; i < sys.ostCount(); ++i) {
    const std::string op = "ost/" + std::to_string(i);
    deviceProbes(t, op + "/nvme", *sys.ost(i).device);
    stationProbes(t, op + "/cpu", sys.ost(i).cpu);
    vosProbes(t, op + "/vos", sys.ost(i).store);
  }
  stationProbes(t, "mds", sys.mdsStation(), sys.config().mds_threads);
  clientNicProbes(t, tb.cluster(), tb.clients());
  netProbes(t, tb.cluster());
}

void registerProbes(obs::Telemetry& t, CephTestbed& tb) {
  rados::CephCluster& sys = tb.ceph();
  for (int i = 0; i < sys.osdCount(); ++i) {
    const std::string op = "osd/" + std::to_string(i);
    deviceProbes(t, op + "/nvme", *sys.osd(i).device);
    stationProbes(t, op + "/threads", sys.osd(i).op_threads,
                  sys.config().osd_op_threads);
    vosProbes(t, op + "/vos", sys.osd(i).store);
  }
  clientNicProbes(t, tb.cluster(), tb.clients());
  netProbes(t, tb.cluster());
}

sim::Time parseDuration(const std::string& s) {
  return sim::parseDuration(s);  // canonical parser (sim/fault_plan.h)
}

std::string telemetryEnvFile() {
  const char* v = std::getenv("DAOSIM_TELEMETRY");
  return v ? std::string(v) : std::string();
}

sim::Time telemetryEnvInterval() {
  const char* v = std::getenv("DAOSIM_TELEMETRY_INTERVAL");
  return v ? parseDuration(v) : 10 * sim::kMillisecond;
}

void flushTelemetryEnv() {
  const std::string path = telemetryEnvFile();
  obs::TelemetryHub& hub = obs::TelemetryHub::global();
  if (path.empty() || hub.empty()) return;
  std::ofstream os(path);
  if (!os) return;
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    hub.writeJson(os);
  } else {
    hub.writeCsv(os);
  }
}

ScopedRunTelemetry::ScopedRunTelemetry(sim::Simulation& sim, std::string label,
                                       bool enabled, sim::Time interval)
    : label_(std::move(label)) {
  if (!enabled) return;
  t_.emplace(interval > 0 ? interval : telemetryEnvInterval());
  t_->attach(sim);
}

ScopedRunTelemetry::~ScopedRunTelemetry() {
  if (!t_.has_value()) return;
  t_->detach();
  obs::TelemetryHub::global().add(label_, std::move(*t_));
}

}  // namespace daosim::apps
