#include "rados/rados.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "hw/spec.h"
#include "obs/observer.h"
#include "sim/sync.h"
#include "placement/layout.h"
#include "placement/oid.h"

namespace daosim::rados {

namespace {

constexpr vos::ContId kRadosPool = 1;

/// Object names are hashed into a synthetic OID for the backing store.
placement::ObjectId objectOid(const std::string& name) {
  return placement::makeOid(placement::ObjClass::S1,
                            placement::dkeyHash(name), 0xffffff02u);
}

}  // namespace

CephCluster::CephCluster(hw::Cluster& cluster,
                         std::vector<hw::NodeId> osd_nodes,
                         hw::NodeId mon_node, CephConfig config)
    : cluster_(&cluster), config_(config), mon_node_(mon_node) {
  for (hw::NodeId node : osd_nodes) {
    hw::Node& n = cluster.node(node);
    if (static_cast<int>(n.driveCount()) < config.osds_per_node) {
      throw std::invalid_argument("CephCluster: node lacks NVMe drives");
    }
    for (int i = 0; i < config.osds_per_node; ++i) {
      osds_.push_back(std::make_unique<Osd>(
          cluster.sim(), node, n.drive(static_cast<std::size_t>(i)),
          "osd" + std::to_string(osds_.size()), config.osd_op_threads,
          config.retain_data));
      osds_.back()->op_threads.setTracePid(node);
    }
  }
}

int CephCluster::pgOf(const std::string& object) const {
  return static_cast<int>(placement::dkeyHash(object) %
                          static_cast<std::uint64_t>(config_.pg_count));
}

int CephCluster::primaryOsd(int pg) const {
  // Balanced PG->OSD map: with enough PGs every OSD owns pg_count/osd_count
  // of them, which is what CRUSH + the upmap balancer converge to on a
  // flat uniform-weight tree (the paper tuned PG count precisely to achieve
  // "balanced object placement across OSDs"). A permuted index keeps
  // adjacent PGs off adjacent OSDs.
  const auto n = static_cast<std::uint64_t>(osds_.size());
  const std::uint64_t salt =
      sim::mix64(static_cast<std::uint64_t>(pg) / n);  // per-round shuffle
  return static_cast<int>((static_cast<std::uint64_t>(pg) + salt) % n);
}

std::vector<int> CephCluster::upSet(int pg) const {
  std::vector<int> osds;
  const int n = osdCount();
  const int primary = primaryOsd(pg);
  for (int r = 0; r < config_.replica_count && r < n; ++r) {
    // Secondaries follow the primary in a per-PG stride walk, keeping the
    // set distinct and balanced.
    osds.push_back((primary + r * (1 + pg % (n > 1 ? n - 1 : 1))) % n);
  }
  // De-duplicate in the rare stride-collision case.
  for (std::size_t i = 1; i < osds.size(); ++i) {
    while (std::find(osds.begin(), osds.begin() + static_cast<long>(i),
                     osds[i]) != osds.begin() + static_cast<long>(i)) {
      osds[i] = (osds[i] + 1) % n;
    }
  }
  return osds;
}

std::uint64_t CephCluster::bytesStored() const {
  std::uint64_t total = 0;
  for (const auto& osd : osds_) total += osd->store.bytesStored();
  return total;
}

sim::Task<void> RadosClient::connect() {
  co_await net::request(ceph_->cluster(), node_, ceph_->monNode(),
                        0);
  co_await ceph_->cluster().sim().delay(50 * sim::kMicrosecond);
  co_await net::respond(ceph_->cluster(), ceph_->monNode(), node_,
                        64 * 1024);  // cluster + PG maps
}

namespace {

/// Persist one replica of a write on an OSD (op pipeline + device).
sim::Task<void> persistOnOsd(CephCluster* ceph, CephCluster::Osd* osd,
                             std::string object, std::uint64_t offset,
                             vos::Payload data, obs::OpId op) {
  co_await osd->op_threads.exec(ceph->config().osd_op_cpu, op);
  const auto amplified = static_cast<std::uint64_t>(
      static_cast<double>(data.size()) * ceph->config().write_amplification);
  co_await osd->device->write(amplified, op);
  osd->store.extentWrite(kRadosPool, objectOid(object), "", "0", offset,
                         std::move(data));
}

/// Replicate a write from the primary to one secondary OSD.
sim::Task<void> replicateToOsd(CephCluster* ceph, hw::NodeId primary_node,
                               int osd_id, std::string object,
                               std::uint64_t offset, vos::Payload data,
                               obs::OpId op) {
  CephCluster::Osd& sec = ceph->osd(osd_id);
  co_await net::request(ceph->cluster(), primary_node, sec.node,
                        object.size() + data.size(), op);
  co_await persistOnOsd(ceph, &sec, std::move(object), offset,
                        std::move(data), op);
  co_await net::respond(ceph->cluster(), sec.node, primary_node, 0, op);
}

}  // namespace

sim::Task<void> RadosClient::write(std::string object, std::uint64_t offset,
                                   vos::Payload data) {
  if (offset + data.size() > ceph_->config().max_object_bytes) {
    throw std::invalid_argument("rados write: beyond max object size");
  }
  auto span = obs::beginOp(ceph_->cluster().sim(), "rados.write", node_,
                           "rados");
  const std::vector<int> up = ceph_->upSet(ceph_->pgOf(object));
  CephCluster::Osd& primary = ceph_->osd(up.front());
  co_await net::request(ceph_->cluster(), node_, primary.node,
                        object.size() + data.size(),
                        span.id());
  // The primary persists locally and forwards to the secondaries in
  // parallel; the client ack waits for the whole up set.
  std::vector<sim::Task<void>> ops;
  ops.push_back(persistOnOsd(ceph_, &primary, object, offset, data, span.id()));
  for (std::size_t r = 1; r < up.size(); ++r) {
    ops.push_back(replicateToOsd(ceph_, primary.node, up[r], object, offset,
                                 data, span.id()));
  }
  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else {
    co_await sim::whenAll(ceph_->cluster().sim(), std::move(ops));
  }
  co_await net::respond(ceph_->cluster(), primary.node, node_, 0, span.id());
}

sim::Task<vos::Payload> RadosClient::read(std::string object,
                                          std::uint64_t offset,
                                          std::uint64_t length) {
  auto span = obs::beginOp(ceph_->cluster().sim(), "rados.read", node_,
                           "rados");
  CephCluster::Osd& osd = ceph_->osd(ceph_->primaryOsd(ceph_->pgOf(object)));
  co_await net::request(ceph_->cluster(), node_, osd.node,
                        object.size(), span.id());
  // The OSD op thread is held for the pipeline work (crc, copies); the
  // device read queues independently underneath.
  const sim::Time held = co_await osd.op_threads.enter(span.id());
  std::exception_ptr err;
  vos::ExtentTree::ReadResult r;
  try {
    co_await ceph_->cluster().sim().delay(
        ceph_->config().osd_op_cpu +
        hw::transferTime(length, ceph_->config().read_path_gibps));
    r = osd.store.extentRead(kRadosPool, objectOid(object), "", "0", offset,
                             length);
    if (r.bytes_found > 0) co_await osd.device->read(r.bytes_found, span.id());
  } catch (...) {
    err = std::current_exception();
  }
  osd.op_threads.leave(held, span.id());
  if (err) std::rethrow_exception(err);
  co_await net::respond(ceph_->cluster(), osd.node, node_, length, span.id());
  co_return std::move(r.data);
}

sim::Task<std::uint64_t> RadosClient::stat(std::string object) {
  CephCluster::Osd& osd = ceph_->osd(ceph_->primaryOsd(ceph_->pgOf(object)));
  co_await net::request(ceph_->cluster(), node_, osd.node,
                        object.size());
  co_await osd.op_threads.exec(ceph_->config().osd_op_cpu / 2);
  const std::uint64_t size =
      osd.store.extentEnd(kRadosPool, objectOid(object), "", "0");
  co_await net::respond(ceph_->cluster(), osd.node, node_, 32);
  co_return size;
}

sim::Task<void> RadosClient::remove(std::string object) {
  CephCluster::Osd& osd = ceph_->osd(ceph_->primaryOsd(ceph_->pgOf(object)));
  co_await net::request(ceph_->cluster(), node_, osd.node,
                        object.size());
  co_await osd.op_threads.exec(ceph_->config().osd_op_cpu);
  co_await osd.device->write(4096);  // deletion journal record
  osd.store.punchObject(kRadosPool, objectOid(object));
  co_await net::respond(ceph_->cluster(), osd.node, node_, 0);
}

}  // namespace daosim::rados
