// Ceph-like object store: OSDs, placement groups, and a librados-style
// client.
//
// Deployment matches the paper's §III-F: 16 OSDs per NVMe node (one per
// device) plus a monitor node, no replication. Key modelled properties:
//   * objects are NOT sharded — an object lives entirely on its PG's
//     primary OSD (the paper's explanation for IOR's poor Ceph numbers);
//   * object size is capped (132 MiB recommended maximum);
//   * placement: hash(object) -> PG (pg_count configurable, 1024 optimal in
//     the paper), stable pseudo-random PG -> OSD mapping;
//   * BlueStore cost model: write amplification (WAL + rocksdb compaction)
//     and a per-op OSD pipeline cost (messenger, crc, throttles) that caps
//     per-OSD bandwidth at roughly two thirds of the raw device — the
//     "reasonable, albeit suboptimal" performance of §III-F.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "net/rpc.h"
#include "sim/queue_station.h"
#include "vos/target_store.h"

namespace daosim::rados {

struct CephConfig {
  int osds_per_node = 16;
  int pg_count = 1024;
  /// Replicas per object (1 = none, as the paper deployed). With more, the
  /// primary OSD forwards each write to the secondaries and acknowledges
  /// after all have persisted it; reads are served by the primary.
  int replica_count = 1;
  std::uint64_t max_object_bytes = 132ULL << 20;
  /// BlueStore write amplification (WAL + metadata compaction).
  double write_amplification = 1.30;
  /// Per-op OSD pipeline CPU (messenger, crc, pg lock, throttles).
  sim::Time osd_op_cpu = 130 * sim::kMicrosecond;
  /// Op threads per OSD; reads hold one for the whole pipeline, so this
  /// together with read_path_gibps caps per-OSD read bandwidth at roughly
  /// 2/3 of the raw device — the paper's §III-F observation.
  int osd_op_threads = 1;
  /// Read-path streaming rate per op thread (crc verify + buffer copies).
  double read_path_gibps = 0.58;
  bool retain_data = true;
};

class CephCluster {
 public:
  CephCluster(hw::Cluster& cluster, std::vector<hw::NodeId> osd_nodes,
              hw::NodeId mon_node, CephConfig config = {});

  hw::Cluster& cluster() noexcept { return *cluster_; }
  const CephConfig& config() const noexcept { return config_; }
  hw::NodeId monNode() const noexcept { return mon_node_; }
  int osdCount() const noexcept { return static_cast<int>(osds_.size()); }

  struct Osd {
    Osd(sim::Simulation& sim, hw::NodeId n, hw::NvmeDevice& d,
        std::string name, int threads, bool retain)
        : node(n),
          device(&d),
          op_threads(sim, std::move(name), threads),
          store(retain) {}
    hw::NodeId node;
    hw::NvmeDevice* device;
    sim::QueueStation op_threads;
    vos::TargetStore store;
  };
  Osd& osd(int id) noexcept { return *osds_[static_cast<std::size_t>(id)]; }

  /// hash(object name) -> placement group.
  int pgOf(const std::string& object) const;
  /// Stable PG -> primary OSD mapping.
  int primaryOsd(int pg) const;
  /// The PG's full up set (primary first, `replica_count` entries).
  std::vector<int> upSet(int pg) const;

  std::uint64_t bytesStored() const;

 private:
  hw::Cluster* cluster_;
  CephConfig config_;
  hw::NodeId mon_node_;
  std::vector<std::unique_ptr<Osd>> osds_;
};

/// librados-style client (one per simulated process).
class RadosClient {
 public:
  RadosClient(CephCluster& ceph, hw::NodeId client_node)
      : ceph_(&ceph), node_(client_node) {}

  /// Connect: one monitor round trip to fetch the cluster/PG maps.
  sim::Task<void> connect();

  /// rados_write: throws std::invalid_argument beyond the object size cap.
  sim::Task<void> write(std::string object, std::uint64_t offset,
                        vos::Payload data);
  sim::Task<void> writeFull(std::string object, vos::Payload data) {
    return write(std::move(object), 0, std::move(data));
  }
  sim::Task<vos::Payload> read(std::string object, std::uint64_t offset,
                               std::uint64_t length);
  /// rados_stat: object size (0 if absent).
  sim::Task<std::uint64_t> stat(std::string object);
  sim::Task<void> remove(std::string object);

 private:
  CephCluster* ceph_;
  hw::NodeId node_;
};

}  // namespace daosim::rados
