#include "net/rpc.h"

#include <exception>
#include <memory>

#include "sim/simulation.h"
#include "sim/sync.h"

namespace daosim::net {

namespace {

/// Shared state of one attempt/timeout race. Heap-held via shared_ptr so
/// the losing leg (a transfer still in flight, or the pending timer) can
/// outlive the retry loop's iteration safely. A shared_ptr is a plain data
/// coroutine parameter, so this stays within the GCC-12 closure-parameter
/// rule (see rpc.h).
struct AttemptState {
  explicit AttemptState(sim::Simulation& s) : done(s) {}
  sim::Event done;
  bool completed = false;  // the transfer finished (ok or error)
  std::exception_ptr error;
};

sim::Task<void> attemptLeg(std::shared_ptr<AttemptState> st,
                           hw::Cluster* cluster, hw::NodeId src,
                           hw::NodeId dst, std::uint64_t bytes, obs::OpId op,
                           obs::Cat cat) {
  std::exception_ptr err;  // co_await is not allowed inside a handler
  try {
    co_await cluster->send(src, dst, bytes, op, cat);
  } catch (...) {
    err = std::current_exception();
  }
  st->error = err;
  st->completed = true;
  st->done.set();
}

sim::Task<void> attemptTimer(std::shared_ptr<AttemptState> st,
                             sim::Simulation* sim, sim::Time d) {
  co_await sim->delay(d);
  st->done.set();
}

/// Only transient network faults are worth resending.
bool retryable(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const hw::NetworkDown&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

sim::Time backoffDelay(const RetryPolicy& p, int attempt, sim::Rng& rng) {
  sim::Time b = p.backoff_base;
  for (int i = 0; i < attempt && b < p.backoff_cap; ++i) b *= 2;
  if (b > p.backoff_cap) b = p.backoff_cap;
  if (b < 2) return b;
  return b / 2 + rng.uniform(0, b / 2);
}

sim::Task<void> sendWithRetry(hw::Cluster* cluster, hw::NodeId src,
                              hw::NodeId dst, std::uint64_t wire_bytes,
                              RetryPolicy policy, obs::OpId op,
                              obs::Cat cat) {
  if (!policy.enabled()) {
    // Zero-retry fast path: identical event schedule to the policy-free
    // request()/respond() (no timer, no extra frames, no RNG draw).
    co_await cluster->send(src, dst, wire_bytes, op, cat);
    co_return;
  }
  if (cluster->shardGroup() != nullptr) {
    // Sharded retry loop. The spawn-and-join timeout race below cannot
    // cross shards, so the attempt itself carries the deadline: a losing
    // transfer still occupies both NICs (the reservation stands), but the
    // caller migrates back to the source shard at the deadline and resends
    // from there. Jitter comes from a private stream keyed on the call
    // (src, dst, first-attempt time) — never the kernel PRNG, whose lanes
    // are per-shard — so the backoff schedule is shard-count-invariant.
    sim::Simulation& ssim = cluster->node(src).sim();
    sim::Rng jitter(sim::hashCombine(
        sim::hashCombine(static_cast<std::uint64_t>(ssim.now()),
                         (static_cast<std::uint64_t>(src) << 32) |
                             static_cast<std::uint32_t>(dst)),
        0x72747279u));
    for (int attempt = 0;; ++attempt) {
      const sim::Time deadline =
          policy.timeout > 0 ? ssim.now() + policy.timeout : 0;
      const hw::Cluster::SendOutcome out = co_await cluster->shardedSendAttempt(
          src, dst, wire_bytes, op, cat, deadline);
      if (out == hw::Cluster::SendOutcome::kDelivered) co_return;
      const bool timed = out == hw::Cluster::SendOutcome::kTimedOut;
      if (timed) cluster->noteRpcTimeout();
      if (attempt >= policy.max_retries) {
        throw RetryExhausted(attempt + 1, timed);
      }
      cluster->noteRpcRetry();
      const sim::Time pause = backoffDelay(policy, attempt, jitter);
      if (pause > 0) co_await ssim.delay(pause);
    }
  }
  sim::Simulation& sim = cluster->sim();
  for (int attempt = 0;; ++attempt) {
    bool timed_out = false;
    std::exception_ptr error;
    if (policy.timeout == 0) {
      try {
        co_await cluster->send(src, dst, wire_bytes, op, cat);
      } catch (...) {
        error = std::current_exception();
      }
    } else {
      auto st = std::make_shared<AttemptState>(sim);
      sim.spawn(attemptLeg(st, cluster, src, dst, wire_bytes, op, cat));
      sim.spawn(attemptTimer(st, &sim, policy.timeout));
      co_await st->done.wait();
      timed_out = !st->completed;
      error = st->error;
    }
    if (!timed_out && !error) co_return;
    if (timed_out) cluster->noteRpcTimeout();
    if (error && !retryable(error)) std::rethrow_exception(error);
    if (attempt >= policy.max_retries) {
      throw RetryExhausted(attempt + 1, timed_out);
    }
    cluster->noteRpcRetry();
    const sim::Time pause = backoffDelay(policy, attempt, sim.rng());
    if (pause > 0) co_await sim.delay(pause);
  }
}

}  // namespace daosim::net
