// RPC retry policy: per-attempt timeouts with capped exponential backoff.
//
// Kept in its own small header so daos::DaosConfig can embed a policy
// without pulling in the full cluster model. The policy is plain data; all
// jitter is drawn from the owning simulation's kernel PRNG (never the wall
// clock), so retry schedules are bit-reproducible serially and under
// --jobs N.
#pragma once

#include <stdexcept>
#include <string>

#include "sim/rng.h"
#include "sim/time.h"

namespace daosim::net {

struct RetryPolicy {
  /// Per-attempt timeout; 0 waits forever (pre-fault-injection behaviour).
  sim::Time timeout = 0;
  /// Resends after the first attempt; 0 disables retrying entirely.
  int max_retries = 0;
  /// Backoff before resend k is in [base*2^k / 2, base*2^k], capped.
  sim::Time backoff_base = 500 * sim::kMicrosecond;
  sim::Time backoff_cap = 50 * sim::kMillisecond;

  /// A disabled policy takes the exact fast path of the policy-free
  /// net::request / net::respond: one await of Cluster::send, no timer
  /// race, no RNG draw — byte-identical timing.
  bool enabled() const noexcept { return timeout != 0 || max_retries != 0; }

  /// The chaos default daosim_run --faults enables: rides through NIC
  /// flaps of up to ~50ms and queue stalls of a few ms.
  static RetryPolicy chaosDefault() noexcept {
    RetryPolicy p;
    p.timeout = 5 * sim::kMillisecond;
    p.max_retries = 8;
    return p;
  }
};

/// Typed error surfaced when the retry budget is exhausted: the caller
/// knows how many attempts were made and whether the last one timed out
/// (vs. failing fast on a downed link).
class RetryExhausted : public std::runtime_error {
 public:
  RetryExhausted(int attempts, bool timed_out)
      : std::runtime_error(
            "rpc failed after " + std::to_string(attempts) +
            (timed_out ? " attempts (last: timeout)"
                       : " attempts (last: network down)")),
        attempts_(attempts),
        timed_out_(timed_out) {}

  int attempts() const noexcept { return attempts_; }
  bool timedOut() const noexcept { return timed_out_; }

 private:
  int attempts_;
  bool timed_out_;
};

/// Backoff before resend `attempt` (0-based): capped exponential with
/// half-jitter from `rng` — deterministic for a given kernel RNG state,
/// and never synchronizing concurrent retriers into lockstep.
sim::Time backoffDelay(const RetryPolicy& p, int attempt, sim::Rng& rng);

}  // namespace daosim::net
