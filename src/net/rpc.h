// Minimal unary RPC model over hw::Cluster.
//
// An RPC is written inline at the call site as two legs around the server
// work:
//
//   co_await net::request(cluster, client, server, request_bytes);
//   <server-side work: engine coroutines charging CPU/device stations>
//   co_await net::respond(cluster, server, client, response_bytes);
//
// The response leg charges the bulk payload on the return path, as a real
// RDMA-read/bulk-put transport would.
//
// NOTE (coroutine discipline): we deliberately do NOT offer a
// callback-taking `call(work)` helper. GCC 12 miscompiles lambda-closure
// types passed by value as coroutine parameters (the synthesized move into
// the coroutine frame reads from a wrong member offset and the closure is
// destroyed twice — verified in this repo's history). Every coroutine in
// this codebase therefore takes only plain data parameters.
#pragma once

#include <cstdint>

#include "hw/cluster.h"
#include "net/retry.h"
#include "obs/observer.h"
#include "sim/task.h"

namespace daosim::net {

/// Typical request/metadata message sizes (bytes) shared by protocol layers.
inline constexpr std::uint64_t kSmallRequest = 384;
inline constexpr std::uint64_t kSmallResponse = 256;

/// Request leg: client -> server carrying `payload_bytes` of request body on
/// top of the protocol header (`kSmallRequest`, added here — callers pass
/// only the payload, symmetric with `respond`). A nonzero `op` records the
/// transfer as a net-request leg of that op.
inline sim::Task<void> request(hw::Cluster& cluster, hw::NodeId src,
                               hw::NodeId dst, std::uint64_t payload_bytes,
                               obs::OpId op = 0) {
  co_await cluster.send(src, dst, payload_bytes + kSmallRequest, op,
                        obs::Cat::kNetRequest);
}

/// Response leg: server -> client carrying `payload_bytes` of response body
/// plus the status header.
inline sim::Task<void> respond(hw::Cluster& cluster, hw::NodeId src,
                               hw::NodeId dst, std::uint64_t payload_bytes,
                               obs::OpId op = 0) {
  co_await cluster.send(src, dst, payload_bytes + kSmallResponse, op,
                        obs::Cat::kNetResponse);
}

// ---- retrying variants (fault-injection robustness layer) ----------------
//
// One send attempt with `policy` semantics: a per-attempt timeout races the
// transfer (the losing transfer keeps charging the wire — the message is
// already in flight, only the caller's wait is bounded), failed/timed-out
// attempts are resent after a capped exponential backoff with half-jitter
// from the kernel PRNG, and an exhausted budget surfaces RetryExhausted.
// Only transient network faults (hw::NetworkDown, timeouts) are retried;
// anything else propagates immediately. With a disabled policy this is
// exactly one `co_await cluster.send(...)` — the zero-retry fast path the
// conformance suite pins byte-for-byte.
sim::Task<void> sendWithRetry(hw::Cluster* cluster, hw::NodeId src,
                              hw::NodeId dst, std::uint64_t wire_bytes,
                              RetryPolicy policy, obs::OpId op, obs::Cat cat);

/// Request leg under a retry policy (header added here, as above).
inline sim::Task<void> request(hw::Cluster& cluster, hw::NodeId src,
                               hw::NodeId dst, std::uint64_t payload_bytes,
                               RetryPolicy policy, obs::OpId op = 0) {
  return sendWithRetry(&cluster, src, dst, payload_bytes + kSmallRequest,
                       policy, op, obs::Cat::kNetRequest);
}

/// Response leg under a retry policy.
inline sim::Task<void> respond(hw::Cluster& cluster, hw::NodeId src,
                               hw::NodeId dst, std::uint64_t payload_bytes,
                               RetryPolicy policy, obs::OpId op = 0) {
  return sendWithRetry(&cluster, src, dst, payload_bytes + kSmallResponse,
                       policy, op, obs::Cat::kNetResponse);
}

}  // namespace daosim::net
