#include "posix/dfuse.h"

#include <exception>

#include "hw/spec.h"
#include "obs/observer.h"

namespace daosim::posix {

namespace {

dfs::OpenFlags toDfsFlags(OpenFlags f) {
  return dfs::OpenFlags{.create = f.create,
                        .truncate = f.truncate,
                        .exclusive = f.exclusive};
}

FileStat fromDfsStat(const dfs::Stat& st) {
  return FileStat{.is_directory = st.type == dfs::EntryType::kDirectory,
                  .size = st.size};
}

}  // namespace

// --- DfuseDaemon caches -----------------------------------------------

std::optional<dfs::DirEntry> DfuseDaemon::dentryHit(
    const std::string& path) const {
  if (!config_.dentry_cache) return std::nullopt;
  ++cache_lookups_;
  auto it = dentry_cache_.find(path);
  if (it == dentry_cache_.end()) return std::nullopt;
  ++cache_hits_;
  return it->second;
}

void DfuseDaemon::dentryStore(const std::string& path,
                              const dfs::DirEntry& e) {
  if (config_.dentry_cache) dentry_cache_[path] = e;
}

std::optional<FileStat> DfuseDaemon::attrHit(const std::string& path) const {
  if (!config_.attr_cache) return std::nullopt;
  ++cache_lookups_;
  auto it = attr_cache_.find(path);
  if (it == attr_cache_.end()) return std::nullopt;
  ++cache_hits_;
  return it->second;
}

void DfuseDaemon::attrStore(const std::string& path, const FileStat& st) {
  if (config_.attr_cache) attr_cache_[path] = st;
}

Payload* DfuseDaemon::dataHit(const std::string& path, std::uint64_t offset,
                              std::uint64_t length) {
  if (!config_.data_cache) return nullptr;
  ++cache_lookups_;
  auto fit = data_cache_.find(path);
  if (fit == data_cache_.end()) return nullptr;
  auto bit = fit->second.find(offset);
  if (bit == fit->second.end() || bit->second.size() != length) {
    return nullptr;
  }
  ++cache_hits_;
  return &bit->second;
}

void DfuseDaemon::dataStore(const std::string& path, std::uint64_t offset,
                            const Payload& block) {
  if (config_.data_cache) data_cache_[path][offset] = block;
}

void DfuseDaemon::invalidate(const std::string& path) {
  dentry_cache_.erase(path);
  attr_cache_.erase(path);
  data_cache_.erase(path);
}

// --- DfsVfs: direct libdfs ---------------------------------------------

namespace {
// Small client-side library cost per libdfs entry point.
constexpr sim::Time kDfsCpu = 1 * sim::kMicrosecond;
}  // namespace

sim::Task<Fd> DfsVfs::open(std::string path, OpenFlags flags) {
  co_await fs_.client().sim().delay(kDfsCpu);
  dfs::File f = co_await fs_.open(path, toDfsFlags(flags));
  const Fd fd = allocFd(flags.append);
  if (flags.append) cursor(fd).offset = co_await fs_.size(f);
  files_.emplace(fd, std::move(f));
  co_return fd;
}

sim::Task<void> DfsVfs::close(Fd fd) {
  co_await fs_.client().sim().delay(kDfsCpu);
  files_.erase(fd);
  releaseFd(fd);
}

sim::Task<std::uint64_t> DfsVfs::pwrite(Fd fd, std::uint64_t offset,
                                        Payload data) {
  auto span = fs_.client().beginOp("dfs.pwrite");
  co_await fs_.client().sim().delay(kDfsCpu);
  co_return co_await fs_.write(files_.at(fd), offset, std::move(data));
}

sim::Task<Payload> DfsVfs::pread(Fd fd, std::uint64_t offset,
                                 std::uint64_t length) {
  auto span = fs_.client().beginOp("dfs.pread");
  co_await fs_.client().sim().delay(kDfsCpu);
  co_return co_await fs_.read(files_.at(fd), offset, length);
}

sim::Task<FileStat> DfsVfs::stat(std::string path) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_return fromDfsStat(co_await fs_.stat(std::move(path)));
}

sim::Task<FileStat> DfsVfs::fstat(Fd fd) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_return FileStat{.is_directory = false,
                     .size = co_await fs_.size(files_.at(fd))};
}

sim::Task<void> DfsVfs::fsync(Fd) {
  // DAOS writes are durable when acknowledged; fsync is a client no-op.
  co_await fs_.client().sim().delay(kDfsCpu);
}

sim::Task<void> DfsVfs::mkdir(std::string path) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_await fs_.mkdir(std::move(path));
}

sim::Task<void> DfsVfs::mkdirs(std::string path) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_await fs_.mkdirs(std::move(path));
}

sim::Task<void> DfsVfs::unlink(std::string path) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_await fs_.unlink(std::move(path));
}

sim::Task<std::vector<std::string>> DfsVfs::readdir(std::string path) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_return co_await fs_.readdir(std::move(path));
}

sim::Task<void> DfsVfs::truncate(std::string path, std::uint64_t size) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_await fs_.truncate(std::move(path), size);
}

sim::Task<void> DfsVfs::rename(std::string from, std::string to) {
  co_await fs_.client().sim().delay(kDfsCpu);
  co_await fs_.rename(std::move(from), std::move(to));
}

// --- DfuseVfs -----------------------------------------------------------

sim::Task<void> DfuseVfs::crossing() {
  co_await daemon_->sim().delay(daemon_->config().kernel_crossing);
}

sim::Task<Fd> DfuseVfs::open(std::string path, OpenFlags flags) {
  auto span = daemon_->fs().client().beginOp("dfuse.open");
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter(span.id());
  std::exception_ptr err;
  std::optional<dfs::File> f;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    auto cached = daemon_->dentryHit(path);
    if (cached.has_value() && !flags.truncate) {
      f.emplace(dfs::File{*cached, daos::Array::openWithAttrs(
                                       daemon_->fs().client(),
                                       daemon_->fs().container(), cached->oid,
                                       {.cell_size = 1,
                                        .chunk_size = cached->chunk_size})});
    } else {
      f.emplace(co_await daemon_->fs().open(path, toDfsFlags(flags)));
      daemon_->dentryStore(path, f->entry);
    }
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held, span.id());
  co_await crossing();
  if (err) std::rethrow_exception(err);

  const Fd fd = allocFd(flags.append);
  if (flags.append) {
    // O_APPEND initial position comes from the open response attributes.
    co_await crossing();
    const sim::Time held2 = co_await daemon_->threads().enter(span.id());
    std::uint64_t size = 0;
    try {
      size = co_await daemon_->fs().size(*f);
    } catch (...) {
      err = std::current_exception();
    }
    daemon_->threads().leave(held2, span.id());
    co_await crossing();
    if (err) std::rethrow_exception(err);
    cursor(fd).offset = size;
  }
  paths_.emplace(fd, path);
  files_.emplace(fd, std::move(*f));
  co_return fd;
}

sim::Task<void> DfuseVfs::close(Fd fd) {
  co_await crossing();  // release goes through the kernel, asynchronously
  files_.erase(fd);
  paths_.erase(fd);
  releaseFd(fd);
}

sim::Task<std::uint64_t> DfuseVfs::pwrite(Fd fd, std::uint64_t offset,
                                          Payload data) {
  const auto& cfg = daemon_->config();
  auto span = daemon_->fs().client().beginOp("dfuse.pwrite");
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter(span.id());
  std::exception_ptr err;
  std::uint64_t n = 0;
  try {
    co_await daemon_->sim().delay(
        cfg.thread_cpu + hw::transferTime(data.size(), cfg.copy_gibps));
    daemon_->dataStore(paths_.at(fd), offset, data);
    n = co_await daemon_->fs().write(files_.at(fd), offset, std::move(data));
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held, span.id());
  co_await crossing();
  if (err) std::rethrow_exception(err);
  co_return n;
}

sim::Task<Payload> DfuseVfs::pread(Fd fd, std::uint64_t offset,
                                   std::uint64_t length) {
  const auto& cfg = daemon_->config();
  // Kernel page-cache hit: no daemon involvement at all.
  if (Payload* hit = daemon_->dataHit(paths_.at(fd), offset, length)) {
    co_await daemon_->sim().delay(cfg.cache_hit_cpu +
                                  hw::transferTime(length, cfg.copy_gibps));
    co_return *hit;
  }
  auto span = daemon_->fs().client().beginOp("dfuse.pread");
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter(span.id());
  std::exception_ptr err;
  Payload p;
  try {
    co_await daemon_->sim().delay(
        cfg.thread_cpu + hw::transferTime(length, cfg.copy_gibps));
    p = co_await daemon_->fs().read(files_.at(fd), offset, length);
    daemon_->dataStore(paths_.at(fd), offset, p);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held, span.id());
  co_await crossing();
  if (err) std::rethrow_exception(err);
  co_return p;
}

sim::Task<FileStat> DfuseVfs::stat(std::string path) {
  const auto& cfg = daemon_->config();
  if (auto hit = daemon_->attrHit(path)) {
    // Attribute cache lives in the kernel: a syscall, no daemon round trip.
    co_await daemon_->sim().delay(cfg.cache_hit_cpu);
    co_return *hit;
  }
  auto span = daemon_->fs().client().beginOp("dfuse.stat");
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter(span.id());
  std::exception_ptr err;
  FileStat st;
  try {
    co_await daemon_->sim().delay(cfg.thread_cpu);
    st = fromDfsStat(co_await daemon_->fs().stat(path));
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held, span.id());
  co_await crossing();
  if (err) std::rethrow_exception(err);
  daemon_->attrStore(path, st);
  co_return st;
}

sim::Task<FileStat> DfuseVfs::fstat(Fd fd) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  FileStat st;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    st.size = co_await daemon_->fs().size(files_.at(fd));
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
  co_return st;
}

sim::Task<void> DfuseVfs::fsync(Fd) {
  // Crossing + daemon handling; DAOS itself has nothing to flush.
  co_await crossing();
  co_await daemon_->threads().exec(daemon_->config().thread_cpu);
  co_await crossing();
}

sim::Task<void> DfuseVfs::mkdir(std::string path) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    co_await daemon_->fs().mkdir(path);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
}

sim::Task<void> DfuseVfs::mkdirs(std::string path) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    co_await daemon_->fs().mkdirs(path);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
}

sim::Task<void> DfuseVfs::unlink(std::string path) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    co_await daemon_->fs().unlink(path);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
  daemon_->invalidate(path);
}

sim::Task<std::vector<std::string>> DfuseVfs::readdir(std::string path) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  std::vector<std::string> names;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    names = co_await daemon_->fs().readdir(std::move(path));
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
  co_return names;
}

sim::Task<void> DfuseVfs::truncate(std::string path, std::uint64_t size) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    co_await daemon_->fs().truncate(path, size);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
  daemon_->invalidate(path);
}

sim::Task<void> DfuseVfs::rename(std::string from, std::string to) {
  co_await crossing();
  const sim::Time held = co_await daemon_->threads().enter();
  std::exception_ptr err;
  try {
    co_await daemon_->sim().delay(daemon_->config().thread_cpu);
    co_await daemon_->fs().rename(from, to);
  } catch (...) {
    err = std::current_exception();
  }
  daemon_->threads().leave(held);
  co_await crossing();
  if (err) std::rethrow_exception(err);
  daemon_->invalidate(from);
  daemon_->invalidate(to);
}

// --- InterceptVfs ---------------------------------------------------------

sim::Task<Fd> InterceptVfs::open(std::string path, OpenFlags flags) {
  // open() itself is not intercepted: it goes through DFUSE so the kernel
  // has a real file descriptor; the IL then binds the backing object
  // in-process (an ioctl on the dfuse fd — no extra DAOS RPC).
  const Fd dfuse_fd = co_await dfuse_.open(std::move(path), flags);
  const dfs::File& df = dfuse_.fileOf(dfuse_fd);
  const Fd fd = allocFd(flags.append);
  cursor(fd).offset = dfuse_.tell(dfuse_fd);  // mirrors the O_APPEND offset
  dfuse_fds_[fd] = dfuse_fd;
  files_.emplace(fd, dfs::File{df.entry,
                               daos::Array::openWithAttrs(
                                   fs_.client(), fs_.container(),
                                   df.entry.oid,
                                   {.cell_size = 1,
                                    .chunk_size = df.entry.chunk_size})});
  co_return fd;
}

sim::Task<void> InterceptVfs::close(Fd fd) {
  co_await dfuse_.close(dfuse_fds_.at(fd));
  dfuse_fds_.erase(fd);
  files_.erase(fd);
  releaseFd(fd);
}

sim::Task<std::uint64_t> InterceptVfs::pwrite(Fd fd, std::uint64_t offset,
                                              Payload data) {
  auto span = fs_.client().beginOp("il.pwrite");
  co_await fs_.client().sim().delay(il_cpu_);
  co_return co_await fs_.write(files_.at(fd), offset, std::move(data));
}

sim::Task<Payload> InterceptVfs::pread(Fd fd, std::uint64_t offset,
                                       std::uint64_t length) {
  auto span = fs_.client().beginOp("il.pread");
  co_await fs_.client().sim().delay(il_cpu_);
  co_return co_await fs_.read(files_.at(fd), offset, length);
}

sim::Task<FileStat> InterceptVfs::stat(std::string path) {
  co_return co_await dfuse_.stat(std::move(path));
}

sim::Task<FileStat> InterceptVfs::fstat(Fd fd) {
  co_return co_await dfuse_.fstat(dfuse_fds_.at(fd));
}

sim::Task<void> InterceptVfs::fsync(Fd) {
  // Intercepted: DAOS writes are already durable.
  co_await fs_.client().sim().delay(il_cpu_);
}

sim::Task<void> InterceptVfs::mkdir(std::string path) {
  co_await dfuse_.mkdir(std::move(path));
}

sim::Task<void> InterceptVfs::mkdirs(std::string path) {
  co_await dfuse_.mkdirs(std::move(path));
}

sim::Task<void> InterceptVfs::unlink(std::string path) {
  co_await dfuse_.unlink(std::move(path));
}

sim::Task<std::vector<std::string>> InterceptVfs::readdir(std::string path) {
  co_return co_await dfuse_.readdir(std::move(path));
}

sim::Task<void> InterceptVfs::truncate(std::string path, std::uint64_t size) {
  co_await dfuse_.truncate(std::move(path), size);
}

sim::Task<void> InterceptVfs::rename(std::string from, std::string to) {
  co_await dfuse_.rename(std::move(from), std::move(to));
}

}  // namespace daosim::posix
