// POSIX-style virtual file system interface.
//
// The benchmarks' POSIX backends (IOR POSIX mode, fdb-hammer POSIX mode,
// HDF5's POSIX driver) program against this interface; implementations are
// DFUSE, DFUSE + interception library, direct libdfs, and the Lustre
// client. One Vfs instance exists per simulated process (it owns the file
// descriptor table); node-level shared state (the DFUSE daemon, the Lustre
// client mount) lives behind it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/task.h"
#include "vos/payload.h"

namespace daosim::posix {

using vos::Payload;

struct OpenFlags {
  bool create = false;
  bool truncate = false;
  bool exclusive = false;
  bool append = false;
  bool read_only = false;

  static OpenFlags readOnly() { return {.read_only = true}; }
  static OpenFlags writeCreate() { return {.create = true, .truncate = true}; }
  static OpenFlags appendCreate() { return {.create = true, .append = true}; }
};

struct FileStat {
  bool is_directory = false;
  std::uint64_t size = 0;
};

using Fd = int;

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual sim::Task<Fd> open(std::string path, OpenFlags flags) = 0;
  virtual sim::Task<void> close(Fd fd) = 0;

  virtual sim::Task<std::uint64_t> pwrite(Fd fd, std::uint64_t offset,
                                          Payload data) = 0;
  virtual sim::Task<Payload> pread(Fd fd, std::uint64_t offset,
                                   std::uint64_t length) = 0;

  /// Sequential write at the fd's current offset (append-aware).
  sim::Task<std::uint64_t> write(Fd fd, Payload data);
  /// Sequential read at the fd's current offset.
  sim::Task<Payload> read(Fd fd, std::uint64_t length);
  void seek(Fd fd, std::uint64_t offset);
  std::uint64_t tell(Fd fd) const;

  virtual sim::Task<FileStat> stat(std::string path) = 0;
  virtual sim::Task<FileStat> fstat(Fd fd) = 0;
  virtual sim::Task<void> fsync(Fd fd) = 0;
  virtual sim::Task<void> mkdir(std::string path) = 0;
  virtual sim::Task<void> mkdirs(std::string path) = 0;
  virtual sim::Task<void> unlink(std::string path) = 0;
  virtual sim::Task<std::vector<std::string>> readdir(std::string path) = 0;
  virtual sim::Task<void> truncate(std::string path, std::uint64_t size) = 0;
  virtual sim::Task<void> rename(std::string from, std::string to) = 0;

 protected:
  struct Cursor {
    std::uint64_t offset = 0;
    bool append = false;
  };

  Fd allocFd(bool append) {
    const Fd fd = next_fd_++;
    cursors_[fd] = Cursor{0, append};
    return fd;
  }
  void releaseFd(Fd fd) { cursors_.erase(fd); }
  Cursor& cursor(Fd fd) { return cursors_.at(fd); }
  const Cursor& cursor(Fd fd) const { return cursors_.at(fd); }

 private:
  std::map<Fd, Cursor> cursors_;
  Fd next_fd_ = 3;  // 0-2 are reserved, as tradition demands
};

}  // namespace daosim::posix
