// DFUSE: the DAOS FUSE daemon, its cost model, and the three POSIX access
// paths the paper compares:
//
//   * DfsVfs        — direct libdfs calls from the process (IOR "DFS" API);
//   * DfuseVfs      — every operation crosses into the kernel, queues on the
//                     node's FUSE daemon thread pool (the thread is held for
//                     the full backend operation, as in synchronous FUSE
//                     request handling), and crosses back out;
//   * InterceptVfs  — the interception library: open/metadata go through
//                     DFUSE, but read/write/fsync are forwarded directly to
//                     libdfs in-process, skipping both kernel crossings and
//                     the daemon (the paper's DFUSE+IL configuration).
//
// The daemon supports the dfuse caching options (attr/dentry/data caches);
// the paper ran with caching disabled, which is the default here.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "dfs/dfs.h"
#include "posix/vfs.h"
#include "sim/queue_station.h"

namespace daosim::posix {

struct DfuseConfig {
  int fuse_threads = 24;              // paper: 24 FUSE threads
  int eq_threads = 12;                // paper: 12 event-queue threads
  sim::Time kernel_crossing = 25 * sim::kMicrosecond;  // each direction
  sim::Time thread_cpu = 12 * sim::kMicrosecond;       // per-request handling
  double copy_gibps = 8.0;            // kernel<->daemon data copy bandwidth
  bool attr_cache = false;
  bool dentry_cache = false;
  bool data_cache = false;
  sim::Time cache_hit_cpu = 2 * sim::kMicrosecond;
};

/// Per-node DFUSE daemon: thread pool + its own dfs mount + caches.
class DfuseDaemon {
 public:
  DfuseDaemon(sim::Simulation& sim, dfs::FileSystem fs, DfuseConfig config,
              std::string name = "dfuse")
      : fs_(std::move(fs)),
        config_(config),
        threads_(sim, std::move(name), config.fuse_threads),
        sim_(&sim) {}

  dfs::FileSystem& fs() noexcept { return fs_; }
  const DfuseConfig& config() const noexcept { return config_; }
  sim::QueueStation& threads() noexcept { return threads_; }
  sim::Simulation& sim() noexcept { return *sim_; }

  // --- caches ---------------------------------------------------------
  std::optional<dfs::DirEntry> dentryHit(const std::string& path) const;
  void dentryStore(const std::string& path, const dfs::DirEntry& e);
  std::optional<FileStat> attrHit(const std::string& path) const;
  void attrStore(const std::string& path, const FileStat& st);
  Payload* dataHit(const std::string& path, std::uint64_t offset,
                   std::uint64_t length);
  void dataStore(const std::string& path, std::uint64_t offset,
                 const Payload& block);
  void invalidate(const std::string& path);

  std::uint64_t cacheHits() const noexcept { return cache_hits_; }
  /// Cache probes attempted (hits + misses) while the respective cache is
  /// enabled; telemetry derives hit rate as d(hits)/d(lookups) per bin.
  std::uint64_t cacheLookups() const noexcept { return cache_lookups_; }

 private:
  dfs::FileSystem fs_;
  DfuseConfig config_;
  sim::QueueStation threads_;
  sim::Simulation* sim_;
  std::map<std::string, dfs::DirEntry> dentry_cache_;
  std::map<std::string, FileStat> attr_cache_;
  std::map<std::string, std::map<std::uint64_t, Payload>> data_cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_lookups_ = 0;
};

/// Direct libdfs access (per process).
class DfsVfs : public Vfs {
 public:
  explicit DfsVfs(dfs::FileSystem fs) : fs_(std::move(fs)) {}

  sim::Task<Fd> open(std::string path, OpenFlags flags) override;
  sim::Task<void> close(Fd fd) override;
  sim::Task<std::uint64_t> pwrite(Fd fd, std::uint64_t offset,
                                  Payload data) override;
  sim::Task<Payload> pread(Fd fd, std::uint64_t offset,
                           std::uint64_t length) override;
  sim::Task<FileStat> stat(std::string path) override;
  sim::Task<FileStat> fstat(Fd fd) override;
  sim::Task<void> fsync(Fd fd) override;
  sim::Task<void> mkdir(std::string path) override;
  sim::Task<void> mkdirs(std::string path) override;
  sim::Task<void> unlink(std::string path) override;
  sim::Task<std::vector<std::string>> readdir(std::string path) override;
  sim::Task<void> truncate(std::string path, std::uint64_t size) override;
  sim::Task<void> rename(std::string from, std::string to) override;

  dfs::FileSystem& fs() noexcept { return fs_; }

 private:
  dfs::FileSystem fs_;
  std::map<Fd, dfs::File> files_;
};

/// POSIX access through the node's DFUSE daemon (per process).
class DfuseVfs : public Vfs {
 public:
  explicit DfuseVfs(DfuseDaemon& daemon) : daemon_(&daemon) {}

  sim::Task<Fd> open(std::string path, OpenFlags flags) override;
  sim::Task<void> close(Fd fd) override;
  sim::Task<std::uint64_t> pwrite(Fd fd, std::uint64_t offset,
                                  Payload data) override;
  sim::Task<Payload> pread(Fd fd, std::uint64_t offset,
                           std::uint64_t length) override;
  sim::Task<FileStat> stat(std::string path) override;
  sim::Task<FileStat> fstat(Fd fd) override;
  sim::Task<void> fsync(Fd fd) override;
  sim::Task<void> mkdir(std::string path) override;
  sim::Task<void> mkdirs(std::string path) override;
  sim::Task<void> unlink(std::string path) override;
  sim::Task<std::vector<std::string>> readdir(std::string path) override;
  sim::Task<void> truncate(std::string path, std::uint64_t size) override;
  sim::Task<void> rename(std::string from, std::string to) override;

  /// Entry backing an open fd (used by the interception library).
  const dfs::File& fileOf(Fd fd) const { return files_.at(fd); }
  const std::string& pathOf(Fd fd) const { return paths_.at(fd); }

 private:
  // Cost helpers: kernel entry/exit and FUSE thread occupancy.
  sim::Task<void> crossing();

  DfuseDaemon* daemon_;
  std::map<Fd, dfs::File> files_;
  std::map<Fd, std::string> paths_;
};

/// DFUSE + interception library (per process): metadata via DFUSE, data ops
/// directly via an in-process libdfs handle.
class InterceptVfs : public Vfs {
 public:
  InterceptVfs(DfuseDaemon& daemon, dfs::FileSystem process_fs,
               sim::Time il_cpu = 2 * sim::kMicrosecond)
      : dfuse_(daemon), fs_(std::move(process_fs)), il_cpu_(il_cpu) {}

  sim::Task<Fd> open(std::string path, OpenFlags flags) override;
  sim::Task<void> close(Fd fd) override;
  sim::Task<std::uint64_t> pwrite(Fd fd, std::uint64_t offset,
                                  Payload data) override;
  sim::Task<Payload> pread(Fd fd, std::uint64_t offset,
                           std::uint64_t length) override;
  sim::Task<FileStat> stat(std::string path) override;
  sim::Task<FileStat> fstat(Fd fd) override;
  sim::Task<void> fsync(Fd fd) override;
  sim::Task<void> mkdir(std::string path) override;
  sim::Task<void> mkdirs(std::string path) override;
  sim::Task<void> unlink(std::string path) override;
  sim::Task<std::vector<std::string>> readdir(std::string path) override;
  sim::Task<void> truncate(std::string path, std::uint64_t size) override;
  sim::Task<void> rename(std::string from, std::string to) override;

 private:
  DfuseVfs dfuse_;
  dfs::FileSystem fs_;
  sim::Time il_cpu_;
  std::map<Fd, dfs::File> files_;  // IL-side handles
  std::map<Fd, Fd> dfuse_fds_;     // our fd -> underlying dfuse fd
};

}  // namespace daosim::posix
