#include "posix/vfs.h"

namespace daosim::posix {

sim::Task<std::uint64_t> Vfs::write(Fd fd, Payload data) {
  Cursor& c = cursor(fd);
  const std::uint64_t n = co_await pwrite(fd, c.offset, std::move(data));
  cursor(fd).offset += n;
  co_return n;
}

sim::Task<Payload> Vfs::read(Fd fd, std::uint64_t length) {
  Cursor& c = cursor(fd);
  Payload p = co_await pread(fd, c.offset, length);
  cursor(fd).offset += p.size();
  co_return p;
}

void Vfs::seek(Fd fd, std::uint64_t offset) { cursor(fd).offset = offset; }

std::uint64_t Vfs::tell(Fd fd) const { return cursor(fd).offset; }

}  // namespace daosim::posix
