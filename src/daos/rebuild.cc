#include "daos/rebuild.h"

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "vos/target_store.h"

namespace daosim::daos {

namespace {

/// A record captured from a source target for migration.
struct RecordCopy {
  std::string dkey;
  std::string akey;
  std::optional<Payload> value;                          // single-value
  std::vector<std::pair<std::uint64_t, Payload>> extents;  // extent tree

  std::uint64_t bytes() const {
    std::uint64_t n = value ? value->size() : 0;
    for (const auto& [_, p] : extents) n += p.size();
    return n;
  }
};

std::vector<RecordCopy> captureRecords(vos::TargetStore& store, ContId cont,
                                       const ObjectId& oid) {
  std::vector<RecordCopy> out;
  store.forEachRecord(cont, oid, [&](const vos::TargetStore::RecordView& v) {
    RecordCopy rc;
    rc.dkey = *v.dkey;
    rc.akey = *v.akey;
    if (v.value != nullptr) {
      rc.value = *v.value;
    } else if (v.tree != nullptr) {
      for (const auto& [off, p] : v.tree->extents()) {
        rc.extents.emplace_back(off, p);
      }
    }
    out.push_back(std::move(rc));
  });
  return out;
}

/// Charges a read of `bytes` on the source target and the transfer to the
/// destination node.
///
/// SHARD RESIDENCY: the caller must be running on the source node's shard
/// at entry (rebuild hops there before reading the source's store); the
/// coroutine resumes on the destination's shard — where the installRecord
/// that follows needs to be anyway. Serially the hops threaded through
/// rebuild are free no-ops, leaving the schedule bit-identical.
sim::Task<void> chargeMove(DaosSystem& sys, int src, int dst,
                           std::uint64_t bytes) {
  auto [src_engine, src_local] = sys.locateTarget(src);
  auto [dst_engine, dst_local] = sys.locateTarget(dst);
  const auto& cost = sys.config().engine;
  co_await src_engine->target(src_local).xstream().exec(cost.rpc_cpu);
  co_await src_engine->target(src_local).device().read(bytes);
  co_await sys.cluster().send(src_engine->node(), dst_engine->node(),
                              bytes + net::kSmallRequest);
  co_await dst_engine->target(dst_local).xstream().exec(cost.rpc_cpu);
}

/// The node a pool-global target lives on.
hw::NodeId targetNode(DaosSystem& sys, int global) {
  auto [engine, local] = sys.locateTarget(global);
  (void)local;
  return engine->node();
}

/// Installs a captured record on the destination target (charging the
/// device writes).
sim::Task<void> installRecord(DaosSystem& sys, int dst, ContId cont,
                              ObjectId oid, RecordCopy rc,
                              RebuildStats* stats) {
  auto [engine, local] = sys.locateTarget(dst);
  Target& t = engine->target(local);
  if (rc.value) {
    co_await t.device().write(
        std::max<std::uint64_t>(sys.config().engine.wal_bytes,
                                rc.value->size()));
    t.store().valuePut(cont, oid, rc.dkey, rc.akey, *rc.value);
    stats->bytes_moved += rc.value->size();
  }
  for (auto& [off, p] : rc.extents) {
    co_await t.device().write(p.size());
    stats->bytes_moved += p.size();
    t.store().extentWrite(cont, oid, rc.dkey, rc.akey, off, std::move(p));
  }
  stats->records_restored += 1;
}

/// Replication repair: copy every record of the object's shard from a
/// surviving replica to the spare. Enters and leaves on `home`'s shard.
sim::Task<void> repairReplicatedSlot(DaosSystem& sys, hw::NodeId home,
                                     ContId cont, ObjectId oid, int source,
                                     int dst, RebuildStats* stats) {
  auto [engine, local] = sys.locateTarget(source);
  const hw::NodeId src_node = engine->node();
  const hw::NodeId dst_node = targetNode(sys, dst);
  if (home != src_node) co_await sys.cluster().hop(home, src_node);
  std::vector<RecordCopy> records =
      captureRecords(engine->target(local).store(), cont, oid);
  for (auto& rc : records) {
    const std::uint64_t bytes = rc.bytes();
    co_await chargeMove(sys, source, dst, bytes);  // ends on dst's shard
    co_await installRecord(sys, dst, cont, oid, std::move(rc), stats);
    if (dst_node != src_node) {
      co_await sys.cluster().hop(dst_node, src_node);  // next source read
    }
  }
  if (src_node != home) co_await sys.cluster().hop(src_node, home);
}

/// Erasure-code repair: regenerate member `m`'s cells for every chunk from
/// the surviving cells and the XOR parity. Enters and leaves on `home`'s
/// shard; the walk hops to whichever node's store it reads next (node
/// identity is layout-independent, so the hop schedule does not depend on
/// the shard count — and serially every hop is a free no-op).
sim::Task<void> repairEcSlot(DaosSystem& sys, hw::NodeId home, ContId cont,
                             ObjectId oid,
                             const placement::Layout& old_layout, int group,
                             int m, int victim, int dst,
                             RebuildStats* stats) {
  const auto& spec = old_layout.spec;
  const int k = spec.ec_data;

  // Chunk dkeys from the first surviving data member.
  int witness = -1;
  for (int m2 = 0; m2 < k; ++m2) {
    if (old_layout.target(group, m2) != victim) {
      witness = old_layout.target(group, m2);
      break;
    }
  }
  if (witness < 0) co_return;  // cannot happen with a single failure
  auto [wit_engine, wit_local] = sys.locateTarget(witness);
  const hw::NodeId wit_node = wit_engine->node();
  auto [dst_engine, dst_local] = sys.locateTarget(dst);
  Target& dst_target = dst_engine->target(dst_local);
  const hw::NodeId dst_node = dst_engine->node();

  hw::NodeId at = home;
  if (at != wit_node) co_await sys.cluster().hop(at, wit_node);
  at = wit_node;
  const std::vector<std::string> dkeys =
      wit_engine->target(wit_local).store().listDkeys(cont, oid);

  // Single-value records (array attributes etc.) are replicated across the
  // group, so the spare gets a copy from the witness.
  {
    std::vector<RecordCopy> records =
        captureRecords(wit_engine->target(wit_local).store(), cont, oid);
    for (auto& rc : records) {
      if (!rc.value) continue;
      const std::uint64_t bytes = rc.bytes();
      co_await chargeMove(sys, witness, dst, bytes);
      co_await installRecord(sys, dst, cont, oid, std::move(rc), stats);
      at = dst_node;
      if (at != wit_node) co_await sys.cluster().hop(at, wit_node);
      at = wit_node;
    }
  }

  for (const std::string& dkey : dkeys) {
    if (dkey.size() != 8) continue;  // chunk dkeys only
    // Gather surviving data cells and the XOR parity for this chunk.
    std::vector<Payload> parts;
    std::uint64_t cell_len = 0;
    bool regular = true;
    for (int m2 = 0; m2 < k && regular; ++m2) {
      if (m2 == m) continue;
      const int src = old_layout.target(group, m2);
      auto [e, l] = sys.locateTarget(src);
      const hw::NodeId src_node = e->node();
      if (at != src_node) co_await sys.cluster().hop(at, src_node);
      at = src_node;
      const auto* tree = [&]() -> const vos::ExtentTree* {
        const vos::ExtentTree* found = nullptr;
        e->target(l).store().forEachRecord(
            cont, oid, [&](const vos::TargetStore::RecordView& v) {
              if (*v.dkey == dkey && *v.akey == "0" && v.tree != nullptr) {
                found = v.tree;
              }
            });
        return found;
      }();
      if (tree == nullptr || tree->extentCount() != 1) {
        regular = false;
        break;
      }
      const auto& [off, p] = *tree->extents().begin();
      (void)off;
      if (cell_len == 0) cell_len = p.size();
      if (p.size() != cell_len) regular = false;
      parts.push_back(p);
      co_await chargeMove(sys, src, dst, p.size());
      at = dst_node;
    }
    if (m != k) {  // data cell or secondary parity: need parity0 too
      const int psrc = old_layout.target(group, k);
      if (psrc != victim) {
        auto [e, l] = sys.locateTarget(psrc);
        const hw::NodeId p_node = e->node();
        if (at != p_node) co_await sys.cluster().hop(at, p_node);
        at = p_node;
        auto r = e->target(l).store().extentRead(cont, oid, dkey, "p", 0,
                                                 cell_len);
        if (r.bytes_found != cell_len) regular = false;
        parts.push_back(r.data);
        co_await chargeMove(sys, psrc, dst, cell_len);
        at = dst_node;
      }
    }
    if (!regular || cell_len == 0) {
      stats->records_unrecoverable += 1;
      continue;
    }
    if (at != dst_node) co_await sys.cluster().hop(at, dst_node);
    at = dst_node;
    // Reconstruction CPU on the destination, then the write.
    co_await sys.cluster().node(dst_node).sim().delay(
        sys.config().engine.ec_reconstruct_cpu);
    co_await dst_target.device().write(cell_len);
    stats->bytes_moved += cell_len;
    if (m < k) {
      Payload rebuilt = vos::xorPayloads(parts, cell_len);
      dst_target.store().extentWrite(
          cont, oid, dkey, "0",
          static_cast<std::uint64_t>(m) * cell_len, std::move(rebuilt));
    } else if (m == k) {
      // First parity cell: recompute the XOR of the data cells.
      Payload parity = vos::xorPayloads(parts, cell_len);
      dst_target.store().extentWrite(cont, oid, dkey, "p", 0,
                                     std::move(parity));
    } else {
      dst_target.store().extentWrite(cont, oid, dkey, "p", 0,
                                     Payload::synthetic(cell_len));
    }
    stats->records_restored += 1;
  }
  if (at != home) co_await sys.cluster().hop(at, home);
}

}  // namespace

sim::Task<RebuildStats> rebuild(DaosSystem& sys, int victim) {
  RebuildStats stats;
  // The rebuild coordinator lives on the pool-service leader: it is spawned
  // on the leader's simulation (the leader's shard, when sharded) and every
  // repair sub-walk starts and ends there.
  const hw::NodeId home = sys.poolService().leaderNode();
  sim::Simulation& hsim = sys.cluster().node(home).sim();
  const sim::Time t0 = hsim.now();

  // The pool map as it was before the exclusion.
  std::vector<std::uint8_t> old_alive = sys.aliveMap();
  old_alive[static_cast<std::size_t>(victim)] = 1;

  // Global object census (surviving shards only; the victim is not read).
  // The stores belong to their engines' shards, so the walk visits each
  // server in person — serially the hops are free no-ops.
  std::set<std::pair<ContId, ObjectId>> objects;
  hw::NodeId at = home;
  for (int e = 0; e < sys.engineCount(); ++e) {
    Engine& engine = sys.engine(e);
    if (at != engine.node()) co_await sys.cluster().hop(at, engine.node());
    at = engine.node();
    for (int t = 0; t < engine.targetCount(); ++t) {
      const int global = e * sys.config().targets_per_engine + t;
      if (global == victim) continue;
      for (auto& co : engine.target(t).store().listObjects()) {
        objects.insert(co);
      }
    }
  }
  if (at != home) co_await sys.cluster().hop(at, home);

  for (const auto& [cont, oid] : objects) {
    stats.objects_scanned += 1;
    const placement::Layout old_layout = sys.layoutUnder(oid, old_alive);
    const placement::Layout new_layout = sys.layout(oid);
    const auto& spec = old_layout.spec;

    for (std::size_t j = 0; j < old_layout.targets.size(); ++j) {
      const int src = old_layout.targets[j];
      const int dst = new_layout.targets[j];
      if (src == dst) continue;  // surviving slots never move
      const int group = static_cast<int>(j) / old_layout.group_size;
      const int m = static_cast<int>(j) % old_layout.group_size;

      if (spec.erasureCoded()) {
        co_await repairEcSlot(sys, home, cont, oid, old_layout, group, m,
                              victim, dst, &stats);
        stats.slots_repaired += 1;
      } else if (spec.replicated()) {
        int source = -1;
        for (int m2 = 0; m2 < old_layout.group_size; ++m2) {
          const int t = old_layout.target(group, m2);
          if (t != victim) {
            source = t;
            break;
          }
        }
        if (source >= 0) {
          co_await repairReplicatedSlot(sys, home, cont, oid, source, dst,
                                        &stats);
          stats.slots_repaired += 1;
        }
      } else {
        stats.objects_lost += 1;  // no redundancy: the shard is gone
      }
    }
  }

  stats.duration = hsim.now() - t0;
  co_return stats;
}

}  // namespace daosim::daos
