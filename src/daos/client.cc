#include "daos/client.h"

#include <stdexcept>

#include "sim/sync.h"

namespace daosim::daos {

namespace {

/// Punch one shard of an object (request -> engine -> response).
///
/// SHARD RESIDENCY: after the request leg the coroutine runs on the
/// server's shard; an exception escaping there would complete the frame on
/// the wrong shard (JoinState schedules the joiner on the *spawn* sim). So
/// errors are caught, the coroutine hops home, and the error is rethrown
/// on the client's shard — a free no-op serially (hop returns immediately,
/// and the error path is unchanged). Every RPC-shaped client op below uses
/// the same wrap.
sim::Task<void> punchShardOp(Client* client, vos::ContId cont, ObjectId oid,
                             int target) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  co_await net::request(cluster, client->node(), engine->node(), 0);
  std::exception_ptr err;
  try {
    co_await engine->punchObject(local, cont, oid);
    co_await net::respond(cluster, engine->node(), client->node(), 0);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

}  // namespace

sim::Task<void> Client::poolConnect() {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        0);
  std::exception_ptr err;
  try {
    co_await ps.handleConnect();
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 0);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
}

sim::Task<Client::PoolInfo> Client::poolQuery() {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        0);
  std::exception_ptr err;
  try {
    co_await ps.handleContQuery();  // same leader-side query cost
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 256);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
  PoolInfo info;
  info.engines = system_->engineCount();
  info.targets = system_->totalTargets();
  // Capacity and usage live in each engine's target stores — other shards'
  // state on a sharded cluster, so the query walks the servers in person
  // (one hop per engine, one home). Serially the hops are free no-ops and
  // the loop reads shared memory exactly as before.
  const bool sharded = system_->cluster().shardGroup() != nullptr;
  hw::NodeId at = node_;
  for (int e = 0; e < info.engines; ++e) {
    Engine& engine = system_->engine(e);
    if (sharded) {
      co_await system_->cluster().hop(at, engine.node());
      at = engine.node();
    }
    for (int t = 0; t < engine.targetCount(); ++t) {
      info.total_bytes += engine.target(t).device().spec().capacity_bytes;
      info.used_bytes += engine.target(t).store().bytesStored();
    }
  }
  if (sharded) co_await system_->cluster().hop(at, node_);
  co_return info;
}

sim::Task<Container> Client::contCreate(std::string name) {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        name.size());
  vos::ContId id = 0;
  std::exception_ptr err;
  try {
    id = co_await ps.handleContCreate(name);
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 64);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
  if (id == 0) {
    throw std::runtime_error("contCreate: container exists: " + name);
  }
  co_return Container{id, std::move(name)};
}

sim::Task<Container> Client::contOpen(std::string name) {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        name.size());
  vos::ContId id = 0;
  std::exception_ptr err;
  try {
    id = co_await ps.handleContOpen(name);
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 64);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
  if (id == 0) {
    throw std::runtime_error("contOpen: no such container: " + name);
  }
  co_return Container{id, std::move(name)};
}

sim::Task<void> Client::contDestroy(std::string name) {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        name.size());
  vos::ContId id = 0;
  std::exception_ptr err;
  try {
    id = co_await ps.handleContDestroy(name);
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 16);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
  if (id == 0) {
    throw std::runtime_error("contDestroy: no such container: " + name);
  }
  // Space reclamation on every target shard (aggregation runs in the
  // background in DAOS; the metadata commit above carries the cost). The
  // stores belong to their engines' shards, so the sharded walk hops from
  // server to server — serially the hops are free no-ops.
  const bool sharded = system_->cluster().shardGroup() != nullptr;
  hw::NodeId at = node_;
  for (int e = 0; e < system_->engineCount(); ++e) {
    Engine& engine = system_->engine(e);
    if (sharded) {
      co_await system_->cluster().hop(at, engine.node());
      at = engine.node();
    }
    for (int t = 0; t < engine.targetCount(); ++t) {
      engine.target(t).store().destroyContainer(id);
    }
  }
  if (sharded) co_await system_->cluster().hop(at, node_);
}

sim::Task<ObjectId> Client::allocOids(const Container& cont,
                                      std::uint64_t count, ObjClass oc) {
  PoolService& ps = system_->poolService();
  co_await net::request(system_->cluster(), node_, ps.leaderNode(),
                        0);
  std::uint64_t first = 0;
  std::exception_ptr err;
  try {
    first = co_await ps.handleAllocOids(cont.id, count);
    co_await net::respond(system_->cluster(), ps.leaderNode(), node_, 32);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await system_->cluster().hop(ps.leaderNode(), node_);
    std::rethrow_exception(err);
  }
  if (first == 0) throw std::runtime_error("allocOids: bad container");
  // Server-allocated ranges live in a reserved user-hi namespace (so they
  // cannot collide with client-stamped OIDs) scoped by the container id:
  // per-container allocators all start at 1, and identical OIDs would get
  // identical placements — every container's object #k would land on the
  // same targets, a cross-container aliasing hotspot.
  co_return placement::makeOid(
      oc, first,
      0xff000000u | static_cast<std::uint32_t>(cont.id & 0xffffffu));
}

sim::Task<void> Client::objPunch(const Container& cont, const ObjectId& oid) {
  auto layout = system_->layout(oid);
  std::vector<sim::Task<void>> ops;
  ops.reserve(layout.targets.size());
  for (int target : layout.targets) {
    ops.push_back(punchShardOp(this, cont.id, oid, target));
  }
  co_await sim::whenAll(sim(), std::move(ops));
}

}  // namespace daosim::daos
