// DaosSystem: a deployed DAOS pool — one engine per server node, a pool
// service on the first engine, and target addressing shared by all clients.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "daos/config.h"
#include "daos/engine.h"
#include "daos/pool_service.h"
#include "hw/cluster.h"
#include "placement/layout.h"

namespace daosim::daos {

class DaosSystem {
 public:
  DaosSystem(hw::Cluster& cluster, std::vector<hw::NodeId> server_nodes,
             DaosConfig cfg = {});

  hw::Cluster& cluster() noexcept { return *cluster_; }
  const DaosConfig& config() const noexcept { return cfg_; }
  PoolService& poolService() noexcept { return *pool_service_; }

  int engineCount() const noexcept { return static_cast<int>(engines_.size()); }
  Engine& engine(int i) noexcept { return *engines_[static_cast<std::size_t>(i)]; }

  /// Pool-wide target count (engines * targets_per_engine).
  int totalTargets() const noexcept {
    return engineCount() * cfg_.targets_per_engine;
  }

  /// Maps a pool-global target index to (engine, local target index).
  std::pair<Engine*, int> locateTarget(int global) noexcept {
    const int e = global / cfg_.targets_per_engine;
    return {engines_[static_cast<std::size_t>(e)].get(),
            global % cfg_.targets_per_engine};
  }

  placement::Layout layout(const placement::ObjectId& oid) const {
    return placement::computeLayout(oid, totalTargets(), &aliveView());
  }
  /// The layout the object had under a previous pool map (all targets in
  /// `was_alive` considered alive) — used by rebuild to locate old shards.
  placement::Layout layoutUnder(const placement::ObjectId& oid,
                                const std::vector<std::uint8_t>& was_alive)
      const {
    return placement::computeLayout(oid, totalTargets(), &was_alive);
  }

  /// Fails/recovers the device behind a pool-global target (redundancy
  /// experiments).
  void failTarget(int global);
  void recoverTarget(int global);

  /// Administrative exclusion: removes the target from the pool map, so
  /// *new* layouts avoid it. Existing data is restored by daos::rebuild().
  void excludeTarget(int global);
  void reintegrateTarget(int global);
  /// Sharded pool-map mutation: updates one shard's replica of the alive
  /// map. The fault injector broadcasts one applier per shard, all landing
  /// at the same simulated instant, so every shard's layouts flip together
  /// regardless of the shard count. Only shard 0's applier moves the
  /// excluded-targets gauge (counted once per exclusion).
  void excludeTargetOnShard(int shard, int global);
  void reintegrateTargetOnShard(int shard, int global);
  bool isExcluded(int global) const {
    return aliveView()[static_cast<std::size_t>(global)] == 0;
  }
  const std::vector<std::uint8_t>& aliveMap() const noexcept {
    return aliveView();
  }

  /// Total user bytes held across all targets (space accounting tests).
  std::uint64_t bytesStored() const;

  // --- health accounting (fault injection / telemetry) ------------------
  /// Called by Array/KeyValue when a read falls back to a surviving
  /// replica or an EC reconstruction because the primary's device failed.
  /// On a sharded cluster the count lands in the calling shard's lane.
  void noteDegradedRead() noexcept {
    if (HealthLane* l = lane()) {
      ++l->degraded_reads;
    } else {
      ++degraded_reads_;
    }
  }
  std::uint64_t degradedReads() const noexcept {
    std::uint64_t n = degraded_reads_;
    for (const auto& l : health_lanes_) n += l.degraded_reads;
    return n;
  }
  /// Targets whose device is currently failed / currently excluded from
  /// the pool map (gauges daos/targets_failed, daos/targets_excluded).
  int failedTargets() const noexcept {
    int n = failed_targets_;
    for (const auto& l : health_lanes_) n += l.failed;
    return n;
  }
  int excludedTargets() const noexcept {
    int n = excluded_targets_;
    for (const auto& l : health_lanes_) n += l.excluded;
    return n;
  }

 private:
  /// Health bookkeeping for one shard, cache-line separated (mirrors
  /// hw::Cluster::ShardCounters). A target's fail/recover pair always runs
  /// on its owner shard, so per-lane deltas cancel correctly.
  struct alignas(64) HealthLane {
    std::uint64_t degraded_reads = 0;
    int failed = 0;
    int excluded = 0;
  };

  /// The calling shard's lane, or nullptr on the serial path.
  HealthLane* lane() noexcept {
    if (health_lanes_.empty()) return nullptr;
    const int s = sim::currentShard();
    return s >= 0 ? &health_lanes_[static_cast<std::size_t>(s)] : nullptr;
  }

  /// The alive map visible to the calling shard: its own replica on a
  /// sharded system, the master map serially (and from the main thread).
  const std::vector<std::uint8_t>& aliveView() const noexcept {
    if (shard_alive_.empty()) return alive_;
    const int s = sim::currentShard();
    return s >= 0 ? shard_alive_[static_cast<std::size_t>(s)] : alive_;
  }

  hw::Cluster* cluster_;
  DaosConfig cfg_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<PoolService> pool_service_;
  std::vector<std::uint8_t> alive_;
  // Per-shard replicas of the pool map (see excludeTargetOnShard); sized
  // at construction on a sharded cluster, empty serially.
  std::vector<std::vector<std::uint8_t>> shard_alive_;
  std::vector<HealthLane> health_lanes_;  // empty on a serial cluster
  std::uint64_t degraded_reads_ = 0;
  int failed_targets_ = 0;
  int excluded_targets_ = 0;
};

}  // namespace daosim::daos
