#include "daos/array.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "hw/device.h"
#include "sim/sync.h"
#include "vos/target_store.h"

namespace daosim::daos {

namespace {

constexpr const char* kMetaDkey = "__array_meta__";

std::string encodeAttrs(const Array::Attrs& a) {
  std::string s(16, '\0');
  std::memcpy(s.data(), &a.cell_size, 8);
  std::memcpy(s.data() + 8, &a.chunk_size, 8);
  return s;
}

Array::Attrs decodeAttrs(const vos::Payload& p) {
  Array::Attrs a;
  if (p.hasBytes() && p.size() >= 16) {
    auto b = p.bytes();
    std::memcpy(&a.cell_size, b.data(), 8);
    std::memcpy(&a.chunk_size, b.data() + 8, 8);
  }
  return a;
}

using vos::xorPayloads;

struct Piece {
  std::uint64_t rel = 0;  // offset of the piece within the op
  vos::Payload data;
};

/// Concatenates pieces (already length-exact and ordered by rel) into one
/// payload; synthetic if any piece lacks bytes.
vos::Payload assemble(std::vector<Piece> pieces, std::uint64_t total) {
  if (pieces.size() == 1 && pieces.front().data.size() == total) {
    return std::move(pieces.front().data);
  }
  bool all_real = true;
  for (const auto& p : pieces) {
    if (!p.data.hasBytes()) all_real = false;
  }
  if (!all_real) return vos::Payload::synthetic(total);
  std::vector<std::byte> out(total);
  for (const auto& p : pieces) {
    auto b = p.data.bytes();
    std::memcpy(out.data() + p.rel, b.data(), b.size());
  }
  return vos::Payload::fromBytes(std::move(out));
}

// ---- per-shard RPC operations (inline request/work/response legs) --------
//
// SHARD RESIDENCY: after the request leg these coroutines run on the
// server's shard; an exception escaping there (DeviceFailed from the
// engine, RetryExhausted from the response leg) would complete the frame
// on the wrong shard and leave the caller's degraded-read fallback running
// off its home shard. Errors are therefore caught, the coroutine hops back
// to the client, and the error is rethrown there — serially the hop is a
// free no-op and the error path is unchanged (see daos/client.cc).

/// One extent-write RPC to a pool-global target.
sim::Task<void> extentWriteOp(Client* client, vos::ContId cont, ObjectId oid,
                              int target, std::string dkey, std::string akey,
                              std::uint64_t offset, vos::Payload data,
                              obs::OpId op) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  // Structural leg grouping this shard's request/work/response legs in the
  // op's causal tree (the children carry the aggregate charges).
  auto rpc = client->beginLeg(op, "rpc.extent_write");
  const obs::OpId rop = rpc.ctx();
  co_await net::request(cluster, client->node(), engine->node(),
                        data.size(), rp, rop);
  std::exception_ptr err;
  try {
    co_await engine->extentWrite(local, cont, oid, dkey, akey, offset,
                                 std::move(data), rop);
    co_await net::respond(cluster, engine->node(), client->node(), 0, rp,
                          rop);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

/// One extent-read RPC to a pool-global target.
sim::Task<vos::Payload> fetchOp(Client* client, vos::ContId cont,
                                ObjectId oid, int target, std::string dkey,
                                std::string akey, std::uint64_t offset,
                                std::uint64_t length, obs::OpId op) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  auto rpc = client->beginLeg(op, "rpc.fetch");
  const obs::OpId rop = rpc.ctx();
  co_await net::request(cluster, client->node(), engine->node(),
                        0, rp, rop);
  vos::Payload p;
  std::exception_ptr err;
  try {
    p = co_await engine->extentRead(local, cont, oid, dkey, akey, offset,
                                    length, rop);
    co_await net::respond(cluster, engine->node(), client->node(), p.size(),
                          rp, rop);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
  co_return p;
}

/// Trim one shard of the array (used by setSize).
sim::Task<void> truncateShardOp(Client* client, vos::ContId cont,
                                ObjectId oid, int target,
                                std::uint64_t chunk_size,
                                std::uint64_t new_size, obs::OpId op) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  auto rpc = client->beginLeg(op, "rpc.truncate");
  const obs::OpId rop = rpc.ctx();
  co_await net::request(cluster, client->node(), engine->node(),
                        0, rp, rop);
  std::exception_ptr err;
  try {
    co_await engine->arrayShardTruncate(local, cont, oid, chunk_size,
                                        new_size, rop);
    co_await net::respond(cluster, engine->node(), client->node(), 0, rp,
                          rop);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

sim::Task<void> fetchInto(Client* client, vos::ContId cont, ObjectId oid,
                          int target, std::string dkey, std::string akey,
                          std::uint64_t off, std::uint64_t len,
                          vos::Payload* out, obs::OpId op) {
  *out = co_await fetchOp(client, cont, oid, target, std::move(dkey),
                          std::move(akey), off, len, op);
}

}  // namespace

Array::Array(Client& client, Container cont, ObjectId oid, Attrs attrs)
    : client_(&client),
      cont_(std::move(cont)),
      oid_(oid),
      attrs_(attrs),
      layout_(client.system().layout(oid)) {
  if (attrs_.chunk_size == 0) {
    throw std::invalid_argument("Array: chunk_size must be positive");
  }
  if (layout_.spec.erasureCoded() &&
      attrs_.chunk_size % static_cast<std::uint64_t>(layout_.spec.ec_data) !=
          0) {
    throw std::invalid_argument(
        "Array: chunk_size must be divisible by the EC data-cell count");
  }
}

namespace {

/// Writes the array-attribute record to one group-0 member.
sim::Task<void> metaPutOp(Client* client, vos::ContId cont, ObjectId oid,
                          int target, vos::Payload meta) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  co_await net::request(cluster, client->node(), engine->node(),
                        meta.size(), rp);
  std::exception_ptr err;
  try {
    co_await engine->valuePut(local, cont, oid, kMetaDkey, "0",
                              std::move(meta));
    co_await net::respond(cluster, engine->node(), client->node(), 0, rp);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

}  // namespace

sim::Task<Array> Array::create(Client& client, Container cont, ObjectId oid,
                               Attrs attrs) {
  Array a(client, cont, oid, attrs);
  // Register attrs in object metadata. Single-value records of protected
  // objects are replicated across the whole redundancy group (as in DAOS,
  // where akey singles are never erasure-coded), so metadata survives any
  // failure the data survives.
  vos::Payload meta = vos::Payload::fromString(encodeAttrs(attrs));
  std::vector<sim::Task<void>> ops;
  for (int m = 0; m < a.layout_.group_size; ++m) {
    ops.push_back(metaPutOp(&client, cont.id, oid, a.layout_.target(0, m),
                            meta));
  }
  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else {
    co_await sim::whenAll(client.sim(), std::move(ops));
  }
  co_return a;
}

sim::Task<Array> Array::open(Client& client, Container cont, ObjectId oid) {
  placement::Layout layout = client.system().layout(oid);
  hw::Cluster& cluster = client.system().cluster();
  const net::RetryPolicy& rp = client.system().config().rpc_retry;
  // Try the group-0 members in order (metadata is replicated across them).
  // The replica walk restarts from the client, so a server-side failure
  // must first bring the coroutine home (free no-op serially) before the
  // next request leg departs.
  for (int m = 0; m < layout.group_size; ++m) {
    auto [engine, local] =
        client.system().locateTarget(layout.target(0, m));
    co_await net::request(cluster, client.node(), engine->node(),
                          0, rp);
    Engine::GetResult r;
    std::exception_ptr err;
    try {
      r = co_await engine->valueGet(local, cont.id, oid, kMetaDkey, "0");
      co_await net::respond(cluster, engine->node(), client.node(),
                            r.value.size(), rp);
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      co_await cluster.hop(engine->node(), client.node());
      bool device_failed = false;
      try {
        std::rethrow_exception(err);
      } catch (const hw::DeviceFailed&) {
        device_failed = true;
      } catch (...) {
      }
      if (!device_failed || m + 1 == layout.group_size) {
        std::rethrow_exception(err);
      }
      client.system().noteDegradedRead();
      continue;
    }
    if (r.found) {
      co_return Array(client, std::move(cont), oid, decodeAttrs(r.value));
    }
  }
  throw std::runtime_error("Array::open: no such array");
}

Array Array::openWithAttrs(Client& client, Container cont, ObjectId oid,
                           Attrs attrs) {
  return Array(client, std::move(cont), oid, attrs);
}

// --- write path -----------------------------------------------------------

sim::Task<void> Array::writePiece(std::uint64_t chunk, std::uint64_t in_chunk,
                                  vos::Payload piece, obs::OpId op) {
  const std::string dkey = vos::u64Dkey(chunk);
  const int group = placement::dkeyGroup(layout_, dkey);
  const auto& spec = layout_.spec;
  std::vector<sim::Task<void>> ops;

  if (spec.erasureCoded()) {
    const std::uint64_t cell = ecCellLen();
    const int k = spec.ec_data;
    const bool full_stripe =
        in_chunk == 0 && piece.size() == attrs_.chunk_size;
    std::vector<vos::Payload> stripe_cells;
    for (int j = 0; j < k; ++j) {
      const std::uint64_t cs = static_cast<std::uint64_t>(j) * cell;
      const std::uint64_t ce = cs + cell;
      const std::uint64_t lo = std::max(in_chunk, cs);
      const std::uint64_t hi = std::min(in_chunk + piece.size(), ce);
      if (lo >= hi) continue;
      vos::Payload sub = piece.slice(lo - in_chunk, hi - lo);
      if (full_stripe) stripe_cells.push_back(sub);
      ops.push_back(extentWriteOp(client_, cont_.id, oid_,
                                  layout_.target(group, j), dkey, "0", lo,
                                  std::move(sub), op));
    }
    for (int pj = 0; pj < spec.ec_parity; ++pj) {
      vos::Payload parity;
      if (full_stripe) {
        // First parity cell is a true XOR so single-failure degraded reads
        // reconstruct real data; further parity cells model the I/O volume.
        parity = pj == 0 ? xorPayloads(stripe_cells, cell)
                         : vos::Payload::synthetic(cell);
      } else {
        // Partial-stripe update: parity is read-modified server side; we
        // model the written volume and mark the parity non-reconstructible.
        parity = vos::Payload::synthetic(
            std::min<std::uint64_t>(piece.size(), cell));
      }
      ops.push_back(extentWriteOp(client_, cont_.id, oid_,
                                  layout_.target(group, k + pj), dkey, "p",
                                  0, std::move(parity), op));
    }
  } else {
    for (int r = 0; r < spec.replicas; ++r) {
      ops.push_back(extentWriteOp(client_, cont_.id, oid_,
                                  layout_.target(group, r), dkey, "0",
                                  in_chunk, piece, op));
    }
  }

  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else {
    co_await sim::whenAll(client_->sim(), std::move(ops));
  }
}

sim::Task<void> Array::write(std::uint64_t offset, vos::Payload data) {
  auto span = client_->beginOp("array.write");
  std::vector<sim::Task<void>> pieces;
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / attrs_.chunk_size;
    const std::uint64_t in_chunk = abs % attrs_.chunk_size;
    const std::uint64_t len =
        std::min(data.size() - pos, attrs_.chunk_size - in_chunk);
    pieces.push_back(
        writePiece(chunk, in_chunk, data.slice(pos, len), span.id()));
    pos += len;
  }
  if (pieces.empty()) co_return;
  if (pieces.size() == 1) {
    co_await std::move(pieces.front());
  } else {
    co_await sim::whenAll(client_->sim(), std::move(pieces));
  }
}

// --- read path ------------------------------------------------------------

sim::Task<vos::Payload> Array::readCellDegraded(std::uint64_t chunk,
                                                int group, int failed_cell,
                                                obs::OpId op) {
  const auto& spec = layout_.spec;
  if (spec.ec_parity < 1) {
    throw hw::DeviceFailed("array shard lost and no parity available");
  }
  const std::uint64_t cell = ecCellLen();
  const int k = spec.ec_data;
  const std::string dkey = vos::u64Dkey(chunk);

  // Gather every surviving data cell plus the XOR parity, in parallel.
  std::vector<vos::Payload> gathered(static_cast<std::size_t>(k));
  std::vector<sim::Task<void>> ops;
  for (int j = 0; j < k; ++j) {
    if (j == failed_cell) continue;
    ops.push_back(fetchInto(client_, cont_.id, oid_,
                            layout_.target(group, j), dkey, "0",
                            static_cast<std::uint64_t>(j) * cell, cell,
                            &gathered[static_cast<std::size_t>(j)], op));
  }
  vos::Payload parity;
  ops.push_back(fetchInto(client_, cont_.id, oid_, layout_.target(group, k),
                          dkey, "p", 0, cell, &parity, op));
  co_await sim::whenAll(client_->sim(), std::move(ops));

  // Client-side XOR reconstruction.
  co_await client_->sim().delay(
      client_->system().config().engine.ec_reconstruct_cpu);
  std::vector<vos::Payload> xs;
  for (int j = 0; j < k; ++j) {
    if (j != failed_cell) xs.push_back(gathered[static_cast<std::size_t>(j)]);
  }
  xs.push_back(std::move(parity));
  co_return xorPayloads(xs, cell);
}

namespace {

struct Seg {
  int cell_idx;
  std::uint64_t lo;  // in-chunk
  std::uint64_t hi;
};

}  // namespace

sim::Task<void> Array::readSegInto(std::uint64_t chunk, int group,
                                   int cell_idx, std::uint64_t lo,
                                   std::uint64_t hi, std::uint64_t in_chunk,
                                   void* out_piece, obs::OpId op) {
  auto* out = static_cast<Piece*>(out_piece);
  out->rel = lo - in_chunk;
  const std::string dkey = vos::u64Dkey(chunk);
  bool degraded = false;
  try {
    out->data = co_await fetchOp(client_, cont_.id, oid_,
                                 layout_.target(group, cell_idx), dkey, "0",
                                 lo, hi - lo, op);
  } catch (const hw::DeviceFailed&) {
    degraded = true;  // co_await is not allowed inside a handler
  }
  if (degraded) {
    client_->system().noteDegradedRead();
    vos::Payload full = co_await readCellDegraded(chunk, group, cell_idx, op);
    const std::uint64_t cell = ecCellLen();
    out->data =
        full.slice(lo - static_cast<std::uint64_t>(cell_idx) * cell, hi - lo);
  }
}

sim::Task<vos::Payload> Array::readPiece(std::uint64_t chunk,
                                         std::uint64_t in_chunk,
                                         std::uint64_t length, obs::OpId op) {
  const std::string dkey = vos::u64Dkey(chunk);
  const int group = placement::dkeyGroup(layout_, dkey);
  const auto& spec = layout_.spec;

  if (!spec.erasureCoded()) {
    // Plain or replicated: read from the first healthy replica.
    for (int r = 0; r < spec.replicas; ++r) {
      try {
        co_return co_await fetchOp(client_, cont_.id, oid_,
                                   layout_.target(group, r), dkey, "0",
                                   in_chunk, length, op);
      } catch (const hw::DeviceFailed&) {
        if (r + 1 == spec.replicas) throw;
        client_->system().noteDegradedRead();
      }
    }
  }

  // Erasure coded: read the overlapped data cells in parallel; a failed
  // cell is reconstructed from the survivors + parity.
  const std::uint64_t cell = ecCellLen();
  const int k = spec.ec_data;
  std::vector<Seg> segs;
  for (int j = 0; j < k; ++j) {
    const std::uint64_t cs = static_cast<std::uint64_t>(j) * cell;
    const std::uint64_t ce = cs + cell;
    const std::uint64_t lo = std::max(in_chunk, cs);
    const std::uint64_t hi = std::min(in_chunk + length, ce);
    if (lo < hi) segs.push_back({j, lo, hi});
  }

  std::vector<Piece> pieces(segs.size());
  std::vector<sim::Task<void>> ops;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    ops.push_back(readSegInto(chunk, group, segs[i].cell_idx, segs[i].lo,
                              segs[i].hi, in_chunk, &pieces[i], op));
  }
  co_await sim::whenAll(client_->sim(), std::move(ops));
  co_return assemble(std::move(pieces), length);
}

sim::Task<void> Array::readPieceInto(std::uint64_t chunk,
                                     std::uint64_t in_chunk,
                                     std::uint64_t length, std::uint64_t rel,
                                     void* out_piece, obs::OpId op) {
  auto* out = static_cast<Piece*>(out_piece);
  out->rel = rel;
  out->data = co_await readPiece(chunk, in_chunk, length, op);
}

sim::Task<vos::Payload> Array::read(std::uint64_t offset,
                                    std::uint64_t length) {
  auto span = client_->beginOp("array.read");
  struct Sub {
    std::uint64_t chunk, in_chunk, len, rel;
  };
  std::vector<Sub> subs;
  std::uint64_t pos = 0;
  while (pos < length) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / attrs_.chunk_size;
    const std::uint64_t in_chunk = abs % attrs_.chunk_size;
    const std::uint64_t len =
        std::min(length - pos, attrs_.chunk_size - in_chunk);
    subs.push_back({chunk, in_chunk, len, pos});
    pos += len;
  }
  if (subs.empty()) co_return vos::Payload{};
  if (subs.size() == 1) {
    co_return co_await readPiece(subs[0].chunk, subs[0].in_chunk, subs[0].len,
                                 span.id());
  }
  std::vector<Piece> pieces(subs.size());
  std::vector<sim::Task<void>> ops;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    ops.push_back(readPieceInto(subs[i].chunk, subs[i].in_chunk, subs[i].len,
                                subs[i].rel, &pieces[i], span.id()));
  }
  co_await sim::whenAll(client_->sim(), std::move(ops));
  co_return assemble(std::move(pieces), length);
}

// --- size -------------------------------------------------------------

sim::Task<void> Array::probeShardEnd(int target, std::uint64_t* out,
                                     obs::OpId op) {
  auto [engine, local] = client_->system().locateTarget(target);
  hw::Cluster& cluster = client_->system().cluster();
  const net::RetryPolicy& rp = client_->system().config().rpc_retry;
  auto rpc = client_->beginLeg(op, "rpc.probe");
  const obs::OpId rop = rpc.ctx();
  co_await net::request(cluster, client_->node(), engine->node(),
                        0, rp, rop);
  std::exception_ptr err;
  try {
    *out = co_await engine->arrayShardEnd(local, cont_.id, oid_,
                                          attrs_.chunk_size, rop);
    co_await net::respond(cluster, engine->node(), client_->node(), 16, rp,
                          rop);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client_->node());
    std::rethrow_exception(err);
  }
}

sim::Task<void> Array::probeShardEndReplicated(std::vector<int> replicas,
                                               std::uint64_t* out,
                                               obs::OpId op) {
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    try {
      co_await probeShardEnd(replicas[r], out, op);
      co_return;
    } catch (const hw::DeviceFailed&) {
      if (r + 1 == replicas.size()) throw;
      client_->system().noteDegradedRead();
    }
  }
}

sim::Task<std::uint64_t> Array::getSize() {
  auto span = client_->beginOp("array.get_size");
  const auto& spec = layout_.spec;
  const int probes_per_group = spec.erasureCoded() ? spec.ec_data : 1;
  std::vector<std::uint64_t> ends(
      static_cast<std::size_t>(layout_.groups * probes_per_group), 0);
  std::vector<sim::Task<void>> ops;
  std::size_t slot = 0;
  for (int g = 0; g < layout_.groups; ++g) {
    if (spec.replicated()) {
      ops.push_back(probeShardEndReplicated(layout_.groupTargets(g),
                                            &ends[slot++], span.id()));
    } else if (spec.erasureCoded()) {
      for (int j = 0; j < spec.ec_data; ++j) {
        ops.push_back(
            probeShardEnd(layout_.target(g, j), &ends[slot++], span.id()));
      }
    } else {
      ops.push_back(
          probeShardEnd(layout_.target(g, 0), &ends[slot++], span.id()));
    }
  }
  co_await sim::whenAll(client_->sim(), std::move(ops));
  std::uint64_t size = 0;
  for (std::uint64_t e : ends) size = std::max(size, e);
  co_return size;
}

sim::Task<void> Array::setSize(std::uint64_t size) {
  auto span = client_->beginOp("array.set_size");
  const vos::ContId cont = cont_.id;
  const ObjectId oid = oid_;
  const std::uint64_t chunk_size = attrs_.chunk_size;

  // Trim every shard, in parallel.
  std::vector<sim::Task<void>> ops;
  for (int target : layout_.targets) {
    ops.push_back(truncateShardOp(client_, cont, oid, target, chunk_size,
                                  size, span.id()));
  }
  co_await sim::whenAll(client_->sim(), std::move(ops));
  if (size == 0) co_return;

  // Record the explicit end on the final chunk's owning target so getSize
  // sees extensions past the last written extent.
  const std::uint64_t final_chunk = (size - 1) / chunk_size;
  const std::uint64_t in_chunk_end = size - final_chunk * chunk_size;
  const std::string dkey = vos::u64Dkey(final_chunk);
  const int group = placement::dkeyGroup(layout_, dkey);
  int member = 0;
  if (layout_.spec.erasureCoded()) {
    member = static_cast<int>((in_chunk_end - 1) / ecCellLen());
  }
  const int target = layout_.target(group, member);
  auto [engine, local] = client_->system().locateTarget(target);
  hw::Cluster& cluster = client_->system().cluster();
  const net::RetryPolicy& rp = client_->system().config().rpc_retry;
  co_await net::request(cluster, client_->node(), engine->node(),
                        0, rp);
  std::exception_ptr err;
  try {
    Target& t = engine->target(local);
    co_await t.xstream().exec(engine->config().engine.rpc_cpu);
    co_await t.device().write(engine->config().engine.wal_bytes);
    t.store().extentTruncate(cont, oid, dkey, "0", in_chunk_end);
    co_await net::respond(cluster, engine->node(), client_->node(), 0, rp);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client_->node());
    std::rethrow_exception(err);
  }
}

}  // namespace daosim::daos
