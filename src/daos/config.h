// DAOS deployment configuration and server-side cost model.
//
// Matches the paper's deployment (§II-B): one engine per server VM, 16
// targets per engine (one per NVMe SSD), metadata held in DRAM with
// write-ahead logging to NVMe. CPU costs model the user-space, polling
// RPC stack (no kernel involvement), which is why they are in the
// single-digit microsecond range.
#pragma once

#include <cstdint>

#include "net/retry.h"
#include "sim/time.h"

namespace daosim::daos {

struct EngineCost {
  /// Per-RPC processing on the target xstream (request parse, VOS dispatch).
  sim::Time rpc_cpu = 3 * sim::kMicrosecond;
  /// Additional CPU for KV-tree operations (DRAM-resident metadata).
  sim::Time kv_cpu = 2 * sim::kMicrosecond;
  /// Size of the WAL record persisted to NVMe for each metadata update
  /// (KV put/remove, array metadata, punch). Reads do not touch the WAL.
  std::uint64_t wal_bytes = 4096;
  /// CPU to XOR-reconstruct one cell during degraded erasure-coded reads.
  sim::Time ec_reconstruct_cpu = 40 * sim::kMicrosecond;
};

struct PoolServiceCost {
  /// Serialized Raft commit on the pool-service leader (container create /
  /// destroy, OID-range allocation). This is deliberately a *single
  /// serialized station*: DAOS metadata that goes through the pool service
  /// does not scale with server count, which is the mechanism behind the
  /// HDF5-DAOS-adaptor scalability wall the paper discusses (§III-B/C).
  sim::Time raft_commit = 55 * sim::kMicrosecond;
  /// Serialized read-side query on the leader (pool connect, container
  /// open, handle/epoch queries).
  sim::Time query_cpu = 35 * sim::kMicrosecond;
};

struct DaosConfig {
  int targets_per_engine = 16;
  /// Keep real payload bytes (tests/examples) or only sizes (benchmarks).
  bool retain_data = true;
  EngineCost engine;
  PoolServiceCost pool_service;
  /// Default array chunk size, as in libdaos (1 MiB throughout the paper).
  std::uint64_t default_chunk_size = 1 << 20;
  /// Client data-path RPC retry/timeout policy. Disabled by default
  /// (infinite patience, failures surface immediately), which keeps every
  /// RPC on the zero-retry fast path — bit-identical to the
  /// pre-fault-injection timing the conformance suite pins. daosim_run
  /// enables RetryPolicy::chaosDefault() when --faults is non-empty.
  net::RetryPolicy rpc_retry;
};

}  // namespace daosim::daos
