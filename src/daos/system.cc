#include "daos/system.h"

#include <algorithm>
#include <stdexcept>

namespace daosim::daos {

DaosSystem::DaosSystem(hw::Cluster& cluster,
                       std::vector<hw::NodeId> server_nodes, DaosConfig cfg)
    : cluster_(&cluster), cfg_(cfg) {
  if (server_nodes.empty()) {
    throw std::invalid_argument("DaosSystem: no server nodes");
  }
  engines_.reserve(server_nodes.size());
  for (hw::NodeId n : server_nodes) {
    engines_.push_back(std::make_unique<Engine>(cluster, n, cfg_));
  }
  const int replicas = std::min<int>(5, static_cast<int>(engines_.size()));
  pool_service_ = std::make_unique<PoolService>(
      cluster, engines_.front()->node(), replicas, cfg_.pool_service);
  alive_.assign(static_cast<std::size_t>(totalTargets()), 1);
}

void DaosSystem::excludeTarget(int global) {
  alive_[static_cast<std::size_t>(global)] = 0;
}

void DaosSystem::reintegrateTarget(int global) {
  alive_[static_cast<std::size_t>(global)] = 1;
}

void DaosSystem::failTarget(int global) {
  auto [engine, local] = locateTarget(global);
  engine->target(local).device().fail();
}

void DaosSystem::recoverTarget(int global) {
  auto [engine, local] = locateTarget(global);
  engine->target(local).device().recover();
}

std::uint64_t DaosSystem::bytesStored() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) {
    for (int t = 0; t < e->targetCount(); ++t) {
      total += e->target(t).store().bytesStored();
    }
  }
  return total;
}

}  // namespace daosim::daos
