#include "daos/system.h"

#include <algorithm>
#include <stdexcept>

namespace daosim::daos {

DaosSystem::DaosSystem(hw::Cluster& cluster,
                       std::vector<hw::NodeId> server_nodes, DaosConfig cfg)
    : cluster_(&cluster), cfg_(cfg) {
  if (server_nodes.empty()) {
    throw std::invalid_argument("DaosSystem: no server nodes");
  }
  engines_.reserve(server_nodes.size());
  for (hw::NodeId n : server_nodes) {
    engines_.push_back(std::make_unique<Engine>(cluster, n, cfg_));
  }
  const int replicas = std::min<int>(5, static_cast<int>(engines_.size()));
  pool_service_ = std::make_unique<PoolService>(
      cluster, engines_.front()->node(), replicas, cfg_.pool_service);
  alive_.assign(static_cast<std::size_t>(totalTargets()), 1);
  if (sim::ShardGroup* g = cluster.shardGroup()) {
    shard_alive_.assign(static_cast<std::size_t>(g->shards()), alive_);
    health_lanes_.resize(static_cast<std::size_t>(g->shards()));
  }
}

void DaosSystem::excludeTargetOnShard(int shard, int global) {
  auto& slot =
      shard_alive_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(
          global)];
  if (slot != 0) {
    slot = 0;
    if (shard == 0) ++health_lanes_.front().excluded;
  }
}

void DaosSystem::reintegrateTargetOnShard(int shard, int global) {
  auto& slot =
      shard_alive_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(
          global)];
  if (slot == 0) {
    slot = 1;
    if (shard == 0) --health_lanes_.front().excluded;
  }
}

void DaosSystem::excludeTarget(int global) {
  auto& slot = alive_[static_cast<std::size_t>(global)];
  if (slot != 0) {
    slot = 0;
    ++excluded_targets_;
  }
}

void DaosSystem::reintegrateTarget(int global) {
  auto& slot = alive_[static_cast<std::size_t>(global)];
  if (slot == 0) {
    slot = 1;
    --excluded_targets_;
  }
}

void DaosSystem::failTarget(int global) {
  auto [engine, local] = locateTarget(global);
  auto& device = engine->target(local).device();
  if (!device.failed()) {
    device.fail();
    // On a sharded cluster the caller must be running on the target's owner
    // shard (the fault injector hops there); the delta lands in that lane.
    if (HealthLane* l = lane()) {
      ++l->failed;
    } else {
      ++failed_targets_;
    }
  }
}

void DaosSystem::recoverTarget(int global) {
  auto [engine, local] = locateTarget(global);
  auto& device = engine->target(local).device();
  if (device.failed()) {
    device.recover();
    if (HealthLane* l = lane()) {
      --l->failed;
    } else {
      --failed_targets_;
    }
  }
}

std::uint64_t DaosSystem::bytesStored() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) {
    for (int t = 0; t < e->targetCount(); ++t) {
      total += e->target(t).store().bytesStored();
    }
  }
  return total;
}

}  // namespace daosim::daos
