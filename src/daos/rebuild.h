// Pool rebuild: restoring data redundancy after a target is excluded.
//
// When a target dies, DAOS excludes it from the pool map and rebuilds the
// shards it held onto spare targets, using the surviving redundancy
// (replicas, or erasure-code reconstruction). This module implements that
// flow for the simulated pool:
//
//   1. the administrator excludes the target (DaosSystem::excludeTarget) —
//      placement immediately re-points the dead slots at spares, leaving
//      every surviving slot untouched (see placement::computeLayout);
//   2. rebuild() scans every object in the pool, finds the slots that moved,
//      and repopulates them: replicated slots are copied from a surviving
//      replica; erasure-coded data cells are XOR-reconstructed from the
//      surviving cells and parity; parity cells are recomputed. All
//      movement is charged as real engine-to-engine I/O (reads, network
//      transfers, writes);
//   3. unprotected objects (S1/SX) that lost their only copy are reported,
//      not silently dropped.
//
// After rebuild completes, clients reach the data through the normal
// (non-degraded) path even though the excluded target stays dead.
#pragma once

#include <cstdint>

#include "daos/system.h"
#include "sim/task.h"

namespace daosim::daos {

struct RebuildStats {
  std::uint64_t objects_scanned = 0;
  std::uint64_t slots_repaired = 0;
  std::uint64_t records_restored = 0;
  std::uint64_t bytes_moved = 0;
  /// Unprotected shard slots that lived on the victim, detected through the
  /// object's surviving sibling shards. (An S1 object living entirely on
  /// the victim leaves no trace to count — as on a real pool.)
  std::uint64_t objects_lost = 0;
  /// Records on the victim that the redundancy class cannot regenerate
  /// (single-value records under erasure coding).
  std::uint64_t records_unrecoverable = 0;
  sim::Time duration = 0;
};

/// Rebuilds the pool after `victim` (a pool-global target index) has been
/// excluded via DaosSystem::excludeTarget. Runs as a simulated background
/// process; returns when redundancy is restored.
sim::Task<RebuildStats> rebuild(DaosSystem& system, int victim);

}  // namespace daosim::daos
