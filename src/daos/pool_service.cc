#include "daos/pool_service.h"

namespace daosim::daos {

sim::Task<void> PoolService::commit() {
  co_await svc_.exec(cost_.raft_commit);
  if (replicas_ > 1) {
    // Followers ack in parallel; the commit waits one fabric round trip,
    // charged on the leader's own simulation (its shard, when sharded).
    co_await cluster_->node(leader_).sim().delay(2 *
                                                 cluster_->fabric().latency);
  }
}

sim::Task<void> PoolService::query() { co_await svc_.exec(cost_.query_cpu); }

sim::Task<std::uint64_t> PoolService::handleConnect() {
  co_await query();
  co_return 0;
}

sim::Task<std::uint64_t> PoolService::handleContQuery() {
  co_await query();
  co_return 64;
}

sim::Task<vos::ContId> PoolService::handleContCreate(std::string name) {
  co_await commit();
  auto [it, inserted] = by_name_.try_emplace(name);
  if (!inserted) co_return 0;
  it->second.id = next_id_++;
  it->second.name = name;
  by_id_[it->second.id] = &it->second;
  co_return it->second.id;
}

sim::Task<vos::ContId> PoolService::handleContOpen(std::string name) {
  co_await query();
  auto it = by_name_.find(name);
  co_return it == by_name_.end() ? 0 : it->second.id;
}

sim::Task<vos::ContId> PoolService::handleContDestroy(std::string name) {
  co_await commit();
  auto it = by_name_.find(name);
  if (it == by_name_.end()) co_return 0;
  const vos::ContId id = it->second.id;
  by_id_.erase(id);
  by_name_.erase(it);
  co_return id;
}

sim::Task<std::uint64_t> PoolService::handleAllocOids(vos::ContId cont,
                                                      std::uint64_t count) {
  co_await commit();
  auto it = by_id_.find(cont);
  if (it == by_id_.end()) co_return 0;
  const std::uint64_t first = it->second->next_oid_lo;
  it->second->next_oid_lo += count;
  co_return first;
}

}  // namespace daosim::daos
