// DAOS Key-Value object: maps string keys to arbitrary-size values.
//
// Keys are distribution keys: each key hashes to one redundancy group of
// the object's layout (so an SX KV spreads keys over all targets, an S1 KV
// lives on one target, and an RP_2 KV keeps two replicas of every key).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "daos/client.h"
#include "placement/layout.h"

namespace daosim::daos {

class KeyValue {
 public:
  KeyValue(Client& client, Container cont, ObjectId oid)
      : client_(&client),
        cont_(std::move(cont)),
        oid_(oid),
        layout_(client.system().layout(oid)) {}

  /// daos_kv_put: stores to every replica of the key's group.
  sim::Task<void> put(std::string key, vos::Payload value);

  /// daos_kv_get: nullopt when the key is absent. Fails over across
  /// replicas on device failure.
  sim::Task<std::optional<vos::Payload>> get(std::string key);

  /// daos_kv_remove: true if the key existed.
  sim::Task<bool> remove(std::string key);

  /// daos_kv_list: all keys, merged over the object's groups (sorted).
  sim::Task<std::vector<std::string>> list();

  sim::Task<void> punch() { return client_->objPunch(cont_, oid_); }

  const ObjectId& oid() const noexcept { return oid_; }
  const placement::Layout& layout() const noexcept { return layout_; }

 private:
  Client* client_;
  Container cont_;
  ObjectId oid_;
  placement::Layout layout_;
};

}  // namespace daosim::daos
