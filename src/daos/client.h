// libdaos-equivalent client library.
//
// One Client per application process. It talks to the pool service for
// pool/container metadata and directly to engines/targets for object I/O
// (placement is computed client-side from the OID, as in DAOS). OIDs carry
// 96 user-managed bits: clients stamp their client id into the user-hi bits
// so locally generated OIDs never collide across processes.
#pragma once

#include <cstdint>
#include <string>

#include "daos/system.h"
#include "io/submit_queue.h"
#include "net/rpc.h"
#include "obs/observer.h"
#include "placement/layout.h"
#include "placement/oid.h"
#include "sim/task.h"
#include "vos/payload.h"

namespace daosim::daos {

using placement::ObjClass;
using placement::ObjectId;

/// An open container handle.
struct Container {
  vos::ContId id = 0;
  std::string name;
  bool valid() const noexcept { return id != 0; }
};

class Client {
 public:
  Client(DaosSystem& system, hw::NodeId node, std::uint32_t client_id)
      : system_(&system), node_(node), client_id_(client_id) {}

  DaosSystem& system() noexcept { return *system_; }
  hw::NodeId node() const noexcept { return node_; }
  std::uint32_t clientId() const noexcept { return client_id_; }
  /// The client process's home simulation — its node's shard on a sharded
  /// cluster, the global one serially. Client-side delays (library CPU,
  /// reconstruction XOR) charge here.
  sim::Simulation& sim() noexcept {
    return system_->cluster().node(node_).sim();
  }

  /// daos_pool_connect.
  sim::Task<void> poolConnect();

  /// daos_pool_query: capacity and usage across all targets.
  struct PoolInfo {
    std::uint64_t total_bytes = 0;
    std::uint64_t used_bytes = 0;
    int targets = 0;
    int engines = 0;
  };
  sim::Task<PoolInfo> poolQuery();

  /// daos_cont_create + open; throws std::runtime_error if the name exists.
  sim::Task<Container> contCreate(std::string name);
  /// daos_cont_open; throws if missing.
  sim::Task<Container> contOpen(std::string name);
  sim::Task<void> contDestroy(std::string name);

  /// Client-managed OID generation (no RPC): the fast path libdaos
  /// applications use.
  ObjectId nextOid(ObjClass oc) noexcept {
    return placement::makeOid(oc, next_oid_lo_++, client_id_);
  }

  /// Server-managed OID allocation through the container/pool service
  /// (daos_cont_alloc_oids): one serialized leader commit per call. Returns
  /// the first OID of the range.
  sim::Task<ObjectId> allocOids(const Container& cont, std::uint64_t count,
                                ObjClass oc);

  /// daos_obj_punch across all layout targets.
  sim::Task<void> objPunch(const Container& cont, const ObjectId& oid);

  // ---- low-level building blocks shared by Array/KeyValue/dfs ----

  // COROUTINE DISCIPLINE: GCC 12 miscompiles closure types passed by value
  // as coroutine parameters (see net/rpc.h). RPCs are therefore written
  // inline as request leg -> engine work -> response leg; every coroutine
  // takes only plain data parameters.

  /// Request leg of an RPC to a pool-global target; returns the engine and
  /// local target index for the inline server work.
  sim::Task<void> requestToTarget(int global_target,
                                  std::uint64_t request_bytes,
                                  obs::OpId op = 0) {
    auto [engine, local] = system_->locateTarget(global_target);
    (void)local;
    co_await net::request(system_->cluster(), node_, engine->node(),
                          request_bytes, system_->config().rpc_retry, op);
  }

  /// Response leg from a pool-global target back to this client.
  sim::Task<void> respondFromTarget(int global_target,
                                    std::uint64_t response_bytes,
                                    obs::OpId op = 0) {
    auto [engine, local] = system_->locateTarget(global_target);
    (void)local;
    co_await net::respond(system_->cluster(), engine->node(), node_,
                          response_bytes, system_->config().rpc_retry, op);
  }

  /// Opens an observability span for a client-API op on this client's
  /// track; inert (id 0) when no observer is attached.
  obs::OpScope beginOp(const char* type) {
    obs::Observer* o = sim().observer();
    if (o == nullptr) return {};
    if (track_epoch_ != o->epoch()) {
      track_ = o->track(node_, "client" + std::to_string(client_id_));
      track_epoch_ = o->epoch();
    }
    return obs::OpScope(o, type, track_);
  }

  /// Opens a structural leg of `op` on this client's track — one node of
  /// the op's causal tree grouping the work launched with its ctx() (e.g.
  /// one per-shard RPC of a fan-out). Inert when no observer is attached.
  obs::LegScope beginLeg(obs::OpId op, const char* name) {
    obs::Observer* o = sim().observer();
    if (o == nullptr || obs::opSeq(op) == 0) return {};
    if (track_epoch_ != o->epoch()) {
      track_ = o->track(node_, "client" + std::to_string(client_id_));
      track_epoch_ = o->epoch();
    }
    return obs::LegScope(o, op, name, obs::Cat::kOther, track_);
  }

 private:
  DaosSystem* system_;
  hw::NodeId node_;
  std::uint32_t client_id_;
  std::uint64_t next_oid_lo_ = 1;
  obs::TrackId track_ = 0;
  std::uint64_t track_epoch_ = 0;
};

/// Tracks asynchronously launched operations (daos event queue analogue).
/// The generalized, depth-bounded implementation lives in io::SubmitQueue;
/// an EventQueue is one with unbounded depth (launch + waitAll).
using EventQueue = io::SubmitQueue;

}  // namespace daosim::daos
