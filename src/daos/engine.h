// DAOS server engine: one per server node, owning `targets_per_engine`
// targets. Each target pairs a CPU xstream (FIFO queueing station) with one
// local NVMe device and a VOS store. All server-side work of an RPC runs
// here: xstream CPU, WAL/data device I/O, then the in-memory VOS update.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "daos/config.h"
#include "hw/cluster.h"
#include "sim/queue_station.h"
#include "sim/task.h"
#include "vos/target_store.h"

namespace daosim::daos {

using vos::ContId;
using vos::Payload;
using placement::ObjectId;

/// One DAOS target: xstream + NVMe + VOS shard.
class Target {
 public:
  Target(sim::Simulation& sim, std::string name, hw::NvmeDevice& dev,
         bool retain_data)
      : xstream_(sim, name + ".xs", 1), dev_(&dev), store_(retain_data) {}

  sim::QueueStation& xstream() noexcept { return xstream_; }
  hw::NvmeDevice& device() noexcept { return *dev_; }
  vos::TargetStore& store() noexcept { return store_; }
  const vos::TargetStore& store() const noexcept { return store_; }

 private:
  sim::QueueStation xstream_;
  hw::NvmeDevice* dev_;
  vos::TargetStore store_;
};

class Engine {
 public:
  Engine(hw::Cluster& cluster, hw::NodeId node, const DaosConfig& cfg);

  hw::NodeId node() const noexcept { return node_; }
  int targetCount() const noexcept { return static_cast<int>(targets_.size()); }
  Target& target(int local) noexcept { return *targets_[static_cast<std::size_t>(local)]; }
  const Target& target(int local) const noexcept {
    return *targets_[static_cast<std::size_t>(local)];
  }

  // ---- server-side operations (run inside an RPC, on this engine) ----
  // Each returns the response payload size to charge on the return path.

  /// Persists a single value (KV record / metadata akey).
  sim::Task<std::uint64_t> valuePut(int tgt, ContId c, const ObjectId& o,
                                    std::string dkey, std::string akey,
                                    Payload value, obs::OpId op = 0);

  /// Fetches a single value; found=false leaves `out` empty.
  struct GetResult {
    Payload value;
    bool found = false;
  };
  sim::Task<GetResult> valueGet(int tgt, ContId c, const ObjectId& o,
                                std::string dkey, std::string akey,
                                obs::OpId op = 0);

  /// valueGet paired with its response size (for callValue transports).
  sim::Task<std::pair<GetResult, std::uint64_t>> valueGetSized(
      int tgt, ContId c, const ObjectId& o, std::string dkey,
      std::string akey, obs::OpId op = 0);

  sim::Task<std::uint64_t> valueRemove(int tgt, ContId c, const ObjectId& o,
                                       std::string dkey, std::string akey,
                                       obs::OpId op = 0);

  /// Writes an array extent (bulk data path).
  sim::Task<std::uint64_t> extentWrite(int tgt, ContId c, const ObjectId& o,
                                       std::string dkey, std::string akey,
                                       std::uint64_t offset, Payload data,
                                       obs::OpId op = 0);

  /// Reads an array extent; reads only the bytes actually present from the
  /// device, returns a payload of the requested length (holes zeroed).
  sim::Task<Payload> extentRead(int tgt, ContId c, const ObjectId& o,
                                std::string dkey, std::string akey,
                                std::uint64_t offset, std::uint64_t length,
                                obs::OpId op = 0);

  /// extentRead paired with its response size (for callValue transports).
  sim::Task<std::pair<Payload, std::uint64_t>> extentReadSized(
      int tgt, ContId c, const ObjectId& o, std::string dkey,
      std::string akey, std::uint64_t offset, std::uint64_t length,
      obs::OpId op = 0);

  /// Largest byte offset stored for this object on this target, given the
  /// array chunk size (dkeys encode chunk indices).
  sim::Task<std::uint64_t> arrayShardEnd(int tgt, ContId c, const ObjectId& o,
                                         std::uint64_t chunk_size,
                                         obs::OpId op = 0);

  /// Truncates this target's shard of an array to `new_size` total bytes:
  /// punches chunks entirely beyond and trims the straddling chunk.
  sim::Task<std::uint64_t> arrayShardTruncate(int tgt, ContId c,
                                              const ObjectId& o,
                                              std::uint64_t chunk_size,
                                              std::uint64_t new_size,
                                              obs::OpId op = 0);

  /// Enumerates dkeys (used by KV list and DFS readdir).
  sim::Task<std::vector<std::string>> listDkeys(int tgt, ContId c,
                                                const ObjectId& o,
                                                obs::OpId op = 0);

  sim::Task<std::uint64_t> punchObject(int tgt, ContId c, const ObjectId& o,
                                       obs::OpId op = 0);
  sim::Task<std::uint64_t> punchDkey(int tgt, ContId c, const ObjectId& o,
                                     std::string dkey, obs::OpId op = 0);

  const DaosConfig& config() const noexcept { return *cfg_; }

 private:
  hw::Cluster* cluster_;
  hw::NodeId node_;
  const DaosConfig* cfg_;
  std::vector<std::unique_ptr<Target>> targets_;
};

}  // namespace daosim::daos
