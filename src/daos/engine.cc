#include "daos/engine.h"

#include <algorithm>
#include <stdexcept>

#include "vos/extent_tree.h"

namespace daosim::daos {

Engine::Engine(hw::Cluster& cluster, hw::NodeId node, const DaosConfig& cfg)
    : cluster_(&cluster), node_(node), cfg_(&cfg) {
  hw::Node& n = cluster.node(node);
  if (static_cast<int>(n.driveCount()) < cfg.targets_per_engine) {
    throw std::invalid_argument(
        "Engine: node has fewer NVMe devices than targets_per_engine");
  }
  targets_.reserve(static_cast<std::size_t>(cfg.targets_per_engine));
  for (int i = 0; i < cfg.targets_per_engine; ++i) {
    // Targets schedule on the *node's* simulation: the owning shard's on a
    // sharded cluster, the one global simulation serially (identical there).
    targets_.push_back(std::make_unique<Target>(
        n.sim(),
        "engine" + std::to_string(node) + ".tgt" + std::to_string(i),
        n.drive(static_cast<std::size_t>(i)), cfg.retain_data));
    targets_.back()->xstream().setTracePid(node);
  }
}

sim::Task<std::uint64_t> Engine::valuePut(int tgt, ContId c, const ObjectId& o,
                                          std::string dkey, std::string akey,
                                          Payload value, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + cfg_->engine.kv_cpu, op);
  // Metadata lands in DRAM (VOS tree) but is made durable via a WAL record
  // on the target's NVMe (md-on-ssd mode, as deployed in the paper).
  co_await t.device().write(std::max<std::uint64_t>(
      cfg_->engine.wal_bytes, value.size()), op);
  t.store().valuePut(c, o, dkey, akey, std::move(value));
  co_return 0;
}

sim::Task<Engine::GetResult> Engine::valueGet(int tgt, ContId c,
                                              const ObjectId& o,
                                              std::string dkey,
                                              std::string akey, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + cfg_->engine.kv_cpu, op);
  GetResult r;
  // VOS metadata is DRAM-resident: no device I/O on the get path.
  if (const Payload* p = t.store().valueGet(c, o, dkey, akey)) {
    r.value = *p;
    r.found = true;
  }
  co_return r;
}

sim::Task<std::pair<Engine::GetResult, std::uint64_t>> Engine::valueGetSized(
    int tgt, ContId c, const ObjectId& o, std::string dkey, std::string akey,
    obs::OpId op) {
  GetResult g =
      co_await valueGet(tgt, c, o, std::move(dkey), std::move(akey), op);
  const std::uint64_t bytes = g.value.size();
  co_return std::pair(std::move(g), bytes);
}

sim::Task<std::uint64_t> Engine::valueRemove(int tgt, ContId c,
                                             const ObjectId& o,
                                             std::string dkey,
                                             std::string akey, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + cfg_->engine.kv_cpu, op);
  co_await t.device().write(cfg_->engine.wal_bytes, op);
  t.store().valueRemove(c, o, dkey, akey);
  co_return 0;
}

sim::Task<std::uint64_t> Engine::extentWrite(int tgt, ContId c,
                                             const ObjectId& o,
                                             std::string dkey,
                                             std::string akey,
                                             std::uint64_t offset,
                                             Payload data, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu, op);
  co_await t.device().write(data.size(), op);
  t.store().extentWrite(c, o, dkey, akey, offset, std::move(data));
  co_return 0;
}

sim::Task<Payload> Engine::extentRead(int tgt, ContId c, const ObjectId& o,
                                      std::string dkey, std::string akey,
                                      std::uint64_t offset,
                                      std::uint64_t length, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu, op);
  auto r = t.store().extentRead(c, o, dkey, akey, offset, length);
  // Only bytes that exist are read from flash; holes cost nothing.
  if (r.bytes_found > 0) co_await t.device().read(r.bytes_found, op);
  co_return std::move(r.data);
}

sim::Task<std::pair<Payload, std::uint64_t>> Engine::extentReadSized(
    int tgt, ContId c, const ObjectId& o, std::string dkey, std::string akey,
    std::uint64_t offset, std::uint64_t length, obs::OpId op) {
  Payload p = co_await extentRead(tgt, c, o, std::move(dkey), std::move(akey),
                                  offset, length, op);
  const std::uint64_t bytes = p.size();
  co_return std::pair(std::move(p), bytes);
}

sim::Task<std::uint64_t> Engine::arrayShardEnd(int tgt, ContId c,
                                               const ObjectId& o,
                                               std::uint64_t chunk_size,
                                               obs::OpId op) {
  Target& t = target(tgt);
  // A size probe walks the object's dkey tree in DRAM; slightly costlier
  // than a point lookup.
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + 2 * cfg_->engine.kv_cpu,
                            op);
  std::uint64_t end = 0;
  for (const auto& dkey : t.store().listDkeys(c, o)) {
    if (dkey.size() != 8) continue;  // not an array chunk dkey
    const std::uint64_t chunk = vos::dkeyU64(dkey);
    const std::uint64_t in_chunk = t.store().extentEnd(c, o, dkey, "0");
    if (in_chunk > 0) end = std::max(end, chunk * chunk_size + in_chunk);
  }
  co_return end;
}

sim::Task<std::uint64_t> Engine::arrayShardTruncate(int tgt, ContId c,
                                                    const ObjectId& o,
                                                    std::uint64_t chunk_size,
                                                    std::uint64_t new_size,
                                                    obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + 2 * cfg_->engine.kv_cpu,
                            op);
  co_await t.device().write(cfg_->engine.wal_bytes, op);
  for (const auto& dkey : t.store().listDkeys(c, o)) {
    if (dkey.size() != 8) continue;
    const std::uint64_t base = vos::dkeyU64(dkey) * chunk_size;
    if (base >= new_size) {
      t.store().punchDkey(c, o, dkey);
    } else if (base + chunk_size > new_size) {
      t.store().extentTruncate(c, o, dkey, "0", new_size - base);
    }
  }
  co_return 0;
}

sim::Task<std::vector<std::string>> Engine::listDkeys(int tgt, ContId c,
                                                      const ObjectId& o,
                                                      obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + 2 * cfg_->engine.kv_cpu,
                            op);
  co_return t.store().listDkeys(c, o);
}

sim::Task<std::uint64_t> Engine::punchObject(int tgt, ContId c,
                                             const ObjectId& o, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + cfg_->engine.kv_cpu, op);
  co_await t.device().write(cfg_->engine.wal_bytes, op);
  t.store().punchObject(c, o);
  co_return 0;
}

sim::Task<std::uint64_t> Engine::punchDkey(int tgt, ContId c,
                                           const ObjectId& o,
                                           std::string dkey, obs::OpId op) {
  Target& t = target(tgt);
  co_await t.xstream().exec(cfg_->engine.rpc_cpu + cfg_->engine.kv_cpu, op);
  co_await t.device().write(cfg_->engine.wal_bytes, op);
  t.store().punchDkey(c, o, dkey);
  co_return 0;
}

}  // namespace daosim::daos
