#include "daos/kv.h"

#include <algorithm>
#include <set>

#include "hw/device.h"
#include "sim/sync.h"

namespace daosim::daos {

namespace {

constexpr const char* kValueAkey = "v";

// SHARD RESIDENCY: server-side errors hop home before rethrowing, exactly
// as in daos/array.cc — free no-op serially.

/// Store the value on one replica target.
sim::Task<void> putReplicaOp(Client* client, vos::ContId cont, ObjectId oid,
                             int target, std::string key, vos::Payload value,
                             obs::OpId op) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  co_await net::request(cluster, client->node(), engine->node(),
                        key.size() + value.size(), rp, op);
  std::exception_ptr err;
  try {
    co_await engine->valuePut(local, cont, oid, std::move(key), kValueAkey,
                              std::move(value), op);
    co_await net::respond(cluster, engine->node(), client->node(), 0, rp, op);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

/// Remove the key from one replica target.
sim::Task<void> removeReplicaOp(Client* client, vos::ContId cont,
                                ObjectId oid, int target, std::string key) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  co_await net::request(cluster, client->node(), engine->node(),
                        key.size(), rp);
  std::exception_ptr err;
  try {
    co_await engine->valueRemove(local, cont, oid, std::move(key),
                                 kValueAkey);
    co_await net::respond(cluster, engine->node(), client->node(), 0, rp);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

/// Enumerate one group's keys into *out.
sim::Task<void> listGroupOp(Client* client, vos::ContId cont, ObjectId oid,
                            int target, std::vector<std::string>* out) {
  auto [engine, local] = client->system().locateTarget(target);
  hw::Cluster& cluster = client->system().cluster();
  const net::RetryPolicy& rp = client->system().config().rpc_retry;
  co_await net::request(cluster, client->node(), engine->node(),
                        0, rp);
  std::exception_ptr err;
  try {
    *out = co_await engine->listDkeys(local, cont, oid);
    std::uint64_t bytes = 0;
    for (const auto& k : *out) bytes += k.size() + 16;
    co_await net::respond(cluster, engine->node(), client->node(), bytes, rp);
  } catch (...) {
    err = std::current_exception();
  }
  if (err) {
    co_await cluster.hop(engine->node(), client->node());
    std::rethrow_exception(err);
  }
}

}  // namespace

sim::Task<void> KeyValue::put(std::string key, vos::Payload value) {
  auto span = client_->beginOp("kv.put");
  const int group = placement::dkeyGroup(layout_, key);

  std::vector<sim::Task<void>> ops;
  for (int r = 0; r < layout_.group_size; ++r) {
    ops.push_back(putReplicaOp(client_, cont_.id, oid_,
                               layout_.target(group, r), key, value,
                               span.id()));
  }
  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else {
    co_await sim::whenAll(client_->sim(), std::move(ops));
  }
}

sim::Task<std::optional<vos::Payload>> KeyValue::get(std::string key) {
  auto span = client_->beginOp("kv.get");
  const int group = placement::dkeyGroup(layout_, key);
  hw::Cluster& cluster = client_->system().cluster();
  const net::RetryPolicy& rp = client_->system().config().rpc_retry;

  // Replica walk: a server-side failure hops home before the next replica's
  // request leg departs (free no-op serially; see Array::open).
  for (int r = 0; r < layout_.group_size; ++r) {
    auto [engine, local] =
        client_->system().locateTarget(layout_.target(group, r));
    co_await net::request(cluster, client_->node(), engine->node(),
                          key.size(), rp, span.id());
    Engine::GetResult g;
    std::exception_ptr err;
    try {
      g = co_await engine->valueGet(local, cont_.id, oid_, key, kValueAkey,
                                    span.id());
      co_await net::respond(cluster, engine->node(), client_->node(),
                            g.value.size(), rp, span.id());
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      co_await cluster.hop(engine->node(), client_->node());
      bool device_failed = false;
      try {
        std::rethrow_exception(err);
      } catch (const hw::DeviceFailed&) {
        device_failed = true;
      } catch (...) {
      }
      if (!device_failed || r + 1 == layout_.group_size) {
        std::rethrow_exception(err);
      }
      client_->system().noteDegradedRead();
      continue;
    }
    if (!g.found) co_return std::nullopt;
    co_return std::move(g.value);
  }
  co_return std::nullopt;
}

sim::Task<bool> KeyValue::remove(std::string key) {
  const int group = placement::dkeyGroup(layout_, key);

  // Existence check is local state; the RPCs carry the timing. The store
  // belongs to the primary's shard, so the sharded path visits it in
  // person (round-trip hop, free no-op serially).
  bool existed = false;
  {
    auto [engine, local] =
        client_->system().locateTarget(layout_.target(group, 0));
    hw::Cluster& cluster = client_->system().cluster();
    const bool sharded = cluster.shardGroup() != nullptr;
    if (sharded) co_await cluster.hop(client_->node(), engine->node());
    existed = engine->target(local).store().valueGet(cont_.id, oid_, key,
                                                     kValueAkey) != nullptr;
    if (sharded) co_await cluster.hop(engine->node(), client_->node());
  }
  std::vector<sim::Task<void>> ops;
  for (int r = 0; r < layout_.group_size; ++r) {
    ops.push_back(removeReplicaOp(client_, cont_.id, oid_,
                                  layout_.target(group, r), key));
  }
  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else {
    co_await sim::whenAll(client_->sim(), std::move(ops));
  }
  co_return existed;
}

sim::Task<std::vector<std::string>> KeyValue::list() {
  std::vector<std::vector<std::string>> per_group(
      static_cast<std::size_t>(layout_.groups));
  std::vector<sim::Task<void>> ops;
  for (int g = 0; g < layout_.groups; ++g) {
    ops.push_back(listGroupOp(client_, cont_.id, oid_, layout_.target(g, 0),
                              &per_group[static_cast<std::size_t>(g)]));
  }
  co_await sim::whenAll(client_->sim(), std::move(ops));

  std::set<std::string> merged;
  for (auto& keys : per_group) {
    for (auto& k : keys) merged.insert(std::move(k));
  }
  co_return std::vector<std::string>(merged.begin(), merged.end());
}

}  // namespace daosim::daos
