// DAOS Array object: a sparse 1-D byte array striped over targets.
//
// Data is split into fixed-size chunks; each chunk maps to one redundancy
// group of the object's layout via its dkey (the chunk index), exactly as
// libdaos arrays do. Within a group:
//   * plain classes store the chunk on the single group target;
//   * RP_k classes store full replicas on every group target;
//   * EC k+p classes split the chunk into k cells of chunk_size/k bytes,
//     one per data target, plus parity cells. The first parity cell is a
//     real XOR of the data cells (when payloads carry bytes), so degraded
//     reads after a single device failure return correct data.
#pragma once

#include <cstdint>

#include "daos/client.h"
#include "placement/layout.h"

namespace daosim::daos {

class Array {
 public:
  struct Attrs {
    std::uint64_t cell_size = 1;            // record size (bytes)
    std::uint64_t chunk_size = 1 << 20;     // dkey granularity
  };

  /// daos_array_create: registers attrs in object metadata (one KV put).
  static sim::Task<Array> create(Client& client, Container cont, ObjectId oid,
                                 Attrs attrs);

  /// daos_array_open: fetches attrs from object metadata (one RPC).
  static sim::Task<Array> open(Client& client, Container cont, ObjectId oid);

  /// daos_array_open_with_attr: no RPC — the optimization fdb-hammer uses.
  static Array openWithAttrs(Client& client, Container cont, ObjectId oid,
                             Attrs attrs);

  sim::Task<void> write(std::uint64_t offset, vos::Payload data);
  sim::Task<vos::Payload> read(std::uint64_t offset, std::uint64_t length);

  /// daos_array_get_size: fan-out probe over the object's groups.
  sim::Task<std::uint64_t> getSize();

  /// daos_array_set_size (truncate/extend).
  sim::Task<void> setSize(std::uint64_t size);

  sim::Task<void> punch() { return client_->objPunch(cont_, oid_); }

  const Attrs& attrs() const noexcept { return attrs_; }
  const ObjectId& oid() const noexcept { return oid_; }
  const placement::Layout& layout() const noexcept { return layout_; }

 private:
  Array(Client& client, Container cont, ObjectId oid, Attrs attrs);

  // One chunk-local piece of a larger op.
  sim::Task<void> writePiece(std::uint64_t chunk, std::uint64_t in_chunk,
                             vos::Payload piece, obs::OpId op);
  sim::Task<vos::Payload> readPiece(std::uint64_t chunk,
                                    std::uint64_t in_chunk,
                                    std::uint64_t length, obs::OpId op);
  sim::Task<vos::Payload> readCellDegraded(std::uint64_t chunk, int group,
                                           int failed_cell, obs::OpId op);
  // Scatter helpers writing results through out-pointers so the tasks can
  // be gathered with whenAll (out_piece is an internal Piece*).
  sim::Task<void> readSegInto(std::uint64_t chunk, int group, int cell_idx,
                              std::uint64_t lo, std::uint64_t hi,
                              std::uint64_t in_chunk, void* out_piece,
                              obs::OpId op);
  sim::Task<void> readPieceInto(std::uint64_t chunk, std::uint64_t in_chunk,
                                std::uint64_t length, std::uint64_t rel,
                                void* out_piece, obs::OpId op);
  sim::Task<void> probeShardEnd(int target, std::uint64_t* out, obs::OpId op);
  sim::Task<void> probeShardEndReplicated(std::vector<int> replicas,
                                          std::uint64_t* out, obs::OpId op);

  std::uint64_t ecCellLen() const noexcept {
    return attrs_.chunk_size /
           static_cast<std::uint64_t>(layout_.spec.ec_data);
  }

  Client* client_;
  Container cont_;
  ObjectId oid_;
  Attrs attrs_;
  placement::Layout layout_;
};

}  // namespace daosim::daos
