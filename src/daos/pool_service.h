// Pool service: the replicated (Raft) metadata service of a DAOS pool.
//
// It runs on the pool-service leader engine and serializes pool/container
// metadata operations: pool connect, container create/open/destroy, and
// container OID-range allocation. Container *data* I/O never touches it —
// which is exactly why well-behaved libdaos applications scale with server
// count while metadata-heavy patterns (container per process, server-side
// OID allocation per object) hit this single station.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "daos/config.h"
#include "hw/cluster.h"
#include "sim/queue_station.h"
#include "sim/task.h"
#include "vos/target_store.h"

namespace daosim::daos {

struct ContMeta {
  vos::ContId id = 0;
  std::string name;
  std::uint64_t next_oid_lo = 1;  // server-managed OID range allocator
  bool open = false;
};

class PoolService {
 public:
  PoolService(hw::Cluster& cluster, hw::NodeId leader_node, int replicas,
              const PoolServiceCost& cost)
      : cluster_(&cluster),
        leader_(leader_node),
        replicas_(replicas),
        cost_(cost),
        // The service station lives on the leader node's simulation — the
        // leader's shard on a sharded cluster (all handlers run there,
        // having arrived via RPC), the global one serially (identical).
        svc_(cluster.node(leader_node).sim(), "poolsvc", 1) {
    svc_.setTracePid(leader_node);
  }

  hw::NodeId leaderNode() const noexcept { return leader_; }

  // Server-side handlers (run on the leader, inside an RPC).

  sim::Task<std::uint64_t> handleConnect();

  /// Container handle/epoch query (serialized read-side op on the leader).
  /// Used by middleware that verifies container state per operation — e.g.
  /// the HDF5 DAOS adaptor's per-open checks.
  sim::Task<std::uint64_t> handleContQuery();

  /// Creates a container; fails (returns 0) if the name exists.
  sim::Task<vos::ContId> handleContCreate(std::string name);

  /// Opens by name; returns 0 if missing.
  sim::Task<vos::ContId> handleContOpen(std::string name);

  /// Returns the destroyed container's id, or 0 if the name was unknown.
  sim::Task<vos::ContId> handleContDestroy(std::string name);

  /// Allocates `count` consecutive OID lows for the container; returns the
  /// first. Serialized commit on the leader.
  sim::Task<std::uint64_t> handleAllocOids(vos::ContId cont,
                                           std::uint64_t count);

  std::size_t containerCount() const noexcept { return by_name_.size(); }
  const sim::QueueStation& station() const noexcept { return svc_; }

 private:
  /// A committed mutation: serialized service CPU plus the replication
  /// round-trip to the Raft followers.
  sim::Task<void> commit();
  sim::Task<void> query();

  hw::Cluster* cluster_;
  hw::NodeId leader_;
  int replicas_;
  PoolServiceCost cost_;
  sim::QueueStation svc_;
  std::map<std::string, ContMeta> by_name_;
  std::map<vos::ContId, ContMeta*> by_id_;
  vos::ContId next_id_ = 1;
};

}  // namespace daosim::daos
