// libdfs equivalent: POSIX directories, files and symbolic links implemented
// on top of the libdaos API.
//
// Mapping (as in DFS):
//   * a directory is a Key-Value object: entry name -> encoded DirEntry
//     (type, oid, chunk size, symlink target);
//   * a regular file is an Array object, chunked at `chunk_size`;
//   * a superblock KV object records the mount configuration so every
//     mounter agrees on object classes and chunk size;
//   * path resolution walks directory objects component by component
//     (one KV get RPC each), following symbolic links.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"

namespace daosim::dfs {

using daos::Client;
using daos::Container;
using daos::ObjClass;
using placement::ObjectId;
using vos::Payload;

struct DfsConfig {
  ObjClass dir_oclass = ObjClass::SX;
  ObjClass file_oclass = ObjClass::SX;
  std::uint64_t chunk_size = 1 << 20;
};

enum class EntryType : std::uint8_t { kFile = 1, kDirectory = 2, kSymlink = 3 };

struct DirEntry {
  EntryType type = EntryType::kFile;
  ObjectId oid;
  std::uint64_t chunk_size = 0;
  std::string symlink_target;
};

struct Stat {
  EntryType type = EntryType::kFile;
  std::uint64_t size = 0;
};

/// An open regular file.
struct File {
  DirEntry entry;
  daos::Array array;
};

struct OpenFlags {
  bool create = false;
  bool truncate = false;
  bool exclusive = false;  // with create: fail if it exists
};

class FileSystem {
 public:
  /// Mounts (and formats on first use) a DFS namespace in the container.
  static sim::Task<FileSystem> mount(Client& client, Container cont,
                                     DfsConfig config = {});

  // --- namespace operations (one KV RPC per path component) -----------

  /// Resolves a path; nullopt if any component is missing.
  sim::Task<std::optional<DirEntry>> lookup(std::string path);

  sim::Task<void> mkdir(std::string path);
  /// mkdir -p: creates missing intermediate directories.
  sim::Task<void> mkdirs(std::string path);

  /// Opens (optionally creating) a regular file. `oclass_override` lets
  /// benchmarks pick the file object class per file, as the paper tunes.
  sim::Task<File> open(std::string path, OpenFlags flags,
                       std::optional<ObjClass> oclass_override = {});

  sim::Task<Stat> stat(std::string path);
  sim::Task<void> unlink(std::string path);
  sim::Task<std::vector<std::string>> readdir(std::string path);
  sim::Task<void> symlink(std::string target, std::string link_path);
  sim::Task<std::string> readlink(std::string path);
  sim::Task<void> rename(std::string from, std::string to);
  sim::Task<void> truncate(std::string path, std::uint64_t size);

  // --- file I/O --------------------------------------------------------

  sim::Task<std::uint64_t> write(File& f, std::uint64_t offset, Payload data);
  sim::Task<Payload> read(File& f, std::uint64_t offset, std::uint64_t len);
  sim::Task<std::uint64_t> size(File& f);
  sim::Task<void> ftruncate(File& f, std::uint64_t size);

  const DfsConfig& config() const noexcept { return config_; }
  Client& client() noexcept { return *client_; }
  const Container& container() const noexcept { return cont_; }

  /// A copy of this mount issuing its RPCs as `client` (each simulated
  /// process holds its own client identity, as with per-process dfs
  /// mounts in libdfs).
  FileSystem withClient(Client& client) const {
    FileSystem fs = *this;
    fs.client_ = &client;
    return fs;
  }

 private:
  FileSystem(Client& client, Container cont, DfsConfig config,
             ObjectId root_oid)
      : client_(&client),
        cont_(std::move(cont)),
        config_(config),
        root_oid_(root_oid) {}

  daos::KeyValue dirKv(const ObjectId& dir_oid) {
    return daos::KeyValue(*client_, cont_, dir_oid);
  }

  /// Walks the parent chain of `path`; returns the parent directory oid and
  /// the final component name. Follows symlinks in intermediate components.
  sim::Task<std::pair<ObjectId, std::string>> resolveParent(std::string path);

  /// Resolves one entry by (dir, name).
  sim::Task<std::optional<DirEntry>> dirLookup(ObjectId dir_oid,
                                               std::string name);

  ObjectId newOid(ObjClass oc) { return client_->nextOid(oc); }

  Client* client_;
  Container cont_;
  DfsConfig config_;
  ObjectId root_oid_;
};

/// Splits a path into components, ignoring redundant separators.
std::vector<std::string> splitPath(std::string_view path);

}  // namespace daosim::dfs
