#include "dfs/dfs.h"

#include <cstring>
#include <stdexcept>

namespace daosim::dfs {

namespace {

constexpr std::uint32_t kReservedUserHi = 0xfffffffd;
constexpr std::uint64_t kSuperblockLo = 0xDF5B10C;
constexpr std::uint64_t kRootLo = 0xD1F500;
constexpr int kMaxSymlinkDepth = 10;

ObjectId superblockOid() {
  return placement::makeOid(ObjClass::S1, kSuperblockLo, kReservedUserHi);
}

ObjectId rootOid(const DfsConfig& cfg) {
  return placement::makeOid(cfg.dir_oclass, kRootLo, kReservedUserHi);
}

std::string encodeEntry(const DirEntry& e) {
  std::string s(1 + 16 + 8, '\0');
  s[0] = static_cast<char>(e.type);
  std::memcpy(s.data() + 1, &e.oid.hi, 8);
  std::memcpy(s.data() + 9, &e.oid.lo, 8);
  std::memcpy(s.data() + 17, &e.chunk_size, 8);
  s += e.symlink_target;
  return s;
}

DirEntry decodeEntry(const Payload& p) {
  DirEntry e;
  const std::string s = p.toString();
  if (s.size() >= 25) {
    e.type = static_cast<EntryType>(s[0]);
    std::memcpy(&e.oid.hi, s.data() + 1, 8);
    std::memcpy(&e.oid.lo, s.data() + 9, 8);
    std::memcpy(&e.chunk_size, s.data() + 17, 8);
    e.symlink_target = s.substr(25);
  }
  return e;
}

std::string encodeConfig(const DfsConfig& c) {
  std::string s(12, '\0');
  const std::uint16_t d = static_cast<std::uint16_t>(c.dir_oclass);
  const std::uint16_t f = static_cast<std::uint16_t>(c.file_oclass);
  std::memcpy(s.data(), &d, 2);
  std::memcpy(s.data() + 2, &f, 2);
  std::memcpy(s.data() + 4, &c.chunk_size, 8);
  return s;
}

DfsConfig decodeConfig(const Payload& p) {
  DfsConfig c;
  const std::string s = p.toString();
  if (s.size() >= 12) {
    std::uint16_t d = 0, f = 0;
    std::memcpy(&d, s.data(), 2);
    std::memcpy(&f, s.data() + 2, 2);
    std::memcpy(&c.chunk_size, s.data() + 4, 8);
    c.dir_oclass = static_cast<ObjClass>(d);
    c.file_oclass = static_cast<ObjClass>(f);
  }
  return c;
}

}  // namespace

std::vector<std::string> splitPath(std::string_view path) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) out.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return out;
}

sim::Task<FileSystem> FileSystem::mount(Client& client, Container cont,
                                        DfsConfig config) {
  daos::KeyValue sb(client, cont, superblockOid());
  auto existing = co_await sb.get("config");
  if (existing.has_value()) {
    config = decodeConfig(*existing);
  } else {
    co_await sb.put("config", Payload::fromString(encodeConfig(config)));
  }
  co_return FileSystem(client, std::move(cont), config, rootOid(config));
}

sim::Task<std::optional<DirEntry>> FileSystem::dirLookup(ObjectId dir_oid,
                                                         std::string name) {
  auto kv = dirKv(dir_oid);
  auto v = co_await kv.get(std::move(name));
  if (!v.has_value()) co_return std::nullopt;
  co_return decodeEntry(*v);
}

sim::Task<std::pair<ObjectId, std::string>> FileSystem::resolveParent(
    std::string path) {
  std::vector<std::string> parts = splitPath(path);
  if (parts.empty()) {
    throw std::invalid_argument("resolveParent: path has no final component");
  }
  int depth = 0;
  ObjectId dir = root_oid_;
  std::size_t i = 0;
  while (i + 1 < parts.size()) {
    auto entry = co_await dirLookup(dir, parts[i]);
    if (!entry.has_value()) {
      throw std::runtime_error("no such directory: " + parts[i]);
    }
    if (entry->type == EntryType::kDirectory) {
      dir = entry->oid;
      ++i;
      continue;
    }
    if (entry->type == EntryType::kSymlink) {
      if (++depth > kMaxSymlinkDepth) {
        throw std::runtime_error("too many levels of symbolic links");
      }
      // Rebuild the remaining walk from the link target (mount-absolute
      // targets only, which is all DFS itself supports meaningfully here).
      std::vector<std::string> target = splitPath(entry->symlink_target);
      target.insert(target.end(), parts.begin() + static_cast<long>(i) + 1,
                    parts.end());
      parts = std::move(target);
      dir = root_oid_;
      i = 0;
      if (parts.empty()) {
        throw std::runtime_error("symlink resolves to root");
      }
      continue;
    }
    throw std::runtime_error("not a directory: " + parts[i]);
  }
  co_return std::pair(dir, parts.back());
}

sim::Task<std::optional<DirEntry>> FileSystem::lookup(std::string path) {
  if (splitPath(path).empty()) {
    // The root directory itself.
    DirEntry root;
    root.type = EntryType::kDirectory;
    root.oid = root_oid_;
    co_return root;
  }
  int depth = 0;
  for (;;) {
    auto [dir, name] = co_await resolveParent(path);
    auto entry = co_await dirLookup(dir, name);
    if (!entry.has_value()) co_return std::nullopt;
    if (entry->type == EntryType::kSymlink) {
      if (++depth > kMaxSymlinkDepth) {
        throw std::runtime_error("too many levels of symbolic links");
      }
      path = entry->symlink_target;
      continue;
    }
    co_return entry;
  }
}

sim::Task<void> FileSystem::mkdir(std::string path) {
  auto [dir, name] = co_await resolveParent(path);
  auto existing = co_await dirLookup(dir, name);
  if (existing.has_value()) {
    throw std::runtime_error("mkdir: already exists: " + path);
  }
  DirEntry e;
  e.type = EntryType::kDirectory;
  e.oid = newOid(config_.dir_oclass);
  auto kv = dirKv(dir);
  co_await kv.put(name, Payload::fromString(encodeEntry(e)));
}

sim::Task<void> FileSystem::mkdirs(std::string path) {
  std::vector<std::string> parts = splitPath(path);
  std::string prefix;
  for (const auto& part : parts) {
    prefix += "/" + part;
    auto entry = co_await lookup(prefix);
    if (entry.has_value()) {
      if (entry->type != EntryType::kDirectory) {
        throw std::runtime_error("mkdirs: not a directory: " + prefix);
      }
      continue;
    }
    co_await mkdir(prefix);
  }
}

sim::Task<File> FileSystem::open(std::string path, OpenFlags flags,
                                 std::optional<ObjClass> oclass_override) {
  auto [dir, name] = co_await resolveParent(path);
  auto existing = co_await dirLookup(dir, name);
  if (existing.has_value()) {
    if (existing->type == EntryType::kSymlink) {
      // Follow the link and retry on the target path.
      co_return co_await open(existing->symlink_target, flags,
                              oclass_override);
    }
    if (existing->type != EntryType::kFile) {
      throw std::runtime_error("open: not a regular file: " + path);
    }
    if (flags.create && flags.exclusive) {
      throw std::runtime_error("open: exists (O_EXCL): " + path);
    }
    File f{*existing,
           daos::Array::openWithAttrs(
               *client_, cont_, existing->oid,
               {.cell_size = 1, .chunk_size = existing->chunk_size})};
    if (flags.truncate) co_await f.array.setSize(0);
    co_return f;
  }
  if (!flags.create) {
    throw std::runtime_error("open: no such file: " + path);
  }
  DirEntry e;
  e.type = EntryType::kFile;
  e.oid = newOid(oclass_override.value_or(config_.file_oclass));
  e.chunk_size = config_.chunk_size;
  auto kv = dirKv(dir);
  co_await kv.put(name, Payload::fromString(encodeEntry(e)));
  co_return File{e, daos::Array::openWithAttrs(
                        *client_, cont_, e.oid,
                        {.cell_size = 1, .chunk_size = e.chunk_size})};
}

sim::Task<Stat> FileSystem::stat(std::string path) {
  auto entry = co_await lookup(std::move(path));
  if (!entry.has_value()) throw std::runtime_error("stat: no such path");
  Stat st;
  st.type = entry->type;
  if (entry->type == EntryType::kFile) {
    auto array = daos::Array::openWithAttrs(
        *client_, cont_, entry->oid,
        {.cell_size = 1, .chunk_size = entry->chunk_size});
    st.size = co_await array.getSize();
  }
  co_return st;
}

sim::Task<void> FileSystem::unlink(std::string path) {
  auto [dir, name] = co_await resolveParent(path);
  auto entry = co_await dirLookup(dir, name);
  if (!entry.has_value()) throw std::runtime_error("unlink: no such path");
  if (entry->type == EntryType::kDirectory) {
    auto children = co_await dirKv(entry->oid).list();
    if (!children.empty()) {
      throw std::runtime_error("unlink: directory not empty: " + path);
    }
  }
  auto kv = dirKv(dir);
  co_await kv.remove(name);
  if (entry->type != EntryType::kSymlink) {
    co_await client_->objPunch(cont_, entry->oid);
  }
}

sim::Task<std::vector<std::string>> FileSystem::readdir(std::string path) {
  auto entry = co_await lookup(std::move(path));
  if (!entry.has_value() || entry->type != EntryType::kDirectory) {
    throw std::runtime_error("readdir: not a directory");
  }
  co_return co_await dirKv(entry->oid).list();
}

sim::Task<void> FileSystem::symlink(std::string target,
                                    std::string link_path) {
  auto [dir, name] = co_await resolveParent(link_path);
  auto existing = co_await dirLookup(dir, name);
  if (existing.has_value()) {
    throw std::runtime_error("symlink: already exists: " + link_path);
  }
  DirEntry e;
  e.type = EntryType::kSymlink;
  e.symlink_target = std::move(target);
  auto kv = dirKv(dir);
  co_await kv.put(name, Payload::fromString(encodeEntry(e)));
}

sim::Task<std::string> FileSystem::readlink(std::string path) {
  auto [dir, name] = co_await resolveParent(path);
  auto entry = co_await dirLookup(dir, name);
  if (!entry.has_value() || entry->type != EntryType::kSymlink) {
    throw std::runtime_error("readlink: not a symlink");
  }
  co_return entry->symlink_target;
}

sim::Task<void> FileSystem::rename(std::string from, std::string to) {
  auto [from_dir, from_name] = co_await resolveParent(from);
  auto entry = co_await dirLookup(from_dir, from_name);
  if (!entry.has_value()) throw std::runtime_error("rename: no such path");
  auto [to_dir, to_name] = co_await resolveParent(to);
  auto to_kv = dirKv(to_dir);
  co_await to_kv.put(to_name, Payload::fromString(encodeEntry(*entry)));
  auto from_kv = dirKv(from_dir);
  co_await from_kv.remove(from_name);
}

sim::Task<void> FileSystem::truncate(std::string path, std::uint64_t size) {
  auto entry = co_await lookup(std::move(path));
  if (!entry.has_value() || entry->type != EntryType::kFile) {
    throw std::runtime_error("truncate: not a regular file");
  }
  auto array = daos::Array::openWithAttrs(
      *client_, cont_, entry->oid,
      {.cell_size = 1, .chunk_size = entry->chunk_size});
  co_await array.setSize(size);
}

sim::Task<std::uint64_t> FileSystem::write(File& f, std::uint64_t offset,
                                           Payload data) {
  const std::uint64_t n = data.size();
  co_await f.array.write(offset, std::move(data));
  co_return n;
}

sim::Task<Payload> FileSystem::read(File& f, std::uint64_t offset,
                                    std::uint64_t len) {
  co_return co_await f.array.read(offset, len);
}

sim::Task<std::uint64_t> FileSystem::size(File& f) {
  co_return co_await f.array.getSize();
}

sim::Task<void> FileSystem::ftruncate(File& f, std::uint64_t size) {
  co_await f.array.setSize(size);
}

}  // namespace daosim::dfs
