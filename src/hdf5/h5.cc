#include "hdf5/h5.h"

#include <cstring>
#include <stdexcept>

#include "hw/spec.h"
#include "net/rpc.h"

namespace daosim::hdf5 {

namespace {

constexpr std::uint64_t kTrailerOffset = 8;  // inside the superblock block

std::string encodeIndex(
    const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>&
        index) {
  std::string s;
  std::uint64_t n = index.size();
  s.append(reinterpret_cast<const char*>(&n), 8);
  for (const auto& [name, loc] : index) {
    std::uint16_t len = static_cast<std::uint16_t>(name.size());
    s.append(reinterpret_cast<const char*>(&len), 2);
    s.append(name);
    s.append(reinterpret_cast<const char*>(&loc.first), 8);
    s.append(reinterpret_cast<const char*>(&loc.second), 8);
  }
  return s;
}

std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> decodeIndex(
    const std::string& s) {
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> index;
  if (s.size() < 8) return index;
  std::uint64_t n = 0;
  std::memcpy(&n, s.data(), 8);
  std::size_t pos = 8;
  for (std::uint64_t i = 0; i < n && pos + 2 <= s.size(); ++i) {
    std::uint16_t len = 0;
    std::memcpy(&len, s.data() + pos, 2);
    pos += 2;
    if (pos + len + 16 > s.size()) break;
    std::string name = s.substr(pos, len);
    pos += len;
    std::uint64_t off = 0, size = 0;
    std::memcpy(&off, s.data() + pos, 8);
    std::memcpy(&size, s.data() + pos + 8, 8);
    pos += 16;
    index[std::move(name)] = {off, size};
  }
  return index;
}

placement::ObjectId h5RootOid() {
  return placement::makeOid(placement::ObjClass::SX, 0x48444635,
                            0xfffffffc);
}

std::string encodeDsetRecord(const Dataset& d) {
  std::string s(24, '\0');
  std::memcpy(s.data(), &d.oid.hi, 8);
  std::memcpy(s.data() + 8, &d.oid.lo, 8);
  std::memcpy(s.data() + 16, &d.size, 8);
  return s;
}

Dataset decodeDsetRecord(std::string name, const Payload& p) {
  Dataset d;
  d.name = std::move(name);
  const std::string s = p.toString();
  if (s.size() >= 24) {
    std::memcpy(&d.oid.hi, s.data(), 8);
    std::memcpy(&d.oid.lo, s.data() + 8, 8);
    std::memcpy(&d.size, s.data() + 16, 8);
  }
  return d;
}

}  // namespace

// --- H5PosixFile ------------------------------------------------------

sim::Task<void> H5PosixFile::copyCost(std::uint64_t bytes) {
  co_await sim_->delay(hw::transferTime(bytes, cost_.internal_copy_gibps));
}

sim::Task<std::unique_ptr<H5PosixFile>> H5PosixFile::create(
    sim::Simulation& sim, posix::Vfs& vfs, std::string path,
    H5CostModel cost) {
  auto file =
      std::unique_ptr<H5PosixFile>(new H5PosixFile(sim, vfs, path, cost));
  co_await file->libraryCpu();
  file->fd_ = co_await vfs.open(std::move(path),
                                posix::OpenFlags{.create = true,
                                                 .truncate = true});
  // Superblock write.
  co_await vfs.pwrite(file->fd_, 0, Payload::synthetic(96));
  file->open_ = true;
  co_return file;
}

sim::Task<std::unique_ptr<H5PosixFile>> H5PosixFile::open(
    sim::Simulation& sim, posix::Vfs& vfs, std::string path,
    H5CostModel cost) {
  auto file =
      std::unique_ptr<H5PosixFile>(new H5PosixFile(sim, vfs, path, cost));
  co_await file->libraryCpu();
  file->fd_ = co_await vfs.open(std::move(path), posix::OpenFlags{});
  // Superblock + index trailer (offset, length), then the index block.
  Payload trailer = co_await vfs.pread(file->fd_, kTrailerOffset, 16);
  std::uint64_t idx_off = 0, idx_len = 0;
  if (trailer.hasBytes() && trailer.size() >= 16) {
    auto b = trailer.bytes();
    std::memcpy(&idx_off, b.data(), 8);
    std::memcpy(&idx_len, b.data() + 8, 8);
  }
  if (idx_len > 0) {
    Payload idx = co_await vfs.pread(file->fd_, idx_off, idx_len);
    file->index_ = decodeIndex(idx.toString());
    file->eof_ = idx_off + idx_len;
  }
  file->open_ = true;
  co_return file;
}

sim::Task<Dataset> H5PosixFile::createDataset(std::string name,
                                              std::uint64_t size) {
  co_await libraryCpu();
  // Object header for the new dataset.
  const std::uint64_t header_off = eof_;
  eof_ += cost_.object_header_bytes;
  co_await vfs_->pwrite(fd_, header_off,
                        Payload::synthetic(cost_.object_header_bytes));
  // B-tree/heap index node update (metadata cache disabled: every create
  // dirties and writes back a node).
  const std::uint64_t btree_off = eof_;
  eof_ += cost_.btree_node_bytes;
  co_await vfs_->pwrite(fd_, btree_off,
                        Payload::synthetic(cost_.btree_node_bytes));
  // Allocate the data region.
  Dataset d;
  d.name = name;
  d.size = size;
  d.file_offset = eof_;
  eof_ += size;
  index_[std::move(name)] = {d.file_offset, size};
  co_return d;
}

sim::Task<void> H5PosixFile::writeDataset(Dataset dset, Payload data) {
  co_await libraryCpu();
  co_await copyCost(data.size());
  co_await vfs_->pwrite(fd_, dset.file_offset, std::move(data));
}

sim::Task<Dataset> H5PosixFile::openDataset(std::string name) {
  co_await libraryCpu();
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::runtime_error("H5PosixFile: no such dataset: " + name);
  }
  // Metadata reads (object header + index node) — uncached.
  co_await vfs_->pread(fd_, it->second.first - cost_.btree_node_bytes,
                       cost_.btree_node_bytes);
  co_await vfs_->pread(
      fd_,
      it->second.first - cost_.btree_node_bytes - cost_.object_header_bytes,
      cost_.object_header_bytes);
  Dataset d;
  d.name = std::move(name);
  d.file_offset = it->second.first;
  d.size = it->second.second;
  co_return d;
}

sim::Task<Payload> H5PosixFile::readDataset(Dataset dset) {
  co_await libraryCpu();
  co_await copyCost(dset.size);
  co_return co_await vfs_->pread(fd_, dset.file_offset, dset.size);
}

sim::Task<void> H5PosixFile::close() {
  if (!open_) co_return;
  co_await libraryCpu();
  // Persist the dataset index and point the superblock trailer at it.
  const std::string idx = encodeIndex(index_);
  const std::uint64_t idx_off = eof_;
  co_await vfs_->pwrite(fd_, idx_off, Payload::fromString(idx));
  std::string trailer(16, '\0');
  const std::uint64_t idx_len = idx.size();
  std::memcpy(trailer.data(), &idx_off, 8);
  std::memcpy(trailer.data() + 8, &idx_len, 8);
  co_await vfs_->pwrite(fd_, kTrailerOffset, Payload::fromString(trailer));
  co_await vfs_->close(fd_);
  open_ = false;
}

// --- H5DaosFile -------------------------------------------------------

sim::Task<void> H5DaosFile::copyCost(std::uint64_t bytes) {
  co_await client_->sim().delay(
      hw::transferTime(bytes, cost_.internal_copy_gibps));
}

daos::KeyValue H5DaosFile::rootKv() {
  return daos::KeyValue(*client_, cont_, h5RootOid());
}

sim::Task<void> H5DaosFile::leaderQuery() {
  daos::PoolService& ps = client_->system().poolService();
  co_await net::request(client_->system().cluster(), client_->node(),
                        ps.leaderNode(), 0);
  co_await ps.handleContQuery();
  co_await net::respond(client_->system().cluster(), ps.leaderNode(),
                        client_->node(), 64);
}

sim::Task<std::unique_ptr<H5DaosFile>> H5DaosFile::create(
    daos::Client& client, std::string name, H5CostModel cost) {
  daos::Container cont = co_await client.contCreate("h5:" + name);
  auto file = std::unique_ptr<H5DaosFile>(
      new H5DaosFile(client, std::move(cont), cost));
  co_await file->libraryCpu();
  co_return file;
}

sim::Task<std::unique_ptr<H5DaosFile>> H5DaosFile::open(daos::Client& client,
                                                        std::string name,
                                                        H5CostModel cost) {
  daos::Container cont = co_await client.contOpen("h5:" + name);
  auto file = std::unique_ptr<H5DaosFile>(
      new H5DaosFile(client, std::move(cont), cost));
  co_await file->libraryCpu();
  co_return file;
}

sim::Task<Dataset> H5DaosFile::createDataset(std::string name,
                                             std::uint64_t size) {
  co_await libraryCpu();
  // OID allocation through the container service (pool-service leader):
  // one serialized commit per allocation batch.
  placement::ObjectId oid = co_await client_->allocOids(
      cont_, cost_.oid_alloc_batch, daos::ObjClass::SX);
  Dataset d;
  d.name = name;
  d.size = size;
  d.oid = oid;
  // Register the dataset object (array metadata) and catalog entry.
  co_await daos::Array::create(*client_, cont_, oid,
                               {.cell_size = 1, .chunk_size = 1 << 20});
  auto kv = rootKv();
  co_await kv.put(std::move(name), Payload::fromString(encodeDsetRecord(d)));
  co_return d;
}

sim::Task<void> H5DaosFile::writeDataset(Dataset dset, Payload data) {
  co_await libraryCpu();
  co_await copyCost(data.size());
  daos::Array array = daos::Array::openWithAttrs(
      *client_, cont_, dset.oid, {.cell_size = 1, .chunk_size = 1 << 20});
  co_await array.write(0, std::move(data));
}

sim::Task<Dataset> H5DaosFile::openDataset(std::string name) {
  co_await libraryCpu();
  // Handle/epoch verification on the pool-service leader, then the catalog
  // lookup in the container root object.
  co_await leaderQuery();
  auto kv = rootKv();
  auto rec = co_await kv.get(name);
  if (!rec.has_value()) {
    throw std::runtime_error("H5DaosFile: no such dataset: " + name);
  }
  co_return decodeDsetRecord(std::move(name), *rec);
}

sim::Task<Payload> H5DaosFile::readDataset(Dataset dset) {
  co_await libraryCpu();
  co_await copyCost(dset.size);
  daos::Array array = daos::Array::openWithAttrs(
      *client_, cont_, dset.oid, {.cell_size = 1, .chunk_size = 1 << 20});
  co_return co_await array.read(0, dset.size);
}

sim::Task<void> H5DaosFile::close() {
  co_await libraryCpu();
}

}  // namespace daosim::hdf5
