// Mini-HDF5: a hierarchical data-format library with two storage drivers,
// mirroring how the paper exercises HDF5 (§II-A2, §III-B/C).
//
//  * H5PosixFile — the sec2/POSIX driver: one file holds the superblock,
//    object headers, B-tree index nodes and dataset data. Every dataset
//    create performs small metadata writes (header + index node), every
//    data transfer pays the library's internal buffer copy, and the index
//    is persisted on close. Runs over any posix::Vfs (DFUSE, DFUSE+IL,
//    Lustre, ...).
//
//  * H5DaosFile — the DAOS VOL adaptor: one DAOS *container per file*
//    (hence per writer process in IOR mode), one DAOS object per dataset,
//    and a root Key-Value object for the dataset catalog. Dataset creation
//    allocates OIDs through the container service on the pool-service
//    leader, and dataset opens verify the container handle/epoch there too
//    — the serialized metadata path that makes this adaptor stop scaling
//    with server count (the paper's observed scalability wall, attributed
//    to container-per-process behaviour per its ref [8]).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "daos/array.h"
#include "daos/client.h"
#include "daos/kv.h"
#include "posix/vfs.h"
#include "sim/task.h"

namespace daosim::hdf5 {

using vos::Payload;

struct H5CostModel {
  /// Library CPU per dataset-level call (metadata management, dispatch).
  sim::Time cpu_per_op = 30 * sim::kMicrosecond;
  /// Internal buffer copy (sieve buffer / datatype conversion path) applied
  /// to every data transfer in either direction.
  double internal_copy_gibps = 0.22;
  /// POSIX driver: object header and index-node sizes.
  std::uint64_t object_header_bytes = 512;
  std::uint64_t btree_node_bytes = 4096;
  /// DAOS VOL: OIDs requested from the container service per allocation
  /// (the adaptor allocates lazily in small batches; 1 models the
  /// metadata-heavy default).
  std::uint64_t oid_alloc_batch = 1;
};

struct Dataset {
  std::string name;
  std::uint64_t size = 0;
  std::uint64_t file_offset = 0;    // POSIX driver
  placement::ObjectId oid;          // DAOS VOL
};

class H5File {
 public:
  virtual ~H5File() = default;

  virtual sim::Task<Dataset> createDataset(std::string name,
                                           std::uint64_t size) = 0;
  virtual sim::Task<void> writeDataset(Dataset dset, Payload data) = 0;
  virtual sim::Task<Dataset> openDataset(std::string name) = 0;
  virtual sim::Task<Payload> readDataset(Dataset dset) = 0;
  virtual sim::Task<void> close() = 0;
};

/// POSIX (sec2) driver over a Vfs.
class H5PosixFile final : public H5File {
 public:
  /// Creates a new file (truncating any existing one).
  static sim::Task<std::unique_ptr<H5PosixFile>> create(
      sim::Simulation& sim, posix::Vfs& vfs, std::string path,
      H5CostModel cost = {});
  /// Opens an existing file and loads the persisted dataset index.
  static sim::Task<std::unique_ptr<H5PosixFile>> open(
      sim::Simulation& sim, posix::Vfs& vfs, std::string path,
      H5CostModel cost = {});

  sim::Task<Dataset> createDataset(std::string name,
                                   std::uint64_t size) override;
  sim::Task<void> writeDataset(Dataset dset, Payload data) override;
  sim::Task<Dataset> openDataset(std::string name) override;
  sim::Task<Payload> readDataset(Dataset dset) override;
  sim::Task<void> close() override;

 private:
  H5PosixFile(sim::Simulation& sim, posix::Vfs& vfs, std::string path,
              H5CostModel cost)
      : sim_(&sim), vfs_(&vfs), path_(std::move(path)), cost_(cost) {}

  sim::Task<void> libraryCpu() { co_await sim_->delay(cost_.cpu_per_op); }
  sim::Task<void> copyCost(std::uint64_t bytes);

  sim::Simulation* sim_;
  posix::Vfs* vfs_;
  std::string path_;
  H5CostModel cost_;
  posix::Fd fd_ = -1;
  std::uint64_t eof_ = 4096;  // superblock block
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> index_;
  bool open_ = false;
};

/// DAOS VOL adaptor: container per file, object per dataset.
class H5DaosFile final : public H5File {
 public:
  static sim::Task<std::unique_ptr<H5DaosFile>> create(daos::Client& client,
                                                       std::string name,
                                                       H5CostModel cost = {});
  static sim::Task<std::unique_ptr<H5DaosFile>> open(daos::Client& client,
                                                     std::string name,
                                                     H5CostModel cost = {});

  sim::Task<Dataset> createDataset(std::string name,
                                   std::uint64_t size) override;
  sim::Task<void> writeDataset(Dataset dset, Payload data) override;
  sim::Task<Dataset> openDataset(std::string name) override;
  sim::Task<Payload> readDataset(Dataset dset) override;
  sim::Task<void> close() override;

 private:
  H5DaosFile(daos::Client& client, daos::Container cont, H5CostModel cost)
      : client_(&client), cont_(std::move(cont)), cost_(cost) {}

  sim::Task<void> libraryCpu() {
    co_await client_->sim().delay(cost_.cpu_per_op);
  }
  sim::Task<void> copyCost(std::uint64_t bytes);
  daos::KeyValue rootKv();
  /// Serialized handle/epoch verification on the pool-service leader.
  sim::Task<void> leaderQuery();

  daos::Client* client_;
  daos::Container cont_;
  H5CostModel cost_;
};

}  // namespace daosim::hdf5
