// NVMe SSD model: a virtual-clock rate limiter with burst completion.
//
// Modern NVMe behaviour that matters for the paper's experiments:
//   * an individual I/O completes quickly (controller/cache burst rate plus
//     access latency) as long as the device is not backlogged;
//   * sustained throughput is capped at the device's rate — a virtual
//     drain clock advances by bytes/rate per op, and requests stall once
//     the backlog exceeds a small absorption window (write-cache depth /
//     internal queue depth);
//   * small I/O is bounded by per-op service (IOPS cap), not bandwidth.
//
// Unlike a single-server FIFO, this keeps utilization near 1.0 when the
// number of synchronous client processes is comparable to the number of
// devices — which is how the paper's IOR runs saturate 256 targets with a
// few hundred processes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "hw/spec.h"
#include "obs/observer.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace daosim::hw {

/// Thrown by I/O to a failed device (used by EC/replication degraded-mode
/// tests; DAOS clients catch this and fall back to surviving shards).
class DeviceFailed : public std::runtime_error {
 public:
  explicit DeviceFailed(const std::string& name)
      : std::runtime_error("device failed: " + name) {}
};

class NvmeDevice {
 public:
  NvmeDevice(sim::Simulation& sim, NvmeSpec spec, std::string name)
      : sim_(&sim), spec_(spec), name_(std::move(name)) {}

  sim::Task<void> write(std::uint64_t bytes, obs::OpId op = 0) {
    throwIfFailed();
    bytes_written_ += bytes;
    ++write_ops_;
    co_await io(std::max(transferTime(bytes, spec_.write_gibps),
                         spec_.write_op_service),
                spec_.write_latency + transferTime(bytes, spec_.burst_gibps),
                op);
    throwIfFailed();  // failure may have been injected while queued
  }

  sim::Task<void> read(std::uint64_t bytes, obs::OpId op = 0) {
    throwIfFailed();
    bytes_read_ += bytes;
    ++read_ops_;
    co_await io(std::max(transferTime(bytes, spec_.read_gibps),
                         spec_.read_op_service),
                spec_.read_latency + transferTime(bytes, spec_.burst_gibps),
                op);
    throwIfFailed();
  }

  // Failure semantics ("fail-at-dequeue"): fail() takes effect immediately
  // for new submissions (throwIfFailed at op entry) AND for ops already in
  // flight — each op re-checks when its completion event is dequeued, so an
  // op queued before the failure still observes it. At the exact fail
  // timestamp the outcome follows the kernel's FIFO (time, seq) order: a
  // completion event scheduled before the fail event resumes first and the
  // op succeeds; one scheduled after observes the failure. Spawn order
  // therefore fully determines the outcome — there is no nondeterminism at
  // the boundary (covered by tests/hw_test.cc).
  void fail() noexcept { failed_ = true; }
  void recover() noexcept { failed_ = false; }
  bool failed() const noexcept { return failed_; }

  /// Scales both the sustained service time and the completion latency of
  /// subsequent ops by `f` (>= 1; 1.0 restores full speed). Fault plans use
  /// this to model a degraded ("gray failure") device. Values below 1 clamp
  /// to 1.
  void setSlowdown(double f) noexcept { slowdown_ = f < 1.0 ? 1.0 : f; }
  double slowdown() const noexcept { return slowdown_; }

  const NvmeSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return name_; }
  std::uint64_t bytesWritten() const noexcept { return bytes_written_; }
  std::uint64_t bytesRead() const noexcept { return bytes_read_; }
  std::uint64_t writeOps() const noexcept { return write_ops_; }
  std::uint64_t readOps() const noexcept { return read_ops_; }
  /// I/Os admitted but not yet acknowledged (the device queue depth a
  /// telemetry gauge samples).
  std::uint32_t queueDepth() const noexcept { return inflight_; }
  /// Total device-time consumed on the sustained-rate clock.
  sim::Time busyTime() const noexcept { return busy_; }
  double utilization(sim::Time horizon) const noexcept {
    return horizon ? static_cast<double>(busy_) / static_cast<double>(horizon)
                   : 0.0;
  }

  /// Node id used as the chrome-trace pid for this device's track.
  void setTracePid(int pid) noexcept { trace_pid_ = pid; }
  int tracePid() const noexcept { return trace_pid_; }

 private:
  sim::Task<void> io(sim::Time service, sim::Time completion_latency,
                     obs::OpId op) {
    if (slowdown_ != 1.0) {  // gated so the default path stays bit-exact
      service = static_cast<sim::Time>(static_cast<double>(service) *
                                       slowdown_);
      completion_latency = static_cast<sim::Time>(
          static_cast<double>(completion_latency) * slowdown_);
    }
    const sim::Time now = sim_->now();
    virtual_end_ = std::max(virtual_end_, now) + service;
    busy_ += service;
    ++inflight_;
    // Ack when the burst transfer completes AND the backlog fits the
    // absorption window; the two overlap (cache fill proceeds while the
    // medium drains), so the wait is the max, not the sum.
    sim::Time wait = completion_latency;
    if (virtual_end_ > now + spec_.backlog_window) {
      wait = std::max(wait, virtual_end_ - now - spec_.backlog_window);
    }
    co_await sim_->delay(wait);
    --inflight_;
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        if (track_epoch_ != o->epoch()) {
          track_ = o->track(trace_pid_, name_);
          track_epoch_ = o->epoch();
        }
        // Backlog stall beyond the intrinsic completion latency counts as
        // queue-wait in the causal tree; it still charges to kDevice so
        // the aggregate category split is unchanged.
        const sim::Time stall =
            wait > completion_latency ? wait - completion_latency : 0;
        o->leg(op, obs::Cat::kDevice, track_, "io", now, stall,
               obs::Cat::kDevice);
      }
    }
  }

  void throwIfFailed() const {
    if (failed_) throw DeviceFailed(name_);
  }

  sim::Simulation* sim_;
  NvmeSpec spec_;
  std::string name_;
  sim::Time virtual_end_ = 0;
  sim::Time busy_ = 0;
  std::uint32_t inflight_ = 0;
  int trace_pid_ = 0;
  obs::TrackId track_ = 0;
  std::uint64_t track_epoch_ = 0;
  bool failed_ = false;
  double slowdown_ = 1.0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t write_ops_ = 0;
  std::uint64_t read_ops_ = 0;
};

}  // namespace daosim::hw
