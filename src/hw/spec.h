// Hardware specifications, calibrated to the paper's test system (§II-B,
// §III-A):
//   * server VMs: n2-custom-36-153600 — 16 local NVMe SSDs per node with
//     3.86 GiB/s aggregate write and 7.0 GiB/s aggregate read bandwidth,
//     50 Gbps (6.25 GiB/s) NIC;
//   * client VMs: n2-highcpu-32 — 32 logical cores, 50 Gbps NIC.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace daosim::hw {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Time to move `bytes` at `gibps` GiB/s.
constexpr sim::Time transferTime(std::uint64_t bytes, double gibps) noexcept {
  if (gibps <= 0.0) return 0;
  const double seconds =
      static_cast<double>(bytes) / (gibps * static_cast<double>(kGiB));
  return static_cast<sim::Time>(seconds * 1e9 + 0.5);
}

/// One local NVMe SSD. Defaults: 1/16 of the measured per-node aggregate
/// (3.86 GiB/s write, 7.0 GiB/s read over 16 devices). See hw/device.h for
/// the rate-limiter semantics of these fields.
struct NvmeSpec {
  double write_gibps = 3.86 / 16.0;   // sustained write rate
  double read_gibps = 7.0 / 16.0;     // sustained read rate
  sim::Time write_latency = 20 * sim::kMicrosecond;  // access latency
  sim::Time read_latency = 15 * sim::kMicrosecond;
  /// Controller/cache burst rate for individual-op completion.
  double burst_gibps = 2.0;
  /// Per-op service floor on the sustained clock (small-I/O IOPS caps:
  /// 100k write / 125k read IOPS).
  sim::Time write_op_service = 10 * sim::kMicrosecond;
  sim::Time read_op_service = 8 * sim::kMicrosecond;
  /// Backlog the device absorbs (cache/queue depth) before stalling
  /// submitters; sustained throughput is exact beyond this window.
  sim::Time backlog_window = 30 * sim::kMillisecond;
  std::uint64_t capacity_bytes = 384 * kGiB;  // 6 TiB over 16 devices
};

/// One network adaptor direction pair. 50 Gbps = 6.25 GiB/s full duplex.
struct NicSpec {
  double gibps = 6.25;
  /// Per-message processing cost charged on each NIC direction, modelling
  /// per-RPC packetization/interrupt work.
  sim::Time per_message = 1 * sim::kMicrosecond + 500;
};

struct NodeSpec {
  NicSpec nic;
  int nvme_count = 0;  // clients have no local NVMe
  NvmeSpec nvme;
  int cores = 32;

  static NodeSpec server(int drives = 16) {
    NodeSpec s;
    s.nvme_count = drives;
    s.cores = 36;
    return s;
  }
  static NodeSpec client() { return NodeSpec{}; }
};

struct FabricSpec {
  /// One-way propagation + switching latency between any two nodes. The GCP
  /// fabric is modelled as full-bisection (no core contention); endpoints
  /// contend only at their NICs.
  sim::Time latency = 8 * sim::kMicrosecond;
  /// Wire/protocol overhead added to every message.
  std::uint64_t header_bytes = 512;
};

}  // namespace daosim::hw
