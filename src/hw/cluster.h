// Node and Cluster: the simulated machine room.
//
// A Node owns a full-duplex NIC (two queueing stations) and local NVMe
// devices. The Cluster owns all nodes and the fabric model and provides the
// point-to-point `send` primitive every protocol layer uses.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/device.h"
#include "hw/spec.h"
#include "obs/observer.h"
#include "sim/queue_station.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace daosim::hw {

using NodeId = int;

/// Thrown by Cluster::send when an endpoint's NIC is administratively down
/// (fault injection): the attempt is charged one fabric latency and then
/// fails. net::sendWithRetry treats this as a transient, retryable fault.
class NetworkDown : public std::runtime_error {
 public:
  explicit NetworkDown(const std::string& what)
      : std::runtime_error("network down: " + what) {}
};

class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, const NodeSpec& spec)
      : sim_(&sim),
        id_(id),
        spec_(spec),
        tx_(sim, "node" + std::to_string(id) + ".tx", 1),
        rx_(sim, "node" + std::to_string(id) + ".rx", 1) {
    tx_.setTracePid(id);
    rx_.setTracePid(id);
    drives_.reserve(static_cast<std::size_t>(spec.nvme_count));
    for (int i = 0; i < spec.nvme_count; ++i) {
      drives_.push_back(std::make_unique<NvmeDevice>(
          sim, spec.nvme,
          "node" + std::to_string(id) + ".nvme" + std::to_string(i)));
      drives_.back()->setTracePid(id);
    }
  }

  NodeId id() const noexcept { return id_; }
  const NodeSpec& spec() const noexcept { return spec_; }

  /// The simulation this node's stations and devices schedule on — the
  /// owning shard's, in a sharded cluster.
  sim::Simulation& sim() noexcept { return *sim_; }

  sim::QueueStation& tx() noexcept { return tx_; }
  sim::QueueStation& rx() noexcept { return rx_; }

  std::size_t driveCount() const noexcept { return drives_.size(); }
  NvmeDevice& drive(std::size_t i) noexcept {
    assert(i < drives_.size());
    return *drives_[i];
  }
  const NvmeDevice& drive(std::size_t i) const noexcept {
    assert(i < drives_.size());
    return *drives_[i];
  }

 private:
  sim::Simulation* sim_;
  NodeId id_;
  NodeSpec spec_;
  sim::QueueStation tx_;
  sim::QueueStation rx_;
  std::vector<std::unique_ptr<NvmeDevice>> drives_;
};

class Cluster {
 public:
  explicit Cluster(sim::Simulation& sim, FabricSpec fabric = {})
      : sim_(&sim), fabric_(fabric) {}

  /// Sharded cluster: nodes are placed on the shards of `group` (see
  /// addNode's shard parameter) and cross-node sends become coroutine
  /// migrations. Requires the group's lookahead to not exceed the fabric
  /// latency — the conservative-safety bound for NIC sends. Observers
  /// attach per shard (obs::ObserverGroup) and send legs carry the OpId
  /// across the migration; telemetry reads the per-lane counter accessors
  /// below. Fault-injector telemetry probes remain serial-only (enforced
  /// by the CLI's compatibility gate).
  explicit Cluster(sim::ShardGroup& group, FabricSpec fabric = {})
      : sim_(&group.shard(0)), group_(&group), fabric_(fabric) {
    if (group.lookahead() > fabric_.latency) {
      throw std::invalid_argument(
          "Cluster: shard lookahead exceeds the fabric latency; cross-node "
          "sends would deliver inside the synchronization window");
    }
    shard_ctr_.resize(static_cast<std::size_t>(group.shards()));
    shard_link_down_.resize(static_cast<std::size_t>(group.shards()));
  }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  NodeId addNode(const NodeSpec& spec, int shard = 0) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    assert(shard == 0 || group_ != nullptr);
    sim::Simulation& owner =
        group_ != nullptr ? group_->shard(shard) : *sim_;
    nodes_.push_back(std::make_unique<Node>(owner, id, spec));
    node_shard_.push_back(shard);
    return id;
  }

  std::vector<NodeId> addNodes(const NodeSpec& spec, int count) {
    std::vector<NodeId> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) ids.push_back(addNode(spec));
    return ids;
  }

  sim::Simulation& sim() noexcept { return *sim_; }
  /// Non-null when the cluster runs on a shard group.
  sim::ShardGroup* shardGroup() noexcept { return group_; }
  int nodeShard(NodeId id) const noexcept {
    return node_shard_[static_cast<std::size_t>(id)];
  }
  const FabricSpec& fabric() const noexcept { return fabric_; }
  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  Node& node(NodeId id) noexcept {
    assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
  }

  /// Moves one message of `bytes` payload from `src` to `dst` and completes
  /// when it is fully received. The link is cut-through: the receive-side
  /// occupancy overlaps the transmit-side serialization, offset by the
  /// fabric latency, so a single stream achieves full NIC bandwidth while
  /// both endpoints still contend at their NICs. Same-node messages skip the
  /// NIC (loopback). A nonzero `op` records the whole transfer as one leg of
  /// category `cat` on the sender's "net" track. On a sharded cluster the
  /// caller must be running on `src`'s shard, and the awaiting coroutine
  /// resumes on `dst`'s shard (where the payload now is — subsequent
  /// server-side stations are local again).
  sim::Task<void> send(NodeId src, NodeId dst, std::uint64_t bytes,
                       obs::OpId op = 0, obs::Cat cat = obs::Cat::kOther) {
    return group_ != nullptr ? shardedSend(src, dst, bytes, op, cat)
                             : serialSend(src, dst, bytes, op, cat);
  }

  /// Moves the *calling coroutine* (not a message) from `from`'s shard to
  /// `to`'s shard, charging one fabric latency — the control-plane
  /// primitive for code that must touch another node's local state
  /// directly (rebuild walks, client-side pool queries). The caller must
  /// currently be running on `from`'s shard, and resumes on `to`'s. On a
  /// serial cluster this is a free no-op (zero events, zero time), so
  /// threading hops through shared code leaves the serial schedule
  /// bit-identical. The latency is charged even when both nodes share a
  /// shard, keeping the simulated timing independent of the shard count.
  sim::Task<void> hop(NodeId from, NodeId to) {
    if (group_ == nullptr) co_return;
    // Through the mailbox even within one shard, keyed like NIC sends, so
    // a hop arrival that ties with a delivery resumes in the same order
    // for every shard count.
    const sim::Time now = node(from).sim().now();
    co_await group_->migrate(nodeShard(from), nodeShard(to),
                             now + fabric_.latency, sendKey(from, to, now));
  }

  /// One delivery attempt on the sharded path (net::sendWithRetry's
  /// building block; shardedSend is the no-deadline wrapper).
  enum class SendOutcome {
    kDelivered,  ///< resumed on dst's shard at the delivery instant
    kTimedOut,   ///< resumed back on src's shard at >= the deadline
    kLinkDown,   ///< resumed on src's shard, one fabric latency charged
  };

 private:
  sim::Task<void> serialSend(NodeId src, NodeId dst, std::uint64_t bytes,
                             obs::OpId op, obs::Cat cat) {
    // A flapped NIC drops the message after one fabric latency (loopback
    // does not traverse the NIC). Messages already past this check when
    // the link goes down complete normally — they are on the wire.
    if (src != dst && (linkDown(src) || linkDown(dst))) {
      ++send_failures_;
      co_await sim_->delay(fabric_.latency);
      throw NetworkDown("node" + std::to_string(linkDown(src) ? src : dst));
    }
    messages_ += 1;
    bytes_sent_ += bytes;
    if (cat == obs::Cat::kNetRequest) ++rpc_requests_;
    if (cat == obs::Cat::kNetResponse) ++rpc_responses_;
    ++inflight_sends_;
    const sim::Time started = sim_->now();
    // Pre-open the "send" leg so the NIC tx/rx station legs can name it as
    // their causal parent; the leg itself is recorded in finishSend.
    obs::LegId send_leg = 0;
    obs::OpId ctx = op;
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        send_leg = o->openLeg(op);
        if (send_leg != 0) ctx = obs::withParent(op, send_leg);
      }
    }
    if (src == dst) {
      co_await sim_->delay(2 * sim::kMicrosecond);  // loopback hop
      finishSend(src, op, cat, started, send_leg);
      co_return;
    }
    const std::uint64_t wire = bytes + fabric_.header_bytes;
    Node& s = node(src);
    Node& d = node(dst);
    s.tx().noteBytes(wire);
    d.rx().noteBytes(wire);
    const sim::Time tx_time =
        s.spec().nic.per_message + transferTime(wire, s.spec().nic.gibps);
    const sim::Time rx_time =
        d.spec().nic.per_message + transferTime(wire, d.spec().nic.gibps);
    auto receive = [](sim::Simulation& sm, sim::QueueStation& rx,
                      sim::Time lat, sim::Time ser, obs::OpId op,
                      obs::Cat cat) -> sim::Task<void> {
      co_await sm.delay(lat);
      // Structure-only: the parent "send" leg carries the aggregate charge.
      co_await rx.exec(ser, op, cat, /*nested=*/true);
    };
    auto delivery = sim_->spawn(
        receive(*sim_, d.rx(), fabric_.latency, rx_time, ctx, cat));
    co_await s.tx().exec(tx_time, ctx, cat, /*nested=*/true);
    co_await delivery.join();
    finishSend(src, op, cat, started, send_leg);
  }

  /// Mailbox tie-break key for a delivery departing `src` for `dst` at
  /// `departed` — simulation-level identity only (node ids and simulated
  /// time, never shard ids), so same-nanosecond deliveries sort in the
  /// same order for every shard count.
  static std::uint64_t sendKey(NodeId src, NodeId dst,
                               sim::Time departed) noexcept {
    return sim::hashCombine(
        sim::hashCombine(static_cast<std::uint64_t>(departed),
                         (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(src))
                          << 32) |
                             static_cast<std::uint32_t>(dst)),
        0x6e696373ULL);  // 'nics'
  }

  /// Sharded send. Exactly the serial timing, restructured so the message
  /// is a one-way coroutine migration instead of a spawn-and-join:
  ///
  ///   serial:  completion = max(tx.exec done, rx.exec done after latency)
  ///   sharded: T_tx = src.tx.reserve(tx_time)          — at t0, no suspend
  ///            migrate to dst's shard at t0 + latency  — >= lookahead away
  ///            T_rx = dst.rx.reserve(rx_time)          — at t0 + latency
  ///            delay until max(T_tx, T_rx)
  ///
  /// reserve() returns the same completion instant the semaphore FIFO would
  /// (single-server stations used uniformly through reserve), and the
  /// return edge that made the serial shape unshardable — delivery.join()
  /// completing *at* T_tx with zero latency back to the sender — is gone:
  /// the sender's side is fully accounted before the migration departs.
  /// Per-shard counter blocks keep the bookkeeping race-free; rx bytes are
  /// noted at arrival (not at t0 as serially), which shifts no totals.
  sim::Task<void> shardedSend(NodeId src, NodeId dst, std::uint64_t bytes,
                              obs::OpId op, obs::Cat cat) {
    const SendOutcome out =
        co_await shardedSendAttempt(src, dst, bytes, op, cat, /*deadline=*/0);
    if (out == SendOutcome::kLinkDown) {
      throw NetworkDown("node" + std::to_string(shardLinkDown(
                                     nodeShard(src), src)
                                     ? src
                                     : dst));
    }
  }

 public:
  /// Sharded delivery with an optional absolute deadline. Timing matches
  /// shardedSend exactly on the success path (the deadline check is pure
  /// arithmetic on the reservation result — no timer events), so enabling
  /// a retry policy does not perturb fault-free runs. On kTimedOut the
  /// coroutine returns to src's shard at max(deadline, arrival + latency);
  /// the reservation stands — the bytes still cross the wire, the client
  /// just stops waiting, mirroring the serial timeout race where the
  /// abandoned leg keeps running. Deadlines below 2x the fabric latency
  /// cannot be represented on the sharded path (the migration back cannot
  /// land inside the synchronization window); callers enforce
  /// timeout >= 2 * fabric latency.
  sim::Task<SendOutcome> shardedSendAttempt(NodeId src, NodeId dst,
                                            std::uint64_t bytes, obs::OpId op,
                                            obs::Cat cat, sim::Time deadline) {
    Node& s = node(src);
    const int sshard = nodeShard(src);
    sim::Simulation& ssim = s.sim();
    // Link state is read from the *source shard's* replica: flap events
    // install on every replica at the same simulated instant, so the
    // outcome is independent of the shard layout. Messages already past
    // this check when the link goes down complete normally (on the wire).
    if (src != dst && (shardLinkDown(sshard, src) ||
                       shardLinkDown(sshard, dst))) {
      ShardCounters& c = shard_ctr_[static_cast<std::size_t>(sshard)];
      ++c.send_failures;
      co_await ssim.delay(fabric_.latency);
      co_return SendOutcome::kLinkDown;
    }
    {
      ShardCounters& c = shard_ctr_[static_cast<std::size_t>(sshard)];
      c.messages += 1;
      c.bytes_sent += bytes;
      if (cat == obs::Cat::kNetRequest) ++c.rpc_requests;
      if (cat == obs::Cat::kNetResponse) ++c.rpc_responses;
      ++c.inflight;
    }
    const sim::Time started = ssim.now();
    // Pre-open the "send" leg on the source lane's observer, exactly as the
    // serial path does; the id travels with the coroutine across the
    // migration and the charging leg is recorded on the destination lane
    // (the merge reconciles the two lanes through the allocation journal).
    obs::LegId send_leg = 0;
    obs::OpId ctx = op;
    if (op != 0) {
      if (obs::Observer* o = ssim.observer()) {
        send_leg = o->openLeg(op);
        if (send_leg != 0) ctx = obs::withParent(op, send_leg);
      }
    }
    if (src == dst) {
      co_await ssim.delay(2 * sim::kMicrosecond);  // loopback hop
      ShardCounters& c = shard_ctr_[static_cast<std::size_t>(sshard)];
      --c.inflight;
      c.send_ns += ssim.now() - started;
      if (op != 0) {
        if (obs::Observer* o = ssim.observer()) {
          o->leg(op, cat, o->track(src, "net"), "send", started, 0,
                 obs::Cat::kServerQueue, send_leg);
        }
      }
      co_return SendOutcome::kDelivered;
    }
    Node& d = node(dst);
    const int dshard = nodeShard(dst);
    const std::uint64_t wire = bytes + fabric_.header_bytes;
    s.tx().noteBytes(wire);
    const sim::Time tx_time =
        s.spec().nic.per_message + transferTime(wire, s.spec().nic.gibps);
    const sim::Time rx_time =
        d.spec().nic.per_message + transferTime(wire, d.spec().nic.gibps);
    // Structure-only NIC legs under the "send" parent, like exec()'s on the
    // serial path (reserve records them with the analytic completion time).
    const sim::Time t_tx = s.tx().reserve(tx_time, ctx, cat);
    // Delivery goes through the window mailbox even when both endpoints
    // share a shard: the flush orders same-nanosecond deliveries by
    // (time, key), with the key a function of (src, dst, departure time)
    // only, so arrival order at a contended station is identical for
    // every shard count. Server-side QueueStation serialization (e.g.
    // the pool-service leader's raft commits) re-aligns independent
    // clients onto one service grid, making exact same-nanosecond
    // arrivals common enough to matter; (time, src shard, post index)
    // order would make the winner depend on the node->shard map.
    co_await group_->migrate(sshard, dshard, started + fabric_.latency,
                             sendKey(src, dst, started));
    // From here the coroutine runs on dst's shard, at started + latency.
    sim::Simulation& dsim = d.sim();
    d.rx().noteBytes(wire);
    const sim::Time t_rx = d.rx().reserve(rx_time, ctx, cat);
    const sim::Time done = t_tx > t_rx ? t_tx : t_rx;
    if (deadline > 0 && done > deadline) {
      {
        ShardCounters& c = shard_ctr_[static_cast<std::size_t>(dshard)];
        --c.inflight;
        c.send_ns += done - started;
      }
      const sim::Time arrive = dsim.now();
      // The abandoned transfer still finishes at `done`; record its leg
      // with the explicit end, as the serial timeout race does when the
      // spawned delivery outlives the client's patience.
      if (op != 0) {
        if (obs::Observer* o = dsim.observer()) {
          o->legAt(op, cat, o->track(src, "net"), "send", started, done, 0,
                   obs::Cat::kServerQueue, send_leg);
        }
      }
      sim::Time back = arrive + fabric_.latency;
      if (deadline > back) back = deadline;
      co_await group_->migrate(dshard, sshard, back, sendKey(dst, src, arrive));
      co_return SendOutcome::kTimedOut;
    }
    if (done > dsim.now()) co_await dsim.delay(done - dsim.now());
    ShardCounters& c = shard_ctr_[static_cast<std::size_t>(dshard)];
    --c.inflight;
    c.send_ns += dsim.now() - started;
    if (op != 0) {
      if (obs::Observer* o = dsim.observer()) {
        o->leg(op, cat, o->track(src, "net"), "send", started, 0,
               obs::Cat::kServerQueue, send_leg);
      }
    }
    co_return SendOutcome::kDelivered;
  }
  std::uint64_t messages() const noexcept {
    return sumCtr(messages_, &ShardCounters::messages);
  }
  std::uint64_t bytesSent() const noexcept {
    return sumCtr(bytes_sent_, &ShardCounters::bytes_sent);
  }

  // --- telemetry feed (see obs/telemetry.h) ---------------------------
  /// Messages currently between send() entry and delivery.
  std::uint64_t inflightSends() const noexcept {
    std::int64_t n = static_cast<std::int64_t>(inflight_sends_);
    for (const auto& c : shard_ctr_) n += c.inflight;
    return n > 0 ? static_cast<std::uint64_t>(n) : 0;
  }
  /// Cumulative wall time of completed sends (per-leg latency: divide the
  /// per-bin delta by the message-rate delta).
  sim::Time totalSendTime() const noexcept {
    return sumCtr(send_ns_, &ShardCounters::send_ns);
  }
  /// RPC legs by direction (net::request / net::respond pass the category).
  std::uint64_t rpcRequests() const noexcept {
    return sumCtr(rpc_requests_, &ShardCounters::rpc_requests);
  }
  std::uint64_t rpcResponses() const noexcept {
    return sumCtr(rpc_responses_, &ShardCounters::rpc_responses);
  }

  // --- per-lane telemetry feed (sharded runs) -------------------------
  // One shard's share of the counters above, written only by that shard's
  // thread; sharded telemetry registers one probe per lane under the same
  // net/* path and sums the raw samples at merge time, which reproduces
  // the serial accessor values exactly (integer sums).
  std::uint64_t laneMessages(int s) const noexcept {
    return laneRef(s).messages;
  }
  std::uint64_t laneBytesSent(int s) const noexcept {
    return laneRef(s).bytes_sent;
  }
  std::int64_t laneInflight(int s) const noexcept {
    return laneRef(s).inflight;
  }
  sim::Time laneSendTime(int s) const noexcept { return laneRef(s).send_ns; }
  std::uint64_t laneRpcRequests(int s) const noexcept {
    return laneRef(s).rpc_requests;
  }
  std::uint64_t laneRpcResponses(int s) const noexcept {
    return laneRef(s).rpc_responses;
  }
  std::uint64_t laneRpcRetries(int s) const noexcept {
    return laneRef(s).retries;
  }
  std::uint64_t laneRpcTimeouts(int s) const noexcept {
    return laneRef(s).timeouts;
  }
  std::uint64_t laneSendFailures(int s) const noexcept {
    return laneRef(s).send_failures;
  }

  // --- fault injection (see sim/fault_plan.h, net/retry.h) ------------
  /// Administratively takes a node's NIC down/up (fault-plan flaps). The
  /// state vector is allocated lazily, so clusters that never flap pay
  /// one empty-vector check per send.
  void setLinkDown(NodeId id, bool down) {
    if (link_down_.size() < nodes_.size()) link_down_.resize(nodes_.size(), 0);
    link_down_[static_cast<std::size_t>(id)] = down ? 1 : 0;
  }
  bool linkDown(NodeId id) const noexcept {
    return static_cast<std::size_t>(id) < link_down_.size() &&
           link_down_[static_cast<std::size_t>(id)] != 0;
  }

  /// Sharded link state: one replica of the link-down map per shard, each
  /// written only by its own shard's thread (the fault injector broadcasts
  /// one applier coroutine per shard, all landing at the same simulated
  /// time) and read by that shard's sends. The outer vector is sized at
  /// construction; inner lanes allocate lazily on first flap, so flap-free
  /// runs pay one empty-vector check per send.
  void setLinkDownOnShard(int shard, NodeId id, bool down) {
    assert(group_ != nullptr);
    auto& lane = shard_link_down_[static_cast<std::size_t>(shard)];
    if (lane.size() < nodes_.size()) lane.resize(nodes_.size(), 0);
    lane[static_cast<std::size_t>(id)] = down ? 1 : 0;
  }
  bool shardLinkDown(int shard, NodeId id) const noexcept {
    if (shard_link_down_.empty()) return false;
    const auto& lane = shard_link_down_[static_cast<std::size_t>(shard)];
    return static_cast<std::size_t>(id) < lane.size() &&
           lane[static_cast<std::size_t>(id)] != 0;
  }

  /// Retry accounting, incremented by net::sendWithRetry and sampled by
  /// telemetry (net/rpc_retry_per_s, net/rpc_timeout_per_s,
  /// net/send_fail_per_s). On a sharded cluster the counts land in the
  /// calling shard's lane (sendWithRetry runs on the source shard when it
  /// notes a retry or timeout).
  void noteRpcRetry() noexcept {
    if (ShardCounters* c = laneCtr()) {
      ++c->retries;
    } else {
      ++rpc_retries_;
    }
  }
  void noteRpcTimeout() noexcept {
    if (ShardCounters* c = laneCtr()) {
      ++c->timeouts;
    } else {
      ++rpc_timeouts_;
    }
  }
  std::uint64_t rpcRetries() const noexcept {
    return sumCtr(rpc_retries_, &ShardCounters::retries);
  }
  std::uint64_t rpcTimeouts() const noexcept {
    return sumCtr(rpc_timeouts_, &ShardCounters::timeouts);
  }
  /// Sends dropped on a downed link.
  std::uint64_t sendFailures() const noexcept {
    return sumCtr(send_failures_, &ShardCounters::send_failures);
  }

 private:
  /// Send bookkeeping for one shard, cache-line separated so concurrent
  /// shards never write the same line. inflight is signed: a cross-shard
  /// send enters on the source block and exits on the destination's.
  struct alignas(64) ShardCounters {
    std::uint64_t messages = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t rpc_requests = 0;
    std::uint64_t rpc_responses = 0;
    std::int64_t inflight = 0;
    sim::Time send_ns = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t send_failures = 0;
  };

  template <typename T, typename M>
  T sumCtr(T serial, M ShardCounters::* m) const noexcept {
    T total = serial;
    for (const auto& c : shard_ctr_) total += static_cast<T>(c.*m);
    return total;
  }

  const ShardCounters& laneRef(int s) const noexcept {
    return shard_ctr_[static_cast<std::size_t>(s)];
  }

  /// The calling shard's counter lane, or nullptr on the serial path.
  ShardCounters* laneCtr() noexcept {
    if (shard_ctr_.empty()) return nullptr;
    const int s = sim::currentShard();
    return s >= 0 ? &shard_ctr_[static_cast<std::size_t>(s)] : nullptr;
  }

  void finishSend(NodeId src, obs::OpId op, obs::Cat cat, sim::Time started,
                  obs::LegId leg) {
    --inflight_sends_;
    send_ns_ += sim_->now() - started;
    if (op == 0) return;
    if (obs::Observer* o = sim_->observer()) {
      o->leg(op, cat, o->track(src, "net"), "send", started, 0,
             obs::Cat::kServerQueue, leg);
    }
  }

  sim::Simulation* sim_;
  sim::ShardGroup* group_ = nullptr;
  FabricSpec fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<int> node_shard_;           // all zero on a serial cluster
  std::vector<ShardCounters> shard_ctr_;  // empty on a serial cluster
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t inflight_sends_ = 0;
  sim::Time send_ns_ = 0;
  std::uint64_t rpc_requests_ = 0;
  std::uint64_t rpc_responses_ = 0;
  std::vector<std::uint8_t> link_down_;  // empty until the first flap
  // Per-shard link-down replicas (see setLinkDownOnShard); outer vector
  // sized in the sharded constructor, inner lanes empty until a flap.
  std::vector<std::vector<std::uint8_t>> shard_link_down_;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace daosim::hw
