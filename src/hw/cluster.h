// Node and Cluster: the simulated machine room.
//
// A Node owns a full-duplex NIC (two queueing stations) and local NVMe
// devices. The Cluster owns all nodes and the fabric model and provides the
// point-to-point `send` primitive every protocol layer uses.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/device.h"
#include "hw/spec.h"
#include "obs/observer.h"
#include "sim/queue_station.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace daosim::hw {

using NodeId = int;

/// Thrown by Cluster::send when an endpoint's NIC is administratively down
/// (fault injection): the attempt is charged one fabric latency and then
/// fails. net::sendWithRetry treats this as a transient, retryable fault.
class NetworkDown : public std::runtime_error {
 public:
  explicit NetworkDown(const std::string& what)
      : std::runtime_error("network down: " + what) {}
};

class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, const NodeSpec& spec)
      : id_(id),
        spec_(spec),
        tx_(sim, "node" + std::to_string(id) + ".tx", 1),
        rx_(sim, "node" + std::to_string(id) + ".rx", 1) {
    tx_.setTracePid(id);
    rx_.setTracePid(id);
    drives_.reserve(static_cast<std::size_t>(spec.nvme_count));
    for (int i = 0; i < spec.nvme_count; ++i) {
      drives_.push_back(std::make_unique<NvmeDevice>(
          sim, spec.nvme,
          "node" + std::to_string(id) + ".nvme" + std::to_string(i)));
      drives_.back()->setTracePid(id);
    }
  }

  NodeId id() const noexcept { return id_; }
  const NodeSpec& spec() const noexcept { return spec_; }

  sim::QueueStation& tx() noexcept { return tx_; }
  sim::QueueStation& rx() noexcept { return rx_; }

  std::size_t driveCount() const noexcept { return drives_.size(); }
  NvmeDevice& drive(std::size_t i) noexcept {
    assert(i < drives_.size());
    return *drives_[i];
  }
  const NvmeDevice& drive(std::size_t i) const noexcept {
    assert(i < drives_.size());
    return *drives_[i];
  }

 private:
  NodeId id_;
  NodeSpec spec_;
  sim::QueueStation tx_;
  sim::QueueStation rx_;
  std::vector<std::unique_ptr<NvmeDevice>> drives_;
};

class Cluster {
 public:
  explicit Cluster(sim::Simulation& sim, FabricSpec fabric = {})
      : sim_(&sim), fabric_(fabric) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  NodeId addNode(const NodeSpec& spec) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(*sim_, id, spec));
    return id;
  }

  std::vector<NodeId> addNodes(const NodeSpec& spec, int count) {
    std::vector<NodeId> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) ids.push_back(addNode(spec));
    return ids;
  }

  sim::Simulation& sim() noexcept { return *sim_; }
  const FabricSpec& fabric() const noexcept { return fabric_; }
  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  Node& node(NodeId id) noexcept {
    assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
  }

  /// Moves one message of `bytes` payload from `src` to `dst` and completes
  /// when it is fully received. The link is cut-through: the receive-side
  /// occupancy overlaps the transmit-side serialization, offset by the
  /// fabric latency, so a single stream achieves full NIC bandwidth while
  /// both endpoints still contend at their NICs. Same-node messages skip the
  /// NIC (loopback). A nonzero `op` records the whole transfer as one leg of
  /// category `cat` on the sender's "net" track.
  sim::Task<void> send(NodeId src, NodeId dst, std::uint64_t bytes,
                       obs::OpId op = 0, obs::Cat cat = obs::Cat::kOther) {
    // A flapped NIC drops the message after one fabric latency (loopback
    // does not traverse the NIC). Messages already past this check when
    // the link goes down complete normally — they are on the wire.
    if (src != dst && (linkDown(src) || linkDown(dst))) {
      ++send_failures_;
      co_await sim_->delay(fabric_.latency);
      throw NetworkDown("node" + std::to_string(linkDown(src) ? src : dst));
    }
    messages_ += 1;
    bytes_sent_ += bytes;
    if (cat == obs::Cat::kNetRequest) ++rpc_requests_;
    if (cat == obs::Cat::kNetResponse) ++rpc_responses_;
    ++inflight_sends_;
    const sim::Time started = sim_->now();
    // Pre-open the "send" leg so the NIC tx/rx station legs can name it as
    // their causal parent; the leg itself is recorded in finishSend.
    obs::LegId send_leg = 0;
    obs::OpId ctx = op;
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        send_leg = o->openLeg(op);
        if (send_leg != 0) ctx = obs::withParent(op, send_leg);
      }
    }
    if (src == dst) {
      co_await sim_->delay(2 * sim::kMicrosecond);  // loopback hop
      finishSend(src, op, cat, started, send_leg);
      co_return;
    }
    const std::uint64_t wire = bytes + fabric_.header_bytes;
    Node& s = node(src);
    Node& d = node(dst);
    s.tx().noteBytes(wire);
    d.rx().noteBytes(wire);
    const sim::Time tx_time =
        s.spec().nic.per_message + transferTime(wire, s.spec().nic.gibps);
    const sim::Time rx_time =
        d.spec().nic.per_message + transferTime(wire, d.spec().nic.gibps);
    auto receive = [](sim::Simulation& sm, sim::QueueStation& rx,
                      sim::Time lat, sim::Time ser, obs::OpId op,
                      obs::Cat cat) -> sim::Task<void> {
      co_await sm.delay(lat);
      // Structure-only: the parent "send" leg carries the aggregate charge.
      co_await rx.exec(ser, op, cat, /*nested=*/true);
    };
    auto delivery = sim_->spawn(
        receive(*sim_, d.rx(), fabric_.latency, rx_time, ctx, cat));
    co_await s.tx().exec(tx_time, ctx, cat, /*nested=*/true);
    co_await delivery.join();
    finishSend(src, op, cat, started, send_leg);
  }

  std::uint64_t messages() const noexcept { return messages_; }
  std::uint64_t bytesSent() const noexcept { return bytes_sent_; }

  // --- telemetry feed (see obs/telemetry.h) ---------------------------
  /// Messages currently between send() entry and delivery.
  std::uint64_t inflightSends() const noexcept { return inflight_sends_; }
  /// Cumulative wall time of completed sends (per-leg latency: divide the
  /// per-bin delta by the message-rate delta).
  sim::Time totalSendTime() const noexcept { return send_ns_; }
  /// RPC legs by direction (net::request / net::respond pass the category).
  std::uint64_t rpcRequests() const noexcept { return rpc_requests_; }
  std::uint64_t rpcResponses() const noexcept { return rpc_responses_; }

  // --- fault injection (see sim/fault_plan.h, net/retry.h) ------------
  /// Administratively takes a node's NIC down/up (fault-plan flaps). The
  /// state vector is allocated lazily, so clusters that never flap pay
  /// one empty-vector check per send.
  void setLinkDown(NodeId id, bool down) {
    if (link_down_.size() < nodes_.size()) link_down_.resize(nodes_.size(), 0);
    link_down_[static_cast<std::size_t>(id)] = down ? 1 : 0;
  }
  bool linkDown(NodeId id) const noexcept {
    return static_cast<std::size_t>(id) < link_down_.size() &&
           link_down_[static_cast<std::size_t>(id)] != 0;
  }

  /// Retry accounting, incremented by net::sendWithRetry and sampled by
  /// telemetry (net/rpc_retry_per_s, net/rpc_timeout_per_s,
  /// net/send_fail_per_s).
  void noteRpcRetry() noexcept { ++rpc_retries_; }
  void noteRpcTimeout() noexcept { ++rpc_timeouts_; }
  std::uint64_t rpcRetries() const noexcept { return rpc_retries_; }
  std::uint64_t rpcTimeouts() const noexcept { return rpc_timeouts_; }
  /// Sends dropped on a downed link.
  std::uint64_t sendFailures() const noexcept { return send_failures_; }

 private:
  void finishSend(NodeId src, obs::OpId op, obs::Cat cat, sim::Time started,
                  obs::LegId leg) {
    --inflight_sends_;
    send_ns_ += sim_->now() - started;
    if (op == 0) return;
    if (obs::Observer* o = sim_->observer()) {
      o->leg(op, cat, o->track(src, "net"), "send", started, 0,
             obs::Cat::kServerQueue, leg);
    }
  }

  sim::Simulation* sim_;
  FabricSpec fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t inflight_sends_ = 0;
  sim::Time send_ns_ = 0;
  std::uint64_t rpc_requests_ = 0;
  std::uint64_t rpc_responses_ = 0;
  std::vector<std::uint8_t> link_down_;  // empty until the first flap
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace daosim::hw
