#include "placement/layout.h"

#include <numeric>
#include <stdexcept>

namespace daosim::placement {

std::vector<int> Layout::groupTargets(int group) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(group_size));
  for (int i = 0; i < group_size; ++i) out.push_back(target(group, i));
  return out;
}

Layout computeLayout(const ObjectId& oid, int total_targets,
                     const std::vector<std::uint8_t>* alive) {
  if (total_targets <= 0) {
    throw std::invalid_argument("computeLayout: pool has no targets");
  }

  Layout layout;
  layout.oclass = oidClass(oid);
  layout.spec = classSpec(layout.oclass);
  layout.total_targets = total_targets;
  layout.group_size = layout.spec.groupSize();
  if (layout.group_size > total_targets) {
    throw std::invalid_argument(
        "computeLayout: object class needs more targets than the pool has");
  }

  if (layout.spec.groups < 0) {
    layout.groups = std::max(1, total_targets / layout.group_size);
  } else {
    layout.groups = layout.spec.groups;
  }
  // A class with a fixed group count can still exceed the pool; clamp so one
  // target never appears twice in a (healthy) layout.
  layout.groups =
      std::min(layout.groups, total_targets / layout.group_size);
  layout.groups = std::max(layout.groups, 1);

  const int entries = layout.groups * layout.group_size;
  const std::uint64_t h = oid.hash();
  const int start = static_cast<int>(h % static_cast<std::uint64_t>(total_targets));
  // Stride coprime to T makes the walk a permutation: all entries distinct.
  int stride = 1;
  if (total_targets > 1) {
    stride = 1 + static_cast<int>(sim::mix64(h) %
                                  static_cast<std::uint64_t>(total_targets - 1));
    while (std::gcd(stride, total_targets) != 1) ++stride;
  }

  auto walk = [&](int j) {
    return static_cast<int>((start + static_cast<long long>(j) * stride) %
                            total_targets);
  };

  // Base layout: the first `entries` steps of the permutation. Group count
  // and surviving slot assignments are *stable* under exclusion — only dead
  // slots are re-pointed at spares (as DAOS pool-map rebuild does), so dkey
  // to group mappings never change and data movement is minimal.
  layout.targets.reserve(static_cast<std::size_t>(entries));
  for (int j = 0; j < entries; ++j) layout.targets.push_back(walk(j));
  if (alive == nullptr) return layout;

  int spare = entries;  // shared cursor into the permutation's remainder
  for (int j = 0; j < entries; ++j) {
    if ((*alive)[static_cast<std::size_t>(layout.targets[static_cast<std::size_t>(j)])] != 0) {
      continue;
    }
    const int group = j / layout.group_size;
    // Pick the next alive spare not already serving this group. Unprotected
    // (group-size 1) classes may reuse an alive target after a full cycle;
    // protected classes must keep group members distinct or fail.
    int chosen = -1;
    for (int probe = 0; probe < 2 * total_targets; ++probe) {
      const int t = walk(spare + probe);
      if ((*alive)[static_cast<std::size_t>(t)] == 0) continue;
      bool in_group = false;
      for (int m = 0; m < layout.group_size; ++m) {
        if (layout.target(group, m) == t) in_group = true;
      }
      if (in_group &&
          (layout.group_size > 1 || probe < total_targets)) {
        continue;
      }
      chosen = t;
      spare = spare + probe + 1;
      break;
    }
    if (chosen < 0) {
      throw std::invalid_argument(
          "computeLayout: not enough alive targets for the object class");
    }
    layout.targets[static_cast<std::size_t>(j)] = chosen;
  }
  return layout;
}

std::uint64_t dkeyHash(std::string_view dkey) noexcept {
  // FNV-1a, finished with a strong mixer.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : dkey) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return sim::mix64(h);
}

int dkeyGroup(const Layout& layout, std::string_view dkey) noexcept {
  return static_cast<int>(dkeyHash(dkey) %
                          static_cast<std::uint64_t>(layout.groups));
}

}  // namespace daosim::placement
