// Object placement: maps (oid, object class, pool width) to concrete target
// lists, and dkeys to redundancy groups.
//
// Placement is a deterministic pseudo-random ring walk seeded by the OID
// hash: group g, index i within the group maps to target
// (start + g*group_size + i) mod T with a per-object start and stride. This
// is uniform across objects, keeps redundancy-group members distinct, and is
// stable for the lifetime of the pool — the properties the algorithmic
// placement in DAOS provides that matter for performance experiments.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "placement/objclass.h"
#include "placement/oid.h"

namespace daosim::placement {

struct Layout {
  ObjClass oclass{};
  ClassSpec spec;
  int total_targets = 0;
  int groups = 0;       // resolved redundancy-group count
  int group_size = 0;   // targets per group
  /// groups * group_size target indices; group g occupies
  /// [g*group_size, (g+1)*group_size).
  std::vector<int> targets;

  int target(int group, int index_in_group) const noexcept {
    return targets[static_cast<std::size_t>(group * group_size +
                                            index_in_group)];
  }
  /// All targets of one redundancy group.
  std::vector<int> groupTargets(int group) const;
};

/// Resolves the layout of `oid` on a pool with `total_targets` targets.
/// `alive` (optional, size total_targets) marks excluded targets with 0:
/// the placement walk skips them, so layouts are stable except for slots at
/// or after an excluded target's position in the object's permutation —
/// the property pool-map-driven rebuild relies on. With all targets alive
/// the result is identical to the two-argument form.
Layout computeLayout(const ObjectId& oid, int total_targets,
                     const std::vector<std::uint8_t>* alive = nullptr);

/// Stable hash of a distribution key.
std::uint64_t dkeyHash(std::string_view dkey) noexcept;

/// Which redundancy group a dkey belongs to.
int dkeyGroup(const Layout& layout, std::string_view dkey) noexcept;

}  // namespace daosim::placement
