#include "placement/objclass.h"

#include <stdexcept>
#include <string>

namespace daosim::placement {

ClassSpec classSpec(ObjClass oc) noexcept {
  switch (oc) {
    case ObjClass::S1:
      return {.groups = 1};
    case ObjClass::S2:
      return {.groups = 2};
    case ObjClass::S4:
      return {.groups = 4};
    case ObjClass::S8:
      return {.groups = 8};
    case ObjClass::SX:
      return {.groups = -1};
    case ObjClass::RP_2G1:
      return {.groups = 1, .replicas = 2};
    case ObjClass::RP_2GX:
      return {.groups = -1, .replicas = 2};
    case ObjClass::RP_3G1:
      return {.groups = 1, .replicas = 3};
    case ObjClass::EC_2P1G1:
      return {.groups = 1, .ec_data = 2, .ec_parity = 1};
    case ObjClass::EC_2P1GX:
      return {.groups = -1, .ec_data = 2, .ec_parity = 1};
    case ObjClass::EC_4P2GX:
      return {.groups = -1, .ec_data = 4, .ec_parity = 2};
  }
  return {};
}

std::string_view className(ObjClass oc) noexcept {
  switch (oc) {
    case ObjClass::S1:
      return "S1";
    case ObjClass::S2:
      return "S2";
    case ObjClass::S4:
      return "S4";
    case ObjClass::S8:
      return "S8";
    case ObjClass::SX:
      return "SX";
    case ObjClass::RP_2G1:
      return "RP_2G1";
    case ObjClass::RP_2GX:
      return "RP_2GX";
    case ObjClass::RP_3G1:
      return "RP_3G1";
    case ObjClass::EC_2P1G1:
      return "EC_2P1G1";
    case ObjClass::EC_2P1GX:
      return "EC_2P1GX";
    case ObjClass::EC_4P2GX:
      return "EC_4P2GX";
  }
  return "?";
}

ObjClass classFromName(std::string_view name) {
  for (ObjClass oc :
       {ObjClass::S1, ObjClass::S2, ObjClass::S4, ObjClass::S8, ObjClass::SX,
        ObjClass::RP_2G1, ObjClass::RP_2GX, ObjClass::RP_3G1,
        ObjClass::EC_2P1G1, ObjClass::EC_2P1GX, ObjClass::EC_4P2GX}) {
    if (className(oc) == name) return oc;
  }
  throw std::invalid_argument("unknown object class: " + std::string(name));
}

}  // namespace daosim::placement
