// 128-bit object identifiers.
//
// As in DAOS, OIDs are 128 bits of which 96 are user-managed; the upper 32
// bits of `hi` encode DAOS-managed metadata — here, the object class. The
// class is chosen at creation time and is immutable afterwards.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "placement/objclass.h"
#include "sim/rng.h"

namespace daosim::placement {

struct ObjectId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;

  /// Stable 64-bit hash of the id (used for placement).
  std::uint64_t hash() const noexcept { return sim::hashCombine(hi, lo); }
};

inline constexpr std::uint64_t kUserHiMask = 0xffffffffULL;  // low 32 of hi

/// Encodes the DAOS-managed bits (object class) into a user-supplied 96-bit
/// id. The user keeps `user_hi` (32 bits) and `lo` (64 bits).
constexpr ObjectId makeOid(ObjClass oc, std::uint64_t lo,
                           std::uint32_t user_hi = 0) noexcept {
  return ObjectId{(static_cast<std::uint64_t>(oc) << 48) |
                      (static_cast<std::uint64_t>(user_hi)),
                  lo};
}

constexpr ObjClass oidClass(const ObjectId& oid) noexcept {
  return static_cast<ObjClass>((oid.hi >> 48) & 0xffff);
}

constexpr std::uint32_t oidUserHi(const ObjectId& oid) noexcept {
  return static_cast<std::uint32_t>(oid.hi & kUserHiMask);
}

}  // namespace daosim::placement

template <>
struct std::hash<daosim::placement::ObjectId> {
  std::size_t operator()(
      const daosim::placement::ObjectId& oid) const noexcept {
    return static_cast<std::size_t>(oid.hash());
  }
};
